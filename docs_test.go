package repro_test

// Documentation conformance tests, run by the CI docs job:
//
//   - every internal package carries a doc.go with a package comment;
//   - relative links in the markdown docs resolve to real files;
//   - API.md documents every route the server actually registers, and
//     its CLI appendix names every command in cmd/;
//   - the /metrics Prometheus exposition a live server produces is
//     well-formed (HELP/TYPE headers, monotonic histogram buckets);
//   - TRACES.md's worked hex example decodes with the real decoder and
//     re-encodes byte-identically (the spec cannot drift);
//   - WORKLOADS.md documents every registered kernel by name.

import (
	"bytes"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/server"
	"repro/internal/trace"
)

// internalPackages walks internal/ and returns each directory that
// contains Go source (skipping testdata).
func internalPackages(t *testing.T) []string {
	t.Helper()
	var pkgs []string
	err := filepath.WalkDir("internal", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".go") {
				pkgs = append(pkgs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestEveryInternalPackageHasDocGo(t *testing.T) {
	for _, pkg := range internalPackages(t) {
		doc := filepath.Join(pkg, "doc.go")
		b, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: no doc.go (%v)", pkg, err)
			continue
		}
		if !strings.Contains(string(b), "// Package ") {
			t.Errorf("%s: doc.go has no package comment", doc)
		}
	}
}

// mdLink matches [text](target) link targets, excluding web URLs and
// pure in-page anchors.
var mdLink = regexp.MustCompile(`\]\(([^)#][^)]*)\)`)

func TestMarkdownRelativeLinksResolve(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, "results/README.md")
	for _, doc := range docs {
		b, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", doc, m[1], err)
			}
		}
	}
}

func TestAPIDocCoversEveryRoute(t *testing.T) {
	b, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	api := string(b)
	for _, route := range server.Routes() {
		method, pattern, ok := strings.Cut(route, " ")
		if !ok {
			t.Fatalf("malformed route %q", route)
		}
		// API.md writes routes as "METHOD /path" with the pattern
		// verbatim (including {study} / {id} placeholders).
		if !strings.Contains(api, method+" "+pattern) {
			t.Errorf("API.md does not document route %q", route)
		}
	}
	for _, study := range server.StudyNames() {
		if !strings.Contains(api, study) {
			t.Errorf("API.md does not mention study %q", study)
		}
	}
}

// TestMetricsExpositionWellFormed boots an in-process daemon
// (memory-only store), scrapes GET /metrics and lints the Prometheus
// text exposition: every sample needs HELP and TYPE headers, values must
// parse, histogram buckets must be cumulative and end at +Inf. The same
// linter backs the server's own exposition tests; running it from the
// docs job keeps the documented scrape contract honest.
func TestMetricsExpositionWellFormed(t *testing.T) {
	srv, err := server.New(server.Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	if err := server.LintExposition(body); err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	for _, want := range []string{
		"comasrv_requests_total",
		"comasrv_request_duration_seconds_bucket",
		"comasrv_queue_wait_seconds_bucket",
		"comasrv_build_info",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTracesDocHexExampleRoundTrips extracts the ```hex block from
// TRACES.md, strips the # comments, and requires the remaining bytes to
// decode with the real COMATRC2 decoder and re-encode byte-identically.
// The worked example in the spec is thereby executable documentation: a
// format change that invalidates it fails this test until the spec is
// updated alongside.
func TestTracesDocHexExampleRoundTrips(t *testing.T) {
	b, err := os.ReadFile("TRACES.md")
	if err != nil {
		t.Fatal(err)
	}
	_, rest, ok := strings.Cut(string(b), "```hex\n")
	if !ok {
		t.Fatal("TRACES.md has no ```hex block")
	}
	block, _, ok := strings.Cut(rest, "```")
	if !ok {
		t.Fatal("TRACES.md hex block is unterminated")
	}
	var hexDigits strings.Builder
	for _, line := range strings.Split(block, "\n") {
		line, _, _ = strings.Cut(line, "#")
		hexDigits.WriteString(strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' {
				return -1
			}
			return r
		}, line))
	}
	payload, err := hex.DecodeString(hexDigits.String())
	if err != nil {
		t.Fatalf("TRACES.md hex block is not valid hex: %v", err)
	}
	tr, err := trace.DecodeCompact(payload)
	if err != nil {
		t.Fatalf("the documented example does not decode: %v", err)
	}
	if tr.Name != "demo" || tr.Procs != 1 || tr.WorkingSet != 4096 {
		t.Fatalf("decoded example header differs from the prose: %q procs=%d ws=%d",
			tr.Name, tr.Procs, tr.WorkingSet)
	}
	if got := tr.EncodeCompact(); !bytes.Equal(got, payload) {
		t.Fatalf("example does not round-trip: %d bytes in, %d bytes out", len(payload), len(got))
	}
}

// TestWorkloadsDocNamesEveryKernel keeps WORKLOADS.md in parity with the
// registry: every runnable kernel name (paper set and extras) must
// appear in the document.
func TestWorkloadsDocNamesEveryKernel(t *testing.T) {
	b, err := os.ReadFile("WORKLOADS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(b)
	for _, name := range apps.AllNames() {
		if !strings.Contains(doc, name) {
			t.Errorf("WORKLOADS.md does not document kernel %q", name)
		}
	}
}

func TestAPIDocCLIAppendixNamesEveryCommand(t *testing.T) {
	b, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	api := string(b)
	cmds, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmds {
		if !c.IsDir() {
			continue
		}
		if !strings.Contains(api, "cmd/"+c.Name()) {
			t.Errorf("API.md CLI appendix does not name cmd/%s", c.Name())
		}
	}
}
