package repro_test

// Documentation conformance tests, run by the CI docs job:
//
//   - every internal package carries a doc.go with a package comment;
//   - relative links in the markdown docs resolve to real files;
//   - API.md documents every route the server actually registers, and
//     its CLI appendix names every command in cmd/;
//   - the /metrics Prometheus exposition a live server produces is
//     well-formed (HELP/TYPE headers, monotonic histogram buckets).

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/server"
)

// internalPackages walks internal/ and returns each directory that
// contains Go source (skipping testdata).
func internalPackages(t *testing.T) []string {
	t.Helper()
	var pkgs []string
	err := filepath.WalkDir("internal", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".go") {
				pkgs = append(pkgs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestEveryInternalPackageHasDocGo(t *testing.T) {
	for _, pkg := range internalPackages(t) {
		doc := filepath.Join(pkg, "doc.go")
		b, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: no doc.go (%v)", pkg, err)
			continue
		}
		if !strings.Contains(string(b), "// Package ") {
			t.Errorf("%s: doc.go has no package comment", doc)
		}
	}
}

// mdLink matches [text](target) link targets, excluding web URLs and
// pure in-page anchors.
var mdLink = regexp.MustCompile(`\]\(([^)#][^)]*)\)`)

func TestMarkdownRelativeLinksResolve(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, "results/README.md")
	for _, doc := range docs {
		b, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", doc, m[1], err)
			}
		}
	}
}

func TestAPIDocCoversEveryRoute(t *testing.T) {
	b, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	api := string(b)
	for _, route := range server.Routes() {
		method, pattern, ok := strings.Cut(route, " ")
		if !ok {
			t.Fatalf("malformed route %q", route)
		}
		// API.md writes routes as "METHOD /path" with the pattern
		// verbatim (including {study} / {id} placeholders).
		if !strings.Contains(api, method+" "+pattern) {
			t.Errorf("API.md does not document route %q", route)
		}
	}
	for _, study := range server.StudyNames() {
		if !strings.Contains(api, study) {
			t.Errorf("API.md does not mention study %q", study)
		}
	}
}

// TestMetricsExpositionWellFormed boots an in-process daemon
// (memory-only store), scrapes GET /metrics and lints the Prometheus
// text exposition: every sample needs HELP and TYPE headers, values must
// parse, histogram buckets must be cumulative and end at +Inf. The same
// linter backs the server's own exposition tests; running it from the
// docs job keeps the documented scrape contract honest.
func TestMetricsExpositionWellFormed(t *testing.T) {
	srv, err := server.New(server.Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	if err := server.LintExposition(body); err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	for _, want := range []string{
		"comasrv_requests_total",
		"comasrv_request_duration_seconds_bucket",
		"comasrv_queue_wait_seconds_bucket",
		"comasrv_build_info",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestAPIDocCLIAppendixNamesEveryCommand(t *testing.T) {
	b, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	api := string(b)
	cmds, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmds {
		if !c.IsDir() {
			continue
		}
		if !strings.Contains(api, "cmd/"+c.Name()) {
			t.Errorf("API.md CLI appendix does not name cmd/%s", c.Name())
		}
	}
}
