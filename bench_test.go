// Benchmarks that regenerate the paper's tables and figures, one per
// artifact. They report reproduction metrics (relative miss rates, traffic
// ratios, how many applications match the paper's claims) via
// b.ReportMetric; wall time mostly measures the first, un-memoized
// iteration.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/obs"
)

// runner memoizes traces and simulation results across all benchmarks in
// this binary (safe for the concurrent matrices the drivers fan out).
var runner = experiments.NewRunner()

// BenchmarkSimFigure2Matrix is the tracked whole-simulation benchmark:
// the full Figure 2 run matrix (14 apps x ppn {1,2,4} at 6% MP, 16
// processors) on a fresh un-memoized single-worker runner each
// iteration, so elapsed time is pure simulator throughput. The ns/ref
// and refs/sec metrics are what cmd/bench records in BENCH_results.json
// and what the CI bench job gates on.
func BenchmarkSimFigure2Matrix(b *testing.B) {
	// References processed per matrix iteration: each app simulates once
	// per clustering degree.
	var perIter int64
	for _, name := range core.Workloads() {
		tr, err := core.Workload(name, 16)
		if err != nil {
			b.Fatal(err)
		}
		s := tr.Summarize()
		perIter += 3 * (s.Reads + s.Writes)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		r.Jobs = 1
		if _, err := r.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(perIter) * float64(b.N)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/ref")
	b.ReportMetric(total/b.Elapsed().Seconds(), "refs/sec")
}

// BenchmarkSimFigure2Sampled is the tracked sampled-fidelity benchmark:
// the same Figure 2 matrix as BenchmarkSimFigure2Matrix but with the
// runner defaulting every configuration to SMARTS-style sampled
// execution (default 16000/16000/256000ns geometry). The ratio of this
// benchmark's ns/ref to BenchmarkSimFigure2Matrix's is the measured
// fast-forward speedup; CI gates both so a regression in either the
// exact or the sampled path is caught.
func BenchmarkSimFigure2Sampled(b *testing.B) {
	var perIter int64
	for _, name := range core.Workloads() {
		tr, err := core.Workload(name, 16)
		if err != nil {
			b.Fatal(err)
		}
		s := tr.Summarize()
		perIter += 3 * (s.Reads + s.Writes)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		r.Jobs = 1
		r.Fidelity = config.Fidelity{Mode: machine.FidelitySampled}
		if _, err := r.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(perIter) * float64(b.N)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/ref")
	b.ReportMetric(total/b.Elapsed().Seconds(), "refs/sec")
}

// BenchmarkSimRing64 is the tracked ring-topology benchmark: one
// 64-processor simulation (32 nodes in 16 clusters, scaled pressure) on
// the hierarchical fabric, un-memoized, so elapsed time is pure ring
// simulator throughput — cluster-bus arbitration, link hops and
// two-level directory maintenance included. CI's bench job gates its
// ns/ref alongside BenchmarkSimFigure2Matrix.
func BenchmarkSimRing64(b *testing.B) {
	tr, err := core.Workload("fft", 64)
	if err != nil {
		b.Fatal(err)
	}
	s := tr.Summarize()
	perIter := s.Reads + s.Writes
	cfg := core.Baseline(2, core.MP50)
	cfg.Procs = 64
	cfg.ScalePressure = true
	cfg.Topology = "ring"
	cfg.Clusters = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(perIter) * float64(b.N)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/ref")
	b.ReportMetric(total/b.Elapsed().Seconds(), "refs/sec")
}

// freshFigure2 regenerates Figure 2 on a fresh un-memoized 8-processor
// runner with the given pool width, so the benchmark measures real
// simulation wall clock rather than cache hits.
func freshFigure2(b *testing.B, jobs int) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		r.Procs = 8
		r.Jobs = jobs
		if _, err := r.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Jobs1 vs BenchmarkFigure2JobsN: the ratio of these two
// is the experiment engine's parallel speedup on this machine (output is
// byte-identical either way).
func BenchmarkFigure2Jobs1(b *testing.B) { freshFigure2(b, 1) }

func BenchmarkFigure2JobsN(b *testing.B) { freshFigure2(b, runtime.NumCPU()) }

// BenchmarkTable1Workloads generates every Table 1 workload trace.
func BenchmarkTable1Workloads(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = runner.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "apps")
	var refs int64
	for _, r := range rows {
		refs += r.Reads + r.Writes
	}
	b.ReportMetric(float64(refs), "refs")
}

// BenchmarkFig2RelativeRNMr regenerates Figure 2 and reports the headline
// averages (paper: 82% for 2-way, 62% for 4-way clustering).
func BenchmarkFig2RelativeRNMr(b *testing.B) {
	var f *experiments.Fig2
	for i := 0; i < b.N; i++ {
		var err error
		f, err = runner.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*f.Mean2, "relRNMr2way%")
	b.ReportMetric(100*f.Mean4, "relRNMr4way%")
	improved := 0
	for _, r := range f.Rows {
		if r.Rel4 < 1 {
			improved++
		}
	}
	b.ReportMetric(float64(improved), "apps-improved/14")
}

// BenchmarkFig3Traffic regenerates Figure 3 and reports how many of the
// eight applications see lower total traffic with 4-processor nodes at
// 87% MP (the paper's consistent-winner group: all eight).
func BenchmarkFig3Traffic(b *testing.B) {
	var f *experiments.TrafficFigure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = runner.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(trafficWinners(f, "87%")), "cluster-wins/8")
	b.ReportMetric(float64(trafficWinners(f, "81%")), "cluster-wins81/8")
}

// trafficWinners counts applications whose 4p bar is lower than their 1p
// bar at the given pressure (4-way AMs only).
func trafficWinners(f *experiments.TrafficFigure, mp string) int {
	tot := map[string][2]float64{}
	for _, bar := range f.Bars {
		if bar.MP != mp || bar.AMWays != 4 {
			continue
		}
		v := tot[bar.App]
		if bar.ProcsPerNode == 1 {
			v[0] = bar.Total()
		} else {
			v[1] = bar.Total()
		}
		tot[bar.App] = v
	}
	wins := 0
	for _, v := range tot {
		if v[1] < v[0] {
			wins++
		}
	}
	return wins
}

// BenchmarkFig4ConflictMisses regenerates Figure 4 and reports how much
// 8-way associativity cuts the 87%-MP traffic of the conflict-sensitive
// group (the paper attributes their high-pressure blowup to conflict
// misses in the 4-way attraction memories).
func BenchmarkFig4ConflictMisses(b *testing.B) {
	var f *experiments.TrafficFigure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = runner.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	var t4, t8 float64
	for _, bar := range f.Bars {
		if bar.MP != "87%" || bar.ProcsPerNode != 1 {
			continue
		}
		if bar.AMWays == 4 {
			t4 += float64(bar.TotalNs)
		} else {
			t8 += float64(bar.TotalNs)
		}
	}
	if t4 > 0 {
		b.ReportMetric(100*t8/t4, "8way-traffic-vs-4way%")
	}
	b.ReportMetric(float64(trafficWinners(f, "81%")), "cluster-wins81/6")
	b.ReportMetric(float64(trafficWinners(f, "87%")), "cluster-wins87/6")
}

// BenchmarkFig5ExecutionTime regenerates Figure 5 and reports how many
// applications run faster with 4-way clustering than with 1-processor
// nodes at 81% MP (paper: 13 of 14; only LU-non loses to node contention).
func BenchmarkFig5ExecutionTime(b *testing.B) {
	var f *experiments.Fig5
	for i := 0; i < b.N; i++ {
		var err error
		f, err = runner.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	exec := map[string][2]int64{}
	for _, bar := range f.Bars {
		v := exec[bar.App]
		switch bar.Label {
		case "1p@81%":
			v[0] = bar.ExecNs
		case "4p@81%":
			v[1] = bar.ExecNs
		}
		exec[bar.App] = v
	}
	wins := 0
	for _, v := range exec {
		if v[1] < v[0] {
			wins++
		}
	}
	b.ReportMetric(float64(wins), "cluster-wins/14")
}

// BenchmarkSensitivityDRAM reproduces §4.3's DRAM-bandwidth study.
func BenchmarkSensitivityDRAM(b *testing.B) {
	var ss []*experiments.Sens
	for i := 0; i < b.N; i++ {
		var err error
		ss, err = runner.SensitivityDRAM()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, s := range ss {
		degraded := 0
		for _, r := range s.Rows {
			if r.Slowdown > 0.05 {
				degraded++
			}
		}
		unit := "degraded@1x/14"
		if i == 1 {
			unit = "degraded@2x/14"
		}
		b.ReportMetric(float64(degraded), unit)
	}
}

// BenchmarkSensitivityNode reproduces §4.3's provisioned-node study
// (4x DRAM + 2x node controller: clustering should be at least on par
// everywhere except LU-non).
func BenchmarkSensitivityNode(b *testing.B) {
	var s *experiments.Sens
	for i := 0; i < b.N; i++ {
		var err error
		s, err = runner.SensitivityNode()
		if err != nil {
			b.Fatal(err)
		}
	}
	atPar := 0
	for _, r := range s.Rows {
		if r.Slowdown <= 0.05 {
			atPar++
		}
	}
	b.ReportMetric(float64(atPar), "at-par/14")
}

// BenchmarkSensitivityBus reproduces §4.3's halved-bus study: slower
// global buses should make clustering (which reduces bus traffic) more
// attractive.
func BenchmarkSensitivityBus(b *testing.B) {
	var ss []*experiments.Sens
	for i := 0; i < b.N; i++ {
		var err error
		ss, err = runner.SensitivityBus()
		if err != nil {
			b.Fatal(err)
		}
	}
	improvedByHalving := 0
	for i := range ss[0].Rows {
		if ss[1].Rows[i].Slowdown < ss[0].Rows[i].Slowdown {
			improvedByHalving++
		}
	}
	b.ReportMetric(float64(improvedByHalving), "more-attractive/14")
}

// BenchmarkSensitivityPressure reproduces §4.3's 6%-vs-50% MP comparison
// (paper: FFT the most sensitive at 4.2%).
func BenchmarkSensitivityPressure(b *testing.B) {
	var rows []experiments.PressureRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = runner.SensitivityPressure()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "fft" {
			b.ReportMetric(100*r.Gain, "fft-50%-penalty%")
		}
	}
}

// BenchmarkAblationInclusion compares the inclusive hierarchy against the
// non-inclusive extension (paper §4.2 points to [9, 2]: breaking inclusion
// softens the conflict-miss blowup at very high pressure, since SLC
// contents survive AM replacement).
func BenchmarkAblationInclusion(b *testing.B) {
	apps := []string{"barnes", "raytrace", "volrend"}
	var incl, nonIncl float64
	for i := 0; i < b.N; i++ {
		incl, nonIncl = 0, 0
		for _, app := range apps {
			cfg := config.Baseline(1, config.MP87)
			res, err := runner.Run(app, cfg)
			if err != nil {
				b.Fatal(err)
			}
			incl += float64(res.ExecTime)
			cfg.Inclusive = false
			res, err = runner.Run(app, cfg)
			if err != nil {
				b.Fatal(err)
			}
			nonIncl += float64(res.ExecTime)
		}
	}
	if incl > 0 {
		b.ReportMetric(100*nonIncl/incl, "noninclusive-exec-vs-inclusive%")
	}
}

// BenchmarkAblationReplacement switches off the protocol's replacement
// design choices one at a time (DESIGN.md §5) at 87% MP, where
// replacement behaviour dominates, and reports the traffic cost of losing
// each: the Shared-first victim priority, ownership promotion, and the
// accept-based receiver priority.
func BenchmarkAblationReplacement(b *testing.B) {
	apps := []string{"fft", "lu-c", "radix"}
	type variant struct {
		name string
		mut  func(*config.Machine)
	}
	variants := []variant{
		{"baseline", func(*config.Machine) {}},
		{"lru-victims", func(c *config.Machine) { c.Policy.VictimSharedFirst = false }},
		{"no-promote", func(c *config.Machine) { c.Policy.PromoteOwnership = false }},
		{"no-accept-priority", func(c *config.Machine) { c.Policy.AcceptPriority = false }},
	}
	totals := make([]float64, len(variants))
	for i := 0; i < b.N; i++ {
		for vi := range totals {
			totals[vi] = 0
		}
		for _, app := range apps {
			for vi, v := range variants {
				cfg := config.Baseline(1, config.MP87)
				v.mut(&cfg)
				res, err := runner.Run(app, cfg)
				if err != nil {
					b.Fatal(err)
				}
				totals[vi] += float64(res.BusTotal())
			}
		}
	}
	for vi := 1; vi < len(variants); vi++ {
		if totals[0] > 0 {
			b.ReportMetric(100*totals[vi]/totals[0], variants[vi].name+"-traffic%")
		}
	}
}

// BenchmarkAblationWriteBuffer sweeps the release-consistency write-buffer
// depth (the paper fixes 10 entries) on the most store-intensive
// workload.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	depths := []int{1, 2, 10, 32}
	execs := make([]float64, len(depths))
	var tr *core.Trace
	for i := 0; i < b.N; i++ {
		var err error
		tr, err = runner.Trace("radix")
		if err != nil {
			b.Fatal(err)
		}
		for di, d := range depths {
			params := config.Baseline(1, config.MP50).Params(tr.WorkingSet)
			params.WriteBufferDepth = d
			m, err := machine.New(params)
			if err != nil {
				b.Fatal(err)
			}
			res, err := m.Run(tr)
			if err != nil {
				b.Fatal(err)
			}
			execs[di] = float64(res.ExecTime)
		}
	}
	b.ReportMetric(100*execs[0]/execs[2], "depth1-exec-vs-depth10%")
	b.ReportMetric(100*execs[3]/execs[2], "depth32-exec-vs-depth10%")
}

// BenchmarkAblationUpdate compares the paper's invalidation protocol
// against a write-update variant (the trade-off explored by the adaptive
// update literature the paper cites): update wins on producer/consumer
// patterns, invalidation on write-then-rewrite data.
func BenchmarkAblationUpdate(b *testing.B) {
	apps := []string{"micro-producer", "ocean-c", "radix"}
	for i := 0; i < b.N; i++ {
		for _, app := range apps {
			tr, err := core.Workload(app, 16)
			if err != nil {
				b.Fatal(err)
			}
			inval := core.Baseline(1, core.MP50)
			rInval, err := core.Run(tr, inval)
			if err != nil {
				b.Fatal(err)
			}
			upd := inval
			upd.Policy.WriteUpdate = true
			rUpd, err := core.Run(tr, upd)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(100*float64(rUpd.ExecTime)/float64(rInval.ExecTime),
					app+"-update-exec%")
			}
		}
	}
}

// BenchmarkAblationScale verifies the central clustering conclusion
// survives problem-size changes: the 4-way relative RNMr at 6% MP is
// computed at half-size and double-size problems (every cache rescales
// with the working set, per the methodology).
func BenchmarkAblationScale(b *testing.B) {
	names := []string{"fft", "barnes", "radix"}
	scales := []apps.Scale{apps.ScaleSmall, apps.ScaleLarge}
	rel := make([]float64, len(scales))
	for i := 0; i < b.N; i++ {
		for si, sc := range scales {
			var sum float64
			for _, name := range names {
				tr, err := apps.GenerateScaled(name, 16, sc)
				if err != nil {
					b.Fatal(err)
				}
				r1, err := core.Run(tr, core.Baseline(1, core.MP6))
				if err != nil {
					b.Fatal(err)
				}
				r4, err := core.Run(tr, core.Baseline(4, core.MP6))
				if err != nil {
					b.Fatal(err)
				}
				sum += r4.RNMr() / r1.RNMr()
			}
			rel[si] = 100 * sum / float64(len(names))
		}
	}
	b.ReportMetric(rel[0], "relRNMr4way-small%")
	b.ReportMetric(rel[1], "relRNMr4way-large%")
}

// BenchmarkLatencyTail reports the mechanism behind Figure 5: the mean
// p99 read latency across applications at 81% MP, unclustered vs 4-way
// clustered (remote accesses live in the tail).
func BenchmarkLatencyTail(b *testing.B) {
	var rows []experiments.LatencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = runner.Latency()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum [2]float64
	var n [2]int
	for _, r := range rows {
		q := float64(r.P99)
		if r.P99 < 0 {
			q = 42496 // one doubling past the last bounded bucket
		}
		idx := 0
		if r.Label == "4p" {
			idx = 1
		}
		sum[idx] += q
		n[idx]++
	}
	b.ReportMetric(sum[0]/float64(n[0]), "mean-p99-1p-ns")
	b.ReportMetric(sum[1]/float64(n[1]), "mean-p99-4p-ns")
}

// BenchmarkAblationMachineSize runs the Figure 2 comparison on a
// 32-processor machine (8 nodes of 4) — an extension beyond the paper's
// fixed 16 processors: does the clustering gain survive scaling the
// machine?
func BenchmarkAblationMachineSize(b *testing.B) {
	names := []string{"fft", "radix", "water-n2"}
	var rel16, rel32 float64
	for i := 0; i < b.N; i++ {
		rel16, rel32 = 0, 0
		for _, name := range names {
			for _, procs := range []int{16, 32} {
				tr, err := core.Workload(name, procs)
				if err != nil {
					b.Fatal(err)
				}
				cfg1 := core.Baseline(1, core.MP6)
				cfg1.Procs = procs
				cfg4 := core.Baseline(4, core.MP6)
				cfg4.Procs = procs
				r1, err := core.Run(tr, cfg1)
				if err != nil {
					b.Fatal(err)
				}
				r4, err := core.Run(tr, cfg4)
				if err != nil {
					b.Fatal(err)
				}
				if procs == 16 {
					rel16 += r4.RNMr() / r1.RNMr()
				} else {
					rel32 += r4.RNMr() / r1.RNMr()
				}
			}
		}
	}
	b.ReportMetric(100*rel16/float64(len(names)), "relRNMr4way-16p%")
	b.ReportMetric(100*rel32/float64(len(names)), "relRNMr4way-32p%")
}

// BenchmarkAblationLocks compares the default ideal queue lock against
// test&test&set spinning on the lock-heaviest workloads: spinning turns
// every lock hand-off into an invalidate/re-read burst.
func BenchmarkAblationLocks(b *testing.B) {
	names := []string{"radiosity", "water-n2"}
	var quiet, spin float64
	for i := 0; i < b.N; i++ {
		quiet, spin = 0, 0
		for _, name := range names {
			tr, err := runner.Trace(name)
			if err != nil {
				b.Fatal(err)
			}
			params := config.Baseline(1, config.MP50).Params(tr.WorkingSet)
			m, err := machine.New(params)
			if err != nil {
				b.Fatal(err)
			}
			res, err := m.Run(tr)
			if err != nil {
				b.Fatal(err)
			}
			quiet += float64(res.ExecTime)
			params.SpinLocks = true
			m, err = machine.New(params)
			if err != nil {
				b.Fatal(err)
			}
			res, err = m.Run(tr)
			if err != nil {
				b.Fatal(err)
			}
			spin += float64(res.ExecTime)
		}
	}
	if quiet > 0 {
		b.ReportMetric(100*spin/quiet, "spinlock-exec-vs-queue%")
	}
}

// benchObservability runs a small full-machine simulation with the given
// event sink attached (nil = instrumentation disabled, the default).
func benchObservability(b *testing.B, sink func() obs.Sink) {
	tr, err := core.Workload("micro-producer", 8)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Baseline(1, config.MP50)
	cfg.Procs = 8
	params := cfg.Params(tr.WorkingSet)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(params)
		if err != nil {
			b.Fatal(err)
		}
		m.SetSink(sink())
		if _, err := m.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObservabilityOff vs BenchmarkObservabilityOn: the ratio is the
// whole-simulation cost of event instrumentation. Off (nil sink, the
// disabled-recorder guard on every emit site) is the configuration every
// experiment runs in, so it must stay indistinguishable from the
// pre-instrumentation simulator.
func BenchmarkObservabilityOff(b *testing.B) {
	benchObservability(b, func() obs.Sink { return nil })
}

func BenchmarkObservabilityOn(b *testing.B) {
	benchObservability(b, func() obs.Sink { return &obs.Counting{} })
}

// TestDisabledSinkZeroAlloc pins the observability contract the simulator
// relies on: with no sink attached, the emit path allocates nothing — so
// it is safe to leave the instrumentation calls in every hot loop. Runs
// under -race too (the guard must not rely on inlining tricks the race
// detector defeats).
func TestDisabledSinkZeroAlloc(t *testing.T) {
	rec := obs.NewRecorder(nil)
	ev := obs.Event{Kind: obs.KindBusGrant, Node: 3, Peer: -1, At: 42, Dur: 80, Line: 7}
	allocs := testing.AllocsPerRun(1000, func() {
		if rec.Enabled() {
			rec.Emit(ev)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled-sink emit path allocates %v bytes/op, want 0", allocs)
	}
}

// BenchmarkAblationNUMA compares the COMA machine against the CC-NUMA
// baseline on workloads with migratory data (the architectural argument
// of paper Section 2: COMA turns repeated remote misses into local AM
// hits).
func BenchmarkAblationNUMA(b *testing.B) {
	apps := []string{"raytrace", "water-n2"}
	var comaNs, numaNs float64
	for i := 0; i < b.N; i++ {
		comaNs, numaNs = 0, 0
		for _, app := range apps {
			tr, err := runner.Trace(app)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.Baseline(1, core.MP50)
			res, err := core.Run(tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			comaNs += float64(res.ExecTime)
			nres, err := core.RunNUMA(tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			numaNs += float64(nres.ExecTime)
		}
	}
	if numaNs > 0 {
		b.ReportMetric(100*comaNs/numaNs, "coma-exec-vs-numa%")
	}
}
