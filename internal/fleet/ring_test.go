package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("s%02d", i), URL: fmt.Sprintf("http://127.0.0.1:%d", 18000+i)}
	}
	return ms
}

// digest derives a deterministic stream of content addresses: the test
// keys are themselves SHA-256 outputs, exactly like real store keys.
func digest(i int) [sha256.Size]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return sha256.Sum256(b[:])
}

// The ring must spread 1e5 digests across 8 members within ±15% of the
// perfect share at the default virtual-node count.
func TestRingBalance(t *testing.T) {
	const keys = 100000
	members := testMembers(8)
	r, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int, len(members))
	for i := 0; i < keys; i++ {
		counts[r.Owner(digest(i)).ID]++
	}
	mean := float64(keys) / float64(len(members))
	for _, m := range members {
		got := float64(counts[m.ID])
		dev := (got - mean) / mean
		t.Logf("%s: %d keys (%+.1f%%)", m.ID, counts[m.ID], 100*dev)
		if dev > 0.15 || dev < -0.15 {
			t.Errorf("%s owns %.0f keys, more than 15%% from the mean %.0f", m.ID, got, mean)
		}
	}
}

// Ring construction must be canonical: member order must not matter.
func TestRingCanonicalForMemberSet(t *testing.T) {
	members := testMembers(5)
	r1, err := New(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]Member, len(members))
	for i, m := range members {
		reversed[len(members)-1-i] = m
	}
	r2, err := New(reversed, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		k := digest(i)
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %d: owner differs with member order (%s vs %s)", i, r1.Owner(k).ID, r2.Owner(k).ID)
		}
	}
}

// Removing one member of n must remap exactly the keys it owned — every
// other key keeps its owner — and a join must only steal keys for the
// new member, taking roughly a 1/(n+1) share.
func TestRingMinimalRemap(t *testing.T) {
	const keys = 100000
	members := testMembers(6)
	full, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("leave", func(t *testing.T) {
		removed := members[2]
		smaller, err := New(append(append([]Member{}, members[:2]...), members[3:]...), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < keys; i++ {
			k := digest(i)
			before, after := full.Owner(k), smaller.Owner(k)
			if before.ID == removed.ID {
				moved++
				continue
			}
			if before != after {
				t.Fatalf("key %d moved %s -> %s although %s did not leave", i, before.ID, after.ID, before.ID)
			}
		}
		if frac, max := float64(moved)/keys, 1.5/float64(len(members)); frac > max {
			t.Errorf("leave remapped %.1f%% of keys, want <= %.1f%%", 100*frac, 100*max)
		}
	})

	t.Run("join", func(t *testing.T) {
		joined := Member{ID: "s99", URL: "http://127.0.0.1:18099"}
		bigger, err := New(append(append([]Member{}, members...), joined), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < keys; i++ {
			k := digest(i)
			before, after := full.Owner(k), bigger.Owner(k)
			if before == after {
				continue
			}
			if after.ID != joined.ID {
				t.Fatalf("key %d moved %s -> %s although only %s joined", i, before.ID, after.ID, joined.ID)
			}
			moved++
		}
		frac := float64(moved) / keys
		if max := 1.5 / float64(len(members)+1); frac > max {
			t.Errorf("join remapped %.1f%% of keys, want <= %.1f%%", 100*frac, 100*max)
		}
		if frac == 0 {
			t.Error("join remapped nothing; the new member owns no keys")
		}
	})
}

// Replicas must return distinct members led by the owner, clamped to the
// fleet size.
func TestRingReplicas(t *testing.T) {
	r, err := New(testMembers(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := digest(i)
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("key %d: %d replicas, want 3", i, len(reps))
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("key %d: replicas[0] = %s, owner = %s", i, reps[0].ID, r.Owner(k).ID)
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m.ID] {
				t.Fatalf("key %d: duplicate replica %s", i, m.ID)
			}
			seen[m.ID] = true
		}
	}
	if got := r.Replicas(digest(0), 99); len(got) != 4 {
		t.Errorf("Replicas clamps to fleet size: got %d, want 4", len(got))
	}
}

func TestNewRejectsBadMembership(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := New([]Member{{ID: "a"}, {ID: "a"}}, 0); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := New([]Member{{ID: ""}}, 0); err == nil {
		t.Error("empty ID accepted")
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("s1=http://a:1, s2=http://b:2 ,s3=http://c:3/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[2].URL != "http://c:3" {
		t.Fatalf("parsed %v", ms)
	}
	for _, bad := range []string{"", "nourl", "=http://a:1", "s1=", "s1=:junk"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) accepted", bad)
		}
	}
}
