// Package fleet implements the consistent-hash ring that shards the
// comasrv content-addressed store across a fleet of replicas.
//
// Each member (a comasrv shard) is projected onto the ring at a fixed
// number of virtual-node points derived only from its shard ID, so the
// ring a member computes is identical on every shard that agrees on the
// membership list, with no coordination. A request's SHA-256 content
// address maps to the first virtual node clockwise; that member owns the
// entry. Virtual nodes keep the load balanced (within a few percent at
// the default 128 points per member) and make membership changes
// minimally disruptive: joining or removing one member of n remaps only
// the ~1/n of the key space that member owns, and never changes the
// owner of a key both rings assign to a surviving member.
//
// The ring is immutable after construction; membership changes build a
// new ring. Replicas enumerates the distinct members that follow the
// owner clockwise, which the server uses to place best-effort copies of
// hot entries.
package fleet
