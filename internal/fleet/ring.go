package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Member is one shard of the fleet: a stable identity (the ring position
// depends only on ID) and the base URL peers reach it at.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// DefaultVirtualNodes is the per-member virtual-node count. 128 points
// per member keeps the worst member within a few percent of the mean
// share on realistic fleet sizes while the whole ring stays a few
// kilobytes.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a member set. Build
// with New; a membership change builds a new Ring.
type Ring struct {
	members []Member // sorted by ID
	vnodes  int
	points  []point // sorted by hash
}

// point is one virtual node: a position on the ring and the index of the
// member it belongs to.
type point struct {
	hash   uint64
	member int32
}

// New builds a ring over members with vnodes virtual nodes per member
// (0 selects DefaultVirtualNodes). Member IDs must be unique and
// non-empty; order does not matter — the ring is canonical for a set.
func New(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: empty membership")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i, m := range ms {
		if m.ID == "" {
			return nil, fmt.Errorf("fleet: member with empty ID")
		}
		if i > 0 && ms[i-1].ID == m.ID {
			return nil, fmt.Errorf("fleet: duplicate member ID %q", m.ID)
		}
	}
	r := &Ring{members: ms, vnodes: vnodes, points: make([]point, 0, len(ms)*vnodes)}
	for mi, m := range ms {
		for v := 0; v < vnodes; v++ {
			h := sha256.Sum256([]byte(m.ID + "#" + strconv.Itoa(v)))
			r.points = append(r.points, point{hash: binary.BigEndian.Uint64(h[:8]), member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between two members' virtual nodes is
		// astronomically unlikely; break the tie deterministically anyway
		// so every shard agrees.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the membership in canonical (ID-sorted) order.
func (r *Ring) Members() []Member {
	ms := make([]Member, len(r.members))
	copy(ms, r.members)
	return ms
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// VirtualNodes returns the per-member virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// MemberByID returns the member with the given ID.
func (r *Ring) MemberByID(id string) (Member, bool) {
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i].ID >= id })
	if i < len(r.members) && r.members[i].ID == id {
		return r.members[i], true
	}
	return Member{}, false
}

// ringHash positions a content address on the ring. The key is already a
// SHA-256 digest, so its first eight bytes are uniformly distributed.
func ringHash(key [sha256.Size]byte) uint64 {
	return binary.BigEndian.Uint64(key[:8])
}

// firstPoint returns the index of the first virtual node clockwise from
// key (wrapping past the top of the hash space).
func (r *Ring) firstPoint(key [sha256.Size]byte) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member that owns key: the member of the first
// virtual node clockwise from the key's ring position.
func (r *Ring) Owner(key [sha256.Size]byte) Member {
	return r.members[r.points[r.firstPoint(key)].member]
}

// Replicas returns up to n distinct members for key in preference
// order: the owner first, then the distinct members of the following
// virtual nodes clockwise. n is clamped to the member count.
func (r *Ring) Replicas(key [sha256.Size]byte, n int) []Member {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n < 1 {
		n = 1
	}
	out := make([]Member, 0, n)
	seen := make(map[int32]bool, n)
	start := r.firstPoint(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, r.members[p.member])
	}
	return out
}

// ParseMembers parses the -peers flag form: a comma-separated list of
// "id=url" entries naming every shard in the fleet (including the shard
// parsing it).
func ParseMembers(s string) ([]Member, error) {
	var ms []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(part, "=")
		if !ok || id == "" || rawURL == "" {
			return nil, fmt.Errorf("fleet: bad member %q (want id=url)", part)
		}
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: bad member URL %q (want e.g. http://host:port)", rawURL)
		}
		ms = append(ms, Member{ID: id, URL: strings.TrimRight(rawURL, "/")})
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("fleet: empty membership")
	}
	return ms, nil
}
