package obs

import (
	"fmt"
	"io"
)

// Counting tallies events without retaining them: per-kind counts, a
// protocol state-transition matrix and per-class bus occupancy. The zero
// value is ready to use.
type Counting struct {
	// Kinds counts events per Kind.
	Kinds [NumKinds]int64
	// Transitions[from][to] counts AM state transitions (states are the
	// coma package's I=0, S=1, O=2, E=3).
	Transitions [4][4]int64
	// BusOccNs accumulates bus occupancy per transaction class (cluster
	// buses included on hierarchical topologies).
	BusOccNs [3]int64
	// LinkOccNs accumulates ring-link occupancy per transaction class
	// (always zero on the bus topology).
	LinkOccNs [3]int64
	// WBStallNs accumulates write-buffer back-pressure time.
	WBStallNs int64
}

// Emit implements Sink.
func (c *Counting) Emit(e Event) {
	c.Kinds[e.Kind]++
	switch e.Kind {
	case KindTransition:
		if e.From < 4 && e.To < 4 {
			c.Transitions[e.From][e.To]++
		}
	case KindBusGrant:
		if e.Class < 3 {
			c.BusOccNs[e.Class] += e.Dur
		}
	case KindLinkGrant:
		if e.Class < 3 {
			c.LinkOccNs[e.Class] += e.Dur
		}
	case KindWBStall:
		c.WBStallNs += e.Dur
	}
}

// Total returns the number of events seen.
func (c *Counting) Total() int64 {
	var n int64
	for _, k := range c.Kinds {
		n += k
	}
	return n
}

// TransitionTotal returns the number of state transitions seen.
func (c *Counting) TransitionTotal() int64 {
	var n int64
	for _, row := range c.Transitions {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Ring keeps the most recent events in a fixed-capacity buffer — the
// "flight recorder" sink: cheap enough to leave on, and the tail is what
// an anomaly hunt wants.
type Ring struct {
	buf   []Event
	next  int
	total int64
}

// NewRing returns a ring buffer holding the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		panic("obs: ring capacity must be positive")
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns the number of events ever emitted (not just retained).
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// JSONL streams every event as one JSON object per line. The encoding is
// hand-rolled with a fixed key order so event logs are byte-stable and
// diffable across runs.
type JSONL struct {
	w   io.Writer
	err error
}

// NewJSONL returns a sink writing JSON lines to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Emit implements Sink. The first write error sticks and suppresses
// further output (check Err after the run).
func (j *JSONL) Emit(e Event) {
	if j.err != nil {
		return
	}
	_, j.err = fmt.Fprintf(j.w,
		`{"kind":%q,"at":%d,"node":%d,"peer":%d,"line":%d,"from":%d,"to":%d,"class":%d,"dur":%d}`+"\n",
		e.Kind.String(), e.At, e.Node, e.Peer, e.Line, e.From, e.To, e.Class, e.Dur)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

// Tee fans one event stream out to several sinks.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
