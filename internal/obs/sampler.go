package obs

// Windowed sampling: the aggregate counters (Counting, the machine's
// miss counters) explain a whole run; the Sampler explains its *phases*.
// It bins counter deltas into fixed-width windows of simulated time, so
// barrier waves, FFT transposes and Radix permutation bursts show up as
// time-resolved bus-utilization and miss-rate curves instead of
// averaging away — the same presentation the sampling-based
// attraction-memory studies argue from.
//
// The Sampler is single-machine, single-goroutine state, exactly like
// every other Sink: the machine drives it from the scheduler loop via
// Advance (simulated clock), feeds it protocol/bus/sync events via Emit,
// and feeds it access outcomes via NoteAccess/NoteMiss (misses are not
// events). Attribution rule: everything observed between two Advance
// calls lands in the window containing the *step* that produced it, even
// when an individual event timestamp (a bus grant queued behind earlier
// traffic) falls past the window edge. Windows are therefore exact
// partitions of scheduler time, the quantity that is non-decreasing.

// Timeline is the compact struct-of-arrays result of a sampled run: one
// entry per window in every slice. Empty windows (no activity while the
// clock jumped a barrier wait) are materialized as zeros so index i is
// always the window starting at i*WindowNs.
type Timeline struct {
	// WindowNs is the window width in simulated nanoseconds.
	WindowNs int64
	// BusNs[class][i] is bus occupancy granted in window i per
	// transaction class (read, write, replace).
	BusNs [3][]int64
	// Reads[i] and Writes[i] count data references issued in window i.
	Reads, Writes []int64
	// SLCMisses[i] counts references that missed the private hierarchy
	// and entered the attraction-memory system.
	SLCMisses []int64
	// NodeMisses[i] counts references the local attraction memory could
	// not satisfy (a global bus transaction was required).
	NodeMisses []int64
	// Transitions[i*16 + from*4 + to] counts AM state transitions in
	// window i (states are the coma package's I=0, S=1, O=2, E=3).
	Transitions []int64
	// LinkNs[i] is ring-link occupancy granted in window i, summed over
	// classes (all zeros on the bus topology).
	LinkNs []int64
	// WBStallNs[i] is write-buffer back-pressure time charged in window i.
	WBStallNs []int64
	// SyncArrivals[i] counts barrier/lock-wait arrivals in window i.
	SyncArrivals []int64
	// Replacements[i] counts replacement outcomes in window i.
	Replacements []int64
}

// Windows returns the number of sampled windows.
func (t *Timeline) Windows() int { return len(t.Reads) }

// StartNs returns the simulated start time of window i.
func (t *Timeline) StartNs(i int) int64 { return int64(i) * t.WindowNs }

// BusBusyNs returns total bus occupancy granted in window i.
func (t *Timeline) BusBusyNs(i int) int64 {
	return t.BusNs[0][i] + t.BusNs[1][i] + t.BusNs[2][i]
}

// BusUtilization returns window i's bus occupancy as a fraction of the
// window width. Queued grants are attributed to the window of the step
// that issued them, so a saturated window can exceed 1.0.
func (t *Timeline) BusUtilization(i int) float64 {
	return float64(t.BusBusyNs(i)) / float64(t.WindowNs)
}

// TransitionTotal returns the number of AM state transitions in window i.
func (t *Timeline) TransitionTotal(i int) int64 {
	var n int64
	for _, v := range t.Transitions[i*16 : (i+1)*16] {
		n += v
	}
	return n
}

// TransitionsFrom returns window i's transition count out of a state.
func (t *Timeline) TransitionsFrom(i int, from int) int64 {
	var n int64
	for _, v := range t.Transitions[i*16+from*4 : i*16+from*4+4] {
		n += v
	}
	return n
}

// window is the current accumulator; flush appends it to the timeline.
type window struct {
	bus        [3]int64
	link       int64
	reads      int64
	writes     int64
	slcMisses  int64
	nodeMisses int64
	trans      [16]int64
	wbStallNs  int64
	syncArr    int64
	repl       int64
}

// Sampler accumulates per-window counter deltas. Create with NewSampler,
// install as the machine's sampler (Machine.EnableSampling), and read
// the Timeline after the run. It also implements Sink so it can sit in a
// Tee next to user sinks.
type Sampler struct {
	windowNs int64
	edge     int64 // end of the current window (exclusive)
	cur      window
	tl       Timeline
	done     bool
}

// NewSampler returns a sampler with the given window width in simulated
// nanoseconds (w >= 1).
func NewSampler(windowNs int64) *Sampler {
	if windowNs < 1 {
		panic("obs: sampler window must be positive")
	}
	return &Sampler{windowNs: windowNs, edge: windowNs, tl: Timeline{WindowNs: windowNs}}
}

// Advance moves the sampler's notion of simulated time forward, flushing
// every window that ended at or before now. The machine calls it once
// per scheduler step with the stepping processor's clock, which is
// non-decreasing.
func (s *Sampler) Advance(now int64) {
	for now >= s.edge {
		s.flush()
	}
}

// flush appends the current window and opens the next one.
func (s *Sampler) flush() {
	c := &s.cur
	for cl := 0; cl < 3; cl++ {
		s.tl.BusNs[cl] = append(s.tl.BusNs[cl], c.bus[cl])
	}
	s.tl.LinkNs = append(s.tl.LinkNs, c.link)
	s.tl.Reads = append(s.tl.Reads, c.reads)
	s.tl.Writes = append(s.tl.Writes, c.writes)
	s.tl.SLCMisses = append(s.tl.SLCMisses, c.slcMisses)
	s.tl.NodeMisses = append(s.tl.NodeMisses, c.nodeMisses)
	s.tl.Transitions = append(s.tl.Transitions, c.trans[:]...)
	s.tl.WBStallNs = append(s.tl.WBStallNs, c.wbStallNs)
	s.tl.SyncArrivals = append(s.tl.SyncArrivals, c.syncArr)
	s.tl.Replacements = append(s.tl.Replacements, c.repl)
	*c = window{}
	s.edge += s.windowNs
}

// Emit implements Sink: bus grants, transitions, write-buffer stalls,
// sync arrivals and replacements all contribute to the current window.
func (s *Sampler) Emit(e Event) {
	switch e.Kind {
	case KindBusGrant:
		if e.Class < 3 {
			s.cur.bus[e.Class] += e.Dur
		}
	case KindLinkGrant:
		s.cur.link += e.Dur
	case KindTransition:
		if e.From < 4 && e.To < 4 {
			s.cur.trans[int(e.From)*4+int(e.To)]++
		}
	case KindWBStall:
		s.cur.wbStallNs += e.Dur
	case KindSyncArrive:
		s.cur.syncArr++
	case KindReplacement:
		s.cur.repl++
	}
}

// NoteAccess records a data reference issued in the current window.
func (s *Sampler) NoteAccess(write bool) {
	if write {
		s.cur.writes++
	} else {
		s.cur.reads++
	}
}

// NoteMiss records a reference that missed the private hierarchy;
// nodeMiss reports whether the local attraction memory also missed
// (a global transaction was needed).
func (s *Sampler) NoteMiss(nodeMiss bool) {
	s.cur.slcMisses++
	if nodeMiss {
		s.cur.nodeMisses++
	}
}

// Timeline seals the sampler — flushing the in-progress window if it saw
// any activity — and returns the accumulated timeline. Idempotent.
func (s *Sampler) Timeline() *Timeline {
	if !s.done {
		s.done = true
		if s.cur != (window{}) {
			s.flush()
		}
	}
	return &s.tl
}
