package tsdb

import (
	"reflect"
	"testing"
	"time"
)

// clk builds a deterministic test clock starting at a fixed epoch; every
// test drives the store with explicit times derived from it.
func clk(offset time.Duration) time.Time {
	return time.Unix(1_700_000_000, 0).Add(offset)
}

func mustNew(t *testing.T, tiers []TierSpec) *DB {
	t.Helper()
	db, err := New(tiers)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// Two identical append sequences must produce deeply equal query
// results: the store has no hidden clock and no iteration-order
// dependence.
func TestDeterministicUnderTestClock(t *testing.T) {
	tiers := []TierSpec{{Step: 10 * time.Second, Capacity: 6}, {Step: 30 * time.Second, Capacity: 8}}
	build := func() []Series {
		db := mustNew(t, tiers)
		for i := 0; i < 40; i++ {
			at := clk(time.Duration(i) * 7 * time.Second)
			db.Append("reqs_total", "", at, float64(i*3))
			db.Append("peer_fill_total", `{outcome="hit"}`, at, float64(i))
		}
		return db.Query(clk(40*7*time.Second), time.Minute, 10*time.Second, nil)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical builds diverge:\n%v\nvs\n%v", a, b)
	}
	if len(a) != 2 || a[0].Name != "reqs_total" || a[1].Labels != `{outcome="hit"}` {
		t.Fatalf("unexpected series set: %+v", a)
	}
}

// Staircase semantics: within one bucket the last value wins, and
// bucket timestamps align down to the step.
func TestStaircaseLastValueWins(t *testing.T) {
	db := mustNew(t, []TierSpec{{Step: 10 * time.Second, Capacity: 8}})
	base := time.Unix(1_700_000_000, 0) // multiple of 10 by construction? ensure alignment below
	base = base.Truncate(10 * time.Second)
	db.Append("m", "", base.Add(1*time.Second), 1)
	db.Append("m", "", base.Add(4*time.Second), 2)
	db.Append("m", "", base.Add(9*time.Second), 3)
	db.Append("m", "", base.Add(12*time.Second), 4)
	got := db.Query(base.Add(15*time.Second), 30*time.Second, 10*time.Second, nil)
	want := []Point{{T: base.Unix(), V: 3}, {T: base.Unix() + 10, V: 4}}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Points, want) {
		t.Fatalf("points = %+v, want %+v", got, want)
	}
}

// Tier boundary edges: a query window that fits the fine tier uses it;
// one just past the fine tier's span falls over to the coarse tier, and
// a requested step coarser than the tier's staircase-downsamples.
func TestTierSelectionAtBoundaries(t *testing.T) {
	tiers := []TierSpec{{Step: 10 * time.Second, Capacity: 6}, {Step: 60 * time.Second, Capacity: 10}}
	db := mustNew(t, tiers)
	base := clk(0).Truncate(time.Minute)
	for i := 0; i <= 30; i++ {
		db.Append("m", "", base.Add(time.Duration(i)*10*time.Second), float64(i))
	}
	now := base.Add(300 * time.Second)

	// Window == fine span exactly: fine tier, 10s points.
	fine := db.Query(now, 60*time.Second, 0, nil)
	if len(fine) != 1 {
		t.Fatalf("fine query returned %d series", len(fine))
	}
	for i := 1; i < len(fine[0].Points); i++ {
		if fine[0].Points[i].T-fine[0].Points[i-1].T != 10 {
			t.Fatalf("fine tier step != 10s: %+v", fine[0].Points)
		}
	}

	// Window one second past the fine span: coarse tier, 60s buckets,
	// each holding the last 10s sample that landed in it.
	coarse := db.Query(now, 61*time.Second, 0, nil)
	if len(coarse) != 1 {
		t.Fatalf("coarse query returned %d series", len(coarse))
	}
	pts := coarse[0].Points
	for i, p := range pts {
		if p.T%60 != 0 {
			t.Fatalf("coarse point %d not 60s-aligned: %+v", i, p)
		}
		// Bucket [T, T+60) saw samples at T, T+10, ..., T+50; the last
		// one wins. Sample value at offset o from base is o/10.
		wantV := float64((p.T-base.Unix())/10 + 5)
		if last := base.Add(300 * time.Second).Unix(); p.T+50 > last {
			wantV = float64((last - base.Unix()) / 10) // final partial bucket
		}
		if p.V != wantV {
			t.Fatalf("coarse point %d = %+v, want V=%g", i, p, wantV)
		}
	}

	// Requested step coarser than the fine tier: staircase within the
	// fine tier, not an error.
	wide := db.Query(now, 60*time.Second, 30*time.Second, nil)
	for i := 1; i < len(wide[0].Points); i++ {
		if wide[0].Points[i].T-wide[0].Points[i-1].T != 30 {
			t.Fatalf("restep to 30s failed: %+v", wide[0].Points)
		}
	}
}

// Ring wrap: once more buckets than Capacity have been written, the
// oldest are gone and a query never serves a stale slot.
func TestRingWrapDiscardsStaleSlots(t *testing.T) {
	db := mustNew(t, []TierSpec{{Step: 10 * time.Second, Capacity: 4}})
	base := clk(0).Truncate(10 * time.Second)
	for i := 0; i < 10; i++ {
		db.Append("m", "", base.Add(time.Duration(i)*10*time.Second), float64(i))
	}
	got := db.Query(base.Add(90*time.Second), time.Hour, 10*time.Second, nil)
	var want []Point
	for i := 6; i < 10; i++ {
		want = append(want, Point{T: base.Unix() + int64(i)*10, V: float64(i)})
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Points, want) {
		t.Fatalf("after wrap: %+v, want %+v", got, want)
	}
}

// Restart behavior: a store that resumes appending after a gap longer
// than a tier's span serves only fresh points in that tier (the wrapped
// slots from before the gap are unreachable), while a coarser tier that
// still spans the gap keeps both sides.
func TestRestartGapLeavesNoGhosts(t *testing.T) {
	tiers := []TierSpec{{Step: 10 * time.Second, Capacity: 6}, {Step: 60 * time.Second, Capacity: 60}}
	db := mustNew(t, tiers)
	base := clk(0).Truncate(time.Minute)
	db.Append("m", "", base, 1)
	db.Append("m", "", base.Add(10*time.Second), 2)
	// Process "restarts" its scraping 10 minutes later — far past the
	// fine tier's 60s span.
	resume := base.Add(10 * time.Minute)
	db.Append("m", "", resume, 100)

	fine := db.Query(resume.Add(time.Second), 60*time.Second, 10*time.Second, nil)
	if len(fine) != 1 || len(fine[0].Points) != 1 || fine[0].Points[0].V != 100 {
		t.Fatalf("fine tier after gap = %+v, want only the fresh point", fine)
	}
	coarse := db.Query(resume.Add(time.Second), time.Hour, time.Minute, nil)
	if len(coarse) != 1 || len(coarse[0].Points) != 2 {
		t.Fatalf("coarse tier after gap = %+v, want both sides (2 points)", coarse)
	}

	// Appends older than the ring horizon are dropped, not wrapped into
	// the future.
	db.Append("m", "", base, 999)
	fine = db.Query(resume.Add(time.Second), 60*time.Second, 10*time.Second, nil)
	if len(fine[0].Points) != 1 || fine[0].Points[0].V != 100 {
		t.Fatalf("stale append leaked into the fine tier: %+v", fine)
	}
}

func TestFamilyFilterAndOrder(t *testing.T) {
	db := mustNew(t, nil)
	at := clk(0)
	db.Append("b_total", "", at, 1)
	db.Append("a_total", `{k="1"}`, at, 2)
	db.Append("a_total", `{k="2"}`, at, 3)
	got := db.Query(at, time.Minute, 0, []string{"a_total"})
	if len(got) != 2 || got[0].Labels != `{k="1"}` || got[1].Labels != `{k="2"}` {
		t.Fatalf("family filter: %+v", got)
	}
	if fams := db.Families(); !reflect.DeepEqual(fams, []string{"a_total", "b_total"}) {
		t.Fatalf("Families() = %v", fams)
	}
}

func TestNewRejectsBadTiers(t *testing.T) {
	for _, tiers := range [][]TierSpec{
		{{Step: 500 * time.Millisecond, Capacity: 10}},
		{{Step: 10 * time.Second, Capacity: 0}},
		{{Step: time.Minute, Capacity: 10}, {Step: 10 * time.Second, Capacity: 10}},
	} {
		if _, err := New(tiers); err == nil {
			t.Errorf("New(%v) accepted invalid tiers", tiers)
		}
	}
}

func TestParseExposition(t *testing.T) {
	text := `# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total 42
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 3
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 0.7
lat_seconds_count 5
# HELP up Peer up.
# TYPE up gauge
up{peer="s1"} 1
`
	sc, err := ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Families) != 3 || sc.Families[1].Type != "histogram" {
		t.Fatalf("families: %+v", sc.Families)
	}
	if len(sc.Samples) != 6 {
		t.Fatalf("samples: %+v", sc.Samples)
	}
	if sc.Samples[1] != (Sample{Name: "lat_seconds_bucket", Labels: `{le="0.1"}`, Value: 3}) {
		t.Fatalf("sample 1: %+v", sc.Samples[1])
	}
	if got := sc.FamilyOf("lat_seconds_count"); got != "lat_seconds" {
		t.Fatalf("FamilyOf(lat_seconds_count) = %q", got)
	}
	if got := sc.FamilyOf("reqs_total"); got != "reqs_total" {
		t.Fatalf("FamilyOf(reqs_total) = %q", got)
	}

	for _, bad := range []string{
		"novalue\n",
		"m notanumber\n",
		"m{unterminated 1\n",
		"# HELP \n",
		"# TYPE m\n",
	} {
		if _, err := ParseExposition(bad); err == nil {
			t.Errorf("ParseExposition(%q) accepted malformed input", bad)
		}
	}
}

// AppendScrape feeds a parsed page straight into the store.
func TestAppendScrape(t *testing.T) {
	sc, err := ParseExposition("# HELP m M.\n# TYPE m counter\nm 7\nm2{a=\"b\"} 9\n")
	if err != nil {
		t.Fatal(err)
	}
	db := mustNew(t, nil)
	db.AppendScrape(sc, clk(0))
	got := db.Query(clk(0), time.Minute, 0, nil)
	if len(got) != 2 || got[0].Points[0].V != 7 || got[1].Points[0].V != 9 {
		t.Fatalf("AppendScrape: %+v", got)
	}
}
