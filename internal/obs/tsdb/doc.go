// Package tsdb is a dependency-free in-process time-series store for
// the daemon's own metrics: fixed-capacity ring buffers per series,
// organized into resolution tiers (by default 10s steps for the last
// hour and 2m steps for the last day), fed by a self-scrape loop over
// the Prometheus text exposition the server already renders.
//
// Design rules (DESIGN.md §13):
//
//   - Bounded forever. Every tier is a preallocated ring; a series costs
//     a fixed number of bytes no matter how long the process runs.
//   - Staircase downsampling. A tier bucket keeps the last sample that
//     landed in it, so counters read as staircases at any resolution and
//     rates computed between bucket values are exact over the bucket
//     span. No averaging, no rate estimation inside the store.
//   - Deterministic. Nothing reads the wall clock; every Append and
//     Query takes explicit timestamps, so tests drive the store with a
//     synthetic clock and assert byte-stable results.
//
// ParseExposition turns a Prometheus text page (format 0.0.4) into the
// flat samples the store ingests, keeping the HELP/TYPE metadata so the
// fleet-metrics merger can re-render a well-formed exposition.
package tsdb
