package tsdb

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one exposition sample: the sample name (family name plus
// any _bucket/_sum/_count suffix), the raw label block including braces
// ("" when unlabeled), and the parsed value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Key is the exposition-form identity: name immediately followed by the
// label block.
func (s Sample) Key() string { return s.Name + s.Labels }

// Family is one family's metadata as declared by its HELP/TYPE headers.
type Family struct {
	Name string
	Help string
	Type string
}

// Scrape is one parsed exposition page: family metadata in order of
// appearance and every sample in page order.
type Scrape struct {
	Families []Family
	Samples  []Sample
}

// FamilyOf maps a sample name back to its family: histogram samples
// carry _bucket/_sum/_count suffixes on top of the family name.
func (sc Scrape) FamilyOf(sampleName string) string {
	types := make(map[string]string, len(sc.Families))
	for _, f := range sc.Families {
		types[f.Name] = f.Type
	}
	return familyOf(sampleName, func(base string) bool { return types[base] == "histogram" })
}

func familyOf(sampleName string, isHistogram func(string) bool) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sampleName, suffix); ok && isHistogram(base) {
			return base
		}
	}
	return sampleName
}

// ParseExposition parses a Prometheus text page (format 0.0.4) into
// samples and family metadata. It accepts exactly the subset the server
// emits — HELP/TYPE comments and `name[{labels}] value` samples — and
// rejects anything it cannot account for, so a corrupt peer scrape is
// an error, not silently partial data.
func ParseExposition(text string) (Scrape, error) {
	var sc Scrape
	seen := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, found := strings.Cut(rest, " ")
			if !found || name == "" {
				return Scrape{}, fmt.Errorf("tsdb: line %d: malformed HELP", lineNo)
			}
			if !seen[name] {
				seen[name] = true
				sc.Families = append(sc.Families, Family{Name: name, Help: help})
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				return Scrape{}, fmt.Errorf("tsdb: line %d: malformed TYPE", lineNo)
			}
			for i := range sc.Families {
				if sc.Families[i].Name == f[0] {
					sc.Families[i].Type = f[1]
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return Scrape{}, fmt.Errorf("tsdb: line %d: no value: %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return Scrape{}, fmt.Errorf("tsdb: line %d: bad value %q", lineNo, line[sp+1:])
		}
		name, labels := line[:sp], ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return Scrape{}, fmt.Errorf("tsdb: line %d: unterminated label block: %q", lineNo, line)
			}
			labels = name[i:]
			name = name[:i]
		}
		if name == "" {
			return Scrape{}, fmt.Errorf("tsdb: line %d: empty sample name", lineNo)
		}
		sc.Samples = append(sc.Samples, Sample{Name: name, Labels: labels, Value: v})
	}
	return sc, nil
}
