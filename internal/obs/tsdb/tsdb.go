package tsdb

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// TierSpec describes one resolution tier: samples are bucketed to Step
// and the newest Capacity buckets are retained, so the tier spans
// Step*Capacity of history.
type TierSpec struct {
	Step     time.Duration
	Capacity int
}

// Span is the length of history the tier covers.
func (t TierSpec) Span() time.Duration { return t.Step * time.Duration(t.Capacity) }

// DefaultTiers keep an hour at 10-second resolution and a day at
// 2-minute resolution — enough for a dashboard's sparklines and for
// post-hoc "what happened during that loadgen run" questions, in a few
// tens of kilobytes per series pair.
func DefaultTiers() []TierSpec {
	return []TierSpec{
		{Step: 10 * time.Second, Capacity: 360},
		{Step: 2 * time.Minute, Capacity: 720},
	}
}

// Point is one retained sample: the bucket-aligned unix timestamp and
// the last value observed in that bucket.
type Point struct {
	T int64   // unix seconds, aligned down to the tier step
	V float64 // last value seen in the bucket (staircase semantics)
}

// tierRing is a fixed-capacity ring over bucket-aligned samples. Slot
// i holds bucket number b iff b % cap == i and b is within cap buckets
// of the newest bucket written; stale slots are detected by comparing
// the stored bucket number, so a wrapped ring never serves old data.
type tierRing struct {
	spec    TierSpec
	buckets []int64 // bucket number per slot, -1 = empty
	values  []float64
	newest  int64 // highest bucket number written, -1 = none
}

func newTierRing(spec TierSpec) *tierRing {
	r := &tierRing{
		spec:    spec,
		buckets: make([]int64, spec.Capacity),
		values:  make([]float64, spec.Capacity),
		newest:  -1,
	}
	for i := range r.buckets {
		r.buckets[i] = -1
	}
	return r
}

func (r *tierRing) append(t time.Time, v float64) {
	b := t.Unix() / int64(r.spec.Step/time.Second)
	if b < 0 || (r.newest >= 0 && b < r.newest-int64(r.spec.Capacity)+1) {
		return // older than the ring's horizon
	}
	r.buckets[b%int64(r.spec.Capacity)] = b
	r.values[b%int64(r.spec.Capacity)] = v
	if b > r.newest {
		r.newest = b
	}
}

// points returns the retained samples in [from, to] in time order.
func (r *tierRing) points(from, to int64) []Point {
	if r.newest < 0 {
		return nil
	}
	step := int64(r.spec.Step / time.Second)
	lo := from / step
	hi := to / step
	if oldest := r.newest - int64(r.spec.Capacity) + 1; lo < oldest {
		lo = oldest
	}
	if lo < 0 {
		lo = 0
	}
	if hi > r.newest {
		hi = r.newest
	}
	var out []Point
	for b := lo; b <= hi; b++ {
		if r.buckets[b%int64(r.spec.Capacity)] == b {
			out = append(out, Point{T: b * step, V: r.values[b%int64(r.spec.Capacity)]})
		}
	}
	return out
}

// series is one metric stream (name + label set) across every tier.
type series struct {
	name   string
	labels string
	tiers  []*tierRing
}

// Series is the queryable view of one metric stream.
type Series struct {
	// Name is the metric family name, Labels the raw {…} label block
	// from the exposition ("" when unlabeled).
	Name   string
	Labels string
	Points []Point
}

// Key is the exposition-form identity of a series: name immediately
// followed by the label block.
func (s Series) Key() string { return s.Name + s.Labels }

// DB is the store: a set of series, each retained across the configured
// tiers. Safe for concurrent use.
type DB struct {
	tiers []TierSpec

	mu    sync.Mutex
	byKey map[string]*series
	order []string // insertion order, for deterministic queries
}

// New builds a store with the given tiers (nil = DefaultTiers). Tiers
// must be sorted finest-first with second-aligned steps.
func New(tiers []TierSpec) (*DB, error) {
	if len(tiers) == 0 {
		tiers = DefaultTiers()
	}
	for i, t := range tiers {
		if t.Step < time.Second || t.Step%time.Second != 0 {
			return nil, fmt.Errorf("tsdb: tier %d step %v is not a positive whole number of seconds", i, t.Step)
		}
		if t.Capacity <= 0 {
			return nil, fmt.Errorf("tsdb: tier %d capacity %d must be positive", i, t.Capacity)
		}
		if i > 0 && t.Step <= tiers[i-1].Step {
			return nil, fmt.Errorf("tsdb: tiers must be sorted finest-first (tier %d step %v <= tier %d step %v)",
				i, t.Step, i-1, tiers[i-1].Step)
		}
	}
	return &DB{tiers: tiers, byKey: make(map[string]*series)}, nil
}

// Tiers returns the configured tier specs (finest first).
func (db *DB) Tiers() []TierSpec { return db.tiers }

// Append records one sample at time t into every tier of the series
// identified by name+labels, creating the series on first sight.
func (db *DB) Append(name, labels string, t time.Time, v float64) {
	key := name + labels
	db.mu.Lock()
	s, ok := db.byKey[key]
	if !ok {
		s = &series{name: name, labels: labels}
		for _, spec := range db.tiers {
			s.tiers = append(s.tiers, newTierRing(spec))
		}
		db.byKey[key] = s
		db.order = append(db.order, key)
	}
	for _, r := range s.tiers {
		r.append(t, v)
	}
	db.mu.Unlock()
}

// AppendScrape records every sample of a parsed scrape at time t.
func (db *DB) AppendScrape(sc Scrape, t time.Time) {
	for _, s := range sc.Samples {
		db.Append(s.Name, s.Labels, t, s.Value)
	}
}

// Query returns the retained points of every selected series over
// [now-window, now], downsampled to step. The tier chosen is the finest
// one that both covers the window and has a step no finer than needed:
// specifically the finest tier with Span ≥ window, falling back to the
// coarsest tier when none spans it. When step is coarser than the
// tier's, buckets are staircase-downsampled (last value per step wins).
// families selects by exact family name (nil/empty = every series);
// series appear in first-seen order, points in time order.
func (db *DB) Query(now time.Time, window, step time.Duration, families []string) []Series {
	window, _, tier, stepS := db.pick(window, step)
	from, to := now.Add(-window).Unix(), now.Unix()

	var want map[string]bool
	if len(families) > 0 {
		want = make(map[string]bool, len(families))
		for _, f := range families {
			want[f] = true
		}
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Series
	for _, key := range db.order {
		s := db.byKey[key]
		if want != nil && !want[s.name] {
			continue
		}
		pts := s.tiers[tier].points(from, to)
		if stepS > int64(db.tiers[tier].Step/time.Second) {
			pts = restep(pts, stepS)
		}
		if len(pts) == 0 {
			continue
		}
		out = append(out, Series{Name: s.name, Labels: s.labels, Points: pts})
	}
	return out
}

// pick resolves a (window, step) request: the window defaulted to the
// finest tier's span, the effective step (never finer than the chosen
// tier's), the tier index, and the step in whole seconds.
func (db *DB) pick(window, step time.Duration) (time.Duration, time.Duration, int, int64) {
	if window <= 0 {
		window = db.tiers[0].Span()
	}
	tier := len(db.tiers) - 1
	for i, t := range db.tiers {
		if t.Span() >= window {
			tier = i
			break
		}
	}
	if step < db.tiers[tier].Step {
		step = db.tiers[tier].Step
	}
	stepS := int64(step / time.Second)
	if stepS < 1 {
		stepS = 1
	}
	return window, step, tier, stepS
}

// Resolve reports the effective window and step a Query with these
// arguments will use (the tier-selection rules above).
func (db *DB) Resolve(window, step time.Duration) (time.Duration, time.Duration) {
	w, s, _, _ := db.pick(window, step)
	return w, s
}

// Families lists every family name with at least one series, sorted.
func (db *DB) Families() []string {
	db.mu.Lock()
	set := make(map[string]bool)
	for _, s := range db.byKey {
		set[s.name] = true
	}
	db.mu.Unlock()
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// restep staircase-downsamples points to a coarser step: within each
// output bucket the last point wins, stamped at the bucket start.
func restep(pts []Point, stepS int64) []Point {
	var out []Point
	for _, p := range pts {
		t := (p.T / stepS) * stepS
		if n := len(out); n > 0 && out[n-1].T == t {
			out[n-1].V = p.V
			continue
		}
		out = append(out, Point{T: t, V: p.V})
	}
	return out
}
