package obs

import "testing"

func TestSamplerWindows(t *testing.T) {
	s := NewSampler(100)

	// Window 0: a read that hits, a write that misses all the way.
	s.NoteAccess(false)
	s.NoteAccess(true)
	s.NoteMiss(true)
	s.Emit(Event{Kind: KindBusGrant, Class: 1, Dur: 40})
	s.Emit(Event{Kind: KindTransition, From: 0, To: 3})

	// Clock jumps past windows 1 and 2 (idle); window 3 gets a stall and
	// a sync arrival.
	s.Advance(350)
	s.Emit(Event{Kind: KindWBStall, Dur: 25})
	s.Emit(Event{Kind: KindSyncArrive})
	s.Emit(Event{Kind: KindReplacement})

	tl := s.Timeline()
	if got := tl.Windows(); got != 4 {
		t.Fatalf("windows = %d, want 4", got)
	}
	if tl.Reads[0] != 1 || tl.Writes[0] != 1 || tl.SLCMisses[0] != 1 || tl.NodeMisses[0] != 1 {
		t.Errorf("window 0 accesses = r%d w%d slc%d node%d, want 1 1 1 1",
			tl.Reads[0], tl.Writes[0], tl.SLCMisses[0], tl.NodeMisses[0])
	}
	if tl.BusNs[1][0] != 40 || tl.BusBusyNs(0) != 40 {
		t.Errorf("window 0 bus = %v, want 40 in class 1", tl.BusNs)
	}
	if got := tl.BusUtilization(0); got != 0.4 {
		t.Errorf("window 0 bus util = %g, want 0.4", got)
	}
	if tl.Transitions[0*16+0*4+3] != 1 || tl.TransitionTotal(0) != 1 || tl.TransitionsFrom(0, 0) != 1 {
		t.Errorf("window 0 transitions wrong: %v", tl.Transitions[:16])
	}
	// Idle windows materialize as zeros.
	for i := 1; i <= 2; i++ {
		if tl.Reads[i] != 0 || tl.BusBusyNs(i) != 0 || tl.TransitionTotal(i) != 0 {
			t.Errorf("window %d not empty", i)
		}
	}
	if tl.WBStallNs[3] != 25 || tl.SyncArrivals[3] != 1 || tl.Replacements[3] != 1 {
		t.Errorf("window 3 = wb%d sync%d repl%d, want 25 1 1",
			tl.WBStallNs[3], tl.SyncArrivals[3], tl.Replacements[3])
	}
	if got := tl.StartNs(3); got != 300 {
		t.Errorf("StartNs(3) = %d, want 300", got)
	}

	// Sealing is idempotent: a second call adds nothing.
	if tl2 := s.Timeline(); tl2.Windows() != 4 {
		t.Errorf("second Timeline() call grew to %d windows", tl2.Windows())
	}
}

// Advance at an exact window edge closes the window: time t belongs to
// window t/W, so the edge itself starts the next window.
func TestSamplerEdgeBoundary(t *testing.T) {
	s := NewSampler(100)
	s.NoteAccess(false)
	s.Advance(100)
	s.NoteAccess(false)
	tl := s.Timeline()
	if tl.Windows() != 2 || tl.Reads[0] != 1 || tl.Reads[1] != 1 {
		t.Fatalf("edge split wrong: windows=%d reads=%v", tl.Windows(), tl.Reads)
	}
}

// An entirely idle sampler produces an empty timeline, not a zero window.
func TestSamplerEmpty(t *testing.T) {
	s := NewSampler(100)
	if got := s.Timeline().Windows(); got != 0 {
		t.Fatalf("idle sampler has %d windows, want 0", got)
	}
}

func TestSamplerBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler(0) did not panic")
		}
	}()
	NewSampler(0)
}
