package obs

import (
	"strings"
	"testing"
)

func TestDisabledRecorderDropsAndNeverAllocates(t *testing.T) {
	var rec Recorder // zero value: disabled
	if rec.Enabled() {
		t.Fatal("zero Recorder must be disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Emit(Event{Kind: KindBusGrant, At: 42, Node: 1, Dur: 20})
		rec.Emit(Event{Kind: KindTransition, From: 3, To: 2, Line: 7})
		rec.Emit(Event{Kind: KindWBStall, Node: 5, Dur: 100})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocated %.1f objects/op, want 0", allocs)
	}
}

func TestCountingSinkZeroAllocEmit(t *testing.T) {
	rec := NewRecorder(&Counting{})
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Emit(Event{Kind: KindBusGrant, Class: 1, Dur: 20})
		rec.Emit(Event{Kind: KindTransition, From: 0, To: 3})
	})
	if allocs != 0 {
		t.Fatalf("counting Emit allocated %.1f objects/op, want 0", allocs)
	}
}

func TestCountingSink(t *testing.T) {
	var c Counting
	c.Emit(Event{Kind: KindBusGrant, Class: 0, Dur: 20})
	c.Emit(Event{Kind: KindBusGrant, Class: 2, Dur: 40})
	c.Emit(Event{Kind: KindTransition, From: 0, To: 3})
	c.Emit(Event{Kind: KindTransition, From: 3, To: 2})
	c.Emit(Event{Kind: KindWBStall, Dur: 100})
	c.Emit(Event{Kind: KindSyncArrive, Class: SyncBarrier})
	if c.Total() != 6 {
		t.Fatalf("Total = %d, want 6", c.Total())
	}
	if c.Kinds[KindBusGrant] != 2 || c.Kinds[KindTransition] != 2 {
		t.Fatalf("kind counts wrong: %v", c.Kinds)
	}
	if c.Transitions[0][3] != 1 || c.Transitions[3][2] != 1 || c.TransitionTotal() != 2 {
		t.Fatalf("transition matrix wrong: %v", c.Transitions)
	}
	if c.BusOccNs[0] != 20 || c.BusOccNs[2] != 40 {
		t.Fatalf("bus occupancy wrong: %v", c.BusOccNs)
	}
	if c.WBStallNs != 100 {
		t.Fatalf("WBStallNs = %d", c.WBStallNs)
	}
}

func TestRingKeepsTail(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{At: int64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].At != 2 || ev[2].At != 4 {
		t.Fatalf("Events = %+v, want At 2..4 oldest-first", ev)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{At: 1})
	r.Emit(Event{At: 2})
	ev := r.Events()
	if len(ev) != 2 || ev[0].At != 1 || ev[1].At != 2 {
		t.Fatalf("Events = %+v", ev)
	}
}

func TestJSONLFormat(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.Emit(Event{Kind: KindBusGrant, At: 100, Node: 2, Peer: -1, Class: 1, Dur: 20})
	j.Emit(Event{Kind: KindTransition, At: 120, Node: 0, Line: 9, From: 1, To: 0})
	if j.Err() != nil {
		t.Fatal(j.Err())
	}
	want := `{"kind":"bus-grant","at":100,"node":2,"peer":-1,"line":0,"from":0,"to":0,"class":1,"dur":20}` + "\n" +
		`{"kind":"transition","at":120,"node":0,"peer":0,"line":9,"from":1,"to":0,"class":0,"dur":0}` + "\n"
	if sb.String() != want {
		t.Fatalf("got:\n%swant:\n%s", sb.String(), want)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestJSONLStickyError(t *testing.T) {
	w := &failWriter{}
	j := NewJSONL(w)
	j.Emit(Event{})
	j.Emit(Event{})
	if j.Err() == nil {
		t.Fatal("expected error")
	}
	if w.n != 1 {
		t.Fatalf("writer called %d times after error, want 1", w.n)
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b Counting
	s := Tee{&a, &b}
	s.Emit(Event{Kind: KindBusGrant})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatal("tee did not fan out")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindBusGrant:    "bus-grant",
		KindTransition:  "transition",
		KindReplacement: "replacement",
		KindWBStall:     "wb-stall",
		KindSyncArrive:  "sync-arrive",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind: %q", Kind(99).String())
	}
}
