package obs

import "fmt"

// Kind discriminates event types.
type Kind uint8

// Event kinds, covering the taxonomy of DESIGN.md §6.
const (
	// KindBusGrant: the global bus granted a transaction. Node is the
	// requesting node, Class the coma.TxnClass (read/write/replace), At
	// the service start and Dur the bus occupancy.
	KindBusGrant Kind = iota
	// KindTransition: an attraction-memory line changed state at a node.
	// From/To are the protocol states (coma I/S/O/E as uint8), Line the
	// cache line.
	KindTransition
	// KindReplacement: the replacement machinery acted on an evicted
	// line. Class is a ReplaceKind; Peer the receiving/promoted node (-1
	// for drops).
	KindReplacement
	// KindWBStall: a processor stalled on a full write buffer. Node is
	// the processor id, Dur the back-pressure stall time.
	KindWBStall
	// KindSyncArrive: a processor arrived at a synchronization point.
	// Class is a SyncKind, Line the barrier/lock id, Node the processor.
	KindSyncArrive
	// KindLinkGrant: a ring link granted a message (hierarchical
	// topologies only). Node is the initiating node, Peer the link index
	// (link i joins cluster i to cluster i+1), Class the coma.TxnClass,
	// At the service start and Dur the link occupancy.
	KindLinkGrant

	numKinds
)

// NumKinds is the number of event kinds (for per-kind counters).
const NumKinds = int(numKinds)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBusGrant:
		return "bus-grant"
	case KindTransition:
		return "transition"
	case KindReplacement:
		return "replacement"
	case KindWBStall:
		return "wb-stall"
	case KindSyncArrive:
		return "sync-arrive"
	case KindLinkGrant:
		return "link-grant"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ReplaceKind refines KindReplacement events (stored in Event.Class).
const (
	ReplaceInject     uint8 = iota // data line injected into Peer
	ReplacePromote                 // ownership promoted to Peer, no data
	ReplaceSharedDrop              // Shared victim dropped silently
	ReplaceForcedDrop              // cascade overflow, datum dropped
)

// SyncKind refines KindSyncArrive events (stored in Event.Class).
const (
	SyncBarrier  uint8 = iota // barrier (or measure-start) arrival
	SyncLockWait              // blocked behind a held lock
)

// Event is one observation. Fields are a union over kinds; unused fields
// are zero. It is a flat value type on purpose: emission never allocates.
type Event struct {
	Kind Kind
	// From/To are protocol states for KindTransition.
	From, To uint8
	// Class refines the kind: coma.TxnClass for bus grants, ReplaceKind
	// for replacements, SyncKind for sync arrivals.
	Class uint8
	// Node is the acting node (AM events, bus grants) or processor id
	// (stalls, sync arrivals).
	Node int32
	// Peer is the other party: injection receiver, promoted heir. -1
	// when not applicable.
	Peer int32
	// At is the simulation timestamp in nanoseconds.
	At int64
	// Dur is a duration in nanoseconds: bus occupancy, stall time.
	Dur int64
	// Line is the cache-line identifier, or a lock/barrier id for sync
	// arrivals.
	Line uint64
}

// Sink receives events. Implementations need not be safe for concurrent
// use: a machine emits from a single goroutine, and distinct machines
// must be given distinct sinks (or a deliberately synchronized one).
type Sink interface {
	Emit(Event)
}

// Recorder is the nil-safe front end instrumented code holds. The zero
// Recorder is disabled: Enabled reports false and Emit drops the event
// without touching the heap.
type Recorder struct {
	sink Sink
}

// NewRecorder wraps a sink; a nil sink yields a disabled recorder.
func NewRecorder(s Sink) Recorder { return Recorder{sink: s} }

// Enabled reports whether events reach a sink. Hot paths check this
// before constructing an Event.
func (r Recorder) Enabled() bool { return r.sink != nil }

// Emit forwards the event to the sink, or drops it when disabled.
func (r Recorder) Emit(e Event) {
	if r.sink != nil {
		r.sink.Emit(e)
	}
}
