// Package obs is the simulator's opt-in observability layer: typed events
// emitted from the timing core and the coherence protocol, a sink
// interface to receive them, and ready-made sinks (counting, ring buffer,
// JSONL stream).
//
// Design rules (DESIGN.md §6):
//
//   - Disabled is free. Instrumented code guards every emission with
//     Recorder.Enabled (or a nil-sink check), so the default path does no
//     event construction and allocates zero bytes — enforced by a
//     zero-allocation test and the BenchmarkObservability pair.
//   - Events are plain values. Event is a flat struct of integers; Emit
//     passes it by value so enabling a counting sink stays allocation-free
//     on the hot path too.
//   - Determinism. A simulation run is single-goroutine; events arrive in
//     a deterministic order for a fixed (trace, machine), so streamed
//     event logs are byte-stable and safe to diff.
//
// The package deliberately imports nothing from the simulator so every
// layer (engine, coma, machine) can emit without import cycles.
package obs
