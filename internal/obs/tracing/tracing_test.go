package tracing

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartRoot("request", "")
	if !ValidTraceID(root.TraceID()) {
		t.Fatalf("generated trace ID %q is not valid", root.TraceID())
	}
	child := root.StartChild("simulate")
	child.SetAttr("app", "fft")
	child.SetErr(errors.New("boom"))
	child.End()
	child.End() // idempotent: must not double-record
	root.End()

	td, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(td.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(td.Spans))
	}
	// Spans record in end order: child first.
	c, r := td.Spans[0], td.Spans[1]
	if c.Name != "simulate" || c.ParentID != r.SpanID || c.TraceID != td.TraceID {
		t.Errorf("child span wrong: %+v", c)
	}
	if c.Attrs["app"] != "fft" || c.Error != "boom" {
		t.Errorf("child attrs/error wrong: %+v", c)
	}
	if r.ParentID != "" || r.Name != "request" {
		t.Errorf("root span wrong: %+v", r)
	}
	if c.DurationNs < 0 || c.StartUnix <= 0 {
		t.Errorf("timestamps wrong: %+v", c)
	}
}

func TestTraceIDPropagation(t *testing.T) {
	tr := NewTracer(4)
	// A valid caller-supplied ID is adopted verbatim.
	s := tr.StartRoot("r", "deadbeef01")
	if s.TraceID() != "deadbeef01" {
		t.Errorf("valid ID not adopted: %q", s.TraceID())
	}
	// Invalid IDs (wrong alphabet, uppercase, too long) are replaced.
	for _, bad := range []string{"", "XYZ", "DEADBEEF", strings.Repeat("a", 65), "abc-def"} {
		s := tr.StartRoot("r", bad)
		if s.TraceID() == bad {
			t.Errorf("invalid ID %q was adopted", bad)
		}
		if !ValidTraceID(s.TraceID()) {
			t.Errorf("replacement for %q is invalid: %q", bad, s.TraceID())
		}
	}
	// Reusing an ID appends to the same trace instead of clobbering it.
	a := tr.StartRoot("first", "deadbeef01")
	a.End()
	b := tr.StartRoot("second", "deadbeef01")
	b.End()
	td, _ := tr.Get("deadbeef01")
	if len(td.Spans) != 2 {
		t.Errorf("reused trace has %d spans, want 2", len(td.Spans))
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(3)
	var ids []string
	for i := 0; i < 5; i++ {
		s := tr.StartRoot("r", "")
		s.End()
		ids = append(ids, s.TraceID())
	}
	if tr.Len() != 3 {
		t.Fatalf("ring holds %d traces, want 3", tr.Len())
	}
	for _, old := range ids[:2] {
		if _, ok := tr.Get(old); ok {
			t.Errorf("trace %s should have been evicted", old)
		}
	}
	for _, recent := range ids[2:] {
		if _, ok := tr.Get(recent); !ok {
			t.Errorf("trace %s should be retained", recent)
		}
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(1)
	root := tr.StartRoot("r", "")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.StartChild("c").End()
	}
	root.End()
	td, _ := tr.Get(root.TraceID())
	if len(td.Spans) != maxSpansPerTrace {
		t.Errorf("spans = %d, want cap %d", len(td.Spans), maxSpansPerTrace)
	}
	if td.Dropped != 11 { // 10 extra children + the root
		t.Errorf("dropped = %d, want 11", td.Dropped)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(1)
	root := tr.StartRoot("r", "")
	root.StartChild("c").End()
	root.End()
	td, _ := tr.Get(root.TraceID())
	var sb strings.Builder
	if err := td.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines int
	for sc.Scan() {
		var s SpanData
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if s.TraceID != td.TraceID {
			t.Errorf("line %d has trace %q", lines, s.TraceID)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2", lines)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yields a span")
	}
	tr := NewTracer(1)
	s := tr.StartRoot("r", "")
	ctx := NewContext(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("span did not round-trip")
	}
	// Nil-safe call chain off an absent span.
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.SetErr(nil)
	nilSpan.StartChild("c").End()
	nilSpan.End()
	if nilSpan.TraceID() != "" {
		t.Fatal("nil span has a trace ID")
	}
}

// Concurrent span creation and retrieval must be race-clean (the daemon
// ends simulate spans from pool worker goroutines while /v1/traces reads).
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(8)
	root := tr.StartRoot("r", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild("worker")
			c.SetAttr("i", fmt.Sprint(i))
			c.End()
			tr.Get(root.TraceID())
		}(i)
	}
	wg.Wait()
	root.End()
	td, _ := tr.Get(root.TraceID())
	if len(td.Spans) != 9 {
		t.Fatalf("spans = %d, want 9", len(td.Spans))
	}
}
