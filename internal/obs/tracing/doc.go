// Package tracing is a minimal, dependency-free span tracer for the
// service layer: every comasrv request becomes a root span, the stages
// it passes through (canonicalize, store lookup, queue wait, each
// simulation, artifact render) become child spans, and completed traces
// live in a bounded in-memory ring for retrieval over the API.
//
// The design deliberately mirrors the W3C/OpenTelemetry shape — hex
// trace IDs propagated in a header, spans with parent links, wall-clock
// start plus monotonic duration — without importing any of it: the repo
// is stdlib-only, and the handful of concepts the daemon needs fit in
// one file. Spans are recorded into their trace on End, so a trace read
// mid-request shows the completed stages so far; reads always see
// consistent, immutable span records.
//
// Unlike package obs, which instruments the simulator's hot path and is
// therefore allocation-free when disabled, tracing instruments HTTP
// requests: a few allocations per request are irrelevant next to the
// simulations those requests run.
package tracing
