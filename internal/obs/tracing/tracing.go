package tracing

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultCapacity is the trace-ring size NewTracer(0) uses.
const DefaultCapacity = 256

// maxSpansPerTrace bounds one trace's memory: a study request fans out
// to at most a few hundred simulations, so overflow only happens if a
// span leak is introduced — the Dropped counter makes that visible.
const maxSpansPerTrace = 512

// Tracer creates traces and retains the most recent ones in a bounded
// FIFO ring. Safe for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	traces   map[string]*trace
	order    []string // FIFO eviction order
	capacity int
}

// NewTracer returns a tracer retaining up to capacity traces
// (0 = DefaultCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{traces: make(map[string]*trace), capacity: capacity}
}

// trace is the mutable store behind one trace ID.
type trace struct {
	mu      sync.Mutex
	id      string
	spans   []SpanData
	dropped int64
}

// SpanData is one completed span as stored and serialized.
type SpanData struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	StartUnix  int64             `json:"start_unix_ns"`
	DurationNs int64             `json:"duration_ns"`
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceData is a consistent snapshot of one trace — the GET
// /v1/traces/{id} payload.
type TraceData struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanData `json:"spans"`
	Dropped int64      `json:"dropped_spans,omitempty"`
}

// WriteJSONL writes the trace one span per line, the same export shape
// as the simulator's event traces (obs.JSONL): greppable, streamable,
// loadable into any dataframe.
func (td TraceData) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range td.Spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// Span is an in-progress operation. Start one with Tracer.StartRoot or
// Span.StartChild, finish it with End. All methods are nil-safe so call
// sites need no "is tracing on?" branches.
type Span struct {
	tr     *trace
	data   SpanData
	start  time.Time
	mu     sync.Mutex
	attrs  map[string]string
	endErr error
	ended  bool
}

// newID returns n crypto-random bytes in hex.
func newID(n int) string {
	b := make([]byte, n)
	rand.Read(b) // never fails on supported platforms (crypto/rand docs)
	return hex.EncodeToString(b)
}

// ValidTraceID reports whether id is acceptable as a propagated trace
// ID: 1-64 lowercase hex characters (the W3C traceparent alphabet).
// Anything else is discarded and replaced, never echoed back.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// StartRoot begins a new trace and returns its root span. traceID, when
// valid (ValidTraceID), is adopted — the propagation path for a caller's
// X-Trace-Id — otherwise a fresh ID is generated. The trace is
// registered immediately, evicting the oldest when the ring is full.
func (t *Tracer) StartRoot(name, traceID string) *Span {
	if !ValidTraceID(traceID) {
		traceID = newID(16)
	}
	tr := &trace{id: traceID}
	t.mu.Lock()
	if _, exists := t.traces[traceID]; !exists {
		t.traces[traceID] = tr
		t.order = append(t.order, traceID)
		for len(t.order) > t.capacity {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	} else {
		// A reused trace ID (caller retries with the same header) appends
		// to the existing trace rather than clobbering it.
		tr = t.traces[traceID]
	}
	t.mu.Unlock()
	return &Span{
		tr:    tr,
		start: time.Now(),
		data: SpanData{
			TraceID:   traceID,
			SpanID:    newID(8),
			Name:      name,
			StartUnix: time.Now().UnixNano(),
		},
	}
}

// Get returns a snapshot of a retained trace.
func (t *Tracer) Get(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	tr, ok := t.traces[id]
	t.mu.Unlock()
	if !ok {
		return TraceData{}, false
	}
	tr.mu.Lock()
	td := TraceData{TraceID: tr.id, Spans: append([]SpanData(nil), tr.spans...), Dropped: tr.dropped}
	tr.mu.Unlock()
	return td, true
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// StartChild begins a child span of s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr:    s.tr,
		start: time.Now(),
		data: SpanData{
			TraceID:   s.data.TraceID,
			SpanID:    newID(8),
			ParentID:  s.data.SpanID,
			Name:      name,
			StartUnix: time.Now().UnixNano(),
		},
	}
}

// TraceID returns the span's trace ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SetAttr attaches a string attribute (last write per key wins).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetErr records the error the span will carry when it ends (nil clears).
func (s *Span) SetErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.endErr = err
	s.mu.Unlock()
}

// End completes the span and records it into its trace. Idempotent;
// nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	d := s.data
	d.DurationNs = time.Since(s.start).Nanoseconds()
	d.Attrs = s.attrs
	if s.endErr != nil {
		d.Error = s.endErr.Error()
	}
	s.mu.Unlock()

	tr := s.tr
	tr.mu.Lock()
	if len(tr.spans) < maxSpansPerTrace {
		tr.spans = append(tr.spans, d)
	} else {
		tr.dropped++
	}
	tr.mu.Unlock()
}

// ctxKey keys the span stored in a context.
type ctxKey struct{}

// NewContext returns ctx carrying span.
func NewContext(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
