// Package engine provides the discrete-time primitives the memory-system
// simulator is built on: a nanosecond clock type and FCFS occupancy
// resources that model contention for buses, memories and controllers.
//
// The simulator advances processors in strict global time order, so a
// resource only ever sees requests with non-decreasing arrival times from
// the scheduler's point of view; Claim then yields first-come-first-served
// service with queueing delay when the resource is busy.
package engine
