// Package engine provides the discrete-time primitives the memory-system
// simulator is built on: a nanosecond clock type and FCFS occupancy
// resources that model contention for buses, memories and controllers.
//
// The simulator advances processors in strict global time order, so a
// resource only ever sees requests with non-decreasing arrival times from
// the scheduler's point of view; Claim then yields first-come-first-served
// service with queueing delay when the resource is busy.
package engine

import "fmt"

// Time is a simulation timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
)

// String formats the time as nanoseconds with a unit suffix.
func (t Time) String() string { return fmt.Sprintf("%dns", int64(t)) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Resource models a unit-capacity, FCFS-served hardware resource such as a
// DRAM bank, a node controller or a shared bus. A request arriving at time
// t begins service at max(t, freeAt) and occupies the resource for its
// occupancy period. Latency seen by the requester may exceed occupancy
// (pipelined resources free up before the reply reaches the requester).
type Resource struct {
	name   string
	freeAt Time
	// busyTotal accumulates occupied time, for utilization reporting.
	busyTotal Time
	claims    int64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Claim occupies the resource for occ starting no earlier than at, and
// returns the service start time. The caller's completion time is
// typically start plus a latency that is at least occ.
func (r *Resource) Claim(at, occ Time) (start Time) {
	if occ < 0 {
		panic("engine: negative occupancy")
	}
	start = Max(at, r.freeAt)
	r.freeAt = start + occ
	r.busyTotal += occ
	r.claims++
	return start
}

// Probe reports when a request arriving at time at would start service,
// without claiming the resource.
func (r *Resource) Probe(at Time) Time { return Max(at, r.freeAt) }

// FreeAt reports the time the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTotal reports total occupied time since construction or Reset.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// Claims reports the number of Claim calls since construction or Reset.
func (r *Resource) Claims() int64 { return r.claims }

// Reset clears utilization counters but leaves the schedule (freeAt)
// intact, so statistics can be restricted to a measured region.
func (r *Resource) Reset() {
	r.busyTotal = 0
	r.claims = 0
}
