package engine

import (
	"fmt"
	"strings"
)

// Time is a simulation timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
)

// String formats the time as nanoseconds with a unit suffix.
func (t Time) String() string { return fmt.Sprintf("%dns", int64(t)) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// waitBounds are the wait-histogram bucket upper bounds (inclusive, ns):
// zero-wait claims first, then doublings spanning one bus phase up to deep
// queueing. The final bucket of WaitHist is the unbounded overflow.
var waitBounds = [...]Time{0, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120}

// WaitHist is a histogram of per-claim queueing delays (time between a
// request's arrival and its service start).
type WaitHist struct {
	Counts [len(waitBounds) + 1]int64
}

func (h *WaitHist) add(w Time) {
	for i, b := range waitBounds {
		if w <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(waitBounds)]++
}

// WaitBuckets returns the bucket upper bounds in nanoseconds (the final
// overflow bucket is unbounded).
func WaitBuckets() []int64 {
	out := make([]int64, len(waitBounds))
	for i, b := range waitBounds {
		out[i] = int64(b)
	}
	return out
}

// Total returns the number of recorded claims.
func (h *WaitHist) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// String renders the non-empty buckets compactly, e.g.
// "0ns:90.0% <=40ns:10.0%".
func (h *WaitHist) String() string {
	total := h.Total()
	if total == 0 {
		return "no claims"
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		label := "<=inf"
		switch {
		case i == 0:
			label = "0ns"
		case i < len(waitBounds):
			label = fmt.Sprintf("<=%dns", int64(waitBounds[i]))
		}
		fmt.Fprintf(&sb, "%s:%.1f%% ", label, 100*float64(c)/float64(total))
	}
	return strings.TrimSpace(sb.String())
}

// Resource models a unit-capacity, FCFS-served hardware resource such as a
// DRAM bank, a node controller or a shared bus. A request arriving at time
// t begins service at max(t, freeAt) and occupies the resource for its
// occupancy period. Latency seen by the requester may exceed occupancy
// (pipelined resources free up before the reply reaches the requester).
type Resource struct {
	name   string
	freeAt Time
	// busyTotal accumulates occupied time, for utilization reporting.
	busyTotal Time
	claims    int64
	// waitTotal and waits profile queueing delay: how long claims sat
	// behind earlier work before starting service.
	waitTotal Time
	waits     WaitHist
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Claim occupies the resource for occ starting no earlier than at, and
// returns the service start time. The caller's completion time is
// typically start plus a latency that is at least occ.
func (r *Resource) Claim(at, occ Time) (start Time) {
	if occ < 0 {
		panic("engine: negative occupancy")
	}
	start = Max(at, r.freeAt)
	r.freeAt = start + occ
	r.busyTotal += occ
	r.claims++
	r.waitTotal += start - at
	r.waits.add(start - at)
	return start
}

// Probe reports when a request arriving at time at would start service,
// without claiming the resource.
func (r *Resource) Probe(at Time) Time { return Max(at, r.freeAt) }

// FreeAt reports the time the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTotal reports total occupied time since construction or Reset.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// Claims reports the number of Claim calls since construction or Reset.
func (r *Resource) Claims() int64 { return r.claims }

// WaitTotal reports total queueing delay since construction or Reset.
func (r *Resource) WaitTotal() Time { return r.waitTotal }

// Waits returns the queueing-delay histogram since construction or Reset.
func (r *Resource) Waits() WaitHist { return r.waits }

// Reset clears utilization counters but leaves the schedule (freeAt)
// intact, so statistics can be restricted to a measured region.
func (r *Resource) Reset() {
	r.busyTotal = 0
	r.claims = 0
	r.waitTotal = 0
	r.waits = WaitHist{}
}
