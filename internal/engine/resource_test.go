package engine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestResourceIdle(t *testing.T) {
	r := NewResource("dram")
	if got := r.Claim(100, 50); got != 100 {
		t.Fatalf("idle claim started at %v, want 100", got)
	}
	if r.FreeAt() != 150 {
		t.Fatalf("FreeAt = %v, want 150", r.FreeAt())
	}
}

func TestResourceQueueing(t *testing.T) {
	r := NewResource("bus")
	r.Claim(0, 20)
	// Arrives while busy: queued until 20.
	if got := r.Claim(5, 20); got != 20 {
		t.Fatalf("queued claim started at %v, want 20", got)
	}
	// Arrives after idle: starts immediately.
	if got := r.Claim(100, 20); got != 100 {
		t.Fatalf("late claim started at %v, want 100", got)
	}
	if r.BusyTotal() != 60 {
		t.Fatalf("BusyTotal = %v, want 60", r.BusyTotal())
	}
	if r.Claims() != 3 {
		t.Fatalf("Claims = %v, want 3", r.Claims())
	}
}

func TestResourceWaitStats(t *testing.T) {
	r := NewResource("bus")
	r.Claim(0, 20)  // idle: wait 0
	r.Claim(5, 20)  // queued behind the first: wait 15
	r.Claim(10, 20) // queued behind both: wait 30
	if r.WaitTotal() != 45 {
		t.Fatalf("WaitTotal = %v, want 45", r.WaitTotal())
	}
	h := r.Waits()
	if h.Total() != 3 {
		t.Fatalf("hist total = %d, want 3", h.Total())
	}
	// Buckets: 0 -> bucket 0; 15 -> <=20; 30 -> <=40.
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("hist = %v", h.Counts)
	}
}

func TestWaitHistOverflowAndString(t *testing.T) {
	r := NewResource("dram")
	r.Claim(0, 10000)
	r.Claim(0, 10) // waits 10000ns: overflow bucket
	h := r.Waits()
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("overflow not counted: %v", h.Counts)
	}
	s := h.String()
	if !strings.Contains(s, "0ns:50.0%") || !strings.Contains(s, "<=inf:50.0%") {
		t.Fatalf("String = %q", s)
	}
	var empty WaitHist
	if empty.String() != "no claims" {
		t.Fatalf("empty String = %q", empty.String())
	}
	if len(WaitBuckets()) != len(h.Counts)-1 {
		t.Fatal("WaitBuckets/Counts length mismatch")
	}
}

func TestResourceProbe(t *testing.T) {
	r := NewResource("nc")
	r.Claim(0, 24)
	if got := r.Probe(10); got != 24 {
		t.Fatalf("Probe(10) = %v, want 24", got)
	}
	if r.FreeAt() != 24 {
		t.Fatal("Probe must not claim")
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Claim(0, 100)
	r.Claim(0, 50)
	r.Reset()
	if r.BusyTotal() != 0 || r.Claims() != 0 {
		t.Fatal("Reset must clear counters")
	}
	h := r.Waits()
	if r.WaitTotal() != 0 || h.Total() != 0 {
		t.Fatal("Reset must clear wait stats")
	}
	if r.FreeAt() != 150 {
		t.Fatal("Reset must not clear the schedule")
	}
}

func TestResourceNegativeOccupancyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative occupancy")
		}
	}()
	NewResource("x").Claim(0, -1)
}

// Property: service start is never before arrival nor before the previous
// request's completion, and busy time accumulates exactly.
func TestResourceFCFSProperty(t *testing.T) {
	prop := func(arrivalDeltas []uint16, occs []uint16) bool {
		r := NewResource("p")
		var at, prevEnd, busy Time
		n := len(arrivalDeltas)
		if len(occs) < n {
			n = len(occs)
		}
		for i := 0; i < n; i++ {
			at += Time(arrivalDeltas[i])
			occ := Time(occs[i] % 500)
			start := r.Claim(at, occ)
			if start < at || start < prevEnd {
				return false
			}
			prevEnd = start + occ
			busy += occ
		}
		return r.BusyTotal() == busy
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(5, 3) != 5 || Max(-1, -2) != -1 {
		t.Fatal("Max broken")
	}
}

func TestTimeString(t *testing.T) {
	if Time(42).String() != "42ns" {
		t.Fatalf("got %q", Time(42).String())
	}
}
