package engine_test

import (
	"fmt"

	"repro/internal/engine"
)

// ExampleResource shows the contended-resource timing primitive every
// bus, controller and DRAM bank in the simulator is built from: claims
// serialize, and waiting time is accounted separately from occupancy.
func ExampleResource() {
	bus := engine.NewResource("bus")

	// Two transactions arrive at t=0; each occupies the bus for 50 ns.
	first := bus.Claim(0, 50)
	second := bus.Claim(0, 50)

	fmt.Println("first starts at:", first)
	fmt.Println("second starts at:", second)
	fmt.Println("busy total:", bus.BusyTotal())
	fmt.Println("wait total:", bus.WaitTotal())
	// Output:
	// first starts at: 0ns
	// second starts at: 50ns
	// busy total: 100ns
	// wait total: 50ns
}
