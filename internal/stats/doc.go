// Package stats provides small result-presentation helpers shared by the
// experiment drivers and command-line tools: aligned text tables, bar
// rendering and relative-metric math.
package stats
