package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of columns and writes them aligned.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%5.1f%%", 100*v) }

// Bar renders a proportional ASCII bar of at most width cells.
func Bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// StackedBar renders segments as a stacked ASCII bar: segment i occupies
// round(fracs[i]*width) cells drawn with chars[i]. Fractions are relative
// to the full bar width (1.0 = width cells).
func StackedBar(width int, fracs []float64, chars []byte) string {
	if len(fracs) != len(chars) {
		panic("stats: fracs/chars length mismatch")
	}
	var b strings.Builder
	used := 0
	for i, f := range fracs {
		if f < 0 {
			f = 0
		}
		n := int(f*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		for j := 0; j < n; j++ {
			b.WriteByte(chars[i])
		}
		used += n
	}
	return b.String()
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Mean averages a slice (0 for empty).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
