package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("a", 1)
	tb.Row("longer", 2.5)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+sep+2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.500") {
		t.Fatalf("float formatting: %q", lines[3])
	}
	// Columns align: "value" header and "1" start at the same offset.
	if strings.Index(lines[0], "value") != strings.Index(lines[2], "1") {
		t.Fatalf("misaligned:\n%s", sb.String())
	}
}

func TestPct(t *testing.T) {
	if Pct(0.5) != " 50.0%" {
		t.Fatalf("got %q", Pct(0.5))
	}
	if Pct(1.234) != "123.4%" {
		t.Fatalf("got %q", Pct(1.234))
	}
}

func TestBar(t *testing.T) {
	if Bar(1, 2, 10) != "#####" {
		t.Fatalf("got %q", Bar(1, 2, 10))
	}
	if Bar(5, 2, 10) != "##########" {
		t.Fatal("bar must clamp to width")
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 2, 10) != "" {
		t.Fatal("degenerate bars must be empty")
	}
}

func TestStackedBar(t *testing.T) {
	got := StackedBar(10, []float64{0.3, 0.2}, []byte{'#', '='})
	if got != "###==" {
		t.Fatalf("got %q", got)
	}
	// Overflow clamps to the width.
	got = StackedBar(4, []float64{0.9, 0.9}, []byte{'a', 'b'})
	if got != "aaaa" {
		t.Fatalf("got %q", got)
	}
	got = StackedBar(10, []float64{0.5, 0.9}, []byte{'a', 'b'})
	if got != "aaaaabbbbb" {
		t.Fatalf("got %q", got)
	}
	// Negative fractions are ignored.
	if StackedBar(4, []float64{-1, 0.5}, []byte{'a', 'b'}) != "bb" {
		t.Fatal("negative fraction not ignored")
	}
}

func TestStackedBarMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StackedBar(4, []float64{1}, []byte{'a', 'b'})
}

func TestRatioAndMean(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio broken")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean broken")
	}
}
