package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/server/store"
)

// JobStatus is the lifecycle of an asynchronous request.
type JobStatus string

// Job states. Queued jobs wait for a simulation slot; a cancelled job
// stops between scheduler steps of the running simulation.
const (
	JobQueued    JobStatus = "queued"
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

// JobView is the GET /v1/jobs/{id} payload.
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Key is the request's content address.
	Key string `json:"key"`
	// Cached reports whether the finished result came from the store.
	Cached bool `json:"cached,omitempty"`
	// Source is the fleet-mode hit attribution ("local", "peer" or
	// "compute"); empty on single-shard daemons.
	Source string `json:"source,omitempty"`
	// Error carries the failure message for failed/cancelled jobs.
	Error string `json:"error,omitempty"`
	// ResultURL is where to fetch the body once Status is done.
	ResultURL string `json:"result_url,omitempty"`
}

// job tracks one asynchronous request through its lifecycle.
type job struct {
	id     string
	key    store.Key
	cancel context.CancelFunc

	mu          sync.Mutex
	status      JobStatus
	err         string
	body        []byte
	contentType string
	cached      bool
	source      string
	// finishedAt is when the job left the queued/running states; the
	// TTL sweeper evicts finished jobs older than Config.JobTTL.
	finishedAt time.Time
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Status: j.status, Key: j.key.String(), Cached: j.cached, Source: j.source, Error: j.err}
	if j.status == JobDone {
		v.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return v
}

// setRunning flips queued → running; it reports false when the job was
// cancelled first.
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobQueued {
		return false
	}
	j.status = JobRunning
	return true
}

func (j *job) finish(body []byte, contentType string, cached bool, source string, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == JobCancelled {
		return // cancellation outcome wins over a racing completion
	}
	j.finishedAt = now
	if err != nil {
		j.status = JobFailed
		if errors.Is(err, context.Canceled) {
			j.status = JobCancelled
		}
		j.err = err.Error()
		return
	}
	j.status = JobDone
	j.body = body
	j.contentType = contentType
	j.cached = cached
	j.source = source
}

func (j *job) markCancelled(now time.Time) {
	j.mu.Lock()
	if j.status == JobQueued || j.status == JobRunning {
		j.status = JobCancelled
		j.err = "cancelled by client"
		j.finishedAt = now
	}
	j.mu.Unlock()
}

// maxJobs bounds the retained job table; the oldest finished jobs are
// evicted first so a polling client only loses results it abandoned.
const maxJobs = 1024

// DefaultJobTTL is how long finished async jobs stay queryable when
// Config.JobTTL is zero. Before the TTL sweeper existed the table only
// shrank under maxJobs pressure, so a long-lived daemon retained up to
// 1024 finished bodies forever.
const DefaultJobTTL = 15 * time.Minute

// jobTTL resolves the configured TTL.
func (s *Server) jobTTL() time.Duration {
	if s.cfg.JobTTL > 0 {
		return s.cfg.JobTTL
	}
	return DefaultJobTTL
}

// sweepJobs is the background TTL sweeper: finished jobs older than the
// TTL are evicted so the job table tracks live work, not history. It
// runs until the server closes.
func (s *Server) sweepJobs() {
	ttl := s.jobTTL()
	interval := ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.evictExpiredJobs()
		}
	}
}

// evictExpiredJobs drops finished jobs whose TTL has elapsed, counting
// each eviction.
func (s *Server) evictExpiredJobs() {
	cutoff := s.now().Add(-s.jobTTL())
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		j.mu.Lock()
		expired := !j.finishedAt.IsZero() && j.finishedAt.Before(cutoff) &&
			(j.status == JobDone || j.status == JobFailed || j.status == JobCancelled)
		j.mu.Unlock()
		if expired {
			delete(s.jobs, id)
			s.counters.jobsEvicted.Add(1)
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// retainedJobs is the job-table size gauge.
func (s *Server) retainedJobs() int {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return len(s.jobs)
}

// newJob registers a queued job and returns it.
func (s *Server) newJob(key store.Key, cancel context.CancelFunc) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobSeq++
	j := &job{id: fmt.Sprintf("j%06d", s.jobSeq), key: key, cancel: cancel, status: JobQueued}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > maxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			old := s.jobs[id]
			old.mu.Lock()
			finished := old.status == JobDone || old.status == JobFailed || old.status == JobCancelled
			old.mu.Unlock()
			if finished {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything is still live; let the table grow
		}
	}
	return j
}

func (s *Server) jobByID(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}
