package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sseEvent is one decoded server-sent event.
type sseEvent struct {
	Event string
	Data  streamEvent
}

// readSSE decodes the next event from an open stream.
func readSSE(t *testing.T, r *bufio.Reader) sseEvent {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if ev.Event != "" {
				return ev
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "event: "); ok {
			ev.Event = rest
		} else if rest, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(rest), &ev.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", rest, err)
			}
		} else {
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
}

// Full stream lifecycle: connect (immediate snapshot), scrape (delta
// frame carrying only changed samples), disconnect (subscription freed).
func TestMetricsStreamLifecycle(t *testing.T) {
	srv, c := newTestServer(t, Config{ScrapeInterval: -1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/metrics/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	rd := bufio.NewReader(resp.Body)

	// Connect: an immediate snapshot, even though no scrape had run.
	first := readSSE(t, rd)
	if first.Event != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", first.Event)
	}
	if _, ok := first.Data.Samples["comasrv_requests_total"]; !ok {
		t.Fatalf("snapshot lacks comasrv_requests_total: %v", first.Data.Samples)
	}
	if srv.stream.subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", srv.stream.subscribers())
	}

	// Change one counter, scrape: the delta carries the changed sample
	// and omits untouched ones.
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.scrapeSelf(srv.now())
	delta := readSSE(t, rd)
	if delta.Event != "delta" {
		t.Fatalf("second event = %q, want delta", delta.Event)
	}
	reqs, ok := delta.Data.Samples["comasrv_requests_total"]
	if !ok {
		t.Fatalf("delta lacks the changed counter: %v", delta.Data.Samples)
	}
	if reqs <= first.Data.Samples["comasrv_requests_total"] {
		t.Fatalf("delta requests_total = %g, want > snapshot's %g", reqs, first.Data.Samples["comasrv_requests_total"])
	}
	if _, ok := delta.Data.Samples["comasrv_sim_slots"]; ok {
		t.Fatal("delta carries an unchanged gauge; deltas must omit untouched samples")
	}

	// Disconnect: the subscription is freed.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for srv.stream.subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d after disconnect, want 0", srv.stream.subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Every snapshotEvery-th publish is a full snapshot so a subscriber
// that dropped a delta is healed.
func TestMetricsStreamPeriodicSnapshot(t *testing.T) {
	var br streamBroker
	now := time.Unix(1_700_000_000, 0)
	br.publish(now, nil) // first publish: snapshot
	_, ch, _ := br.subscribe(now)
	events := func() []string {
		var out []string
		for {
			select {
			case f := <-ch:
				line, _, _ := strings.Cut(string(f), "\n")
				out = append(out, strings.TrimPrefix(line, "event: "))
			default:
				return out
			}
		}
	}
	for i := 0; i < 3; i++ {
		br.publish(now, nil)
	}
	if got := events(); strings.Join(got, ",") != "delta,delta,delta" {
		t.Fatalf("events = %v, want three deltas", got)
	}
	for br.published%snapshotEvery != 0 {
		br.publish(now, nil)
		events() // drain so the buffered channel never drops the frame under test
	}
	br.publish(now, nil)
	got := events()
	if len(got) != 1 || got[0] != "snapshot" {
		t.Fatalf("publish #%d produced %v, want a periodic snapshot", br.published, got)
	}
}
