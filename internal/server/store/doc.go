// Package store is comasrv's content-addressed result store: simulation
// responses keyed by the SHA-256 of their canonicalized request, held in
// an in-memory LRU with a byte budget in front of a persistent on-disk
// layer. Simulations are pure functions of (machine config, workload,
// engine version), so a key either misses or yields exactly the bytes a
// fresh run would produce; on-disk entries carry a checksummed envelope
// and corrupt files are deleted and recomputed rather than served. See
// API.md ("Cache semantics") for the client-visible behavior.
package store
