package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key is the content address of a canonicalized request: the SHA-256 of
// its canonical encoding. Two requests that simulate the same thing hash
// to the same key, so the store deduplicates results across clients and
// across daemon restarts.
type Key [sha256.Size]byte

// KeyOf hashes a canonical request encoding.
func KeyOf(canonical []byte) Key { return sha256.Sum256(canonical) }

// String returns the lowercase hex form used in filenames and API
// responses.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes the hex form.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("store: bad key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// magic is the result-file header; bump the version when the envelope
// changes. The envelope is: magic, newline, hex SHA-256 of the payload,
// newline, payload. The checksum covers the payload only — the key
// already names the request, the checksum guards the response bytes
// against torn writes and disk rot.
const magic = "comasrv-result-v1"

// Stats is a snapshot of the store's hit/miss counters since start.
type Stats struct {
	MemHits   int64 `json:"mem_hits"`
	DiskHits  int64 `json:"disk_hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Deletes   int64 `json:"deletes"`
	Corrupt   int64 `json:"corrupt"`
	MemBytes  int64 `json:"mem_bytes"`
	MemItems  int   `json:"mem_items"`
	DiskItems int64 `json:"disk_items"`
}

// Store is a two-level content-addressed result cache: an in-memory LRU
// with a byte budget in front of a persistent on-disk layer. It is safe
// for concurrent use. A nil directory disables the disk layer (tests,
// --store= to run memory-only).
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	mem      map[Key]*list.Element
	order    *list.List // front = most recently used
	memBytes int64
	stats    Stats
}

type memEntry struct {
	key  Key
	data []byte
}

// DefaultMemBytes is the default in-memory LRU budget (64 MiB — study
// renderings are a few kilobytes, so this holds tens of thousands of
// results).
const DefaultMemBytes = 64 << 20

// Open returns a store rooted at dir (created if missing; empty string
// for memory-only) with the given LRU byte budget (0 selects
// DefaultMemBytes).
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMemBytes
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		mem:      make(map[Key]*list.Element),
		order:    list.New(),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return s, nil
}

// path shards result files by the first key byte so directories stay
// small: <dir>/ab/abcdef....
func (s *Store) path(k Key) string {
	hexKey := k.String()
	return filepath.Join(s.dir, hexKey[:2], hexKey)
}

// Get returns the cached result for k, consulting the LRU first and the
// disk second. A disk hit is promoted into the LRU. Corrupt disk entries
// (bad envelope or checksum mismatch) are deleted and reported as
// misses, so a damaged store heals by recomputation instead of serving
// bad bytes.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.mem[k]; ok {
		s.order.MoveToFront(el)
		data := el.Value.(*memEntry).data
		s.stats.MemHits++
		s.mu.Unlock()
		return data, true
	}
	s.mu.Unlock()

	if s.dir == "" {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	data, err := decodeEnvelope(raw)
	if err != nil {
		os.Remove(s.path(k))
		s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		return nil, false
	}
	s.insertMem(k, data)
	s.count(func(st *Stats) { st.DiskHits++ })
	return data, true
}

// Put stores a result under k in both layers. The disk write is atomic
// (temp file + rename), so a crashed daemon never leaves a half-written
// result that a later Get could trust.
func (s *Store) Put(k Key, data []byte) error {
	s.insertMem(k, data)
	s.count(func(st *Stats) { st.Puts++ })
	if s.dir == "" {
		return nil
	}
	path := s.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(data)
	_, werr := fmt.Fprintf(tmp, "%s\n%s\n", magic, hex.EncodeToString(sum[:]))
	if werr == nil {
		_, werr = tmp.Write(data)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Delete removes k from both layers. Deleting an absent key is a no-op:
// the store is a cache, and the caller's intent — "this key must not be
// served" — holds either way.
func (s *Store) Delete(k Key) error {
	s.mu.Lock()
	if el, ok := s.mem[k]; ok {
		e := el.Value.(*memEntry)
		s.order.Remove(el)
		delete(s.mem, k)
		s.memBytes -= int64(len(e.data))
	}
	s.stats.Deletes++
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	if err := os.Remove(s.path(k)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// decodeEnvelope validates a result file and returns its payload.
func decodeEnvelope(raw []byte) ([]byte, error) {
	rest, ok := cutLine(raw, magic)
	if !ok {
		return nil, fmt.Errorf("store: bad magic")
	}
	if len(rest) < 2*sha256.Size+1 {
		return nil, fmt.Errorf("store: truncated header")
	}
	wantHex, payload := string(rest[:2*sha256.Size]), rest[2*sha256.Size:]
	if payload[0] != '\n' {
		return nil, fmt.Errorf("store: malformed header")
	}
	payload = payload[1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantHex {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	return payload, nil
}

func cutLine(b []byte, line string) ([]byte, bool) {
	n := len(line)
	if len(b) <= n || string(b[:n]) != line || b[n] != '\n' {
		return nil, false
	}
	return b[n+1:], true
}

// insertMem adds (or refreshes) an LRU entry and evicts from the back
// until the byte budget holds. An entry larger than the whole budget is
// simply not cached in memory.
func (s *Store) insertMem(k Key, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[k]; ok {
		e := el.Value.(*memEntry)
		s.memBytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		s.order.MoveToFront(el)
	} else if int64(len(data)) <= s.maxBytes {
		s.mem[k] = s.order.PushFront(&memEntry{key: k, data: data})
		s.memBytes += int64(len(data))
	}
	for s.memBytes > s.maxBytes && s.order.Len() > 0 {
		back := s.order.Back()
		e := back.Value.(*memEntry)
		s.order.Remove(back)
		delete(s.mem, e.key)
		s.memBytes -= int64(len(e.data))
	}
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Stats snapshots the counters, including a walk-free disk item count
// (-1 when the disk layer is disabled).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.MemBytes = s.memBytes
	st.MemItems = s.order.Len()
	s.mu.Unlock()
	st.DiskItems = s.countDisk()
	return st
}

func (s *Store) countDisk() int64 {
	if s.dir == "" {
		return -1
	}
	var n int64
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return -1
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		n += int64(len(files))
	}
	return n
}
