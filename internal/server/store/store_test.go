package store

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

func TestKeyRoundTrip(t *testing.T) {
	k := KeyOf([]byte("canonical request"))
	parsed, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != k {
		t.Fatalf("ParseKey(%q) = %v, want %v", k.String(), parsed, k)
	}
	if _, err := ParseKey("not-hex"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Fatal("ParseKey accepted a short key")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("req"))
	want := []byte("the result payload")
	if _, ok := s.Get(k); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
	}
	st := s.Stats()
	if st.Puts != 1 || st.MemHits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 put, 1 mem hit, 1 miss", st)
	}
}

// Delete removes an entry from both layers (a reopen proves the disk
// file is gone) and deleting an absent key stays a no-op.
func TestDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("req"))
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("Get after Delete reported a hit")
	}
	if st := s.Stats(); st.Deletes != 1 || st.MemItems != 0 || st.MemBytes != 0 {
		t.Fatalf("stats after delete: %+v", st)
	}
	reopened, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.Get(k); ok {
		t.Fatal("deleted entry survived on disk")
	}
	if err := s.Delete(k); err != nil {
		t.Fatal("deleting an absent key errored:", err)
	}
}

// A restart (new Store over the same directory) must serve previously
// persisted results from disk, then promote them into memory.
func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("req"))
	want := []byte("survives restarts")
	if err := s1.Put(k, want); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("after reopen: Get = %q, %v; want %q, true", got, ok, want)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
	// Second Get comes from the promoted memory entry.
	if _, ok := s2.Get(k); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 mem hit after promotion", st)
	}
}

// Corrupt disk entries are deleted and reported as misses; a subsequent
// Put..Get heals the slot.
func TestCorruptEntryHeals(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("req"))
	if err := s.Put(k, []byte("good payload")); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte on disk, then reopen so the memory layer can't
	// mask the damage.
	path := s.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k); ok {
		t.Fatal("Get served a corrupt entry")
	}
	st := s2.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt, 1 miss", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not deleted: %v", err)
	}

	want := []byte("recomputed payload")
	if err := s2.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("after heal: Get = %q, %v; want %q, true", got, ok, want)
	}
}

// Truncated or mislabeled envelopes are corrupt too, not crashes.
func TestMalformedEnvelopes(t *testing.T) {
	for _, raw := range []string{
		"",
		"wrong-magic\nabc\npayload",
		magic,                         // no newline
		magic + "\nshort\n",           // truncated checksum
		magic + "\n" + h64() + "data", // missing payload separator
	} {
		if _, err := decodeEnvelope([]byte(raw)); err == nil {
			t.Errorf("decodeEnvelope(%q) accepted a malformed envelope", raw)
		}
	}
}

func h64() string {
	b := make([]byte, 64)
	for i := range b {
		b[i] = 'a'
	}
	return string(b)
}

// The LRU evicts least-recently-used entries once the byte budget is
// exceeded, but evicted entries remain fetchable from disk.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 64) // budget: two 30-byte entries, not three
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, 30) }
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = KeyOf([]byte(fmt.Sprintf("req-%d", i)))
		if err := s.Put(keys[i], payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MemItems != 2 || st.MemBytes != 60 {
		t.Fatalf("stats = %+v, want 2 items / 60 bytes in memory", st)
	}
	// keys[0] was evicted; it must still come back from disk.
	got, ok := s.Get(keys[0])
	if !ok || !bytes.Equal(got, payload(0)) {
		t.Fatalf("evicted entry lost: %q, %v", got, ok)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want the evicted entry served from disk", st)
	}
}

// An entry larger than the whole budget skips the memory layer entirely.
func TestOversizedEntrySkipsMemory(t *testing.T) {
	s, err := Open(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("big"))
	if err := s.Put(k, bytes.Repeat([]byte{'x'}, 100)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MemItems != 0 {
		t.Fatalf("oversized entry cached in memory: %+v", st)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("oversized entry not served from disk")
	}
}

// Memory-only mode (empty dir) works and reports DiskItems = -1.
func TestMemoryOnly(t *testing.T) {
	s, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("req"))
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("memory-only Get missed")
	}
	if st := s.Stats(); st.DiskItems != -1 {
		t.Fatalf("stats = %+v, want DiskItems = -1 without a disk layer", st)
	}
}
