package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs/tsdb"
)

// streamBroker fans self-scrape samples out to the GET
// /v1/metrics/stream subscribers as server-sent events. Each subscriber
// owns a small buffered channel of pre-encoded frames; a subscriber that
// cannot keep up has frames dropped (the next delta resynchronizes it —
// deltas are computed against the broker's state, not the subscriber's,
// so a drop loses freshness, never correctness, and the periodic full
// snapshot heals any missed delta).
type streamBroker struct {
	mu     sync.Mutex
	subs   map[int]chan []byte
	nextID int
	// prev is the previous scrape's sample values, for delta encoding.
	prev map[string]float64
	// snapshots counts published scrapes so every 16th frame is a full
	// snapshot (late joiners get one immediately on subscribe).
	published int
}

// streamEvent is the SSE payload: the scrape timestamp and the sample
// values, keyed by exposition sample identity (name plus label block).
type streamEvent struct {
	TUnix   int64              `json:"t_unix"`
	Samples map[string]float64 `json:"samples"`
}

// snapshotEvery makes one frame in this many a full snapshot, bounding
// how long a subscriber that dropped a delta stays stale.
const snapshotEvery = 16

// frame encodes one SSE frame.
func frame(event string, ev streamEvent) []byte {
	b, _ := json.Marshal(ev)
	return []byte("event: " + event + "\ndata: " + string(b) + "\n\n")
}

// publish encodes the scrape as a delta (or periodic snapshot) frame
// and offers it to every subscriber without blocking.
func (br *streamBroker) publish(t time.Time, samples []tsdb.Sample) {
	br.mu.Lock()
	defer br.mu.Unlock()

	cur := make(map[string]float64, len(samples))
	for _, s := range samples {
		cur[s.Key()] = s.Value
	}
	event := "delta"
	out := cur
	if br.prev != nil && br.published%snapshotEvery != 0 {
		delta := make(map[string]float64)
		for k, v := range cur {
			if pv, ok := br.prev[k]; !ok || pv != v {
				delta[k] = v
			}
		}
		out = delta
	} else {
		event = "snapshot"
	}
	br.prev = cur
	br.published++
	if len(br.subs) == 0 {
		return
	}
	f := frame(event, streamEvent{TUnix: t.Unix(), Samples: out})
	for _, ch := range br.subs {
		select {
		case ch <- f:
		default: // slow subscriber: drop, the next snapshot resyncs it
		}
	}
}

// subscribe registers a new subscriber and returns its id, channel, and
// an immediate snapshot frame of the broker's current state (nil when
// no scrape has happened yet).
func (br *streamBroker) subscribe(now time.Time) (int, chan []byte, []byte) {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.subs == nil {
		br.subs = make(map[int]chan []byte)
	}
	id := br.nextID
	br.nextID++
	ch := make(chan []byte, 8)
	br.subs[id] = ch
	var first []byte
	if br.prev != nil {
		first = frame("snapshot", streamEvent{TUnix: now.Unix(), Samples: br.prev})
	}
	return id, ch, first
}

func (br *streamBroker) unsubscribe(id int) {
	br.mu.Lock()
	delete(br.subs, id)
	br.mu.Unlock()
}

// subscribers reports the live subscription count (tests assert a
// disconnect frees its subscription).
func (br *streamBroker) subscribers() int {
	br.mu.Lock()
	defer br.mu.Unlock()
	return len(br.subs)
}

// handleMetricsStream serves GET /v1/metrics/stream: server-sent events
// carrying the self-scraped sample set — an immediate snapshot on
// connect, then one delta per scrape tick (a full snapshot every 16th
// frame). The subscription is freed when the client disconnects or the
// server closes.
func (s *Server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming is not supported by this connection"))
		return
	}
	id, ch, first := s.stream.subscribe(s.now())
	defer s.stream.unsubscribe(id)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if first == nil {
		// No scrape has run yet (short interval deployments reach this
		// only in the first seconds): take one now so the client never
		// waits a full interval for its first frame.
		s.scrapeSelf(s.now())
		select {
		case first = <-ch:
		default:
		}
	}
	if first != nil {
		w.Write(first)
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		case f := <-ch:
			if _, err := w.Write(f); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
