package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/coma"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/obs/tsdb"
	"repro/internal/server/store"
)

// Config parameterizes the daemon.
type Config struct {
	// Jobs is the simulation-slot pool size shared by every request
	// (0 = runtime.NumCPU()). A single-run request takes one slot, a
	// study takes the whole pool, so at most Jobs simulations execute
	// concurrently machine-wide.
	Jobs int
	// StoreDir roots the persistent result store; empty runs
	// memory-only.
	StoreDir string
	// StoreMemBytes is the in-memory LRU budget (0 = store.DefaultMemBytes).
	StoreMemBytes int64
	// Timeout bounds each request's simulation time (0 = unbounded).
	Timeout time.Duration
	// Logger receives the structured per-request log (trace ID, route,
	// status, duration). nil discards; cmd/comasrv wires one from its
	// -log flag.
	Logger *slog.Logger
	// MaxQueue is the admission-control bound on the simulation pool's
	// waiter queue: a computation that cannot start while MaxQueue
	// acquisitions are already waiting is shed with a fast 429 +
	// Retry-After instead of queueing. 0 = unbounded (the pre-fleet
	// behavior).
	MaxQueue int
	// Fleet, when non-nil, runs this daemon as one shard of a
	// consistent-hash fleet (see FleetConfig).
	Fleet *FleetConfig
	// JobTTL bounds how long finished async jobs stay queryable before
	// the background sweeper evicts them (0 = 15 minutes).
	JobTTL time.Duration
	// MaxTraceBytes bounds one POST /v1/traces payload
	// (0 = DefaultMaxTraceBytes); larger uploads answer 413.
	MaxTraceBytes int64
	// MaxTraces bounds the uploaded-trace index (0 = DefaultMaxTraces);
	// uploads past the bound answer 507 until one is deleted.
	MaxTraces int
	// ScrapeInterval is the self-scrape period feeding the metrics
	// history store and the live stream (0 = DefaultScrapeInterval;
	// negative disables the loop — tests drive scrapes manually).
	ScrapeInterval time.Duration
	// SlowThreshold, when positive, logs every request at least this
	// slow at warn level (the request stays in /v1/debug/slow either
	// way — the ring keeps the slowest regardless of threshold).
	SlowThreshold time.Duration
	// SlowKeep is how many slow-request exemplars /v1/debug/slow
	// retains (0 = DefaultSlowKeep).
	SlowKeep int
}

// Server is the comasrv HTTP API: the experiment engine behind
// content-addressed caching, request collapsing and a bounded simulation
// pool. Create with New, serve with the embedded handler, stop with
// Close.
type Server struct {
	cfg   Config
	store *store.Store
	mux   *http.ServeMux
	pool  *weighted

	baseCtx context.Context
	stop    context.CancelFunc

	flightsMu sync.Mutex
	flights   map[flightKey]*flight

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder []string
	jobSeq   int
	// now is the job-eviction clock, injectable by the TTL tests.
	now func() time.Time

	tracesMu sync.Mutex
	traceIdx map[string]TraceMeta

	counters counters
	obsSink  *lockedCounting
	fleet    *fleetState

	logger  *slog.Logger
	tracer  *tracing.Tracer
	started time.Time

	reqDur    *histogram
	queueWait *histogram

	// history retains the self-scraped metric series (GET
	// /v1/metrics/history); stream fans scrapes out to SSE subscribers;
	// slow keeps the slowest-request exemplars (GET /v1/debug/slow).
	history *tsdb.DB
	stream  streamBroker
	slow    *slowRing
}

// flightKey separates cacheable flights from forced (?nocache=1) ones:
// a forced recompute must not satisfy waiters who asked for the cached
// path's semantics, and vice versa.
type flightKey struct {
	key     store.Key
	nocache bool
}

// flight is one in-progress computation that concurrent identical
// requests attach to instead of simulating again.
type flight struct {
	done chan struct{}
	body []byte
	src  source
	err  error
}

// source says where a response body came from. In fleet mode it is
// surfaced to clients (SimEnvelope.Source, X-Comasrv-Source) so the
// load generator can attribute every hit.
type source string

const (
	srcLocal   source = "local"   // this shard's store
	srcPeer    source = "peer"    // filled from the owner shard's store
	srcCompute source = "compute" // simulated here
)

// New opens the store and builds the handler. Callers own the listener;
// Server implements http.Handler.
func New(cfg Config) (*Server, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.NumCPU()
	}
	st, err := store.Open(cfg.StoreDir, cfg.StoreMemBytes)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:       cfg,
		store:     st,
		pool:      newWeighted(int64(cfg.Jobs)),
		baseCtx:   ctx,
		stop:      cancel,
		flights:   make(map[flightKey]*flight),
		jobs:      make(map[string]*job),
		traceIdx:  make(map[string]TraceMeta),
		obsSink:   &lockedCounting{},
		logger:    logger,
		tracer:    tracing.NewTracer(0),
		started:   time.Now(),
		reqDur:    newHistogram(durationBuckets...),
		queueWait: newHistogram(durationBuckets...),
		slow:      newSlowRing(cfg.SlowKeep),
		now:       time.Now,
	}
	s.history, err = tsdb.New(historyTiers(cfg.ScrapeInterval))
	if err != nil {
		cancel()
		return nil, err
	}
	if cfg.Fleet != nil {
		s.fleet, err = newFleet(*cfg.Fleet)
		if err != nil {
			cancel()
			return nil, err
		}
		if s.fleet.cfg.ProbeInterval > 0 {
			go s.probePeers()
		}
	}
	go s.sweepJobs()
	if cfg.ScrapeInterval >= 0 {
		interval := cfg.ScrapeInterval
		if interval == 0 {
			interval = DefaultScrapeInterval
		}
		go s.scrapeLoop(interval)
	}
	s.mux = http.NewServeMux()
	for _, r := range Routes() {
		switch r {
		case "GET /v1/healthz":
			s.mux.HandleFunc(r, s.handleHealthz)
		case "GET /v1/metrics":
			s.mux.HandleFunc(r, s.handleMetrics)
		case "GET /v1/workloads":
			s.mux.HandleFunc(r, s.handleWorkloads)
		case "POST /v1/simulate":
			s.mux.HandleFunc(r, s.handleSimulate)
		case "POST /v1/studies/{study}":
			s.mux.HandleFunc(r, s.handleStudy)
		case "GET /v1/jobs/{id}":
			s.mux.HandleFunc(r, s.handleJob)
		case "GET /v1/jobs/{id}/result":
			s.mux.HandleFunc(r, s.handleJobResult)
		case "DELETE /v1/jobs/{id}":
			s.mux.HandleFunc(r, s.handleJobCancel)
		case "GET /v1/traces/{id}":
			s.mux.HandleFunc(r, s.handleTrace)
		case "POST /v1/traces":
			s.mux.HandleFunc(r, s.handleTraceUpload)
		case "GET /v1/traces":
			s.mux.HandleFunc(r, s.handleTraceList)
		case "DELETE /v1/traces/{id}":
			s.mux.HandleFunc(r, s.handleTraceDelete)
		case "GET /v1/fleet":
			s.mux.HandleFunc(r, s.handleFleetInfo)
		case "GET /v1/fleet/entries/{key}":
			s.mux.HandleFunc(r, s.handleFleetEntryGet)
		case "PUT /v1/fleet/entries/{key}":
			s.mux.HandleFunc(r, s.handleFleetEntryPut)
		case "GET /metrics":
			s.mux.HandleFunc(r, s.handlePromMetrics)
		case "GET /v1/metrics/history":
			s.mux.HandleFunc(r, s.handleMetricsHistory)
		case "GET /v1/metrics/stream":
			s.mux.HandleFunc(r, s.handleMetricsStream)
		case "GET /v1/fleet/metrics":
			s.mux.HandleFunc(r, s.handleFleetMetrics)
		case "GET /v1/debug/slow":
			s.mux.HandleFunc(r, s.handleDebugSlow)
		default:
			panic("server: unhandled route " + r)
		}
	}
	return s, nil
}

// Routes lists every endpoint as "METHOD /pattern". The docs test checks
// API.md documents each one; New panics if a route here has no handler.
func Routes() []string {
	return []string{
		"GET /v1/healthz",
		"GET /v1/metrics",
		"GET /v1/workloads",
		"POST /v1/simulate",
		"POST /v1/studies/{study}",
		"GET /v1/jobs/{id}",
		"GET /v1/jobs/{id}/result",
		"DELETE /v1/jobs/{id}",
		"GET /v1/traces/{id}",
		"POST /v1/traces",
		"GET /v1/traces",
		"DELETE /v1/traces/{id}",
		"GET /v1/fleet",
		"GET /v1/fleet/entries/{key}",
		"PUT /v1/fleet/entries/{key}",
		"GET /metrics",
		"GET /v1/metrics/history",
		"GET /v1/metrics/stream",
		"GET /v1/fleet/metrics",
		"GET /v1/debug/slow",
	}
}

// ServeHTTP implements http.Handler: every request runs inside a root
// span whose trace ID comes from the caller's X-Trace-Id header when
// valid (and is always echoed back in the response's X-Trace-Id), with
// latency recorded into the /metrics histogram and one structured log
// line emitted on completion.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.counters.requests.Add(1)
	span := s.tracer.StartRoot(r.Method+" "+r.URL.Path, r.Header.Get("X-Trace-Id"))
	w.Header().Set("X-Trace-Id", span.TraceID())
	if s.fleet != nil {
		w.Header().Set("X-Comasrv-Shard", s.fleet.self.ID)
	}
	sw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r.WithContext(tracing.NewContext(r.Context(), span)))
	dur := time.Since(start)
	// The SSE stream is a long-lived subscription, not a request: its
	// lifetime would drown the latency histogram and pin the slow ring.
	streaming := r.URL.Path == "/v1/metrics/stream"
	if !streaming {
		s.reqDur.Observe(dur.Seconds())
		s.slow.note(SlowRequest{
			TraceID:    span.TraceID(),
			Method:     r.Method,
			Path:       r.URL.Path,
			Status:     sw.status,
			Source:     r.RemoteAddr,
			DurationMs: float64(dur) / float64(time.Millisecond),
			StartUnix:  start.Unix(),
		})
	}
	span.SetAttr("status", strconv.Itoa(sw.status))
	span.End()
	level := slog.LevelInfo
	msg := "request"
	if !streaming && s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold {
		level, msg = slog.LevelWarn, "slow request"
	}
	s.logger.LogAttrs(r.Context(), level, msg,
		slog.String("trace_id", span.TraceID()),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Duration("duration", dur))
}

// statusRecorder captures the response status for the request log and
// root span.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so server-sent events pass
// through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Close cancels every running and queued job (their simulations stop
// between scheduler steps) and releases the server's resources. Drain
// HTTP traffic first (http.Server.Shutdown), then Close.
func (s *Server) Close() {
	s.stop()
}

// Store exposes the result store (the daemon's flags and tests use it).
func (s *Server) Store() *store.Store { return s.store }

// --- plumbing ---------------------------------------------------------

type apiError struct {
	status int
	msg    string
	// retryAfter, when positive, is surfaced as a Retry-After header
	// (load shedding).
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

func errStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeErr(w http.ResponseWriter, status int, err error) {
	var ae *apiError
	if errors.As(err, &ae) && ae.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// decodeBody strictly decodes an optional JSON body into v; an empty
// body leaves v untouched.
func decodeBody(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return &apiError{status: http.StatusBadRequest, msg: "reading body: " + err.Error()}
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &apiError{status: http.StatusBadRequest, msg: "bad request body: " + err.Error()}
	}
	return nil
}

// newRunner builds the per-flight experiment runner wired into the
// daemon's counters, observability aggregation and cancellation.
func (s *Server) newRunner(ctx context.Context, procs, jobs int) *experiments.Runner {
	r := experiments.NewRunner()
	r.Procs = procs
	r.Jobs = jobs
	r.Ctx = ctx
	r.OnSimulate = func(string, config.Machine) { s.counters.simsExecuted.Add(1) }
	r.SinkFactory = func(string, config.Machine) obs.Sink { return s.obsSink }
	parent := tracing.FromContext(ctx)
	r.WrapSimulate = func(app string, cfg config.Machine) func(error) {
		sp := parent.StartChild("simulate")
		sp.SetAttr("app", app)
		sp.SetAttr("cfg", experiments.CfgLabel(cfg))
		return func(err error) {
			sp.SetErr(err)
			sp.End()
		}
	}
	return r
}

// execute is the shared request path: store lookup, singleflight
// collapse, peer fill (fleet mode), slot acquisition, compute, store
// fill. weight is the number of simulation slots the computation needs
// (1 for a single run, the whole pool for a study). The returned source
// says whether the body came from the local store, a peer shard, or a
// simulation run here.
func (s *Server) execute(ctx context.Context, key store.Key, nocache bool, weight int64,
	compute func(ctx context.Context) ([]byte, error)) (body []byte, src source, err error) {

	span := tracing.FromContext(ctx)
	if nocache {
		s.counters.cacheBypassed.Add(1)
	} else {
		lk := span.StartChild("store.lookup")
		b, ok := s.store.Get(key)
		lk.End()
		if ok {
			s.counters.cacheHits.Add(1)
			s.noteHit(key)
			return b, srcLocal, nil
		}
	}

	fk := flightKey{key: key, nocache: nocache}
	s.flightsMu.Lock()
	if fl, ok := s.flights[fk]; ok {
		s.flightsMu.Unlock()
		s.counters.flightsCollapsed.Add(1)
		select {
		case <-fl.done:
			return fl.body, fl.src, fl.err
		case <-ctx.Done():
			return nil, srcCompute, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{}), src: srcCompute}
	s.flights[fk] = fl
	s.flightsMu.Unlock()

	s.counters.flightsExecuted.Add(1)
	s.counters.activeFlights.Add(1)
	fl.body, fl.err = func() ([]byte, error) {
		// Before spending a simulation slot, ask the shard that owns
		// this content address (peer fill). Any failure — peer down,
		// slow, a miss, a corrupt payload — falls through to compute.
		if s.fleet != nil && !nocache {
			if b, ok := s.peerFill(ctx, key); ok {
				fl.src = srcPeer
				return b, nil
			}
		}
		qw := span.StartChild("queue.wait")
		qstart := time.Now()
		err := s.pool.AcquireBounded(ctx, weight, s.cfg.MaxQueue)
		s.queueWait.Observe(time.Since(qstart).Seconds())
		if errors.Is(err, errSaturated) {
			s.counters.loadShed.Add(1)
			err = &apiError{
				status:     http.StatusTooManyRequests,
				msg:        fmt.Sprintf("simulation queue is full (%d waiting)", s.pool.Waiting()),
				retryAfter: s.retryAfterSeconds(),
			}
		}
		qw.SetErr(err)
		qw.End()
		if err != nil {
			return nil, err
		}
		defer s.pool.Release(weight)
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
			defer cancel()
		}
		return compute(ctx)
	}()
	s.counters.activeFlights.Add(-1)
	if fl.err == nil && !nocache {
		// A failed persist degrades to cache-miss behavior; the response
		// is still correct. A peer-filled body is persisted too: the
		// entry migrates to where it is used, attraction-memory style.
		_ = s.store.Put(key, fl.body)
	}
	s.flightsMu.Lock()
	delete(s.flights, fk)
	s.flightsMu.Unlock()
	close(fl.done)
	return fl.body, fl.src, fl.err
}

// retryAfterSeconds estimates a Retry-After hint for shed requests from
// the observed mean queue wait, clamped to [1s, 60s].
func (s *Server) retryAfterSeconds() int {
	_, sum, total := s.queueWait.snapshot()
	sec := 1
	if total > 0 {
		if mean := sum / float64(total); mean > 1 {
			sec = int(mean + 0.5)
		}
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// --- handlers ---------------------------------------------------------

// Healthz is the GET /v1/healthz payload: liveness plus enough identity
// (schema version, build info, uptime) to tell *what* is alive.
type Healthz struct {
	Status        string  `json:"status"`
	SimSlots      int64   `json:"sim_slots"`
	SchemaVersion int     `json:"schema_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Module        string  `json:"module,omitempty"`
	VCSRevision   string  `json:"vcs_revision,omitempty"`
	VCSTime       string  `json:"vcs_time,omitempty"`
	// Fleet identity, present only in fleet mode: which shard this is
	// and how it sees the rest of the ring.
	ShardID string       `json:"shard_id,omitempty"`
	Fleet   *FleetHealth `json:"fleet,omitempty"`
}

// FleetHealth is the fleet view embedded in /v1/healthz.
type FleetHealth struct {
	Members        []string     `json:"members"`
	ReachablePeers int          `json:"reachable_peers"`
	Peers          []PeerHealth `json:"peers"`
}

// buildID is the embedded build identity, read once at startup.
var buildID = func() (b struct{ mod, rev, vcsTime string }) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.mod = bi.Main.Path
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			b.rev = kv.Value
		case "vcs.time":
			b.vcsTime = kv.Value
		}
	}
	return b
}()

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Healthz{
		Status:        "ok",
		SimSlots:      s.pool.Size(),
		SchemaVersion: schemaVersion,
		UptimeSeconds: time.Since(s.started).Seconds(),
		GoVersion:     runtime.Version(),
		Module:        buildID.mod,
		VCSRevision:   buildID.rev,
		VCSTime:       buildID.vcsTime,
	}
	if f := s.fleet; f != nil {
		h.ShardID = f.self.ID
		fh := &FleetHealth{Peers: f.peerView()}
		for _, m := range f.ring.Members() {
			fh.Members = append(fh.Members, m.ID)
		}
		for _, p := range fh.Peers {
			if p.Reachable {
				fh.ReachablePeers++
			}
		}
		h.Fleet = fh
	}
	writeJSON(w, http.StatusOK, h)
}

// handleTrace serves GET /v1/traces/{id}, which spans two namespaces
// distinguished by ID shape: a 64-hex content digest names an uploaded
// workload trace (POST /v1/traces), while the tracer ring's 32-hex IDs
// name retained request traces, served as JSON or (with ?format=jsonl)
// one span per line.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if digest, err := ParseTraceDigest(id); err == nil {
		s.handleUploadedTraceGet(w, r, digest)
		return
	}
	td, ok := s.tracer.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown trace %q (ring keeps the most recent %d)", id, tracing.DefaultCapacity))
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		td.WriteJSONL(w)
		return
	}
	writeJSON(w, http.StatusOK, td)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	// "workloads" stays the paper's Table 1 set; the irregular/allocator
	// families ride in the additive "extras" list (both are valid "app"
	// values for /v1/simulate).
	writeJSON(w, http.StatusOK, map[string]any{
		"workloads": apps.Names(),
		"extras":    apps.ExtraNames(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := &s.counters
	m := Metrics{
		Requests:         c.requests.Load(),
		BadRequests:      c.badRequests.Load(),
		SimsExecuted:     c.simsExecuted.Load(),
		FlightsExecuted:  c.flightsExecuted.Load(),
		FlightsCollapsed: c.flightsCollapsed.Load(),
		CacheHits:        c.cacheHits.Load(),
		CacheBypassed:    c.cacheBypassed.Load(),
		JobsCreated:      c.jobsCreated.Load(),
		JobsCancelled:    c.jobsCancelled.Load(),
		JobsEvicted:      c.jobsEvicted.Load(),
		JobsRetained:     s.retainedJobs(),
		ActiveFlights:    c.activeFlights.Load(),
		SimSlots:         s.pool.Size(),
		SimulatedExecNs:  c.simulatedExecNs.Load(),
		SimulatedRuns:    c.simulatedRuns.Load(),
		LoadShed:         c.loadShed.Load(),
		TracesUploaded:   c.tracesUploaded.Load(),
		TracesDeleted:    c.tracesDeleted.Load(),
		TracesRetained:   s.retainedTraces(),
		TraceSims:        c.traceSims.Load(),
		Store:            s.store.Stats(),
		Obs:              s.obsSink.snapshot(),
	}
	if f := s.fleet; f != nil {
		fm := &FleetMetrics{
			ShardID:             f.self.ID,
			Members:             f.ring.Len(),
			PeerFillHits:        c.peerFillHits.Load(),
			PeerFillMisses:      c.peerFillMisses.Load(),
			PeerFillErrors:      c.peerFillErrors.Load(),
			PeerServed:          c.peerServed.Load(),
			PeerServedMisses:    c.peerServedMisses.Load(),
			ReplicationPushed:   c.replicationPushed.Load(),
			ReplicationReceived: c.replicationReceived.Load(),
			ReplicationErrors:   c.replicationErrors.Load(),
		}
		for _, p := range f.peerView() {
			if p.Reachable {
				fm.ReachablePeers++
			}
		}
		m.Fleet = fm
	}
	writeJSON(w, http.StatusOK, m)
}

// SimEnvelope is the POST /v1/simulate response: the content address,
// whether the store served it, and the result payload. Source is only
// present in fleet mode ("local", "peer" or "compute"); single-shard
// responses are byte-identical to the pre-fleet schema.
type SimEnvelope struct {
	Key    string          `json:"key"`
	Cached bool            `json:"cached"`
	Source string          `json:"source,omitempty"`
	Result json.RawMessage `json:"result"`
}

// SimResult is the cached payload of one simulation: the paper-facing
// metrics of machine.Result in a stable JSON schema (documented in
// API.md).
type SimResult struct {
	ExecTimeNs     int64    `json:"exec_time_ns"`
	RNMr           float64  `json:"rnmr"`
	Reads          int64    `json:"reads"`
	ReadNodeMisses int64    `json:"read_node_misses"`
	BusOccupancyNs [3]int64 `json:"bus_occupancy_ns"` // read, write, replace
	WriteBacks     int64    `json:"write_backs"`
	DirtyPurges    int64    `json:"dirty_purges"`
	BusUtilization float64  `json:"bus_utilization"`
	MaxDRAMUtil    float64  `json:"max_dram_utilization"`
	Imbalance      float64  `json:"imbalance"`
	Breakdown      struct {
		Busy   float64 `json:"busy_ns"`
		SLC    float64 `json:"slc_ns"`
		AM     float64 `json:"am_ns"`
		Remote float64 `json:"remote_ns"`
		Sync   float64 `json:"sync_ns"`
	} `json:"breakdown"`
	ReadLatencyP50Ns int64      `json:"read_latency_p50_ns"`
	ReadLatencyP99Ns int64      `json:"read_latency_p99_ns"`
	Protocol         coma.Stats `json:"protocol"`
	// Fidelity is present only for sampled-fidelity runs: the sampling
	// geometry that actually ran, how much of the run was measured in
	// detail, the calibrated contention factors and per-metric confidence
	// (relative standard errors across measurement windows).
	Fidelity *SimFidelity `json:"fidelity,omitempty"`
}

// SimFidelity mirrors machine.FidelityReport in the stable response
// schema (documented in API.md).
type SimFidelity struct {
	Mode        string     `json:"mode"`
	WarmupNs    int64      `json:"warmup_ns"`
	WindowNs    int64      `json:"window_ns"`
	PeriodNs    int64      `json:"period_ns"`
	Windows     int        `json:"windows"`
	DetailedNs  int64      `json:"detailed_ns"`
	Coverage    float64    `json:"coverage"`
	FastRefs    int64      `json:"fast_refs"`
	TotalRefs   int64      `json:"total_refs"`
	Lambda      float64    `json:"lambda"`
	LambdaClass [3]float64 `json:"lambda_class"` // SLC, AM, remote
	LambdaDrain float64    `json:"lambda_drain"`
	Confidence  struct {
		ExecTime     float64 `json:"exec_time_rse"`
		RNMr         float64 `json:"rnmr_rse"`
		BusOccupancy float64 `json:"bus_occupancy_rse"`
		MissRatio    float64 `json:"miss_ratio_rse"`
	} `json:"confidence"`
}

func newSimResult(res *machine.Result) SimResult {
	out := SimResult{
		ExecTimeNs:       int64(res.ExecTime),
		RNMr:             res.RNMr(),
		Reads:            res.Reads,
		ReadNodeMisses:   res.ReadNodeMisses,
		WriteBacks:       res.WriteBacks,
		DirtyPurges:      res.DirtyPurges,
		BusUtilization:   res.BusUtilization,
		MaxDRAMUtil:      res.MaxDRAMUtilization(),
		Imbalance:        res.Imbalance(),
		ReadLatencyP50Ns: res.ReadLatency.Quantile(0.5),
		ReadLatencyP99Ns: res.ReadLatency.Quantile(0.99),
		Protocol:         res.Protocol,
	}
	for i, v := range res.BusOccupancy {
		out.BusOccupancyNs[i] = int64(v)
	}
	b := res.Breakdown()
	out.Breakdown.Busy = b.Busy
	out.Breakdown.SLC = b.SLC
	out.Breakdown.AM = b.AM
	out.Breakdown.Remote = b.Remote
	out.Breakdown.Sync = b.Sync
	if rep := res.Fidelity; rep != nil {
		f := &SimFidelity{
			Mode:        rep.Mode,
			WarmupNs:    rep.WarmupNs,
			WindowNs:    rep.WindowNs,
			PeriodNs:    rep.PeriodNs,
			Windows:     rep.Windows,
			DetailedNs:  rep.DetailedNs,
			Coverage:    rep.Coverage,
			FastRefs:    rep.FastRefs,
			TotalRefs:   rep.TotalRefs,
			Lambda:      rep.Lambda,
			LambdaClass: rep.LambdaClass,
			LambdaDrain: rep.LambdaDrain,
		}
		f.Confidence.ExecTime = rep.Confidence.ExecTime
		f.Confidence.RNMr = rep.Confidence.RNMr
		f.Confidence.BusOccupancy = rep.Confidence.BusOccupancy
		f.Confidence.MissRatio = rep.Confidence.MissRatio
		out.Fidelity = f
	}
	return out
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if err := decodeBody(r, &req); err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, errStatus(err), err)
		return
	}
	cspan := tracing.FromContext(r.Context()).StartChild("canonicalize")
	cfg, err := req.normalize()
	if err != nil {
		cspan.SetErr(err)
		cspan.End()
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	key := req.key()
	cspan.End()
	nocache := r.URL.Query().Get("nocache") == "1"
	compute := func(ctx context.Context) ([]byte, error) {
		var res *machine.Result
		if req.TraceRef != "" {
			// Simulate-by-reference: the uploaded trace supplies the
			// machine size, so the geometry checks normalize deferred run
			// now — their failures are the client's, not the server's.
			tr, err := s.loadTrace(ctx, req.TraceRef)
			if err != nil {
				return nil, err
			}
			tcfg, err := req.geometry(tr.Procs)
			if err != nil {
				return nil, &apiError{status: http.StatusBadRequest, msg: err.Error()}
			}
			runner := s.newRunner(ctx, tr.Procs, 1)
			res, err = runner.RunTrace(tr, tcfg)
			if err != nil {
				return nil, err
			}
			s.counters.traceSims.Add(1)
		} else {
			runner := s.newRunner(ctx, req.Procs, 1)
			var err error
			res, err = runner.Run(req.App, cfg)
			if err != nil {
				return nil, err
			}
		}
		if rep := res.Fidelity; rep != nil {
			// Annotate the trace with the run's fast-forward/detailed
			// phase split so a sampled run's provenance is inspectable
			// next to its simulate span.
			sp := tracing.FromContext(ctx).StartChild("fidelity.phases")
			sp.SetAttr("windows", strconv.Itoa(rep.Windows))
			sp.SetAttr("coverage", fmt.Sprintf("%.4f", rep.Coverage))
			sp.SetAttr("fast_refs", strconv.FormatInt(rep.FastRefs, 10))
			sp.SetAttr("lambda", fmt.Sprintf("%.3f", rep.Lambda))
			sp.End()
		}
		s.counters.simulatedRuns.Add(1)
		s.counters.simulatedExecNs.Add(int64(res.ExecTime))
		return json.Marshal(newSimResult(res))
	}
	if r.URL.Query().Get("async") == "1" {
		s.respondAsync(w, r, key, nocache, 1, "application/json", compute)
		return
	}
	body, src, err := s.execute(r.Context(), key, nocache, 1, compute)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	env := SimEnvelope{Key: key.String(), Cached: src == srcLocal, Result: body}
	if s.fleet != nil {
		env.Source = string(src)
	}
	writeJSON(w, http.StatusOK, env)
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	study := r.PathValue("study")
	valid := study == "sweep"
	if _, ok := studies[study]; ok {
		valid = true
	}
	if !valid {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown study %q (known: %v)", study, StudyNames()))
		return
	}
	var req StudyRequest
	if err := decodeBody(r, &req); err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, errStatus(err), err)
		return
	}
	cspan := tracing.FromContext(r.Context()).StartChild("canonicalize")
	spec, err := req.normalize(study)
	if err != nil {
		cspan.SetErr(err)
		cspan.End()
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	key := req.key(study)
	cspan.End()
	nocache := r.URL.Query().Get("nocache") == "1"
	compute := func(ctx context.Context) (body []byte, err error) {
		runner := s.newRunner(ctx, req.Procs, s.cfg.Jobs)
		// The render span covers the whole artifact production; the
		// simulations it fans out to appear as sibling simulate spans.
		rspan := tracing.FromContext(ctx).StartChild("render")
		defer func() {
			rspan.SetErr(err)
			rspan.End()
		}()
		var buf bytes.Buffer
		if study == "sweep" {
			rows, err := runner.Sweep(spec)
			if err != nil {
				return nil, err
			}
			if err := experiments.WriteSweepCSV(&buf, rows); err != nil {
				return nil, err
			}
		} else if err := experiments.RenderArtifact(&buf, runner, studies[study], req.Chart); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	if r.URL.Query().Get("async") == "1" {
		s.respondAsync(w, r, key, nocache, s.pool.Size(), "text/plain; charset=utf-8", compute)
		return
	}
	body, src, err := s.execute(r.Context(), key, nocache, s.pool.Size(), compute)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	s.writeStudy(w, key, src, body)
}

func (s *Server) writeStudy(w http.ResponseWriter, key store.Key, src source, body []byte) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Comasrv-Key", key.String())
	w.Header().Set("X-Comasrv-Cached", fmt.Sprintf("%t", src == srcLocal))
	if s.fleet != nil {
		w.Header().Set("X-Comasrv-Source", string(src))
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// respondAsync enqueues the computation as a job and answers 202 with
// the job's view. The request's span is threaded into the job context,
// so the stages of an async computation land in the same trace as the
// 202 response that launched it (the root span ends at the 202; late
// children are still recorded).
func (s *Server) respondAsync(w http.ResponseWriter, r *http.Request, key store.Key, nocache bool, weight int64,
	contentType string, compute func(ctx context.Context) ([]byte, error)) {

	ctx, cancel := context.WithCancel(s.baseCtx)
	ctx = tracing.NewContext(ctx, tracing.FromContext(r.Context()))
	j := s.newJob(key, cancel)
	s.counters.jobsCreated.Add(1)
	go func() {
		defer cancel()
		if !j.setRunning() {
			return // cancelled while queued
		}
		body, src, err := s.execute(ctx, key, nocache, weight, compute)
		srcStr := ""
		if s.fleet != nil {
			srcStr = string(src)
		}
		j.finish(body, contentType, src == srcLocal, srcStr, err, s.now())
	}()
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	status, body, contentType, cached, srcStr := j.status, j.body, j.contentType, j.cached, j.source
	key := j.key
	j.mu.Unlock()
	if status != JobDone {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", j.id, status))
		return
	}
	if contentType == "application/json" {
		writeJSON(w, http.StatusOK, SimEnvelope{Key: key.String(), Cached: cached, Source: srcStr, Result: body})
		return
	}
	src := srcCompute
	if cached {
		src = srcLocal
	}
	if srcStr != "" {
		src = source(srcStr)
	}
	s.writeStudy(w, key, src, body)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.markCancelled(s.now())
	j.cancel()
	s.counters.jobsCancelled.Add(1)
	writeJSON(w, http.StatusOK, j.view())
}
