package server

import (
	"encoding/json"
	"fmt"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/server/store"
)

// schemaVersion is baked into every content-address so results computed
// by an incompatible request or response schema can never be served from
// the store. Bump it together with intended timing-model or rendering
// changes (the same events that regenerate the CLI goldens).
//
// v2: topology request fields (ring-of-clusters interconnect) and the
// widened Timeline (link occupancy series).
//
// v3: execution-fidelity request fields (sampled fast-forward) and the
// fidelity report in SimResult. Exact and sampled runs of the same
// machine must never share a content address — sampled execution times
// are estimates.
//
// v4: simulate-by-reference (the trace_ref field): a v4 request can name
// an uploaded trace instead of a registered workload, and the machine
// size comes from the trace, so a v3 cache entry keyed without the field
// must never answer a v4 request.
const schemaVersion = 4

// SimRequest is the body of POST /v1/simulate: one (workload, machine
// configuration) run. Zero fields take the paper's defaults, mirroring
// cmd/comasim's flags; the canonical form spells every default out so
// equivalent requests hash to the same content address.
type SimRequest struct {
	// App is the workload name (see GET /v1/workloads). Exactly one of
	// App and TraceRef must be set.
	App string `json:"app,omitempty"`
	// TraceRef names an uploaded trace by its content digest (the 64-hex
	// "digest" POST /v1/traces reported) instead of a registered
	// workload. The machine size comes from the trace, so Procs must be
	// left unset.
	TraceRef string `json:"trace_ref,omitempty"`
	// Procs is the machine size (default 16, the paper's). Invalid with
	// TraceRef.
	Procs int `json:"procs,omitempty"`
	// ProcsPerNode is the clustering degree (default 1).
	ProcsPerNode int `json:"procs_per_node,omitempty"`
	// MP is the memory-pressure label: 6%, 50%, 75%, 81%, 87%
	// (default 50%).
	MP string `json:"mp,omitempty"`
	// AMWays is the attraction-memory associativity (default 4).
	AMWays int `json:"am_ways,omitempty"`
	// Bandwidth multipliers, 1.0 = paper baseline.
	DRAMBandwidth float64 `json:"dram_bw,omitempty"`
	NCBandwidth   float64 `json:"nc_bw,omitempty"`
	BusBandwidth  float64 `json:"bus_bw,omitempty"`
	// Inclusive selects the inclusive hierarchy (default true).
	Inclusive *bool `json:"inclusive,omitempty"`
	// WriteUpdate selects the write-update protocol ablation.
	WriteUpdate bool `json:"write_update,omitempty"`
	// Topology selects the interconnect: "bus" (default) or "ring".
	Topology string `json:"topology,omitempty"`
	// Clusters is the ring's cluster count (default: one cluster per
	// node). Only valid with topology "ring".
	Clusters int `json:"clusters,omitempty"`
	// LinkLatencyNs is the per-hop ring-link latency in nanoseconds:
	// 0 selects the default (40), -1 means explicitly zero. Only valid
	// with topology "ring".
	LinkLatencyNs int `json:"link_latency_ns,omitempty"`
	// LinkBandwidth divides ring-link occupancy (default 1.0). Only
	// valid with topology "ring".
	LinkBandwidth float64 `json:"link_bw,omitempty"`
	// ScalePressure reinterprets the MP fraction against this machine's
	// processor count instead of the paper's 16 (scaled sweeps).
	ScalePressure bool `json:"scale_pressure,omitempty"`
	// Fidelity selects the execution fidelity: "exact" (default) or
	// "sampled" (fast-forward between detailed measurement windows;
	// execution time becomes an estimate, count metrics stay exact).
	Fidelity string `json:"fidelity,omitempty"`
	// Sampled-geometry overrides in simulated nanoseconds, only valid
	// with fidelity "sampled": warmup before each measurement window
	// (-1 means explicitly zero), window span and sampling period. Zero
	// selects the defaults (16000/16000/256000).
	FFWarmupNs int64 `json:"ff_warmup_ns,omitempty"`
	FFWindowNs int64 `json:"ff_window_ns,omitempty"`
	FFPeriodNs int64 `json:"ff_period_ns,omitempty"`
}

// canonSim is the canonical (fully defaulted) form that is hashed into
// the content address. Field order is fixed by the struct; there are no
// maps, so the encoding is byte-deterministic.
type canonSim struct {
	Schema       int     `json:"schema"`
	Kind         string  `json:"kind"`
	App          string  `json:"app"`
	TraceRef     string  `json:"trace_ref"`
	Procs        int     `json:"procs"`
	ProcsPerNode int     `json:"procs_per_node"`
	MP           string  `json:"mp"`
	AMWays       int     `json:"am_ways"`
	DRAM         float64 `json:"dram_bw"`
	NC           float64 `json:"nc_bw"`
	Bus          float64 `json:"bus_bw"`
	Inclusive    bool    `json:"inclusive"`
	WriteUpdate  bool    `json:"write_update"`
	Topology     string  `json:"topology"`
	Clusters     int     `json:"clusters"`
	LinkLatency  int     `json:"link_latency_ns"`
	LinkBW       float64 `json:"link_bw"`
	ScaleMP      bool    `json:"scale_pressure"`
	Fidelity     string  `json:"fidelity"`
	FFWarmup     int64   `json:"ff_warmup_ns"`
	FFWindow     int64   `json:"ff_window_ns"`
	FFPeriod     int64   `json:"ff_period_ns"`
}

// normalize validates the request, fills defaults in place, and returns
// the machine configuration it describes. A trace_ref request returns
// the zero configuration: its machine size lives in the referenced
// trace, so the caller resolves the geometry with r.geometry(tr.Procs)
// once the trace is loaded.
func (r *SimRequest) normalize() (config.Machine, error) {
	if r.TraceRef != "" {
		if r.App != "" {
			return config.Machine{}, fmt.Errorf("app and trace_ref are mutually exclusive")
		}
		d, err := ParseTraceDigest(r.TraceRef)
		if err != nil {
			return config.Machine{}, err
		}
		r.TraceRef = d
		if r.Procs != 0 {
			return config.Machine{}, fmt.Errorf("procs is derived from the uploaded trace; leave it unset with trace_ref")
		}
	} else {
		if r.App == "" {
			return config.Machine{}, fmt.Errorf("missing required field %q (or trace_ref)", "app")
		}
		if _, err := apps.ByName(r.App); err != nil {
			return config.Machine{}, err
		}
		if r.Procs == 0 {
			r.Procs = 16
		}
	}
	if r.ProcsPerNode == 0 {
		r.ProcsPerNode = 1
	}
	if r.ProcsPerNode < 1 {
		return config.Machine{}, fmt.Errorf("procs_per_node must be positive")
	}
	if r.MP == "" {
		r.MP = "50%"
	}
	if _, err := config.PressureByLabel(r.MP); err != nil {
		return config.Machine{}, err
	}
	if r.AMWays == 0 {
		r.AMWays = 4
	}
	if r.DRAMBandwidth == 0 {
		r.DRAMBandwidth = 1
	}
	if r.NCBandwidth == 0 {
		r.NCBandwidth = 1
	}
	if r.BusBandwidth == 0 {
		r.BusBandwidth = 1
	}
	if r.Inclusive == nil {
		t := true
		r.Inclusive = &t
	}
	switch r.Topology {
	case "":
		r.Topology = "bus"
	case "bus", "ring":
	default:
		return config.Machine{}, fmt.Errorf("unknown topology %q (known: bus, ring)", r.Topology)
	}
	if r.Topology == "bus" {
		if r.Clusters != 0 || r.LinkLatencyNs != 0 || r.LinkBandwidth != 0 {
			return config.Machine{}, fmt.Errorf("clusters, link_latency_ns and link_bw are only valid with topology \"ring\"")
		}
	} else {
		if r.Clusters < 0 {
			return config.Machine{}, fmt.Errorf("clusters must be non-negative (0 means one per node)")
		}
		if r.LinkLatencyNs == 0 {
			r.LinkLatencyNs = int(machine.DefaultLinkLatency)
		}
		if r.LinkLatencyNs < -1 {
			return config.Machine{}, fmt.Errorf("link_latency_ns must be >= -1 (-1 means zero)")
		}
		if r.LinkBandwidth == 0 {
			r.LinkBandwidth = 1
		}
		if r.LinkBandwidth < 0 {
			return config.Machine{}, fmt.Errorf("link_bw must be positive")
		}
	}
	switch r.Fidelity {
	case "":
		r.Fidelity = machine.FidelityExact
	case machine.FidelityExact, machine.FidelitySampled:
	default:
		return config.Machine{}, fmt.Errorf("unknown fidelity %q (known: exact, sampled)", r.Fidelity)
	}
	if r.Fidelity == machine.FidelityExact {
		if r.FFWarmupNs != 0 || r.FFWindowNs != 0 || r.FFPeriodNs != 0 {
			return config.Machine{}, fmt.Errorf("ff_warmup_ns, ff_window_ns and ff_period_ns are only valid with fidelity \"sampled\"")
		}
	} else {
		if r.FFWarmupNs < -1 {
			return config.Machine{}, fmt.Errorf("ff_warmup_ns must be >= -1 (-1 means zero warmup)")
		}
		if r.FFWindowNs < 0 || r.FFPeriodNs < 0 {
			return config.Machine{}, fmt.Errorf("ff_window_ns and ff_period_ns must be non-negative (0 means default)")
		}
		spec := config.Fidelity{Mode: machine.FidelitySampled,
			WarmupNs: r.FFWarmupNs, WindowNs: r.FFWindowNs, PeriodNs: r.FFPeriodNs}.Params()
		if err := spec.Validate(); err != nil {
			return config.Machine{}, err
		}
		// The canonical form spells the resolved geometry out, so "0 =
		// default" and the explicit default values share one content
		// address (a zero resolved warmup canonicalizes to -1, the
		// explicit-zero spelling).
		r.FFWarmupNs = int64(spec.Warmup)
		if r.FFWarmupNs == 0 {
			r.FFWarmupNs = -1
		}
		r.FFWindowNs = int64(spec.Window)
		r.FFPeriodNs = int64(spec.Period)
	}
	if r.TraceRef != "" {
		// The procs-dependent geometry checks (node divisibility, ring
		// cluster count) wait for the trace; the content address below
		// keeps the request's own spelling (clusters 0 = one per node).
		return config.Machine{}, nil
	}
	return r.geometry(r.Procs)
}

// geometry completes the processor-count-dependent validation deferred
// by normalize and builds the machine configuration. The app path calls
// it from normalize; the trace_ref path calls it in the compute closure
// once the referenced trace — which carries the processor count — has
// been loaded.
func (r *SimRequest) geometry(procs int) (config.Machine, error) {
	if procs < 1 || procs%r.ProcsPerNode != 0 {
		return config.Machine{}, fmt.Errorf("procs (%d) must be a positive multiple of procs_per_node (%d)", procs, r.ProcsPerNode)
	}
	mp, err := config.PressureByLabel(r.MP)
	if err != nil {
		return config.Machine{}, err
	}
	if r.Topology == "ring" {
		nodes := procs / r.ProcsPerNode
		if r.Clusters == 0 {
			r.Clusters = nodes
		}
		if nodes%r.Clusters != 0 {
			return config.Machine{}, fmt.Errorf("%d nodes not divisible into %d ring clusters", nodes, r.Clusters)
		}
	}
	cfg := config.Baseline(r.ProcsPerNode, mp)
	cfg.Procs = procs
	cfg.AMWays = r.AMWays
	cfg.DRAMBandwidth = r.DRAMBandwidth
	cfg.NCBandwidth = r.NCBandwidth
	cfg.BusBandwidth = r.BusBandwidth
	cfg.Inclusive = *r.Inclusive
	cfg.Policy.WriteUpdate = r.WriteUpdate
	cfg.ScalePressure = r.ScalePressure
	if r.Topology == "ring" {
		cfg.Topology = "ring"
		cfg.Clusters = r.Clusters
		cfg.LinkLatencyNs = r.LinkLatencyNs
		cfg.LinkBandwidth = r.LinkBandwidth
	}
	// Mode "exact" (not the zero value) pins the fidelity so a runner
	// default can never override a request's choice.
	cfg.Fidelity = config.Fidelity{Mode: r.Fidelity}
	if r.Fidelity == machine.FidelitySampled {
		cfg.Fidelity.WarmupNs = r.FFWarmupNs
		cfg.Fidelity.WindowNs = r.FFWindowNs
		cfg.Fidelity.PeriodNs = r.FFPeriodNs
	}
	return cfg, nil
}

// CanonicalKey validates the request and returns the content address of
// its canonical form without executing it — the "key" field /v1/simulate
// would report. Clients (the load generator, the CI smoke test) use it
// to route or verify requests offline; the receiver cannot be tricked
// into a different address because it re-canonicalizes independently.
func (r SimRequest) CanonicalKey() (store.Key, error) {
	if _, err := r.normalize(); err != nil {
		return store.Key{}, err
	}
	return r.key(), nil
}

// key content-addresses the normalized request.
func (r *SimRequest) key() store.Key {
	c := canonSim{
		Schema: schemaVersion, Kind: "simulate",
		App: r.App, TraceRef: r.TraceRef,
		Procs: r.Procs, ProcsPerNode: r.ProcsPerNode, MP: r.MP,
		AMWays: r.AMWays, DRAM: r.DRAMBandwidth, NC: r.NCBandwidth,
		Bus: r.BusBandwidth, Inclusive: *r.Inclusive, WriteUpdate: r.WriteUpdate,
		Topology: r.Topology, Clusters: r.Clusters,
		LinkLatency: r.LinkLatencyNs, LinkBW: r.LinkBandwidth,
		ScaleMP:  r.ScalePressure,
		Fidelity: r.Fidelity,
		FFWarmup: r.FFWarmupNs, FFWindow: r.FFWindowNs, FFPeriod: r.FFPeriodNs,
	}
	b, err := json.Marshal(c)
	if err != nil {
		panic(err) // canonSim is a flat struct; Marshal cannot fail
	}
	return store.KeyOf(b)
}

// StudyRequest is the optional body of POST /v1/studies/{name}. An empty
// body runs the paper's configuration.
type StudyRequest struct {
	// Procs is the machine size (default 16).
	Procs int `json:"procs,omitempty"`
	// Chart renders figures 3-5 as stacked bar charts (the CLI's -chart).
	Chart bool `json:"chart,omitempty"`

	// The remaining fields parameterize the sweep study only (they
	// mirror cmd/sweep's flags) and are rejected elsewhere.
	Apps         []string  `json:"apps,omitempty"`
	ProcsPerNode []int     `json:"ppn,omitempty"`
	MP           []string  `json:"mp,omitempty"`
	AMWays       []int     `json:"ways,omitempty"`
	DRAM         []float64 `json:"dram,omitempty"`
}

// studies maps API study names onto CLI artifact names. The API exposes
// the paper-facing names; RenderArtifact keeps the bytes identical to
// cmd/experiments.
var studies = map[string]string{
	"table1":     "table1",
	"figure2":    "fig2",
	"figure3":    "fig3",
	"figure4":    "fig4",
	"figure5":    "fig5",
	"thresholds": "thresholds",
}

// StudyNames lists the valid study endpoint names (the map above plus
// "sweep"), in API.md order.
func StudyNames() []string {
	return []string{"table1", "figure2", "figure3", "figure4", "figure5", "thresholds", "sweep"}
}

type canonStudy struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	Study  string `json:"study"`
	Procs  int    `json:"procs"`
	Chart  bool   `json:"chart"`

	Apps []string  `json:"apps,omitempty"`
	PPN  []int     `json:"ppn,omitempty"`
	MP   []string  `json:"mp,omitempty"`
	Ways []int     `json:"ways,omitempty"`
	DRAM []float64 `json:"dram,omitempty"`
}

// normalize validates the study request against the study name and fills
// defaults, expanding sweep lists to their explicit forms so equivalent
// spellings share a content address.
func (r *StudyRequest) normalize(study string) (experiments.SweepSpec, error) {
	if r.Procs == 0 {
		r.Procs = 16
	}
	if r.Procs < 1 {
		return experiments.SweepSpec{}, fmt.Errorf("procs must be positive")
	}
	if study != "sweep" {
		if _, ok := studies[study]; !ok {
			return experiments.SweepSpec{}, fmt.Errorf("unknown study %q (known: %v)", study, StudyNames())
		}
		if len(r.Apps) != 0 || len(r.ProcsPerNode) != 0 || len(r.MP) != 0 || len(r.AMWays) != 0 || len(r.DRAM) != 0 {
			return experiments.SweepSpec{}, fmt.Errorf("sweep parameters (apps, ppn, mp, ways, dram) are only valid for the sweep study")
		}
		if r.Chart && study != "figure3" && study != "figure4" && study != "figure5" {
			return experiments.SweepSpec{}, fmt.Errorf("chart is only valid for figure3, figure4 and figure5")
		}
		return experiments.SweepSpec{}, nil
	}
	if r.Chart {
		return experiments.SweepSpec{}, fmt.Errorf("chart is not valid for the sweep study")
	}
	if len(r.Apps) == 0 {
		r.Apps = apps.Names()
	}
	for _, a := range r.Apps {
		if _, err := apps.ByName(a); err != nil {
			return experiments.SweepSpec{}, err
		}
	}
	if len(r.ProcsPerNode) == 0 {
		r.ProcsPerNode = []int{1, 2, 4}
	}
	if len(r.MP) == 0 {
		for _, p := range config.Pressures {
			r.MP = append(r.MP, p.Label)
		}
	}
	spec := experiments.SweepSpec{
		Apps:         r.Apps,
		ProcsPerNode: r.ProcsPerNode,
		AMWays:       r.AMWays,
		DRAM:         r.DRAM,
	}
	for _, label := range r.MP {
		p, err := config.PressureByLabel(label)
		if err != nil {
			return experiments.SweepSpec{}, err
		}
		spec.Pressures = append(spec.Pressures, p)
	}
	if len(r.AMWays) == 0 {
		r.AMWays = []int{4}
		spec.AMWays = r.AMWays
	}
	if len(r.DRAM) == 0 {
		r.DRAM = []float64{1}
		spec.DRAM = r.DRAM
	}
	return spec, nil
}

// key content-addresses the normalized study request.
func (r *StudyRequest) key(study string) store.Key {
	c := canonStudy{
		Schema: schemaVersion, Kind: "study", Study: study,
		Procs: r.Procs, Chart: r.Chart,
		Apps: r.Apps, PPN: r.ProcsPerNode, MP: r.MP, Ways: r.AMWays, DRAM: r.DRAM,
	}
	b, err := json.Marshal(c)
	if err != nil {
		panic(err)
	}
	return store.KeyOf(b)
}
