package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// smallTrace is a quick 4-processor kernel for the ingestion tests.
func smallTrace() *trace.Trace {
	return apps.PChase(4, 64, 8)
}

// postRaw uploads raw bytes to /v1/traces and returns the status code
// and body (the typed client hides non-2xx bodies; the rejection tests
// need them).
func postRaw(t *testing.T, base string, payload []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestTraceUploadRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	tr := smallTrace()
	payload := tr.EncodeCompact()

	meta, err := c.UploadTrace(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Digest == "" || meta.Procs != 4 || meta.Name != tr.Name {
		t.Fatalf("bad upload meta: %+v", meta)
	}
	// Idempotent: identical bytes re-upload to the same digest.
	again, err := c.UploadTrace(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != meta.Digest {
		t.Fatalf("re-upload changed digest: %s vs %s", again.Digest, meta.Digest)
	}

	l, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l.Count != 1 || len(l.Traces) != 1 || l.Traces[0].Digest != meta.Digest {
		t.Fatalf("bad list: %+v", l)
	}

	got, err := c.TraceMeta(ctx, meta.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("GET meta differs: %+v vs %+v", got, meta)
	}

	// ?format=bin returns the exact uploaded bytes.
	resp, err := http.Get(c.Base + "/v1/traces/" + meta.Digest + "?format=bin")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(raw, payload) {
		t.Fatal("binary retrieval is not byte-identical to the upload")
	}

	if err := c.DeleteTrace(ctx, meta.Digest); err != nil {
		t.Fatal(err)
	}
	if l, err = c.Traces(ctx); err != nil || l.Count != 0 {
		t.Fatalf("list after delete: %+v, %v", l, err)
	}
	if _, err := c.TraceMeta(ctx, meta.Digest); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("GET after delete: %v, want 404", err)
	}
	if err := c.DeleteTrace(ctx, meta.Digest); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("double delete: %v, want 404", err)
	}
}

// Simulating by trace_ref must reproduce the local RunTrace result
// byte-for-byte, and repeat requests must hit the store.
func TestSimulateByTraceRef(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ctx := context.Background()
	tr := smallTrace()
	payload := tr.EncodeCompact()
	meta, err := c.UploadTrace(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}

	req := SimRequest{TraceRef: meta.Digest, ProcsPerNode: 2, MP: "6%"}
	res, env, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if env.Cached {
		t.Fatal("first trace_ref request reported cached")
	}

	// Local reference: same wire round-trip, same configuration.
	decoded, err := trace.DecodeCompact(payload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline(2, config.MP6)
	cfg.Fidelity = config.Fidelity{Mode: "exact"}
	local, err := experiments.NewRunner().RunTrace(decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := newSimResult(local); res != want {
		t.Fatalf("simulate-by-ref diverges from local RunTrace:\nserver: %+v\nlocal:  %+v", res, want)
	}

	res2, env2, err := c.Simulate(ctx, SimRequest{TraceRef: meta.Digest, ProcsPerNode: 2, MP: "6%"})
	if err != nil {
		t.Fatal(err)
	}
	if !env2.Cached || env2.Key != env.Key || res2 != res {
		t.Fatalf("repeat trace_ref request not served from the store (cached=%v)", env2.Cached)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.TracesUploaded != 1 || m.TraceSims != 1 || m.TracesRetained != 1 {
		t.Fatalf("trace counters: uploaded=%d sims=%d retained=%d", m.TracesUploaded, m.TraceSims, m.TracesRetained)
	}
	_ = srv
}

func TestSimulateTraceRefValidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	meta, err := c.UploadTrace(ctx, smallTrace().EncodeCompact())
	if err != nil {
		t.Fatal(err)
	}
	bad := []SimRequest{
		{TraceRef: meta.Digest, App: "fft"},                    // mutually exclusive
		{TraceRef: meta.Digest, Procs: 8},                      // procs comes from the trace
		{TraceRef: "zz"},                                       // not a digest
		{TraceRef: strings.Repeat("g", 64)},                    // right length, not hex
		{TraceRef: meta.Digest, ProcsPerNode: 3},               // 4 procs not divisible by 3 (deferred geometry)
		{TraceRef: meta.Digest, Topology: "ring", Clusters: 3}, // 4 nodes, 3 clusters
	}
	for i, req := range bad {
		if _, _, err := c.Simulate(ctx, req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Fatalf("bad request %d: err = %v, want 400", i, err)
		}
	}
	// Unknown (but well-formed) digest: 404.
	unknown := strings.Repeat("ab", 32)
	if _, _, err := c.Simulate(ctx, SimRequest{TraceRef: unknown}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown digest: err = %v, want 404", err)
	}
}

// Malformed payloads must be rejected with 400 and never crash the
// daemon; quota violations answer 413 and 507.
func TestTraceUploadRejections(t *testing.T) {
	const quota = 32 << 10
	_, c := newTestServer(t, Config{MaxTraceBytes: quota, MaxTraces: 1})
	ctx := context.Background()

	good := smallTrace().EncodeCompact()
	if int64(len(good)) > quota {
		t.Fatalf("test trace too large for the quota under test (%d bytes)", len(good))
	}
	malformed := [][]byte{
		nil,
		[]byte("not a trace"),
		good[:8],
		good[:len(good)-1],
		append(append([]byte{}, good...), 0), // trailing byte
	}
	// Corrupt the version digit.
	flipped := append([]byte{}, good...)
	flipped[7]++
	malformed = append(malformed, flipped)
	for i, p := range malformed {
		status, body := postRaw(t, c.Base, p)
		if status != http.StatusBadRequest {
			t.Fatalf("malformed %d: status %d (%s), want 400", i, status, body)
		}
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatal("daemon unhealthy after malformed uploads:", err)
	}

	// Oversized: 413.
	if status, _ := postRaw(t, c.Base, make([]byte, quota+1)); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413", status)
	}

	// Fill the single quota slot, then a distinct trace must shed 507.
	if _, err := c.UploadTrace(ctx, good); err != nil {
		t.Fatal(err)
	}
	other := apps.PChase(2, 64, 8).EncodeCompact()
	if status, _ := postRaw(t, c.Base, other); status != http.StatusInsufficientStorage {
		t.Fatalf("over-quota upload: want 507")
	}
	// Re-uploading the existing trace stays idempotent at the quota edge.
	if _, err := c.UploadTrace(ctx, good); err != nil {
		t.Fatal(err)
	}
}

// In fleet mode an upload is pushed to the shard owning its content
// address, so a simulate-by-ref landing on any shard can resolve the
// trace without the uploader in its path.
func TestFleetTraceOwnershipRouting(t *testing.T) {
	srvs, clients := newFleetCluster(t, 3, nil)
	ctx := context.Background()
	payload := smallTrace().EncodeCompact()

	meta, err := clients[0].UploadTrace(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	// The push to the owner is asynchronous; wait for the owner shard to
	// hold the payload (it may be shard 0 itself).
	key := traceStoreKey(meta.Digest)
	owner := srvs[0].fleet.ring.Owner([32]byte(key))
	var ownerSrv *Server
	for i, s := range srvs {
		if s.fleet.self.ID == owner.ID {
			ownerSrv = srvs[i]
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := ownerSrv.store.Get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never reached its owner shard %s", owner.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every shard — uploader, owner, or neither — can simulate by ref.
	for i, c := range clients {
		if _, _, err := c.Simulate(ctx, SimRequest{TraceRef: meta.Digest, MP: "6%"}); err != nil {
			t.Fatalf("shard %d simulate-by-ref: %v", i, err)
		}
	}
}

// A payload persisted by an earlier daemon process stays retrievable and
// runnable by digest even though the in-memory index restarted empty.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, c1 := newTestServer(t, Config{StoreDir: dir})
	ctx := context.Background()
	meta, err := c1.UploadTrace(ctx, smallTrace().EncodeCompact())
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	_, c2 := newTestServer(t, Config{StoreDir: dir})
	l, err := c2.Traces(ctx)
	if err != nil || l.Count != 0 {
		t.Fatalf("fresh index not empty: %+v, %v", l, err)
	}
	got, err := c2.TraceMeta(ctx, meta.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("rebuilt meta differs: %+v vs %+v", got, meta)
	}
	// First touch re-indexed it.
	if l, err = c2.Traces(ctx); err != nil || l.Count != 1 {
		t.Fatalf("trace not re-indexed after retrieval: %+v, %v", l, err)
	}
	if _, _, err := c2.Simulate(ctx, SimRequest{TraceRef: meta.Digest}); err != nil {
		t.Fatal("simulate-by-ref after restart:", err)
	}
}
