package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// newTestServer starts an httptest server around a fresh daemon with a
// disk store in a temp dir.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Jobs == 0 {
		cfg.Jobs = 4
	}
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c := NewClient(ts.URL)
	return srv, c
}

// fastSim is a small, quick simulation request shared by the tests.
func fastSim() SimRequest {
	return SimRequest{App: "fft", Procs: 8, MP: "6%"}
}

func TestHealthzAndWorkloads(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	names, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 14 {
		t.Fatalf("workloads = %d, want the paper's 14", len(names))
	}
}

// A repeated identical request must be served from the store without
// running a simulation; the obs/service counters prove it.
func TestSimulateCacheHit(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	res1, env1, err := c.Simulate(ctx, fastSim())
	if err != nil {
		t.Fatal(err)
	}
	if env1.Cached {
		t.Fatal("first request reported cached")
	}
	if res1.ExecTimeNs <= 0 {
		t.Fatalf("exec_time_ns = %d, want > 0", res1.ExecTimeNs)
	}

	res2, env2, err := c.Simulate(ctx, fastSim())
	if err != nil {
		t.Fatal(err)
	}
	if !env2.Cached {
		t.Fatal("second identical request was not served from the store")
	}
	if env2.Key != env1.Key {
		t.Fatalf("content address changed: %s vs %s", env1.Key, env2.Key)
	}
	if res2 != res1 {
		t.Fatalf("cached result differs:\n%+v\n%+v", res1, res2)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimsExecuted != 1 {
		t.Fatalf("sims_executed = %d, want 1 (second request must not simulate)", m.SimsExecuted)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cache_hits = %d, want 1", m.CacheHits)
	}
	if m.Obs.EventsTotal == 0 {
		t.Fatal("obs events not aggregated into /v1/metrics")
	}
}

// Equivalent spellings (defaults omitted vs spelled out) share one
// content address.
func TestCanonicalizationConvergesSpellings(t *testing.T) {
	implicit := SimRequest{App: "fft", Procs: 8, MP: "6%"}
	tr := true
	explicit := SimRequest{App: "fft", Procs: 8, ProcsPerNode: 1, MP: "6%",
		AMWays: 4, DRAMBandwidth: 1, NCBandwidth: 1, BusBandwidth: 1, Inclusive: &tr}
	if _, err := implicit.normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := explicit.normalize(); err != nil {
		t.Fatal(err)
	}
	if implicit.key() != explicit.key() {
		t.Fatal("defaulted and explicit requests hash to different keys")
	}
}

// ?nocache=1 forces recomputation and does not overwrite the store.
func TestSimulateNoCache(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, _, err := c.Simulate(ctx, fastSim()); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodPost, c.Base+"/v1/simulate?nocache=1",
		strings.NewReader(`{"app":"fft","procs":8,"mp":"6%"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env SimEnvelope
	if err := decode(resp, &env); err != nil {
		t.Fatal(err)
	}
	if env.Cached {
		t.Fatal("nocache request reported cached")
	}
	if got := srv.counters.simsExecuted.Load(); got != 2 {
		t.Fatalf("sims_executed = %d, want 2 (nocache must re-simulate)", got)
	}
	if got := srv.counters.cacheBypassed.Load(); got != 1 {
		t.Fatalf("cache_bypassed = %d, want 1", got)
	}
}

// 16 concurrent identical requests collapse onto one simulation.
func TestConcurrentIdenticalRequestsCollapse(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ctx := context.Background()

	const callers = 16
	var wg sync.WaitGroup
	wg.Add(callers)
	results := make([]SimResult, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			res, _, err := c.Simulate(ctx, fastSim())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if got := srv.counters.simsExecuted.Load(); got != 1 {
		t.Fatalf("sims_executed = %d, want exactly 1 for %d identical requests", got, callers)
	}
	if got := srv.counters.flightsExecuted.Load(); got != 1 {
		t.Fatalf("flights_executed = %d, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result", i)
		}
	}
}

// The study endpoint's bytes must be identical to the CLI rendering of
// the same artifact.
func TestStudyByteIdenticalToCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure in -short mode")
	}
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	got, cached, err := c.Study(ctx, "figure2", StudyRequest{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first study request reported cached")
	}

	r := experiments.NewRunner()
	r.Procs = 8
	var want bytes.Buffer
	if err := experiments.RenderArtifact(&want, r, "fig2", false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("API study output differs from CLI rendering:\n--- api ---\n%s\n--- cli ---\n%s", got, want.Bytes())
	}

	// And the repeat comes from the store, byte-identical.
	again, cached, err := c.Study(ctx, "figure2", StudyRequest{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second study request was not served from the store")
	}
	if !bytes.Equal(again, got) {
		t.Fatal("cached study bytes differ")
	}
}

// Async jobs: submit, poll to done, fetch the result envelope.
func TestJobLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	j, err := c.SimulateAsync(ctx, fastSim())
	if err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || (j.Status != JobQueued && j.Status != JobRunning) {
		t.Fatalf("initial job view = %+v", j)
	}
	done, err := c.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != JobDone {
		t.Fatalf("job finished as %s (%s), want done", done.Status, done.Error)
	}
	if done.ResultURL == "" {
		t.Fatal("done job has no result_url")
	}

	resp, err := http.Get(c.Base + done.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	var env SimEnvelope
	if err := decode(resp, &env); err != nil {
		t.Fatal(err)
	}
	if env.Key != done.Key {
		t.Fatalf("result key %s != job key %s", env.Key, done.Key)
	}
	var res SimResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.ExecTimeNs <= 0 {
		t.Fatalf("async result exec_time_ns = %d, want > 0", res.ExecTimeNs)
	}
}

// DELETE on a running job cancels the simulation mid-run: the job
// reaches cancelled, and the flight's context error propagates instead
// of a result.
func TestJobCancellationMidRun(t *testing.T) {
	_, c := newTestServer(t, Config{Jobs: 2})
	ctx := context.Background()

	// A full default sweep at 16 processors takes far longer than the
	// cancellation round-trip below.
	resp, err := http.Post(c.Base+"/v1/studies/sweep?async=1", "application/json",
		strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var j JobView
	if err := decode(resp, &j); err != nil {
		t.Fatal(err)
	}

	// Give the job a moment to leave the queue so we exercise the
	// running→cancelled path, not just queued→cancelled.
	time.Sleep(50 * time.Millisecond)

	v, err := c.Cancel(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != JobCancelled {
		t.Fatalf("after DELETE: status = %s, want cancelled", v.Status)
	}

	// The result endpoint must refuse.
	rresp, err := http.Get(c.Base + "/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: HTTP %d, want %d", rresp.StatusCode, http.StatusConflict)
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{})
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(c.Base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/simulate", `{}`, http.StatusBadRequest},                        // missing app
		{"/v1/simulate", `{"app":"bogus"}`, http.StatusBadRequest},           // unknown workload
		{"/v1/simulate", `{"app":"fft","mp":"99%"}`, http.StatusBadRequest},  // unknown pressure
		{"/v1/simulate", `{"app":"fft","unknown":1}`, http.StatusBadRequest}, // unknown field
		{"/v1/simulate", `{"app":"fft","procs":6,"procs_per_node":4}`, http.StatusBadRequest},
		{"/v1/studies/bogus", `{}`, http.StatusNotFound},                   // unknown study
		{"/v1/studies/figure2", `{"apps":["fft"]}`, http.StatusBadRequest}, // sweep-only param
		{"/v1/studies/figure2", `{"chart":true}`, http.StatusBadRequest},   // chart on a table
	}
	for _, tc := range cases {
		if resp := post(tc.path, tc.body); resp.StatusCode != tc.want {
			t.Errorf("POST %s %s: HTTP %d, want %d", tc.path, tc.body, resp.StatusCode, tc.want)
		}
	}
	if resp, err := http.Get(c.Base + "/v1/jobs/j999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown job: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

// The semaphore clamps, queues FIFO and honours context cancellation.
func TestWeightedSemaphore(t *testing.T) {
	w := newWeighted(2)
	ctx := context.Background()
	if err := w.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// Pool is full: a whole-pool acquire must block until both release.
	got := make(chan error, 1)
	go func() { got <- w.Acquire(ctx, 99) }() // clamped to 2
	select {
	case err := <-got:
		t.Fatalf("whole-pool acquire succeeded while full (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	w.Release(1)
	select {
	case err := <-got:
		t.Fatalf("whole-pool acquire succeeded with one slot free (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	w.Release(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	w.Release(99)

	// Cancellation while queued.
	if err := w.Acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() { errc <- w.Acquire(cctx, 1) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued acquire after cancel: %v, want context.Canceled", err)
	}
	w.Release(2)
}
