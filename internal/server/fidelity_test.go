package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
)

// Tests for the sampled-fidelity request surface: content-address
// separation from exact runs, canonicalization of the geometry
// defaults, request validation, the fidelity report in the response,
// and the phase-split trace span.

func TestSimulateSampledFidelity(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	exact := fastSim()
	resE, envE, err := c.Simulate(ctx, exact)
	if err != nil {
		t.Fatal(err)
	}
	sampled := fastSim()
	sampled.Fidelity = "sampled"
	resS, envS, err := c.Simulate(ctx, sampled)
	if err != nil {
		t.Fatal(err)
	}

	// A sampled execution time is an estimate; it must never be served
	// for an exact request or vice versa.
	if envS.Key == envE.Key {
		t.Fatalf("sampled and exact requests share content address %s", envS.Key)
	}
	if resE.Fidelity != nil {
		t.Fatalf("exact run carries a fidelity report: %+v", resE.Fidelity)
	}
	rep := resS.Fidelity
	if rep == nil {
		t.Fatal("sampled run carries no fidelity report")
	}
	if rep.Mode != "sampled" {
		t.Errorf("report mode = %q", rep.Mode)
	}
	if rep.WarmupNs != 16000 || rep.WindowNs != 16000 || rep.PeriodNs != 256000 {
		t.Errorf("report geometry = %d/%d/%d, want the defaults 16000/16000/256000",
			rep.WarmupNs, rep.WindowNs, rep.PeriodNs)
	}
	if rep.Windows <= 0 || rep.Coverage <= 0 || rep.Coverage > 1 {
		t.Errorf("windows=%d coverage=%v, want >0 windows and coverage in (0,1]", rep.Windows, rep.Coverage)
	}
	if rep.FastRefs <= 0 || rep.TotalRefs < rep.FastRefs {
		t.Errorf("fast_refs=%d total_refs=%d", rep.FastRefs, rep.TotalRefs)
	}
	if rep.Lambda < 1 {
		t.Errorf("lambda = %v, want >= 1", rep.Lambda)
	}
	// Counts are exact in sampled mode; only timing is estimated.
	if resS.Reads != resE.Reads {
		t.Errorf("sampled reads %d != exact reads %d", resS.Reads, resE.Reads)
	}
	if resS.ExecTimeNs <= 0 {
		t.Errorf("sampled exec_time_ns = %d", resS.ExecTimeNs)
	}
}

// The canonical form spells the resolved sampling geometry out, so "0 =
// default" and the explicit default values share one content address —
// and the fidelity default ("" = exact) converges with its explicit
// spelling.
func TestFidelityCanonicalization(t *testing.T) {
	implicit := SimRequest{App: "fft", Procs: 8, MP: "6%", Fidelity: "sampled"}
	explicit := SimRequest{App: "fft", Procs: 8, MP: "6%", Fidelity: "sampled",
		FFWarmupNs: 16000, FFWindowNs: 16000, FFPeriodNs: 256000}
	if _, err := implicit.normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := explicit.normalize(); err != nil {
		t.Fatal(err)
	}
	if implicit.key() != explicit.key() {
		t.Fatal("defaulted and explicit sampled geometries hash to different keys")
	}

	def := SimRequest{App: "fft", Procs: 8, MP: "6%"}
	exact := SimRequest{App: "fft", Procs: 8, MP: "6%", Fidelity: "exact"}
	if _, err := def.normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := exact.normalize(); err != nil {
		t.Fatal(err)
	}
	if def.key() != exact.key() {
		t.Fatal(`"" and "exact" fidelities hash to different keys`)
	}
}

func TestFidelityBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cases := []string{
		`{"app":"fft","fidelity":"fast"}`,                          // unknown mode
		`{"app":"fft","fidelity":"Sampled"}`,                       // spelling is case-sensitive
		`{"app":"fft","ff_window_ns":5000}`,                        // geometry without sampled
		`{"app":"fft","fidelity":"exact","ff_period_ns":64000}`,    // geometry with exact
		`{"app":"fft","fidelity":"sampled","ff_warmup_ns":-2}`,     // below the -1 sentinel
		`{"app":"fft","fidelity":"sampled","ff_window_ns":-1}`,     // negative window
		`{"app":"fft","fidelity":"sampled","ff_period_ns":-1}`,     // negative period
		`{"app":"fft","fidelity":"sampled","ff_period_ns":10000}`,  // period < warmup+window
		`{"app":"fft","fidelity":"sampled","ff_warmup_ns":300000}`, // warmup overflows the period
	}
	for _, body := range cases {
		resp, err := http.Post(c.Base+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /v1/simulate %s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// A sampled run's trace carries the phase-split annotation span.
func TestFidelityTraceSpan(t *testing.T) {
	_, c := newTestServer(t, Config{})
	const traceID = "feedc0de0000000000000000f1de1127"

	body := strings.NewReader(`{"app":"fft","procs":8,"mp":"6%","fidelity":"sampled"}`)
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/simulate", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: HTTP %d", resp.StatusCode)
	}
	td, err := c.Trace(context.Background(), traceID)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range td.Spans {
		if sp.Name != "fidelity.phases" {
			continue
		}
		found = true
		if sp.Attrs["windows"] == "" || sp.Attrs["coverage"] == "" || sp.Attrs["lambda"] == "" {
			t.Errorf("fidelity.phases attrs = %v, want windows/coverage/lambda", sp.Attrs)
		}
	}
	if !found {
		t.Errorf("trace has no fidelity.phases span (spans: %d)", len(td.Spans))
	}
}
