package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs/tracing"
)

// A caller-supplied X-Trace-Id must be echoed in the response and name a
// retrievable trace whose spans cover the request's stages.
func TestTraceRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{})
	const traceID = "feedc0de00000000000000000000beef"

	body := strings.NewReader(`{"app":"fft","procs":8,"mp":"6%"}`)
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/simulate", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("X-Trace-Id = %q, want %q (propagated)", got, traceID)
	}

	td, err := c.Trace(context.Background(), traceID)
	if err != nil {
		t.Fatal(err)
	}
	if td.TraceID != traceID {
		t.Fatalf("trace ID = %q", td.TraceID)
	}
	names := make(map[string]int)
	for _, sp := range td.Spans {
		names[sp.Name]++
		if sp.TraceID != traceID {
			t.Errorf("span %s carries trace %q", sp.Name, sp.TraceID)
		}
	}
	for _, want := range []string{"POST /v1/simulate", "canonicalize", "store.lookup", "queue.wait", "simulate"} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
	// Child spans link to the root.
	var rootID string
	for _, sp := range td.Spans {
		if sp.Name == "POST /v1/simulate" {
			rootID = sp.SpanID
		}
	}
	for _, sp := range td.Spans {
		if sp.Name == "canonicalize" && sp.ParentID != rootID {
			t.Errorf("canonicalize parent = %q, want root %q", sp.ParentID, rootID)
		}
	}
	// The simulate span carries its workload attributes.
	for _, sp := range td.Spans {
		if sp.Name == "simulate" && sp.Attrs["app"] != "fft" {
			t.Errorf("simulate attrs = %v", sp.Attrs)
		}
	}
}

// An invalid (or absent) X-Trace-Id is replaced by a generated one, never
// echoed back.
func TestTraceIDGenerated(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for _, bad := range []string{"", "NOT-HEX!", strings.Repeat("a", 65)} {
		req, _ := http.NewRequest(http.MethodGet, c.Base+"/v1/healthz", nil)
		if bad != "" {
			req.Header.Set("X-Trace-Id", bad)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get("X-Trace-Id")
		if got == bad || !tracing.ValidTraceID(got) {
			t.Errorf("header %q yielded X-Trace-Id %q", bad, got)
		}
	}
}

func TestTraceNotFound(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if _, err := c.Trace(context.Background(), "0123456789abcdef"); err == nil {
		t.Fatal("unknown trace did not error")
	}
}

// Async jobs thread the request's trace into the job context: the stages
// of the computation land in the same trace as the 202 response.
func TestTraceAsync(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	v, err := c.SimulateAsync(ctx, fastSim())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID, 0); err != nil {
		t.Fatal(err)
	}
	// The 202's trace ID is not surfaced in JobView; list it via the
	// response header instead: redo with an explicit ID.
	const traceID = "ac1d0000000000000000000000000001"
	req, _ := http.NewRequest(http.MethodPost, c.Base+"/v1/simulate?async=1&nocache=1",
		strings.NewReader(`{"app":"fft","procs":8,"mp":"6%"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := c.Wait(ctx, jv.ID, 0); err != nil {
		t.Fatal(err)
	}
	td, err := c.Trace(ctx, traceID)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]int)
	for _, sp := range td.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"POST /v1/simulate", "queue.wait", "simulate"} {
		if names[want] == 0 {
			t.Errorf("async trace missing span %q (have %v)", want, names)
		}
	}
}

// The JSONL export serves one parseable span per line.
func TestTraceJSONL(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Find the healthz trace: fetch its ID from a fresh request.
	req, _ := http.NewRequest(http.MethodGet, c.Base+"/v1/healthz", nil)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")

	resp, err = c.httpClient().Get(c.Base + "/v1/traces/" + id + "?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no JSONL lines")
	}
	for i, line := range lines {
		var sp tracing.SpanData
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if sp.TraceID != id {
			t.Errorf("line %d trace = %q, want %q", i, sp.TraceID, id)
		}
	}
}

// The enriched healthz payload reports schema version, build identity
// and uptime.
func TestHealthzEnriched(t *testing.T) {
	_, c := newTestServer(t, Config{})
	resp, err := c.httpClient().Get(c.Base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.SchemaVersion != schemaVersion || h.SimSlots < 1 {
		t.Errorf("healthz = %+v", h)
	}
	if h.GoVersion == "" || !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("go_version = %q", h.GoVersion)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %g", h.UptimeSeconds)
	}
}
