package server

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
)

func TestHistogram(t *testing.T) {
	h := newHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 1000} {
		h.Observe(v)
	}
	cum, sum, total := h.snapshot()
	// le="1" is upper-inclusive: 0.5 and 1 land there.
	want := []int64{2, 4, 5, 6} // cumulative: le=1, le=10, le=100, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if total != 6 || sum != 0.5+1+1.5+10+99+1000 {
		t.Errorf("total=%d sum=%g", total, sum)
	}
}

// The exposition endpoint serves well-formed Prometheus text with the
// service's counters reflecting real activity.
func TestPromMetrics(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, _, err := c.Simulate(ctx, fastSim()); err != nil {
		t.Fatal(err)
	}
	resp, err := c.httpClient().Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)

	find := func(name string) int64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseInt(rest, 10, 64)
				if err != nil {
					t.Fatalf("%s: bad value %q", name, rest)
				}
				return v
			}
		}
		t.Fatalf("metric %s not found", name)
		return 0
	}
	if v := find("comasrv_sims_executed_total"); v != 1 {
		t.Errorf("sims_executed = %d, want 1", v)
	}
	if v := find("comasrv_requests_total"); v < 1 {
		t.Errorf("requests = %d, want >= 1", v)
	}
	if v := find("comasrv_request_duration_seconds_count"); v < 1 {
		t.Errorf("request_duration count = %d, want >= 1", v)
	}
	// Labeled samples from the aggregated obs counters are present.
	for _, want := range []string{
		`comasrv_obs_events_total{kind="bus-grant"}`,
		`comasrv_obs_bus_occupancy_ns_total{class="read"}`,
		`comasrv_request_duration_seconds_bucket{le="+Inf"}`,
		`comasrv_queue_wait_seconds_bucket{le="+Inf"}`,
		`comasrv_jobs{status="queued"}`,
		"comasrv_build_info{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every sample line's metric has HELP and TYPE headers, and histogram
	// buckets are monotonically non-decreasing (shared linter).
	if err := LintExposition(body); err != nil {
		t.Errorf("exposition lint: %v", err)
	}
}

// A smoke check that LintExposition actually rejects malformed text.
func TestLintExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no headers": "foo_total 1\n",
		"non-monotonic buckets": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"bad value": "# HELP g x\n# TYPE g gauge\ng notanumber\n",
	}
	for name, body := range cases {
		if err := LintExposition(body); err == nil {
			t.Errorf("%s: lint accepted malformed exposition", name)
		}
	}
	if err := LintExposition(fmt.Sprintf("# HELP g x\n# TYPE g gauge\ng %g\n", 1.5)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}
