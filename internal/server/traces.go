package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/server/store"
	"repro/internal/trace"
)

// Upload-quota defaults (Config.MaxTraceBytes / Config.MaxTraces).
// A 16-processor kernel trace is a few megabytes in the compact wire
// format (TRACES.md), so the defaults hold a workbench of uploads
// without letting one client fill the store.
const (
	DefaultMaxTraceBytes = 8 << 20
	DefaultMaxTraces     = 256
)

func (s *Server) maxTraceBytes() int64 {
	if s.cfg.MaxTraceBytes > 0 {
		return s.cfg.MaxTraceBytes
	}
	return DefaultMaxTraceBytes
}

func (s *Server) maxTraces() int {
	if s.cfg.MaxTraces > 0 {
		return s.cfg.MaxTraces
	}
	return DefaultMaxTraces
}

// traceKeyPrefix namespaces uploaded trace payloads inside the result
// store, so a trace and a simulation result can never collide even
// though they share the two-level store (and, in fleet mode, the
// entry-exchange routes).
const traceKeyPrefix = "comasrv-trace-v1\n"

// traceStoreKey derives the store key of an uploaded trace from its
// content digest (the SHA-256 of the wire payload, in hex).
func traceStoreKey(digest string) store.Key {
	return store.KeyOf([]byte(traceKeyPrefix + digest))
}

// ParseTraceDigest validates the digest form uploaded traces are named
// by — 64 hex characters, the SHA-256 of the COMATRC2 payload — and
// returns it lowercased.
func ParseTraceDigest(s string) (string, error) {
	if len(s) != 64 {
		return "", fmt.Errorf("bad trace digest %q: want 64 hex characters", s)
	}
	s = strings.ToLower(s)
	if _, err := hex.DecodeString(s); err != nil {
		return "", fmt.Errorf("bad trace digest %q: want 64 hex characters", s)
	}
	return s, nil
}

// TraceMeta is the stored metadata of one uploaded trace — the POST
// /v1/traces response and the GET /v1/traces list rows.
type TraceMeta struct {
	// Digest content-addresses the upload: the SHA-256 of the wire
	// payload. It is the trace_ref value POST /v1/simulate accepts.
	Digest string `json:"digest"`
	Name   string `json:"name"`
	Procs  int    `json:"procs"`
	// WorkingSetBytes is the trace's declared footprint (sizes the
	// simulated memory system).
	WorkingSetBytes uint64 `json:"working_set_bytes"`
	// SizeBytes is the wire payload size.
	SizeBytes int64 `json:"size_bytes"`
	Reads     int64 `json:"reads"`
	Writes    int64 `json:"writes"`
	Barriers  int64 `json:"barriers"`
}

// TraceList is the GET /v1/traces payload.
type TraceList struct {
	Traces        []TraceMeta `json:"traces"`
	Count         int         `json:"count"`
	MaxTraces     int         `json:"max_traces"`
	MaxTraceBytes int64       `json:"max_trace_bytes"`
}

func traceMetaOf(digest string, tr *trace.Trace, sizeBytes int64) TraceMeta {
	sum := tr.Summarize()
	return TraceMeta{
		Digest:          digest,
		Name:            tr.Name,
		Procs:           tr.Procs,
		WorkingSetBytes: tr.WorkingSet,
		SizeBytes:       sizeBytes,
		Reads:           sum.Reads,
		Writes:          sum.Writes,
		Barriers:        sum.Barriers,
	}
}

// handleTraceUpload is POST /v1/traces: validate an untrusted COMATRC2
// payload with the hardened decoder, content-address it, and persist it
// in the result store. Re-uploading identical bytes is idempotent (200
// with the same digest); a new trace answers 201.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	maxB := s.maxTraceBytes()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxB+1))
	if err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if int64(len(body)) > maxB {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("trace exceeds the %d-byte upload limit", maxB))
		return
	}
	tr, err := trace.DecodeCompact(body)
	if err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad trace: %w", err))
		return
	}
	sum := sha256.Sum256(body)
	digest := hex.EncodeToString(sum[:])
	meta := traceMetaOf(digest, tr, int64(len(body)))

	s.tracesMu.Lock()
	_, exists := s.traceIdx[digest]
	if !exists && len(s.traceIdx) >= s.maxTraces() {
		s.tracesMu.Unlock()
		writeErr(w, http.StatusInsufficientStorage,
			fmt.Errorf("trace store is full (%d traces); DELETE /v1/traces/{digest} frees a slot", s.maxTraces()))
		return
	}
	s.traceIdx[digest] = meta
	s.tracesMu.Unlock()

	if !exists {
		if err := s.store.Put(traceStoreKey(digest), body); err != nil {
			s.tracesMu.Lock()
			delete(s.traceIdx, digest)
			s.tracesMu.Unlock()
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		s.counters.tracesUploaded.Add(1)
		if s.fleet != nil {
			// Push the payload to the shard that owns its content address
			// (best effort), so a simulate-by-ref landing anywhere in the
			// fleet can peer-fill the trace from its owner.
			go s.pushTraceToOwner(digest, body)
		}
	}
	status := http.StatusCreated
	if exists {
		status = http.StatusOK
	}
	writeJSON(w, status, meta)
}

// pushTraceToOwner forwards an uploaded trace to the fleet shard owning
// its content address. Failures are counted and otherwise ignored — the
// uploading shard keeps its copy, so at worst a remote simulate-by-ref
// recomputes nothing and simply misses until re-upload.
func (s *Server) pushTraceToOwner(digest string, body []byte) {
	f := s.fleet
	key := traceStoreKey(digest)
	owner := f.ring.Owner([sha256.Size]byte(key))
	if owner.ID == f.self.ID {
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, f.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, owner.URL+entryPath(key), bytes.NewReader(body))
	if err != nil {
		s.counters.replicationErrors.Add(1)
		return
	}
	// The entry checksum of a trace payload is its digest by definition.
	req.Header.Set(checksumHeader, digest)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := f.client.Do(req)
	if err != nil {
		s.counters.replicationErrors.Add(1)
		f.setReach(owner.ID, false)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	f.setReach(owner.ID, true)
	if resp.StatusCode/100 != 2 {
		s.counters.replicationErrors.Add(1)
		return
	}
	s.counters.replicationPushed.Add(1)
}

// loadTrace resolves a trace_ref for simulation: local store first, then
// (fleet mode) the owner shard. The decode cannot fail for bytes this
// server stored, but a corrupt persisted payload — disk rot survives the
// store's envelope checksum only if it predates it — is dropped rather
// than run.
func (s *Server) loadTrace(ctx context.Context, digest string) (*trace.Trace, error) {
	key := traceStoreKey(digest)
	body, ok := s.store.Get(key)
	if !ok && s.fleet != nil {
		if b, hit := s.peerFill(ctx, key); hit {
			body, ok = b, true
			_ = s.store.Put(key, b)
		}
	}
	if !ok {
		return nil, &apiError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown trace %s (upload it with POST /v1/traces)", digest)}
	}
	tr, err := trace.DecodeCompact(body)
	if err != nil {
		_ = s.store.Delete(key)
		s.tracesMu.Lock()
		delete(s.traceIdx, digest)
		s.tracesMu.Unlock()
		return nil, &apiError{status: http.StatusNotFound,
			msg: fmt.Sprintf("stored trace %s was corrupt and has been dropped; upload it again", digest)}
	}
	return tr, nil
}

// handleTraceList is GET /v1/traces: the uploaded-trace index in digest
// order, plus the active quotas. The index covers traces uploaded since
// daemon start; payloads persisted by an earlier process remain
// retrievable and runnable by digest, and re-enter the list on first
// touch.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	s.tracesMu.Lock()
	metas := make([]TraceMeta, 0, len(s.traceIdx))
	for _, m := range s.traceIdx {
		metas = append(metas, m)
	}
	s.tracesMu.Unlock()
	sort.Slice(metas, func(i, j int) bool { return metas[i].Digest < metas[j].Digest })
	writeJSON(w, http.StatusOK, TraceList{
		Traces:        metas,
		Count:         len(metas),
		MaxTraces:     s.maxTraces(),
		MaxTraceBytes: s.maxTraceBytes(),
	})
}

// handleUploadedTraceGet serves one uploaded trace: its metadata as
// JSON, or the raw COMATRC2 payload with ?format=bin. A digest absent
// from the index but present in the persistent store (uploaded before a
// restart) is re-indexed on the way through.
func (s *Server) handleUploadedTraceGet(w http.ResponseWriter, r *http.Request, digest string) {
	key := traceStoreKey(digest)
	if r.URL.Query().Get("format") == "bin" {
		body, ok := s.store.Get(key)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown trace %s", digest))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	s.tracesMu.Lock()
	meta, ok := s.traceIdx[digest]
	s.tracesMu.Unlock()
	if !ok {
		body, found := s.store.Get(key)
		if !found {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown trace %s", digest))
			return
		}
		tr, err := trace.DecodeCompact(body)
		if err != nil {
			_ = s.store.Delete(key)
			writeErr(w, http.StatusNotFound,
				fmt.Errorf("stored trace %s was corrupt and has been dropped; upload it again", digest))
			return
		}
		meta = traceMetaOf(digest, tr, int64(len(body)))
		s.tracesMu.Lock()
		s.traceIdx[digest] = meta
		s.tracesMu.Unlock()
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleTraceDelete is DELETE /v1/traces/{digest}: drop an uploaded
// trace from the index and both store layers. In fleet mode each shard
// deletes only its own copy. Simulation results computed from the trace
// are cached under their own request keys and are not invalidated — a
// content-addressed result stays correct forever.
func (s *Server) handleTraceDelete(w http.ResponseWriter, r *http.Request) {
	digest, err := ParseTraceDigest(r.PathValue("id"))
	if err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	key := traceStoreKey(digest)
	s.tracesMu.Lock()
	_, known := s.traceIdx[digest]
	delete(s.traceIdx, digest)
	s.tracesMu.Unlock()
	if !known {
		if _, found := s.store.Get(key); !found {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown trace %s", digest))
			return
		}
	}
	if err := s.store.Delete(key); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.counters.tracesDeleted.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": digest})
}

// retainedTraces is the current index size (a /v1/metrics gauge).
func (s *Server) retainedTraces() int {
	s.tracesMu.Lock()
	defer s.tracesMu.Unlock()
	return len(s.traceIdx)
}
