package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs/tsdb"
)

// DefaultScrapeInterval is how often the daemon scrapes its own
// Prometheus registry into the history store when Config.ScrapeInterval
// is zero.
const DefaultScrapeInterval = 10 * time.Second

// historyTiers sizes the history store's ring tiers to the configured
// scrape cadence: the fine tier's step is the scrape interval rounded
// up to a whole second (the store's resolution floor), the coarse tier
// 12x that, so a faster-than-default cadence yields proportionally
// finer history instead of collapsing into 10-second buckets. The
// default cadence reproduces tsdb.DefaultTiers exactly.
func historyTiers(scrapeInterval time.Duration) []tsdb.TierSpec {
	interval := scrapeInterval
	if interval <= 0 {
		interval = DefaultScrapeInterval
	}
	fine := interval.Truncate(time.Second)
	if fine < interval {
		fine += time.Second
	}
	return []tsdb.TierSpec{
		{Step: fine, Capacity: 360},
		{Step: 12 * fine, Capacity: 720},
	}
}

// scrapeSelf takes one self-scrape at time t: the same exposition GET
// /metrics serves is parsed and appended to the history store, and the
// sample set is published to the live-stream subscribers as a delta
// against the previous scrape. Tests drive it directly with a synthetic
// clock; the background loop drives it with the wall clock.
func (s *Server) scrapeSelf(t time.Time) {
	sc, err := tsdb.ParseExposition(string(s.renderProm()))
	if err != nil {
		// The exposition is produced in-process and lint-tested; a parse
		// failure is a bug, not an operational condition.
		s.logger.Error("self-scrape parse failed", "err", err)
		return
	}
	s.history.AppendScrape(sc, t)
	s.stream.publish(t, sc.Samples)
}

// scrapeLoop is the background self-scrape ticker; it runs until the
// server closes.
func (s *Server) scrapeLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.scrapeSelf(s.now())
		}
	}
}

// HistorySeries is one metric stream in the GET /v1/metrics/history
// payload. Points are [unix_seconds, value] pairs in time order; a
// counter reads as a staircase (rate = Δvalue/Δt between points).
type HistorySeries struct {
	Name   string       `json:"name"`
	Labels string       `json:"labels,omitempty"`
	Points [][2]float64 `json:"points"`
}

// History is the GET /v1/metrics/history payload.
type History struct {
	NowUnix int64 `json:"now_unix"`
	// WindowS and StepS are the effective window and resolution after
	// tier selection (a window longer than a tier's span falls over to
	// the next coarser tier).
	WindowS int64           `json:"window_s"`
	StepS   int64           `json:"step_s"`
	Series  []HistorySeries `json:"series"`
}

// handleMetricsHistory serves GET /v1/metrics/history: the self-scraped
// time series, selected by ?family= (comma-separated family names,
// empty = all), over ?window= at ?step= resolution.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	window, err := optDuration(q.Get("window"), 0)
	if err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad window: %w", err))
		return
	}
	step, err := optDuration(q.Get("step"), 0)
	if err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad step: %w", err))
		return
	}
	var families []string
	if f := q.Get("family"); f != "" {
		families = strings.Split(f, ",")
	}
	now := s.now()
	effWindow, effStep := s.history.Resolve(window, step)
	out := History{
		NowUnix: now.Unix(),
		WindowS: int64(effWindow / time.Second),
		StepS:   int64(effStep / time.Second),
		Series:  []HistorySeries{},
	}
	for _, sr := range s.history.Query(now, window, step, families) {
		hs := HistorySeries{Name: sr.Name, Labels: sr.Labels, Points: make([][2]float64, 0, len(sr.Points))}
		for _, p := range sr.Points {
			hs.Points = append(hs.Points, [2]float64{float64(p.T), p.V})
		}
		out.Series = append(out.Series, hs)
	}
	writeJSON(w, http.StatusOK, out)
}

// optDuration parses an optional duration query parameter, accepting
// both Go durations ("90s", "1h") and bare second counts ("90").
func optDuration(v string, def time.Duration) (time.Duration, error) {
	if v == "" {
		return def, nil
	}
	if d, err := time.ParseDuration(v); err == nil {
		if d < 0 {
			return 0, fmt.Errorf("%q is negative", v)
		}
		return d, nil
	}
	var secs int64
	if _, err := fmt.Sscanf(v, "%d", &secs); err != nil || secs < 0 || fmt.Sprintf("%d", secs) != v {
		return 0, fmt.Errorf("%q is not a duration", v)
	}
	return time.Duration(secs) * time.Second, nil
}
