package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// A healthy cluster merges every shard's samples and sums them into the
// fleet aggregate; identity families are excluded from the sum.
func TestFleetMetricsMergedView(t *testing.T) {
	srvs, clients := newFleetCluster(t, 2, func(i int, cfg *Config) {
		cfg.ScrapeInterval = -1
	})
	ctx := context.Background()
	for _, c := range clients {
		if err := c.Healthz(ctx); err != nil {
			t.Fatal(err)
		}
	}
	view, err := clients[0].FleetMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view.ShardID != "s0" || view.Members != 2 || view.UpShards != 2 {
		t.Fatalf("view identity = %q members=%d up=%d, want s0/2/2", view.ShardID, view.Members, view.UpShards)
	}
	var total float64
	for i, sh := range view.Shards {
		if !sh.Up || sh.Error != "" {
			t.Fatalf("shard %s: up=%v err=%q, want clean scrape", sh.ID, sh.Up, sh.Error)
		}
		v, ok := sh.Samples["comasrv_requests_total"]
		if !ok || v < 1 {
			t.Fatalf("shard %s requests_total = %g (present=%v), want >= 1", sh.ID, v, ok)
		}
		total += v
		_ = i
	}
	if got := view.Fleet["comasrv_requests_total"]; got != total {
		t.Fatalf("fleet aggregate requests_total = %g, want sum of shards %g", got, total)
	}
	for k := range view.Fleet {
		if strings.Contains(k, "comasrv_uptime_seconds") || strings.Contains(k, "_info") {
			t.Fatalf("fleet aggregate carries identity family %q; summing it is meaningless", k)
		}
	}
	_ = srvs
}

// A dead peer degrades the view — marked down with its error recorded —
// and never fails the request.
func TestFleetMetricsDownShardPartialResults(t *testing.T) {
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadTS.Close() // connection refused from here on
	selfSwap := &swapHandler{}
	selfTS := httptest.NewServer(selfSwap)
	t.Cleanup(selfTS.Close)
	srv, err := New(Config{
		Jobs:           4,
		StoreDir:       t.TempDir(),
		ScrapeInterval: -1,
		Fleet: &FleetConfig{
			ShardID: "self",
			Members: []fleet.Member{
				{ID: "self", URL: selfTS.URL},
				{ID: "dead", URL: deadTS.URL},
			},
			PeerTimeout:   200 * time.Millisecond,
			ProbeInterval: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	selfSwap.Set(srv)

	view, err := NewClient(selfTS.URL).FleetMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Members != 2 || view.UpShards != 1 {
		t.Fatalf("members=%d up=%d, want 2/1", view.Members, view.UpShards)
	}
	byID := map[string]ShardMetrics{}
	for _, sh := range view.Shards {
		byID[sh.ID] = sh
	}
	if !byID["self"].Up {
		t.Fatalf("self scrape failed: %+v", byID["self"])
	}
	if d := byID["dead"]; d.Up || d.Error == "" || d.Samples != nil {
		t.Fatalf("dead shard = %+v, want up=false with an error and no samples", d)
	}
}

// The merged Prometheus rendering must itself be a well-formed
// exposition: one HELP/TYPE per family, a shard label on every sample,
// per-shard histogram series with monotone buckets — LintExposition is
// the same gate CI runs against a single shard's /metrics.
func TestFleetMetricsPromRenderingLints(t *testing.T) {
	srvs, clients := newFleetCluster(t, 3, func(i int, cfg *Config) {
		cfg.ScrapeInterval = -1
	})
	ctx := context.Background()
	for _, c := range clients {
		if _, _, err := c.Simulate(ctx, fastSim()); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := clients[1].httpClient().Get(clients[1].Base + "/v1/fleet/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if err := LintExposition(text); err != nil {
		t.Fatalf("merged fleet exposition fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		`comasrv_fleet_shard_up{shard="s0"} 1`,
		`comasrv_fleet_shard_up{shard="s1"} 1`,
		`comasrv_fleet_shard_up{shard="s2"} 1`,
		`comasrv_requests_total{shard="s0"}`,
		`comasrv_request_duration_seconds_bucket{shard="s2",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged exposition lacks %q", want)
		}
	}
	if n := strings.Count(text, "# TYPE comasrv_requests_total "); n != 1 {
		t.Errorf("TYPE header for requests_total appears %d times, want once", n)
	}
	_ = srvs
}

// Without fleet mode the endpoint 404s like every other fleet surface.
func TestFleetMetricsSingleShard404(t *testing.T) {
	_, c := newTestServer(t, Config{ScrapeInterval: -1})
	resp, err := c.httpClient().Get(c.Base + "/v1/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("single-shard /v1/fleet/metrics: HTTP %d, want 404", resp.StatusCode)
	}
}
