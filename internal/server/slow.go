package server

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// DefaultSlowKeep is how many slow-request exemplars the ring retains
// when Config.SlowKeep is zero.
const DefaultSlowKeep = 32

// SlowRequest is one retained exemplar: enough to link a latency
// anomaly on a dashboard back to a retrievable trace (GET
// /v1/traces/{trace_id}) and a log line.
type SlowRequest struct {
	TraceID    string  `json:"trace_id"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	Source     string  `json:"source"` // client address the request came from
	DurationMs float64 `json:"duration_ms"`
	StartUnix  int64   `json:"start_unix"`
}

// slowRing keeps the N slowest requests seen so far, sorted fastest
// first so the head is the eviction candidate. Insertion is O(N) on a
// small fixed N — cheap against an HTTP request.
type slowRing struct {
	mu      sync.Mutex
	keep    int
	entries []SlowRequest
}

func newSlowRing(keep int) *slowRing {
	if keep <= 0 {
		keep = DefaultSlowKeep
	}
	return &slowRing{keep: keep}
}

// note offers one completed request to the ring.
func (sr *slowRing) note(e SlowRequest) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	i := sort.Search(len(sr.entries), func(i int) bool {
		return sr.entries[i].DurationMs >= e.DurationMs
	})
	if len(sr.entries) >= sr.keep {
		if i == 0 {
			return // faster than everything retained
		}
		// Drop the fastest entry and slide the gap up to the slot.
		copy(sr.entries, sr.entries[1:i])
		sr.entries[i-1] = e
		return
	}
	sr.entries = append(sr.entries, SlowRequest{})
	copy(sr.entries[i+1:], sr.entries[i:])
	sr.entries[i] = e
}

// slowest returns the retained exemplars, slowest first.
func (sr *slowRing) slowest() []SlowRequest {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SlowRequest, len(sr.entries))
	for i, e := range sr.entries {
		out[len(out)-1-i] = e
	}
	return out
}

// SlowReport is the GET /v1/debug/slow payload.
type SlowReport struct {
	Keep        int           `json:"keep"`
	ThresholdMs float64       `json:"threshold_ms"` // 0 = slow logging disabled
	Requests    []SlowRequest `json:"requests"`     // slowest first
}

// handleDebugSlow serves GET /v1/debug/slow: the N slowest requests the
// daemon has served, slowest first.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SlowReport{
		Keep:        s.slow.keep,
		ThresholdMs: float64(s.cfg.SlowThreshold) / float64(time.Millisecond),
		Requests:    s.slow.slowest(),
	})
}
