package server

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// The ring keeps exactly the N slowest entries, reported slowest first;
// faster-than-everything offers are discarded once full.
func TestSlowRingOrderingAndEviction(t *testing.T) {
	sr := newSlowRing(3)
	for _, ms := range []float64{5, 1, 9, 3, 7, 0.5} {
		sr.note(SlowRequest{Path: fmt.Sprintf("/d/%g", ms), DurationMs: ms})
	}
	got := sr.slowest()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	for i, want := range []float64{9, 7, 5} {
		if got[i].DurationMs != want {
			t.Fatalf("slowest()[%d] = %gms, want %gms (full: %+v)", i, got[i].DurationMs, want, got)
		}
	}
	// A duplicate duration still displaces the fastest retained entry.
	sr.note(SlowRequest{Path: "/dup", DurationMs: 7})
	got = sr.slowest()
	if got[2].DurationMs != 7 {
		t.Fatalf("after duplicate insert, slowest()[2] = %gms, want 7", got[2].DurationMs)
	}
}

// Every served request lands in the ring; GET /v1/debug/slow reports
// them slowest first with route, status, source and trace ID attached.
func TestDebugSlowEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{ScrapeInterval: -1, SlowKeep: 8})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Simulate(ctx, fastSim()); err != nil {
		t.Fatal(err)
	}
	rep, err := c.SlowRequests(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keep != 8 {
		t.Fatalf("keep = %d, want the configured 8", rep.Keep)
	}
	if rep.ThresholdMs != 0 {
		t.Fatalf("threshold_ms = %g, want 0 (slow logging disabled)", rep.ThresholdMs)
	}
	if len(rep.Requests) < 2 {
		t.Fatalf("retained %d requests, want the healthz and simulate calls", len(rep.Requests))
	}
	for i := 1; i < len(rep.Requests); i++ {
		if rep.Requests[i].DurationMs > rep.Requests[i-1].DurationMs {
			t.Fatalf("requests not sorted slowest first: %+v", rep.Requests)
		}
	}
	var sawSim bool
	for _, e := range rep.Requests {
		if e.TraceID == "" || e.Method == "" || e.Path == "" || e.Status == 0 || e.Source == "" {
			t.Fatalf("exemplar missing identity fields: %+v", e)
		}
		if e.Path == "/v1/simulate" {
			sawSim = true
			// The exemplar links back to a retrievable trace.
			if _, err := c.Trace(ctx, e.TraceID); err != nil {
				t.Fatalf("exemplar trace %s not retrievable: %v", e.TraceID, err)
			}
		}
	}
	if !sawSim {
		t.Fatalf("no /v1/simulate exemplar in %+v", rep.Requests)
	}
}

// Past the threshold the request log escalates to a Warn "slow request"
// line; under it, the normal Info line.
func TestSlowThresholdLogEscalation(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	_, c := newTestServer(t, Config{
		ScrapeInterval: -1,
		SlowThreshold:  time.Nanosecond, // everything is slow
		Logger:         logger,
	})
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, "level=WARN") {
		t.Fatalf("no Warn slow-request line logged:\n%s", out)
	}
	if !strings.Contains(out, "path=/v1/healthz") {
		t.Fatalf("slow-request line lacks the path:\n%s", out)
	}

	buf.Reset()
	_, c2 := newTestServer(t, Config{ScrapeInterval: -1, Logger: logger})
	if err := c2.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "slow request") {
		t.Fatalf("threshold-less server escalated a request:\n%s", s)
	}
}
