package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/tsdb"
)

// fleetScrapeFanout bounds how many peer /metrics scrapes run
// concurrently for one /v1/fleet/metrics request.
const fleetScrapeFanout = 8

// ShardMetrics is one shard's slice of the GET /v1/fleet/metrics
// payload: identity, whether the scrape succeeded, and every exposition
// sample keyed by name plus label block (e.g.
// `comasrv_peer_fill_total{outcome="hit"}`).
type ShardMetrics struct {
	ID       string             `json:"id"`
	URL      string             `json:"url"`
	Up       bool               `json:"up"`
	Error    string             `json:"error,omitempty"`
	ScrapeMs float64            `json:"scrape_ms"`
	Samples  map[string]float64 `json:"samples,omitempty"`
}

// FleetMetricsView is the GET /v1/fleet/metrics payload: every shard's
// scrape (partial results — a down shard is marked, never an error) and
// the fleet aggregate (samples summed across up shards; identity
// families like *_info and uptime are excluded).
type FleetMetricsView struct {
	ShardID  string             `json:"shard_id"` // shard that served this view
	Members  int                `json:"members"`
	UpShards int                `json:"up_shards"`
	Shards   []ShardMetrics     `json:"shards"`
	Fleet    map[string]float64 `json:"fleet"`
}

// shardScrape is one member's scrape with the parsed page retained for
// the Prometheus re-rendering.
type shardScrape struct {
	ShardMetrics
	scrape tsdb.Scrape
}

// scrapeFleet scrapes every member's /metrics — self in-process, peers
// over HTTP with the per-peer timeout — with bounded fan-out. Results
// are in canonical member order; a failed peer comes back Up=false with
// the error recorded.
func (s *Server) scrapeFleet(ctx context.Context) []shardScrape {
	f := s.fleet
	members := f.ring.Members()
	out := make([]shardScrape, len(members))
	sem := make(chan struct{}, fleetScrapeFanout)
	var wg sync.WaitGroup
	for i, m := range members {
		out[i].ID, out[i].URL = m.ID, m.URL
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			var (
				text []byte
				err  error
			)
			if out[i].ID == f.self.ID {
				text = s.renderProm()
			} else {
				text, err = s.scrapePeer(ctx, url)
			}
			out[i].ScrapeMs = float64(time.Since(start)) / float64(time.Millisecond)
			if err == nil {
				var sc tsdb.Scrape
				if sc, err = tsdb.ParseExposition(string(text)); err == nil {
					out[i].Up = true
					out[i].scrape = sc
					samples := make(map[string]float64, len(sc.Samples))
					for _, sa := range sc.Samples {
						samples[sa.Key()] = sa.Value
					}
					out[i].Samples = samples
				}
			}
			if err != nil {
				out[i].Error = err.Error()
				s.fleet.setReach(out[i].ID, false)
			} else if out[i].ID != f.self.ID {
				s.fleet.setReach(out[i].ID, true)
			}
		}(i, m.URL)
	}
	wg.Wait()
	return out
}

// scrapePeer GETs one peer's /metrics within the fleet peer timeout.
func (s *Server) scrapePeer(ctx context.Context, url string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, s.fleet.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.fleet.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// aggregateNonsense names sample families whose cross-shard sum is
// meaningless and which are therefore excluded from the fleet aggregate.
func aggregateNonsense(key string) bool {
	name, _, _ := strings.Cut(key, "{")
	return strings.HasSuffix(name, "_info") || name == "comasrv_uptime_seconds"
}

// handleFleetMetrics serves GET /v1/fleet/metrics: the whole fleet's
// /metrics scraped concurrently into one merged view. The default is
// JSON (per-shard samples plus a fleet aggregate); ?format=prom renders
// a merged Prometheus exposition in which every sample carries a
// shard="<id>" label. Down shards are reported with up=false — a peer
// outage degrades the view, never the request.
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeErr(w, errFleetDisabled.status, errFleetDisabled)
		return
	}
	scrapes := s.scrapeFleet(r.Context())
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(renderFleetProm(scrapes))
		return
	}
	view := FleetMetricsView{
		ShardID: s.fleet.self.ID,
		Members: len(scrapes),
		Shards:  make([]ShardMetrics, len(scrapes)),
		Fleet:   make(map[string]float64),
	}
	for i, sc := range scrapes {
		view.Shards[i] = sc.ShardMetrics
		if !sc.Up {
			continue
		}
		view.UpShards++
		for k, v := range sc.Samples {
			if !aggregateNonsense(k) {
				view.Fleet[k] += v
			}
		}
	}
	writeJSON(w, http.StatusOK, view)
}

// renderFleetProm merges per-shard scrapes into one well-formed
// exposition: each family's HELP/TYPE headers once, then every up
// shard's samples in canonical member order with a shard label
// injected, plus a comasrv_fleet_shard_up gauge covering down members.
// Histogram series stay per-shard (distinguished by the shard label),
// so cumulative bucket counts remain monotone within every series —
// LintExposition-checked in tests.
func renderFleetProm(scrapes []shardScrape) []byte {
	type familyGroup struct {
		meta tsdb.Family
		// rows are "name{labels} value" fragments in emission order.
		rows []string
	}
	var order []string
	groups := make(map[string]*familyGroup)

	for _, sh := range scrapes {
		if !sh.Up {
			continue
		}
		hist := make(map[string]bool)
		metas := make(map[string]tsdb.Family, len(sh.scrape.Families))
		for _, f := range sh.scrape.Families {
			metas[f.Name] = f
			if f.Type == "histogram" {
				hist[f.Name] = true
			}
		}
		for _, sa := range sh.scrape.Samples {
			fam := sa.Name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(sa.Name, suffix); ok && hist[base] {
					fam = base
					break
				}
			}
			g := groups[fam]
			if g == nil {
				g = &familyGroup{meta: metas[fam]}
				if g.meta.Name == "" {
					g.meta = tsdb.Family{Name: fam, Help: fam + ".", Type: "untyped"}
				}
				groups[fam] = g
				order = append(order, fam)
			}
			g.rows = append(g.rows, fmt.Sprintf("%s%s %g", sa.Name, injectShardLabel(sa.Labels, sh.ID), sa.Value))
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# HELP comasrv_fleet_shard_up Whether the shard's /metrics scrape succeeded (1 = up).\n")
	fmt.Fprintf(&b, "# TYPE comasrv_fleet_shard_up gauge\n")
	for _, sh := range scrapes {
		up := 0
		if sh.Up {
			up = 1
		}
		fmt.Fprintf(&b, "comasrv_fleet_shard_up{shard=%q} %d\n", sh.ID, up)
	}
	sort.Strings(order)
	for _, fam := range order {
		g := groups[fam]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam, g.meta.Help, fam, g.meta.Type)
		for _, row := range g.rows {
			b.WriteString(row)
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

// injectShardLabel prepends shard="<id>" to a raw label block.
func injectShardLabel(labels, shard string) string {
	if labels == "" {
		return fmt.Sprintf("{shard=%q}", shard)
	}
	return fmt.Sprintf("{shard=%q,%s", shard, labels[1:])
}
