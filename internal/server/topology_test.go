package server

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

// ringSim is the /v1/simulate leg of the scaled-study acceptance: the
// Figure2Scaled operating point (64 processors, ring of 16 clusters,
// pressure scaled to this machine) expressed as an API request.
func ringSim() SimRequest {
	return SimRequest{App: "fft", Procs: 64, ProcsPerNode: 2, MP: "50%",
		Topology: "ring", Clusters: 16, ScalePressure: true}
}

// A 64-processor ring request simulates end-to-end, round-trips through
// the content-addressed store, and hashes to a different address than
// its bus twin (same workload, same size, flat topology).
func TestSimulateRingTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("64-processor simulation in -short mode")
	}
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	res1, env1, err := c.Simulate(ctx, ringSim())
	if err != nil {
		t.Fatal(err)
	}
	if env1.Cached {
		t.Fatal("first ring request reported cached")
	}
	if res1.ExecTimeNs <= 0 {
		t.Fatalf("ring exec_time_ns = %d, want > 0", res1.ExecTimeNs)
	}

	res2, env2, err := c.Simulate(ctx, ringSim())
	if err != nil {
		t.Fatal(err)
	}
	if !env2.Cached || env2.Key != env1.Key {
		t.Fatalf("repeat not served from store (cached=%v, key %s vs %s)",
			env2.Cached, env2.Key, env1.Key)
	}
	if res2 != res1 {
		t.Fatalf("cached ring result differs:\n%+v\n%+v", res1, res2)
	}

	bus := ringSim()
	bus.Topology = ""
	bus.Clusters = 0
	_, busEnv, err := c.Simulate(ctx, bus)
	if err != nil {
		t.Fatal(err)
	}
	if busEnv.Key == env1.Key {
		t.Fatal("bus twin hashed to the ring's content address")
	}
}

// Equivalent ring spellings (topology defaults omitted vs spelled out)
// share one content address, like the flat-topology fields.
func TestRingCanonicalizationConverges(t *testing.T) {
	implicit := SimRequest{App: "fft", Procs: 8, MP: "6%", Topology: "ring"}
	tr := true
	explicit := SimRequest{App: "fft", Procs: 8, ProcsPerNode: 1, MP: "6%",
		AMWays: 4, DRAMBandwidth: 1, NCBandwidth: 1, BusBandwidth: 1, Inclusive: &tr,
		Topology: "ring", Clusters: 8, LinkLatencyNs: 40, LinkBandwidth: 1}
	if _, err := implicit.normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := explicit.normalize(); err != nil {
		t.Fatal(err)
	}
	if implicit.key() != explicit.key() {
		t.Fatal("defaulted and explicit ring requests hash to different keys")
	}
}

// Invalid topology spellings are rejected with 400s: unknown kinds,
// ring-only fields on the bus, indivisible cluster counts, and
// out-of-range link latencies.
func TestBadTopologyRequests(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cases := []string{
		`{"app":"fft","topology":"mesh"}`,
		`{"app":"fft","clusters":4}`,
		`{"app":"fft","link_latency_ns":40}`,
		`{"app":"fft","topology":"bus","link_bw":2}`,
		`{"app":"fft","procs":16,"topology":"ring","clusters":5}`,
		`{"app":"fft","topology":"ring","link_latency_ns":-2}`,
		`{"app":"fft","topology":"ring","link_bw":-1}`,
	}
	for _, body := range cases {
		resp, err := http.Post(c.Base+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /v1/simulate %s: HTTP %d, want %d", body, resp.StatusCode, http.StatusBadRequest)
		}
	}
}
