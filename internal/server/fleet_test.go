package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
)

// swapHandler lets an httptest server come up before the *Server it will
// front exists — fleet members need each other's URLs at construction
// time, so the listeners are created first and the daemons swapped in
// after.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (sh *swapHandler) Set(h http.Handler) {
	sh.mu.Lock()
	sh.h = h
	sh.mu.Unlock()
}

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.Lock()
	h := sh.h
	sh.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// newFleetCluster boots n real shards that know each other's URLs. mod,
// when non-nil, edits each shard's config before construction.
func newFleetCluster(t *testing.T, n int, mod func(i int, cfg *Config)) ([]*Server, []*Client) {
	t.Helper()
	swaps := make([]*swapHandler, n)
	members := make([]fleet.Member, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		members[i] = fleet.Member{ID: fmt.Sprintf("s%d", i), URL: ts.URL}
	}
	srvs := make([]*Server, n)
	clients := make([]*Client, n)
	for i := range srvs {
		cfg := Config{
			Jobs:     4,
			StoreDir: t.TempDir(),
			Fleet: &FleetConfig{
				ShardID:       members[i].ID,
				Members:       members,
				PeerTimeout:   500 * time.Millisecond,
				ProbeInterval: -1, // the tests assert on request-driven state
			},
		}
		if mod != nil {
			mod(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		swaps[i].Set(srv)
		srvs[i] = srv
		clients[i] = NewClient(members[i].URL)
	}
	return srvs, clients
}

// simOwnedBy returns a fast simulation request whose content address the
// ring routes to ownerID, found by perturbing the DRAM bandwidth
// multiplier (a knob that changes the key but not the runtime class).
func simOwnedBy(t *testing.T, f *fleetState, ownerID string) SimRequest {
	t.Helper()
	for i := 0; i < 4096; i++ {
		r := fastSim()
		r.DRAMBandwidth = 1 + float64(i)/1e6
		norm := r
		if _, err := norm.normalize(); err != nil {
			t.Fatal(err)
		}
		if f.ring.Owner([sha256.Size]byte(norm.key())).ID == ownerID {
			return r
		}
	}
	t.Fatalf("no request owned by %s in 4096 tries", ownerID)
	return SimRequest{}
}

// A request routed to a non-owner shard is served by peer fill — no
// local simulation — and the filled entry migrates into the local store
// so the next hit is local.
func TestFleetPeerFill(t *testing.T) {
	srvs, clients := newFleetCluster(t, 2, nil)
	ctx := context.Background()
	req := simOwnedBy(t, srvs[0].fleet, "s0")

	res0, env0, err := clients[0].Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if env0.Source != "compute" || env0.Cached {
		t.Fatalf("owner first request: source=%q cached=%v, want compute/false", env0.Source, env0.Cached)
	}

	res1, env1, err := clients[1].Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if env1.Source != "peer" {
		t.Fatalf("non-owner request: source=%q, want peer", env1.Source)
	}
	if env1.Cached {
		t.Fatal("peer-filled response claimed X-Comasrv-Cached semantics (cached=true)")
	}
	if env1.Key != env0.Key || res1 != res0 {
		t.Fatalf("peer-filled result differs from owner's:\nkeys %s vs %s\n%+v\n%+v",
			env1.Key, env0.Key, res1, res0)
	}

	m1, err := clients[1].Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m1.SimsExecuted != 0 {
		t.Fatalf("non-owner sims_executed = %d, want 0 (peer fill must not simulate)", m1.SimsExecuted)
	}
	if m1.Fleet == nil || m1.Fleet.PeerFillHits != 1 {
		t.Fatalf("non-owner fleet metrics = %+v, want peer_fill_hits=1", m1.Fleet)
	}
	m0, err := clients[0].Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Fleet == nil || m0.Fleet.PeerServed != 1 {
		t.Fatalf("owner fleet metrics = %+v, want peer_served=1", m0.Fleet)
	}

	// The filled entry migrated: the non-owner now serves it locally.
	_, env2, err := clients[1].Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if env2.Source != "local" || !env2.Cached {
		t.Fatalf("repeat on non-owner: source=%q cached=%v, want local/true", env2.Source, env2.Cached)
	}

	// Fleet mode stamps the shard identity on every response.
	resp, err := http.Get(clients[1].Base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Comasrv-Shard"); got != "s1" {
		t.Fatalf("X-Comasrv-Shard = %q, want s1", got)
	}
}

// Every peer failure mode degrades to recompute: the client always gets
// a correct 200, never an error caused by fleet internals.
func TestFleetPeerFallbackMatrix(t *testing.T) {
	cases := []struct {
		name   string
		peer   http.HandlerFunc // nil = listener closed (peer down)
		errors bool             // expect peer_fill_errors, else peer_fill_misses
	}{
		{name: "down", peer: nil, errors: true},
		{name: "slow", errors: true, peer: func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(400 * time.Millisecond) // > PeerTimeout below
		}},
		{name: "corrupt", errors: true, peer: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(checksumHeader, strings.Repeat("00", 32))
			w.Write([]byte("not the payload the checksum promises"))
		}},
		{name: "badstatus", errors: true, peer: func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "internal", http.StatusInternalServerError)
		}},
		{name: "miss", errors: false, peer: func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"no entry"}`, http.StatusNotFound)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fake := httptest.NewServer(tc.peer)
			if tc.peer == nil {
				fake.Close() // connection refused
			} else {
				t.Cleanup(fake.Close)
			}
			selfSwap := &swapHandler{}
			selfTS := httptest.NewServer(selfSwap)
			t.Cleanup(selfTS.Close)
			srv, err := New(Config{
				Jobs:     4,
				StoreDir: t.TempDir(),
				Fleet: &FleetConfig{
					ShardID: "self",
					Members: []fleet.Member{
						{ID: "peer", URL: fake.URL},
						{ID: "self", URL: selfTS.URL},
					},
					PeerTimeout:   150 * time.Millisecond,
					ProbeInterval: -1,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(srv.Close)
			selfSwap.Set(srv)
			c := NewClient(selfTS.URL)

			req := simOwnedBy(t, srv.fleet, "peer")
			res, env, err := c.Simulate(context.Background(), req)
			if err != nil {
				t.Fatalf("peer %s must degrade to recompute, got client error: %v", tc.name, err)
			}
			if env.Source != "compute" {
				t.Fatalf("source = %q, want compute", env.Source)
			}
			if res.ExecTimeNs <= 0 {
				t.Fatalf("recomputed exec_time_ns = %d, want > 0", res.ExecTimeNs)
			}
			m, err := c.Metrics(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if tc.errors && m.Fleet.PeerFillErrors == 0 {
				t.Fatalf("fleet metrics = %+v, want peer_fill_errors > 0", m.Fleet)
			}
			if !tc.errors && m.Fleet.PeerFillMisses == 0 {
				t.Fatalf("fleet metrics = %+v, want peer_fill_misses > 0", m.Fleet)
			}
		})
	}
}

// A caller-supplied trace ID is propagated across the peer-fill hop: the
// entry shard's trace carries a peer.fill span whose peer_trace_id
// matches, and the owner shard retains a trace under the same ID.
func TestFleetTraceStitching(t *testing.T) {
	srvs, clients := newFleetCluster(t, 2, nil)
	ctx := context.Background()
	req := simOwnedBy(t, srvs[0].fleet, "s0")
	if _, _, err := clients[0].Simulate(ctx, req); err != nil {
		t.Fatal(err)
	}

	traceID := strings.Repeat("ab", 16)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, clients[1].Base+"/v1/simulate", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed request: HTTP %d", resp.StatusCode)
	}

	td, err := clients[1].Trace(ctx, traceID)
	if err != nil {
		t.Fatal(err)
	}
	var fill *int
	for i, sp := range td.Spans {
		if sp.Name == "peer.fill" {
			fill = &i
			break
		}
	}
	if fill == nil {
		t.Fatalf("entry shard trace has no peer.fill span: %+v", td.Spans)
	}
	sp := td.Spans[*fill]
	if sp.Attrs["peer"] != "s0" || sp.Attrs["outcome"] != "hit" {
		t.Fatalf("peer.fill attrs = %v, want peer=s0 outcome=hit", sp.Attrs)
	}
	if sp.Attrs["peer_trace_id"] != traceID {
		t.Fatalf("peer_trace_id = %q, want %q (trace not stitched)", sp.Attrs["peer_trace_id"], traceID)
	}

	// The owner adopted the propagated ID: one logical trace, two shards.
	peerTD, err := clients[0].Trace(ctx, traceID)
	if err != nil {
		t.Fatalf("owner shard retained no trace under the propagated ID: %v", err)
	}
	if len(peerTD.Spans) == 0 {
		t.Fatal("owner shard trace is empty")
	}
}

// A hot entry (hit count at the replication threshold) is pushed to its
// replica set in the background.
func TestFleetReplication(t *testing.T) {
	srvs, clients := newFleetCluster(t, 3, func(i int, cfg *Config) {
		cfg.Fleet.Replicas = 2
		cfg.Fleet.ReplicateAfter = 2
	})
	ctx := context.Background()
	req := simOwnedBy(t, srvs[0].fleet, "s0")
	norm := req
	if _, err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	key := norm.key()
	reps := srvs[0].fleet.ring.Replicas([sha256.Size]byte(key), 2)
	if len(reps) != 2 || reps[0].ID != "s0" {
		t.Fatalf("replica set = %+v, want owner s0 first plus one successor", reps)
	}
	var secondary *Server
	for i, s := range srvs {
		if s.fleet.self.ID == reps[1].ID {
			secondary = srvs[i]
		}
	}

	// First request computes and stores; two more hits trip the
	// threshold (ReplicateAfter=2).
	for i := 0; i < 3; i++ {
		if _, _, err := clients[0].Simulate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok := secondary.store.Get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("entry never replicated to %s", reps[1].ID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srvs[0].counters.replicationPushed.Load(); got < 1 {
		t.Fatalf("owner replication_pushed = %d, want >= 1", got)
	}
	if got := secondary.counters.replicationReceived.Load(); got < 1 {
		t.Fatalf("secondary replication_received = %d, want >= 1", got)
	}
}

// On a single-shard daemon the fleet endpoints answer 404 and no fleet
// fields leak into envelopes or health — byte-identity with pre-fleet
// responses.
func TestFleetDisabledSingleShard(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	if _, err := c.FleetInfo(ctx); err == nil || !strings.Contains(err.Error(), "fleet mode is not enabled") {
		t.Fatalf("GET /v1/fleet on single shard: err = %v, want fleet-disabled 404", err)
	}
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/v1/fleet/entries/" + strings.Repeat("00", 32)},
		{http.MethodPut, "/v1/fleet/entries/" + strings.Repeat("00", 32)},
	} {
		hr, err := http.NewRequest(req.method, c.Base+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: HTTP %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}

	_, env, err := c.Simulate(ctx, fastSim())
	if err != nil {
		t.Fatal(err)
	}
	if env.Source != "" {
		t.Fatalf("single-shard envelope leaked source=%q", env.Source)
	}
	resp, err := http.Get(c.Base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Comasrv-Shard"); got != "" {
		t.Fatalf("single-shard response has X-Comasrv-Shard = %q", got)
	}
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.ShardID != "" || h.Fleet != nil {
		t.Fatalf("single-shard healthz leaked fleet identity: %+v", h)
	}
}

// Fleet health and info surfaces report shard identity and membership.
func TestFleetHealthAndInfo(t *testing.T) {
	srvs, clients := newFleetCluster(t, 3, nil)
	_ = srvs
	ctx := context.Background()

	fi, err := clients[1].FleetInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fi.ShardID != "s1" || len(fi.Members) != 3 || len(fi.Peers) != 2 {
		t.Fatalf("fleet info = %+v, want shard s1 of 3 with 2 peers", fi)
	}

	resp, err := http.Get(clients[1].Base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.ShardID != "s1" || h.Fleet == nil || len(h.Fleet.Members) != 3 {
		t.Fatalf("fleet healthz = %+v, want shard_id=s1 and 3 members", h)
	}
}

// When the queue bound is hit, the daemon sheds with 429 + Retry-After
// instead of queueing without limit.
func TestLoadShed429(t *testing.T) {
	srv, c := newTestServer(t, Config{Jobs: 1, MaxQueue: 1})
	ctx := context.Background()

	// Occupy the single slot with a long-running async study.
	resp, err := http.Post(c.Base+"/v1/studies/sweep?async=1", "application/json",
		strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var j JobView
	if err := decode(resp, &j); err != nil {
		t.Fatal(err)
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("study to hold the pool", func() bool { return srv.pool.InUse() > 0 })

	// Fill the one queue slot with a blocked simulate.
	qctx, qcancel := context.WithCancel(ctx)
	defer qcancel()
	queued := make(chan error, 1)
	go func() {
		r := fastSim()
		r.DRAMBandwidth = 1.000001
		_, _, err := c.Simulate(qctx, r)
		queued <- err
	}()
	waitFor("simulate to queue", func() bool { return srv.pool.Waiting() == 1 })

	// The next computation must be shed, not queued.
	shed := fastSim()
	shed.DRAMBandwidth = 1.000002
	body, _ := json.Marshal(shed)
	sresp, err := http.Post(c.Base+"/v1/simulate", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated simulate: HTTP %d, want 429", sresp.StatusCode)
	}
	if ra := sresp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response has no Retry-After header")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "queue is full") {
		t.Fatalf("shed error body = %q (%v)", e.Error, err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.LoadShed != 1 {
		t.Fatalf("load_shed = %d, want 1", m.LoadShed)
	}

	// Unwind: cancel the study and the queued request.
	if _, err := c.Cancel(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	qcancel()
	<-queued
}

// AcquireBounded queues up to the bound and sheds beyond it.
func TestAcquireBounded(t *testing.T) {
	w := newWeighted(1)
	ctx := context.Background()
	if err := w.AcquireBounded(ctx, 1, 1); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- w.AcquireBounded(ctx, 1, 1) }()
	deadline := time.Now().Add(2 * time.Second)
	for w.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.AcquireBounded(ctx, 1, 1); err != errSaturated {
		t.Fatalf("over-bound acquire: %v, want errSaturated", err)
	}
	w.Release(1)
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	w.Release(1)

	// maxQueue <= 0 means unbounded: the old behavior.
	if err := w.AcquireBounded(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	w.Release(1)
}

// Finished jobs are evicted after the TTL; the registry does not grow
// without bound.
func TestJobTTLEviction(t *testing.T) {
	_, c := newTestServer(t, Config{JobTTL: 40 * time.Millisecond})
	ctx := context.Background()

	j, err := c.SimulateAsync(ctx, fastSim())
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.Wait(ctx, j.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != JobDone {
		t.Fatalf("job finished as %s, want done", done.Status)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(c.Base + "/v1/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never evicted (last HTTP %d)", j.ID, resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsEvicted < 1 {
		t.Fatalf("jobs_evicted = %d, want >= 1", m.JobsEvicted)
	}
	if m.JobsRetained != 0 {
		t.Fatalf("jobs_retained = %d, want 0", m.JobsRetained)
	}
}
