// Package server implements comasrv, the long-running HTTP daemon that
// exposes the simulation and experiment engine as a JSON API (see API.md
// at the repository root for the wire contract).
//
// The design centers on content-addressed results: every request is
// canonicalized (defaults spelled out, schema version baked in) and
// hashed, and the hash keys a two-level persistent store
// (internal/server/store). Identical requests — across clients and
// across daemon restarts — are served from the store without running a
// simulation; concurrent identical requests collapse onto a single
// in-flight computation (singleflight). Study renderings go through the
// same internal/experiments code paths as the CLI tools, so API bytes
// are identical to cmd/experiments output.
//
// Simulation concurrency is bounded by a weighted slot pool: a single
// run takes one slot, a study takes the whole pool, so at most -jobs
// simulations execute at any moment. Cancellation (client disconnect,
// request timeout, DELETE /v1/jobs/{id}, daemon shutdown) propagates
// through contexts into the machine scheduler, which stops between
// steps.
package server
