package server

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// histClock pins the server's injectable clock to a fixed, advanceable
// instant so scrapes and history queries are fully deterministic.
type histClock struct {
	t time.Time
}

func (c *histClock) now() time.Time          { return c.t }
func (c *histClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newHistClock(srv *Server) *histClock {
	c := &histClock{t: time.Unix(1_700_000_000, 0)}
	srv.now = c.now
	return c
}

// Driving the self-scrape with a synthetic clock must produce exactly
// the same history on two identical runs — deterministic under the test
// clock, per the acceptance criteria.
func TestMetricsHistoryDeterministicUnderTestClock(t *testing.T) {
	run := func() History {
		srv, c := newTestServer(t, Config{ScrapeInterval: -1})
		clk := newHistClock(srv)
		ctx := context.Background()
		for i := 0; i < 5; i++ {
			if err := c.Healthz(ctx); err != nil {
				t.Fatal(err)
			}
			srv.scrapeSelf(clk.t)
			clk.advance(10 * time.Second)
		}
		h, err := c.MetricsHistory(ctx, time.Hour, 10*time.Second, []string{"comasrv_requests_total"})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := run(), run()
	// uptime differs run to run but requests_total is exact: 1 healthz
	// (plus this very history request not yet scraped) per tick.
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverge:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Series) != 1 || a.Series[0].Name != "comasrv_requests_total" {
		t.Fatalf("series = %+v, want exactly comasrv_requests_total", a.Series)
	}
	pts := a.Series[0].Points
	if len(pts) != 5 {
		t.Fatalf("points = %+v, want 5 (one per scrape)", pts)
	}
	for i, p := range pts {
		if want := float64(i + 1); p[1] != want {
			t.Fatalf("point %d = %v, want value %g (cumulative healthz count)", i, p, want)
		}
	}
	if a.StepS != 10 || a.WindowS != 3600 {
		t.Fatalf("effective step/window = %d/%d, want 10/3600", a.StepS, a.WindowS)
	}
}

// A window wider than the fine tier's span must fall over to the
// 2-minute tier and report the coarser effective step.
func TestMetricsHistoryTierFallover(t *testing.T) {
	srv, c := newTestServer(t, Config{ScrapeInterval: -1})
	clk := newHistClock(srv)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.Healthz(ctx); err != nil {
			t.Fatal(err)
		}
		srv.scrapeSelf(clk.t)
		clk.advance(2 * time.Minute)
	}
	h, err := c.MetricsHistory(ctx, 2*time.Hour, 0, []string{"comasrv_requests_total"})
	if err != nil {
		t.Fatal(err)
	}
	if h.StepS != 120 {
		t.Fatalf("effective step = %ds, want 120 (coarse tier)", h.StepS)
	}
	if len(h.Series) != 1 || len(h.Series[0].Points) != 3 {
		t.Fatalf("series = %+v, want 3 coarse points", h.Series)
	}
}

// Bad query parameters are 400s, not 500s.
func TestMetricsHistoryBadParams(t *testing.T) {
	_, c := newTestServer(t, Config{ScrapeInterval: -1})
	for _, q := range []string{"?window=bogus", "?step=-5s", "?window=-1"} {
		resp, err := c.httpClient().Get(c.Base + "/v1/metrics/history" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: HTTP %d, want 400", q, resp.StatusCode)
		}
	}
}

// The background loop is on by default (no config) and disabled by a
// negative interval; this pins the wiring, not timing behavior.
func TestScrapeLoopConfig(t *testing.T) {
	srv, c := newTestServer(t, Config{ScrapeInterval: 10 * time.Millisecond})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := c.MetricsHistory(ctx, 0, 0, []string{"comasrv_requests_total"})
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Series) > 0 && len(h.Series[0].Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scrape loop never populated the history store")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = srv
}
