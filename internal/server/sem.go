package server

import (
	"context"
	"errors"
	"sync"
)

// errSaturated is returned by AcquireBounded instead of queueing when
// the waiter queue is already at the admission-control bound; the
// request path translates it into a fast 429 with Retry-After.
var errSaturated = errors.New("server: simulation queue is full")

// weighted is a small weighted semaphore (stdlib-only, context-aware):
// the daemon's simulation pool. A single-run flight acquires one slot; a
// study flight acquires the whole pool, so at most -jobs simulations
// execute at any moment regardless of how flights overlap. Waiters are
// served FIFO so a pool-wide acquisition cannot starve behind a stream
// of single slots.
type weighted struct {
	size int64

	mu      sync.Mutex
	cur     int64
	waiters []*waiter // FIFO
}

type waiter struct {
	n     int64
	ready chan struct{}
}

func newWeighted(size int64) *weighted {
	if size < 1 {
		size = 1
	}
	return &weighted{size: size}
}

// Size returns the pool capacity; acquisitions are clamped to it.
func (w *weighted) Size() int64 { return w.size }

// InUse returns the number of slots currently held.
func (w *weighted) InUse() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur
}

// Waiting returns the number of queued acquisitions.
func (w *weighted) Waiting() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(len(w.waiters))
}

// Acquire blocks until n slots (clamped to the pool size) are held or
// ctx is done.
func (w *weighted) Acquire(ctx context.Context, n int64) error {
	return w.AcquireBounded(ctx, n, 0)
}

// AcquireBounded is Acquire with admission control: when the acquisition
// cannot be granted immediately and maxQueue (> 0) waiters are already
// queued, it fails fast with errSaturated instead of queueing unboundedly.
// maxQueue <= 0 means no bound.
func (w *weighted) AcquireBounded(ctx context.Context, n int64, maxQueue int) error {
	if n > w.size {
		n = w.size
	}
	if n < 1 {
		n = 1
	}
	w.mu.Lock()
	if len(w.waiters) == 0 && w.cur+n <= w.size {
		w.cur += n
		w.mu.Unlock()
		return nil
	}
	if maxQueue > 0 && len(w.waiters) >= maxQueue {
		w.mu.Unlock()
		return errSaturated
	}
	wt := &waiter{n: n, ready: make(chan struct{})}
	w.waiters = append(w.waiters, wt)
	w.mu.Unlock()

	select {
	case <-wt.ready:
		return nil
	case <-ctx.Done():
		w.mu.Lock()
		select {
		case <-wt.ready:
			// Granted between ctx firing and the lock: give it back.
			w.cur -= wt.n
			w.grant()
			w.mu.Unlock()
			return ctx.Err()
		default:
		}
		for i, q := range w.waiters {
			if q == wt {
				w.waiters = append(w.waiters[:i], w.waiters[i+1:]...)
				break
			}
		}
		w.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns n slots (clamped like Acquire) to the pool.
func (w *weighted) Release(n int64) {
	if n > w.size {
		n = w.size
	}
	if n < 1 {
		n = 1
	}
	w.mu.Lock()
	w.cur -= n
	if w.cur < 0 {
		panic("server: semaphore released more than acquired")
	}
	w.grant()
	w.mu.Unlock()
}

// grant admits queued waiters in FIFO order while they fit. Caller holds
// the mutex.
func (w *weighted) grant() {
	for len(w.waiters) > 0 {
		wt := w.waiters[0]
		if w.cur+wt.n > w.size {
			return
		}
		w.cur += wt.n
		w.waiters = w.waiters[1:]
		close(wt.ready)
	}
}
