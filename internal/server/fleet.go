package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs/tracing"
	"repro/internal/server/store"
)

// FleetConfig turns the daemon into one shard of a consistent-hash
// fleet: the membership list is identical on every shard, ShardID names
// which member this process is, and the ring derived from the list
// routes every content address to an owner shard. On a local store miss
// a non-owner fetches the entry from its owner (peer fill) before
// falling back to recomputing it, and entries that prove hot are pushed
// best-effort to the next Replicas-1 distinct members clockwise.
type FleetConfig struct {
	// ShardID is this process's member ID; it must appear in Members.
	ShardID string
	// Members is the whole fleet, including this shard.
	Members []fleet.Member
	// VirtualNodes per member (0 = fleet.DefaultVirtualNodes).
	VirtualNodes int
	// Replicas is the total copy target for hot entries, owner included
	// (0 = 2; 1 disables replication).
	Replicas int
	// ReplicateAfter is the hit count that promotes an entry to its
	// replica set (0 = 3; < 0 disables replication).
	ReplicateAfter int
	// PeerTimeout bounds each peer-fill and replication request
	// (0 = 2s). A slow peer degrades to recompute, never to an error.
	PeerTimeout time.Duration
	// ProbeInterval is the background peer-health probe period
	// (0 = 5s; < 0 disables the prober — tests).
	ProbeInterval time.Duration
}

// hitTableCap bounds the replication hit-count table; when it fills,
// cold counters are dropped and counting restarts (replication is
// best-effort, the table must not grow with the key space).
const hitTableCap = 8192

// fleetState is the per-server fleet runtime: the immutable ring plus
// the mutable hit-count and peer-reachability tables.
type fleetState struct {
	cfg    FleetConfig
	ring   *fleet.Ring
	self   fleet.Member
	client *http.Client

	mu    sync.Mutex
	hits  map[store.Key]int // -1 = already promoted to the replica set
	reach map[string]bool   // peer ID -> last contact succeeded
}

// newFleet validates the fleet configuration and builds the ring.
func newFleet(cfg FleetConfig) (*fleetState, error) {
	ring, err := fleet.New(cfg.Members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	self, ok := ring.MemberByID(cfg.ShardID)
	if !ok {
		return nil, fmt.Errorf("fleet: shard ID %q is not in the membership list", cfg.ShardID)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.ReplicateAfter == 0 {
		cfg.ReplicateAfter = 3
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 2 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	return &fleetState{
		cfg:    cfg,
		ring:   ring,
		self:   self,
		client: &http.Client{Timeout: cfg.PeerTimeout},
		hits:   make(map[store.Key]int),
		reach:  make(map[string]bool),
	}, nil
}

func (f *fleetState) setReach(peerID string, ok bool) {
	f.mu.Lock()
	f.reach[peerID] = ok
	f.mu.Unlock()
}

// peerView snapshots the reachability table in canonical member order,
// self excluded.
func (f *fleetState) peerView() []PeerHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []PeerHealth
	for _, m := range f.ring.Members() {
		if m.ID == f.self.ID {
			continue
		}
		out = append(out, PeerHealth{ID: m.ID, URL: m.URL, Reachable: f.reach[m.ID]})
	}
	return out
}

// checksumHeader carries the SHA-256 of a fleet entry payload so a
// filled or replicated entry is verified end to end; a mismatch is
// treated as a miss and the entry is recomputed, never served.
const checksumHeader = "X-Comasrv-Sum"

// entryPath is the peer API path for a content address.
func entryPath(key store.Key) string { return "/v1/fleet/entries/" + key.String() }

// peerFill tries to fetch key from its owner shard. It returns the
// payload and true only on a verified hit; every failure mode (self is
// the owner, peer down, slow, non-200, corrupt payload) reports false so
// the caller falls back to computing. The fetch runs inside a
// "peer.fill" child span that propagates the request's trace ID to the
// peer and records the peer's echoed trace ID, so a routed request reads
// as one stitched trace.
func (s *Server) peerFill(ctx context.Context, key store.Key) ([]byte, bool) {
	f := s.fleet
	owner := f.ring.Owner([sha256.Size]byte(key))
	if owner.ID == f.self.ID {
		return nil, false
	}
	span := tracing.FromContext(ctx).StartChild("peer.fill")
	defer span.End()
	span.SetAttr("peer", owner.ID)
	span.SetAttr("key", key.String())

	ctx, cancel := context.WithTimeout(ctx, f.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner.URL+entryPath(key), nil)
	if err != nil {
		span.SetErr(err)
		s.counters.peerFillErrors.Add(1)
		return nil, false
	}
	req.Header.Set("X-Trace-Id", span.TraceID())
	resp, err := f.client.Do(req)
	if err != nil {
		span.SetErr(err)
		s.counters.peerFillErrors.Add(1)
		f.setReach(owner.ID, false)
		return nil, false
	}
	defer resp.Body.Close()
	f.setReach(owner.ID, true)
	span.SetAttr("peer_trace_id", resp.Header.Get("X-Trace-Id"))
	if resp.StatusCode == http.StatusNotFound {
		span.SetAttr("outcome", "miss")
		s.counters.peerFillMisses.Add(1)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		span.SetErr(fmt.Errorf("peer %s: HTTP %d", owner.ID, resp.StatusCode))
		s.counters.peerFillErrors.Add(1)
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		span.SetErr(err)
		s.counters.peerFillErrors.Add(1)
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != resp.Header.Get(checksumHeader) {
		span.SetErr(fmt.Errorf("peer %s: payload checksum mismatch", owner.ID))
		s.counters.peerFillErrors.Add(1)
		return nil, false
	}
	span.SetAttr("outcome", "hit")
	s.counters.peerFillHits.Add(1)
	return body, true
}

// noteHit counts a cache hit against key and, when the hit count trips
// the replication threshold, promotes the entry to its replica set in
// the background. The count table is bounded: when full, cold counters
// are dropped.
func (s *Server) noteHit(key store.Key) {
	f := s.fleet
	if f == nil || f.cfg.ReplicateAfter < 0 || f.cfg.Replicas < 2 || f.ring.Len() < 2 {
		return
	}
	f.mu.Lock()
	c, ok := f.hits[key]
	if c == -1 {
		f.mu.Unlock()
		return
	}
	if !ok && len(f.hits) >= hitTableCap {
		for k, v := range f.hits {
			if v != -1 {
				delete(f.hits, k)
				break
			}
		}
	}
	c++
	if c < f.cfg.ReplicateAfter {
		f.hits[key] = c
		f.mu.Unlock()
		return
	}
	f.hits[key] = -1
	f.mu.Unlock()
	go s.replicate(key)
}

// replicate pushes key's payload to the next Replicas-1 distinct members
// clockwise from the owner. Failures are counted and otherwise ignored:
// replication is purely an optimization, correctness comes from peer
// fill and recompute.
func (s *Server) replicate(key store.Key) {
	f := s.fleet
	body, ok := s.store.Get(key)
	if !ok {
		return
	}
	sum := sha256.Sum256(body)
	for _, m := range f.ring.Replicas([sha256.Size]byte(key), f.cfg.Replicas) {
		if m.ID == f.self.ID {
			continue
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, f.cfg.PeerTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, m.URL+entryPath(key), bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set(checksumHeader, hex.EncodeToString(sum[:]))
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := f.client.Do(req)
		cancel()
		if err != nil {
			s.counters.replicationErrors.Add(1)
			f.setReach(m.ID, false)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		f.setReach(m.ID, true)
		if resp.StatusCode/100 != 2 {
			s.counters.replicationErrors.Add(1)
			continue
		}
		s.counters.replicationPushed.Add(1)
	}
}

// probePeers is the background reachability prober: it GETs every
// peer's /v1/healthz on a fixed interval so the peer-reachability gauge
// reflects liveness, not just the last fill/replication attempt.
func (s *Server) probePeers() {
	f := s.fleet
	probe := func() {
		for _, m := range f.ring.Members() {
			if m.ID == f.self.ID {
				continue
			}
			ctx, cancel := context.WithTimeout(s.baseCtx, f.cfg.PeerTimeout)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/v1/healthz", nil)
			if err != nil {
				cancel()
				continue
			}
			resp, err := f.client.Do(req)
			cancel()
			if err != nil {
				f.setReach(m.ID, false)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			f.setReach(m.ID, resp.StatusCode == http.StatusOK)
		}
	}
	probe()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			probe()
		}
	}
}

// --- fleet handlers ---------------------------------------------------

// FleetInfo is the GET /v1/fleet payload: this shard's identity, the
// ring parameters, and the reachability view of every peer.
type FleetInfo struct {
	ShardID        string         `json:"shard_id"`
	Members        []fleet.Member `json:"members"`
	VirtualNodes   int            `json:"virtual_nodes"`
	Replicas       int            `json:"replicas"`
	ReplicateAfter int            `json:"replicate_after"`
	Peers          []PeerHealth   `json:"peers"`
}

// PeerHealth is one peer's reachability as seen by this shard.
type PeerHealth struct {
	ID        string `json:"id"`
	URL       string `json:"url"`
	Reachable bool   `json:"reachable"`
}

// errFleetDisabled answers the fleet endpoints on a single-shard daemon.
var errFleetDisabled = &apiError{status: http.StatusNotFound, msg: "fleet mode is not enabled (start with -shard-id and -peers)"}

func (s *Server) handleFleetInfo(w http.ResponseWriter, r *http.Request) {
	f := s.fleet
	if f == nil {
		writeErr(w, errFleetDisabled.status, errFleetDisabled)
		return
	}
	writeJSON(w, http.StatusOK, FleetInfo{
		ShardID:        f.self.ID,
		Members:        f.ring.Members(),
		VirtualNodes:   f.ring.VirtualNodes(),
		Replicas:       f.cfg.Replicas,
		ReplicateAfter: f.cfg.ReplicateAfter,
		Peers:          f.peerView(),
	})
}

// handleFleetEntryGet serves a raw store entry to a peer. It only ever
// consults the local store — no recompute, no forwarding — so a fill
// chain is at most one hop deep and can never recurse.
func (s *Server) handleFleetEntryGet(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeErr(w, errFleetDisabled.status, errFleetDisabled)
		return
	}
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	body, ok := s.store.Get(key)
	if !ok {
		s.counters.peerServedMisses.Add(1)
		writeErr(w, http.StatusNotFound, fmt.Errorf("no entry for %s", key))
		return
	}
	s.counters.peerServed.Add(1)
	s.noteHit(key)
	sum := sha256.Sum256(body)
	w.Header().Set(checksumHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleFleetEntryPut accepts a best-effort replica push: the payload is
// verified against its checksum header and stored under the given key.
func (s *Server) handleFleetEntryPut(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeErr(w, errFleetDisabled.status, errFleetDisabled)
		return
	}
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != r.Header.Get(checksumHeader) {
		s.counters.badRequests.Add(1)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("payload does not match %s header", checksumHeader))
		return
	}
	if err := s.store.Put(key, body); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.counters.replicationReceived.Add(1)
	w.WriteHeader(http.StatusNoContent)
}
