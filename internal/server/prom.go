package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Prometheus text exposition (format 0.0.4), hand-rolled: the repo is
// stdlib-only, and the daemon needs exactly counters, gauges and two
// fixed-bucket histograms — a page of code, not a dependency. GET
// /metrics serves the same underlying state as the JSON /v1/metrics,
// plus the latency/queue-wait histograms only this endpoint carries.

// durationBuckets are the shared latency bucket bounds in seconds:
// cached hits land in the millisecond buckets, simulations in the
// seconds range, studies up to the request timeout.
var durationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// histogram is a fixed-bound cumulative histogram, safe for concurrent
// use. Bounds are upper-inclusive per Prometheus convention; the +Inf
// bucket is implicit.
type histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []int64 // per-bound, plus the +Inf overflow at the end
	sum    float64
	total  int64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (upper-inclusive)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts (one per bound, then +Inf).
func (h *histogram) snapshot() (cum []int64, sum float64, total int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.counts))
	var running int64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return cum, h.sum, h.total
}

// promWriter accumulates exposition text with the HELP/TYPE bookkeeping.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) header(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) counter(name, help string, v int64) {
	p.header(name, help, "counter")
	fmt.Fprintf(&p.b, "%s %d\n", name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	fmt.Fprintf(&p.b, "%s %g\n", name, v)
}

// labeled emits one sample with a single label (caller emits the header
// once and the samples in a fixed order).
func (p *promWriter) labeled(name, label, value string, v int64) {
	fmt.Fprintf(&p.b, "%s{%s=%q} %d\n", name, label, value, v)
}

func (p *promWriter) histogram(name, help string, h *histogram) {
	cum, sum, total := h.snapshot()
	p.header(name, help, "histogram")
	for i, bound := range h.bounds {
		fmt.Fprintf(&p.b, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum[i])
	}
	fmt.Fprintf(&p.b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
	fmt.Fprintf(&p.b, "%s_sum %g\n", name, sum)
	fmt.Fprintf(&p.b, "%s_count %d\n", name, total)
}

// busClassNames labels the bus occupancy classes (coma.TxnClass order).
var busClassNames = [3]string{"read", "write", "replace"}

func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(s.renderProm())
}

// renderProm produces the full Prometheus text exposition. It backs GET
// /metrics, the self-scrape loop that feeds the history store, and the
// self slice of the fleet-wide /v1/fleet/metrics merge.
func (s *Server) renderProm() []byte {
	c := &s.counters
	var p promWriter

	// Service counters.
	p.counter("comasrv_requests_total", "HTTP requests received.", c.requests.Load())
	p.counter("comasrv_bad_requests_total", "Requests rejected as malformed.", c.badRequests.Load())
	p.counter("comasrv_sims_executed_total", "Individual simulations executed (cache misses only).", c.simsExecuted.Load())
	p.counter("comasrv_flights_executed_total", "Computations executed after request collapsing.", c.flightsExecuted.Load())
	p.counter("comasrv_flights_collapsed_total", "Requests that attached to an identical in-progress computation.", c.flightsCollapsed.Load())
	p.counter("comasrv_cache_hits_total", "Requests answered from the result store.", c.cacheHits.Load())
	p.counter("comasrv_cache_bypassed_total", "Requests that forced recomputation (nocache).", c.cacheBypassed.Load())
	p.counter("comasrv_jobs_created_total", "Asynchronous jobs accepted.", c.jobsCreated.Load())
	p.counter("comasrv_jobs_cancelled_total", "Asynchronous jobs cancelled by clients.", c.jobsCancelled.Load())
	p.counter("comasrv_jobs_evicted_total", "Finished asynchronous jobs evicted after their TTL.", c.jobsEvicted.Load())
	p.counter("comasrv_simulated_runs_total", "Simulation results produced for /v1/simulate.", c.simulatedRuns.Load())
	p.counter("comasrv_simulated_exec_ns_total", "Simulated (virtual) nanoseconds executed for /v1/simulate.", c.simulatedExecNs.Load())
	p.counter("comasrv_load_shed_total", "Computations rejected with 429 by admission control.", c.loadShed.Load())

	// Uploaded traces (POST /v1/traces and simulate-by-ref).
	p.counter("comasrv_traces_uploaded_total", "Traces accepted by POST /v1/traces.", c.tracesUploaded.Load())
	p.counter("comasrv_traces_deleted_total", "Uploaded traces deleted by clients.", c.tracesDeleted.Load())
	p.counter("comasrv_trace_sims_total", "Simulations executed by trace_ref.", c.traceSims.Load())
	p.gauge("comasrv_traces_retained", "Uploaded traces currently indexed.", float64(s.retainedTraces()))

	// Pool and job occupancy.
	p.gauge("comasrv_active_flights", "Computations currently executing.", float64(c.activeFlights.Load()))
	p.gauge("comasrv_sim_slots", "Simulation pool capacity.", float64(s.pool.Size()))
	p.gauge("comasrv_sim_slots_in_use", "Simulation slots currently held.", float64(s.pool.InUse()))
	p.gauge("comasrv_sim_queue_waiting", "Acquisitions queued for simulation slots.", float64(s.pool.Waiting()))
	queued, running := s.jobCounts()
	p.header("comasrv_jobs", "Asynchronous jobs by live state.", "gauge")
	p.labeled("comasrv_jobs", "status", "queued", queued)
	p.labeled("comasrv_jobs", "status", "running", running)
	p.gauge("comasrv_jobs_retained", "Asynchronous jobs currently held in the job table.", float64(s.retainedJobs()))

	// Fleet: shard identity, ring membership and peer traffic, so a
	// per-shard dashboard can label every series by shard.
	if f := s.fleet; f != nil {
		p.header("comasrv_shard_info", "Fleet shard identity (value is always 1).", "gauge")
		fmt.Fprintf(&p.b, "comasrv_shard_info{shard_id=%q,members=\"%d\",virtual_nodes=\"%d\"} 1\n",
			f.self.ID, f.ring.Len(), f.ring.VirtualNodes())
		p.gauge("comasrv_fleet_members", "Shards in the configured ring membership.", float64(f.ring.Len()))
		peers := f.peerView()
		p.header("comasrv_peer_reachable", "Peer reachability as probed by this shard (1 = reachable).", "gauge")
		for _, peer := range peers {
			v := int64(0)
			if peer.Reachable {
				v = 1
			}
			p.labeled("comasrv_peer_reachable", "peer", peer.ID, v)
		}
		p.header("comasrv_peer_fill_total", "Peer-fill attempts against owner shards by outcome.", "counter")
		p.labeled("comasrv_peer_fill_total", "outcome", "hit", c.peerFillHits.Load())
		p.labeled("comasrv_peer_fill_total", "outcome", "miss", c.peerFillMisses.Load())
		p.labeled("comasrv_peer_fill_total", "outcome", "error", c.peerFillErrors.Load())
		p.header("comasrv_peer_served_total", "Fleet entry reads served to peers by outcome.", "counter")
		p.labeled("comasrv_peer_served_total", "outcome", "hit", c.peerServed.Load())
		p.labeled("comasrv_peer_served_total", "outcome", "miss", c.peerServedMisses.Load())
		p.counter("comasrv_replication_pushed_total", "Hot entries pushed to replica shards.", c.replicationPushed.Load())
		p.counter("comasrv_replication_received_total", "Replica entries accepted from peers.", c.replicationReceived.Load())
		p.counter("comasrv_replication_errors_total", "Failed replication pushes.", c.replicationErrors.Load())
	}

	// Result store.
	st := s.store.Stats()
	p.counter("comasrv_store_mem_hits_total", "Store reads served from memory.", st.MemHits)
	p.counter("comasrv_store_disk_hits_total", "Store reads served from disk.", st.DiskHits)
	p.counter("comasrv_store_misses_total", "Store reads that missed.", st.Misses)
	p.counter("comasrv_store_puts_total", "Results persisted into the store.", st.Puts)
	p.counter("comasrv_store_corrupt_total", "Corrupt store entries healed by recomputation.", st.Corrupt)
	p.gauge("comasrv_store_mem_bytes", "Bytes held by the in-memory result cache.", float64(st.MemBytes))
	p.gauge("comasrv_store_mem_items", "Entries held by the in-memory result cache.", float64(st.MemItems))
	p.gauge("comasrv_store_disk_items", "Entries persisted on disk.", float64(st.DiskItems))

	// Latency histograms.
	p.histogram("comasrv_request_duration_seconds", "End-to-end HTTP request latency.", s.reqDur)
	p.histogram("comasrv_queue_wait_seconds", "Time computations waited for simulation slots.", s.queueWait)

	// Aggregated simulator observability (all executed simulations).
	o := s.obsSink.snapshot()
	p.header("comasrv_obs_events_total", "Simulator instrumentation events by kind.", "counter")
	for k := 0; k < obs.NumKinds; k++ {
		name := obs.Kind(k).String()
		p.labeled("comasrv_obs_events_total", "kind", name, o.Events[name])
	}
	p.header("comasrv_obs_bus_occupancy_ns_total", "Simulated bus occupancy by transaction class.", "counter")
	for i, v := range o.BusOccNs {
		p.labeled("comasrv_obs_bus_occupancy_ns_total", "class", busClassNames[i], v)
	}
	p.counter("comasrv_obs_am_transitions_total", "Attraction-memory state transitions observed.", o.Transitions)
	p.counter("comasrv_obs_wb_stall_ns_total", "Simulated write-buffer stall nanoseconds observed.", o.WBStallNs)

	// Identity.
	p.gauge("comasrv_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	p.header("comasrv_build_info", "Build identity (value is always 1).", "gauge")
	fmt.Fprintf(&p.b, "comasrv_build_info{go_version=%q,revision=%q} 1\n", runtime.Version(), buildID.rev)

	return []byte(p.b.String())
}

// LintExposition validates a Prometheus text exposition (format 0.0.4):
// every sample belongs to a family with HELP and TYPE headers, sample
// values parse, histogram bucket counts are cumulative (monotonically
// non-decreasing) and end in a +Inf bucket matching _count. Histogram
// state is tracked per label set (minus the le pair), so a family that
// carries one histogram per shard — the merged /v1/fleet/metrics
// rendering — is linted series by series. The docs conformance test and
// the CI boot smoke run it against a live /metrics scrape so a
// malformed exposition fails the build, not the scrape.
func LintExposition(body string) error {
	help := make(map[string]bool)
	typ := make(map[string]string)
	type histState struct {
		last     float64
		inf      float64
		hasInf   bool
		hasCount bool
	}
	hists := make(map[string]*histState)

	for ln, line := range strings.Split(body, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || name == "" {
				return fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				return fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			switch f[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q", lineNo, f[1])
			}
			typ[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		// Sample: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: no value: %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q", lineNo, line[sp+1:])
		}
		name := line[:sp]
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels = name[i:]
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && typ[base] == "histogram" {
				family = base
				break
			}
		}
		if !help[family] {
			return fmt.Errorf("line %d: sample %s has no HELP header", lineNo, name)
		}
		if typ[family] == "" {
			return fmt.Errorf("line %d: sample %s has no TYPE header", lineNo, name)
		}
		if typ[family] == "histogram" {
			group := family + stripLabel(labels, "le")
			st := hists[group]
			if st == nil {
				st = &histState{}
				hists[group] = st
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if v < st.last {
					return fmt.Errorf("line %d: histogram %s bucket counts decrease (%g after %g)", lineNo, group, v, st.last)
				}
				st.last = v
				if strings.Contains(labels, `le="+Inf"`) {
					st.hasInf = true
					st.inf = v
				}
			case strings.HasSuffix(name, "_count"):
				st.hasCount = true
				if st.hasInf && v != st.inf {
					return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", group, v, st.inf)
				}
			}
		}
	}
	for family, st := range hists {
		if !st.hasInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", family)
		}
		if !st.hasCount {
			return fmt.Errorf("histogram %s has no _count", family)
		}
	}
	return nil
}

// stripLabel removes one name="value" pair from a label block, keeping
// the rest intact, so histogram series can be grouped by their identity
// labels without the per-bucket le. Quoted values may contain escaped
// quotes (the exposition uses Go-style %q quoting).
func stripLabel(labels, drop string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for i := 0; i < len(inner); {
		eq := strings.IndexByte(inner[i:], '=')
		if eq < 0 {
			kept = append(kept, inner[i:])
			break
		}
		name := inner[i : i+eq]
		j := i + eq + 1 // at the opening quote
		if j < len(inner) && inner[j] == '"' {
			j++
			for j < len(inner) && inner[j] != '"' {
				if inner[j] == '\\' {
					j++
				}
				j++
			}
			j++ // past the closing quote
		}
		pair := inner[i:min(j, len(inner))]
		if name != drop {
			kept = append(kept, pair)
		}
		i = j
		if i < len(inner) && inner[i] == ',' {
			i++
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// jobCounts tallies the live job states for the gauges.
func (s *Server) jobCounts() (queued, running int64) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.status {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}
