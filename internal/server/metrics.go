package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/server/store"
)

// Metrics is the GET /v1/metrics payload: service counters, the result
// store's hit/miss counters, and the aggregated observability view of
// every simulation the daemon has executed (event counts from
// internal/obs and the engine's bus/DRAM occupancy totals).
type Metrics struct {
	// Service counters.
	Requests         int64 `json:"requests"`
	BadRequests      int64 `json:"bad_requests"`
	SimsExecuted     int64 `json:"sims_executed"`
	FlightsExecuted  int64 `json:"flights_executed"`
	FlightsCollapsed int64 `json:"flights_collapsed"`
	CacheHits        int64 `json:"cache_hits"`
	CacheBypassed    int64 `json:"cache_bypassed"`
	JobsCreated      int64 `json:"jobs_created"`
	JobsCancelled    int64 `json:"jobs_cancelled"`
	JobsEvicted      int64 `json:"jobs_evicted"`
	JobsRetained     int   `json:"jobs_retained"`
	ActiveFlights    int64 `json:"active_flights"`
	SimSlots         int64 `json:"sim_slots"`
	SimulatedExecNs  int64 `json:"simulated_exec_ns"`
	SimulatedRuns    int64 `json:"simulated_runs"`
	// LoadShed counts computations rejected with 429 by admission
	// control (Config.MaxQueue).
	LoadShed int64 `json:"load_shed"`

	// Uploaded-trace counters (POST /v1/traces and simulate-by-ref).
	TracesUploaded int64 `json:"traces_uploaded"`
	TracesDeleted  int64 `json:"traces_deleted"`
	TracesRetained int   `json:"traces_retained"`
	TraceSims      int64 `json:"trace_sims"`

	// Store is the result store's counters.
	Store store.Stats `json:"store"`

	// Fleet is present only in fleet mode: the peer-fill and
	// replication counters for this shard.
	Fleet *FleetMetrics `json:"fleet,omitempty"`

	// Obs aggregates instrumentation events across all executed
	// simulations (see internal/obs for the taxonomy).
	Obs ObsMetrics `json:"obs"`
}

// ObsMetrics is the JSON shape of the aggregated observability counters.
type ObsMetrics struct {
	EventsTotal int64            `json:"events_total"`
	Events      map[string]int64 `json:"events"`
	Transitions int64            `json:"am_transitions"`
	BusOccNs    [3]int64         `json:"bus_occ_ns"` // read, write, replace
	WBStallNs   int64            `json:"wb_stall_ns"`
}

// FleetMetrics is the fleet-mode slice of /v1/metrics: how this shard's
// misses were resolved against its peers and what it pushed to them.
type FleetMetrics struct {
	ShardID string `json:"shard_id"`
	Members int    `json:"members"`
	// Peer fill (this shard asking owners).
	PeerFillHits   int64 `json:"peer_fill_hits"`
	PeerFillMisses int64 `json:"peer_fill_misses"`
	PeerFillErrors int64 `json:"peer_fill_errors"`
	// Peer serving (owners asking this shard).
	PeerServed       int64 `json:"peer_served"`
	PeerServedMisses int64 `json:"peer_served_misses"`
	// Hot-entry replication.
	ReplicationPushed   int64 `json:"replication_pushed"`
	ReplicationReceived int64 `json:"replication_received"`
	ReplicationErrors   int64 `json:"replication_errors"`
	ReachablePeers      int   `json:"reachable_peers"`
}

// counters is the server's internal mutable state behind Metrics.
type counters struct {
	requests         atomic.Int64
	badRequests      atomic.Int64
	simsExecuted     atomic.Int64
	flightsExecuted  atomic.Int64
	flightsCollapsed atomic.Int64
	cacheHits        atomic.Int64
	cacheBypassed    atomic.Int64
	jobsCreated      atomic.Int64
	jobsCancelled    atomic.Int64
	jobsEvicted      atomic.Int64
	activeFlights    atomic.Int64
	simulatedExecNs  atomic.Int64
	simulatedRuns    atomic.Int64
	loadShed         atomic.Int64
	tracesUploaded   atomic.Int64
	tracesDeleted    atomic.Int64
	traceSims        atomic.Int64

	peerFillHits        atomic.Int64
	peerFillMisses      atomic.Int64
	peerFillErrors      atomic.Int64
	peerServed          atomic.Int64
	peerServedMisses    atomic.Int64
	replicationPushed   atomic.Int64
	replicationReceived atomic.Int64
	replicationErrors   atomic.Int64
}

// lockedCounting is a concurrency-safe obs sink shared by every machine
// the daemon builds: distinct machines emit from distinct goroutines, so
// the per-event mutex buys global aggregation at a small, service-only
// cost (CLI runs stay un-instrumented).
type lockedCounting struct {
	mu sync.Mutex
	c  obs.Counting
}

// Emit implements obs.Sink.
func (l *lockedCounting) Emit(e obs.Event) {
	l.mu.Lock()
	l.c.Emit(e)
	l.mu.Unlock()
}

// snapshot copies the aggregate counters into the JSON shape.
func (l *lockedCounting) snapshot() ObsMetrics {
	l.mu.Lock()
	c := l.c
	l.mu.Unlock()
	m := ObsMetrics{
		EventsTotal: c.Total(),
		Events:      make(map[string]int64, obs.NumKinds),
		Transitions: c.TransitionTotal(),
		WBStallNs:   c.WBStallNs,
	}
	for k := 0; k < obs.NumKinds; k++ {
		m.Events[obs.Kind(k).String()] = c.Kinds[k]
	}
	for i, v := range c.BusOccNs {
		m.BusOccNs[i] = v
	}
	return m
}
