package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"repro/internal/server"
)

// ExampleClient drives the comasrv API programmatically: the first
// request simulates, the identical repeat is served from the
// content-addressed store.
func ExampleClient() {
	srv, err := server.New(server.Config{Jobs: 2}) // empty StoreDir: memory-only
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := server.NewClient(ts.URL)
	ctx := context.Background()
	req := server.SimRequest{App: "fft", Procs: 8, MP: "6%"}

	res, env, err := c.Simulate(ctx, req)
	if err != nil {
		panic(err)
	}
	fmt.Println("first request cached:", env.Cached)
	fmt.Println("positive execution time:", res.ExecTimeNs > 0)

	again, env2, err := c.Simulate(ctx, req)
	if err != nil {
		panic(err)
	}
	fmt.Println("repeat cached:", env2.Cached)
	fmt.Println("identical result:", again == res)
	// Output:
	// first request cached: false
	// positive execution time: true
	// repeat cached: true
	// identical result: true
}
