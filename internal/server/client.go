package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs/tracing"
)

// Client is a minimal typed client for the comasrv API, used by the CI
// smoke test and as the documented programmatic entry point. The zero
// value is not usable; construct with NewClient.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient defaults to a client with a generous timeout
	// (simulations are seconds, not milliseconds).
	HTTPClient *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTPClient: &http.Client{Timeout: 10 * time.Minute}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.httpClient().Do(req)
}

// decode reads resp, translating non-2xx answers into errors carrying
// the server's {"error": ...} message.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(b, v)
}

// Simulate runs (or fetches) one simulation and returns the decoded
// result plus the envelope reporting the content address and cache
// disposition.
func (c *Client) Simulate(ctx context.Context, req SimRequest) (SimResult, SimEnvelope, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/simulate", req)
	if err != nil {
		return SimResult{}, SimEnvelope{}, err
	}
	var env SimEnvelope
	if err := decode(resp, &env); err != nil {
		return SimResult{}, SimEnvelope{}, err
	}
	var res SimResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return SimResult{}, SimEnvelope{}, err
	}
	return res, env, nil
}

// Study runs (or fetches) a study and returns its text artifact —
// byte-identical to the cmd/experiments rendering — plus whether it was
// served from the store.
func (c *Client) Study(ctx context.Context, study string, req StudyRequest) (body []byte, cached bool, err error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/studies/"+study, req)
	if err != nil {
		return nil, false, err
	}
	cached = resp.Header.Get("X-Comasrv-Cached") == "true"
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return nil, false, fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return nil, false, fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return b, cached, nil
}

// SimulateAsync submits a simulation job and returns its initial view.
func (c *Client) SimulateAsync(ctx context.Context, req SimRequest) (JobView, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/simulate?async=1", req)
	if err != nil {
		return JobView{}, err
	}
	var v JobView
	err = decode(resp, &v)
	return v, err
}

// Job fetches the current view of a job.
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return JobView{}, err
	}
	var v JobView
	err = decode(resp, &v)
	return v, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobView, error) {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return JobView{}, err
	}
	var v JobView
	err = decode(resp, &v)
	return v, err
}

// Wait polls a job until it leaves the queued/running states or ctx is
// done.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobView, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return JobView{}, err
		}
		if v.Status != JobQueued && v.Status != JobRunning {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Trace fetches a retained request trace from the daemon's ring.
func (c *Client) Trace(ctx context.Context, id string) (tracing.TraceData, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/traces/"+id, nil)
	if err != nil {
		return tracing.TraceData{}, err
	}
	var td tracing.TraceData
	err = decode(resp, &td)
	return td, err
}

// UploadTrace uploads a COMATRC2 wire payload (trace.EncodeCompact,
// spec in TRACES.md) and returns the stored metadata; the digest it
// carries is the trace_ref value Simulate accepts.
func (c *Client) UploadTrace(ctx context.Context, payload []byte) (TraceMeta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/traces", bytes.NewReader(payload))
	if err != nil {
		return TraceMeta{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return TraceMeta{}, err
	}
	var m TraceMeta
	err = decode(resp, &m)
	return m, err
}

// Traces lists the uploaded traces and the active quotas.
func (c *Client) Traces(ctx context.Context) (TraceList, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/traces", nil)
	if err != nil {
		return TraceList{}, err
	}
	var l TraceList
	err = decode(resp, &l)
	return l, err
}

// TraceMeta fetches one uploaded trace's metadata by digest.
func (c *Client) TraceMeta(ctx context.Context, digest string) (TraceMeta, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/traces/"+digest, nil)
	if err != nil {
		return TraceMeta{}, err
	}
	var m TraceMeta
	err = decode(resp, &m)
	return m, err
}

// DeleteTrace drops an uploaded trace by digest.
func (c *Client) DeleteTrace(ctx context.Context, digest string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/traces/"+digest, nil)
	if err != nil {
		return err
	}
	return decode(resp, nil)
}

// FleetInfo fetches the shard's ring membership and peer-reachability
// view; it errors on a single-shard daemon.
func (c *Client) FleetInfo(ctx context.Context) (FleetInfo, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/fleet", nil)
	if err != nil {
		return FleetInfo{}, err
	}
	var fi FleetInfo
	err = decode(resp, &fi)
	return fi, err
}

// MetricsHistory fetches the self-scraped metric series over window at
// step resolution, optionally filtered to the named families (zero
// values accept the server defaults).
func (c *Client) MetricsHistory(ctx context.Context, window, step time.Duration, families []string) (History, error) {
	q := url.Values{}
	if window > 0 {
		q.Set("window", window.String())
	}
	if step > 0 {
		q.Set("step", step.String())
	}
	if len(families) > 0 {
		q.Set("family", strings.Join(families, ","))
	}
	path := "/v1/metrics/history"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return History{}, err
	}
	var h History
	err = decode(resp, &h)
	return h, err
}

// FleetMetrics fetches the merged fleet-wide metrics view (every
// shard's /metrics scraped by the target shard); it errors on a
// single-shard daemon.
func (c *Client) FleetMetrics(ctx context.Context) (FleetMetricsView, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/fleet/metrics", nil)
	if err != nil {
		return FleetMetricsView{}, err
	}
	var v FleetMetricsView
	err = decode(resp, &v)
	return v, err
}

// SlowRequests fetches the slowest-request exemplars, slowest first.
func (c *Client) SlowRequests(ctx context.Context) (SlowReport, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/debug/slow", nil)
	if err != nil {
		return SlowReport{}, err
	}
	var rep SlowReport
	err = decode(resp, &rep)
	return rep, err
}

// Metrics fetches the service counters.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/metrics", nil)
	if err != nil {
		return Metrics{}, err
	}
	var m Metrics
	err = decode(resp, &m)
	return m, err
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil)
	if err != nil {
		return err
	}
	return decode(resp, nil)
}

// Workloads lists the registered workload names.
func (c *Client) Workloads(ctx context.Context) ([]string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/workloads", nil)
	if err != nil {
		return nil, err
	}
	var v struct {
		Workloads []string `json:"workloads"`
	}
	err = decode(resp, &v)
	return v.Workloads, err
}
