package cache

import "sync"

// Entry-array recycling: sweep drivers build and discard thousands of
// machines with identically sized caches, so the tag arrays — the bulk
// of a machine's steady allocations — are pooled by capacity. A recycled
// array is cleared before reuse, making it indistinguishable from a
// fresh one (simulation output stays byte-identical).
var entryPools sync.Map // capacity -> *sync.Pool of *[]Entry

func getLines(n int) []Entry {
	if p, ok := entryPools.Load(n); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			s := *(v.(*[]Entry))
			clear(s)
			return s
		}
	}
	return make([]Entry, n)
}

func putLines(s []Entry) {
	if len(s) == 0 {
		return
	}
	p, _ := entryPools.LoadOrStore(len(s), new(sync.Pool))
	p.(*sync.Pool).Put(&s)
}
