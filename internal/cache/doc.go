// Package cache implements the generic set-associative tag array used for
// the first-level caches, the second-level caches and the attraction
// memories. State semantics are owned by the caller: the cache stores an
// opaque state byte per line, with zero meaning invalid, and lets the
// caller bias victim selection by state (the paper's attraction memories
// prefer evicting Shared lines over Owner/Exclusive lines).
package cache
