package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
)

func TestInsertLookupTouch(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 2})
	if _, ok := c.Lookup(5); ok {
		t.Fatal("empty cache must miss")
	}
	c.Insert(5, 1)
	if st, ok := c.Lookup(5); !ok || st != 1 {
		t.Fatalf("lookup = %v %v", st, ok)
	}
	if st, ok := c.Touch(5); !ok || st != 1 {
		t.Fatalf("touch = %v %v", st, ok)
	}
	if _, ok := c.Touch(9); ok { // 9 maps to set 1, absent
		t.Fatal("absent line must miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2})
	c.Insert(10, 1)
	c.Insert(20, 1)
	c.Touch(10) // 20 becomes LRU
	v, evicted := c.Insert(30, 1)
	if !evicted || v.Line != 20 {
		t.Fatalf("evicted %+v %v, want line 20", v, evicted)
	}
	if _, ok := c.Lookup(10); !ok {
		t.Fatal("MRU line 10 must survive")
	}
}

func TestVictimRankBias(t *testing.T) {
	// States: 1 is precious, 2 is cheap; prefer evicting 2.
	rank := func(s State) int {
		if s == 2 {
			return 0
		}
		return 1
	}
	c := New(Config{Name: "t", Sets: 1, Ways: 2, VictimRank: rank})
	c.Insert(10, 2)
	c.Insert(20, 1)
	c.Touch(20)
	c.Touch(10) // line 10 is MRU but cheap
	v, evicted := c.Insert(30, 1)
	if !evicted || v.Line != 10 {
		t.Fatalf("evicted %+v, want cheap line 10", v)
	}
}

func TestInsertExistingUpdates(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2})
	c.Insert(10, 1)
	v, evicted := c.Insert(10, 2)
	if evicted {
		t.Fatalf("re-insert must not evict: %+v", v)
	}
	if st, _ := c.Lookup(10); st != 2 {
		t.Fatal("state not updated")
	}
	if c.CountState(func(s State) bool { return true }) != 1 {
		t.Fatal("duplicate entry created")
	}
}

func TestInvalidateAndSetState(t *testing.T) {
	c := New(Config{Name: "t", Sets: 2, Ways: 1})
	c.Insert(4, 1)
	c.SetState(4, 3)
	if st, _ := c.Lookup(4); st != 3 {
		t.Fatal("SetState failed")
	}
	c.SetState(4, Invalid) // degenerates to Invalidate
	if _, ok := c.Lookup(4); ok {
		t.Fatal("SetState(Invalid) must remove")
	}
	if c.Invalidate(4) {
		t.Fatal("second invalidate must report absent")
	}
}

func TestSetStateAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "t", Sets: 1, Ways: 1}).SetState(7, 1)
}

func TestPeekVictim(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2})
	if _, evicted := c.PeekVictim(1); evicted {
		t.Fatal("empty set has no victim")
	}
	c.Insert(10, 1)
	c.Insert(20, 1)
	v, evicted := c.PeekVictim(30)
	if !evicted || v.Line != 10 {
		t.Fatalf("peek = %+v", v)
	}
	if _, ok := c.Lookup(10); !ok {
		t.Fatal("PeekVictim must not evict")
	}
	if _, evicted := c.PeekVictim(10); evicted {
		t.Fatal("resident line needs no victim")
	}
}

func TestHasStateAndVictimByState(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 4})
	c.Insert(10, 1)
	c.Insert(20, 2)
	if !c.HasState(0, func(s State) bool { return s == Invalid }) {
		t.Fatal("set has free ways")
	}
	if !c.HasState(0, func(s State) bool { return s == 2 }) {
		t.Fatal("state 2 present")
	}
	v, ok := c.VictimByState(0, func(s State) bool { return s == 2 })
	if !ok || v.Line != 20 {
		t.Fatalf("victim = %+v %v", v, ok)
	}
	if _, ok := c.Lookup(20); ok {
		t.Fatal("VictimByState must remove")
	}
	if _, ok := c.VictimByState(0, func(s State) bool { return s == 2 }); ok {
		t.Fatal("no state-2 line left")
	}
}

func TestGeometry(t *testing.T) {
	c := New(Config{Name: "g", Sets: 8, Ways: 4})
	if c.Sets() != 8 || c.Ways() != 4 || c.Capacity() != 32 || c.Name() != "g" {
		t.Fatal("geometry accessors broken")
	}
	if c.SizeBytes() != 32*addrspace.LineSize {
		t.Fatal("SizeBytes wrong")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad", Sets: 0, Ways: 1})
}

func TestInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "t", Sets: 1, Ways: 1}).Insert(1, Invalid)
}

// Property: capacity is never exceeded, resident lines are always found,
// and an eviction only happens when the set is full.
func TestCacheCapacityProperty(t *testing.T) {
	prop := func(lines []uint16) bool {
		c := New(Config{Name: "p", Sets: 3, Ways: 2})
		resident := make(map[addrspace.Line]bool)
		for _, raw := range lines {
			l := addrspace.Line(raw % 64)
			v, evicted := c.Insert(l, 1)
			resident[l] = true
			if evicted {
				delete(resident, v.Line)
			}
			if c.CountState(func(State) bool { return true }) > c.Capacity() {
				return false
			}
		}
		for l := range resident {
			if _, ok := c.Lookup(l); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits each resident line exactly once.
func TestForEachProperty(t *testing.T) {
	prop := func(lines []uint16) bool {
		c := New(Config{Name: "p", Sets: 5, Ways: 3})
		for _, raw := range lines {
			c.Insert(addrspace.Line(raw%128), 1)
		}
		seen := make(map[addrspace.Line]int)
		c.ForEach(func(e Entry) { seen[e.Line]++ })
		for l, n := range seen {
			if n != 1 {
				return false
			}
			if _, ok := c.Lookup(l); !ok {
				return false
			}
		}
		return len(seen) == c.CountState(func(State) bool { return true })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestVictimSelectionEdgeCases pins the victim-choice rules the attraction
// memories' accept-based replacement depends on: invalid ways always win,
// rank beats recency, recency breaks rank ties, and a rank function is
// ignored for invalid ways.
func TestVictimSelectionEdgeCases(t *testing.T) {
	rank := func(s State) int {
		if s == 1 { // "Shared": evict first
			return 0
		}
		return 1
	}
	cases := []struct {
		name    string
		fill    [][2]uint64 // line, state
		insert  uint64
		victim  uint64
		evicted bool
	}{
		{
			name:   "invalid-way-preferred-over-ranked",
			fill:   [][2]uint64{{10, 1}}, // one low-rank line, one free way
			insert: 30, evicted: false,
		},
		{
			name:   "rank-beats-recency",
			fill:   [][2]uint64{{10, 2}, {20, 1}}, // 20 is newer but low rank
			insert: 30, victim: 20, evicted: true,
		},
		{
			name:   "lru-breaks-rank-tie",
			fill:   [][2]uint64{{10, 2}, {20, 2}},
			insert: 30, victim: 10, evicted: true,
		},
		{
			name:   "reinsert-refreshes-not-evicts",
			fill:   [][2]uint64{{10, 2}, {20, 2}},
			insert: 10, evicted: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{Name: "t", Sets: 1, Ways: 2, VictimRank: rank})
			for _, f := range tc.fill {
				c.Insert(addrspace.Line(f[0]), State(f[1]))
			}
			v, evicted := c.Insert(addrspace.Line(tc.insert), 2)
			if evicted != tc.evicted {
				t.Fatalf("evicted = %v, want %v", evicted, tc.evicted)
			}
			if evicted && uint64(v.Line) != tc.victim {
				t.Fatalf("victim = %#x, want %#x", uint64(v.Line), tc.victim)
			}
		})
	}
}
