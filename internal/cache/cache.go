package cache

import (
	"fmt"

	"repro/internal/addrspace"
)

// State is an opaque per-line state byte. Zero is reserved for invalid.
type State uint8

// Invalid marks an empty way.
const Invalid State = 0

// Entry describes one way of one set.
type Entry struct {
	Line  addrspace.Line
	State State
	lru   uint64
}

// Cache is a set-associative tag array with true-LRU replacement within a
// set and an optional state-priority override for victim choice.
type Cache struct {
	name  string
	sets  int
	div   addrspace.Div // precomputed set-index divisor (fastmod)
	ways  int
	lines []Entry
	clock uint64
	// victimRank ranks states for eviction: lower rank is evicted first.
	// Nil means pure LRU. Invalid ways are always preferred regardless.
	victimRank func(State) int
}

// Config parameterizes New.
type Config struct {
	Name string
	Sets int
	Ways int
	// VictimRank optionally biases victim choice by state; lower rank is
	// evicted first, LRU breaking ties. Nil selects pure LRU.
	VictimRank func(State) int
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry %dx%d", cfg.Name, cfg.Sets, cfg.Ways))
	}
	return &Cache{
		name:       cfg.Name,
		sets:       cfg.Sets,
		div:        addrspace.NewDiv(cfg.Sets),
		ways:       cfg.Ways,
		lines:      getLines(cfg.Sets * cfg.Ways),
		victimRank: cfg.VictimRank,
	}
}

// Release returns the tag array to the reuse pool. The cache must not be
// used afterwards.
func (c *Cache) Release() {
	if c.lines != nil {
		putLines(c.lines)
		c.lines = nil
	}
}

// Geometry helpers.
func (c *Cache) Sets() int      { return c.sets }
func (c *Cache) Ways() int      { return c.ways }
func (c *Cache) Capacity() int  { return c.sets * c.ways }
func (c *Cache) Name() string   { return c.name }
func (c *Cache) SizeBytes() int { return c.sets * c.ways * addrspace.LineSize }

func (c *Cache) set(l addrspace.Line) []Entry {
	s := l.SetIndexDiv(c.div)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

func (c *Cache) find(l addrspace.Line) *Entry {
	set := c.set(l)
	// Tag compare first: for non-matching ways (the common case) it fails
	// in one comparison, where testing State first costs two. The State
	// check still guards the hit — an invalidated way has Line zeroed, so
	// it can only tag-match line 0.
	for i := range set {
		if set[i].Line == l && set[i].State != Invalid {
			return &set[i]
		}
	}
	return nil
}

// Lookup returns the line's state and whether it is present (non-invalid).
// It does not update LRU; use Touch for accesses.
func (c *Cache) Lookup(l addrspace.Line) (State, bool) {
	if e := c.find(l); e != nil {
		return e.State, true
	}
	return Invalid, false
}

// Touch marks an access to the line for LRU purposes and returns its
// state. ok is false if the line is absent.
func (c *Cache) Touch(l addrspace.Line) (State, bool) {
	e := c.find(l)
	if e == nil {
		return Invalid, false
	}
	c.clock++
	e.lru = c.clock
	return e.State, true
}

// SetState updates the state of a present line. It panics if the line is
// absent — protocol code must only transition resident lines.
func (c *Cache) SetState(l addrspace.Line, s State) {
	if s == Invalid {
		c.Invalidate(l)
		return
	}
	e := c.find(l)
	if e == nil {
		panic(fmt.Sprintf("cache %s: SetState on absent line %#x", c.name, uint64(l)))
	}
	e.State = s
}

// Invalidate removes the line if present, reporting whether it was.
func (c *Cache) Invalidate(l addrspace.Line) bool {
	if e := c.find(l); e != nil {
		*e = Entry{}
		return true
	}
	return false
}

// Insert places the line with the given state, evicting if necessary.
// If the line is already present its state is overwritten and LRU updated.
// The returned victim is valid only when evicted is true.
func (c *Cache) Insert(l addrspace.Line, s State) (victim Entry, evicted bool) {
	if s == Invalid {
		panic(fmt.Sprintf("cache %s: inserting invalid state", c.name))
	}
	c.clock++
	if e := c.find(l); e != nil {
		e.State = s
		e.lru = c.clock
		return Entry{}, false
	}
	set := c.set(l)
	slot := c.pickVictim(set)
	if set[slot].State != Invalid {
		victim, evicted = set[slot], true
	}
	set[slot] = Entry{Line: l, State: s, lru: c.clock}
	return victim, evicted
}

// pickVictim chooses the way to fill: an invalid way if any, otherwise the
// lowest (victimRank, lru) way.
func (c *Cache) pickVictim(set []Entry) int {
	best := -1
	for i := range set {
		if set[i].State == Invalid {
			return i
		}
		if best == -1 {
			best = i
			continue
		}
		if c.victimLess(&set[i], &set[best]) {
			best = i
		}
	}
	return best
}

func (c *Cache) victimLess(a, b *Entry) bool {
	if c.victimRank != nil {
		ra, rb := c.victimRank(a.State), c.victimRank(b.State)
		if ra != rb {
			return ra < rb
		}
	}
	return a.lru < b.lru
}

// PeekVictim reports which entry Insert would evict for a line mapping to
// l's set, without modifying anything. evicted is false if a free way
// exists (or the line is already resident).
func (c *Cache) PeekVictim(l addrspace.Line) (victim Entry, evicted bool) {
	if c.find(l) != nil {
		return Entry{}, false
	}
	set := c.set(l)
	slot := c.pickVictim(set)
	if set[slot].State == Invalid {
		return Entry{}, false
	}
	return set[slot], true
}

// HasState reports whether l's set contains at least one way whose state
// satisfies pred (Invalid ways are passed to pred as Invalid). Used by the
// accept-based replacement protocol to probe receiver candidates.
func (c *Cache) HasState(l addrspace.Line, pred func(State) bool) bool {
	set := c.set(l)
	for i := range set {
		if pred(set[i].State) {
			return true
		}
	}
	return false
}

// VictimByState removes and returns the LRU entry in l's set whose state
// satisfies pred. ok is false if no way qualifies.
func (c *Cache) VictimByState(l addrspace.Line, pred func(State) bool) (Entry, bool) {
	set := c.set(l)
	best := -1
	for i := range set {
		if set[i].State == Invalid || !pred(set[i].State) {
			continue
		}
		if best == -1 || set[i].lru < set[best].lru {
			best = i
		}
	}
	if best == -1 {
		return Entry{}, false
	}
	v := set[best]
	set[best] = Entry{}
	return v, true
}

// ForEach visits every resident entry. Iteration order is unspecified.
func (c *Cache) ForEach(fn func(Entry)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(c.lines[i])
		}
	}
}

// CountState returns the number of resident lines for which pred is true.
func (c *Cache) CountState(pred func(State) bool) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State != Invalid && pred(c.lines[i].State) {
			n++
		}
	}
	return n
}
