package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
)

func TestSweepSpecDefaults(t *testing.T) {
	var s SweepSpec
	if got := s.Points(); got != 14*3*5*1*1*1*1 {
		t.Fatalf("default points = %d", got)
	}
	s = SweepSpec{Apps: []string{"fft"}, ProcsPerNode: []int{1},
		Pressures: []config.Pressure{config.MP6}, DRAM: []float64{1, 2}}
	if got := s.Points(); got != 2 {
		t.Fatalf("points = %d, want 2", got)
	}
}

func TestSweepAndCSV(t *testing.T) {
	r := NewRunner()
	rows, err := r.Sweep(SweepSpec{
		Apps:         []string{"fft"},
		ProcsPerNode: []int{1, 4},
		Pressures:    []config.Pressure{config.MP6, config.MP87},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if row.ExecNs <= 0 || row.RNMr <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.MP == "6%" && row.BusReplaceNs != 0 {
			t.Fatalf("replacement traffic at 6%% MP: %+v", row)
		}
	}
	var sb strings.Builder
	if err := WriteSweepCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d, want header+4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "app,procs_per_node,mp") {
		t.Fatalf("header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != 16 {
			t.Fatalf("row has %d fields: %q", got, l)
		}
	}
}

func TestSweepUnknownApp(t *testing.T) {
	r := NewRunner()
	if _, err := r.Sweep(SweepSpec{Apps: []string{"nope"}}); err == nil {
		t.Fatal("expected error")
	}
}
