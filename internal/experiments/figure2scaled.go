package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/stats"
)

// ScaledSpec parameterizes Figure2Scaled. The zero value selects the
// study's headline sizes (64 and 128 processors); tests pass smaller
// sizes so the golden stays fast.
type ScaledSpec struct {
	// Sizes lists machine sizes (total processors); nil means {64, 128}.
	Sizes []int
}

// ScaledMPRow is one application's RNMr across the five memory-pressure
// operating points at one machine size.
type ScaledMPRow struct {
	App  string
	RNMr []float64 // indexed like config.Pressures
}

// ScaledSize holds one machine size's two sweeps: the
// processors-per-AM sweep (Figure 2 rerun) and the memory-pressure
// sweep, both on the hierarchical ring with pressure scaled to the
// machine size (config.Machine.ScalePressure).
type ScaledSize struct {
	Procs        int
	PPNs         []int // the three clustering degrees swept at 6% MP
	Clusters     []int // ring cluster count per clustering degree
	PPNRows      []Fig2Row
	Mean2, Mean4 float64 // mean relative RNMr at PPNs[1] and PPNs[2]
	MPPPN        int     // clustering degree of the pressure sweep
	MPClusters   int
	MPRows       []ScaledMPRow
}

// Fig2Scaled is the scaled-topology study: the paper's Figure 2
// clustering sweep and its memory-pressure sweep rerun at large machine
// sizes on the ring-of-clusters topology.
type Fig2Scaled struct {
	Sizes []ScaledSize
}

// ringClusters picks the ring geometry for a node count: four nodes per
// cluster, with at least two clusters so the ring is a real ring.
func ringClusters(nodes int) int {
	if nodes <= 1 {
		return 1
	}
	c := nodes / 4
	if c < 2 {
		c = 2
	}
	for nodes%c != 0 {
		c++
	}
	return c
}

// scaledCfg builds one ring configuration of the scaled study.
func scaledCfg(procs, ppn int, mp config.Pressure) config.Machine {
	cfg := config.Baseline(ppn, mp)
	cfg.Procs = procs
	cfg.ScalePressure = true
	cfg.Topology = machine.TopologyRing
	cfg.Clusters = ringClusters(procs / ppn)
	return cfg
}

// scaledPPNs picks the three clustering degrees for a machine size,
// shifted so the node count never exceeds the 64-node directory limit:
// 64 processors sweep 1/2/4 processors per node (the paper's degrees),
// 128 processors sweep 2/4/8.
func scaledPPNs(procs int) []int {
	base := procs / 64
	if base < 1 {
		base = 1
	}
	return []int{base, 2 * base, 4 * base}
}

// Figure2Scaled reruns the clustering and memory-pressure sweeps at the
// spec's machine sizes on the hierarchical ring topology. Each size's
// matrix (3 clustering points at 6% MP plus 5 pressure points at the
// largest degree, per application) executes on the worker pool.
func (r *Runner) Figure2Scaled(spec ScaledSpec) (*Fig2Scaled, error) {
	sizes := spec.Sizes
	if len(sizes) == 0 {
		sizes = []int{64, 128}
	}
	out := &Fig2Scaled{}
	for _, procs := range sizes {
		ppns := scaledPPNs(procs)
		mpPPN := ppns[2]
		var jobs []job
		for _, a := range apps.Registry {
			for _, ppn := range ppns {
				jobs = append(jobs, job{a.Name, scaledCfg(procs, ppn, config.MP6)})
			}
			for _, mp := range config.Pressures {
				jobs = append(jobs, job{a.Name, scaledCfg(procs, mpPPN, mp)})
			}
		}
		results, err := r.runAll(jobs)
		if err != nil {
			return nil, err
		}
		sz := ScaledSize{
			Procs:      procs,
			PPNs:       ppns,
			MPPPN:      mpPPN,
			MPClusters: ringClusters(procs / mpPPN),
		}
		for _, ppn := range ppns {
			sz.Clusters = append(sz.Clusters, ringClusters(procs/ppn))
		}
		per := len(ppns) + len(config.Pressures)
		var rel2s, rel4s []float64
		for ai, a := range apps.Registry {
			var rnmr [3]float64
			for i := range ppns {
				rnmr[i] = results[ai*per+i].RNMr()
			}
			row := Fig2Row{
				App:   a.Name,
				RNMr1: rnmr[0],
				Rel2:  stats.Ratio(rnmr[1], rnmr[0]),
				Rel4:  stats.Ratio(rnmr[2], rnmr[0]),
			}
			sz.PPNRows = append(sz.PPNRows, row)
			rel2s = append(rel2s, row.Rel2)
			rel4s = append(rel4s, row.Rel4)
			mpRow := ScaledMPRow{App: a.Name}
			for pi := range config.Pressures {
				mpRow.RNMr = append(mpRow.RNMr, results[ai*per+len(ppns)+pi].RNMr())
			}
			sz.MPRows = append(sz.MPRows, mpRow)
		}
		sz.Mean2 = stats.Mean(rel2s)
		sz.Mean4 = stats.Mean(rel4s)
		out.Sizes = append(out.Sizes, sz)
	}
	return out, nil
}

// Write renders both sweeps for every machine size.
func (f *Fig2Scaled) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2 scaled: clustering and memory-pressure sweeps on the ring-of-clusters topology")
	for _, sz := range f.Sizes {
		fmt.Fprintf(w, "\n== %d processors ==\n", sz.Procs)
		fmt.Fprintf(w, "relative RNMr at 6%% MP (ring geometry: %dp nodes in %d clusters, %dp in %d, %dp in %d)\n",
			sz.PPNs[0], sz.Clusters[0], sz.PPNs[1], sz.Clusters[1], sz.PPNs[2], sz.Clusters[2])
		t := stats.NewTable("application", fmt.Sprintf("RNMr(%dp)", sz.PPNs[0]),
			fmt.Sprintf("%dp rel", sz.PPNs[1]), "", fmt.Sprintf("%dp rel", sz.PPNs[2]), "")
		for _, r := range sz.PPNRows {
			t.Row(r.App, fmt.Sprintf("%.4f", r.RNMr1),
				stats.Pct(r.Rel2), stats.Bar(r.Rel2, 1, 20),
				stats.Pct(r.Rel4), stats.Bar(r.Rel4, 1, 20))
		}
		if err := t.Write(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "average relative RNMr: %dp nodes %s, %dp nodes %s\n",
			sz.PPNs[1], stats.Pct(sz.Mean2), sz.PPNs[2], stats.Pct(sz.Mean4))
		fmt.Fprintf(w, "RNMr by memory pressure at %dp nodes (ring of %d clusters)\n",
			sz.MPPPN, sz.MPClusters)
		hdr := []string{"application"}
		for _, mp := range config.Pressures {
			hdr = append(hdr, mp.Label)
		}
		mt := stats.NewTable(hdr...)
		for _, r := range sz.MPRows {
			cells := []any{r.App}
			for _, v := range r.RNMr {
				cells = append(cells, fmt.Sprintf("%.4f", v))
			}
			mt.Row(cells...)
		}
		if err := mt.Write(w); err != nil {
			return err
		}
	}
	return nil
}
