package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/stats"
)

// TrafficBar is one bar of Figures 3/4: global bus traffic (occupancy) of
// a configuration split by transaction class, normalized to the largest
// bar of the same application (the paper normalizes each application's
// group to 100%).
type TrafficBar struct {
	App          string
	ProcsPerNode int
	MP           string
	AMWays       int
	// Normalized segments (fractions of the application's max bar).
	Read, Write, Replace float64
	// TotalNs is the raw bus occupancy.
	TotalNs int64
}

// Total returns the normalized bar height.
func (b TrafficBar) Total() float64 { return b.Read + b.Write + b.Replace }

// TrafficFigure is Figure 3 (the eight consistently-helped applications)
// or Figure 4 (the six conflict-sensitive ones, with extra 8-way bars at
// 87% MP).
type TrafficFigure struct {
	Figure int
	Bars   []TrafficBar
}

// Figure3 produces traffic bars for the Figure 3 group: 1- and 4-processor
// nodes at 6/50/75/81/87% MP.
func (r *Runner) Figure3() (*TrafficFigure, error) {
	return r.traffic(3, apps.Group(apps.GroupFig3), false)
}

// Figure4 produces the same bars for the Figure 4 group, plus 8-way
// associativity bars at 87% MP for both clusterings.
func (r *Runner) Figure4() (*TrafficFigure, error) {
	return r.traffic(4, apps.Group(apps.GroupFig4), true)
}

// trafficSpec carries the bar labelling of one traffic job.
type trafficSpec struct {
	app  string
	ppn  int
	mp   string
	ways int
}

func (r *Runner) traffic(fig int, group []apps.App, eightWay bool) (*TrafficFigure, error) {
	var jobs []job
	var specs []trafficSpec
	for _, a := range group {
		for _, ppn := range []int{1, 4} {
			for _, mp := range config.Pressures {
				jobs = append(jobs, job{a.Name, config.Baseline(ppn, mp)})
				specs = append(specs, trafficSpec{a.Name, ppn, mp.Label, 4})
			}
			if eightWay {
				cfg := config.Baseline(ppn, config.MP87)
				cfg.AMWays = 8
				jobs = append(jobs, job{a.Name, cfg})
				specs = append(specs, trafficSpec{a.Name, ppn, "87%", 8})
			}
		}
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	f := &TrafficFigure{Figure: fig}
	for i, s := range specs {
		f.Bars = append(f.Bars, bar(s.app, s.ppn, s.mp, s.ways, results[i]))
	}
	// Normalize each application's contiguous group of bars.
	for lo := 0; lo < len(f.Bars); {
		hi := lo + 1
		for hi < len(f.Bars) && f.Bars[hi].App == f.Bars[lo].App {
			hi++
		}
		normalize(f.Bars[lo:hi])
		lo = hi
	}
	return f, nil
}

func bar(app string, ppn int, mp string, ways int, res *machine.Result) TrafficBar {
	return TrafficBar{
		App:          app,
		ProcsPerNode: ppn,
		MP:           mp,
		AMWays:       ways,
		Read:         float64(res.BusOccupancy[0]),
		Write:        float64(res.BusOccupancy[1]),
		Replace:      float64(res.BusOccupancy[2]),
		TotalNs:      int64(res.BusTotal()),
	}
}

// normalize scales one application's bars so its tallest bar is 1.
func normalize(bars []TrafficBar) {
	var max float64
	for _, b := range bars {
		if t := b.Read + b.Write + b.Replace; t > max {
			max = t
		}
	}
	if max == 0 {
		return
	}
	for i := range bars {
		bars[i].Read /= max
		bars[i].Write /= max
		bars[i].Replace /= max
	}
}

// Chart renders the figure as grouped stacked bars, one group per
// application, in the paper's visual style: read '#', write '=',
// replacement '+', each bar scaled to the application's tallest.
func (f *TrafficFigure) Chart(w io.Writer) error {
	fmt.Fprintf(w, "Figure %d: bus traffic per application (#=read  ==write  +=replace)\n", f.Figure)
	lastApp := ""
	for _, b := range f.Bars {
		if b.App != lastApp {
			fmt.Fprintf(w, "\n%s\n", b.App)
			lastApp = b.App
		}
		label := fmt.Sprintf("%dp %-4s", b.ProcsPerNode, b.MP)
		if b.AMWays != 4 {
			label = fmt.Sprintf("%dp %-4s %dway", b.ProcsPerNode, b.MP, b.AMWays)
		}
		bar := stats.StackedBar(50,
			[]float64{b.Read, b.Write, b.Replace},
			[]byte{'#', '=', '+'})
		fmt.Fprintf(w, "  %-13s |%-50s| %s\n", label, bar, stats.Pct(b.Total()))
	}
	return nil
}

// Write renders the figure.
func (f *TrafficFigure) Write(w io.Writer) error {
	fmt.Fprintf(w, "Figure %d: bus traffic by class, normalized per application\n", f.Figure)
	t := stats.NewTable("application", "cfg", "MP", "ways", "read", "write", "replace", "total", "")
	for _, b := range f.Bars {
		t.Row(b.App, fmt.Sprintf("%dp", b.ProcsPerNode), b.MP, b.AMWays,
			stats.Pct(b.Read), stats.Pct(b.Write), stats.Pct(b.Replace),
			stats.Pct(b.Total()), stats.Bar(b.Total(), 1, 30))
	}
	return t.Write(w)
}
