package experiments

// The fidelity-check study is the measured-error harness behind the
// sampled execution mode (machine.FidelitySampled, DESIGN.md §10): it
// runs a matrix in both fidelities and compares every headline metric —
// execution time, read node miss rate, bus occupancy and SLC miss ratio
// — against per-workload error bounds that were DECLARED from measured
// envelopes, not aspirational targets. A sampled-mode regression that
// pushes any workload outside its declared envelope fails the study
// (and `experiments -only fidelitycheck` exits nonzero), while the
// committed bounds document honestly how accurate the estimator
// actually is per workload.
//
// The bounds tell the real story of the estimator's error model:
// count metrics are exact up to interleaving (fast-forward walks the
// full cache/protocol state machine), so RNMr, bus occupancy and miss
// ratio stay within ~1% for most workloads; execution time is
// extrapolated from sampled contention calibration and carries 5-30%
// error on contention-heavy workloads (ocean, water, radix). Deeply
// saturated configurations (radix on the 64-processor ring) are outside
// the estimator's quasi-steady-state assumptions and carry
// correspondingly wide declared bounds. See DESIGN.md §10 for why the
// errors land where they do.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/stats"
)

// FidelityBound is one workload's declared error tolerance: Exec bounds
// the relative execution-time error, Counts bounds the RNMr, bus
// occupancy and SLC miss-ratio errors (all as fractions, 0.05 = 5%).
type FidelityBound struct {
	Exec   float64
	Counts float64
}

// fidelityBoundsBus16 declares the 16-processor bus envelope, measured
// across clustering degrees at 6% memory pressure on the default
// sampled geometry and widened by ~1.5x for headroom against future
// model drift (runs themselves are deterministic). Exec errors track
// contention: near-uncontended kernels (lu, barnes) hold a few percent
// while bursty barrier- or saturation-bound ones (ocean, cholesky,
// water) sit at 20-45%. Count metrics are usually sub-1% but not
// universally: lock-migratory workloads at higher clustering (water,
// volrend) are interleaving-sensitive — fast-forward's approximate
// timing reorders invalidations, which changes real miss counts — and
// carry 7-25% count bounds.
var fidelityBoundsBus16 = map[string]FidelityBound{
	"barnes":    {Exec: 0.12, Counts: 0.02},
	"cholesky":  {Exec: 0.40, Counts: 0.10},
	"fft":       {Exec: 0.10, Counts: 0.025},
	"fmm":       {Exec: 0.18, Counts: 0.03},
	"lu-c":      {Exec: 0.12, Counts: 0.005},
	"lu-n":      {Exec: 0.10, Counts: 0.005},
	"ocean-c":   {Exec: 0.45, Counts: 0.02},
	"ocean-n":   {Exec: 0.45, Counts: 0.02},
	"radiosity": {Exec: 0.30, Counts: 0.05},
	"radix":     {Exec: 0.20, Counts: 0.01},
	"raytrace":  {Exec: 0.30, Counts: 0.03},
	"volrend":   {Exec: 0.10, Counts: 0.07},
	"water-n2":  {Exec: 0.12, Counts: 0.25},
	"water-sp":  {Exec: 0.25, Counts: 0.12},
}

// fidelityBoundsRing64 declares the 64-processor ring-of-clusters
// envelope. The ring runs far deeper into saturation (calibrated
// contention factors of 10-30x against 1-5x on the bus), so execution
// bounds are wider; radix saturates the ring outright — arrival rate
// exceeds service rate, the quasi-steady-state premise of window
// calibration fails, and its declared bound records that the estimate
// is little better than an order-of-magnitude check there.
var fidelityBoundsRing64 = map[string]FidelityBound{
	"barnes":    {Exec: 0.25, Counts: 0.02},
	"cholesky":  {Exec: 0.30, Counts: 0.06},
	"fft":       {Exec: 0.50, Counts: 0.01},
	"fmm":       {Exec: 0.35, Counts: 0.01},
	"lu-c":      {Exec: 0.15, Counts: 0.005},
	"lu-n":      {Exec: 0.15, Counts: 0.005},
	"ocean-c":   {Exec: 0.30, Counts: 0.04},
	"ocean-n":   {Exec: 0.80, Counts: 0.08},
	"radiosity": {Exec: 0.50, Counts: 0.02},
	"radix":     {Exec: 5.50, Counts: 0.01},
	"raytrace":  {Exec: 0.45, Counts: 0.08},
	"volrend":   {Exec: 0.40, Counts: 0.01},
	"water-n2":  {Exec: 0.35, Counts: 0.13},
	"water-sp":  {Exec: 0.40, Counts: 0.03},
}

// FidelityRow compares one configuration's sampled run against its
// exact twin.
type FidelityRow struct {
	App string
	PPN int
	// Relative errors of the sampled run against the exact run.
	ExecErr, RNMrErr, BusErr, MissErr float64
	// Windows and Coverage describe the sampled run's geometry as
	// executed (both deterministic: they depend only on simulated time).
	Windows  int
	Coverage float64
	// Bound is the workload's declared envelope; Pass is whether every
	// error stayed inside it.
	Bound FidelityBound
	Pass  bool
}

// FidelityCheck is the study result: the row matrix, the overall
// verdict, and the wall-clock cost of each fidelity (host time; not
// part of the deterministic table).
type FidelityCheck struct {
	Rows []FidelityRow
	Pass bool
	// ExactWall and SampledWall are the wall-clock durations of the two
	// run batches. Meaningful only when the runner has not already
	// memoized the runs (a fresh `experiments -only fidelitycheck`).
	ExactWall, SampledWall time.Duration
}

// fidelityQuickApps is the CI subset: one kernel per contention regime
// (near-uncontended, AM-bound, barrier-bursty, bus-saturated,
// lock-serialized).
var fidelityQuickApps = []string{"lu-c", "fft", "ocean-c", "radix", "water-sp"}

// FidelityCheck runs the Figure 2 matrix (all applications at 6% memory
// pressure across clustering degrees, on the paper's 16-processor bus)
// in both fidelities and checks the sampled run of every point against
// the workload's declared error envelope. quick restricts the matrix to
// a representative application subset at clustering 1 and 4 — the CI
// variant.
func (r *Runner) FidelityCheck(quick bool) (*FidelityCheck, error) {
	names := make([]string, 0, len(apps.Registry))
	ppns := []int{1, 2, 4}
	if quick {
		names = append(names, fidelityQuickApps...)
		ppns = []int{1, 4}
	} else {
		for _, a := range apps.Registry {
			names = append(names, a.Name)
		}
	}
	var exact, sampled []job
	for _, name := range names {
		for _, ppn := range ppns {
			cfg := config.Baseline(ppn, config.MP6)
			cfg.Procs = 16
			cfg.Fidelity = config.Fidelity{Mode: machine.FidelityExact}
			exact = append(exact, job{name, cfg})
			cfg.Fidelity = config.Fidelity{Mode: machine.FidelitySampled}
			sampled = append(sampled, job{name, cfg})
		}
	}
	t0 := time.Now()
	eres, err := r.runAll(exact)
	if err != nil {
		return nil, err
	}
	tExact := time.Since(t0)
	t0 = time.Now()
	sres, err := r.runAll(sampled)
	if err != nil {
		return nil, err
	}
	f := &FidelityCheck{Pass: true, ExactWall: tExact, SampledWall: time.Since(t0)}
	for i := range exact {
		row := fidelityCompare(exact[i].app, exact[i].cfg.ProcsPerNode,
			eres[i], sres[i], fidelityBoundsBus16[exact[i].app])
		f.Rows = append(f.Rows, row)
		if !row.Pass {
			f.Pass = false
		}
	}
	return f, nil
}

// fidelityCompare builds one row from an exact/sampled result pair.
func fidelityCompare(app string, ppn int, exact, sampled *machine.Result, bound FidelityBound) FidelityRow {
	row := FidelityRow{
		App:     app,
		PPN:     ppn,
		ExecErr: relErr(float64(sampled.ExecTime), float64(exact.ExecTime)),
		RNMrErr: relErr(sampled.RNMr(), exact.RNMr()),
		BusErr:  relErr(float64(sampled.BusTotal()), float64(exact.BusTotal())),
		MissErr: relErr(sampled.MissRatio(), exact.MissRatio()),
		Bound:   bound,
	}
	if rep := sampled.Fidelity; rep != nil {
		row.Windows = rep.Windows
		row.Coverage = rep.Coverage
	}
	row.Pass = abs(row.ExecErr) <= bound.Exec &&
		abs(row.RNMrErr) <= bound.Counts &&
		abs(row.BusErr) <= bound.Counts &&
		abs(row.MissErr) <= bound.Counts
	return row
}

// relErr is the signed relative error of got against want; a zero want
// maps to 0 when got is also zero and 1 otherwise.
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return (got - want) / want
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteTable renders the deterministic comparison table (everything in
// it depends only on simulated time, so the fidelity golden test can
// pin these bytes).
func (f *FidelityCheck) WriteTable(w io.Writer) error {
	t := stats.NewTable("application", "ppn", "exec err", "rnmr err", "bus err", "miss err", "win", "cov", "bound", "ok")
	for _, r := range f.Rows {
		ok := "ok"
		if !r.Pass {
			ok = "FAIL"
		}
		t.Row(r.App, r.PPN,
			fmt.Sprintf("%+.2f%%", r.ExecErr*100),
			fmt.Sprintf("%+.2f%%", r.RNMrErr*100),
			fmt.Sprintf("%+.2f%%", r.BusErr*100),
			fmt.Sprintf("%+.2f%%", r.MissErr*100),
			r.Windows,
			fmt.Sprintf("%.3f", r.Coverage),
			fmt.Sprintf("%.0f%%/%.1f%%", r.Bound.Exec*100, r.Bound.Counts*100),
			ok)
	}
	return t.Write(w)
}

// Write renders the study for the CLI: the comparison table plus the
// wall-clock speedup and the verdict.
func (f *FidelityCheck) Write(w io.Writer) error {
	fmt.Fprintln(w, "Fidelity check: sampled fast-forward vs exact, Figure 2 matrix")
	if err := f.WriteTable(w); err != nil {
		return err
	}
	if f.SampledWall > 0 {
		fmt.Fprintf(w, "wall clock: exact %v, sampled %v (%.2fx)\n",
			f.ExactWall.Round(time.Millisecond), f.SampledWall.Round(time.Millisecond),
			float64(f.ExactWall)/float64(f.SampledWall))
	}
	if f.Pass {
		fmt.Fprintln(w, "PASS: every point inside its declared error envelope")
	} else {
		fmt.Fprintln(w, "FAIL: points outside their declared error envelope")
	}
	return nil
}
