package experiments

import (
	"strings"
	"testing"
)

// The Figure 2 claim: clustering reduces the read node miss rate for every
// application, 4-way more than 2-way on average.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure in -short mode")
	}
	r := NewRunner()
	f, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 14 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, row := range f.Rows {
		if !(row.Rel2 < 1.0) || !(row.Rel4 < 1.0) {
			t.Errorf("%s: clustering did not reduce RNMr (%v, %v)", row.App, row.Rel2, row.Rel4)
		}
	}
	if !(f.Mean4 < f.Mean2) || !(f.Mean2 < 1) {
		t.Fatalf("means out of order: 2-way %v, 4-way %v", f.Mean2, f.Mean4)
	}
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Fatal("rendering broken")
	}
}

// Traffic figures: per-application normalization puts the tallest bar at
// 100%, and 6%-MP bars carry no replacement traffic.
func TestTrafficFigureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure in -short mode")
	}
	r := NewRunner()
	f, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	perApp := map[string]float64{}
	for _, b := range f.Bars {
		if b.MP == "6%" && b.Replace != 0 {
			t.Errorf("%s %dp at 6%%: replacement traffic %v", b.App, b.ProcsPerNode, b.Replace)
		}
		if tot := b.Total(); tot > perApp[b.App] {
			perApp[b.App] = tot
		}
	}
	if len(perApp) != 8 {
		t.Fatalf("figure 3 covers 8 applications, got %d", len(perApp))
	}
	for app, max := range perApp {
		if max < 0.999 || max > 1.001 {
			t.Errorf("%s: max bar %v, want 1.0", app, max)
		}
	}
	// Clustering reduces total (raw) traffic at 81% MP for the fig-3
	// group — the paper's consistent-winners group.
	raw := map[string][2]int64{}
	for _, b := range f.Bars {
		if b.MP == "81%" {
			v := raw[b.App]
			if b.ProcsPerNode == 1 {
				v[0] = b.TotalNs
			} else {
				v[1] = b.TotalNs
			}
			raw[b.App] = v
		}
	}
	for app, v := range raw {
		if v[1] >= v[0] {
			t.Errorf("%s: 4p traffic %d >= 1p traffic %d at 81%% MP", app, v[1], v[0])
		}
	}
}

func TestFigure4EightWayBars(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure in -short mode")
	}
	r := NewRunner()
	f, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	eight := 0
	for _, b := range f.Bars {
		if b.AMWays == 8 {
			eight++
			if b.MP != "87%" {
				t.Errorf("8-way bar at %s MP", b.MP)
			}
		}
	}
	if eight != 12 { // 6 applications x {1p, 4p}
		t.Fatalf("8-way bars = %d, want 12", eight)
	}
	// The paper's conflict-miss explanation: at 87% MP, the 8-way AMs
	// carry less replacement traffic than the 4-way ones for the
	// unclustered machine, for every app in this group.
	repl := map[string][2]float64{}
	for _, b := range f.Bars {
		if b.MP != "87%" || b.ProcsPerNode != 1 {
			continue
		}
		v := repl[b.App]
		if b.AMWays == 4 {
			v[0] = b.Replace
		} else {
			v[1] = b.Replace
		}
		repl[b.App] = v
	}
	for app, v := range repl {
		if v[1] > v[0] {
			t.Errorf("%s: 8-way replacement traffic %.3f exceeds 4-way %.3f at 87%% MP",
				app, v[1], v[0])
		}
	}
}

func TestTable1(t *testing.T) {
	r := NewRunner()
	rows, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.OurWSKB == 0 || row.Reads == 0 {
			t.Fatalf("%s: empty row", row.App)
		}
	}
	var sb strings.Builder
	if err := WriteTable1(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "radix") {
		t.Fatal("table rendering broken")
	}
}

// Figure 5 shape: raising the pressure costs time, clustering recovers
// most of it, and the paper's named loser (LU-non) loses here too.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure in -short mode")
	}
	r := NewRunner()
	f, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Bars) != 42 {
		t.Fatalf("bars = %d, want 14x3", len(f.Bars))
	}
	exec := map[string]map[string]int64{}
	for _, b := range f.Bars {
		if exec[b.App] == nil {
			exec[b.App] = map[string]int64{}
		}
		exec[b.App][b.Label] = b.ExecNs
	}
	slower, recovered := 0, 0
	for app, e := range exec {
		if e["1p@81%"] > e["1p@50%"] {
			slower++
		}
		if e["4p@81%"] < e["1p@81%"] {
			recovered++
		}
		if app == "lu-n" && e["4p@81%"] < e["1p@81%"] {
			t.Error("lu-n should lose to node contention (paper's one exception)")
		}
	}
	if slower < 10 {
		t.Errorf("only %d/14 apps slower at 81%% than 50%% MP", slower)
	}
	if recovered < 9 {
		t.Errorf("only %d/14 apps recovered by clustering (paper: 13)", recovered)
	}
	var chart, table strings.Builder
	if err := f.Chart(&chart); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart.String(), "lu-n") || !strings.Contains(table.String(), "4p@81%") {
		t.Fatal("rendering broken")
	}
}

// The provisioned-node sensitivity: with 4x DRAM and 2x NC bandwidth,
// clustering is at par or better essentially everywhere (paper §4.3).
func TestSensitivityNodeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	r := NewRunner()
	s, err := r.SensitivityNode()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Rows {
		if row.Slowdown > 0.05 {
			t.Errorf("%s: %+.1f%% slowdown despite provisioned node", row.App, 100*row.Slowdown)
		}
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "4p vs 1p") {
		t.Fatal("rendering broken")
	}
}

// Halving the bus bandwidth must not make clustering less attractive for
// any application (paper §4.3).
func TestSensitivityBusShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	r := NewRunner()
	ss, err := r.SensitivityBus()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss[0].Rows {
		full, half := ss[0].Rows[i], ss[1].Rows[i]
		if half.Slowdown > full.Slowdown+0.01 {
			t.Errorf("%s: clustering less attractive with a slower bus (%+.1f%% vs %+.1f%%)",
				full.App, 100*half.Slowdown, 100*full.Slowdown)
		}
	}
}

func TestRunnerMemoization(t *testing.T) {
	r := NewRunner()
	cfg := baselineForTest()
	a, err := r.Run("fft", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("fft", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs must be memoized (same pointer)")
	}
}
