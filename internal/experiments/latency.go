package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
)

// LatencyRow is one configuration's read-latency distribution over bands
// anchored at the hierarchy's contention-free latencies (a band contains
// both its level's clean hits and faster levels' queued accesses). The
// tail and p99 show the Figure 5 mechanism: clustering trades long remote
// latencies for moderate attraction-memory ones.
type LatencyRow struct {
	App    string
	Label  string
	L1     float64 // exactly 0 ns
	SLC    float64 // (0, 32] ns
	AM     float64 // (32, 148] ns
	Remote float64 // (148, 332] ns
	Queued float64 // > 332 ns
	P99    int64   // 99th percentile bucket bound (-1 = overflow)
}

// Latency measures the distribution at 81% MP (2x DRAM bandwidth, the
// Figure 5 machine) for single-processor and 4-processor nodes.
func (r *Runner) Latency() ([]LatencyRow, error) {
	ppns := []int{1, 4}
	var jobs []job
	for _, a := range apps.Registry {
		for _, ppn := range ppns {
			jobs = append(jobs, job{a.Name, config.Figure5(ppn, config.MP81)})
		}
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	var rows []LatencyRow
	for ai, a := range apps.Registry {
		for pi, ppn := range ppns {
			res := results[ai*len(ppns)+pi]
			h := &res.ReadLatency
			total := float64(h.Total())
			if total == 0 {
				total = 1
			}
			frac := func(lo, hi int) float64 {
				var n int64
				for i := lo; i <= hi && i < len(h.Counts); i++ {
					n += h.Counts[i]
				}
				return float64(n) / total
			}
			rows = append(rows, LatencyRow{
				App:    a.Name,
				Label:  fmt.Sprintf("%dp", ppn),
				L1:     frac(0, 0),
				SLC:    frac(1, 1),
				AM:     frac(2, 2),
				Remote: frac(3, 3),
				Queued: frac(4, len(h.Counts)-1),
				P99:    h.Quantile(0.99),
			})
		}
	}
	return rows, nil
}

// WriteLatency renders the distribution table.
func WriteLatency(w io.Writer, rows []LatencyRow) error {
	fmt.Fprintln(w, "Read-latency distribution at 81% MP (2x DRAM bandwidth):")
	fmt.Fprintln(w, "fraction of reads per latency band (bands anchored at the")
	fmt.Fprintln(w, "contention-free level latencies; queued accesses spill rightward)")
	t := stats.NewTable("application", "cfg", "0ns", "(0,32]", "(32,148]", "(148,332]", ">332ns", "p99(ns)")
	for _, r := range rows {
		p99 := fmt.Sprint(r.P99)
		if r.P99 < 0 {
			p99 = ">21248"
		}
		t.Row(r.App, r.Label, stats.Pct(r.L1), stats.Pct(r.SLC), stats.Pct(r.AM),
			stats.Pct(r.Remote), stats.Pct(r.Queued), p99)
	}
	return t.Write(w)
}
