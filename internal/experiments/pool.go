package experiments

import (
	"sync"

	"repro/internal/config"
	"repro/internal/machine"
)

// job identifies one simulation of a driver's run matrix.
type job struct {
	app string
	cfg config.Machine
}

// runAll executes a run matrix on the worker pool: every job fans out
// across up to Jobs workers, with each app's trace generated lazily by
// the first job that needs it (the singleflight cell makes same-app jobs
// share the one generation, and different apps' generations overlap
// across workers). Results come back in input order; if any job fails,
// outstanding work is cancelled and the error of the earliest failing
// job is returned, exactly as the sequential engine would report it.
//
// Trace retention is bounded by refcounting: before dispatch the matrix
// pins each app once per job that needs it, and each job (or the
// error-path sweep for undispatched jobs) releases one pin when done.
// An app's cached trace is evicted as soon as its global pin count
// reaches zero, so a full driver run never retains every workload's
// trace simultaneously — and the cache is empty once all matrices
// complete.
func (r *Runner) runAll(jobs []job) ([]*machine.Result, error) {
	needs := make(map[traceKey]int, len(jobs))
	for _, j := range jobs {
		needs[r.jobTrace(j)]++
	}
	r.pinTraces(needs)
	results := make([]*machine.Result, len(jobs))
	ran := make([]bool, len(jobs))
	err := r.forEach(len(jobs), func(i int) error {
		ran[i] = true
		defer r.releaseTrace(r.jobTrace(jobs[i]), 1)
		res, err := r.Run(jobs[i].app, jobs[i].cfg)
		results[i] = res
		return err
	})
	// Jobs never dispatched (early stop on error) still hold pins.
	for i, r2 := range ran {
		if !r2 {
			r.releaseTrace(r.jobTrace(jobs[i]), 1)
		}
	}
	if err != nil {
		return nil, err
	}
	return results, nil
}

// jobTrace resolves the trace a job will simulate against, applying the
// same machine-size default Run does.
func (r *Runner) jobTrace(j job) traceKey {
	procs := j.cfg.Procs
	if procs == 0 {
		procs = r.Procs
	}
	return traceKey{app: j.app, procs: procs}
}

// pinTraces registers a matrix's per-trace usage counts before dispatch,
// so a trace shared with a concurrently running matrix cannot be evicted
// from under it.
func (r *Runner) pinTraces(needs map[traceKey]int) {
	r.mu.Lock()
	if r.tracePins == nil {
		r.tracePins = make(map[traceKey]int)
	}
	for key, n := range needs {
		r.tracePins[key] += n
	}
	r.mu.Unlock()
}

// releaseTrace drops n pins for a trace, evicting it from the cache when
// the global pin count reaches zero. Unpinned traces (direct Trace
// callers) are never evicted.
func (r *Runner) releaseTrace(key traceKey, n int) {
	r.mu.Lock()
	if rem, ok := r.tracePins[key]; ok {
		rem -= n
		if rem <= 0 {
			delete(r.tracePins, key)
			delete(r.traces, key)
		} else {
			r.tracePins[key] = rem
		}
	}
	r.mu.Unlock()
}

// forEach runs f(0..n-1) on up to Jobs workers. Indices are dispatched in
// order; after the first failure no new index is dispatched, already
// running calls finish, and the error of the smallest failing index is
// returned. Because dispatch order is a prefix of input order, that index
// is the same one the sequential engine would have failed on.
func (r *Runner) forEach(n int, f func(i int) error) error {
	workers := r.jobs()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	idx := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := f(i); err != nil {
					errs[i] = err
					stopOnce.Do(func() { close(stop) })
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-stop:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
