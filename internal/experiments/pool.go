package experiments

import (
	"sync"

	"repro/internal/config"
	"repro/internal/machine"
)

// job identifies one simulation of a driver's run matrix.
type job struct {
	app string
	cfg config.Machine
}

// runAll executes a run matrix on the worker pool: traces are
// pre-generated in parallel first (the kernels really compute, so trace
// construction is worth overlapping too), then every job fans out across
// up to Jobs workers. Results come back in input order; if any job fails,
// outstanding work is cancelled and the error of the earliest failing job
// is returned, exactly as the sequential engine would report it.
func (r *Runner) runAll(jobs []job) ([]*machine.Result, error) {
	names := make([]string, 0, len(jobs))
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if !seen[j.app] {
			seen[j.app] = true
			names = append(names, j.app)
		}
	}
	if err := r.pregenTraces(names); err != nil {
		return nil, err
	}
	results := make([]*machine.Result, len(jobs))
	err := r.forEach(len(jobs), func(i int) error {
		res, err := r.Run(jobs[i].app, jobs[i].cfg)
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// pregenTraces generates the named workloads' traces in parallel (they
// are memoized, so later Run calls reuse them). The names should be in
// first-use order so the earliest failing workload wins error reporting.
func (r *Runner) pregenTraces(names []string) error {
	return r.forEach(len(names), func(i int) error {
		_, err := r.Trace(names[i])
		return err
	})
}

// forEach runs f(0..n-1) on up to Jobs workers. Indices are dispatched in
// order; after the first failure no new index is dispatched, already
// running calls finish, and the error of the smallest failing index is
// returned. Because dispatch order is a prefix of input order, that index
// is the same one the sequential engine would have failed on.
func (r *Runner) forEach(n int, f func(i int) error) error {
	workers := r.jobs()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	idx := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := f(i); err != nil {
					errs[i] = err
					stopOnce.Do(func() { close(stop) })
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-stop:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
