package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
)

// Cross-topology equivalence harness: a ring of one cluster is a single
// snooping bus with an unused ring attached, and the ring fabric mirrors
// the bus fabric's phase counts and attributions exactly, so the two
// topologies must agree on every workload — not just on reference counts
// and miss classification (the correctness contract) but, because the
// mirroring is exact, on execution time too. Timing equivalence beyond
// the 1-cluster case does NOT hold (multi-cluster rings pay hop latency
// and split bus arbitration); DESIGN.md §9 documents the divergence.

// busRingPair returns the bus configuration and its 1-cluster,
// zero-link-latency ring twin.
func busRingPair(ppn int, mp config.Pressure) (config.Machine, config.Machine) {
	bus := config.Baseline(ppn, mp)
	ring := bus
	ring.Topology = "ring"
	ring.Clusters = 1
	ring.LinkLatencyNs = -1 // explicit zero
	return bus, ring
}

// All 14 workloads, simulated at the paper's hardest pressure point,
// produce identical reference counts, miss classifications and protocol
// counter totals on the bus and on the degenerate ring.
func TestRingBusEquivalenceAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload matrix in -short mode")
	}
	r := NewRunner()
	r.Procs = 8
	busCfg, ringCfg := busRingPair(2, config.MP87)
	for _, app := range Apps() {
		busRes, err := r.Run(app, busCfg)
		if err != nil {
			t.Fatal(err)
		}
		ringRes, err := r.Run(app, ringCfg)
		if err != nil {
			t.Fatal(err)
		}
		// Protocol counters cover the full miss classification: reads,
		// writes, read/write misses, upgrades, updates, replacement
		// outcomes and the 4x4 transition matrix.
		if busRes.Protocol != ringRes.Protocol {
			t.Errorf("%s: protocol counters diverge\nbus:  %+v\nring: %+v",
				app, busRes.Protocol, ringRes.Protocol)
		}
		if busRes.Reads != ringRes.Reads || busRes.ReadNodeMisses != ringRes.ReadNodeMisses {
			t.Errorf("%s: reference counts diverge: bus (reads=%d nodeMisses=%d), ring (reads=%d nodeMisses=%d)",
				app, busRes.Reads, busRes.ReadNodeMisses, ringRes.Reads, ringRes.ReadNodeMisses)
		}
		if busRes.RNMr() != ringRes.RNMr() {
			t.Errorf("%s: RNMr %v (bus) != %v (ring)", app, busRes.RNMr(), ringRes.RNMr())
		}
		if busRes.ExecTime != ringRes.ExecTime {
			t.Errorf("%s: exec %v (bus) != %v (ring)", app, busRes.ExecTime, ringRes.ExecTime)
		}
	}
}

// ring64Cfgs is the 64-processor ring matrix the determinism test runs:
// 16 clusters of 2 nodes, at a moderate and at the hardest pressure.
func ring64Cfgs() []config.Machine {
	var cfgs []config.Machine
	for _, mp := range []config.Pressure{config.MP50, config.MP87} {
		c := config.Baseline(2, mp)
		c.Procs = 64
		c.ScalePressure = true
		c.Topology = "ring"
		c.Clusters = 16
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// Worker-pool invariance on the hierarchical topology: the full Result
// set of a 64-processor ring matrix is deep-equal between a sequential
// runner and an 8-worker runner. The ring fabric claims many resources
// (cluster buses, links, directories) per transaction, so any
// order-dependence in its accounting would surface here.
func TestRing64JobsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("64-processor matrix in -short mode")
	}
	apps := []string{"fft", "radix", "water-n2"}
	cfgs := ring64Cfgs()
	run := func(jobs int) []InspectRow {
		r := NewRunner()
		r.Procs = 64
		r.Jobs = jobs
		rows, err := r.Inspect(apps, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		for i := range seq {
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Errorf("row %d (%s %s) differs between -jobs 1 and -jobs 8",
					i, seq[i].App, seq[i].Label)
			}
		}
		t.Fatal("64-processor ring matrix is jobs-dependent")
	}
}

// The scaled study's golden uses reduced machine sizes (16 and 32
// processors) so the test stays tractable while exercising the same
// code path — three clustering degrees, five pressures, ring geometry
// and scaled pressure per size — as the full 64/128 run.
func TestGoldenFigure2Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled matrix in -short mode")
	}
	r := NewRunner()
	r.Procs = 8 // unused by the spec'd sizes; kept small for safety
	f, err := r.Figure2Scaled(ScaledSpec{Sizes: []int{16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2scaled.golden", sb.String())
}
