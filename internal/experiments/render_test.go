package experiments

import (
	"strings"
	"testing"
)

// Rendering unit tests on synthetic data (no simulation runs).

func TestSensWrite(t *testing.T) {
	s := &Sens{
		Title: "a study",
		Note:  "a note",
		Rows: []SensRow{
			{App: "fft", Exec1Ns: 100, Exec4Ns: 150, Slowdown: 0.5},
			{App: "radix", Exec1Ns: 100, Exec4Ns: 80, Slowdown: -0.2},
		},
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a study") || !strings.Contains(out, "a note") {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "+50.0%") {
		t.Fatalf("positive slowdown formatting: %q", out)
	}
	if !strings.Contains(out, "-20.0%") {
		t.Fatalf("negative slowdown formatting: %q", out)
	}
}

func TestWritePressureRendering(t *testing.T) {
	rows := []PressureRow{{App: "fft", Exec6Ns: 100, Exec50Ns: 104, Gain: 0.042}}
	var sb strings.Builder
	if err := WritePressure(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "4.2%") {
		t.Fatalf("output %q", sb.String())
	}
}

func TestTrafficChartRendering(t *testing.T) {
	f := &TrafficFigure{Figure: 3, Bars: []TrafficBar{
		{App: "fft", ProcsPerNode: 1, MP: "6%", AMWays: 4, Read: 0.5, Write: 0.2},
		{App: "fft", ProcsPerNode: 1, MP: "87%", AMWays: 8, Read: 0.3, Write: 0.1, Replace: 0.4},
	}}
	var sb strings.Builder
	if err := f.Chart(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "8way") {
		t.Fatalf("8-way label missing: %q", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "+") {
		t.Fatal("stacked segments missing")
	}
}

func TestLatencyWriteOverflowBucket(t *testing.T) {
	rows := []LatencyRow{{App: "x", Label: "1p", L1: 1, P99: -1}}
	var sb strings.Builder
	if err := WriteLatency(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ">21248") {
		t.Fatalf("overflow p99 formatting: %q", sb.String())
	}
}
