package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Runner generates workload traces once and memoizes simulation results,
// since the figures share many configurations. It is safe for concurrent
// use: both caches are singleflight maps, so two goroutines asking for
// the same trace or run wait on one computation instead of racing.
type Runner struct {
	// Procs is the machine size (the paper's is 16).
	Procs int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Jobs bounds the number of concurrent simulations a run matrix fans
	// out to; 0 means runtime.NumCPU().
	Jobs int
	// Ctx, when non-nil, bounds every simulation this runner executes:
	// cancelling it makes in-flight machine runs stop between scheduler
	// steps and surface the context's error. Set before first use (the
	// comasrv daemon threads per-job contexts through here).
	Ctx context.Context
	// OnSimulate, when non-nil, is invoked once per simulation actually
	// executed (memoized hits do not call it) — the seam the
	// singleflight-deduplication tests and the comasrv cache-efficiency
	// counters hang off.
	OnSimulate func(app string, cfg config.Machine)
	// SinkFactory, when non-nil, supplies an observability sink for each
	// machine this runner builds (instrumentation is proven not to
	// perturb results; see internal/obs). The factory is called from
	// worker goroutines, so it — and the sinks it returns, if shared —
	// must be safe for concurrent use.
	SinkFactory func(app string, cfg config.Machine) obs.Sink
	// SampleWindow, when positive, enables windowed counter sampling on
	// every machine this runner builds: results carry a Timeline of
	// per-window deltas (see obs.Sampler). Sampling is deterministic —
	// it observes only simulated time — so memoized results and -jobs
	// invariance are unaffected.
	SampleWindow engine.Time
	// Fidelity is applied to every configuration that does not pin its
	// own (the -fidelity flag of cmd/experiments and cmd/sweep lands
	// here); the zero value leaves configurations exact. The resolved
	// fidelity is part of the memo key, so one runner can hold exact and
	// sampled results side by side without collisions.
	Fidelity config.Fidelity
	// WrapSimulate, when non-nil, brackets each simulation actually
	// executed (memoized hits are not bracketed): it is called at start
	// and the closure it returns is called with the simulation's error
	// when it finishes. The seam comasrv's span tracing hangs off.
	// Called from worker goroutines; must be safe for concurrent use.
	WrapSimulate func(app string, cfg config.Machine) func(err error)

	mu      sync.Mutex
	traces  map[traceKey]*traceCell
	results map[runKey]*resultCell
	// tracePins counts outstanding matrix jobs per trace; runAll pins
	// before dispatch and releases as jobs finish, evicting the cached
	// trace at zero so driver runs don't retain every workload at once.
	tracePins map[traceKey]int
}

type runKey struct {
	app string
	cfg config.Machine
}

// traceKey identifies a generated trace: scaled drivers run the same
// workload at several machine sizes, and a trace is only valid for the
// processor count it was generated for.
type traceKey struct {
	app   string
	procs int
}

// traceCell and resultCell are singleflight slots: the first goroutine to
// claim the cell computes under its Once while latecomers block on the
// same Once and then read the settled value.
type traceCell struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

type resultCell struct {
	once sync.Once
	res  *machine.Result
	err  error
}

// NewRunner returns a Runner for the paper's 16-processor machine.
func NewRunner() *Runner {
	return &Runner{Procs: 16}
}

// ctx resolves the runner's simulation context.
func (r *Runner) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// jobs resolves the worker-pool width.
func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.NumCPU()
}

func (r *Runner) traceCell(key traceKey) *traceCell {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traces == nil {
		r.traces = make(map[traceKey]*traceCell)
	}
	c, ok := r.traces[key]
	if !ok {
		c = new(traceCell)
		r.traces[key] = c
	}
	return c
}

func (r *Runner) resultCell(key runKey) *resultCell {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.results == nil {
		r.results = make(map[runKey]*resultCell)
	}
	c, ok := r.results[key]
	if !ok {
		c = new(resultCell)
		r.results[key] = c
	}
	return c
}

// Trace returns the (cached) reference trace of a workload at the
// runner's machine size.
func (r *Runner) Trace(app string) (*trace.Trace, error) {
	return r.TraceAt(app, r.Procs)
}

// TraceAt returns the (cached) trace of a workload at an explicit
// machine size (scaled drivers run several sizes through one runner).
func (r *Runner) TraceAt(app string, procs int) (*trace.Trace, error) {
	c := r.traceCell(traceKey{app: app, procs: procs})
	c.once.Do(func() {
		a, err := apps.ByName(app)
		if err != nil {
			c.err = err
			return
		}
		c.tr = a.Generate(procs)
	})
	return c.tr, c.err
}

// Run simulates one configuration, memoized and deduplicated: concurrent
// calls with the same key share one simulation. A config that does not
// pin its own processor count inherits the runner's machine size, so
// smaller-than-paper runners (tests use 8 processors) stay consistent
// with their traces.
func (r *Runner) Run(app string, cfg config.Machine) (*machine.Result, error) {
	if cfg.Procs == 0 {
		cfg.Procs = r.Procs
	}
	if cfg.Fidelity == (config.Fidelity{}) {
		cfg.Fidelity = r.Fidelity
	}
	c := r.resultCell(runKey{app: app, cfg: cfg})
	c.once.Do(func() {
		c.res, c.err = r.simulate(app, cfg)
	})
	return c.res, c.err
}

// RunTrace simulates one configuration over a caller-supplied trace
// instead of a registered workload — the comasrv trace-ingestion path
// (POST /v1/simulate with "trace_ref"). Results are not memoized here:
// the daemon's content-addressed store already deduplicates by request
// key, and a CLI caller holds the trace itself. cfg.Procs must match the
// trace. The simulation seams (OnSimulate, WrapSimulate, SinkFactory,
// sampling, fidelity default) behave exactly as in Run, with the app
// label "trace:<name>". Uploaded traces are validated before they get
// here, but as defense in depth a panic out of the machine — which would
// kill the daemon from an async job's goroutine — is converted into an
// error.
func (r *Runner) RunTrace(tr *trace.Trace, cfg config.Machine) (res *machine.Result, err error) {
	if cfg.Procs == 0 {
		cfg.Procs = tr.Procs
	}
	if cfg.Procs != tr.Procs {
		return nil, fmt.Errorf("trace:%s: trace has %d processors but the configuration asks for %d",
			tr.Name, tr.Procs, cfg.Procs)
	}
	if cfg.Fidelity == (config.Fidelity{}) {
		cfg.Fidelity = r.Fidelity
	}
	label := "trace:" + tr.Name
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("%s: simulation panic: %v", label, p)
		}
	}()
	if r.OnSimulate != nil {
		r.OnSimulate(label, cfg)
	}
	if r.WrapSimulate != nil {
		finish := r.WrapSimulate(label, cfg)
		defer func() { finish(err) }()
	}
	m, err := machine.New(cfg.Params(tr.WorkingSet))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", label, err)
	}
	if r.SinkFactory != nil {
		m.SetSink(r.SinkFactory(label, cfg))
	}
	if r.SampleWindow > 0 {
		m.EnableSampling(r.SampleWindow)
	}
	res, err = m.RunContext(r.ctx(), tr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", label, err)
	}
	m.Release()
	return res, nil
}

// simulate executes one run (no caching; Run wraps it in a cell).
func (r *Runner) simulate(app string, cfg config.Machine) (res *machine.Result, err error) {
	tr, err := r.TraceAt(app, cfg.Procs)
	if err != nil {
		return nil, err
	}
	if r.OnSimulate != nil {
		r.OnSimulate(app, cfg)
	}
	if r.WrapSimulate != nil {
		finish := r.WrapSimulate(app, cfg)
		defer func() { finish(err) }()
	}
	m, err := machine.New(cfg.Params(tr.WorkingSet))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app, err)
	}
	if r.SinkFactory != nil {
		m.SetSink(r.SinkFactory(app, cfg))
	}
	if r.SampleWindow > 0 {
		m.EnableSampling(r.SampleWindow)
	}
	res, err = m.RunContext(r.ctx(), tr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app, err)
	}
	m.Release() // Result is value-detached; recycle the tag arrays
	if r.Progress != nil {
		r.mu.Lock()
		fmt.Fprintf(r.Progress, "ran %-10s %dp/node mp=%-4s ways=%d dram=%.2g nc=%.2g bus=%.2g -> exec %v\n",
			app, cfg.ProcsPerNode, cfg.Pressure.Label, cfg.AMWays,
			cfg.DRAMBandwidth, cfg.NCBandwidth, cfg.BusBandwidth, res.ExecTime)
		r.mu.Unlock()
	}
	return res, nil
}
