// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (applications), Figure 2 (relative read node miss
// rates under clustering), Figures 3 and 4 (bus traffic by class across
// memory pressures), Figure 5 (execution-time breakdowns) and the Section
// 4.3 bandwidth sensitivity studies.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Runner generates workload traces once and memoizes simulation results,
// since the figures share many configurations.
type Runner struct {
	// Procs is the machine size (the paper's is 16).
	Procs int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	traces  map[string]*trace.Trace
	results map[runKey]*machine.Result
}

type runKey struct {
	app string
	cfg config.Machine
}

// NewRunner returns a Runner for the paper's 16-processor machine.
func NewRunner() *Runner {
	return &Runner{
		Procs:   16,
		traces:  make(map[string]*trace.Trace),
		results: make(map[runKey]*machine.Result),
	}
}

// Trace returns the (cached) reference trace of a workload.
func (r *Runner) Trace(app string) (*trace.Trace, error) {
	if tr, ok := r.traces[app]; ok {
		return tr, nil
	}
	a, err := apps.ByName(app)
	if err != nil {
		return nil, err
	}
	tr := a.Generate(r.Procs)
	r.traces[app] = tr
	return tr, nil
}

// Run simulates one configuration, memoized.
func (r *Runner) Run(app string, cfg config.Machine) (*machine.Result, error) {
	key := runKey{app: app, cfg: cfg}
	if res, ok := r.results[key]; ok {
		return res, nil
	}
	tr, err := r.Trace(app)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg.Params(tr.WorkingSet))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app, err)
	}
	res, err := m.Run(tr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app, err)
	}
	r.results[key] = res
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "ran %-10s %dp/node mp=%-4s ways=%d dram=%.2g nc=%.2g bus=%.2g -> exec %v\n",
			app, cfg.ProcsPerNode, cfg.Pressure.Label, cfg.AMWays,
			cfg.DRAMBandwidth, cfg.NCBandwidth, cfg.BusBandwidth, res.ExecTime)
	}
	return res, nil
}
