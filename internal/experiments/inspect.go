package experiments

import (
	"fmt"
	"io"

	"repro/internal/coma"
	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/stats"
)

// InspectRow is one (application, configuration) run's observability view:
// the full Result including per-resource utilization, queueing histograms
// and the protocol transition matrix.
type InspectRow struct {
	App   string
	Cfg   config.Machine
	Label string
	Res   *machine.Result
}

// CfgLabel renders a configuration compactly and unambiguously for table
// rows and CSV keys.
func CfgLabel(c config.Machine) string {
	s := fmt.Sprintf("%dp/node mp=%s %dway", c.ProcsPerNode, c.Pressure.Label, c.AMWays)
	if c.DRAMBandwidth != 1 {
		s += fmt.Sprintf(" dram=%gx", c.DRAMBandwidth)
	}
	if c.NCBandwidth != 1 {
		s += fmt.Sprintf(" nc=%gx", c.NCBandwidth)
	}
	if c.BusBandwidth != 1 {
		s += fmt.Sprintf(" bus=%gx", c.BusBandwidth)
	}
	if c.Topology == "ring" {
		s += fmt.Sprintf(" ring[c=%d]", c.Clusters)
		if c.LinkLatencyNs != 0 {
			s += fmt.Sprintf(" lat=%dns", c.LinkLatencyNs)
		}
	}
	if c.Fidelity.Sampled() {
		s += " sampled"
	}
	return s
}

// Inspect simulates the full apps x configs matrix on the worker pool and
// returns rows in application-major, configuration-minor order. Like every
// Runner matrix, aggregation happens after the pool barrier in input
// order, so the rows (and anything rendered from them) are identical for
// any Jobs setting.
func (r *Runner) Inspect(appNames []string, cfgs []config.Machine) ([]InspectRow, error) {
	var jobs []job
	for _, a := range appNames {
		for _, c := range cfgs {
			jobs = append(jobs, job{a, c})
		}
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]InspectRow, len(jobs))
	for i, j := range jobs {
		rows[i] = InspectRow{App: j.app, Cfg: j.cfg, Label: CfgLabel(j.cfg), Res: results[i]}
	}
	return rows, nil
}

// WriteUtilization renders per-resource utilization and queueing tables,
// one block per run.
func WriteUtilization(w io.Writer, rows []InspectRow) error {
	for _, row := range rows {
		fmt.Fprintf(w, "%s  %s  exec=%v\n", row.App, row.Label, row.Res.ExecTime)
		t := stats.NewTable("resource", "util", "busy(ns)", "claims", "wait(ns)", "mean wait", "wait distribution")
		for _, u := range row.Res.Resources {
			t.Row(u.Name, stats.Pct(u.Utilization(row.Res.ExecTime)), u.BusyNs, u.Claims,
				u.WaitNs, fmt.Sprintf("%.1fns", u.MeanWaitNs()), u.Waits.String())
		}
		if err := t.Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteUtilizationCSV renders the same data as one flat CSV.
func WriteUtilizationCSV(w io.Writer, rows []InspectRow) error {
	if _, err := fmt.Fprintln(w, "app,cfg,resource,util,busy_ns,claims,wait_ns,mean_wait_ns"); err != nil {
		return err
	}
	for _, row := range rows {
		for _, u := range row.Res.Resources {
			_, err := fmt.Fprintf(w, "%s,%s,%s,%.6f,%d,%d,%d,%.3f\n",
				row.App, row.Label, u.Name, u.Utilization(row.Res.ExecTime),
				u.BusyNs, u.Claims, u.WaitNs, u.MeanWaitNs())
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// stateNames orders the AM states for transition-matrix rendering.
var stateNames = [4]string{"I", "S", "O", "E"}

// WriteTransitions renders the protocol transition count matrix of each
// run (measured section; rows = from-state, columns = to-state).
func WriteTransitions(w io.Writer, rows []InspectRow) error {
	for _, row := range rows {
		m := row.Res.Protocol.Transitions
		fmt.Fprintf(w, "%s  %s  transitions=%d\n", row.App, row.Label, row.Res.Protocol.TransitionTotal())
		t := stats.NewTable("from\\to", "I", "S", "O", "E")
		for from := 0; from < 4; from++ {
			t.Row(stateNames[from], m[from][0], m[from][1], m[from][2], m[from][3])
		}
		if err := t.Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteTransitionsCSV renders the transition matrices as one flat CSV.
func WriteTransitionsCSV(w io.Writer, rows []InspectRow) error {
	if _, err := fmt.Fprintln(w, "app,cfg,from,to,count"); err != nil {
		return err
	}
	for _, row := range rows {
		m := row.Res.Protocol.Transitions
		for from := 0; from < 4; from++ {
			for to := 0; to < 4; to++ {
				if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d\n",
					row.App, row.Label, stateNames[from], stateNames[to], m[from][to]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// protocolCounters flattens the protocol counter snapshot into labelled
// columns shared by the text and CSV renderers.
func protocolCounters(s coma.Stats) ([]string, []int64) {
	return []string{
			"reads", "read_misses", "writes", "write_misses", "upgrades", "updates",
			"cold_allocs", "injects", "promotes", "shared_drops", "forced_drops", "transitions",
		}, []int64{
			s.Reads, s.ReadMisses, s.Writes, s.WriteMisses, s.Upgrades, s.Updates,
			s.ColdAllocs, s.Injects, s.Promotes, s.SharedDrops, s.ForcedDrops, s.TransitionTotal(),
		}
}

// WriteProtocol renders the protocol counters, one table row per run.
func WriteProtocol(w io.Writer, rows []InspectRow) error {
	names, _ := protocolCounters(coma.Stats{})
	header := append([]string{"application", "cfg"}, names...)
	t := stats.NewTable(header...)
	for _, row := range rows {
		_, vals := protocolCounters(row.Res.Protocol)
		cells := make([]interface{}, 0, len(vals)+2)
		cells = append(cells, row.App, row.Label)
		for _, v := range vals {
			cells = append(cells, v)
		}
		t.Row(cells...)
	}
	return t.Write(w)
}

// WriteProtocolCSV renders the protocol counters as one flat CSV.
func WriteProtocolCSV(w io.Writer, rows []InspectRow) error {
	names, _ := protocolCounters(coma.Stats{})
	if _, err := fmt.Fprintln(w, "app,cfg,counter,value"); err != nil {
		return err
	}
	for _, row := range rows {
		_, vals := protocolCounters(row.Res.Protocol)
		for i, name := range names {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d\n", row.App, row.Label, name, vals[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
