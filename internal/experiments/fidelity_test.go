package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/machine"
)

// Accuracy regression tests for the sampled execution fidelity: every
// kernel runs in both fidelities on the two machines whose error
// envelopes are declared in fidelity.go (the paper's 16-processor bus
// and the 64-processor ring-of-clusters), the per-metric errors are
// asserted against the declared bounds, and the full comparison table
// is pinned as a golden file so any drift in the estimator's accuracy —
// improvement or regression — shows up as a reviewable diff.

// fidelityBusCfg is the 16-processor bus configuration the bus envelope
// was measured on.
func fidelityBusCfg() config.Machine {
	cfg := config.Baseline(1, config.MP6)
	cfg.Procs = 16
	return cfg
}

// fidelityRingCfg is the 64-processor, 8-cluster ring configuration the
// ring envelope was measured on.
func fidelityRingCfg() config.Machine {
	cfg := config.Baseline(1, config.MP6)
	cfg.Procs = 64
	cfg.Topology = machine.TopologyRing
	cfg.Clusters = 8
	return cfg
}

// fidelityMatrix runs every kernel on cfg in both fidelities and
// returns one comparison row per kernel, bounds drawn from the given
// envelope.
func fidelityMatrix(t *testing.T, r *Runner, cfg config.Machine, bounds map[string]FidelityBound) []FidelityRow {
	t.Helper()
	var exact, sampled []job
	for _, a := range apps.Registry {
		c := cfg
		c.Fidelity = config.Fidelity{Mode: machine.FidelityExact}
		exact = append(exact, job{a.Name, c})
		c.Fidelity = config.Fidelity{Mode: machine.FidelitySampled}
		sampled = append(sampled, job{a.Name, c})
	}
	eres, err := r.runAll(exact)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := r.runAll(sampled)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]FidelityRow, len(exact))
	for i := range exact {
		rows[i] = fidelityCompare(exact[i].app, exact[i].cfg.ProcsPerNode,
			eres[i], sres[i], bounds[exact[i].app])
	}
	return rows
}

func TestGoldenFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("fidelity accuracy matrix in -short mode")
	}
	r := NewRunner()
	var sb strings.Builder
	for _, m := range []struct {
		title  string
		cfg    config.Machine
		bounds map[string]FidelityBound
	}{
		{"16-processor bus", fidelityBusCfg(), fidelityBoundsBus16},
		{"64-processor ring, 8 clusters", fidelityRingCfg(), fidelityBoundsRing64},
	} {
		rows := fidelityMatrix(t, r, m.cfg, m.bounds)
		for _, row := range rows {
			if !row.Pass {
				t.Errorf("%s: %s outside declared envelope: exec %+.2f%% (bound %.0f%%), rnmr %+.2f%% bus %+.2f%% miss %+.2f%% (bound %.1f%%)",
					m.title, row.App, row.ExecErr*100, row.Bound.Exec*100,
					row.RNMrErr*100, row.BusErr*100, row.MissErr*100, row.Bound.Counts*100)
			}
		}
		fmt.Fprintf(&sb, "Sampled-fidelity error envelope: %s\n", m.title)
		f := FidelityCheck{Rows: rows}
		if err := f.WriteTable(&sb); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintln(&sb)
	}
	checkGolden(t, "fidelity.golden", sb.String())
}

// TestFidelityJobsInvariance asserts sampled-mode results are
// byte-identical whether the matrix runs sequentially or fanned out
// across workers: sampling observes only simulated time, so worker
// scheduling must not leak into results.
func TestFidelityJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("jobs-invariance matrix in -short mode")
	}
	var jobsList []job
	cfg := config.Baseline(1, config.MP6)
	cfg.Procs = 8
	cfg.Fidelity = config.Fidelity{Mode: machine.FidelitySampled}
	for _, name := range fidelityQuickApps {
		jobsList = append(jobsList, job{name, cfg})
	}
	seq := NewRunner()
	seq.Procs = 8
	seq.Jobs = 1
	sres, err := seq.runAll(jobsList)
	if err != nil {
		t.Fatal(err)
	}
	par := NewRunner()
	par.Procs = 8
	par.Jobs = 8
	pres, err := par.runAll(jobsList)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobsList {
		if !reflect.DeepEqual(sres[i], pres[i]) {
			t.Errorf("%s: sampled result differs between -jobs 1 and -jobs 8:\nseq: %+v\npar: %+v",
				jobsList[i].app, sres[i], pres[i])
		}
	}
}

// FuzzFidelityGeometry feeds arbitrary sampling geometries through the
// config layer and asserts the machine either rejects the geometry
// cleanly at construction or completes the run with the invariants the
// estimator guarantees regardless of geometry: reference counts are
// trace-determined (reads exactly match the exact run), execution time
// is positive, and the fidelity report is internally consistent.
func FuzzFidelityGeometry(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0))              // defaults
	f.Add(int64(-1), int64(1), int64(1))             // no warmup, tiny window, clamped period
	f.Add(int64(1000), int64(5000), int64(64000))    // previous defaults
	f.Add(int64(16000), int64(16000), int64(256000)) // current defaults
	f.Add(int64(1), int64(1), int64(1<<40))          // near-zero coverage
	f.Add(int64(1<<40), int64(1), int64(1))          // warmup dominates; period clamps below warmup+window
	cfg := config.Baseline(1, config.MP6)
	cfg.Procs = 8
	r := NewRunner()
	r.Procs = 8
	exact, err := r.Run("fft", cfg)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, warm, win, period int64) {
		c := cfg
		c.Fidelity = config.Fidelity{Mode: machine.FidelitySampled,
			WarmupNs: warm, WindowNs: win, PeriodNs: period}
		res, err := r.Run("fft", c)
		if err != nil {
			// The only acceptable failure is a clean geometry rejection
			// from machine construction.
			if !strings.Contains(err.Error(), "fidelity") {
				t.Fatalf("non-geometry failure for warmup=%d window=%d period=%d: %v", warm, win, period, err)
			}
			return
		}
		if res.Reads != exact.Reads || res.Writes() != exact.Writes() {
			t.Errorf("reference counts drifted: sampled %d reads / %d writes, exact %d / %d",
				res.Reads, res.Writes(), exact.Reads, exact.Writes())
		}
		if res.ExecTime <= 0 {
			t.Errorf("non-positive execution time %v", res.ExecTime)
		}
		rep := res.Fidelity
		if rep == nil {
			t.Fatal("sampled run returned no fidelity report")
		}
		if rep.Coverage < 0 || rep.Coverage > 1 {
			t.Errorf("coverage %v outside [0,1]", rep.Coverage)
		}
		if rep.Windows < 0 {
			t.Errorf("negative window count %d", rep.Windows)
		}
	})
}
