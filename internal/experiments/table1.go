package experiments

import (
	"io"

	"repro/internal/apps"
	"repro/internal/stats"
)

// Table1Row describes one application: the paper's input and working set
// next to our scaled substitute.
type Table1Row struct {
	App          string
	Title        string
	PaperProblem string
	PaperWSMB    float64
	OurProblem   string
	OurWSKB      uint64
	Reads        int64
	Writes       int64
}

// Table1 reproduces the paper's application table with our scaled inputs.
// Trace generation and summarizing fan out per application on the worker
// pool; rows are indexed, so output stays in registry order. Each app is
// pinned for exactly its one summary, so traces are released as soon as
// they are summarized instead of being retained all at once.
func (r *Runner) Table1() ([]Table1Row, error) {
	reg := apps.Registry
	needs := make(map[traceKey]int, len(reg))
	for _, a := range reg {
		needs[traceKey{app: a.Name, procs: r.Procs}]++
	}
	r.pinTraces(needs)
	rows := make([]Table1Row, len(reg))
	ran := make([]bool, len(reg))
	err := r.forEach(len(reg), func(i int) error {
		ran[i] = true
		defer r.releaseTrace(traceKey{app: reg[i].Name, procs: r.Procs}, 1)
		a := reg[i]
		tr, err := r.Trace(a.Name)
		if err != nil {
			return err
		}
		s := tr.Summarize()
		rows[i] = Table1Row{
			App:          a.Name,
			Title:        a.Title,
			PaperProblem: a.PaperProblem,
			PaperWSMB:    a.PaperWS,
			OurProblem:   a.Problem,
			OurWSKB:      tr.WorkingSet / 1024,
			Reads:        s.Reads,
			Writes:       s.Writes,
		}
		return nil
	})
	for i, ok := range ran {
		if !ok {
			r.releaseTrace(traceKey{app: reg[i].Name, procs: r.Procs}, 1)
		}
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteTable1 renders the table.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	t := stats.NewTable("application", "description", "paper problem", "paper WS(MB)",
		"our problem", "our WS(KB)", "reads", "writes")
	for _, r := range rows {
		t.Row(r.App, r.Title, r.PaperProblem, r.PaperWSMB, r.OurProblem, r.OurWSKB, r.Reads, r.Writes)
	}
	return t.Write(w)
}
