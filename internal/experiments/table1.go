package experiments

import (
	"io"

	"repro/internal/apps"
	"repro/internal/stats"
)

// Table1Row describes one application: the paper's input and working set
// next to our scaled substitute.
type Table1Row struct {
	App          string
	Title        string
	PaperProblem string
	PaperWSMB    float64
	OurProblem   string
	OurWSKB      uint64
	Reads        int64
	Writes       int64
}

// Table1 reproduces the paper's application table with our scaled inputs.
// Trace generation fans out on the worker pool; the (cheap) summaries run
// afterwards in registry order.
func (r *Runner) Table1() ([]Table1Row, error) {
	if err := r.pregenTraces(apps.Names()); err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, a := range apps.Registry {
		tr, err := r.Trace(a.Name)
		if err != nil {
			return nil, err
		}
		s := tr.Summarize()
		rows = append(rows, Table1Row{
			App:          a.Name,
			Title:        a.Title,
			PaperProblem: a.PaperProblem,
			PaperWSMB:    a.PaperWS,
			OurProblem:   a.Problem,
			OurWSKB:      tr.WorkingSet / 1024,
			Reads:        s.Reads,
			Writes:       s.Writes,
		})
	}
	return rows, nil
}

// WriteTable1 renders the table.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	t := stats.NewTable("application", "description", "paper problem", "paper WS(MB)",
		"our problem", "our WS(KB)", "reads", "writes")
	for _, r := range rows {
		t.Row(r.App, r.Title, r.PaperProblem, r.PaperWSMB, r.OurProblem, r.OurWSKB, r.Reads, r.Writes)
	}
	return t.Write(w)
}
