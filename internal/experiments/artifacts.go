package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// Artifacts lists the renderable evaluation artifacts in the order
// cmd/experiments regenerates them. Every name is valid input to
// RenderArtifact. The scaled-topology study ("fig2scaled") is not part
// of the default set — it simulates 64- and 128-processor machines and
// is requested explicitly via -only.
func Artifacts() []string {
	return []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "thresholds",
		"sens-dram", "sens-node", "sens-bus", "latency", "sens-mp",
	}
}

// ExtraArtifacts lists artifacts renderable on demand but excluded from
// the default regeneration set.
func ExtraArtifacts() []string {
	return []string{"fig2scaled", "fig2irregular", "fidelitycheck", "fidelitycheck-quick"}
}

// RenderArtifact runs one evaluation artifact on the runner and writes
// exactly the bytes `cmd/experiments -only name` prints for it — the
// single rendering path shared by the CLI and the comasrv study
// endpoints, so a cached service response can be diffed against CLI
// output. chart switches figures 3-5 to stacked-bar form (the CLI's
// -chart flag); other artifacts ignore it.
func RenderArtifact(w io.Writer, r *Runner, name string, chart bool) error {
	switch name {
	case "table1":
		rows, err := r.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Table 1: applications and working sets")
		if err := WriteTable1(w, rows); err != nil {
			return err
		}
	case "fig2":
		f, err := r.Figure2()
		if err != nil {
			return err
		}
		if err := f.Write(w); err != nil {
			return err
		}
	case "fig3", "fig4":
		var f *TrafficFigure
		var err error
		if name == "fig3" {
			f, err = r.Figure3()
		} else {
			f, err = r.Figure4()
		}
		if err != nil {
			return err
		}
		if chart {
			err = f.Chart(w)
		} else {
			err = f.Write(w)
		}
		if err != nil {
			return err
		}
	case "fig5":
		f, err := r.Figure5()
		if err != nil {
			return err
		}
		var werr error
		if chart {
			werr = f.Chart(w)
		} else {
			werr = f.Write(w)
		}
		if werr != nil {
			return werr
		}
	case "thresholds":
		fmt.Fprintln(w, "Replication thresholds (paper Section 4.2 analytical model)")
		t := stats.NewTable("procs/node", "AM ways", "threshold", "exact")
		for _, row := range analysis.PaperTable() {
			t.Row(row.Machine.ProcsPerNode, row.Machine.AMWays,
				stats.Pct(row.Threshold), fmt.Sprintf("%d/%d", row.Num, row.Den))
		}
		if err := t.Write(w); err != nil {
			return err
		}
	case "sens-dram":
		ss, err := r.SensitivityDRAM()
		if err != nil {
			return err
		}
		for i, s := range ss {
			if err := s.Write(w); err != nil {
				return err
			}
			if i < len(ss)-1 {
				fmt.Fprintln(w)
			}
		}
	case "sens-node":
		s, err := r.SensitivityNode()
		if err != nil {
			return err
		}
		if err := s.Write(w); err != nil {
			return err
		}
	case "sens-bus":
		ss, err := r.SensitivityBus()
		if err != nil {
			return err
		}
		for i, s := range ss {
			if err := s.Write(w); err != nil {
				return err
			}
			if i < len(ss)-1 {
				fmt.Fprintln(w)
			}
		}
	case "latency":
		rows, err := r.Latency()
		if err != nil {
			return err
		}
		if err := WriteLatency(w, rows); err != nil {
			return err
		}
	case "sens-mp":
		rows, err := r.SensitivityPressure()
		if err != nil {
			return err
		}
		if err := WritePressure(w, rows); err != nil {
			return err
		}
	case "fig2scaled":
		f, err := r.Figure2Scaled(ScaledSpec{})
		if err != nil {
			return err
		}
		if err := f.Write(w); err != nil {
			return err
		}
	case "fig2irregular":
		f, err := r.Figure2Irregular()
		if err != nil {
			return err
		}
		if err := f.Write(w); err != nil {
			return err
		}
	case "fidelitycheck", "fidelitycheck-quick":
		f, err := r.FidelityCheck(name == "fidelitycheck-quick")
		if err != nil {
			return err
		}
		if err := f.Write(w); err != nil {
			return err
		}
		if !f.Pass {
			// Surface the envelope violation as a command failure so CI
			// runs of this artifact exit nonzero.
			fmt.Fprintln(w)
			return fmt.Errorf("fidelity check failed: sampled-mode error outside its declared envelope")
		}
	default:
		return fmt.Errorf("experiments: unknown artifact %q (known: %v, extra: %v)",
			name, Artifacts(), ExtraArtifacts())
	}
	fmt.Fprintln(w)
	return nil
}
