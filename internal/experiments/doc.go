// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (applications), Figure 2 (relative read node miss
// rates under clustering), Figures 3 and 4 (bus traffic by class across
// memory pressures), Figure 5 (execution-time breakdowns) and the Section
// 4.3 bandwidth sensitivity studies.
//
// Every (application, configuration) simulation is an independent pure
// function of its inputs, so the Runner executes full run matrices on a
// worker pool (see pool.go) while keeping results memoized and
// deduplicated: concurrent requests for the same run share a single
// simulation. All aggregation happens after the pool barrier, in registry
// order, so output is bit-identical regardless of Jobs.
package experiments
