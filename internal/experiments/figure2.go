package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
)

// Fig2Row is one application's relative read node miss rate at 6% memory
// pressure: the RNMr of the clustered machine divided by the RNMr of the
// single-processor-node machine (paper Figure 2).
type Fig2Row struct {
	App   string
	RNMr1 float64 // absolute RNMr with 1-processor nodes
	Rel2  float64 // 2-processor clusters relative to 1
	Rel4  float64 // 4-processor clusters relative to 1
}

// Fig2 is the full figure plus the paper's headline averages (the paper
// reports 82% for 2-way and 62% for 4-way clustering).
type Fig2 struct {
	Rows         []Fig2Row
	Mean2, Mean4 float64
}

// Figure2 runs all 14 applications at 6% MP with 1, 2 and 4 processors
// per node. The 42-run matrix executes on the worker pool; rows are
// assembled after the barrier in registry order.
func (r *Runner) Figure2() (*Fig2, error) {
	ppns := []int{1, 2, 4}
	var jobs []job
	for _, a := range apps.Registry {
		for _, ppn := range ppns {
			jobs = append(jobs, job{a.Name, config.Baseline(ppn, config.MP6)})
		}
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	f := &Fig2{}
	var rel2s, rel4s []float64
	for ai, a := range apps.Registry {
		var rnmr [3]float64
		for i := range ppns {
			rnmr[i] = results[ai*len(ppns)+i].RNMr()
		}
		row := Fig2Row{
			App:   a.Name,
			RNMr1: rnmr[0],
			Rel2:  stats.Ratio(rnmr[1], rnmr[0]),
			Rel4:  stats.Ratio(rnmr[2], rnmr[0]),
		}
		f.Rows = append(f.Rows, row)
		rel2s = append(rel2s, row.Rel2)
		rel4s = append(rel4s, row.Rel4)
	}
	f.Mean2 = stats.Mean(rel2s)
	f.Mean4 = stats.Mean(rel4s)
	return f, nil
}

// Write renders the figure as a table with proportional bars.
func (f *Fig2) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2: read node miss rate at 6% MP, relative to 1-processor nodes")
	t := stats.NewTable("application", "RNMr(1p)", "2-way rel", "", "4-way rel", "")
	for _, r := range f.Rows {
		t.Row(r.App, fmt.Sprintf("%.4f", r.RNMr1),
			stats.Pct(r.Rel2), stats.Bar(r.Rel2, 1, 20),
			stats.Pct(r.Rel4), stats.Bar(r.Rel4, 1, 20))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "average relative RNMr: 2-way %s (paper: 82%%), 4-way %s (paper: 62%%)\n",
		stats.Pct(f.Mean2), stats.Pct(f.Mean4))
	return nil
}
