package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
)

// renderAll runs every inspect renderer into one buffer — the superset of
// what cmd/inspect emits.
func renderAll(t *testing.T, rows []InspectRow) string {
	t.Helper()
	var sb strings.Builder
	for _, render := range []func(*strings.Builder) error{
		func(w *strings.Builder) error { return WriteUtilization(w, rows) },
		func(w *strings.Builder) error { return WriteUtilizationCSV(w, rows) },
		func(w *strings.Builder) error { return WriteTransitions(w, rows) },
		func(w *strings.Builder) error { return WriteTransitionsCSV(w, rows) },
		func(w *strings.Builder) error { return WriteProtocol(w, rows) },
		func(w *strings.Builder) error { return WriteProtocolCSV(w, rows) },
		func(w *strings.Builder) error { return WriteTimeline(w, rows) },
		func(w *strings.Builder) error { return WriteTimelineCSV(w, rows) },
	} {
		if err := render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// Inspect output must be byte-identical regardless of worker-pool width —
// the cmd/inspect determinism contract.
func TestInspectJobsInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix in -short mode")
	}
	apps := []string{"fft"}
	cfgs := []config.Machine{
		config.Baseline(1, config.MP50),
		config.Baseline(4, config.MP87),
	}
	run := func(jobs int) string {
		r := NewRunner()
		r.Procs = 8
		r.Jobs = jobs
		// Sampling on, so the timeline renderers are part of the
		// byte-identity contract too.
		r.SampleWindow = 100000
		rows, err := r.Inspect(apps, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(apps)*len(cfgs) {
			t.Fatalf("rows = %d, want %d", len(rows), len(apps)*len(cfgs))
		}
		// App-major, config-minor order.
		if rows[0].Cfg.ProcsPerNode != 1 || rows[1].Cfg.ProcsPerNode != 4 {
			t.Fatalf("row order broken: %s then %s", rows[0].Label, rows[1].Label)
		}
		return renderAll(t, rows)
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatal("inspect output differs between -jobs 1 and -jobs 8")
	}
	// The output actually contains the advertised sections.
	for _, want := range []string{"resource", "from\\to", "app,cfg,counter,value", "bus", "dram0", "bus util", "app,cfg,window,start_ns"} {
		if !strings.Contains(serial, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCfgLabel(t *testing.T) {
	c := config.Baseline(4, config.MP87)
	if got := CfgLabel(c); got != "4p/node mp=87% 4way" {
		t.Fatalf("label = %q", got)
	}
	c.DRAMBandwidth = 2
	c.BusBandwidth = 0.5
	if got := CfgLabel(c); got != "4p/node mp=87% 4way dram=2x bus=0.5x" {
		t.Fatalf("label = %q", got)
	}
}
