package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
)

// Fig5Bar is one execution-time bar: the mean per-processor time split
// into busy, SLC stall, AM stall and remote stall (plus the
// synchronization wait the paper folds away), normalized to the
// application's 1-processor-node 50%-MP bar.
type Fig5Bar struct {
	App                         string
	Label                       string
	Busy, SLC, AM, Remote, Sync float64
	ExecNs                      int64
}

// Total returns the normalized bar height.
func (b Fig5Bar) Total() float64 { return b.Busy + b.SLC + b.AM + b.Remote + b.Sync }

// Fig5 is the execution-time figure: for every application, 1p nodes at
// 50% and 81% MP and 4p nodes at 81% MP, all with doubled DRAM bandwidth
// as in the paper.
type Fig5 struct {
	Bars []Fig5Bar
}

// Figure5 runs the execution-time study.
func (r *Runner) Figure5() (*Fig5, error) {
	f := &Fig5{}
	type cfgSpec struct {
		label string
		ppn   int
		mp    config.Pressure
	}
	specs := []cfgSpec{
		{"1p@50%", 1, config.MP50},
		{"1p@81%", 1, config.MP81},
		{"4p@81%", 4, config.MP81},
	}
	var jobs []job
	for _, a := range apps.Registry {
		for _, s := range specs {
			jobs = append(jobs, job{a.Name, config.Figure5(s.ppn, s.mp)})
		}
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for ai, a := range apps.Registry {
		var base float64
		for i, s := range specs {
			res := results[ai*len(specs)+i]
			b := res.Breakdown()
			if i == 0 {
				base = b.Total()
			}
			if base == 0 {
				base = 1
			}
			f.Bars = append(f.Bars, Fig5Bar{
				App:    a.Name,
				Label:  s.label,
				Busy:   b.Busy / base,
				SLC:    b.SLC / base,
				AM:     b.AM / base,
				Remote: b.Remote / base,
				Sync:   b.Sync / base,
				ExecNs: int64(res.ExecTime),
			})
		}
	}
	return f, nil
}

// Chart renders the figure as grouped stacked bars in the paper's style:
// busy '#', SLC '=', AM '+', remote '%', sync '~'. Bars are scaled so the
// 1p@50% bar of each application spans half the width (the paper's y-axis
// runs to 200%).
func (f *Fig5) Chart(w io.Writer) error {
	fmt.Fprintln(w, "Figure 5: execution time (#=busy  ==SLC  +=AM  %=remote  ~=sync), 1p@50% = 100%")
	lastApp := ""
	for _, b := range f.Bars {
		if b.App != lastApp {
			fmt.Fprintf(w, "\n%s\n", b.App)
			lastApp = b.App
		}
		bar := stats.StackedBar(80,
			[]float64{b.Busy / 2, b.SLC / 2, b.AM / 2, b.Remote / 2, b.Sync / 2},
			[]byte{'#', '=', '+', '%', '~'})
		fmt.Fprintf(w, "  %-7s |%-80s| %s\n", b.Label, bar, stats.Pct(b.Total()))
	}
	return nil
}

// Write renders the figure.
func (f *Fig5) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 5: execution time breakdown (2x DRAM bandwidth),")
	fmt.Fprintln(w, "normalized to each application's 1p@50% bar (sync reported separately)")
	t := stats.NewTable("application", "cfg", "busy", "slc", "am", "remote", "sync", "total", "")
	for _, b := range f.Bars {
		t.Row(b.App, b.Label,
			stats.Pct(b.Busy), stats.Pct(b.SLC), stats.Pct(b.AM),
			stats.Pct(b.Remote), stats.Pct(b.Sync), stats.Pct(b.Total()),
			stats.Bar(b.Total(), 2, 40))
	}
	return t.Write(w)
}
