package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/config"
)

// SweepSpec describes a cartesian parameter sweep. Empty dimensions take
// their paper defaults.
type SweepSpec struct {
	Apps         []string
	ProcsPerNode []int
	Pressures    []config.Pressure
	AMWays       []int
	DRAM         []float64
	NC           []float64
	Bus          []float64

	// Topology applies one interconnect to every point: "" or "bus" is
	// the snooping bus, "ring" the ring of clusters. Ring geometry and
	// link latency follow the config.Machine conventions.
	Topology      string
	Clusters      int
	LinkLatencyNs int
	// ScalePressure holds the fractional memory pressure constant at
	// non-paper machine sizes (see config.Machine.ScalePressure).
	ScalePressure bool
}

// normalize fills defaulted dimensions.
func (s SweepSpec) normalize() SweepSpec {
	if len(s.Apps) == 0 {
		s.Apps = Apps()
	}
	if len(s.ProcsPerNode) == 0 {
		s.ProcsPerNode = []int{1, 2, 4}
	}
	if len(s.Pressures) == 0 {
		s.Pressures = config.Pressures
	}
	if len(s.AMWays) == 0 {
		s.AMWays = []int{4}
	}
	if len(s.DRAM) == 0 {
		s.DRAM = []float64{1}
	}
	if len(s.NC) == 0 {
		s.NC = []float64{1}
	}
	if len(s.Bus) == 0 {
		s.Bus = []float64{1}
	}
	return s
}

// Points returns the number of simulations the sweep will run.
func (s SweepSpec) Points() int {
	s = s.normalize()
	return len(s.Apps) * len(s.ProcsPerNode) * len(s.Pressures) *
		len(s.AMWays) * len(s.DRAM) * len(s.NC) * len(s.Bus)
}

// SweepRow is one measured point.
type SweepRow struct {
	App           string
	ProcsPerNode  int
	MP            string
	AMWays        int
	DRAM, NC, Bus float64
	Topology      string
	Clusters      int

	ExecNs                              int64
	RNMr                                float64
	BusReadNs, BusWriteNs, BusReplaceNs int64
	Injects, Promotes                   int64
}

// Sweep runs every point of the spec (memoized like everything else) on
// the worker pool; rows come back in cartesian order regardless of Jobs.
func (r *Runner) Sweep(spec SweepSpec) ([]SweepRow, error) {
	spec = spec.normalize()
	var jobs []job
	var rows []SweepRow
	for _, app := range spec.Apps {
		for _, ppn := range spec.ProcsPerNode {
			for _, mp := range spec.Pressures {
				for _, ways := range spec.AMWays {
					for _, dram := range spec.DRAM {
						for _, nc := range spec.NC {
							for _, bus := range spec.Bus {
								cfg := config.Baseline(ppn, mp)
								cfg.AMWays = ways
								cfg.DRAMBandwidth = dram
								cfg.NCBandwidth = nc
								cfg.BusBandwidth = bus
								cfg.Topology = spec.Topology
								cfg.Clusters = spec.Clusters
								cfg.LinkLatencyNs = spec.LinkLatencyNs
								cfg.ScalePressure = spec.ScalePressure
								topo := spec.Topology
								if topo == "" {
									topo = "bus"
								}
								jobs = append(jobs, job{app, cfg})
								rows = append(rows, SweepRow{
									App:          app,
									ProcsPerNode: ppn,
									MP:           mp.Label,
									AMWays:       ways,
									DRAM:         dram,
									NC:           nc,
									Bus:          bus,
									Topology:     topo,
									Clusters:     cfg.Clusters,
								})
							}
						}
					}
				}
			}
		}
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		rows[i].ExecNs = int64(res.ExecTime)
		rows[i].RNMr = res.RNMr()
		rows[i].BusReadNs = int64(res.BusOccupancy[0])
		rows[i].BusWriteNs = int64(res.BusOccupancy[1])
		rows[i].BusReplaceNs = int64(res.BusOccupancy[2])
		rows[i].Injects = res.Protocol.Injects
		rows[i].Promotes = res.Protocol.Promotes
	}
	return rows, nil
}

// WriteSweepCSV emits the rows as CSV with a header, for plotting tools.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	header := []string{"app", "procs_per_node", "mp", "am_ways", "dram_bw",
		"nc_bw", "bus_bw", "topology", "clusters", "exec_ns", "rnmr",
		"bus_read_ns", "bus_write_ns", "bus_replace_ns", "injects", "promotes"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.App,
			strconv.Itoa(r.ProcsPerNode),
			r.MP,
			strconv.Itoa(r.AMWays),
			fmt.Sprintf("%g", r.DRAM),
			fmt.Sprintf("%g", r.NC),
			fmt.Sprintf("%g", r.Bus),
			r.Topology,
			strconv.Itoa(r.Clusters),
			strconv.FormatInt(r.ExecNs, 10),
			strconv.FormatFloat(r.RNMr, 'f', 6, 64),
			strconv.FormatInt(r.BusReadNs, 10),
			strconv.FormatInt(r.BusWriteNs, 10),
			strconv.FormatInt(r.BusReplaceNs, 10),
			strconv.FormatInt(r.Injects, 10),
			strconv.FormatInt(r.Promotes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
