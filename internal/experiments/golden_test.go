package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// Golden-file regression tests: the rendered Figure 2/3/5 tables and the
// replication-threshold table are committed under testdata/ and compared
// byte-for-byte, so protocol or timing edits that shift results show up
// as reviewable diffs instead of silently drifting. Regenerate after an
// intended change with:
//
//	go test ./internal/experiments -run TestGolden -update
//
// The goldens use an 8-processor machine: runs are ~4x cheaper than the
// paper's 16 processors while every clustering degree still spans at
// least two nodes, so all protocol paths (remote misses, injection,
// replacement) stay exercised. Kernel generation is fixed-seed and the
// simulator deterministic, so the files are stable per platform (libm
// rounding could in principle drift across CPU architectures; CI and the
// goldens are both amd64).
var update = flag.Bool("update", false, "rewrite golden files in testdata/")

// goldenRunner is shared by the golden tests (results are memoized, and
// several figures reuse configurations).
var goldenRunner struct {
	once sync.Once
	r    *Runner
}

func golden8() *Runner {
	goldenRunner.once.Do(func() {
		goldenRunner.r = NewRunner()
		goldenRunner.r.Procs = 8
	})
	return goldenRunner.r
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("%s drifted from its golden file.\nIf the change is intended, rerun with -update and review the diff.\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration in -short mode")
	}
	f, err := golden8().Figure2()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2.golden", sb.String())
}

func TestGoldenFigure3(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration in -short mode")
	}
	f, err := golden8().Figure3()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure3.golden", sb.String())
}

func TestGoldenFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration in -short mode")
	}
	f, err := golden8().Figure4()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure4.golden", sb.String())
}

// The four §4.3 sensitivity studies share one golden: they are small
// tables whose numbers all derive from the same memoized run set.
func TestGoldenSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration in -short mode")
	}
	r := golden8()
	var sb strings.Builder
	dram, err := r.SensitivityDRAM()
	if err != nil {
		t.Fatal(err)
	}
	node, err := r.SensitivityNode()
	if err != nil {
		t.Fatal(err)
	}
	bus, err := r.SensitivityBus()
	if err != nil {
		t.Fatal(err)
	}
	studies := append(append([]*Sens{}, dram...), node)
	studies = append(studies, bus...)
	for _, s := range studies {
		if err := s.Write(&sb); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintln(&sb)
	}
	press, err := r.SensitivityPressure()
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePressure(&sb, press); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sensitivity.golden", sb.String())
}

func TestGoldenFigure5(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration in -short mode")
	}
	f, err := golden8().Figure5()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := f.Chart(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure5.golden", sb.String())
}

// The thresholds table is pure arithmetic (no simulation), so its golden
// pins the §4.2 analytical model's exact fractions.
func TestGoldenThresholds(t *testing.T) {
	var sb strings.Builder
	fmt.Fprintln(&sb, "Replication thresholds (paper Section 4.2 analytical model)")
	tab := stats.NewTable("procs/node", "AM ways", "threshold", "exact")
	for _, row := range analysis.PaperTable() {
		tab.Row(row.Machine.ProcsPerNode, row.Machine.AMWays,
			stats.Pct(row.Threshold), fmt.Sprintf("%d/%d", row.Num, row.Den))
	}
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "thresholds.golden", sb.String())
}
