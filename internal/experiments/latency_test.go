package experiments

import (
	"strings"
	"testing"
)

// The latency study: fractions form a distribution, and for most
// applications the p99 read latency improves (or holds) under clustering
// — the tail is where remote accesses live.
func TestLatencyStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	r := NewRunner()
	rows, err := r.Latency()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 28 {
		t.Fatalf("rows = %d, want 14x2", len(rows))
	}
	p99 := map[string][2]int64{}
	for _, row := range rows {
		sum := row.L1 + row.SLC + row.AM + row.Remote + row.Queued
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s %s: fractions sum to %v", row.App, row.Label, sum)
		}
		v := p99[row.App]
		q := row.P99
		if q < 0 {
			q = 1 << 30
		}
		if row.Label == "1p" {
			v[0] = q
		} else {
			v[1] = q
		}
		p99[row.App] = v
	}
	improved := 0
	for _, v := range p99 {
		if v[1] <= v[0] {
			improved++
		}
	}
	if improved < 10 {
		t.Errorf("p99 improved for only %d/14 applications under clustering", improved)
	}
	var sb strings.Builder
	if err := WriteLatency(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p99") {
		t.Fatal("rendering broken")
	}
}
