package experiments_test

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/experiments"
)

// ExampleRunner runs the paper's core comparison for one workload: the
// same application on a flat COMA and on a 4-processor-per-node cluster
// with a shared attraction memory. Results are memoized, so asking again
// is free.
func ExampleRunner() {
	r := experiments.NewRunner()
	r.Procs = 8 // small machine to keep the example quick

	flat, err := r.Run("fft", config.Baseline(1, config.MP6))
	if err != nil {
		panic(err)
	}
	clustered, err := r.Run("fft", config.Baseline(4, config.MP6))
	if err != nil {
		panic(err)
	}

	fmt.Println("flat machine reads:", flat.Reads == clustered.Reads)
	fmt.Println("clustering reduces read node misses:",
		clustered.ReadNodeMisses < flat.ReadNodeMisses)
	// Output:
	// flat machine reads: true
	// clustering reduces read node misses: true
}
