package experiments

import "repro/internal/config"

// baselineForTest is a cheap configuration shared by fast tests.
func baselineForTest() config.Machine {
	return config.Baseline(1, config.MP6)
}
