package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
)

// runner8 returns a fresh 8-processor runner with the given pool width
// (fresh, so nothing is pre-memoized and the pool really executes).
func runner8(jobs int) *Runner {
	r := NewRunner()
	r.Procs = 8
	r.Jobs = jobs
	return r
}

// Determinism under parallelism: the same study must produce deeply-equal
// results whether the matrix runs on one worker or eight — aggregation is
// post-barrier in registry order, never completion order.
func TestFigure2DeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure in -short mode")
	}
	seq, err := runner8(1).Figure2()
	if err != nil {
		t.Fatal(err)
	}
	par, err := runner8(8).Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Figure2 differs between Jobs=1 and Jobs=8:\nseq %+v\npar %+v", seq, par)
	}
}

func TestSensitivityNodeDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	seq, err := runner8(1).SensitivityNode()
	if err != nil {
		t.Fatal(err)
	}
	par, err := runner8(8).SensitivityNode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("SensitivityNode differs between Jobs=1 and Jobs=8:\nseq %+v\npar %+v", seq, par)
	}
}

// Singleflight: 16 goroutines racing on the same key must share exactly
// one simulation and get the same memoized result pointer.
func TestRunConcurrentSameKeySimulatesOnce(t *testing.T) {
	r := runner8(4)
	var sims atomic.Int64
	r.OnSimulate = func(string, config.Machine) { sims.Add(1) }
	cfg := config.Baseline(1, config.MP6)

	const callers = 16
	results := make([]interface{}, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := r.Run("fft", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if got := sims.Load(); got != 1 {
		t.Fatalf("simulation executed %d times, want exactly 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
}

// runAll must hand back results in input order and share the memo cache
// with direct Run calls.
func TestRunAllPreservesInputOrder(t *testing.T) {
	r := runner8(4)
	jobs := []job{
		{"fft", config.Baseline(4, config.MP6)},
		{"radix", config.Baseline(1, config.MP6)},
		{"fft", config.Baseline(1, config.MP6)},
	}
	results, err := r.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(results), len(jobs))
	}
	for i, j := range jobs {
		direct, err := r.Run(j.app, j.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != direct {
			t.Fatalf("results[%d] is not the memoized result of its job", i)
		}
	}
}

// Error propagation: a job failing mid-matrix must cancel outstanding
// work, return the first (input-order) error, and leak no goroutines.
func TestRunAllFirstErrorAndNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	r := runner8(4)
	good := config.Baseline(1, config.MP6)
	jobs := []job{
		{"fft", good},
		{"no-such-app", good},
		{"also-missing", good},
		{"radix", good},
		{"water-n2", good},
	}
	results, err := r.runAll(jobs)
	if err == nil {
		t.Fatal("expected an error from the failing job")
	}
	if results != nil {
		t.Fatalf("results must be nil on error, got %v", results)
	}
	// First-error semantics: the earliest bad job wins, not whichever
	// worker happened to fail first.
	if !strings.Contains(err.Error(), "no-such-app") {
		t.Fatalf("error %q does not name the first failing job", err)
	}

	// The pool must wind down completely: poll briefly since worker
	// goroutine exit is asynchronous with runAll's return.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// A failing workload surfaces the same way through a full driver.
func TestSweepErrorPropagatesThroughPool(t *testing.T) {
	r := runner8(8)
	_, err := r.Sweep(SweepSpec{Apps: []string{"fft", "bogus"},
		ProcsPerNode: []int{1}, Pressures: []config.Pressure{config.MP6}})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v, want unknown-application error for %q", err, "bogus")
	}
}

// traceCacheState snapshots the runner's trace-cache bookkeeping.
func traceCacheState(r *Runner) (cached, pinned int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces), len(r.tracePins)
}

// Trace retention is bounded: once a matrix completes, every pin has been
// released and the cache holds no traces at all — a full driver run must
// not accumulate one trace per workload.
func TestRunAllReleasesTraceCache(t *testing.T) {
	r := runner8(4)
	jobs := []job{
		{"fft", config.Baseline(4, config.MP6)},
		{"fft", config.Baseline(2, config.MP6)},
		{"radix", config.Baseline(1, config.MP6)},
		{"water-n2", config.Baseline(1, config.MP6)},
	}
	if _, err := r.runAll(jobs); err != nil {
		t.Fatal(err)
	}
	cached, pinned := traceCacheState(r)
	if cached != 0 || pinned != 0 {
		t.Fatalf("after runAll: %d traces cached, %d pins outstanding; want 0/0", cached, pinned)
	}
}

// The error path releases pins too: dispatched jobs release via their
// defer, never-dispatched jobs via the sweep, so a failing matrix cannot
// pin traces forever.
func TestRunAllErrorReleasesTraceCache(t *testing.T) {
	r := runner8(2)
	good := config.Baseline(1, config.MP6)
	jobs := []job{
		{"fft", good},
		{"no-such-app", good},
		{"radix", good},
		{"water-n2", good},
		{"barnes", good},
		{"volrend", good},
	}
	if _, err := r.runAll(jobs); err == nil {
		t.Fatal("expected an error")
	}
	cached, pinned := traceCacheState(r)
	if cached != 0 || pinned != 0 {
		t.Fatalf("after failed runAll: %d traces cached, %d pins outstanding; want 0/0", cached, pinned)
	}
}

// Table1 generates every workload's trace; it too must leave the cache
// empty rather than retaining all 14 traces.
func TestTable1ReleasesTraceCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full table in -short mode")
	}
	r := runner8(4)
	rows, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("Table1 rows = %d, want 14", len(rows))
	}
	cached, pinned := traceCacheState(r)
	if cached != 0 || pinned != 0 {
		t.Fatalf("after Table1: %d traces cached, %d pins outstanding; want 0/0", cached, pinned)
	}
}

// Direct (unpinned) Trace callers keep the old memoized behaviour: their
// traces stay cached, and a later matrix using the same app must not
// evict what it did not pin... unless the matrix itself pinned the app,
// in which case eviction at pin-zero is the contract.
func TestDirectTraceSurvivesUnrelatedMatrix(t *testing.T) {
	r := runner8(2)
	if _, err := r.Trace("cholesky"); err != nil {
		t.Fatal(err)
	}
	jobs := []job{{"fft", config.Baseline(1, config.MP6)}}
	if _, err := r.runAll(jobs); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	_, ok := r.traces[traceKey{app: "cholesky", procs: r.Procs}]
	r.mu.Unlock()
	if !ok {
		t.Fatal("matrix evicted a trace it never pinned")
	}
}
