package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
)

// The timeline golden pins what `cmd/inspect -timeline` emits (both the
// sparkline text and the raw per-window CSV) for the 8-processor Figure 2
// machine at the two clustering extremes. Sampling is deterministic in
// simulated time, so this file is as stable as the figure goldens.
func TestGoldenTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix in -short mode")
	}
	r := NewRunner()
	r.Procs = 8
	r.SampleWindow = 100000
	rows, err := r.Inspect([]string{"fft"}, []config.Machine{
		config.Baseline(1, config.MP50),
		config.Baseline(4, config.MP50),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTimeline(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.golden", sb.String())
}

func TestSparkline(t *testing.T) {
	cases := []struct {
		vals []float64
		want string
	}{
		{nil, ""},
		{[]float64{0, 0, 0}, "▁▁▁"},  // all-zero series stays at the baseline
		{[]float64{1, 1}, "██"},      // max maps to the full block
		{[]float64{0, 4, 8}, "▁▄█"},  // linear ramp
		{[]float64{0.0001, 8}, "▂█"}, // tiny non-zero values stay visible
		{[]float64{7.999, 8}, "▇█"},  // just-below-max stays below the full block
	}
	for _, c := range cases {
		if got := sparkline(c.vals); got != c.want {
			t.Errorf("sparkline(%v) = %q, want %q", c.vals, got, c.want)
		}
	}
}

func TestDownsample(t *testing.T) {
	// 128 windows pool into 64 cells of 2, keeping each pair's max.
	vals := make([]float64, 2*sparkCells)
	for i := range vals {
		vals[i] = float64(i % 7)
	}
	vals[17] = 99
	out := downsample(vals)
	if len(out) != sparkCells {
		t.Fatalf("len = %d, want %d", len(out), sparkCells)
	}
	if out[8] != 99 { // windows 16,17 -> cell 8
		t.Errorf("cell 8 = %g, want pooled max 99", out[8])
	}
	// Short series pass through untouched.
	short := []float64{1, 2, 3}
	if got := downsample(short); &got[0] != &short[0] {
		t.Error("short series was copied")
	}
}
