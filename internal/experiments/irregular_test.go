package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// The irregular/allocator study's golden pins both topologies' sweeps at
// the shared 8-processor test size.
func TestGoldenFigure2Irregular(t *testing.T) {
	if testing.Short() {
		t.Skip("irregular matrix in -short mode")
	}
	f, err := golden8().Figure2Irregular()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2irregular.golden", sb.String())
}

// The study is byte-identical for any worker count, like every other
// artifact (the -jobs invariance contract).
func TestFigure2IrregularJobsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("irregular matrix twice in -short mode")
	}
	run := func(jobs int) string {
		r := NewRunner()
		r.Procs = 8
		r.Jobs = jobs
		f, err := r.Figure2Irregular()
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := f.Write(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if run(1) != run(8) {
		t.Fatal("fig2irregular differs between -jobs 1 and -jobs 8")
	}
}

// RunTrace over a workload's wire-exported trace reproduces Run's result
// exactly — the contract behind comasrv's guarantee that simulating by
// trace_ref is byte-identical to simulating the generated workload.
func TestRunTraceMatchesRun(t *testing.T) {
	r := NewRunner()
	r.Procs = 8
	cfg := config.Baseline(2, config.MP50)
	direct, err := r.Run("alloc-churn", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.Trace("alloc-churn")
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the wire format, as an upload would.
	decoded, err := trace.DecodeCompact(tr.EncodeCompact())
	if err != nil {
		t.Fatal(err)
	}
	viaTrace, err := r.RunTrace(decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaTrace) {
		t.Fatalf("RunTrace result diverges from Run:\nrun:      %+v\nruntrace: %+v", direct, viaTrace)
	}
}

// RunTrace rejects a trace whose processor count disagrees with the
// configuration instead of running a mis-sized machine.
func TestRunTraceProcsMismatch(t *testing.T) {
	r := NewRunner()
	tr, err := r.TraceAt("pchase", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline(1, config.MP6)
	cfg.Procs = 8
	if _, err := r.RunTrace(tr, cfg); err == nil {
		t.Fatal("expected a processor-count mismatch error")
	}
}
