package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
)

// SensRow compares 4-way clustering against single-processor nodes for
// one application under one bandwidth provisioning: Slowdown is
// exec(4p) / exec(1p) - 1 (positive = clustering loses).
type SensRow struct {
	App      string
	Exec1Ns  int64
	Exec4Ns  int64
	Slowdown float64
}

// Sens is one §4.3 sensitivity study.
type Sens struct {
	Title string
	Note  string
	Rows  []SensRow
}

func (r *Runner) clusterCompare(title, note string, mut func(*config.Machine)) (*Sens, error) {
	var jobs []job
	for _, a := range apps.Registry {
		cfg1 := config.Baseline(1, config.MP50)
		cfg4 := config.Baseline(4, config.MP50)
		mut(&cfg1)
		mut(&cfg4)
		jobs = append(jobs, job{a.Name, cfg1}, job{a.Name, cfg4})
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	s := &Sens{Title: title, Note: note}
	for ai, a := range apps.Registry {
		res1, res4 := results[2*ai], results[2*ai+1]
		s.Rows = append(s.Rows, SensRow{
			App:      a.Name,
			Exec1Ns:  int64(res1.ExecTime),
			Exec4Ns:  int64(res4.ExecTime),
			Slowdown: stats.Ratio(float64(res4.ExecTime), float64(res1.ExecTime)) - 1,
		})
	}
	return s, nil
}

// SensitivityDRAM reproduces §4.3's DRAM-bandwidth observation: at 50% MP
// with baseline DRAM, several applications degrade under 4-way
// clustering; doubling the DRAM bandwidth leaves only the most
// node-contention-bound ones (paper: LU-non 17.8%, Radix 12.7%,
// Ocean-non 5.5%) slower.
func (r *Runner) SensitivityDRAM() ([]*Sens, error) {
	s1, err := r.clusterCompare(
		"4-way clustering at 50% MP, baseline DRAM bandwidth",
		"paper: 5 of 14 applications significantly degraded",
		func(c *config.Machine) { c.DRAMBandwidth = 1 })
	if err != nil {
		return nil, err
	}
	s2, err := r.clusterCompare(
		"4-way clustering at 50% MP, 2x DRAM bandwidth",
		"paper: only LU-non (17.8%), Radix (12.7%), Ocean-non (5.5%) still degraded",
		func(c *config.Machine) { c.DRAMBandwidth = 2 })
	if err != nil {
		return nil, err
	}
	return []*Sens{s1, s2}, nil
}

// SensitivityNode reproduces §4.3's provisioned-node observation: with 4x
// DRAM bandwidth and 2x node-controller bandwidth, all applications
// except the non-optimized LU perform at least as well clustered as with
// single-processor nodes, even at 50% MP.
func (r *Runner) SensitivityNode() (*Sens, error) {
	return r.clusterCompare(
		"4-way clustering at 50% MP, 4x DRAM + 2x node-controller bandwidth",
		"paper: all applications except LU-non similar or better with clustering",
		func(c *config.Machine) { c.DRAMBandwidth = 4; c.NCBandwidth = 2 })
}

// SensitivityBus reproduces §4.3's bus observation: halving the global bus
// bandwidth makes clustering more attractive because remote accesses get
// more expensive (largest effect for Barnes, FFT and LU-non).
func (r *Runner) SensitivityBus() ([]*Sens, error) {
	full, err := r.clusterCompare(
		"4-way clustering at 50% MP, 2x DRAM, full bus bandwidth",
		"reference for the halved-bus comparison",
		func(c *config.Machine) { c.DRAMBandwidth = 2 })
	if err != nil {
		return nil, err
	}
	half, err := r.clusterCompare(
		"4-way clustering at 50% MP, 2x DRAM, HALVED bus bandwidth",
		"paper: clustering becomes even more efficient; largest for Barnes, FFT, LU-non",
		func(c *config.Machine) { c.DRAMBandwidth = 2; c.BusBandwidth = 0.5 })
	if err != nil {
		return nil, err
	}
	return []*Sens{full, half}, nil
}

// PressureRow is one application's penalty for running at 50% instead of
// 6% memory pressure (single-processor nodes).
type PressureRow struct {
	App               string
	Exec6Ns, Exec50Ns int64
	// Gain is exec(50%)/exec(6%) - 1: how much faster 6% MP would be.
	Gain float64
}

// SensitivityPressure reproduces §4.3's baseline justification: dropping
// from 50% to 6% MP buys only marginal performance (FFT, the most
// sensitive application, improves 4.2% in the paper).
func (r *Runner) SensitivityPressure() ([]PressureRow, error) {
	var jobs []job
	for _, a := range apps.Registry {
		jobs = append(jobs,
			job{a.Name, config.Figure5(1, config.MP6)},
			job{a.Name, config.Figure5(1, config.MP50)})
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	var rows []PressureRow
	for ai, a := range apps.Registry {
		res6, res50 := results[2*ai], results[2*ai+1]
		rows = append(rows, PressureRow{
			App:      a.Name,
			Exec6Ns:  int64(res6.ExecTime),
			Exec50Ns: int64(res50.ExecTime),
			Gain:     stats.Ratio(float64(res50.ExecTime), float64(res6.ExecTime)) - 1,
		})
	}
	return rows, nil
}

// Write renders a sensitivity study.
func (s *Sens) Write(w io.Writer) error {
	fmt.Fprintln(w, s.Title)
	fmt.Fprintln(w, " ", s.Note)
	t := stats.NewTable("application", "exec 1p(ns)", "exec 4p(ns)", "4p vs 1p")
	for _, r := range s.Rows {
		sign := "+"
		if r.Slowdown < 0 {
			sign = ""
		}
		t.Row(r.App, r.Exec1Ns, r.Exec4Ns, fmt.Sprintf("%s%.1f%%", sign, 100*r.Slowdown))
	}
	return t.Write(w)
}

// WritePressure renders the pressure-sensitivity table.
func WritePressure(w io.Writer, rows []PressureRow) error {
	fmt.Fprintln(w, "Memory-pressure sensitivity: 1p nodes, 6% vs 50% MP (2x DRAM bandwidth)")
	fmt.Fprintln(w, "  paper: FFT most sensitive, 4.2% faster at 6% MP")
	t := stats.NewTable("application", "exec 6%(ns)", "exec 50%(ns)", "50% penalty")
	for _, r := range rows {
		t.Row(r.App, r.Exec6Ns, r.Exec50Ns, fmt.Sprintf("%.1f%%", 100*r.Gain))
	}
	return t.Write(w)
}

// Apps returns the registry names (convenience for callers that iterate).
func Apps() []string { return apps.Names() }
