package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
)

// Timeline rendering: the per-window counter series (obs.Timeline) as
// unicode sparklines for eyeballs and as flat CSV for plotting. Both
// renderers are pure functions of the Timeline, so their output is
// byte-identical for any -jobs value, same as every other renderer.

// sparkCells is the maximum number of glyphs a sparkline spans; longer
// timelines are max-pooled down so bursts survive the compression.
const sparkCells = 64

// sparkLevels are the eight block glyphs a sparkline quantizes into.
var sparkLevels = [8]rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// downsample max-pools vals into at most sparkCells buckets: bucket j
// covers the half-open window range [j*n/cells, (j+1)*n/cells).
func downsample(vals []float64) []float64 {
	n := len(vals)
	if n <= sparkCells {
		return vals
	}
	out := make([]float64, sparkCells)
	for j := 0; j < sparkCells; j++ {
		lo, hi := j*n/sparkCells, (j+1)*n/sparkCells
		max := vals[lo]
		for _, v := range vals[lo+1 : hi] {
			if v > max {
				max = v
			}
		}
		out[j] = max
	}
	return out
}

// sparkline renders vals as block glyphs scaled to their maximum. A zero
// sample renders as the lowest block, so quiet phases stay visible as a
// baseline rather than gaps.
func sparkline(vals []float64) string {
	vals = downsample(vals)
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		lvl := 0
		if max > 0 && v > 0 {
			lvl = int(v * 7 / max)
			if lvl > 7 {
				lvl = 7
			}
			if lvl < 1 {
				lvl = 1
			}
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

// timelineSeries flattens a Timeline into the labelled float series the
// text renderer draws, in a fixed order.
func timelineSeries(tl *obs.Timeline) []struct {
	name string
	vals []float64
} {
	n := tl.Windows()
	f := func(s []int64) []float64 {
		out := make([]float64, n)
		for i, v := range s {
			out[i] = float64(v)
		}
		return out
	}
	busUtil := make([]float64, n)
	trans := make([]float64, n)
	for i := 0; i < n; i++ {
		busUtil[i] = tl.BusUtilization(i)
		trans[i] = float64(tl.TransitionTotal(i))
	}
	series := []struct {
		name string
		vals []float64
	}{
		{"bus util", busUtil},
		{"reads", f(tl.Reads)},
		{"writes", f(tl.Writes)},
		{"slc misses", f(tl.SLCMisses)},
		{"node misses", f(tl.NodeMisses)},
		{"transitions", trans},
		{"wb stall ns", f(tl.WBStallNs)},
		{"sync arrivals", f(tl.SyncArrivals)},
		{"replacements", f(tl.Replacements)},
	}
	// Ring-link occupancy only exists on hierarchical topologies; bus
	// timelines render exactly as before.
	if link := f(tl.LinkNs); seriesMax(link) > 0 {
		series = append(series[:1:1], append([]struct {
			name string
			vals []float64
		}{{"link ns", link}}, series[1:]...)...)
	}
	return series
}

// seriesMax returns the maximum of a series (0 for empty).
func seriesMax(vals []float64) float64 {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	return max
}

// WriteTimeline renders each run's windowed counter series as labelled
// sparklines, one block per run. Rows ran without sampling are reported
// as such rather than skipped silently.
func WriteTimeline(w io.Writer, rows []InspectRow) error {
	for _, row := range rows {
		tl := row.Res.Timeline
		if tl == nil {
			if _, err := fmt.Fprintf(w, "%s  %s  (no timeline: sampling disabled)\n\n", row.App, row.Label); err != nil {
				return err
			}
			continue
		}
		_, err := fmt.Fprintf(w, "%s  %s  exec=%v  windows=%d x %dns\n",
			row.App, row.Label, row.Res.ExecTime, tl.Windows(), tl.WindowNs)
		if err != nil {
			return err
		}
		for _, s := range timelineSeries(tl) {
			if _, err := fmt.Fprintf(w, "  %-14s %s  max=%g\n", s.name, sparkline(s.vals), seriesMax(s.vals)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimelineCSV renders every window of every run as one flat CSV
// row, raw (no downsampling). The link_ns column appears only when some
// run saw ring-link occupancy, so bus-topology CSVs are byte-identical
// to what they were before hierarchical topologies existed.
func WriteTimelineCSV(w io.Writer, rows []InspectRow) error {
	withLink := false
	for _, row := range rows {
		tl := row.Res.Timeline
		if tl == nil {
			continue
		}
		for _, v := range tl.LinkNs {
			if v != 0 {
				withLink = true
			}
		}
	}
	linkHdr := ""
	if withLink {
		linkHdr = ",link_ns"
	}
	_, err := fmt.Fprintln(w, "app,cfg,window,start_ns,bus_read_ns,bus_write_ns,bus_replace_ns,bus_util"+linkHdr+
		",reads,writes,slc_misses,node_misses,transitions,wb_stall_ns,sync_arrivals,replacements")
	if err != nil {
		return err
	}
	for _, row := range rows {
		tl := row.Res.Timeline
		if tl == nil {
			continue
		}
		for i := 0; i < tl.Windows(); i++ {
			link := ""
			if withLink {
				link = fmt.Sprintf(",%d", tl.LinkNs[i])
			}
			_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d,%.6f%s,%d,%d,%d,%d,%d,%d,%d,%d\n",
				row.App, row.Label, i, tl.StartNs(i),
				tl.BusNs[0][i], tl.BusNs[1][i], tl.BusNs[2][i], tl.BusUtilization(i), link,
				tl.Reads[i], tl.Writes[i], tl.SLCMisses[i], tl.NodeMisses[i],
				tl.TransitionTotal(i), tl.WBStallNs[i], tl.SyncArrivals[i], tl.Replacements[i])
			if err != nil {
				return err
			}
		}
	}
	return nil
}
