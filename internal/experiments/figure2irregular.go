package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/stats"
)

// IrregularTopo holds one topology's sweeps over the extra workload
// families: the Figure 2 clustering sweep (1/2/4 processors per node at
// 6% MP) and the memory-pressure sweep at 4-processor nodes.
type IrregularTopo struct {
	Topology string
	Clusters []int // ring cluster count per clustering degree (nil on bus)
	PPNs     []int
	PPNRows  []Fig2Row
	Mean2    float64
	Mean4    float64
	MPRows   []ScaledMPRow
}

// Fig2Irregular is the irregular/allocator-family study: the paper's
// clustering and memory-pressure sweeps rerun over apps.Extras
// (graph-bfs, pchase, alloc-churn) on both the snooping bus and the
// ring-of-clusters topology. The paper's Table 1 set is all regular
// SPLASH-2 kernels; these are the access patterns — scattered graph
// reads, serially dependent pointer chases, lock-protected migratory
// allocator metadata — where a shared attraction memory should win or
// lose hardest.
type Fig2Irregular struct {
	Topos []IrregularTopo
}

// irregularCfg builds one configuration of the study.
func irregularCfg(topo string, procs, ppn int, mp config.Pressure) config.Machine {
	cfg := config.Baseline(ppn, mp)
	if topo == machine.TopologyRing {
		cfg.Topology = machine.TopologyRing
		cfg.Clusters = ringClusters(procs / ppn)
	}
	return cfg
}

// Figure2Irregular runs the extra families' clustering and pressure
// sweeps on both topologies at the runner's machine size. The full
// matrix (3 apps x 2 topologies x (3 clustering + 5 pressure points))
// executes on the worker pool.
func (r *Runner) Figure2Irregular() (*Fig2Irregular, error) {
	ppns := []int{1, 2, 4}
	const mpPPN = 4
	topos := []string{machine.TopologyBus, machine.TopologyRing}
	var jobs []job
	for _, topo := range topos {
		for _, a := range apps.Extras {
			for _, ppn := range ppns {
				jobs = append(jobs, job{a.Name, irregularCfg(topo, r.Procs, ppn, config.MP6)})
			}
			for _, mp := range config.Pressures {
				jobs = append(jobs, job{a.Name, irregularCfg(topo, r.Procs, mpPPN, mp)})
			}
		}
	}
	results, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	out := &Fig2Irregular{}
	per := len(ppns) + len(config.Pressures)
	for ti, topo := range topos {
		tp := IrregularTopo{Topology: topo, PPNs: ppns}
		if topo == machine.TopologyRing {
			for _, ppn := range ppns {
				tp.Clusters = append(tp.Clusters, ringClusters(r.Procs/ppn))
			}
		}
		var rel2s, rel4s []float64
		base := ti * len(apps.Extras) * per
		for ai, a := range apps.Extras {
			var rnmr [3]float64
			for i := range ppns {
				rnmr[i] = results[base+ai*per+i].RNMr()
			}
			row := Fig2Row{
				App:   a.Name,
				RNMr1: rnmr[0],
				Rel2:  stats.Ratio(rnmr[1], rnmr[0]),
				Rel4:  stats.Ratio(rnmr[2], rnmr[0]),
			}
			tp.PPNRows = append(tp.PPNRows, row)
			rel2s = append(rel2s, row.Rel2)
			rel4s = append(rel4s, row.Rel4)
			mpRow := ScaledMPRow{App: a.Name}
			for pi := range config.Pressures {
				mpRow.RNMr = append(mpRow.RNMr, results[base+ai*per+len(ppns)+pi].RNMr())
			}
			tp.MPRows = append(tp.MPRows, mpRow)
		}
		tp.Mean2 = stats.Mean(rel2s)
		tp.Mean4 = stats.Mean(rel4s)
		out.Topos = append(out.Topos, tp)
	}
	return out, nil
}

// Write renders both topologies' sweeps.
func (f *Fig2Irregular) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2 irregular: clustering and memory-pressure sweeps over the irregular/allocator families")
	for _, tp := range f.Topos {
		if tp.Clusters != nil {
			fmt.Fprintf(w, "\n== %s topology (ring geometry: %dp nodes in %d clusters, %dp in %d, %dp in %d) ==\n",
				tp.Topology, tp.PPNs[0], tp.Clusters[0], tp.PPNs[1], tp.Clusters[1], tp.PPNs[2], tp.Clusters[2])
		} else {
			fmt.Fprintf(w, "\n== %s topology ==\n", tp.Topology)
		}
		fmt.Fprintln(w, "relative RNMr at 6% MP")
		t := stats.NewTable("application", "RNMr(1p)", "2-way rel", "", "4-way rel", "")
		for _, r := range tp.PPNRows {
			t.Row(r.App, fmt.Sprintf("%.4f", r.RNMr1),
				stats.Pct(r.Rel2), stats.Bar(r.Rel2, 1, 20),
				stats.Pct(r.Rel4), stats.Bar(r.Rel4, 1, 20))
		}
		if err := t.Write(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "average relative RNMr: 2-way %s, 4-way %s\n", stats.Pct(tp.Mean2), stats.Pct(tp.Mean4))
		fmt.Fprintln(w, "RNMr by memory pressure at 4-processor nodes")
		hdr := []string{"application"}
		for _, mp := range config.Pressures {
			hdr = append(hdr, mp.Label)
		}
		mt := stats.NewTable(hdr...)
		for _, r := range tp.MPRows {
			cells := []any{r.App}
			for _, v := range r.RNMr {
				cells = append(cells, fmt.Sprintf("%.4f", v))
			}
			mt.Row(cells...)
		}
		if err := mt.Write(w); err != nil {
			return err
		}
	}
	return nil
}
