package coma

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

// flatDir is the obvious reference implementation of the two-level
// directory: plain maps, rescanned on every query. The real Hierarchy
// layers its bookkeeping on the open-addressed lineTable (with its
// backward-shift deletion); the property test below drives both with the
// same transition stream and demands identical answers.
type flatDir struct {
	clusters, perClust int
	// state[node][line] is the node's AM state for the line (valid
	// states only; absent means Invalid).
	state []map[addrspace.Line]cache.State
	// owner[line] is the cluster of the last Owner/Exclusive transition
	// since the line became resident; -1 before any.
	owner map[addrspace.Line]int
}

func newFlatDir(nodes, clusters int) *flatDir {
	f := &flatDir{
		clusters: clusters,
		perClust: nodes / clusters,
		state:    make([]map[addrspace.Line]cache.State, nodes),
		owner:    make(map[addrspace.Line]int),
	}
	for n := range f.state {
		f.state[n] = make(map[addrspace.Line]cache.State)
	}
	return f
}

func (f *flatDir) resident(l addrspace.Line) bool {
	for _, m := range f.state {
		if _, ok := m[l]; ok {
			return true
		}
	}
	return false
}

func (f *flatDir) onTransition(node int, l addrspace.Line, from, to cache.State) {
	wasResident := f.resident(l)
	if to == cache.Invalid {
		delete(f.state[node], l)
	} else {
		f.state[node][l] = to
	}
	if !wasResident && to != cache.Invalid {
		f.owner[l] = -1
	}
	if to == Owner || to == Exclusive {
		f.owner[l] = node / f.perClust
	}
	if !f.resident(l) {
		delete(f.owner, l)
	}
}

func (f *flatDir) count(c int, l addrspace.Line) int {
	n := 0
	for node := c * f.perClust; node < (c+1)*f.perClust; node++ {
		if _, ok := f.state[node][l]; ok {
			n++
		}
	}
	return n
}

func (f *flatDir) lookup(l addrspace.Line) (owner int, mask uint64, ok bool) {
	for c := 0; c < f.clusters; c++ {
		if f.count(c, l) > 0 {
			mask |= 1 << uint(c)
		}
	}
	if mask == 0 {
		return -1, 0, false
	}
	return f.owner[l], mask, true
}

// agree demands that the Hierarchy and the flat reference answer every
// query identically for the given lines.
func agree(t *testing.T, h *Hierarchy, f *flatDir, lines []addrspace.Line) bool {
	t.Helper()
	for _, l := range lines {
		for c := 0; c < f.clusters; c++ {
			if got, want := h.Bottom(c).Count(l), f.count(c, l); got != want {
				t.Logf("line %#x cluster %d: bottom count %d, reference %d", uint64(l), c, got, want)
				return false
			}
		}
		gotO, gotM, gotOK := h.Root().Lookup(l)
		wantO, wantM, wantOK := f.lookup(l)
		if gotOK != wantOK || gotM != wantM || (wantOK && gotO != wantO) {
			t.Logf("line %#x: root (%d, %#x, %v), reference (%d, %#x, %v)",
				uint64(l), gotO, gotM, gotOK, wantO, wantM, wantOK)
			return false
		}
	}
	return true
}

// validStates are the transition targets a resident line can move
// between (plus Invalid for eviction, handled separately).
var validStates = [3]cache.State{Shared, Owner, Exclusive}

// The two-level directory answers every count/lookup query exactly like
// the flat map reference under arbitrary permutations of inserts,
// evictions and state migrations. Line counts deliberately exceed the
// table sizing hint, so deletions keep triggering the lineTable's
// backward-shift compaction mid-sequence — the implementation detail
// most likely to corrupt a neighbouring probe chain.
func TestHierarchyMatchesFlatReference(t *testing.T) {
	prop := func(seed int64, cSel, pcSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		clusters := 1 + int(cSel)%8
		perClust := 1 + int(pcSel)%4
		nodes := clusters * perClust
		// Undersized tables: 8 lines of hint versus 40 distinct lines
		// forces growth and dense probe chains.
		h := NewHierarchy(nodes, clusters, 8)
		f := newFlatDir(nodes, clusters)
		lines := make([]addrspace.Line, 40)
		for i := range lines {
			// Clustered line numbers collide in the table's low bits.
			lines[i] = addrspace.Line(0x40 + i*3)
		}
		cur := make(map[[2]int]cache.State)
		for step := 0; step < 3000; step++ {
			n := rng.Intn(nodes)
			li := rng.Intn(len(lines))
			l := lines[li]
			from := cur[[2]int{n, li}]
			var to cache.State
			if from == cache.Invalid {
				to = validStates[rng.Intn(3)]
			} else if rng.Intn(2) == 0 {
				to = cache.Invalid
			} else {
				to = validStates[rng.Intn(3)]
				if to == from {
					to = cache.Invalid
				}
			}
			cur[[2]int{n, li}] = to
			h.OnTransition(n, l, from, to)
			f.onTransition(n, l, from, to)
			// Spot-check the touched line every step, everything
			// periodically.
			if !agree(t, h, f, lines[li:li+1]) {
				t.Logf("diverged at step %d (c=%d pc=%d)", step, clusters, perClust)
				return false
			}
			if step%512 == 511 && !agree(t, h, f, lines) {
				t.Logf("full divergence at step %d (c=%d pc=%d)", step, clusters, perClust)
				return false
			}
		}
		return agree(t, h, f, lines)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Evicting the last copy must fully retire a line — bottom and root
// forget it — and re-inserting it afterwards starts from a clean slate
// with no stale owner. This is the "no line lost (or resurrected)
// across a ring hop" edge the incremental bookkeeping could get wrong.
func TestHierarchyRetireAndReinsert(t *testing.T) {
	h := NewHierarchy(4, 2, 8)
	l := addrspace.Line(0x99)
	h.OnTransition(0, l, cache.Invalid, Exclusive)
	h.OnTransition(3, l, cache.Invalid, Shared)
	if o, m, ok := h.Root().Lookup(l); !ok || o != 0 || m != 0b11 {
		t.Fatalf("after fill: owner %d mask %#x ok %v", o, m, ok)
	}
	h.OnTransition(3, l, Shared, cache.Invalid)
	h.OnTransition(0, l, Exclusive, cache.Invalid)
	if _, _, ok := h.Root().Lookup(l); ok {
		t.Fatal("line still tracked after last eviction")
	}
	if h.Bottom(0).Lines() != 0 || h.Bottom(1).Lines() != 0 {
		t.Fatal("bottoms still tracking after last eviction")
	}
	// Reinsert as Shared-only: fresh entry, no inherited owner.
	h.OnTransition(2, l, cache.Invalid, Shared)
	if o, m, ok := h.Root().Lookup(l); !ok || o != -1 || m != 0b10 {
		t.Fatalf("after reinsert: owner %d mask %#x ok %v", o, m, ok)
	}
}

// Directory maintenance on warmed tables is allocation-free: the
// OnTransition path (bottom add/remove, root mask updates) sits on the
// ring machine's per-reference hot path and must not allocate once the
// tables have grown to their working size.
func TestHierarchyMaintenanceZeroAlloc(t *testing.T) {
	h := NewHierarchy(8, 4, 256)
	lines := make([]addrspace.Line, 128)
	for i := range lines {
		lines[i] = addrspace.Line(0x1000 + i)
	}
	for _, l := range lines {
		h.OnTransition(0, l, cache.Invalid, Exclusive)
	}
	i := 0
	got := testing.AllocsPerRun(5000, func() {
		l := lines[i%len(lines)]
		n := (i*5 + 1) % 8
		i++
		h.OnTransition(n, l, cache.Invalid, Shared)
		h.OnTransition(n, l, Shared, cache.Invalid)
	})
	if got != 0 {
		t.Fatalf("directory maintenance allocates %.2f times per transition, want 0", got)
	}
}
