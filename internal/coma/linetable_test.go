package coma

import (
	"math/rand"
	"testing"

	"repro/internal/addrspace"
)

// refModel is the map the lineTable replaced; the property tests below
// hold the two implementations against each other under random streams.
type refModel map[addrspace.Line]lineInfo

func randomInfo(rng *rand.Rand, nodes int) lineInfo {
	copies := uint64(rng.Intn(1<<uint(nodes)-1) + 1) // non-zero
	return lineInfo{owner: int16(rng.Intn(nodes)), copies: copies}
}

// checkAgainst verifies the table and the model agree on every key either
// side knows about, and on the total count.
func checkAgainst(t *testing.T, tab *lineTable, ref refModel) {
	t.Helper()
	if tab.len() != len(ref) {
		t.Fatalf("table has %d entries, model %d", tab.len(), len(ref))
	}
	for l, want := range ref {
		got, ok := tab.get(l)
		if !ok || got != want {
			t.Fatalf("line %#x: table (%+v, %v), model %+v", uint64(l), got, ok, want)
		}
	}
	seen := 0
	tab.forEach(func(l addrspace.Line, info lineInfo) {
		want, ok := ref[l]
		if !ok {
			t.Fatalf("table holds line %#x absent from model", uint64(l))
		}
		if info != want {
			t.Fatalf("line %#x: forEach %+v, model %+v", uint64(l), info, want)
		}
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("forEach visited %d entries, model has %d", seen, len(ref))
	}
}

// applyOp mutates both the table and the model with the same operation.
func applyOp(tab *lineTable, ref refModel, rng *rand.Rand, l addrspace.Line, nodes int) {
	switch rng.Intn(4) {
	case 0: // delete (also exercises deleting absent keys)
		tab.del(l)
		delete(ref, l)
	default: // insert or update
		info := randomInfo(rng, nodes)
		tab.put(l, info)
		ref[l] = info
	}
}

// TestLineTableVersusMap drives the open-addressed table and a plain map
// through the same random insert/update/delete stream and requires them to
// stay indistinguishable. The key regimes mirror the coherence tests: the
// paper's 87%-capacity pressure (dense table, long probe chains, constant
// churn) and a sparse regime where deletes dominate.
func TestLineTableVersusMap(t *testing.T) {
	regimes := []struct {
		name  string
		lines int // key universe size
		size  int // table sized for this many lines
		ops   int
	}{
		// 4 nodes x 7 sets x 2 ways at 87% pressure, as in
		// TestCoherenceRandomStream: the table runs near its design load.
		{"paper-pressure", 4 * 7 * 2 * 87 / 100, 4 * 7 * 2, 30000},
		// Tiny table forced through multiple grows.
		{"grows", 4096, 1, 20000},
		// Sparse: huge universe, most gets miss and most dels are no-ops.
		{"sparse", 1 << 20, 64, 20000},
	}
	for _, reg := range regimes {
		reg := reg
		t.Run(reg.name, func(t *testing.T) {
			const nodes = 4
			rng := rand.New(rand.NewSource(7))
			tab := newLineTable(reg.size)
			ref := refModel{}
			for i := 0; i < reg.ops; i++ {
				l := addrspace.Line(rng.Intn(reg.lines) + 1)
				applyOp(tab, ref, rng, l, nodes)
				if i%997 == 0 {
					checkAgainst(t, tab, ref)
				}
			}
			checkAgainst(t, tab, ref)
		})
	}
}

// TestLineTableBackwardShift drills the deletion path directly: colliding
// keys (forced through a tiny table) must all remain reachable after any
// one of them is deleted, in every deletion order.
func TestLineTableBackwardShift(t *testing.T) {
	const n = 24
	perms := [][]int{
		{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1},
	}
	for pi, perm := range perms {
		tab := newLineTable(1) // 16 slots -> guaranteed collisions at n=24... after grow
		ref := refModel{}
		for i := 1; i <= n; i++ {
			info := lineInfo{owner: int16(i % 4), copies: uint64(i)}
			tab.put(addrspace.Line(i), info)
			ref[addrspace.Line(i)] = info
		}
		// Delete in chunks of 4 following the permutation pattern.
		for base := 1; base <= n-4; base += 4 {
			for _, off := range perm {
				l := addrspace.Line(base + off)
				tab.del(l)
				delete(ref, l)
				checkAgainst(t, tab, ref)
			}
		}
		if pi == 0 && tab.len() != len(ref) {
			t.Fatal("count drifted")
		}
	}
}

func TestLineTablePutRejectsEmptySentinel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for copies==0 entry")
		}
	}()
	newLineTable(8).put(1, lineInfo{owner: 0, copies: 0})
}

// FuzzLineTable feeds arbitrary operation streams to the table and the
// reference map. Each input byte pair encodes (op, key).
func FuzzLineTable(f *testing.F) {
	f.Add([]byte{0x01, 0x81, 0x02, 0x01, 0x41})
	f.Add([]byte{0xff, 0x00, 0x10, 0x90, 0x10, 0x10})
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := newLineTable(4)
		ref := refModel{}
		for i := 0; i+1 < len(data); i += 2 {
			l := addrspace.Line(data[i+1]&0x3f) + 1 // small universe -> collisions
			switch {
			case data[i]&0x80 != 0:
				tab.del(l)
				delete(ref, l)
			default:
				info := lineInfo{owner: int16(data[i] & 3), copies: uint64(data[i]&0x7f) + 1}
				tab.put(l, info)
				ref[l] = info
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("table %d entries, model %d", tab.len(), len(ref))
		}
		for l, want := range ref {
			if got, ok := tab.get(l); !ok || got != want {
				t.Fatalf("line %#x: table (%+v, %v), model %+v", uint64(l), got, ok, want)
			}
		}
		tab.forEach(func(l addrspace.Line, info lineInfo) {
			if ref[l] != info {
				t.Fatalf("line %#x: forEach %+v, model %+v", uint64(l), info, ref[l])
			}
		})
	})
}

// TestLineTableZeroAlloc pins the directory's hot operations at zero
// allocations per op once the table is at size (lookup, update, delete,
// reinsert — the steady-state mix the bus snoop path performs).
func TestLineTableZeroAlloc(t *testing.T) {
	tab := newLineTable(64)
	for i := 1; i <= 64; i++ {
		tab.put(addrspace.Line(i), lineInfo{owner: 1, copies: 3})
	}
	var sink lineInfo
	allocs := testing.AllocsPerRun(1000, func() {
		sink, _ = tab.get(37)
		tab.put(37, lineInfo{owner: 2, copies: 7})
		tab.del(37)
		tab.put(37, lineInfo{owner: 1, copies: 3})
	})
	if allocs != 0 {
		t.Fatalf("directory ops allocate %.1f times per op, want 0", allocs)
	}
	_ = sink
}

// TestProtocolSteadyStateZeroAlloc pins the full protocol Read/Write path
// (directory + tag arrays + scratch Txns buffer) at zero allocations per
// reference once the working set is warm.
func TestProtocolSteadyStateZeroAlloc(t *testing.T) {
	const (
		nodes = 4
		sets  = 16
		ways  = 2
	)
	p := NewProtocol(Config{Nodes: nodes, SetsPerAM: sets, Ways: ways})
	// Warm a working set below capacity so no growth happens mid-run.
	lines := nodes * sets * ways * 3 / 4
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4*lines; i++ {
		l := addrspace.Line(rng.Intn(lines) + 1)
		if i%3 == 0 {
			p.Write(rng.Intn(nodes), l)
		} else {
			p.Read(rng.Intn(nodes), l)
		}
	}
	// Steady state: a fixed reference sequence, repeated.
	seq := make([]struct {
		node  int
		line  addrspace.Line
		write bool
	}, 256)
	for i := range seq {
		seq[i].node = rng.Intn(nodes)
		seq[i].line = addrspace.Line(rng.Intn(lines) + 1)
		seq[i].write = rng.Intn(3) == 0
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		s := seq[i%len(seq)]
		i++
		if s.write {
			p.Write(s.node, s.line)
		} else {
			p.Read(s.node, s.line)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state protocol references allocate %.2f times per ref, want 0", allocs)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
