package coma

import (
	"errors"
	"fmt"

	"repro/internal/addrspace"
)

// ErrDisplaced reports that a just-served line is no longer resident at
// the accessing node: a relocation cascade triggered by the access (or a
// concurrent injection) pushed it out again. The protocol permits this —
// the datum survives elsewhere — so randomized checkers treat it as
// benign while still failing on genuine invariant violations.
var ErrDisplaced = errors.New("coma: line displaced from the accessing node")

// CheckLine verifies the per-line coherence invariants directly against
// the tag arrays, independently of the global index bookkeeping:
//
//	(1) at most one node holds the line Exclusive or Owner;
//	(2) an Exclusive copy is the only copy in the machine;
//	(3) a Shared copy implies an Owner copy on some other node — the
//	    "memory copy" responsible for the datum exists;
//	(4) the global index agrees with the tags.
//
// A line resident nowhere and indexed nowhere is trivially coherent.
func (p *Protocol) CheckLine(l addrspace.Line) error {
	owner := -1
	var copies uint64
	for n := 0; n < p.nodes; n++ {
		st, ok := p.ams[n].Lookup(l)
		if !ok {
			continue
		}
		switch st {
		case Shared:
			copies |= 1 << uint(n)
		case Owner, Exclusive:
			if owner >= 0 {
				return fmt.Errorf("line %#x: two E/O holders (%d and %d)", uint64(l), owner, n)
			}
			owner = n
			copies |= 1 << uint(n)
		default:
			return fmt.Errorf("line %#x: bad AM state %d at node %d", uint64(l), st, n)
		}
	}
	info, indexed := p.index.get(l)
	if copies == 0 {
		if indexed {
			return fmt.Errorf("line %#x: indexed %+v but resident nowhere", uint64(l), info)
		}
		return nil
	}
	if owner < 0 {
		return fmt.Errorf("line %#x: Shared copies (mask %#x) with no Owner", uint64(l), copies)
	}
	if st, _ := p.ams[owner].Lookup(l); st == Exclusive && copies != 1<<uint(owner) {
		return fmt.Errorf("line %#x: Exclusive at node %d with replicas (mask %#x)", uint64(l), owner, copies)
	}
	if !indexed || int(info.owner) != owner || info.copies != copies {
		return fmt.Errorf("line %#x: index %+v disagrees with tags (owner %d, mask %#x)",
			uint64(l), info, owner, copies)
	}
	return nil
}

// CheckServed verifies CheckLine plus the service postcondition: an access
// just performed by node left a valid (non-Invalid) copy there, so no read
// is ever served out of Invalid state. When the copy was legitimately
// displaced by a relocation cascade the returned error wraps ErrDisplaced;
// any other error is an invariant violation.
func (p *Protocol) CheckServed(node int, l addrspace.Line) error {
	if err := p.CheckLine(l); err != nil {
		return err
	}
	if _, ok := p.ams[node].Lookup(l); !ok {
		return fmt.Errorf("%w: line %#x at node %d", ErrDisplaced, uint64(l), node)
	}
	return nil
}
