// Package coma implements the bus-based COMA coherence protocol of the
// paper (after Landin & Dahlgren, "Bus-Based COMA", HPCA-2): snooping
// attraction memories with four states per line — Exclusive, Owner,
// Shared, Invalid — an invalidation protocol, and an accept-based
// replacement strategy. Since the entire memory is cache, an evicted line
// in state Exclusive or Owner must be relocated to another attraction
// memory so the datum is never lost.
package coma
