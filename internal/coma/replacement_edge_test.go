package coma

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

// amState asserts the line's state at a node (Invalid = absent).
func amState(t *testing.T, p *Protocol, node int, l addrspace.Line, want cache.State) {
	t.Helper()
	got, ok := p.ams[node].Lookup(l)
	if !ok {
		got = cache.Invalid
	}
	if got != want {
		t.Fatalf("node %d line %#x: state %s, want %s", node, uint64(l), StateName(got), StateName(want))
	}
}

// TestReplacementEdgeCases drives the accept-based replacement machinery
// through its corner paths with single-set attraction memories (every line
// collides), asserting exact end states and counters.
func TestReplacementEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{
			// The machine's only copy of a line is evicted: the datum
			// must be injected into another AM, never dropped.
			name: "last-copy-displacement",
			run: func(t *testing.T) {
				p := NewProtocol(Config{Nodes: 2, SetsPerAM: 1, Ways: 1})
				p.Read(0, 0) // E at node 0
				eff := p.Read(0, 1)
				if len(eff.Txns) != 1 || eff.Txns[0].Class != TxnReplace || !eff.Txns[0].Data {
					t.Fatalf("want one data-carrying replace txn, got %+v", eff.Txns)
				}
				st := p.Stats()
				if st.Injects != 1 || st.ForcedDrops != 0 {
					t.Fatalf("Injects=%d ForcedDrops=%d, want 1,0", st.Injects, st.ForcedDrops)
				}
				amState(t, p, 1, 0, Exclusive) // displaced line lives on at node 1
				amState(t, p, 0, 1, Exclusive)
				if err := p.CheckLine(0); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// An Owner with surviving Shared replicas is evicted: ownership
			// transfers to a replica by an address-only transaction — no
			// data moves on the bus.
			name: "owner-promotion",
			run: func(t *testing.T) {
				p := NewProtocol(Config{Nodes: 2, SetsPerAM: 1, Ways: 1})
				p.Read(0, 0) // E at node 0
				p.Read(1, 0) // O at node 0, S at node 1
				eff := p.Read(0, 1)
				if len(eff.Txns) != 1 || eff.Txns[0].Class != TxnReplace || eff.Txns[0].Data {
					t.Fatalf("want one address-only replace txn, got %+v", eff.Txns)
				}
				st := p.Stats()
				if st.Promotes != 1 || st.Injects != 0 {
					t.Fatalf("Promotes=%d Injects=%d, want 1,0", st.Promotes, st.Injects)
				}
				amState(t, p, 1, 0, Owner) // the replica inherited ownership
				if err := p.CheckLine(0); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// Every candidate way holds a Shared line only: the receiver
			// accepts by silently dropping its Shared victim (the Owner
			// elsewhere keeps the datum) — no avalanche.
			name: "injection-drops-shared-way",
			run: func(t *testing.T) {
				p := NewProtocol(Config{Nodes: 3, SetsPerAM: 1, Ways: 1})
				p.Read(2, 1) // E at node 2
				p.Read(1, 1) // O at node 2, S at node 1
				p.Read(0, 0) // E at node 0
				p.Read(0, 2) // evicts line 0: nodes 1 and 2 are full, node 1 holds only S
				st := p.Stats()
				if st.Injects != 1 || st.SharedDrops != 1 || st.ForcedDrops != 0 {
					t.Fatalf("Injects=%d SharedDrops=%d ForcedDrops=%d, want 1,1,0",
						st.Injects, st.SharedDrops, st.ForcedDrops)
				}
				amState(t, p, 1, 0, Exclusive) // injected over the dropped S copy
				amState(t, p, 2, 1, Owner)     // datum of the dropped copy survives
				if owner, copies := p.Holders(1); owner != 2 || copies != 1<<2 {
					t.Fatalf("line 1 holders = (%d, %#x), want (2, 0x4)", owner, copies)
				}
				if err := p.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// Every way of the set in every node refuses (all E/O): the
			// forced injection cascades and the bound converts the
			// pathological livelock into a counted drop; invariants hold
			// and the dropped line refetches cold.
			name: "full-machine-forced-cascade",
			run: func(t *testing.T) {
				p := NewProtocol(Config{Nodes: 2, SetsPerAM: 1, Ways: 1})
				p.Read(0, 0) // E at node 0
				p.Read(1, 1) // E at node 1
				eff := p.Read(0, 2)
				st := p.Stats()
				if st.ForcedDrops == 0 || eff.Drops == 0 {
					t.Fatalf("full machine must end in a forced drop: stats %+v eff %+v", st, eff)
				}
				if st.Injects == 0 {
					t.Fatal("cascade performed no injections before the bound")
				}
				if err := p.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				// The dropped line is gone everywhere and refetches cold.
				var dropped addrspace.Line = 99
				for _, l := range []addrspace.Line{0, 1, 2} {
					if owner, _ := p.Holders(l); owner < 0 {
						dropped = l
					}
				}
				if dropped == 99 {
					t.Fatal("no line was dropped")
				}
				cold := p.Stats().ColdAllocs
				p.Read(1, dropped)
				if p.Stats().ColdAllocs != cold+1 {
					t.Fatal("dropped line did not refetch cold")
				}
			},
		},
		{
			// With promotion disabled an evicted Owner injects its data
			// even though replicas survive; the injected copy stays Owner.
			name: "no-promote-injects-owner",
			run: func(t *testing.T) {
				p := NewProtocol(Config{
					Nodes: 3, SetsPerAM: 1, Ways: 2,
					Policy:    Policy{VictimSharedFirst: true, AcceptPriority: true},
					PolicySet: true,
				})
				p.Read(0, 0) // E at node 0
				p.Read(1, 0) // O at node 0, S at node 1
				p.Read(1, 4) // fills node 1's second way (keeps it off the invalid-way scan)
				p.Read(0, 3) // fills node 0's second way
				// Evict the Owner (Shared-first doesn't apply: node 0 has
				// no Shared ways; LRU picks line 0).
				p.Read(0, 6)
				st := p.Stats()
				if st.Promotes != 0 || st.Injects != 1 {
					t.Fatalf("Promotes=%d Injects=%d, want 0,1", st.Promotes, st.Injects)
				}
				amState(t, p, 2, 0, Owner) // injected to the empty node, still Owner
				amState(t, p, 1, 0, Shared)
				if err := p.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}
