package coma

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

// Two-level directory for hierarchical (ring-of-clusters) interconnects,
// after the DirectoryBottom/RootDirectory split of the DDM and mgsim COMA
// designs: each cluster keeps a bottom directory summarizing which lines
// its local attraction memories hold, and a single address-interleaved
// root directory records, per line, the set of clusters holding copies
// and the cluster of the Owner/Exclusive copy. A remote miss consults the
// root to find the supplier cluster instead of broadcasting to the whole
// machine.
//
// The directories are a derived view: the Protocol remains the single
// authority on line states. They are kept exactly in sync by observing
// the protocol's transition stream (Config.Transition), which carries
// every residency change — fills, evictions, invalidations, promotions —
// so no separate write path exists that could drift. Check verifies the
// mirror against the tag arrays; the ring fuzz tests call it after every
// randomized run.
//
// Both levels reuse the protocol's open-addressed lineTable, so directory
// maintenance inherits the allocation-free steady state of the bus path:
// the bottom tables store the local copy count in the lineInfo.copies
// field (count >= 1, matching the table's non-zero sentinel) and the root
// stores the cluster bitmask there, with the owner cluster in the owner
// field.

// DirectoryBottom tracks how many copies of each line a cluster's
// attraction memories hold. A line is present iff some node in the
// cluster holds it in any valid state.
type DirectoryBottom struct {
	t *lineTable
}

// Count returns the number of copies of l inside the cluster.
func (d *DirectoryBottom) Count(l addrspace.Line) int {
	info, ok := d.t.get(l)
	if !ok {
		return 0
	}
	return int(info.copies)
}

// Lines returns the number of distinct lines resident in the cluster.
func (d *DirectoryBottom) Lines() int { return d.t.len() }

// add records one more local copy and returns the new count.
func (d *DirectoryBottom) add(l addrspace.Line) int {
	info, _ := d.t.get(l)
	info.owner = -1
	info.copies++
	d.t.put(l, info)
	return int(info.copies)
}

// remove drops one local copy and returns the remaining count.
func (d *DirectoryBottom) remove(l addrspace.Line) int {
	info, ok := d.t.get(l)
	if !ok {
		panic("coma: DirectoryBottom removing an untracked line")
	}
	info.copies--
	if info.copies == 0 {
		d.t.del(l)
		return 0
	}
	d.t.put(l, info)
	return int(info.copies)
}

// RootDirectory resolves inter-cluster misses: per line, the bitmask of
// clusters holding copies and the cluster of the Owner/Exclusive copy.
type RootDirectory struct {
	t *lineTable
}

// Lookup returns the owner cluster and holder-cluster bitmask for l.
// ok is false when no cluster holds the line.
func (r *RootDirectory) Lookup(l addrspace.Line) (owner int, clusters uint64, ok bool) {
	info, ok := r.t.get(l)
	if !ok {
		return -1, 0, false
	}
	return int(info.owner), info.copies, true
}

// Lines returns the number of distinct lines tracked machine-wide.
func (r *RootDirectory) Lines() int { return r.t.len() }

func (r *RootDirectory) addCluster(l addrspace.Line, c int) {
	info, ok := r.t.get(l)
	if !ok {
		info.owner = -1
	}
	info.copies |= 1 << uint(c)
	r.t.put(l, info)
}

func (r *RootDirectory) removeCluster(l addrspace.Line, c int) {
	info, ok := r.t.get(l)
	if !ok {
		panic("coma: RootDirectory removing an untracked cluster")
	}
	info.copies &^= 1 << uint(c)
	if info.copies == 0 {
		r.t.del(l)
		return
	}
	r.t.put(l, info)
}

func (r *RootDirectory) setOwner(l addrspace.Line, c int) {
	info, ok := r.t.get(l)
	if !ok {
		panic("coma: RootDirectory owner for an untracked line")
	}
	info.owner = int16(c)
	r.t.put(l, info)
}

// Hierarchy bundles the directory levels for one ring machine: the
// node-to-cluster mapping, one DirectoryBottom per cluster and the
// RootDirectory. Register OnTransition as the protocol's Transition hook
// to keep the mirror exact.
type Hierarchy struct {
	clusters int
	perClust int
	bottoms  []DirectoryBottom
	root     RootDirectory
}

// NewHierarchy builds empty directories for a machine of `nodes` nodes in
// `clusters` equal contiguous clusters. linesPerCluster sizes the bottom
// tables (one cluster's total attraction-memory lines) so steady-state
// maintenance never allocates.
func NewHierarchy(nodes, clusters, linesPerCluster int) *Hierarchy {
	if clusters <= 0 || nodes%clusters != 0 {
		panic("coma: nodes must divide evenly into clusters")
	}
	h := &Hierarchy{
		clusters: clusters,
		perClust: nodes / clusters,
		bottoms:  make([]DirectoryBottom, clusters),
	}
	for c := range h.bottoms {
		h.bottoms[c].t = newLineTable(linesPerCluster)
	}
	h.root.t = newLineTable(clusters * linesPerCluster)
	return h
}

// Clusters returns the cluster count.
func (h *Hierarchy) Clusters() int { return h.clusters }

// Cluster maps a node to its cluster (contiguous blocks).
func (h *Hierarchy) Cluster(node int) int { return node / h.perClust }

// Bottom returns cluster c's directory.
func (h *Hierarchy) Bottom(c int) *DirectoryBottom { return &h.bottoms[c] }

// Root returns the root directory.
func (h *Hierarchy) Root() *RootDirectory { return &h.root }

// OnTransition mirrors one AM residency change into the directories. It
// is the protocol's Transition hook: from != to always holds.
func (h *Hierarchy) OnTransition(node int, l addrspace.Line, from, to cache.State) {
	c := node / h.perClust
	if from == cache.Invalid {
		if h.bottoms[c].add(l) == 1 {
			h.root.addCluster(l, c)
		}
	}
	if to == Owner || to == Exclusive {
		h.root.setOwner(l, c)
	}
	if to == cache.Invalid {
		if h.bottoms[c].remove(l) == 0 {
			h.root.removeCluster(l, c)
		}
	}
}

// CheckLine verifies one line's hierarchy invariants on top of the
// protocol's own per-line checks (Protocol.CheckLine): the bottom
// directories count exactly the cluster-local copies, the root's mask is
// exactly the set of holding clusters, and the root's owner cluster is
// the cluster of the machine-wide Owner/Exclusive holder. A line
// resident nowhere must be tracked nowhere — it cannot be "lost" into a
// directory level while in flight across a ring hop.
func (h *Hierarchy) CheckLine(p *Protocol, l addrspace.Line) error {
	if err := p.CheckLine(l); err != nil {
		return err
	}
	if p.nodes != h.clusters*h.perClust {
		return fmt.Errorf("hierarchy: built for %d nodes, protocol has %d", h.clusters*h.perClust, p.nodes)
	}
	owner := -1
	var mask uint64
	for n := 0; n < p.nodes; n++ {
		st, ok := p.ams[n].Lookup(l)
		if !ok {
			continue
		}
		c := h.Cluster(n)
		mask |= 1 << uint(c)
		if st == Owner || st == Exclusive {
			owner = c
		}
	}
	for c := 0; c < h.clusters; c++ {
		want := 0
		for n := c * h.perClust; n < (c+1)*h.perClust; n++ {
			if _, ok := p.ams[n].Lookup(l); ok {
				want++
			}
		}
		if got := h.bottoms[c].Count(l); got != want {
			return fmt.Errorf("hierarchy: line %#x cluster %d: bottom count %d, AMs hold %d",
				uint64(l), c, got, want)
		}
	}
	rootOwner, clusters, ok := h.root.Lookup(l)
	if mask == 0 {
		if ok {
			return fmt.Errorf("hierarchy: line %#x resident nowhere but root tracks mask %#x",
				uint64(l), clusters)
		}
		return nil
	}
	if !ok {
		return fmt.Errorf("hierarchy: line %#x resident but lost from the root directory", uint64(l))
	}
	if clusters != mask {
		return fmt.Errorf("hierarchy: line %#x root mask %#x, AMs say %#x", uint64(l), clusters, mask)
	}
	if rootOwner != owner {
		return fmt.Errorf("hierarchy: line %#x root owner cluster %d, AMs say %d", uint64(l), rootOwner, owner)
	}
	return nil
}

// CheckServed verifies CheckLine plus the protocol's service
// postcondition (Protocol.CheckServed); displacement by a relocation
// cascade still wraps ErrDisplaced.
func (h *Hierarchy) CheckServed(p *Protocol, node int, l addrspace.Line) error {
	if err := h.CheckLine(p, l); err != nil {
		return err
	}
	return p.CheckServed(node, l)
}

// Check verifies the hierarchy invariants against the protocol's tag
// arrays (the authority), independently of the incremental bookkeeping:
//
//	(1) exactly one Owner/Exclusive holder machine-wide per present line;
//	(2) every DirectoryBottom holds exactly its cluster's AM contents —
//	    inclusion in both directions, with exact copy counts;
//	(3) the root's cluster mask is exactly the union of the bottoms, and
//	    its owner cluster is the cluster of the protocol-level owner;
//	(4) no line is lost across a ring hop: every line the protocol
//	    indexes resolves through the root, and vice versa.
func (h *Hierarchy) Check(p *Protocol) error {
	if p.nodes != h.clusters*h.perClust {
		return fmt.Errorf("hierarchy: built for %d nodes, protocol has %d", h.clusters*h.perClust, p.nodes)
	}
	type want struct {
		counts []int
		owner  int
	}
	lines := make(map[addrspace.Line]*want)
	for n := 0; n < p.nodes; n++ {
		node := n
		var err error
		p.ams[n].ForEach(func(e cache.Entry) {
			if err != nil {
				return
			}
			w := lines[e.Line]
			if w == nil {
				w = &want{counts: make([]int, h.clusters), owner: -1}
				lines[e.Line] = w
			}
			w.counts[h.Cluster(node)]++
			if e.State == Owner || e.State == Exclusive {
				if w.owner >= 0 {
					err = fmt.Errorf("hierarchy: line %#x has two E/O holders (clusters %d and %d)",
						uint64(e.Line), w.owner, h.Cluster(node))
					return
				}
				w.owner = h.Cluster(node)
			}
		})
		if err != nil {
			return err
		}
	}
	for l, w := range lines {
		if w.owner < 0 {
			return fmt.Errorf("hierarchy: line %#x resident with no owner", uint64(l))
		}
		var mask uint64
		for c, cnt := range w.counts {
			got := h.bottoms[c].Count(l)
			if got != cnt {
				return fmt.Errorf("hierarchy: line %#x cluster %d: bottom count %d, AMs hold %d",
					uint64(l), c, got, cnt)
			}
			if cnt > 0 {
				mask |= 1 << uint(c)
			}
		}
		owner, clusters, ok := h.root.Lookup(l)
		if !ok {
			return fmt.Errorf("hierarchy: line %#x resident but lost from the root directory", uint64(l))
		}
		if clusters != mask {
			return fmt.Errorf("hierarchy: line %#x root mask %#x, AMs say %#x", uint64(l), clusters, mask)
		}
		if owner != w.owner {
			return fmt.Errorf("hierarchy: line %#x root owner cluster %d, AMs say %d", uint64(l), owner, w.owner)
		}
	}
	// No stale entries: bottoms and root must not track lines the AMs
	// dropped, and every protocol-indexed line must resolve via the root.
	for c := range h.bottoms {
		var stale error
		h.bottoms[c].t.forEach(func(l addrspace.Line, info lineInfo) {
			if stale == nil && lines[l] == nil {
				stale = fmt.Errorf("hierarchy: cluster %d bottom tracks absent line %#x (count %d)",
					c, uint64(l), info.copies)
			}
		})
		if stale != nil {
			return stale
		}
	}
	var stale error
	h.root.t.forEach(func(l addrspace.Line, info lineInfo) {
		if stale == nil && lines[l] == nil {
			stale = fmt.Errorf("hierarchy: root tracks absent line %#x (mask %#x)", uint64(l), info.copies)
		}
	})
	if stale != nil {
		return stale
	}
	var lost error
	p.index.forEach(func(l addrspace.Line, _ lineInfo) {
		if lost == nil {
			if _, _, ok := h.root.Lookup(l); !ok {
				lost = fmt.Errorf("hierarchy: indexed line %#x unresolvable through the root", uint64(l))
			}
		}
	})
	return lost
}
