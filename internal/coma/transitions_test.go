package coma

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

// Table-driven verification of every (local state, access) transition of
// the E/O/S/I protocol, for both the accessing node and the other copy
// holders. setup establishes the initial machine-wide state of line 7
// from the accessor's (node 0) point of view.
func TestStateTransitionTable(t *testing.T) {
	const line addrspace.Line = 7
	type outcome struct {
		local    cache.State // node 0's state after the access
		hit      bool
		txns     int
		dataTxns int
		remote0  cache.State // node 1's state after (the previous holder)
	}
	cases := []struct {
		name   string
		setup  func(p *Protocol) // establish pre-state
		access func(p *Protocol) Effect
		want   outcome
	}{
		{
			name:   "read/I-nowhere(cold)",
			setup:  func(p *Protocol) {},
			access: func(p *Protocol) Effect { return p.Read(0, line) },
			want:   outcome{local: Exclusive, txns: 0},
		},
		{
			name:   "read/I-remoteE",
			setup:  func(p *Protocol) { p.Write(1, line) },
			access: func(p *Protocol) Effect { return p.Read(0, line) },
			want:   outcome{local: Shared, txns: 1, dataTxns: 1, remote0: Owner},
		},
		{
			name: "read/I-remoteO",
			setup: func(p *Protocol) {
				p.Write(1, line)
				p.Read(2, line) // node 1: O, node 2: S
			},
			access: func(p *Protocol) Effect { return p.Read(0, line) },
			want:   outcome{local: Shared, txns: 1, dataTxns: 1, remote0: Owner},
		},
		{
			name:   "read/E-local",
			setup:  func(p *Protocol) { p.Write(0, line) },
			access: func(p *Protocol) Effect { return p.Read(0, line) },
			want:   outcome{local: Exclusive, hit: true},
		},
		{
			name: "read/S-local",
			setup: func(p *Protocol) {
				p.Write(1, line)
				p.Read(0, line)
			},
			access: func(p *Protocol) Effect { return p.Read(0, line) },
			want:   outcome{local: Shared, hit: true, remote0: Owner},
		},
		{
			name: "read/O-local",
			setup: func(p *Protocol) {
				p.Write(0, line)
				p.Read(1, line) // node 0: O, node 1: S
			},
			access: func(p *Protocol) Effect { return p.Read(0, line) },
			want:   outcome{local: Owner, hit: true, remote0: Shared},
		},
		{
			name:   "write/I-nowhere(cold)",
			setup:  func(p *Protocol) {},
			access: func(p *Protocol) Effect { return p.Write(0, line) },
			want:   outcome{local: Exclusive},
		},
		{
			name:   "write/I-remoteE(fetch-exclusive)",
			setup:  func(p *Protocol) { p.Write(1, line) },
			access: func(p *Protocol) Effect { return p.Write(0, line) },
			want:   outcome{local: Exclusive, txns: 1, dataTxns: 1, remote0: cache.Invalid},
		},
		{
			name: "write/S-local(upgrade)",
			setup: func(p *Protocol) {
				p.Write(1, line)
				p.Read(0, line)
			},
			access: func(p *Protocol) Effect { return p.Write(0, line) },
			want:   outcome{local: Exclusive, txns: 1, remote0: cache.Invalid},
		},
		{
			name: "write/O-local(upgrade)",
			setup: func(p *Protocol) {
				p.Write(0, line)
				p.Read(1, line) // node 0: O, node 1: S
			},
			access: func(p *Protocol) Effect { return p.Write(0, line) },
			want:   outcome{local: Exclusive, txns: 1, remote0: cache.Invalid},
		},
		{
			name:   "write/E-local(silent)",
			setup:  func(p *Protocol) { p.Write(0, line) },
			access: func(p *Protocol) Effect { return p.Write(0, line) },
			want:   outcome{local: Exclusive, hit: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newProt(4, 8, 2)
			tc.setup(p)
			eff := tc.access(p)
			if eff.Hit != tc.want.hit {
				t.Errorf("hit = %v, want %v", eff.Hit, tc.want.hit)
			}
			if len(eff.Txns) != tc.want.txns {
				t.Errorf("txns = %d (%+v), want %d", len(eff.Txns), eff.Txns, tc.want.txns)
			}
			data := 0
			for _, txn := range eff.Txns {
				if txn.Data {
					data++
				}
			}
			if data != tc.want.dataTxns {
				t.Errorf("data txns = %d, want %d", data, tc.want.dataTxns)
			}
			if got := state(t, p, 0, line); got != tc.want.local {
				t.Errorf("local state %s, want %s", StateName(got), StateName(tc.want.local))
			}
			if got := state(t, p, 1, line); got != tc.want.remote0 {
				t.Errorf("node 1 state %s, want %s", StateName(got), StateName(tc.want.remote0))
			}
			if err := p.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// Reading a line that exists only as a remote Owner with other sharers
// must leave exactly one Owner machine-wide.
func TestSingleOwnerAfterFanOut(t *testing.T) {
	p := newProt(8, 8, 2)
	p.Write(3, 7)
	for n := 0; n < 8; n++ {
		if n != 3 {
			p.Read(n, 7)
		}
	}
	owners := 0
	for n := 0; n < 8; n++ {
		if st := state(t, p, n, 7); st == Owner || st == Exclusive {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("owners = %d, want 1", owners)
	}
	if _, copies := p.Holders(7); copies != 0xff {
		t.Fatalf("copies = %b, want full replication", copies)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
