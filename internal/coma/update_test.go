package coma

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

func updateProt(nodes, sets, ways int) *Protocol {
	pol := DefaultPolicy()
	pol.WriteUpdate = true
	return protWithPolicy(nodes, sets, ways, pol)
}

// An update-policy write to a replicated line keeps every copy valid; the
// writer becomes Owner and the previous owner is demoted to Shared.
func TestUpdateWriteKeepsSharers(t *testing.T) {
	p := updateProt(4, 8, 2)
	p.Write(0, 7)
	p.Read(1, 7)
	p.Read(2, 7) // node 0: O, nodes 1-2: S
	eff := p.Write(2, 7)
	if eff.Hit {
		t.Fatal("replicated write cannot be a silent hit")
	}
	if len(eff.Txns) != 1 || !eff.Txns[0].Data || eff.Txns[0].Class != TxnWrite {
		t.Fatalf("txns %+v, want one data-carrying write broadcast", eff.Txns)
	}
	if eff.Writable {
		t.Fatal("a replicated line must not become writable")
	}
	if st := state(t, p, 2, 7); st != Owner {
		t.Fatalf("writer state %s, want O", StateName(st))
	}
	if st := state(t, p, 0, 7); st != Shared {
		t.Fatalf("previous owner state %s, want S", StateName(st))
	}
	if st := state(t, p, 1, 7); st != Shared {
		t.Fatalf("sharer state %s, want S (not invalidated)", StateName(st))
	}
	// Sharers re-read without any transaction.
	if eff := p.Read(0, 7); !eff.Hit {
		t.Fatal("update policy must keep reader copies valid")
	}
	if s := p.Stats(); s.Updates != 1 || s.Upgrades != 0 {
		t.Fatalf("stats %+v", s)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// An update-policy write miss fetches a copy and takes ownership without
// invalidating anyone.
func TestUpdateWriteMiss(t *testing.T) {
	p := updateProt(4, 8, 2)
	p.Write(0, 7)
	p.Read(1, 7)
	eff := p.Write(3, 7)
	if eff.Cold || eff.Hit {
		t.Fatalf("effect %+v", eff)
	}
	if st := state(t, p, 3, 7); st != Owner {
		t.Fatalf("writer state %s, want O", StateName(st))
	}
	for _, n := range []int{0, 1} {
		if st := state(t, p, n, 7); st != Shared {
			t.Fatalf("node %d state %s, want S", n, StateName(st))
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A sole-copy write under the update policy is still exclusive and
// writable (no sharers to update).
func TestUpdateSoleCopyWritable(t *testing.T) {
	p := updateProt(4, 8, 2)
	eff := p.Write(0, 7) // cold
	if !eff.Writable {
		t.Fatal("cold write must be writable")
	}
	eff = p.Write(0, 7)
	if !eff.Hit || !eff.Writable {
		t.Fatalf("sole-copy re-write must hit: %+v", eff)
	}
}

// Update-policy invariants hold under random operation sequences.
func TestUpdateInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(4)
		p := updateProt(nodes, 1+rng.Intn(4), 1+rng.Intn(3))
		for i := 0; i < 300; i++ {
			node := rng.Intn(nodes)
			line := addrspace.Line(rng.Intn(40))
			if rng.Intn(2) == 0 {
				p.Read(node, line)
			} else {
				p.Write(node, line)
			}
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Under the update policy nothing is ever invalidated by writes: once a
// node holds a copy, only replacement can take it away.
func TestUpdateNeverInvalidates(t *testing.T) {
	p := updateProt(4, 16, 4) // ample space: no replacements
	for n := 0; n < 4; n++ {
		p.Read(n, 9)
	}
	for i := 0; i < 10; i++ {
		p.Write(i%4, 9)
	}
	for n := 0; n < 4; n++ {
		if st, ok := p.AM(n).Lookup(9); !ok || st == cache.Invalid {
			t.Fatalf("node %d lost its copy under the update policy", n)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
