package coma

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

func newProt(nodes, sets, ways int) *Protocol {
	return NewProtocol(Config{Nodes: nodes, SetsPerAM: sets, Ways: ways})
}

func state(t *testing.T, p *Protocol, node int, l addrspace.Line) cache.State {
	t.Helper()
	st, _ := p.AM(node).Lookup(l)
	return st
}

func TestColdAllocation(t *testing.T) {
	p := newProt(4, 8, 2)
	eff := p.Read(1, 100)
	if !eff.Cold || eff.Hit || len(eff.Txns) != 0 {
		t.Fatalf("cold read effect %+v", eff)
	}
	if got := state(t, p, 1, 100); got != Exclusive {
		t.Fatalf("state %s, want E", StateName(got))
	}
	if owner, copies := p.Holders(100); owner != 1 || copies != 1<<1 {
		t.Fatalf("holders %d %b", owner, copies)
	}
	if s := p.Stats(); s.ColdAllocs != 1 || s.ReadMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReadSharing(t *testing.T) {
	p := newProt(4, 8, 2)
	p.Write(0, 7) // cold, E at node 0
	eff := p.Read(2, 7)
	if eff.Cold || eff.Hit {
		t.Fatalf("effect %+v", eff)
	}
	if len(eff.Txns) != 1 || eff.Txns[0].Class != TxnRead || !eff.Txns[0].Data || eff.Txns[0].Remote != 0 {
		t.Fatalf("txns %+v", eff.Txns)
	}
	// Supplier E -> O, requester gets S.
	if state(t, p, 0, 7) != Owner || state(t, p, 2, 7) != Shared {
		t.Fatalf("states %s %s", StateName(state(t, p, 0, 7)), StateName(state(t, p, 2, 7)))
	}
	// Second read hits locally.
	if eff := p.Read(2, 7); !eff.Hit {
		t.Fatalf("re-read should hit: %+v", eff)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteUpgradeInvalidates(t *testing.T) {
	p := newProt(4, 8, 2)
	p.Write(0, 7)
	p.Read(1, 7)
	p.Read(2, 7)
	eff := p.Write(2, 7) // S at node 2: upgrade
	if eff.Hit || eff.Cold {
		t.Fatalf("effect %+v", eff)
	}
	if len(eff.Txns) != 1 || eff.Txns[0].Class != TxnWrite || eff.Txns[0].Data {
		t.Fatalf("txns %+v", eff.Txns)
	}
	if state(t, p, 2, 7) != Exclusive {
		t.Fatal("writer must end Exclusive")
	}
	for _, n := range []int{0, 1} {
		if st := state(t, p, n, 7); st != cache.Invalid {
			t.Fatalf("node %d still %s", n, StateName(st))
		}
	}
	if s := p.Stats(); s.Upgrades != 1 {
		t.Fatalf("stats %+v", s)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMissFetchesExclusive(t *testing.T) {
	p := newProt(4, 8, 2)
	p.Write(0, 7)
	p.Read(1, 7)
	eff := p.Write(3, 7) // absent at node 3: read-exclusive
	if len(eff.Txns) != 1 || eff.Txns[0].Class != TxnWrite || !eff.Txns[0].Data || eff.Txns[0].Remote != 0 {
		t.Fatalf("txns %+v", eff.Txns)
	}
	if state(t, p, 3, 7) != Exclusive || state(t, p, 0, 7) != cache.Invalid || state(t, p, 1, 7) != cache.Invalid {
		t.Fatal("ownership did not transfer cleanly")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteHitExclusiveIsLocal(t *testing.T) {
	p := newProt(2, 8, 2)
	p.Write(0, 7)
	eff := p.Write(0, 7)
	if !eff.Hit || len(eff.Txns) != 0 {
		t.Fatalf("E-hit write must be local: %+v", eff)
	}
}

// Fill node 0's set 0 with exclusive lines, then overflow: the accept-based
// replacement must inject the victim into another node, preferring one
// with an Invalid way.
func TestReplacementInjection(t *testing.T) {
	p := newProt(4, 2, 2) // per-node set 0 holds lines 0,4,8,... two ways
	p.Write(0, 0)
	p.Write(0, 4)
	eff := p.Write(0, 8) // evicts LRU line 0
	var inject *Txn
	for i := range eff.Txns {
		if eff.Txns[i].Class == TxnReplace {
			inject = &eff.Txns[i]
		}
	}
	if inject == nil || !inject.Data {
		t.Fatalf("no injection in %+v", eff.Txns)
	}
	recv := inject.Remote
	if recv == 0 {
		t.Fatal("receiver must differ from sender")
	}
	if state(t, p, recv, 0) != Exclusive {
		t.Fatal("injected line must be Exclusive at the receiver")
	}
	if s := p.Stats(); s.Injects != 1 {
		t.Fatalf("stats %+v", s)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// An evicted Owner line with surviving Shared copies transfers ownership
// instead of moving data.
func TestReplacementPromotion(t *testing.T) {
	p := newProt(4, 2, 2)
	p.Write(0, 0)
	p.Read(1, 0) // node 0: O, node 1: S
	p.Write(0, 4)
	eff := p.Write(0, 8) // evicts line 0 (Owner) from node 0
	var promote *Txn
	for i := range eff.Txns {
		if eff.Txns[i].Class == TxnReplace && !eff.Txns[i].Data {
			promote = &eff.Txns[i]
		}
	}
	if promote == nil {
		t.Fatalf("no promotion in %+v", eff.Txns)
	}
	if promote.Remote != 1 || state(t, p, 1, 0) != Owner {
		t.Fatal("surviving copy must become Owner")
	}
	if s := p.Stats(); s.Promotes != 1 || s.Injects != 0 {
		t.Fatalf("stats %+v", s)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Victim choice prefers Shared lines over Owner/Exclusive lines.
func TestVictimPrefersShared(t *testing.T) {
	p := newProt(4, 2, 2)
	p.Write(1, 0)
	p.Read(0, 0)  // node 0 has line 0 Shared
	p.Write(0, 4) // node 0 set 0: S(0), E(4)
	eff := p.Write(0, 8)
	// The Shared line is dropped silently: no replacement transaction.
	for _, txn := range eff.Txns {
		if txn.Class == TxnReplace {
			t.Fatalf("shared victim should drop silently: %+v", eff.Txns)
		}
	}
	if state(t, p, 0, 0) != cache.Invalid {
		t.Fatal("shared line should have been dropped")
	}
	if s := p.Stats(); s.SharedDrops != 1 {
		t.Fatalf("stats %+v", s)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Receivers with an Invalid way win over receivers that must drop a
// Shared line.
func TestReceiverPrefersInvalidWay(t *testing.T) {
	p := newProt(3, 1, 1) // 1 set, 1 way per node: brutal
	p.Write(0, 0)
	p.Read(1, 0) // node 1 holds S copy of line 0 (its only way)
	// Node 2 is empty. Evicting node 0's line... first give node 0 a new
	// exclusive line: line 0 at node 0 is Owner; writing line 1 evicts it.
	eff := p.Write(0, 1)
	var inject *Txn
	for i := range eff.Txns {
		if eff.Txns[i].Class == TxnReplace && eff.Txns[i].Data {
			inject = &eff.Txns[i]
		}
	}
	// Owner with surviving S copy promotes instead (node 1) — that is
	// the even cheaper path, so accept either promote-to-1 or inject-to-2.
	if inject != nil && inject.Remote != 2 {
		t.Fatalf("injection should pick the empty node 2, got %+v", inject)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The forced cascade terminates and accounts drops when every way in a
// set machine-wide holds unique data.
func TestForcedCascadeTerminates(t *testing.T) {
	p := newProt(2, 1, 1) // 2 ways machine-wide per set
	p.Write(0, 0)
	p.Write(1, 1)
	p.Write(0, 2) // three unique lines, two slots: someone must drop
	if s := p.Stats(); s.ForcedDrops == 0 {
		t.Fatalf("expected forced drop, stats %+v", s)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The dropped line is refetched cold.
	var dropped addrspace.Line
	found := false
	for _, l := range []addrspace.Line{0, 1, 2} {
		if owner, _ := p.Holders(l); owner == -1 {
			dropped = l
			found = true
		}
	}
	if !found {
		t.Fatal("no line was dropped")
	}
	if eff := p.Read(0, dropped); !eff.Cold {
		t.Fatalf("dropped line must refetch cold: %+v", eff)
	}
}

func TestPurgeCallback(t *testing.T) {
	type purge struct {
		node  int
		line  addrspace.Line
		evict bool
	}
	var purges []purge
	p := NewProtocol(Config{Nodes: 2, SetsPerAM: 4, Ways: 2,
		Purge: func(n int, l addrspace.Line, e bool) { purges = append(purges, purge{n, l, e}) }})
	p.Write(0, 3)
	p.Read(1, 3)
	p.Write(0, 3) // upgrade: invalidation purge at node 1
	if len(purges) != 1 || purges[0] != (purge{1, 3, false}) {
		t.Fatalf("purges %+v", purges)
	}
}

func TestDowngradeCallback(t *testing.T) {
	var downs []int
	p := NewProtocol(Config{Nodes: 2, SetsPerAM: 4, Ways: 2,
		Downgrade: func(n int, l addrspace.Line) { downs = append(downs, n) }})
	p.Write(0, 3)
	p.Read(1, 3) // node 0: E -> O
	if len(downs) != 1 || downs[0] != 0 {
		t.Fatalf("downgrades %+v", downs)
	}
	p.Read(1, 3) // hit, no downgrade
	if len(downs) != 1 {
		t.Fatalf("downgrades %+v", downs)
	}
}

func TestAccessors(t *testing.T) {
	p := newProt(3, 4, 2)
	if p.Nodes() != 3 {
		t.Fatalf("Nodes = %d", p.Nodes())
	}
	if p.AM(0) == nil || p.AM(2) == nil {
		t.Fatal("AM accessor broken")
	}
}

// CheckInvariants detects corrupted state: a second owner planted behind
// the protocol's back, and an index entry for a non-resident line.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	p := newProt(3, 4, 2)
	p.Write(0, 7)
	// Plant a rogue Exclusive copy at node 1.
	p.AM(1).Insert(7, Exclusive)
	if err := p.CheckInvariants(); err == nil {
		t.Fatal("two owners not detected")
	}

	p2 := newProt(3, 4, 2)
	p2.Write(0, 9)
	// Remove the tag behind the index's back.
	p2.AM(0).Invalidate(9)
	if err := p2.CheckInvariants(); err == nil {
		t.Fatal("indexed-but-absent line not detected")
	}

	p3 := newProt(3, 4, 2)
	p3.Write(0, 11)
	p3.Read(1, 11)
	// Orphan the sharers: kill the Owner copy only.
	p3.AM(0).Invalidate(11)
	if err := p3.CheckInvariants(); err == nil {
		t.Fatal("ownerless sharers not detected")
	}
}

func TestStateName(t *testing.T) {
	if StateName(cache.Invalid) != "I" || StateName(Shared) != "S" ||
		StateName(Owner) != "O" || StateName(Exclusive) != "E" {
		t.Fatal("names wrong")
	}
}

func TestTxnClassString(t *testing.T) {
	if TxnRead.String() != "read" || TxnWrite.String() != "write" || TxnReplace.String() != "replace" {
		t.Fatal("class names wrong")
	}
}

func TestResetStats(t *testing.T) {
	p := newProt(2, 4, 2)
	p.Write(0, 1)
	p.ResetStats()
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", s)
	}
}

// Property test: after any random operation sequence the global protocol
// invariants hold — exactly one E/O holder per resident line, Exclusive
// means sole copy, index matches tags.
func TestProtocolInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(4)
		p := newProt(nodes, 1+rng.Intn(4), 1+rng.Intn(3))
		for i := 0; i < 300; i++ {
			node := rng.Intn(nodes)
			line := addrspace.Line(rng.Intn(40))
			if rng.Intn(2) == 0 {
				p.Read(node, line)
			} else {
				p.Write(node, line)
			}
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: reads after writes always find the line (no data loss) as
// long as capacity is sufficient to avoid forced drops.
func TestNoDataLossProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newProt(4, 8, 4) // 128 ways machine-wide
		live := make(map[addrspace.Line]bool)
		for i := 0; i < 400; i++ {
			node := rng.Intn(4)
			line := addrspace.Line(rng.Intn(64)) // 64 < capacity: no forced drops
			if rng.Intn(2) == 0 {
				p.Write(node, line)
			} else {
				p.Read(node, line)
			}
			live[line] = true
		}
		if p.Stats().ForcedDrops != 0 {
			return false
		}
		for l := range live {
			if owner, _ := p.Holders(l); owner < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
