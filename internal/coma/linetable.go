package coma

import (
	"math/bits"

	"repro/internal/addrspace"
)

// lineTable is the protocol's global directory: an open-addressed hash
// table from line to lineInfo, purpose-built for the bus-snoop hot path.
// Power-of-two capacity with linear probing keeps every lookup a
// multiply, a shift and a short sequential scan; deletion backward-shifts
// the probe chain closed, so there are no tombstones and probe lengths
// never degrade over a run. The table is preallocated from the machine
// geometry (total attraction-memory lines), so steady-state operation
// never allocates; grow stays as a safety valve for tiny test geometries.
//
// An empty slot is one whose info.copies == 0: the protocol never stores
// an entry without copies (a line with no copies anywhere is removed from
// the directory), which put enforces.
type lineTable struct {
	keys    []addrspace.Line
	infos   []lineInfo
	n       int
	maxLoad int
	shift   uint // 64 - log2(len(keys)), for Fibonacci hashing
}

// newLineTable sizes the table for `lines` resident lines (the machine's
// total attraction-memory capacity) with headroom so the load factor
// stays below the grow threshold.
func newLineTable(lines int) *lineTable {
	capHint := lines + lines/2
	slots := 16
	for slots < capHint {
		slots *= 2
	}
	t := &lineTable{}
	t.alloc(slots)
	return t
}

func (t *lineTable) alloc(slots int) {
	t.keys = make([]addrspace.Line, slots)
	t.infos = make([]lineInfo, slots)
	t.maxLoad = slots - slots/4 // grow at 75% occupancy
	t.shift = uint(64 - bits.TrailingZeros(uint(slots)))
}

// slot is the home slot for l: Fibonacci hashing spreads the sequential
// line numbers the address-space allocator hands out across the table.
func (t *lineTable) slot(l addrspace.Line) uint64 {
	return (uint64(l) * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *lineTable) len() int { return t.n }

// get returns the line's info; a missing line yields the zero lineInfo,
// matching the map semantics the table replaces.
func (t *lineTable) get(l addrspace.Line) (lineInfo, bool) {
	mask := uint64(len(t.keys) - 1)
	for i := t.slot(l); ; i = (i + 1) & mask {
		if t.infos[i].copies == 0 {
			return lineInfo{}, false
		}
		if t.keys[i] == l {
			return t.infos[i], true
		}
	}
}

// put inserts or updates the line's info. info.copies must be non-zero —
// that is the table's empty-slot sentinel, and the protocol invariably
// removes lines that lose their last copy.
func (t *lineTable) put(l addrspace.Line, info lineInfo) {
	if info.copies == 0 {
		panic("coma: directory entry without copies")
	}
	if t.n >= t.maxLoad {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := t.slot(l)
	for t.infos[i].copies != 0 {
		if t.keys[i] == l {
			t.infos[i] = info
			return
		}
		i = (i + 1) & mask
	}
	t.keys[i] = l
	t.infos[i] = info
	t.n++
}

// del removes the line, if present, by backward-shifting the rest of the
// probe chain into the hole so no tombstone is left behind.
func (t *lineTable) del(l addrspace.Line) {
	mask := uint64(len(t.keys) - 1)
	i := t.slot(l)
	for {
		if t.infos[i].copies == 0 {
			return
		}
		if t.keys[i] == l {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		t.infos[j].copies = 0
		k := (j + 1) & mask
		for {
			if t.infos[k].copies == 0 {
				t.n--
				return
			}
			// An entry may fill the hole only if its home slot does not
			// lie between the hole and it (cyclic comparison): moving it
			// back keeps it reachable from its home.
			if (k-t.slot(t.keys[k]))&mask >= (k-j)&mask {
				break
			}
			k = (k + 1) & mask
		}
		t.keys[j] = t.keys[k]
		t.infos[j] = t.infos[k]
		j = k
	}
}

// forEach visits every entry in table order (order is not meaningful;
// callers must be order-independent).
func (t *lineTable) forEach(fn func(addrspace.Line, lineInfo)) {
	for i, info := range t.infos {
		if info.copies != 0 {
			fn(t.keys[i], info)
		}
	}
}

func (t *lineTable) grow() {
	oldKeys, oldInfos := t.keys, t.infos
	t.alloc(2 * len(oldKeys))
	t.n = 0
	for i, info := range oldInfos {
		if info.copies != 0 {
			t.put(oldKeys[i], info)
		}
	}
}
