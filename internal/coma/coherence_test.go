package coma

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/addrspace"
)

// TestCoherenceRandomStream drives the protocol with randomized reference
// streams under heavy replacement pressure (working set twice the machine
// capacity) and checks the per-line invariants after every operation, for
// every policy ablation. Displacement of the just-served line by a
// relocation cascade is legal and tolerated; anything else fails.
func TestCoherenceRandomStream(t *testing.T) {
	policies := map[string]Policy{
		"paper":        DefaultPolicy(),
		"pure-lru":     {PromoteOwnership: true, AcceptPriority: true},
		"no-promote":   {VictimSharedFirst: true, AcceptPriority: true},
		"round-robin":  {VictimSharedFirst: true, PromoteOwnership: true},
		"write-update": {VictimSharedFirst: true, PromoteOwnership: true, AcceptPriority: true, WriteUpdate: true},
	}
	// Two pressure regimes: the paper's heaviest (87% — replacements are
	// common, forced cascades are not, so the just-served line must stay
	// put) and gross over-capacity (150% — the machine is all E/O lines
	// and forced cascades rage; invariants must still hold even though
	// displacement is rampant).
	regimes := []struct {
		name         string
		linesPercent int
		boundDisp    bool
	}{
		{"paper-pressure", 87, true},
		{"over-capacity", 150, false},
	}
	for name, pol := range policies {
		pol := pol
		for _, reg := range regimes {
			reg := reg
			t.Run(name+"/"+reg.name, func(t *testing.T) {
				const (
					nodes = 4
					sets  = 7
					ways  = 2
					ops   = 20000
				)
				p := NewProtocol(Config{Nodes: nodes, SetsPerAM: sets, Ways: ways, Policy: pol, PolicySet: true})
				rng := rand.New(rand.NewSource(42))
				lines := nodes * sets * ways * reg.linesPercent / 100
				displaced := 0
				for i := 0; i < ops; i++ {
					node := rng.Intn(nodes)
					l := addrspace.Line(rng.Intn(lines))
					if rng.Intn(3) == 0 {
						p.Write(node, l)
					} else {
						p.Read(node, l)
					}
					if err := p.CheckServed(node, l); err != nil {
						if !errors.Is(err, ErrDisplaced) {
							t.Fatalf("op %d (node %d line %#x): %v", i, node, uint64(l), err)
						}
						displaced++
					}
					if i%512 == 0 {
						if err := p.CheckInvariants(); err != nil {
							t.Fatalf("op %d: %v", i, err)
						}
					}
				}
				if err := p.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				// Sanity: the pressure actually exercised the replacement
				// machinery, and at the paper's pressures displacement of
				// a just-served line stays the rare exception.
				st := p.Stats()
				if st.Injects+st.Promotes+st.SharedDrops == 0 {
					t.Fatal("stream produced no replacements; pressure too low to test anything")
				}
				// (the round-robin ablation injects blindly and displaces
				// a few percent; the paper's accept policy almost none)
				if reg.boundDisp && displaced > ops/10 {
					t.Fatalf("displacement at paper pressure: %d/%d ops", displaced, ops)
				}
			})
		}
	}
}

// TestCheckLineDetectsViolations corrupts the tag arrays directly and
// verifies the checker catches each class of violation (so the randomized
// test above is known to have teeth).
func TestCheckLineDetectsViolations(t *testing.T) {
	build := func() *Protocol {
		p := NewProtocol(Config{Nodes: 2, SetsPerAM: 4, Ways: 2})
		p.Read(0, 1) // E at node 0
		p.Read(1, 1) // O at node 0, S at node 1
		return p
	}
	t.Run("two-owners", func(t *testing.T) {
		p := build()
		p.ams[1].SetState(1, Exclusive)
		if err := p.CheckLine(1); err == nil {
			t.Fatal("two E/O holders not detected")
		}
	})
	t.Run("shared-without-owner", func(t *testing.T) {
		p := build()
		p.ams[0].SetState(1, Shared)
		if err := p.CheckLine(1); err == nil {
			t.Fatal("ownerless Shared copies not detected")
		}
	})
	t.Run("exclusive-with-replicas", func(t *testing.T) {
		p := build()
		p.ams[0].SetState(1, Exclusive)
		if err := p.CheckLine(1); err == nil {
			t.Fatal("Exclusive with replicas not detected")
		}
	})
	t.Run("stale-index", func(t *testing.T) {
		p := build()
		p.ams[1].Invalidate(1)
		if err := p.CheckLine(1); err == nil {
			t.Fatal("index/tag disagreement not detected")
		}
	})
	t.Run("clean", func(t *testing.T) {
		p := build()
		if err := p.CheckLine(1); err != nil {
			t.Fatal(err)
		}
		if err := p.CheckLine(99); err != nil {
			t.Fatalf("absent line must be coherent: %v", err)
		}
	})
	t.Run("served", func(t *testing.T) {
		p := build()
		if err := p.CheckServed(1, 1); err != nil {
			t.Fatal(err)
		}
		err := p.CheckServed(1, 2)
		if !errors.Is(err, ErrDisplaced) {
			t.Fatalf("absent copy at node must report ErrDisplaced, got %v", err)
		}
	})
}
