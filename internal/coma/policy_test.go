package coma

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

func protWithPolicy(nodes, sets, ways int, pol Policy) *Protocol {
	return NewProtocol(Config{Nodes: nodes, SetsPerAM: sets, Ways: ways,
		Policy: pol, PolicySet: true})
}

func TestDefaultPolicy(t *testing.T) {
	pol := DefaultPolicy()
	if !pol.VictimSharedFirst || !pol.PromoteOwnership || !pol.AcceptPriority {
		t.Fatalf("default policy %+v must enable everything", pol)
	}
	p := NewProtocol(Config{Nodes: 2, SetsPerAM: 2, Ways: 2})
	if p.Policy() != pol {
		t.Fatal("unset policy must normalize to the paper's")
	}
	off := protWithPolicy(2, 2, 2, Policy{})
	if off.Policy() != (Policy{}) {
		t.Fatal("PolicySet must preserve an all-off policy")
	}
}

// With promotion disabled, evicting an Owner line with surviving Shared
// copies must inject data (keeping the replicas) instead of promoting.
func TestNoPromotionInjectsOwner(t *testing.T) {
	pol := DefaultPolicy()
	pol.PromoteOwnership = false
	p := protWithPolicy(4, 2, 2, pol)
	p.Write(0, 0)
	p.Read(1, 0) // node 0: O, node 1: S
	p.Write(0, 4)
	eff := p.Write(0, 8) // evicts Owner line 0 from node 0
	var inject *Txn
	for i := range eff.Txns {
		if eff.Txns[i].Class == TxnReplace && eff.Txns[i].Data {
			inject = &eff.Txns[i]
		}
	}
	if inject == nil {
		t.Fatalf("expected injection, txns %+v", eff.Txns)
	}
	if s := p.Stats(); s.Promotes != 0 || s.Injects != 1 {
		t.Fatalf("stats %+v", s)
	}
	// The receiver holds the Owner copy (if the receiver happened to be
	// the sharer, its copy upgraded in place); any other replica
	// survives as Shared.
	if st, _ := p.AM(inject.Remote).Lookup(0); st != Owner {
		t.Fatalf("receiver state %s, want O", StateName(st))
	}
	if inject.Remote != 1 {
		if st, _ := p.AM(1).Lookup(0); st != Shared {
			t.Fatalf("node 1 state %s, want S", StateName(st))
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// With pure-LRU victims, the Shared-first priority is gone: the LRU line
// is evicted even when a Shared line is present.
func TestVictimLRUOnly(t *testing.T) {
	pol := DefaultPolicy()
	pol.VictimSharedFirst = false
	p := protWithPolicy(4, 2, 2, pol)
	p.Write(1, 0)
	p.Read(0, 0)  // node 0: S(0) — oldest
	p.Write(0, 4) // node 0: E(4)
	p.Read(0, 0)  // touch S(0): now E(4) is LRU
	eff := p.Write(0, 8)
	// Pure LRU evicts E(4) (relocation) rather than dropping S(0).
	sawInject := false
	for _, txn := range eff.Txns {
		if txn.Class == TxnReplace && txn.Data {
			sawInject = true
		}
	}
	if !sawInject {
		t.Fatalf("pure LRU should relocate the E line, txns %+v", eff.Txns)
	}
	if st, _ := p.AM(0).Lookup(0); st != Shared {
		t.Fatal("the freshly touched Shared line should survive under LRU")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// All eight policy combinations preserve the protocol invariants under
// random operation sequences.
func TestPolicyInvariantsProperty(t *testing.T) {
	prop := func(seed int64, pbits uint8) bool {
		pol := Policy{
			VictimSharedFirst: pbits&1 != 0,
			PromoteOwnership:  pbits&2 != 0,
			AcceptPriority:    pbits&4 != 0,
		}
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(3)
		p := protWithPolicy(nodes, 1+rng.Intn(3), 1+rng.Intn(3), pol)
		for i := 0; i < 250; i++ {
			node := rng.Intn(nodes)
			line := addrspace.Line(rng.Intn(32))
			if rng.Intn(2) == 0 {
				p.Read(node, line)
			} else {
				p.Write(node, line)
			}
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The accept-based priority really avoids avalanches: with it on, a
// replacement workload causes no cascaded injections while Invalid ways
// exist elsewhere.
func TestAcceptPriorityAvoidsAvalanche(t *testing.T) {
	pol := DefaultPolicy()
	p := protWithPolicy(4, 1, 2, pol)
	// Node 0 overflows its 2-way set three times; nodes 1-3 are empty, so
	// every injection must land in an Invalid way without cascading.
	for i := 0; i < 5; i++ {
		p.Write(0, addrspace.Line(i))
	}
	s := p.Stats()
	if s.Injects != 3 {
		t.Fatalf("injects = %d, want 3", s.Injects)
	}
	// No receiver was forced to evict: machine-wide resident lines = 5.
	total := 0
	for n := 0; n < 4; n++ {
		total += p.AM(n).CountState(func(cache.State) bool { return true })
	}
	if total != 5 {
		t.Fatalf("resident lines = %d, want 5 (no losses, no cascades)", total)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
