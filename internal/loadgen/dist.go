package loadgen

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist maps a draw to a key index in [0, n). Implementations are
// deterministic given their seed and are not safe for concurrent use —
// Run serializes draws so the issued key sequence is reproducible.
type Dist interface {
	Next() int
}

// NewDist builds the named distribution over n keys.
//
//   - "zipfian": rank-ordered popularity with exponent theta (YCSB's
//     range, 0 < theta < 1; key 0 is the hottest)
//   - "uniform": every key equally likely (theta unused)
//   - "hotset": 90% of draws hit the first max(1, n/10) keys, the rest
//     spread uniformly over the remainder (theta unused)
func NewDist(name string, n int, theta float64, seed int64) (Dist, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: key universe must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "zipfian":
		return newZipfian(n, theta, rng)
	case "uniform":
		return &uniform{n: n, rng: rng}, nil
	case "hotset":
		hot := n / 10
		if hot < 1 {
			hot = 1
		}
		return &hotSet{n: n, hot: hot, p: 0.9, rng: rng}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown distribution %q (known: zipfian, uniform, hotset)", name)
	}
}

// zipfian draws ranks with P(rank i) proportional to 1/(i+1)^theta,
// using Gray et al.'s constant-time method (the YCSB generator). It
// covers theta in (0, 1) — the skew regime web and cache workloads are
// modeled with — which math/rand's Zipf (s > 1) cannot express.
type zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

func newZipfian(n int, theta float64, rng *rand.Rand) (*zipfian, error) {
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("loadgen: zipfian theta must be in (0, 1), got %g", theta)
	}
	z := &zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	zeta2 := zeta(2, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z, nil
}

// zeta is the truncated zeta sum over n ranks.
func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if z.n > 1 && uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// uniform draws every key with equal probability.
type uniform struct {
	n   int
	rng *rand.Rand
}

func (u *uniform) Next() int { return u.rng.Intn(u.n) }

// hotSet draws from the first hot keys with probability p, uniformly
// from the remainder otherwise.
type hotSet struct {
	n, hot int
	p      float64
	rng    *rand.Rand
}

func (h *hotSet) Next() int {
	if h.hot >= h.n || h.rng.Float64() < h.p {
		return h.rng.Intn(h.hot)
	}
	return h.hot + h.rng.Intn(h.n-h.hot)
}
