// Package loadgen generates seeded, reproducible request streams
// against one comasrv daemon or a whole fleet and measures how the
// requests were served: throughput, latency percentiles, and the
// local/peer/compute source split that the fleet's attraction-memory
// behavior is judged by.
//
// The key universe is a deterministic list of simulation requests (a
// fixed workload with a perturbed bandwidth multiplier per key, so every
// key is a distinct content address in the same runtime class). A seeded
// popularity distribution — zipfian (YCSB-style, theta in (0,1)),
// uniform, or hot-set — maps each issued request to a key, so two runs
// with the same seed issue the same key sequence regardless of worker
// scheduling. Targets are driven round-robin: the point of the fleet is
// that a client needs no ring knowledge, any shard serves any key.
package loadgen
