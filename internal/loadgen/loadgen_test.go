package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// Same seed, same draws: the issued key sequence is reproducible.
func TestDistDeterminism(t *testing.T) {
	for _, name := range []string{"zipfian", "uniform", "hotset"} {
		a, err := NewDist(name, 128, 0.99, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewDist(name, 128, 0.99, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			x, y := a.Next(), b.Next()
			if x != y {
				t.Fatalf("%s draw %d: %d vs %d with the same seed", name, i, x, y)
			}
			if x < 0 || x >= 128 {
				t.Fatalf("%s draw %d out of range: %d", name, i, x)
			}
		}
	}
}

// The zipfian at theta=0.99 must actually skew: the hottest key draws
// far more than the uniform share, and popularity decreases with rank.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 100, 200000
	d, err := NewDist("zipfian", n, 0.99, 7)
	if err != nil {
		t.Fatal(err)
	}
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[d.Next()]++
	}
	uniformShare := float64(draws) / n
	if float64(counts[0]) < 10*uniformShare {
		t.Fatalf("hottest key drew %d of %d (%.1fx uniform), want >= 10x — not zipfian",
			counts[0], draws, float64(counts[0])/uniformShare)
	}
	if counts[0] < counts[n/2] || counts[n/2] < counts[n-1] {
		t.Fatalf("popularity not rank-ordered: rank0=%d rank%d=%d rank%d=%d",
			counts[0], n/2, counts[n/2], n-1, counts[n-1])
	}
}

func TestHotSetConcentration(t *testing.T) {
	const n, draws = 100, 50000
	d, err := NewDist("hotset", n, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for i := 0; i < draws; i++ {
		if d.Next() < n/10 {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot-set fraction = %.3f, want ~0.9", frac)
	}
}

func TestDistRejectsBadConfig(t *testing.T) {
	if _, err := NewDist("zipfian", 10, 1.5, 1); err == nil {
		t.Fatal("theta=1.5 accepted; zipfian must reject theta outside (0,1)")
	}
	if _, err := NewDist("bogus", 10, 0.5, 1); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := NewDist("uniform", 0, 0, 1); err == nil {
		t.Fatal("empty key universe accepted")
	}
}

// The key universe is deterministic and every key is a distinct content
// address.
func TestUniverseDeterministicAndDistinct(t *testing.T) {
	cfg := Config{Keys: 32}
	a, b := cfg.Universe(), cfg.Universe()
	if len(a) != 32 {
		t.Fatalf("universe size = %d, want 32", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("universe not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		key, err := a[i].CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		if seen[key.String()] {
			t.Fatalf("duplicate content address at %d: %s", i, key)
		}
		seen[key.String()] = true
	}
}

// A short seeded run against a real single-shard daemon completes with
// zero client errors and a sane source split (everything local or
// compute, nothing peer).
func TestRunSingleShard(t *testing.T) {
	srv, err := server.New(server.Config{Jobs: 4, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := Config{
		Targets:     []string{ts.URL},
		Keys:        8,
		Seed:        5,
		Concurrency: 2,
		Duration:    30 * time.Second, // MaxRequests bounds the run
		MaxRequests: 40,
		Warm:        true,
	}
	res, err := cfg.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("run reported %d errors", res.Errors)
	}
	if res.WarmedKeys != 8 {
		t.Fatalf("warmed %d keys, want 8", res.WarmedKeys)
	}
	if res.Requests != 40 {
		t.Fatalf("requests = %d, want 40", res.Requests)
	}
	if res.Source["peer"] != 0 {
		t.Fatalf("single shard reported peer-served requests: %+v", res.Source)
	}
	// Every key was warmed, so the timed phase is all local hits.
	if res.Source["local"] != 40 {
		t.Fatalf("source split = %+v, want all 40 local after a full warm", res.Source)
	}
	if res.Throughput <= 0 || res.LatencyMsP50 <= 0 {
		t.Fatalf("degenerate measurements: %+v", res)
	}
}
