package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

// Config is one load-generation run.
type Config struct {
	// Targets are the daemon base URLs the run drives round-robin
	// (required, at least one).
	Targets []string
	// Dist is the key-popularity distribution: zipfian (default),
	// uniform, or hotset.
	Dist string
	// Theta is the zipfian exponent (default 0.99, YCSB's default;
	// only used by the zipfian distribution).
	Theta float64
	// Keys is the key-universe size (default 64).
	Keys int
	// Seed makes the issued key sequence reproducible (default 1).
	Seed int64
	// Route picks the target per request: "rr" (default) spreads
	// round-robin — the no-ring-knowledge client the fleet must serve
	// via peer fill — while "ring" sends each key to its owner shard,
	// the consistent-hash client that makes the fleet's distinct cache
	// capacities add up. Ring routing needs the first target to report
	// fleet membership; a single-shard target degrades to rr.
	Route string
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Duration bounds the timed phase (default 5s).
	Duration time.Duration
	// MaxRequests additionally bounds the timed phase (0 = duration
	// only).
	MaxRequests int64
	// Warm, when set, issues every key once before the timed phase,
	// routed to its owner shard when the first target reports fleet
	// membership — so the timed phase measures a populated fleet, not
	// cold-start compute.
	Warm bool
	// Workload knobs for the key universe (defaults: fft, 8, 6% — the
	// fastest runtime class, so compute cost does not drown the serving
	// path being measured).
	App   string
	Procs int
	MP    string
	// Timeout bounds each request (default 2m).
	Timeout time.Duration
}

// Result is what a run measured.
type Result struct {
	Shards     int     `json:"shards"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	Shed       int64   `json:"shed"`
	WarmedKeys int     `json:"warmed_keys"`
	DurationS  float64 `json:"duration_s"`
	// Throughput counts every completed 200 per second; CacheServed
	// counts only those answered from a store (local or peer) — the
	// number the fleet's scaling claim is about.
	Throughput        float64 `json:"throughput_rps"`
	CacheServedPerSec float64 `json:"cache_served_rps"`
	// Source splits completed requests by how they were served. Single
	// -shard daemons report no source header; cached responses count as
	// "local", the rest as "compute".
	Source map[string]int64 `json:"source"`
	// PeerFillRatio is peer / (peer + compute): of the requests that
	// missed locally, how many the fleet answered without recomputing.
	PeerFillRatio float64 `json:"peer_fill_ratio"`
	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP90  float64 `json:"latency_ms_p90"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
}

func (c *Config) setDefaults() {
	if c.Dist == "" {
		c.Dist = "zipfian"
	}
	if c.Route == "" {
		c.Route = "rr"
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Concurrency == 0 {
		c.Concurrency = 4
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.App == "" {
		c.App = "fft"
	}
	if c.Procs == 0 {
		c.Procs = 8
	}
	if c.MP == "" {
		c.MP = "6%"
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Minute
	}
}

// Universe returns the deterministic key universe: Keys distinct
// simulation requests in one runtime class, distinguished by a perturbed
// DRAM-bandwidth multiplier. Key i is the i-th most popular under the
// zipfian and hot-set distributions.
func (c Config) Universe() []server.SimRequest {
	c.setDefaults()
	reqs := make([]server.SimRequest, c.Keys)
	for i := range reqs {
		reqs[i] = server.SimRequest{
			App: c.App, Procs: c.Procs, MP: c.MP,
			DRAMBandwidth: 1 + float64(i+1)/1e6,
		}
	}
	return reqs
}

// envelope is the slice of the simulate response the generator reads.
type envelope struct {
	Source string `json:"source"`
	Cached bool   `json:"cached"`
}

// Run executes the configured load against the targets.
func (c Config) Run(ctx context.Context) (Result, error) {
	c.setDefaults()
	if len(c.Targets) == 0 {
		return Result{}, fmt.Errorf("loadgen: no targets")
	}
	dist, err := NewDist(c.Dist, c.Keys, c.Theta, c.Seed)
	if err != nil {
		return Result{}, err
	}
	universe := c.Universe()
	bodies := make([][]byte, len(universe))
	for i, r := range universe {
		b, err := json.Marshal(r)
		if err != nil {
			return Result{}, err
		}
		bodies[i] = b
	}
	if c.Route != "rr" && c.Route != "ring" {
		return Result{}, fmt.Errorf("loadgen: unknown route %q (known: rr, ring)", c.Route)
	}
	client := &http.Client{Timeout: c.Timeout}
	res := Result{Shards: len(c.Targets), Source: map[string]int64{}}

	// owners[i] is key i's owner shard URL, when the targets are a
	// fleet; warming always places keys at their owners, and ring
	// routing keeps sending them there.
	owners, err := c.keyOwners(ctx, universe)
	if err != nil {
		return Result{}, err
	}

	if c.Warm {
		n, err := c.warm(ctx, client, owners, bodies)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: warm phase: %w", err)
		}
		res.WarmedKeys = n
	}

	// Timed phase. Key draws and target assignment happen under one
	// lock, so the issued (key, target) sequence depends only on the
	// seed; worker scheduling only affects completion order.
	var (
		mu        sync.Mutex
		issued    int64
		latencies []time.Duration
	)
	deadline := time.Now().Add(c.Duration)
	tctx, cancel := context.WithDeadline(ctx, deadline.Add(c.Timeout))
	defer cancel()
	var wg sync.WaitGroup
	var requests, errors, shed, local, peer, compute int64
	counts := map[string]*int64{"local": &local, "peer": &peer, "compute": &compute}
	start := time.Now()
	for w := 0; w < c.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if time.Now().After(deadline) || (c.MaxRequests > 0 && issued >= c.MaxRequests) {
					mu.Unlock()
					return
				}
				idx := dist.Next()
				target := c.Targets[int(issued)%len(c.Targets)]
				if c.Route == "ring" && owners != nil {
					target = owners[idx]
				}
				issued++
				mu.Unlock()

				t0 := time.Now()
				src, status, err := c.post(tctx, client, target, bodies[idx])
				lat := time.Since(t0)

				mu.Lock()
				switch {
				case err != nil:
					errors++
				case status == http.StatusTooManyRequests:
					shed++
				case status != http.StatusOK:
					errors++
				default:
					requests++
					if p, ok := counts[src]; ok {
						*p++
					}
					if len(latencies) < 1<<20 {
						latencies = append(latencies, lat)
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.Requests = requests
	res.Errors = errors
	res.Shed = shed
	res.DurationS = elapsed.Seconds()
	if elapsed > 0 {
		res.Throughput = float64(requests) / elapsed.Seconds()
		res.CacheServedPerSec = float64(local+peer) / elapsed.Seconds()
	}
	res.Source["local"], res.Source["peer"], res.Source["compute"] = local, peer, compute
	if peer+compute > 0 {
		res.PeerFillRatio = float64(peer) / float64(peer+compute)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.LatencyMsP50 = percentileMs(latencies, 0.50)
	res.LatencyMsP90 = percentileMs(latencies, 0.90)
	res.LatencyMsP99 = percentileMs(latencies, 0.99)
	return res, nil
}

// post issues one simulate request and classifies the answer source.
func (c Config) post(ctx context.Context, client *http.Client, target string, body []byte) (src string, status int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", resp.StatusCode, nil
	}
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return "", 0, err
	}
	if env.Source == "" {
		// Single-shard daemons omit the source; the cached flag carries
		// the same local-vs-compute split.
		if env.Cached {
			return "local", resp.StatusCode, nil
		}
		return "compute", resp.StatusCode, nil
	}
	return env.Source, resp.StatusCode, nil
}

// keyOwners maps every universe key to its owner shard's URL using the
// fleet membership the first target reports. A target that is not a
// fleet (FleetInfo answers 404) yields nil — callers fall back to
// round-robin.
func (c Config) keyOwners(ctx context.Context, universe []server.SimRequest) ([]string, error) {
	info, err := server.NewClient(c.Targets[0]).FleetInfo(ctx)
	if err != nil {
		return nil, nil
	}
	ring, err := fleet.New(info.Members, info.VirtualNodes)
	if err != nil {
		return nil, err
	}
	owners := make([]string, len(universe))
	for i, r := range universe {
		key, err := r.CanonicalKey()
		if err != nil {
			return nil, err
		}
		owners[i] = ring.Owner([sha256.Size]byte(key)).URL
	}
	return owners, nil
}

// warm issues every universe key once: to its owner shard when owners is
// known, round-robin otherwise — populating the fleet the way the ring
// will later look entries up.
func (c Config) warm(ctx context.Context, client *http.Client, owners []string, bodies [][]byte) (int, error) {
	targetFor := func(i int) string { return c.Targets[i%len(c.Targets)] }
	if owners != nil {
		targetFor = func(i int) string { return owners[i] }
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(bodies))
	sem := make(chan struct{}, c.Concurrency)
	var warmed int64
	var mu sync.Mutex
	for i := range bodies {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			_, status, err := c.post(ctx, client, targetFor(i), bodies[i])
			if err != nil {
				errc <- err
				return
			}
			if status != http.StatusOK {
				errc <- fmt.Errorf("warming key %d: HTTP %d", i, status)
				return
			}
			mu.Lock()
			warmed++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return int(warmed), err
	}
	return int(warmed), nil
}

// percentileMs reads the p-th percentile from sorted latencies, in
// milliseconds.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds()) / 1e6
}
