// Package config derives concrete machine parameterizations from the
// paper's methodology: cache sizes scale with the application working set
// (SLC = WS/128), the attraction memory size follows from the memory
// pressure (MP = WS / total AM), and the per-processor AM quota is held
// constant across clustering degrees.
package config
