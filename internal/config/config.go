package config

import (
	"encoding/json"
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/coma"
	"repro/internal/engine"
	"repro/internal/machine"
)

// Pressure is one of the paper's memory-pressure operating points,
// expressed as K/16: a single copy of the working set entirely fills K of
// the 16 per-processor attraction-memory quotas.
type Pressure struct {
	Label string
	K     int
}

// The paper's five operating points: 6%, 50%, 75%, 81% and 87%.
var (
	MP6  = Pressure{"6%", 1}
	MP50 = Pressure{"50%", 8}
	MP75 = Pressure{"75%", 12}
	MP81 = Pressure{"81%", 13}
	MP87 = Pressure{"87%", 14}
)

// Pressures lists the operating points in ascending order.
var Pressures = []Pressure{MP6, MP50, MP75, MP81, MP87}

// PressureByLabel resolves "50%" etc.
func PressureByLabel(label string) (Pressure, error) {
	for _, p := range Pressures {
		if p.Label == label {
			return p, nil
		}
	}
	return Pressure{}, fmt.Errorf("config: unknown memory pressure %q", label)
}

// Fraction returns the memory pressure as a fraction of total AM capacity.
func (p Pressure) Fraction() float64 { return float64(p.K) / 16 }

// MarshalJSON encodes the pressure as its label ("50%"), the form the
// comasrv API and the CLI flags share.
func (p Pressure) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.Label)
}

// UnmarshalJSON decodes a pressure label ("50%") into one of the paper's
// operating points.
func (p *Pressure) UnmarshalJSON(data []byte) error {
	var label string
	if err := json.Unmarshal(data, &label); err != nil {
		return err
	}
	got, err := PressureByLabel(label)
	if err != nil {
		return err
	}
	*p = got
	return nil
}

// Machine holds the tunables of one simulated configuration on top of a
// workload's working set.
type Machine struct {
	// Procs is the total processor count; 0 selects the paper's 16.
	Procs int
	// ProcsPerNode is the clustering degree (1, 2 or 4 in the paper).
	ProcsPerNode int
	// Pressure selects the AM sizing.
	Pressure Pressure
	// AMWays is the attraction-memory associativity (4, or 8 for the
	// Figure 4 variant).
	AMWays int
	// Bandwidth multipliers (1.0 = paper baseline; Figure 5 uses
	// DRAM = 2).
	DRAMBandwidth, NCBandwidth, BusBandwidth float64
	// Inclusive hierarchy (paper default true).
	Inclusive bool
	// Policy selects the protocol's replacement design choices
	// (ablations; default is the paper's protocol).
	Policy coma.Policy

	// Topology selects the interconnect: "" or "bus" is the paper's
	// snooping bus, "ring" the hierarchical ring of clusters.
	Topology string
	// Clusters is the ring's cluster count; 0 puts every node in its own
	// cluster (a pure node ring). Ignored on the bus.
	Clusters int
	// LinkLatencyNs is the per-hop ring-link latency: 0 selects the
	// default (machine.DefaultLinkLatency), a negative value means
	// explicitly zero (the cross-topology equivalence configuration).
	LinkLatencyNs int
	// LinkBandwidth divides ring-link occupancy (0 = 1.0 = one
	// 20 ns phase per address transfer).
	LinkBandwidth float64
	// ScalePressure reinterprets the pressure's K/16 working-set
	// fraction against this machine's processor count instead of the
	// paper's 16, so scaled sweeps (Figure2Scaled) run at the same
	// fractional memory pressure as the 16-processor points.
	ScalePressure bool

	// Fidelity selects the execution fidelity; the zero value is exact
	// simulation.
	Fidelity Fidelity
}

// Fidelity selects a run's execution fidelity. The zero value (or Mode
// "exact") is full-detail simulation; Mode "sampled" is SMARTS-style
// sampled fast-forward (machine.Fidelity). The struct is comparable so
// configurations carrying it can key result caches.
type Fidelity struct {
	// Mode is "", "exact" or "sampled".
	Mode string
	// Sampling geometry in simulated nanoseconds; in sampled mode 0
	// selects the machine default for that field (a negative WarmupNs
	// means explicitly zero warmup). Ignored in exact mode: an exact
	// machine with geometry set behaves bit-identically to one without.
	WarmupNs int64
	WindowNs int64
	PeriodNs int64
}

// Sampled reports whether the spec selects sampled fidelity.
func (f Fidelity) Sampled() bool { return f.Mode == machine.FidelitySampled }

// Params maps the spec onto the machine's fidelity knob, resolving
// defaulted geometry fields.
func (f Fidelity) Params() machine.Fidelity {
	switch f.Mode {
	case "", machine.FidelityExact:
		return machine.Fidelity{}
	case machine.FidelitySampled:
		spec := machine.DefaultFidelity()
		switch {
		case f.WarmupNs > 0:
			spec.Warmup = engine.Time(f.WarmupNs)
		case f.WarmupNs < 0:
			spec.Warmup = 0
		}
		if f.WindowNs > 0 {
			spec.Window = engine.Time(f.WindowNs)
		}
		if f.PeriodNs > 0 {
			spec.Period = engine.Time(f.PeriodNs)
		}
		return spec
	default:
		// Unknown modes flow through so machine.Params.Validate rejects
		// them instead of silently running exact.
		return machine.Fidelity{Mode: f.Mode}
	}
}

// Baseline returns the paper's default machine at the given clustering
// degree and pressure.
func Baseline(procsPerNode int, mp Pressure) Machine {
	return Machine{
		ProcsPerNode:  procsPerNode,
		Pressure:      mp,
		AMWays:        4,
		DRAMBandwidth: 1,
		NCBandwidth:   1,
		BusBandwidth:  1,
		Inclusive:     true,
		Policy:        coma.DefaultPolicy(),
	}
}

// Figure5 returns the execution-time study configuration: the paper
// doubles the DRAM bandwidth (holding latency constant) for Figure 5.
func Figure5(procsPerNode int, mp Pressure) Machine {
	m := Baseline(procsPerNode, mp)
	m.DRAMBandwidth = 2
	return m
}

// Params concretizes the configuration for a workload with the given
// working set (bytes); the processor count defaults to the paper's 16.
func (m Machine) Params(workingSet uint64) machine.Params {
	procs := m.Procs
	if procs == 0 {
		procs = 16
	}
	slc := roundLines(workingSet / 128)
	if slc < 4*addrspace.LineSize {
		slc = 4 * addrspace.LineSize // at least one 4-way set
	}
	// The paper fixes the L1 at 4 KB against multi-MB working sets; with
	// scaled-down working sets the L1 scales too (WS/512, clamped), to
	// preserve the L1:WS ratio the traffic results depend on.
	l1 := roundLines(workingSet / 512)
	if l1 < 512 {
		l1 = 512
	}
	if l1 > 4096 {
		l1 = 4096
	}
	amPerProc := roundLines(workingSet / uint64(m.Pressure.K))
	if m.ScalePressure {
		amPerProc = roundLines(workingSet * 16 / (uint64(m.Pressure.K) * uint64(procs)))
	}
	ways := m.AMWays
	if ways <= 0 {
		ways = 4
	}
	if amPerProc < uint64(ways*addrspace.LineSize) {
		amPerProc = uint64(ways * addrspace.LineSize)
	}
	p := machine.DefaultParams(procs, m.ProcsPerNode, int(slc), int(amPerProc))
	p.L1Bytes = int(l1)
	p.AMWays = ways
	p.DRAMBandwidth = nz(m.DRAMBandwidth)
	p.NCBandwidth = nz(m.NCBandwidth)
	p.BusBandwidth = nz(m.BusBandwidth)
	p.Inclusive = m.Inclusive
	p.Policy = m.Policy
	if m.Topology == machine.TopologyRing {
		clusters := m.Clusters
		if clusters == 0 {
			clusters = p.Nodes()
		}
		lat := machine.DefaultLinkLatency
		switch {
		case m.LinkLatencyNs > 0:
			lat = engine.Time(m.LinkLatencyNs)
		case m.LinkLatencyNs < 0:
			lat = 0
		}
		p.Topology = machine.Topology{
			Kind:          machine.TopologyRing,
			Clusters:      clusters,
			LinkLatency:   lat,
			LinkBandwidth: m.LinkBandwidth,
		}
	} else if m.Topology != "" && m.Topology != machine.TopologyBus {
		// Unknown kinds flow through so machine.Params.Validate rejects
		// them instead of silently simulating a bus.
		p.Topology.Kind = m.Topology
	}
	p.Fidelity = m.Fidelity.Params()
	return p
}

func nz(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

func roundLines(b uint64) uint64 {
	if b%addrspace.LineSize != 0 {
		b += addrspace.LineSize - b%addrspace.LineSize
	}
	return b
}
