// Package flags centralizes the flag-parsing boilerplate shared by every
// command under cmd/: constructors for the common flags (-jobs, -v,
// -procs, -o, -cpuprofile/-memprofile) with a single help text each, a
// uniform usage printer, and the uniform "<cmd>: <error>" fatal-exit
// helpers. Commands register their command-specific flags with the
// standard library flag package as usual; this package only removes the
// drift between the eight-plus copies of the shared ones (the catalogue
// lives in API.md's CLI appendix).
package flags
