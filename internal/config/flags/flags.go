package flags

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/config"
)

// SetUsage installs a uniform usage printer on the default flag set:
// a one-line synopsis followed by the flag defaults. Every command calls
// it before flag.Parse so `-h` output has the same shape everywhere.
func SetUsage(cmd, synopsis string) {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags]\n%s\n\nflags:\n", cmd, synopsis)
		flag.PrintDefaults()
	}
}

// Check exits with the uniform error format "<cmd>: <err>" and status 1
// when err is non-nil.
func Check(cmd string, err error) {
	if err != nil {
		Fatalf(cmd, "%v", err)
	}
}

// Fatalf prints "<cmd>: <message>" to stderr and exits with status 1.
func Fatalf(cmd, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", cmd, fmt.Sprintf(format, args...))
	os.Exit(1)
}

// Jobs registers the shared -jobs flag: the worker-pool width for
// simulation run matrices. Output is byte-identical for any value.
func Jobs() *int {
	return flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations (output is identical for any value)")
}

// Verbose registers the shared -v flag.
func Verbose() *bool {
	return flag.Bool("v", false, "print per-run progress to stderr")
}

// Procs registers the shared -procs flag with the given default
// (the paper's machine is 16 processors).
func Procs(def int) *int {
	return flag.Int("procs", def, "total processor count")
}

// Profiles registers the shared -cpuprofile and -memprofile flags
// consumed by profiling.Start.
func Profiles() (cpuprofile, memprofile *string) {
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	return cpuprofile, memprofile
}

// Fidelity registers the shared execution-fidelity flags: -fidelity
// selects exact or sampled execution, and -ff-warmup / -ff-window /
// -ff-period override the sampled geometry in simulated nanoseconds
// (0 keeps the machine default; -ff-warmup -1 means explicitly zero
// warmup). Call the returned resolver after flag.Parse.
func Fidelity() func() config.Fidelity {
	mode := flag.String("fidelity", "",
		`execution fidelity: "exact" (default) or "sampled" (fast-forward between detailed sample windows)`)
	warm := flag.Int64("ff-warmup", 0, "sampled fidelity: detailed warmup before each window, simulated ns (0 = default, -1 = none)")
	win := flag.Int64("ff-window", 0, "sampled fidelity: measurement-window span, simulated ns (0 = default)")
	period := flag.Int64("ff-period", 0, "sampled fidelity: sampling period, simulated ns (0 = default)")
	return func() config.Fidelity {
		return config.Fidelity{Mode: *mode, WarmupNs: *warm, WindowNs: *win, PeriodNs: *period}
	}
}

// Output registers the shared -o output-file flag; an empty default
// means stdout.
func Output(def string) *string {
	usage := "output file"
	if def == "" {
		usage += " (default: stdout)"
	}
	return flag.String("o", def, usage)
}
