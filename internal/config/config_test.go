package config

import (
	"testing"
)

func TestPressurePoints(t *testing.T) {
	if len(Pressures) != 5 {
		t.Fatalf("want 5 pressure points, got %d", len(Pressures))
	}
	wantK := []int{1, 8, 12, 13, 14}
	for i, p := range Pressures {
		if p.K != wantK[i] {
			t.Fatalf("pressure %s K=%d, want %d", p.Label, p.K, wantK[i])
		}
	}
	if MP50.Fraction() != 0.5 {
		t.Fatalf("MP50 fraction %v", MP50.Fraction())
	}
	if MP6.Fraction() != 1.0/16 {
		t.Fatalf("MP6 fraction %v", MP6.Fraction())
	}
}

func TestPressureByLabel(t *testing.T) {
	p, err := PressureByLabel("81%")
	if err != nil || p.K != 13 {
		t.Fatalf("%+v %v", p, err)
	}
	if _, err := PressureByLabel("42%"); err == nil {
		t.Fatal("expected error")
	}
}

func TestParamsScaling(t *testing.T) {
	const ws = 1 << 20 // 1 MB working set
	m := Baseline(1, MP6)
	p := m.Params(ws)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.SLCBytes != ws/128 {
		t.Fatalf("SLC = %d, want WS/128 = %d", p.SLCBytes, ws/128)
	}
	if p.L1Bytes != ws/512 {
		t.Fatalf("L1 = %d, want WS/512", p.L1Bytes)
	}
	// At 6% MP a single per-processor AM holds the whole working set.
	if p.AMBytesPerProc < ws {
		t.Fatalf("AM per proc = %d, want >= %d at 6%% MP", p.AMBytesPerProc, ws)
	}
}

// The per-processor AM quota is held constant across clusterings (paper
// Section 3.1): a 4-processor node has a 4x AM.
func TestAMQuotaConstantAcrossClustering(t *testing.T) {
	const ws = 1 << 20
	p1 := Baseline(1, MP50).Params(ws)
	p4 := Baseline(4, MP50).Params(ws)
	if p1.AMBytesPerProc != p4.AMBytesPerProc {
		t.Fatalf("per-proc AM differs: %d vs %d", p1.AMBytesPerProc, p4.AMBytesPerProc)
	}
	if p1.Nodes() != 16 || p4.Nodes() != 4 {
		t.Fatalf("nodes %d / %d", p1.Nodes(), p4.Nodes())
	}
}

// Higher memory pressure means smaller attraction memories.
func TestPressureShrinksAM(t *testing.T) {
	const ws = 1 << 20
	prev := 1 << 62
	for _, mp := range Pressures {
		p := Baseline(1, mp).Params(ws)
		if p.AMBytesPerProc >= prev {
			t.Fatalf("AM did not shrink at %s: %d >= %d", mp.Label, p.AMBytesPerProc, prev)
		}
		prev = p.AMBytesPerProc
	}
}

func TestFigure5Preset(t *testing.T) {
	m := Figure5(4, MP81)
	if m.DRAMBandwidth != 2 {
		t.Fatal("Figure 5 uses doubled DRAM bandwidth")
	}
	if m.ProcsPerNode != 4 || m.Pressure != MP81 || m.AMWays != 4 || !m.Inclusive {
		t.Fatalf("preset %+v", m)
	}
}

func TestTinyWorkingSetClamps(t *testing.T) {
	p := Baseline(1, MP87).Params(4096) // absurdly small WS
	if err := p.Validate(); err != nil {
		t.Fatalf("clamped params must validate: %v", err)
	}
}
