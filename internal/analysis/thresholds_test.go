package analysis

import (
	"math"
	"strings"
	"testing"
)

// The paper quotes four replication thresholds in Section 4.2; the model
// must reproduce all of them exactly.
func TestPaperThresholds(t *testing.T) {
	cases := []struct {
		m        Machine
		num, den int
		pct      float64
	}{
		// "for single processor nodes with 4-way associative attraction
		// memories, above 76.5% MP (49/64) there is no longer space to
		// replicate a cache line over all the 16 nodes"
		{Machine{16, 1, 4}, 49, 64, 76.5},
		// "8-way associativity moves this threshold to 88.2% MP (113/128)"
		{Machine{16, 1, 8}, 113, 128, 88.2},
		// "With four-processor clusters, the corresponding levels are
		// 81.25% MP (13/16)"
		{Machine{16, 4, 4}, 13, 16, 81.25},
		// "and 90.6% MP (29/32)"
		{Machine{16, 4, 8}, 29, 32, 90.6},
	}
	for _, c := range cases {
		num, den, frac := c.m.ReplicationThreshold()
		if num != c.num || den != c.den {
			t.Errorf("%v: threshold %d/%d, want %d/%d", c.m, num, den, c.num, c.den)
		}
		if math.Abs(100*frac-c.pct) > 0.1 {
			t.Errorf("%v: threshold %.2f%%, want %.2f%%", c.m, 100*frac, c.pct)
		}
	}
}

// The paper's studied pressures straddle the thresholds exactly as the
// traffic figures show: 81% is below the clustered 4-way threshold
// (81.25%) but above the unclustered one (76.5%); 87% is above both
// 4-way thresholds but below both 8-way thresholds.
func TestPressuresVsThresholds(t *testing.T) {
	_, _, un4 := Machine{16, 1, 4}.ReplicationThreshold()
	_, _, un8 := Machine{16, 1, 8}.ReplicationThreshold()
	_, _, cl4 := Machine{16, 4, 4}.ReplicationThreshold()
	_, _, cl8 := Machine{16, 4, 8}.ReplicationThreshold()
	const mp81, mp87 = 13.0 / 16, 14.0 / 16
	if !(mp81 > un4 && mp81 <= cl4) {
		t.Errorf("81%% should straddle the 4-way thresholds (%v, %v)", un4, cl4)
	}
	if !(mp87 > cl4 && mp87 < un8 && mp87 < cl8) {
		t.Errorf("87%% should exceed 4-way and stay below 8-way thresholds")
	}
}

func TestReplicationDegree(t *testing.T) {
	m := Machine{16, 1, 4}
	if got := m.ReplicationDegree(0.0625); got != 16 {
		t.Fatalf("6%% MP: %d copies, want full replication (16)", got)
	}
	if got := m.ReplicationDegree(1.0); got != 1 {
		t.Fatalf("100%% MP: %d copies, want 1", got)
	}
	// Degrees decrease monotonically with pressure.
	prev := 17
	for mp := 0.0; mp <= 1.0; mp += 0.05 {
		d := m.ReplicationDegree(mp)
		if d > prev {
			t.Fatalf("replication degree rose with pressure at %.2f", mp)
		}
		prev = d
	}
}

func TestPaperTable(t *testing.T) {
	rows := PaperTable()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Num != 49 || rows[3].Num != 29 {
		t.Fatalf("table %+v", rows)
	}
}

func TestString(t *testing.T) {
	s := Machine{16, 4, 8}.String()
	if !strings.Contains(s, "4/node") || !strings.Contains(s, "8-way") {
		t.Fatalf("got %q", s)
	}
}
