// Package analysis implements the paper's Section 4.2 analytical model of
// replication space: at which memory pressure does a set-associative
// attraction memory stop having room to replicate one cache line in every
// node of the machine?
//
// The paper derives: with single-processor nodes and 4-way AMs, above
// 76.5% MP (49/64) a line can no longer be replicated over all 16 nodes,
// while 8-way associativity moves the threshold to 88.2% (113/128); with
// 4-processor clusters the levels are 81.25% (13/16) and 90.6% (29/32).
// This package reproduces those numbers exactly and generalizes them.
package analysis
