package analysis

import "fmt"

// Machine describes a clustered COMA for threshold analysis.
type Machine struct {
	// Procs is the total processor count.
	Procs int
	// ProcsPerNode is the clustering degree.
	ProcsPerNode int
	// AMWays is the attraction-memory associativity.
	AMWays int
}

// Nodes returns the node count.
func (m Machine) Nodes() int { return m.Procs / m.ProcsPerNode }

// ReplicationThreshold returns the memory pressure above which a cache
// line can no longer be replicated in every node of the machine, as an
// exact fraction (numerator, denominator) and a float.
//
// Derivation (paper §4.2): consider one associativity class. Holding the
// per-processor AM quota constant, a node of c processors has a c-times
// larger AM and therefore c-times more sets, so machine-wide each set
// offers nodes*ways line slots. A memory pressure of MP fills MP *
// nodes*ways of them with unique data (the working set is spread evenly
// over sets); replicating one line in all nodes needs nodes slots, one
// per node, in that line's set. Replication everywhere is possible while
//
//	MP * nodes * ways + nodes <= nodes * ways
//
// i.e. MP <= (ways - 1) / ways ... for the line itself already counted
// once in the unique data: the paper counts the line's own copy inside
// the working set, needing only nodes-1 extra slots:
//
//	MP <= (nodes*ways - (nodes - 1)) / (nodes * ways)
func (m Machine) ReplicationThreshold() (num, den int, frac float64) {
	nodes := m.Nodes()
	den = nodes * m.AMWays
	num = den - (nodes - 1)
	return num, den, float64(num) / float64(den)
}

// ReplicationDegree returns how many copies of a line fit machine-wide at
// the given memory pressure (at least 1: the datum itself always exists).
func (m Machine) ReplicationDegree(mp float64) int {
	nodes := m.Nodes()
	slots := float64(nodes * m.AMWays)
	free := slots - mp*slots
	copies := 1 + int(free)
	if copies > nodes {
		copies = nodes
	}
	if copies < 1 {
		copies = 1
	}
	return copies
}

// String renders the configuration.
func (m Machine) String() string {
	return fmt.Sprintf("%d procs, %d/node, %d-way AM", m.Procs, m.ProcsPerNode, m.AMWays)
}

// ThresholdRow is one entry of the paper's §4.2 comparison.
type ThresholdRow struct {
	Machine   Machine
	Num, Den  int
	Threshold float64
}

// PaperTable reproduces the four configurations the paper quotes.
func PaperTable() []ThresholdRow {
	configs := []Machine{
		{Procs: 16, ProcsPerNode: 1, AMWays: 4},
		{Procs: 16, ProcsPerNode: 1, AMWays: 8},
		{Procs: 16, ProcsPerNode: 4, AMWays: 4},
		{Procs: 16, ProcsPerNode: 4, AMWays: 8},
	}
	rows := make([]ThresholdRow, len(configs))
	for i, m := range configs {
		n, d, f := m.ReplicationThreshold()
		rows[i] = ThresholdRow{Machine: m, Num: n, Den: d, Threshold: f}
	}
	return rows
}
