package core

import (
	"testing"
)

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("want 14 workloads, got %d", len(ws))
	}
	if _, err := Workload("nope", 16); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestRunValidation(t *testing.T) {
	tr := MustWorkload("fft", 16)
	if _, err := Run(tr, Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
	if _, err := Run(tr, Config{ProcsPerNode: 1}); err == nil {
		t.Fatal("missing pressure must be rejected")
	}
}

func TestMustWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustWorkload("nope", 16)
}

func TestRunNUMA(t *testing.T) {
	tr := MustWorkload("micro-readshared", 16)
	res, err := RunNUMA(tr, Baseline(1, MP50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads == 0 || res.ExecTime == 0 {
		t.Fatal("degenerate NUMA result")
	}
	if res.BusOccupancy[2] != 0 {
		t.Fatal("NUMA has no replacement traffic class")
	}
	if _, err := RunNUMA(tr, Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func TestMicroWorkloadsListed(t *testing.T) {
	ms := MicroWorkloads()
	if len(ms) != 4 {
		t.Fatalf("micro workloads = %d", len(ms))
	}
	for _, m := range ms {
		if _, err := Workload(m, 8); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

// End-to-end: the paper's two central clustering claims hold for FFT.
func TestClusteringReducesMissesAndTraffic(t *testing.T) {
	tr := MustWorkload("fft", 16)
	res1, err := Run(tr, Baseline(1, MP6))
	if err != nil {
		t.Fatal(err)
	}
	res4, err := Run(tr, Baseline(4, MP6))
	if err != nil {
		t.Fatal(err)
	}
	if res4.RNMr() >= res1.RNMr() {
		t.Fatalf("clustering must reduce RNMr: %v vs %v", res4.RNMr(), res1.RNMr())
	}
	if res4.BusTotal() >= res1.BusTotal() {
		t.Fatalf("clustering must reduce traffic: %v vs %v", res4.BusTotal(), res1.BusTotal())
	}
}

// Replacement traffic appears once the memory pressure leaves replication
// headroom behind (paper Section 4.2).
func TestPressureCreatesReplacementTraffic(t *testing.T) {
	tr := MustWorkload("fft", 16)
	low, err := Run(tr, Baseline(1, MP6))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(tr, Baseline(1, MP87))
	if err != nil {
		t.Fatal(err)
	}
	if low.BusOccupancy[2] != 0 {
		t.Fatalf("no replacements expected at 6%% MP, got %v", low.BusOccupancy[2])
	}
	if high.BusOccupancy[2] == 0 {
		t.Fatal("87% MP must produce replacement traffic")
	}
	if high.BusTotal() <= low.BusTotal() {
		t.Fatal("traffic must grow with memory pressure")
	}
}

// At 6% MP the attraction memories are effectively infinite: every node
// miss is a coherence or cold miss, never a capacity one, so the
// protocol performs no injections.
func TestInfiniteCacheAtLowPressure(t *testing.T) {
	for _, name := range []string{"fft", "radix", "water-n2"} {
		tr := MustWorkload(name, 16)
		res, err := Run(tr, Baseline(1, MP6))
		if err != nil {
			t.Fatal(err)
		}
		if res.Protocol.Injects != 0 || res.Protocol.SharedDrops != 0 {
			t.Fatalf("%s: replacements at 6%% MP: %+v", name, res.Protocol)
		}
	}
}

// Identical config + trace produce identical results (determinism of the
// whole pipeline).
func TestEndToEndDeterminism(t *testing.T) {
	tr := MustWorkload("radix", 16)
	a, err := Run(tr, Baseline(4, MP81))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, Baseline(4, MP81))
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.Reads != b.Reads || a.BusTotal() != b.BusTotal() {
		t.Fatal("pipeline is nondeterministic")
	}
}

// Doubling DRAM bandwidth helps a clustered machine (the Section 4.3
// observation that AM bandwidth is the key requirement for clustering).
func TestDRAMBandwidthHelpsClustering(t *testing.T) {
	tr := MustWorkload("radix", 16)
	cfg := Baseline(4, MP50)
	slow, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DRAMBandwidth = 2
	fast, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.ExecTime >= slow.ExecTime {
		t.Fatalf("2x DRAM bandwidth must speed up the clustered machine: %v vs %v",
			fast.ExecTime, slow.ExecTime)
	}
}

// Forced drops never happen at the paper's studied pressures.
func TestNoForcedDropsAtStudiedPressures(t *testing.T) {
	tr := MustWorkload("lu-c", 16)
	for _, mp := range Pressures {
		res, err := Run(tr, Baseline(1, mp))
		if err != nil {
			t.Fatal(err)
		}
		if res.Protocol.ForcedDrops != 0 {
			t.Fatalf("forced drops at %s MP", mp.Label)
		}
	}
}
