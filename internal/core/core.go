package core

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/numa"
	"repro/internal/trace"
)

// Re-exported types so callers need only this package for common use.
type (
	// Config selects the machine configuration (clustering degree,
	// memory pressure, associativity, bandwidths).
	Config = config.Machine
	// Pressure is a memory-pressure operating point (K/16).
	Pressure = config.Pressure
	// Result is everything a simulation run measures.
	Result = machine.Result
	// Trace is a generated workload reference trace.
	Trace = trace.Trace
)

// The paper's memory-pressure operating points.
var (
	MP6  = config.MP6
	MP50 = config.MP50
	MP75 = config.MP75
	MP81 = config.MP81
	MP87 = config.MP87
)

// Pressures lists the operating points in ascending order.
var Pressures = config.Pressures

// Baseline returns the paper's default configuration for a clustering
// degree and pressure (4-way AMs, baseline bandwidths).
func Baseline(procsPerNode int, mp Pressure) Config {
	return config.Baseline(procsPerNode, mp)
}

// Workloads returns the names of the bundled SPLASH-2-style kernels in
// Table 1 order.
func Workloads() []string { return apps.Names() }

// MicroWorkloads returns the names of the bundled micro-workloads
// (canonical sharing patterns: private, read-shared, migratory,
// producer/consumer), accepted by Workload alongside the Table 1 names.
func MicroWorkloads() []string { return apps.MicroNames() }

// Workload generates the named workload's reference trace for the given
// processor count (the paper always uses 16). Both Table 1 applications
// and "micro-*" pattern workloads are accepted.
func Workload(name string, procs int) (*Trace, error) {
	for _, m := range apps.MicroNames() {
		if m == name {
			return apps.Micro(name, procs, 64, 8), nil
		}
	}
	app, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	return app.Generate(procs), nil
}

// MustWorkload is Workload, panicking on unknown names.
func MustWorkload(name string, procs int) *Trace {
	tr, err := Workload(name, procs)
	if err != nil {
		panic(err)
	}
	return tr
}

// Run simulates the trace on the configured machine and returns the
// measured-section result.
func Run(tr *Trace, cfg Config) (*Result, error) {
	if err := checkConfig(cfg); err != nil {
		return nil, err
	}
	m, err := machine.New(cfg.Params(tr.WorkingSet))
	if err != nil {
		return nil, err
	}
	res, err := m.Run(tr)
	if err != nil {
		return nil, err
	}
	m.Release()
	return res, nil
}

// RunNUMA simulates the trace on the CC-NUMA baseline machine: identical
// caches, bus and timing, but a home-based memory system with no
// attraction — the ablation that isolates what the attraction memories
// buy. The Pressure only sizes the (unused-for-attraction) local memory;
// SLC and L1 sizes still scale from the working set.
func RunNUMA(tr *Trace, cfg Config) (*Result, error) {
	if err := checkConfig(cfg); err != nil {
		return nil, err
	}
	m, err := numa.NewMachine(cfg.Params(tr.WorkingSet))
	if err != nil {
		return nil, err
	}
	res, err := m.Run(tr)
	if err != nil {
		return nil, err
	}
	m.Release()
	return res, nil
}

func checkConfig(cfg Config) error {
	if cfg.ProcsPerNode <= 0 {
		return fmt.Errorf("core: ProcsPerNode must be positive")
	}
	if cfg.Pressure.K <= 0 {
		return fmt.Errorf("core: Pressure not set (use core.MP6..MP87)")
	}
	return nil
}
