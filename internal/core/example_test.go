package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The basic API flow: generate a workload, configure the machine, run,
// inspect. Results are deterministic, so the qualitative facts below are
// stable.
func Example() {
	tr := core.MustWorkload("fft", 16)
	res1, err := core.Run(tr, core.Baseline(1, core.MP6))
	if err != nil {
		panic(err)
	}
	res4, err := core.Run(tr, core.Baseline(4, core.MP6))
	if err != nil {
		panic(err)
	}
	fmt.Println("clustering reduces node misses:", res4.ReadNodeMisses < res1.ReadNodeMisses)
	fmt.Println("clustering reduces bus traffic:", res4.BusTotal() < res1.BusTotal())
	fmt.Println("no replacements at 6% memory pressure:", res1.Protocol.Injects == 0)
	// Output:
	// clustering reduces node misses: true
	// clustering reduces bus traffic: true
	// no replacements at 6% memory pressure: true
}

// Sweeping the paper's memory pressures shows replacement traffic taking
// over as replication space disappears.
func Example_memoryPressure() {
	tr := core.MustWorkload("radix", 16)
	var prev int64 = -1
	monotone := true
	for _, mp := range core.Pressures {
		res, err := core.Run(tr, core.Baseline(1, mp))
		if err != nil {
			panic(err)
		}
		total := int64(res.BusTotal())
		if total < prev {
			monotone = false
		}
		prev = total
	}
	fmt.Println("traffic grows with memory pressure:", monotone)
	// Output:
	// traffic grows with memory pressure: true
}
