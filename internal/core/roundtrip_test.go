package core

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// A serialized-and-reloaded trace simulates identically to the original —
// the disk cache path is equivalent to regeneration.
func TestSerializedTraceRoundTripRun(t *testing.T) {
	orig := MustWorkload("water-sp", 16)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Baseline(4, MP81)
	a, err := Run(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.Reads != b.Reads ||
		a.BusTotal() != b.BusTotal() || a.ReadNodeMisses != b.ReadNodeMisses {
		t.Fatalf("reloaded trace diverges: %v/%v vs %v/%v",
			a.ExecTime, a.BusTotal(), b.ExecTime, b.BusTotal())
	}
}
