package core

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// Simulating a workload from its compact streams and from the legacy
// materialized-[]Ref form (repacked through FromRefs) must produce
// deeply-equal Results for every Table 1 application — the representation
// change is invisible to the timing model.
func TestCompactVersusRefFormSimulationEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in -short mode")
	}
	cfg := Baseline(4, MP81)
	cfg.Procs = 8
	for _, name := range Workloads() {
		name := name
		t.Run(name, func(t *testing.T) {
			orig := MustWorkload(name, 8)
			refs := make([][]trace.Ref, len(orig.Streams))
			for p := range orig.Streams {
				refs[p] = orig.Streams[p].Refs()
			}
			repacked := trace.FromRefs(orig.Name, orig.WorkingSet, refs)
			a, err := Run(orig, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(repacked, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("results diverge between trace forms:\ncompact %+v\nrepacked %+v", a, b)
			}
		})
	}
}
