// Package core is the public facade of the COMA clustering simulator: it
// ties the workload kernels, the machine configuration methodology and the
// timing simulator together behind a small API.
//
// A typical use:
//
//	tr := core.MustWorkload("radix", 16)
//	res, err := core.Run(tr, core.Config{ProcsPerNode: 4, Pressure: core.MP81})
//	fmt.Println(res.RNMr(), res.ExecTime)
//
// Everything a run produces — execution-time breakdowns, read-node-miss
// rates, per-class bus traffic, protocol counters — is in Result.
package core
