package core

import "testing"

// The canonical sharing patterns behave as the paper's Section 2.1
// analysis predicts under clustering.

// Producer/consumer pairs land in the same node at 2-way clustering, so
// the consumer's node misses vanish almost entirely.
func TestMicroProducerConsumerClustering(t *testing.T) {
	tr := MustWorkload("micro-producer", 16)
	r1, err := Run(tr, Baseline(1, MP6))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tr, Baseline(2, MP6))
	if err != nil {
		t.Fatal(err)
	}
	if r2.RNMr() > 0.2*r1.RNMr() {
		t.Fatalf("producer/consumer RNMr should collapse under 2-way clustering: %v vs %v",
			r2.RNMr(), r1.RNMr())
	}
}

// Fully private data gains nothing from clustering: the node miss rate is
// unchanged (zero after warmup) and the only effect is node contention.
func TestMicroPrivateClusteringNeutral(t *testing.T) {
	tr := MustWorkload("micro-private", 16)
	r1, err := Run(tr, Baseline(1, MP6))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(tr, Baseline(4, MP6))
	if err != nil {
		t.Fatal(err)
	}
	if r1.ReadNodeMisses != 0 || r4.ReadNodeMisses != 0 {
		t.Fatalf("private data should never miss the node: %d / %d",
			r1.ReadNodeMisses, r4.ReadNodeMisses)
	}
	if r4.ExecTime < r1.ExecTime {
		t.Fatalf("clustering should not speed up private work (%v vs %v)",
			r4.ExecTime, r1.ExecTime)
	}
}

// Migratory data: the lock and its record bounce between processors;
// clustering keeps part of the bouncing inside a node, cutting traffic.
func TestMicroMigratoryClustering(t *testing.T) {
	tr := MustWorkload("micro-migratory", 16)
	r1, err := Run(tr, Baseline(1, MP6))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(tr, Baseline(4, MP6))
	if err != nil {
		t.Fatal(err)
	}
	if r4.BusTotal() >= r1.BusTotal() {
		t.Fatalf("clustering should cut migratory traffic: %v vs %v",
			r4.BusTotal(), r1.BusTotal())
	}
}

// Read-shared data replicates at low pressure: after warm-up rounds, the
// miss rate is low even unclustered, and high memory pressure destroys
// exactly this pattern.
func TestMicroReadSharedPressure(t *testing.T) {
	tr := MustWorkload("micro-readshared", 16)
	low, err := Run(tr, Baseline(1, MP6))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(tr, Baseline(1, MP87))
	if err != nil {
		t.Fatal(err)
	}
	if high.RNMr() <= low.RNMr() {
		t.Fatalf("pressure should hurt the read-shared pattern: %v vs %v",
			high.RNMr(), low.RNMr())
	}
	if high.Protocol.SharedDrops == 0 {
		t.Fatal("replication should be squeezed out at 87% MP")
	}
}
