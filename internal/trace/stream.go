package trace

import (
	"repro/internal/addrspace"
	"repro/internal/engine"
)

// Stream is one processor's reference stream in compact form: one 64-bit
// word per record (a 3-bit kind tag and a 61-bit payload) instead of a
// 32-byte Ref struct. Read/Write carry the address inline, Compute the
// duration, Barrier/MeasureStart the id; records that need more than one
// field (Acquire/Release carry both an address and a lock id) spill to a
// small side table of full Refs. Workload traces are dominated by reads
// and writes, so the compact form is ~4x smaller than []Ref and scans as
// a flat uint64 array in the simulator's hot loop.
type Stream struct {
	ops  []uint64
	side []Ref
}

// Record encoding: kind tag in the top 3 bits, payload in the low 61.
// Kind values 0..6 are the Ref kinds; tag 7 marks an indirect record
// whose payload indexes the side table.
const (
	opKindShift            = 61
	opPayloadMask   uint64 = 1<<opKindShift - 1
	opIndirect      uint64 = 7
	opIndirectShift        = opIndirect << opKindShift
)

// Len returns the number of records in the stream.
func (s *Stream) Len() int { return len(s.ops) }

// At decodes record i. The Ref is reconstructed by value; mutating it
// does not affect the stream.
func (s *Stream) At(i int) Ref {
	op := s.ops[i]
	pl := op & opPayloadMask
	switch k := Kind(op >> opKindShift); k {
	case Read, Write:
		return Ref{Kind: k, Addr: addrspace.Addr(pl)}
	case Compute:
		return Ref{Kind: Compute, Dur: engine.Time(pl)}
	case Barrier, MeasureStart:
		return Ref{Kind: k, ID: uint32(pl)}
	default:
		return s.side[pl]
	}
}

// Kind returns record i's kind without decoding the rest of the record.
func (s *Stream) Kind(i int) Kind {
	op := s.ops[i]
	if op >= opIndirectShift {
		return s.side[op&opPayloadMask].Kind
	}
	return Kind(op >> opKindShift)
}

// Append adds r to the stream.
func (s *Stream) Append(r Ref) {
	if op, ok := inlineOp(r); ok {
		s.ops = append(s.ops, op)
		return
	}
	s.ops = append(s.ops, opIndirectShift|uint64(len(s.side)))
	s.side = append(s.side, r)
}

// inlineOp packs r into a single op word when it is in canonical form
// for its kind (unused fields zero, payload within 61 bits). Refs that
// don't fit — always Acquire/Release, and any denormal record such as a
// Read with a stray Dur — go through the side table instead so that
// At(i) reproduces the original Ref exactly.
func inlineOp(r Ref) (uint64, bool) {
	switch r.Kind {
	case Read, Write:
		if r.ID == 0 && r.Dur == 0 && uint64(r.Addr) <= opPayloadMask {
			return uint64(r.Kind)<<opKindShift | uint64(r.Addr), true
		}
	case Compute:
		if r.ID == 0 && r.Addr == 0 && r.Dur >= 0 && uint64(r.Dur) <= opPayloadMask {
			return uint64(Compute)<<opKindShift | uint64(r.Dur), true
		}
	case Barrier, MeasureStart:
		if r.Addr == 0 && r.Dur == 0 {
			return uint64(r.Kind)<<opKindShift | uint64(r.ID), true
		}
	}
	return 0, false
}

// addCompute extends the trailing Compute record by d and reports whether
// it could (the builder's coalescing fast path).
func (s *Stream) addCompute(d engine.Time) bool {
	n := len(s.ops) - 1
	if n < 0 || s.ops[n]>>opKindShift != uint64(Compute) {
		return false
	}
	sum := s.ops[n]&opPayloadMask + uint64(d)
	if sum > opPayloadMask {
		return false
	}
	s.ops[n] = uint64(Compute)<<opKindShift | sum
	return true
}

// Refs materializes the stream as the old boxed form. For tools and
// tests; the simulator iterates with At.
func (s *Stream) Refs() []Ref {
	out := make([]Ref, len(s.ops))
	for i := range out {
		out[i] = s.At(i)
	}
	return out
}

// MemBytes is the approximate heap footprint of the stream's backing
// arrays, for cache-size accounting.
func (s *Stream) MemBytes() int {
	return 8*cap(s.ops) + 32*cap(s.side)
}

// grow preallocates capacity for n more records.
func (s *Stream) grow(n int) {
	if need := len(s.ops) + n; need > cap(s.ops) {
		ops := make([]uint64, len(s.ops), need)
		copy(ops, s.ops)
		s.ops = ops
	}
}

// FromRefs builds a Trace from old-form per-processor []Ref slices.
// Intended for tests and migration of externally built traces.
func FromRefs(name string, workingSet uint64, streams [][]Ref) *Trace {
	t := &Trace{
		Name:       name,
		Procs:      len(streams),
		WorkingSet: workingSet,
		Streams:    make([]Stream, len(streams)),
	}
	for p, st := range streams {
		t.Streams[p].grow(len(st))
		for _, r := range st {
			t.Streams[p].Append(r)
		}
	}
	return t
}
