// Package trace defines the per-processor memory-reference streams that
// drive the timing simulator — the equivalent of the data-reference stream
// SimICS fed the memory-system model in the paper. Instruction fetches are
// not represented (the paper assumes they always hit); instruction
// execution time appears as explicit Compute records.
package trace
