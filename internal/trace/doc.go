// Package trace defines the per-processor memory-reference streams that
// drive the timing simulator — the equivalent of the data-reference stream
// SimICS fed the memory-system model in the paper. Instruction fetches are
// not represented (the paper assumes they always hit); instruction
// execution time appears as explicit Compute records.
//
// Traces serialize to the compact COMATRC2 wire format (EncodeCompact /
// DecodeCompact), specified normatively in TRACES.md at the repository
// root. DecodeCompact is hardened against untrusted input — it is the
// decoder behind comasrv's POST /v1/traces upload endpoint — and a
// payload it accepts is guaranteed safe to simulate.
package trace
