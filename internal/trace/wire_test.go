package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/addrspace"
)

// wireSample builds a small but fully featured trace: inline reads,
// writes, computes and barriers plus side-table acquire/release pairs.
func wireSample() *Trace {
	b := NewBuilder("wire-sample", 3)
	for p := 0; p < 3; p++ {
		b.Write(p, addrspace.Addr(0x1000+64*p))
		b.Compute(p, 10)
	}
	b.Barrier()
	b.MeasureStart()
	for p := 0; p < 3; p++ {
		b.Read(p, addrspace.Addr(0x2000+64*p))
		b.Acquire(p, 1, 0x3000)
		b.Write(p, 0x3040)
		b.Release(p, 1, 0x3000)
		b.Compute(p, 25)
	}
	b.Barrier()
	return b.Build(addrspace.PageSize)
}

func TestCompactRoundTrip(t *testing.T) {
	tr := wireSample()
	enc := tr.EncodeCompact()
	got, err := DecodeCompact(enc)
	if err != nil {
		t.Fatalf("DecodeCompact: %v", err)
	}
	if got.Name != tr.Name || got.Procs != tr.Procs || got.WorkingSet != tr.WorkingSet {
		t.Fatalf("header mismatch: %+v vs %+v", got, tr)
	}
	for p := range tr.Streams {
		want := tr.Streams[p].Refs()
		have := got.Streams[p].Refs()
		if len(want) != len(have) {
			t.Fatalf("proc %d: %d refs decoded, want %d", p, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("proc %d ref %d: %+v != %+v", p, i, have[i], want[i])
			}
		}
	}
	// The stream arrays pass through verbatim, so re-encoding must
	// reproduce the input bytes exactly — the property the trace digest
	// and TRACES.md's worked example rely on.
	if !bytes.Equal(got.EncodeCompact(), enc) {
		t.Fatal("re-encode differs from original bytes")
	}
}

// corrupt returns enc with the byte at off overwritten.
func corrupt(enc []byte, off int, b byte) []byte {
	out := append([]byte(nil), enc...)
	out[off] = b
	return out
}

func TestDecodeCompactRejects(t *testing.T) {
	enc := wireSample().EncodeCompact()
	// Offsets into the sample's header: magic [0,8), nameLen [8,12),
	// name [12,23), procs [23,27), workingSet [27,35), stream 0 counts
	// [35,43).
	nameEnd := 12 + len("wire-sample")
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "reading magic"},
		{"truncated magic", enc[:4], "reading magic"},
		{"bad magic", corrupt(enc, 0, 'X'), "bad magic"},
		{"old version", corrupt(enc, 7, '1'), "bad magic"},
		{"future version", corrupt(enc, 7, '3'), "bad magic"},
		{"truncated header", enc[:10], "name length"},
		{"huge name", corrupt(enc, 10, 0xff), "implausible name length"},
		{"zero procs", corrupt(enc, nameEnd, 0), "processor count"},
		{"huge procs", corrupt(enc, nameEnd+2, 0xff), "implausible processor count"},
		{"zero working set", append(append(append([]byte{}, enc[:nameEnd+4]...), make([]byte, 8)...), enc[nameEnd+12:]...), "working set"},
		{"truncated stream", enc[:len(enc)-5], ""},
		{"trailing bytes", append(append([]byte(nil), enc...), 0xaa), "trailing bytes"},
		// Stream 0's op count inflated far beyond the remaining input:
		// the decoder must reject before allocating.
		{"oversized ops", corrupt(enc, nameEnd+15, 0x7f), ""},
		{"oversized side table", corrupt(enc, nameEnd+19, 0x7f), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeCompact(tc.data)
			if err == nil {
				t.Fatalf("decoded successfully: %+v", got)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeCompactRejectsBadOps corrupts individual op words and side
// records, the cases where a naive decoder would panic later in
// Stream.At or the machine's sync handlers.
func TestDecodeCompactRejectsBadOps(t *testing.T) {
	mk := func(mut func(tr *Trace)) []byte {
		tr := wireSample()
		mut(tr)
		return tr.EncodeCompact()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"inline acquire", mk(func(tr *Trace) {
			tr.Streams[0].ops[0] = uint64(Acquire)<<opKindShift | 0x3000
		}), "must spill"},
		{"inline release", mk(func(tr *Trace) {
			tr.Streams[0].ops[0] = uint64(Release)<<opKindShift | 0x3000
		}), "must spill"},
		{"indirect out of range", mk(func(tr *Trace) {
			tr.Streams[0].ops[0] = opIndirectShift | 99
		}), "outside side table"},
		{"barrier id overflow", mk(func(tr *Trace) {
			tr.Streams[0].ops[0] = uint64(Barrier)<<opKindShift | 1<<40
		}), "overflows uint32"},
		{"bad side kind", mk(func(tr *Trace) {
			tr.Streams[0].side[0].Kind = 200
		}), "unknown kind"},
		{"zero address read", mk(func(tr *Trace) {
			tr.Streams[0].ops[0] = uint64(Read) << opKindShift
		}), "zero address"},
		{"double measure start", mk(func(tr *Trace) {
			tr.Streams[0].ops[0] = uint64(MeasureStart) << opKindShift
		}), "MeasureStart"},
		{"release without acquire", mk(func(tr *Trace) {
			// Swap proc 0's acquire/release side records.
			tr.Streams[0].side[0], tr.Streams[0].side[1] = tr.Streams[0].side[1], tr.Streams[0].side[0]
		}), "does not hold"},
		{"mismatched barriers", mk(func(tr *Trace) {
			tr.Streams[0].ops[2] = uint64(Barrier)<<opKindShift | 7
		}), "barrier record"},
		{"ends holding lock", mk(func(tr *Trace) {
			// Turn proc 0's release into a read so the acquire dangles.
			tr.Streams[0].side[1] = Ref{Kind: Read, Addr: 0x3000}
		}), "ends holding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCompact(tc.data)
			if err == nil {
				t.Fatal("decoded successfully")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateSyncAcceptsBuilderTraces pins the guarantee ValidateSync's
// doc comment makes: every Builder-made trace passes.
func TestValidateSyncAcceptsBuilderTraces(t *testing.T) {
	if err := wireSample().ValidateSync(); err != nil {
		t.Fatalf("ValidateSync on builder trace: %v", err)
	}
}

// FuzzStreamDecode drives DecodeCompact with arbitrary bytes: it must
// never panic and never allocate past a small multiple of the input
// (enforced structurally: array lengths are checked against remaining
// input before allocation). Accepted inputs must round-trip.
func FuzzStreamDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(CompactMagic))
	sample := wireSample().EncodeCompact()
	f.Add(sample)
	f.Add(sample[:len(sample)-3])
	// A header claiming a huge op count with no backing bytes.
	huge := append([]byte(CompactMagic), make([]byte, 32)...)
	binary.LittleEndian.PutUint32(huge[8:], 0)     // empty name
	binary.LittleEndian.PutUint32(huge[12:], 1)    // one proc
	binary.LittleEndian.PutUint64(huge[16:], 4096) // working set
	binary.LittleEndian.PutUint32(huge[24:], 1<<31)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeCompact(data)
		if err != nil {
			return
		}
		enc := tr.EncodeCompact()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted input does not round-trip: %d bytes in, %d out", len(data), len(enc))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
	})
}
