package trace

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/engine"
)

// Builder accumulates per-processor streams while a workload kernel runs.
// Kernels are single-threaded generators: they iterate over logical
// processors and emit each processor's references for a phase, separated
// by barriers; the timing simulator later interleaves the streams. The
// builder emits the compact Stream form directly, so a generated trace
// never exists in the boxed []Ref representation.
type Builder struct {
	name      string
	procs     int
	streams   []Stream
	barrierID uint32
	measured  bool
}

// NewBuilder returns a builder for a workload with the given processor
// count.
func NewBuilder(name string, procs int) *Builder {
	if procs <= 0 {
		panic("trace: non-positive processor count")
	}
	return &Builder{name: name, procs: procs, streams: make([]Stream, procs)}
}

// Procs returns the processor count.
func (b *Builder) Procs() int { return b.procs }

// Read records a load by processor p.
func (b *Builder) Read(p int, a addrspace.Addr) {
	b.streams[p].Append(Ref{Kind: Read, Addr: a})
}

// Write records a store by processor p.
func (b *Builder) Write(p int, a addrspace.Addr) {
	b.streams[p].Append(Ref{Kind: Write, Addr: a})
}

// Compute charges d nanoseconds of busy execution to processor p.
// Successive computes are coalesced to keep traces compact.
func (b *Builder) Compute(p int, d engine.Time) {
	if d <= 0 {
		return
	}
	if !b.streams[p].addCompute(d) {
		b.streams[p].Append(Ref{Kind: Compute, Dur: d})
	}
}

// Acquire records lock acquisition by p on lock id homed at address a.
func (b *Builder) Acquire(p int, id uint32, a addrspace.Addr) {
	b.streams[p].Append(Ref{Kind: Acquire, Addr: a, ID: id})
}

// Release records release by p of lock id homed at address a.
func (b *Builder) Release(p int, id uint32, a addrspace.Addr) {
	b.streams[p].Append(Ref{Kind: Release, Addr: a, ID: id})
}

// Barrier emits a global barrier record to every processor's stream.
func (b *Builder) Barrier() {
	id := b.barrierID
	b.barrierID++
	for p := range b.streams {
		b.streams[p].Append(Ref{Kind: Barrier, ID: id})
	}
}

// MeasureStart emits the measured-section marker to every stream. It must
// be called exactly once per workload, after initialization phases.
func (b *Builder) MeasureStart() {
	if b.measured {
		panic(fmt.Sprintf("trace %s: MeasureStart called twice", b.name))
	}
	b.measured = true
	for p := range b.streams {
		b.streams[p].Append(Ref{Kind: MeasureStart})
	}
}

// Build finalizes the trace. workingSet is the application footprint in
// bytes (normally Space.Allocated()).
func (b *Builder) Build(workingSet uint64) *Trace {
	if !b.measured {
		panic(fmt.Sprintf("trace %s: built without MeasureStart", b.name))
	}
	return &Trace{Name: b.name, Procs: b.procs, WorkingSet: workingSet, Streams: b.streams}
}
