package trace

import (
	"strings"
	"testing"
)

func build2(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder("test", 2)
	b.Write(0, 0x1000)
	b.Compute(0, 10)
	b.Compute(0, 5) // coalesces with the previous compute
	b.Barrier()
	b.MeasureStart()
	b.Read(0, 0x1000)
	b.Read(1, 0x1000)
	b.Acquire(1, 7, 0x2000)
	b.Release(1, 7, 0x2000)
	b.Barrier()
	return b.Build(8192)
}

func TestBuilderStreams(t *testing.T) {
	tr := build2(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Procs != 2 || len(tr.Streams) != 2 {
		t.Fatal("stream count wrong")
	}
	if tr.WorkingSet != 8192 {
		t.Fatal("working set wrong")
	}
	// Compute coalescing: proc 0 has exactly one Compute of 15.
	var computes []Ref
	for _, r := range tr.Streams[0].Refs() {
		if r.Kind == Compute {
			computes = append(computes, r)
		}
	}
	if len(computes) != 1 || computes[0].Dur != 15 {
		t.Fatalf("compute coalescing: %+v", computes)
	}
	// Barriers appear in both streams with matching ids.
	for p := 0; p < 2; p++ {
		n := 0
		for _, r := range tr.Streams[p].Refs() {
			if r.Kind == Barrier {
				n++
			}
		}
		if n != 2 {
			t.Fatalf("proc %d has %d barriers, want 2", p, n)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := build2(t)
	s := tr.Summarize()
	if s.Reads != 2 || s.Writes != 1 || s.Acquires != 1 || s.Barriers != 4 {
		t.Fatalf("summary %+v", s)
	}
	if s.ComputeTotal != 15 {
		t.Fatalf("compute total %v", s.ComputeTotal)
	}
	if s.DistinctLines != 1 {
		t.Fatalf("distinct lines %d", s.DistinctLines)
	}
	if s.SharedLines != 1 { // 0x1000 touched by both
		t.Fatalf("shared lines %d", s.SharedLines)
	}
}

func TestValidateRejectsZeroAddr(t *testing.T) {
	tr := FromRefs("bad", 0, [][]Ref{{
		{Kind: MeasureStart},
		{Kind: Read, Addr: 0},
	}})
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "zero address") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRequiresMeasureStart(t *testing.T) {
	tr := FromRefs("bad", 0, [][]Ref{{
		{Kind: Read, Addr: 64},
	}})
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "MeasureStart") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateStreamCount(t *testing.T) {
	tr := FromRefs("bad", 0, [][]Ref{{{Kind: MeasureStart}}})
	tr.Procs = 2
	if err := tr.Validate(); err == nil {
		t.Fatal("expected stream-count error")
	}
}

func TestBuilderDoubleMeasurePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("x", 1)
	b.MeasureStart()
	b.MeasureStart()
}

func TestBuilderBuildWithoutMeasurePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("x", 1).Build(100)
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Read: "read", Write: "write", Compute: "compute",
		Acquire: "acquire", Release: "release", Barrier: "barrier",
		MeasureStart: "measure-start",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}

func TestComputeNonPositiveIgnored(t *testing.T) {
	b := NewBuilder("x", 1)
	b.Compute(0, 0)
	b.Compute(0, -5)
	b.MeasureStart()
	tr := b.Build(64)
	if tr.Streams[0].Len() != 1 {
		t.Fatalf("non-positive computes must be dropped: %+v", tr.Streams[0].Refs())
	}
}
