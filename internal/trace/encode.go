package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/addrspace"
	"repro/internal/engine"
)

// Binary trace format: generating the workloads is fast, but users who
// sweep many machine configurations can cache traces to disk and reload
// them without re-running the kernels.
//
// Layout (little endian):
//
//	magic "COMATRC1" | name len + bytes | procs u32 | workingSet u64 |
//	per stream: count u32, then count records of
//	  kind u8 | addr u64 | id u32 | dur i64
const encodeMagic = "COMATRC1"

// WriteTo serializes the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v interface{}) error { return binary.Write(cw, binary.LittleEndian, v) }
	if _, err := cw.Write([]byte(encodeMagic)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(t.Name))); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte(t.Name)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(t.Procs)); err != nil {
		return cw.n, err
	}
	if err := write(t.WorkingSet); err != nil {
		return cw.n, err
	}
	for p := range t.Streams {
		st := &t.Streams[p]
		if err := write(uint32(st.Len())); err != nil {
			return cw.n, err
		}
		for i := 0; i < st.Len(); i++ {
			r := st.At(i)
			if err := write(uint8(r.Kind)); err != nil {
				return cw.n, err
			}
			if err := write(uint64(r.Addr)); err != nil {
				return cw.n, err
			}
			if err := write(r.ID); err != nil {
				return cw.n, err
			}
			if err := write(int64(r.Dur)); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadTrace deserializes a trace written by WriteTo and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	read := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }
	magic := make([]byte, len(encodeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != encodeMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var nameLen uint32
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var procs uint32
	if err := read(&procs); err != nil {
		return nil, err
	}
	if procs == 0 || procs > 1024 {
		return nil, fmt.Errorf("trace: implausible processor count %d", procs)
	}
	t := &Trace{Name: string(name), Procs: int(procs)}
	if err := read(&t.WorkingSet); err != nil {
		return nil, err
	}
	t.Streams = make([]Stream, procs)
	for p := range t.Streams {
		var count uint32
		if err := read(&count); err != nil {
			return nil, err
		}
		st := &t.Streams[p]
		st.grow(int(count))
		for i := 0; i < int(count); i++ {
			var kind uint8
			var addr uint64
			var id uint32
			var dur int64
			if err := read(&kind); err != nil {
				return nil, err
			}
			if err := read(&addr); err != nil {
				return nil, err
			}
			if err := read(&id); err != nil {
				return nil, err
			}
			if err := read(&dur); err != nil {
				return nil, err
			}
			if kind > uint8(MeasureStart) {
				return nil, fmt.Errorf("trace: proc %d ref %d: unknown kind %d", p, i, kind)
			}
			st.Append(Ref{
				Kind: Kind(kind),
				Addr: addrspace.Addr(addr),
				ID:   id,
				Dur:  engine.Time(dur),
			})
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
