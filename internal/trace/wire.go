package trace

import (
	"encoding/binary"
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/engine"
)

// Compact wire format ("COMATRC2"): the struct-of-arrays Stream encoding
// serialized verbatim, so a trace round-trips bytes → Trace → bytes
// without re-encoding any record. This is the format POST /v1/traces
// ingests and the one TRACES.md specifies normatively; the boxed
// "COMATRC1" format (encode.go) remains readable for old saved files.
//
// Layout (little endian throughout):
//
//	magic "COMATRC2" (8 bytes; the trailing digit is the format version)
//	nameLen u32 | name bytes (≤ 4096)
//	procs u32 (1..1024)
//	workingSet u64 (64 B .. 1 TiB)
//	per stream, procs times:
//	  opsLen u32 | sideLen u32
//	  opsLen × op u64      (packed records, see below)
//	  sideLen × side record: kind u8 | addr u64 | id u32 | dur i64 (21 B)
//	(no trailing bytes)
//
// An op word carries a 3-bit kind tag in bits 63..61 and a 61-bit
// payload in bits 60..0. Tags 0 (Read) and 1 (Write) carry the address,
// 2 (Compute) the duration in nanoseconds, 5 (Barrier) and 6
// (MeasureStart) the barrier id; tag 7 marks an indirect record whose
// payload indexes the stream's side table. Acquire (3) and Release (4)
// never appear inline — they need both an address and a lock id, so
// they always spill to the side table, as does any record whose fields
// exceed the inline payload.
const CompactMagic = "COMATRC2"

// Decoder hardening limits. The name and processor-count bounds match
// the boxed format; the working-set bound keeps derived machine sizes
// inside int range on every platform.
const (
	maxWireName       = 4096
	maxWireProcs      = 1024
	minWireWorkingSet = uint64(addrspace.LineSize)
	maxWireWorkingSet = uint64(1) << 40
)

const sideRecordBytes = 1 + 8 + 4 + 8 // kind u8 | addr u64 | id u32 | dur i64

// EncodeCompact serializes the trace into the COMATRC2 wire form. The
// stream arrays are written verbatim, so EncodeCompact(DecodeCompact(b))
// reproduces b byte for byte.
func (t *Trace) EncodeCompact() []byte {
	n := len(CompactMagic) + 4 + len(t.Name) + 4 + 8
	for i := range t.Streams {
		st := &t.Streams[i]
		n += 8 + 8*len(st.ops) + sideRecordBytes*len(st.side)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, CompactMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Name)))
	buf = append(buf, t.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Procs))
	buf = binary.LittleEndian.AppendUint64(buf, t.WorkingSet)
	for i := range t.Streams {
		st := &t.Streams[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.ops)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.side)))
		for _, op := range st.ops {
			buf = binary.LittleEndian.AppendUint64(buf, op)
		}
		for _, r := range st.side {
			buf = append(buf, byte(r.Kind))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Addr))
			buf = binary.LittleEndian.AppendUint32(buf, r.ID)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Dur))
		}
	}
	return buf
}

// wireReader is a bounds-checked cursor over untrusted input. Every read
// verifies the remaining length first, so truncated or hostile inputs
// surface as errors, never as slice panics.
type wireReader struct {
	data []byte
	pos  int
}

func (r *wireReader) remaining() int { return len(r.data) - r.pos }

func (r *wireReader) take(n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, fmt.Errorf("truncated: need %d bytes at offset %d, have %d", n, r.pos, r.remaining())
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *wireReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *wireReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// DecodeCompact parses a COMATRC2 trace from untrusted bytes. It never
// panics regardless of input: every length is checked against the
// remaining input before allocation (so memory use is bounded by a small
// multiple of len(data)), every op word and side record is validated
// against the Stream invariants that At relies on, and the decoded trace
// passes both Validate and ValidateSync — making it safe to hand to
// machine.Run directly.
func DecodeCompact(data []byte) (*Trace, error) {
	r := &wireReader{data: data}
	magic, err := r.take(len(CompactMagic))
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != CompactMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic, CompactMagic)
	}
	nameLen, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxWireName {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name, err := r.take(int(nameLen))
	if err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	procs, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("trace: reading processor count: %w", err)
	}
	if procs == 0 || procs > maxWireProcs {
		return nil, fmt.Errorf("trace: implausible processor count %d", procs)
	}
	ws, err := r.u64()
	if err != nil {
		return nil, fmt.Errorf("trace: reading working set: %w", err)
	}
	if ws < minWireWorkingSet || ws > maxWireWorkingSet {
		return nil, fmt.Errorf("trace: working set %d outside [%d, %d]", ws, minWireWorkingSet, maxWireWorkingSet)
	}
	t := &Trace{
		Name:       string(name),
		Procs:      int(procs),
		WorkingSet: ws,
		Streams:    make([]Stream, procs),
	}
	for p := range t.Streams {
		opsLen, err := r.u32()
		if err != nil {
			return nil, fmt.Errorf("trace: proc %d: reading op count: %w", p, err)
		}
		sideLen, err := r.u32()
		if err != nil {
			return nil, fmt.Errorf("trace: proc %d: reading side count: %w", p, err)
		}
		// Both arrays must fit in the remaining input; checking before
		// allocating bounds memory use by the input size.
		need := 8*uint64(opsLen) + sideRecordBytes*uint64(sideLen)
		if uint64(r.remaining()) < need {
			return nil, fmt.Errorf("trace: proc %d: stream claims %d bytes, %d remain", p, need, r.remaining())
		}
		st := &t.Streams[p]
		st.ops = make([]uint64, opsLen)
		for i := range st.ops {
			op, err := r.u64()
			if err != nil {
				return nil, err
			}
			if err := checkOpWord(op, sideLen); err != nil {
				return nil, fmt.Errorf("trace: proc %d op %d: %w", p, i, err)
			}
			st.ops[i] = op
		}
		if sideLen > 0 {
			st.side = make([]Ref, sideLen)
			for i := range st.side {
				b, err := r.take(sideRecordBytes)
				if err != nil {
					return nil, err
				}
				kind := Kind(b[0])
				if kind > MeasureStart {
					return nil, fmt.Errorf("trace: proc %d side %d: unknown kind %d", p, i, b[0])
				}
				st.side[i] = Ref{
					Kind: kind,
					Addr: addrspace.Addr(binary.LittleEndian.Uint64(b[1:])),
					ID:   binary.LittleEndian.Uint32(b[9:]),
					Dur:  engine.Time(int64(binary.LittleEndian.Uint64(b[13:]))),
				}
			}
		}
	}
	if n := r.remaining(); n != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after last stream", n)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := t.ValidateSync(); err != nil {
		return nil, err
	}
	return t, nil
}

// checkOpWord enforces the invariants Stream.At assumes: inline tags are
// limited to the kinds that pack into one word (Acquire/Release always
// spill), barrier ids fit their uint32 field, and indirect payloads index
// inside the side table.
func checkOpWord(op uint64, sideLen uint32) error {
	pl := op & opPayloadMask
	switch tag := op >> opKindShift; tag {
	case uint64(Read), uint64(Write), uint64(Compute):
		return nil
	case uint64(Barrier), uint64(MeasureStart):
		if pl > 1<<32-1 {
			return fmt.Errorf("barrier id %d overflows uint32", pl)
		}
		return nil
	case opIndirect:
		if pl >= uint64(sideLen) {
			return fmt.Errorf("indirect payload %d outside side table of %d", pl, sideLen)
		}
		return nil
	default: // Acquire/Release inline
		return fmt.Errorf("kind %s must spill to the side table", Kind(tag))
	}
}

// ValidateSync statically checks the synchronization discipline that
// machine.Run enforces dynamically by panicking, so an untrusted trace
// that passes is guaranteed to never trip those panics:
//
//   - every stream carries the same sequence of barrier records (kind
//     and id), so no processor can arrive at one barrier while a
//     different one is in flight;
//   - within a stream, Release is only issued for a lock a prior Acquire
//     is still holding (program order per processor makes the static
//     holder the dynamic holder), no lock is re-acquired while held
//     (that would self-deadlock), and the stream ends holding nothing.
//
// Cross-processor lock-ordering deadlocks remain possible; machine.Run
// detects those and returns an error rather than hanging. Builder-made
// traces satisfy ValidateSync by construction.
func (t *Trace) ValidateSync() error {
	type sync struct {
		kind Kind
		id   uint32
	}
	var ref []sync
	for p := range t.Streams {
		st := &t.Streams[p]
		var seq []sync
		held := make(map[uint32]bool)
		for i := 0; i < st.Len(); i++ {
			r := st.At(i)
			switch r.Kind {
			case Barrier, MeasureStart:
				seq = append(seq, sync{r.Kind, r.ID})
			case Acquire:
				if held[r.ID] {
					return fmt.Errorf("trace %s: proc %d ref %d re-acquires held lock %d", t.Name, p, i, r.ID)
				}
				held[r.ID] = true
			case Release:
				if !held[r.ID] {
					return fmt.Errorf("trace %s: proc %d ref %d releases lock %d it does not hold", t.Name, p, i, r.ID)
				}
				delete(held, r.ID)
			}
		}
		for id := range held {
			return fmt.Errorf("trace %s: proc %d ends holding lock %d", t.Name, p, id)
		}
		if p == 0 {
			ref = seq
			continue
		}
		if len(seq) != len(ref) {
			return fmt.Errorf("trace %s: proc %d has %d barrier records, proc 0 has %d", t.Name, p, len(seq), len(ref))
		}
		for i := range seq {
			if seq[i] != ref[i] {
				return fmt.Errorf("trace %s: proc %d barrier record %d is %s %d, proc 0 has %s %d",
					t.Name, p, i, seq[i].kind, seq[i].id, ref[i].kind, ref[i].id)
			}
		}
	}
	return nil
}
