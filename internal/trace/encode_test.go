package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	orig := build2(t)
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Procs != orig.Procs || got.WorkingSet != orig.WorkingSet {
		t.Fatalf("header mismatch: %+v", got)
	}
	for p := range orig.Streams {
		if got.Streams[p].Len() != orig.Streams[p].Len() {
			t.Fatalf("proc %d: %d refs, want %d", p, got.Streams[p].Len(), orig.Streams[p].Len())
		}
		for i := 0; i < orig.Streams[p].Len(); i++ {
			if got.Streams[p].At(i) != orig.Streams[p].At(i) {
				t.Fatalf("proc %d ref %d: %+v != %+v", p, i, got.Streams[p].At(i), orig.Streams[p].At(i))
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("NOTATRACE-AT-ALL")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadTrace(strings.NewReader("COMA")); err == nil {
		t.Fatal("expected short-read error")
	}
}

func TestReadTraceRejectsTruncation(t *testing.T) {
	orig := build2(t)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := ReadTrace(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

// failAfter errors once n bytes have been written.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		can := f.n - f.written
		if can < 0 {
			can = 0
		}
		f.written += can
		return can, errShortDevice
	}
	f.written += len(p)
	return len(p), nil
}

var errShortDevice = &shortDeviceError{}

type shortDeviceError struct{}

func (*shortDeviceError) Error() string { return "device full" }

func TestWriteToPropagatesErrors(t *testing.T) {
	tr := build2(t)
	// A full serialization needs well over 64 bytes; failing at various
	// points must surface the error (buffered writers may defer it to
	// the final flush).
	for _, limit := range []int{0, 4, 20, 64} {
		if _, err := tr.WriteTo(&failAfter{n: limit}); err == nil {
			t.Fatalf("write error at limit %d not propagated", limit)
		}
	}
}

func TestReadTraceRejectsImplausibleHeader(t *testing.T) {
	// Valid magic followed by an absurd name length.
	data := append([]byte(encodeMagic), 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Fatal("implausible name length not rejected")
	}
}

func TestReadTraceRejectsBadKind(t *testing.T) {
	orig := build2(t)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the first record's kind byte (offset: magic 8 + namelen 4 +
	// name 4 + procs 4 + ws 8 + count 4).
	off := 8 + 4 + len(orig.Name) + 4 + 8 + 4
	data[off] = 250
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Fatal("bad kind not detected")
	}
}
