package trace

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/engine"
)

// Kind discriminates trace records.
type Kind uint8

// Trace record kinds.
const (
	// Read is a data load from Addr. The processor stalls until it
	// completes (release consistency: reads are blocking).
	Read Kind = iota
	// Write is a data store to Addr. It retires through the write buffer;
	// the processor does not stall unless the buffer is full.
	Write
	// Compute advances the processor's clock by Dur nanoseconds of busy
	// execution (instructions that hit in the L1).
	Compute
	// Acquire obtains the lock identified by ID, performing a
	// read-modify-write on Addr (the lock's home line).
	Acquire
	// Release drains the write buffer and frees lock ID via Addr.
	Release
	// Barrier blocks until all processors reach barrier ID.
	Barrier
	// MeasureStart marks the beginning of the measured parallel section;
	// it acts as a barrier and resets all statistics (the paper measures
	// only the parallel section, per SPLASH-2 guidance).
	MeasureStart
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Compute:
		return "compute"
	case Acquire:
		return "acquire"
	case Release:
		return "release"
	case Barrier:
		return "barrier"
	case MeasureStart:
		return "measure-start"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Ref is one trace record. Addr is meaningful for Read/Write/Acquire/
// Release; ID for Acquire/Release/Barrier; Dur for Compute.
type Ref struct {
	Kind Kind
	Addr addrspace.Addr
	ID   uint32
	Dur  engine.Time
}

// Trace holds the generated streams for every processor plus workload
// metadata needed to size the machine.
type Trace struct {
	// Name identifies the workload (e.g. "radix").
	Name string
	// Procs is the number of logical processors (streams).
	Procs int
	// WorkingSet is the application footprint in bytes (page-rounded),
	// from which attraction-memory sizes are derived via memory pressure.
	WorkingSet uint64
	// Streams[p] is processor p's reference stream in compact form.
	Streams []Stream
}

// MemBytes is the approximate heap footprint of all streams' backing
// arrays.
func (t *Trace) MemBytes() int {
	var n int
	for i := range t.Streams {
		n += t.Streams[i].MemBytes()
	}
	return n
}

// Validate checks structural invariants: stream count, barrier pairing is
// not checked here (the machine enforces it), but every stream must
// contain exactly one MeasureStart and addresses must be non-zero for
// memory operations.
func (t *Trace) Validate() error {
	if len(t.Streams) != t.Procs {
		return fmt.Errorf("trace %s: %d streams for %d procs", t.Name, len(t.Streams), t.Procs)
	}
	for p := range t.Streams {
		st := &t.Streams[p]
		measures := 0
		for i := 0; i < st.Len(); i++ {
			r := st.At(i)
			switch r.Kind {
			case Read, Write, Acquire, Release:
				if r.Addr == 0 {
					return fmt.Errorf("trace %s: proc %d ref %d (%s) has zero address", t.Name, p, i, r.Kind)
				}
			case Compute:
				if r.Dur < 0 {
					return fmt.Errorf("trace %s: proc %d ref %d negative compute", t.Name, p, i)
				}
			case MeasureStart:
				measures++
			}
		}
		if measures != 1 {
			return fmt.Errorf("trace %s: proc %d has %d MeasureStart records (want 1)", t.Name, p, measures)
		}
	}
	return nil
}

// Stats summarizes a trace for inspection tools and tests.
type Stats struct {
	Reads, Writes      int64
	Acquires, Barriers int64
	ComputeTotal       engine.Time
	// DistinctLines is the number of distinct cache lines touched.
	DistinctLines int
	// SharedLines is the number of lines touched by 2+ processors.
	SharedLines int
}

// Summarize scans the whole trace. It is O(refs) and allocates a map over
// touched lines; intended for tools and tests, not the simulation loop.
func (t *Trace) Summarize() Stats {
	var s Stats
	touched := make(map[addrspace.Line]uint32) // bitmap of procs per line
	for p := range t.Streams {
		st := &t.Streams[p]
		for i := 0; i < st.Len(); i++ {
			r := st.At(i)
			switch r.Kind {
			case Read:
				s.Reads++
				touched[addrspace.LineOf(r.Addr)] |= 1 << uint(p%32)
			case Write:
				s.Writes++
				touched[addrspace.LineOf(r.Addr)] |= 1 << uint(p%32)
			case Compute:
				s.ComputeTotal += r.Dur
			case Acquire:
				s.Acquires++
			case Barrier:
				s.Barriers++
			}
		}
	}
	s.DistinctLines = len(touched)
	for _, mask := range touched {
		if mask&(mask-1) != 0 {
			s.SharedLines++
		}
	}
	return s
}
