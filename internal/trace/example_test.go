package trace_test

import (
	"fmt"

	"repro/internal/trace"
)

// ExampleStream shows the compact reference-stream encoding: common
// records (reads, writes, compute) pack into one 64-bit word each, while
// multi-field records like Acquire spill to a side table — At always
// reconstructs the original Ref.
func ExampleStream() {
	var s trace.Stream
	s.Append(trace.Ref{Kind: trace.Read, Addr: 64})
	s.Append(trace.Ref{Kind: trace.Compute, Dur: 100})
	s.Append(trace.Ref{Kind: trace.Acquire, Addr: 4096, ID: 3})

	fmt.Println("records:", s.Len())
	fmt.Println(s.Kind(0), "of address", s.At(0).Addr)
	fmt.Println(s.Kind(1), "for", s.At(1).Dur)
	fmt.Println(s.Kind(2), "of lock", s.At(2).ID, "via address", s.At(2).Addr)
	// Output:
	// records: 3
	// read of address 64
	// compute for 100ns
	// acquire of lock 3 via address 4096
}
