// Package report renders the full experiment suite into a single
// self-contained HTML page with inline SVG charts — a shareable artifact
// of a reproduction run (cmd/report writes it).
package report

import (
	"fmt"
	"html/template"
	"io"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/experiments"
)

// Data collects everything the report shows.
type Data struct {
	Table1     []experiments.Table1Row
	Fig2       *experiments.Fig2
	Fig3, Fig4 *experiments.TrafficFigure
	Fig5       *experiments.Fig5
	Thresholds []analysis.ThresholdRow
}

// Collect runs (or reuses, via the runner's memoization) every experiment
// the report needs. The five studies run concurrently: the runner
// deduplicates the many configurations they share, and each study fans
// its own matrix out on the runner's worker pool.
func Collect(r *experiments.Runner) (*Data, error) {
	var d Data
	var wg sync.WaitGroup
	errs := make([]error, 5)
	collect := func(i int, f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = f()
		}()
	}
	collect(0, func() (err error) { d.Table1, err = r.Table1(); return })
	collect(1, func() (err error) { d.Fig2, err = r.Figure2(); return })
	collect(2, func() (err error) { d.Fig3, err = r.Figure3(); return })
	collect(3, func() (err error) { d.Fig4, err = r.Figure4(); return })
	collect(4, func() (err error) { d.Fig5, err = r.Figure5(); return })
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	d.Thresholds = analysis.PaperTable()
	return &d, nil
}

// segment colors per traffic class / time category.
var trafficColors = []string{"#4878a8", "#e8a33d", "#c0504d"}
var timeColors = []string{"#5a9e6f", "#4878a8", "#e8a33d", "#c0504d", "#9b74b6"}

// svgStack renders one horizontal stacked bar as SVG rects.
func svgStack(y int, fracs []float64, colors []string, width int) template.HTML {
	var sb strings.Builder
	x := 0.0
	for i, f := range fracs {
		if f <= 0 {
			continue
		}
		w := f * float64(width)
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="14" fill="%s"/>`,
			x, y, w, colors[i%len(colors)])
		x += w
	}
	return template.HTML(sb.String())
}

// trafficChart renders one application's group of traffic bars.
type barRow struct {
	Label string
	SVG   template.HTML
	Pct   string
}

type chartGroup struct {
	App  string
	Rows []barRow
	H    int
}

func trafficGroups(f *experiments.TrafficFigure) []chartGroup {
	var groups []chartGroup
	var cur *chartGroup
	for _, b := range f.Bars {
		if cur == nil || cur.App != b.App {
			groups = append(groups, chartGroup{App: b.App})
			cur = &groups[len(groups)-1]
		}
		label := fmt.Sprintf("%dp %s", b.ProcsPerNode, b.MP)
		if b.AMWays != 4 {
			label += fmt.Sprintf(" %dway", b.AMWays)
		}
		y := len(cur.Rows) * 18
		cur.Rows = append(cur.Rows, barRow{
			Label: label,
			SVG:   svgStack(y, []float64{b.Read, b.Write, b.Replace}, trafficColors, 420),
			Pct:   fmt.Sprintf("%.0f%%", 100*b.Total()),
		})
		cur.H = len(cur.Rows) * 18
	}
	return groups
}

func fig5Groups(f *experiments.Fig5) []chartGroup {
	var groups []chartGroup
	var cur *chartGroup
	for _, b := range f.Bars {
		if cur == nil || cur.App != b.App {
			groups = append(groups, chartGroup{App: b.App})
			cur = &groups[len(groups)-1]
		}
		y := len(cur.Rows) * 18
		cur.Rows = append(cur.Rows, barRow{
			Label: b.Label,
			SVG: svgStack(y, []float64{b.Busy / 2, b.SLC / 2, b.AM / 2, b.Remote / 2, b.Sync / 2},
				timeColors, 420),
			Pct: fmt.Sprintf("%.0f%%", 100*b.Total()),
		})
		cur.H = len(cur.Rows) * 18
	}
	return groups
}

// Render writes the report.
func Render(w io.Writer, d *Data) error {
	type view struct {
		*Data
		Fig3Groups, Fig4Groups, Fig5Groups []chartGroup
	}
	v := view{
		Data:       d,
		Fig3Groups: trafficGroups(d.Fig3),
		Fig4Groups: trafficGroups(d.Fig4),
		Fig5Groups: fig5Groups(d.Fig5),
	}
	return page.Execute(w, v)
}

var page = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct": func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) },
	"mul": func(a, b int) int { return a * b },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>Shared attraction memories in cluster-based COMA — reproduction report</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
.grp { display: inline-block; vertical-align: top; margin: 0 1.2rem 1rem 0; }
.grp h3 { font-size: 0.9rem; margin: 0 0 2px; }
.bars { font-size: 0.7rem; }
.bars text { font-family: monospace; }
.legend span { display:inline-block; padding:1px 6px; margin-right:6px; color:#fff; font-size:0.75rem; border-radius:3px; }
</style></head><body>
<h1>Shared attraction memories in cluster-based COMA multiprocessors — reproduction report</h1>
<p>Landin &amp; Karlgren, IPPS 1997. All data regenerated by this simulator; see EXPERIMENTS.md for paper-vs-measured commentary.</p>

<h2>Table 1 — applications</h2>
<table><tr><th>application</th><th>paper problem</th><th>paper WS (MB)</th><th>scaled problem</th><th>WS (KB)</th><th>refs</th></tr>
{{range .Table1}}<tr><td>{{.App}}</td><td>{{.PaperProblem}}</td><td>{{.PaperWSMB}}</td><td>{{.OurProblem}}</td><td>{{.OurWSKB}}</td><td>{{.Reads}} r / {{.Writes}} w</td></tr>{{end}}
</table>

<h2>Figure 2 — relative read node miss rate at 6% MP</h2>
<p>Mean relative RNMr: 2-way {{pct .Fig2.Mean2}} (paper 82%), 4-way {{pct .Fig2.Mean4}} (paper 62%).</p>
<table><tr><th>application</th><th>RNMr (1p)</th><th>2-way</th><th>4-way</th></tr>
{{range .Fig2.Rows}}<tr><td>{{.App}}</td><td>{{printf "%.4f" .RNMr1}}</td><td>{{pct .Rel2}}</td><td>{{pct .Rel4}}</td></tr>{{end}}
</table>

<h2>Figures 3 &amp; 4 — bus traffic by class</h2>
<p class="legend"><span style="background:#4878a8">read</span><span style="background:#e8a33d">write</span><span style="background:#c0504d">replace</span> bars normalized per application; 1p and 4p nodes at 6/50/75/81/87% MP (Figure 4 adds 8-way bars at 87%).</p>
{{range .Fig3Groups}}<div class="grp"><h3>{{.App}}</h3><svg class="bars" width="500" height="{{.H}}">
{{range $i, $r := .Rows}}<text x="0" y="{{mul $i 18}}" dy="11">{{$r.Label}}</text><g transform="translate(70,{{mul $i 18}})">{{$r.SVG}}</g>{{end}}
</svg></div>{{end}}
<br>
{{range .Fig4Groups}}<div class="grp"><h3>{{.App}} (fig 4)</h3><svg class="bars" width="500" height="{{.H}}">
{{range $i, $r := .Rows}}<text x="0" y="{{mul $i 18}}" dy="11">{{$r.Label}}</text><g transform="translate(70,{{mul $i 18}})">{{$r.SVG}}</g>{{end}}
</svg></div>{{end}}

<h2>Figure 5 — execution time breakdown (2&times; DRAM bandwidth)</h2>
<p class="legend"><span style="background:#5a9e6f">busy</span><span style="background:#4878a8">SLC</span><span style="background:#e8a33d">AM</span><span style="background:#c0504d">remote</span><span style="background:#9b74b6">sync</span> normalized to each application's 1p@50% bar.</p>
{{range .Fig5Groups}}<div class="grp"><h3>{{.App}}</h3><svg class="bars" width="500" height="{{.H}}">
{{range $i, $r := .Rows}}<text x="0" y="{{mul $i 18}}" dy="11">{{$r.Label}}</text><g transform="translate(60,{{mul $i 18}})">{{$r.SVG}}</g>{{end}}
</svg></div>{{end}}

<h2>Replication thresholds (paper &sect;4.2)</h2>
<table><tr><th>procs/node</th><th>AM ways</th><th>threshold</th><th>exact</th></tr>
{{range .Thresholds}}<tr><td>{{.Machine.ProcsPerNode}}</td><td>{{.Machine.AMWays}}</td><td>{{pct .Threshold}}</td><td>{{.Num}}/{{.Den}}</td></tr>{{end}}
</table>
</body></html>
`))
