// Package report renders the full experiment suite into a single
// self-contained HTML page with inline SVG charts — a shareable artifact
// of a reproduction run (cmd/report writes it).
package report
