package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/experiments"
)

// Rendering smoke test on hand-built data (the full Collect path is
// exercised by TestCollectAndRender below).
func TestRenderSynthetic(t *testing.T) {
	d := &Data{
		Table1: []experiments.Table1Row{{App: "fft", PaperProblem: "1M", OurProblem: "4096", OurWSKB: 192, Reads: 10, Writes: 5}},
		Fig2: &experiments.Fig2{
			Rows:  []experiments.Fig2Row{{App: "fft", RNMr1: 0.03, Rel2: 0.8, Rel4: 0.6}},
			Mean2: 0.8, Mean4: 0.6,
		},
		Fig3: &experiments.TrafficFigure{Figure: 3, Bars: []experiments.TrafficBar{
			{App: "fft", ProcsPerNode: 1, MP: "6%", AMWays: 4, Read: 0.5, Write: 0.2, Replace: 0.1},
		}},
		Fig4: &experiments.TrafficFigure{Figure: 4, Bars: []experiments.TrafficBar{
			{App: "barnes", ProcsPerNode: 4, MP: "87%", AMWays: 8, Read: 0.3, Write: 0.1},
		}},
		Fig5: &experiments.Fig5{Bars: []experiments.Fig5Bar{
			{App: "fft", Label: "1p@50%", Busy: 0.2, SLC: 0.1, AM: 0.3, Remote: 0.3, Sync: 0.1},
		}},
		Thresholds: analysis.PaperTable(),
	}
	var sb strings.Builder
	if err := Render(&sb, d); err != nil {
		t.Fatal(err)
	}
	html := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Figure 2", "fft", "barnes", "49/64", "svg", "rect",
		"80.0%", // Fig2 Mean2
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(html, "ZgotmplZ") {
		t.Error("template escaped the SVG payload")
	}
}

// Full pipeline: collect everything and render (slow; relies on runner
// memoization when run alongside the other experiment tests).
func TestCollectAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full collection in -short mode")
	}
	r := experiments.NewRunner()
	d, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, d); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) < 10_000 {
		t.Fatalf("suspiciously small report (%d bytes)", len(sb.String()))
	}
	for _, app := range experiments.Apps() {
		if !strings.Contains(sb.String(), app) {
			t.Errorf("report missing application %s", app)
		}
	}
}
