// Package comatop collects and renders the fleet-wide terminal
// dashboard behind cmd/comatop. A Collector polls the observability
// surface grown by the daemon — GET /v1/fleet/metrics for the merged
// per-shard sample view (falling back to each target's /metrics when
// the daemon runs single-shard) and GET /v1/metrics/history for the
// sparkline series — and derives per-shard throughput, cache-hit,
// peer-fill and shed rates plus latency quantiles from the raw
// Prometheus samples. Render is a pure snapshot-to-text function (plain
// ANSI, no terminal library) so the dashboard is testable byte-for-byte
// and usable as a one-shot CI probe via comatop -once.
package comatop
