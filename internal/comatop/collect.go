package comatop

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/tsdb"
	"repro/internal/server"
)

// Row is one shard line of the dashboard: identity, liveness, and the
// derived rates and quantiles. Rates are per-second deltas between the
// collector's last two samples; quantiles come from the cumulative
// request-duration histogram.
type Row struct {
	ID  string
	URL string
	Up  bool
	Err string

	ReqRate  float64 // requests per second
	HitPct   float64 // result-store hits / (hits + executed sims), lifetime
	FillRate float64 // peer-fill attempts per second (all outcomes)
	ShedRate float64 // 429 sheds per second

	P50Ms      float64 // request duration p50
	P99Ms      float64 // request duration p99
	QWaitP99Ms float64 // simulation queue wait p99
}

// Snapshot is one collected dashboard state, ready to Render.
type Snapshot struct {
	At        time.Time
	FleetMode bool // false = single-shard fallback over direct /metrics
	Members   int
	UpShards  int
	Rows      []Row

	// Fleet-summed per-step rates over the history window, for the
	// sparklines. Empty when no shard serves history yet.
	ReqSpark  []float64
	FillSpark []float64
}

// Collector polls a comasrv fleet and derives dashboard snapshots. It
// keeps the previous sample set so the second and later Collect calls
// carry rates; the zero interval before the first sample reads as 0.
type Collector struct {
	// Targets are candidate base URLs. The first one serving
	// /v1/fleet/metrics defines the fleet; if every target answers 404
	// (single-shard daemons) each target becomes one row.
	Targets []string
	// Window is the sparkline history window (0 = 1h).
	Window time.Duration
	// HTTP defaults to a client with a short per-poll timeout.
	HTTP *http.Client

	prev   map[string]prevSample // by shard ID (or target URL when single-shard)
	prevAt time.Time
}

type prevSample struct {
	at      time.Time
	samples map[string]float64
}

func (c *Collector) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	c.HTTP = &http.Client{Timeout: 5 * time.Second}
	return c.HTTP
}

func (c *Collector) window() time.Duration {
	if c.Window > 0 {
		return c.Window
	}
	return time.Hour
}

// Collect polls the fleet once. It errors only when no target is
// reachable at all; individual dead shards come back as down rows.
func (c *Collector) Collect(ctx context.Context) (Snapshot, error) {
	now := time.Now()
	snap := Snapshot{At: now}

	view, fleetURL, err := c.fetchFleetView(ctx)
	if err == nil {
		snap.FleetMode = true
		snap.Members = view.Members
		snap.UpShards = view.UpShards
		for _, sh := range view.Shards {
			snap.Rows = append(snap.Rows, c.deriveRow(sh.ID, sh.URL, sh.Up, sh.Error, sh.Samples, now))
		}
		_ = fleetURL
	} else {
		// Single-shard fallback: every target is its own row, scraped
		// directly.
		var reachable int
		for _, target := range c.Targets {
			samples, scrapeErr := c.scrapeDirect(ctx, target)
			snap.Members++
			if scrapeErr != nil {
				snap.Rows = append(snap.Rows, Row{ID: targetID(target), URL: target, Err: scrapeErr.Error()})
				continue
			}
			reachable++
			snap.UpShards++
			snap.Rows = append(snap.Rows, c.deriveRow(targetID(target), target, true, "", samples, now))
		}
		if reachable == 0 {
			return snap, fmt.Errorf("no target reachable (fleet view: %v)", err)
		}
	}

	c.prevAt = now
	snap.ReqSpark, snap.FillSpark = c.fetchSparks(ctx, snap.Rows)
	return snap, nil
}

// fetchFleetView asks each target for the merged fleet view, returning
// the first success and the target that served it. A 404 means the
// daemon runs single-shard and is reported as an error so Collect falls
// back.
func (c *Collector) fetchFleetView(ctx context.Context) (server.FleetMetricsView, string, error) {
	var lastErr error = fmt.Errorf("no targets configured")
	for _, target := range c.Targets {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/fleet/metrics", nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.client().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("%s: HTTP %d", target, resp.StatusCode)
			continue
		}
		var view server.FleetMetricsView
		if err := json.Unmarshal(body, &view); err != nil {
			lastErr = fmt.Errorf("%s: %w", target, err)
			continue
		}
		return view, target, nil
	}
	return server.FleetMetricsView{}, "", lastErr
}

// scrapeDirect GETs and parses one target's raw /metrics exposition.
func (c *Collector) scrapeDirect(ctx context.Context, target string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	sc, err := tsdb.ParseExposition(string(body))
	if err != nil {
		return nil, err
	}
	samples := make(map[string]float64, len(sc.Samples))
	for _, sa := range sc.Samples {
		samples[sa.Key()] = sa.Value
	}
	return samples, nil
}

// deriveRow turns one shard's raw sample set into a dashboard row,
// using the collector's previous sample of the same shard for rates.
func (c *Collector) deriveRow(id, rawURL string, up bool, errText string, samples map[string]float64, now time.Time) Row {
	row := Row{ID: id, URL: rawURL, Up: up, Err: errText}
	if !up {
		return row
	}
	if c.prev == nil {
		c.prev = make(map[string]prevSample)
	}
	prev, hasPrev := c.prev[id]
	c.prev[id] = prevSample{at: now, samples: samples}

	rate := func(family string) float64 {
		if !hasPrev {
			return 0
		}
		dt := now.Sub(prev.at).Seconds()
		if dt <= 0 {
			return 0
		}
		d := sumFamily(samples, family) - sumFamily(prev.samples, family)
		if d < 0 {
			d = 0 // counter reset (shard restart)
		}
		return d / dt
	}
	row.ReqRate = rate("comasrv_requests_total")
	row.FillRate = rate("comasrv_peer_fill_total")
	row.ShedRate = rate("comasrv_load_shed_total")

	hits := sumFamily(samples, "comasrv_cache_hits_total")
	sims := sumFamily(samples, "comasrv_sims_executed_total")
	if hits+sims > 0 {
		row.HitPct = 100 * hits / (hits + sims)
	}
	row.P50Ms = quantileMs(samples, "comasrv_request_duration_seconds", 0.50)
	row.P99Ms = quantileMs(samples, "comasrv_request_duration_seconds", 0.99)
	row.QWaitP99Ms = quantileMs(samples, "comasrv_queue_wait_seconds", 0.99)
	return row
}

// sumFamily adds every sample of one family across its label variants
// (e.g. comasrv_peer_fill_total{outcome=...}).
func sumFamily(samples map[string]float64, family string) float64 {
	var sum float64
	for k, v := range samples {
		if k == family || strings.HasPrefix(k, family+"{") {
			sum += v
		}
	}
	return sum
}

// quantileMs estimates a quantile in milliseconds from a cumulative
// Prometheus histogram's samples, interpolating linearly inside the
// chosen bucket (the Prometheus histogram_quantile convention). A
// quantile landing in the +Inf bucket reports the largest finite bound.
func quantileMs(samples map[string]float64, family string, q float64) float64 {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	prefix := family + `_bucket{le="`
	for k, v := range samples {
		rest, ok := strings.CutPrefix(k, prefix)
		if !ok {
			continue
		}
		leText, _, ok := strings.Cut(rest, `"`)
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(leText, 64)
		if err != nil || math.IsInf(le, 0) {
			continue // the +Inf bucket is covered by _count
		}
		buckets = append(buckets, bucket{le: le, cum: v})
	}
	total := samples[family+"_count"]
	if len(buckets) == 0 || total == 0 {
		return 0
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	target := q * total
	var lowerBound, lowerCum float64
	for _, b := range buckets {
		if b.cum >= target {
			span := b.cum - lowerCum
			if span <= 0 {
				return b.le * 1000
			}
			return (lowerBound + (b.le-lowerBound)*(target-lowerCum)/span) * 1000
		}
		lowerBound, lowerCum = b.le, b.cum
	}
	return buckets[len(buckets)-1].le * 1000 // landed in +Inf
}

// fetchSparks pulls each up shard's metric history and folds it into
// fleet-wide per-step rate series for the request and peer-fill
// sparklines. History is best-effort: a shard without the endpoint (or
// mid-restart) just contributes nothing.
func (c *Collector) fetchSparks(ctx context.Context, rows []Row) (reqs, fills []float64) {
	reqByT := make(map[int64]float64)
	fillByT := make(map[int64]float64)
	for _, row := range rows {
		if !row.Up {
			continue
		}
		h, err := c.fetchHistory(ctx, row.URL)
		if err != nil {
			continue
		}
		for _, s := range h.Series {
			byT := reqByT
			if s.Name == "comasrv_peer_fill_total" {
				byT = fillByT
			}
			for _, p := range s.Points {
				byT[int64(p[0])] += p[1]
			}
		}
	}
	return counterDeltas(reqByT), counterDeltas(fillByT)
}

func (c *Collector) fetchHistory(ctx context.Context, target string) (server.History, error) {
	q := url.Values{}
	q.Set("window", c.window().String())
	q.Set("family", "comasrv_requests_total,comasrv_peer_fill_total")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/metrics/history?"+q.Encode(), nil)
	if err != nil {
		return server.History{}, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return server.History{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.History{}, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var h server.History
	err = json.NewDecoder(resp.Body).Decode(&h)
	return h, err
}

// counterDeltas orders a timestamp→value map and returns the successive
// non-negative deltas — the per-step increase of a (fleet-summed)
// cumulative counter.
func counterDeltas(byT map[int64]float64) []float64 {
	if len(byT) < 2 {
		return nil
	}
	ts := make([]int64, 0, len(byT))
	for t := range byT {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]float64, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		d := byT[ts[i]] - byT[ts[i-1]]
		if d < 0 {
			d = 0
		}
		out = append(out, d)
	}
	return out
}

// targetID condenses a target URL into a row label for single-shard
// mode (the host:port part).
func targetID(target string) string {
	if u, err := url.Parse(target); err == nil && u.Host != "" {
		return u.Host
	}
	return target
}
