package comatop

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

// swapHandler lets the httptest listeners exist before the daemons that
// serve them (fleet members need each other's URLs at construction).
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (sh *swapHandler) Set(h http.Handler) {
	sh.mu.Lock()
	sh.h = h
	sh.mu.Unlock()
}

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.Lock()
	h := sh.h
	sh.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// newFleet boots n real shards with the self-scrape loop disabled (the
// tests scrape deterministically through the public API instead).
func newFleet(t *testing.T, n int) (srvs []*server.Server, urls []string, kill func(i int)) {
	t.Helper()
	swaps := make([]*swapHandler, n)
	servers := make([]*httptest.Server, n)
	members := make([]fleet.Member, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		servers[i] = httptest.NewServer(swaps[i])
		t.Cleanup(servers[i].Close)
		members[i] = fleet.Member{ID: fmt.Sprintf("s%d", i), URL: servers[i].URL}
		urls = append(urls, servers[i].URL)
	}
	for i := range swaps {
		srv, err := server.New(server.Config{
			Jobs:           2,
			StoreDir:       t.TempDir(),
			ScrapeInterval: 50 * time.Millisecond,
			Fleet: &server.FleetConfig{
				ShardID:       members[i].ID,
				Members:       members,
				PeerTimeout:   500 * time.Millisecond,
				ProbeInterval: -1,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		swaps[i].Set(srv)
		srvs = append(srvs, srv)
	}
	return srvs, urls, func(i int) { servers[i].Close() }
}

// A healthy fleet renders one up row per shard with live rates, and the
// request sparkline shows the traffic burst.
func TestCollectAndRenderFleet(t *testing.T) {
	_, urls, _ := newFleet(t, 3)
	ctx := context.Background()
	// The 2m window stays inside the fine tier's 360s span (1s steps at
	// this cadence) so the sparkline differences per-second points.
	col := &Collector{Targets: urls, Window: 2 * time.Minute}

	// Traffic against every shard across several of the store's 1-second
	// history buckets (the 50ms scrape cadence sizes the fine tier to
	// 1s), so the fleet sparkline has rising points to difference.
	for round := 0; round < 3; round++ {
		for _, u := range urls {
			c := server.NewClient(u)
			if _, _, err := c.Simulate(ctx, server.SimRequest{App: "fft", Procs: 8, MP: "6%"}); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(1100 * time.Millisecond)
	}

	if _, err := col.Collect(ctx); err != nil {
		t.Fatal(err)
	}
	// More traffic between the samples so the rate columns are nonzero.
	for _, u := range urls {
		if err := server.NewClient(u).Healthz(ctx); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	snap, err := col.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if !snap.FleetMode || snap.Members != 3 || snap.UpShards != 3 {
		t.Fatalf("snapshot header = fleet=%v %d/%d, want fleet 3/3", snap.FleetMode, snap.UpShards, snap.Members)
	}
	var reqRate float64
	for _, r := range snap.Rows {
		if !r.Up || r.Err != "" {
			t.Fatalf("row %+v, want up", r)
		}
		if r.P99Ms <= 0 {
			t.Fatalf("row %s has no request-duration quantile: %+v", r.ID, r)
		}
		reqRate += r.ReqRate
	}
	if reqRate <= 0 {
		t.Fatalf("no shard shows request throughput: %+v", snap.Rows)
	}
	if len(snap.ReqSpark) == 0 {
		t.Fatal("no request sparkline despite banked history")
	}

	out := Render(snap)
	for _, want := range []string{"3/3 shards up", "SHARD", "s0", "s1", "s2", "fleet req/s", "fleet fill/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "▂▃▄▅▆▇█") {
		t.Fatalf("request sparkline shows no activity:\n%s", out)
	}
}

// Killing a shard degrades the dashboard — the dead member renders as a
// down row — without erroring the collection.
func TestCollectMarksDeadShardDown(t *testing.T) {
	_, urls, kill := newFleet(t, 3)
	ctx := context.Background()
	kill(2)

	// Target only live shards (the CI probe may also list the dead one
	// first; fetchFleetView skips unreachable targets).
	col := &Collector{Targets: []string{urls[2], urls[0]}, Window: time.Hour}
	snap, err := col.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.FleetMode || snap.UpShards != 2 || snap.Members != 3 {
		t.Fatalf("snapshot = fleet=%v %d/%d, want fleet 2/3", snap.FleetMode, snap.UpShards, snap.Members)
	}
	out := Render(snap)
	if !strings.Contains(out, "2/3 shards up") {
		t.Fatalf("header does not report the outage:\n%s", out)
	}
	var downLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "s2") {
			downLine = line
		}
	}
	if !strings.Contains(downLine, "down") || downLine == "" {
		t.Fatalf("s2 not rendered as down:\n%s", out)
	}
}

// A single-shard daemon (no fleet) still renders: the collector falls
// back to scraping each target's /metrics directly.
func TestCollectSingleShardFallback(t *testing.T) {
	srv, err := server.New(server.Config{Jobs: 2, StoreDir: t.TempDir(), ScrapeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	ctx := context.Background()
	if err := server.NewClient(ts.URL).Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	col := &Collector{Targets: []string{ts.URL}}
	snap, err := col.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FleetMode || snap.Members != 1 || snap.UpShards != 1 {
		t.Fatalf("snapshot = fleet=%v %d/%d, want single-shard 1/1", snap.FleetMode, snap.UpShards, snap.Members)
	}
	if out := Render(snap); !strings.Contains(out, "single-shard") {
		t.Fatalf("rendering does not note the fallback mode:\n%s", out)
	}
}

// Every target dead is the one hard failure.
func TestCollectAllDeadErrors(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	col := &Collector{Targets: []string{ts.URL}}
	if _, err := col.Collect(context.Background()); err == nil {
		t.Fatal("collect over only dead targets returned no error")
	}
}

// The sparkline scales to its max and keeps positive samples visible
// above the zero baseline.
func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 4, 8}); got != "▁▂▂▄█" {
		t.Fatalf("sparkline = %q, want ▁▂▂▄█", got)
	}
	if got := sparkline([]float64{0, 0}); got != "▁▁" {
		t.Fatalf("all-zero sparkline = %q, want baseline glyphs", got)
	}
}
