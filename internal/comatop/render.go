package comatop

import (
	"fmt"
	"strings"
)

// sparkCells bounds the sparkline width.
const sparkCells = 48

// sparkLevels are the eight block glyphs a sparkline quantizes into —
// the same scale internal/experiments uses for simulation timelines.
var sparkLevels = [8]rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// downsample max-pools vals into at most sparkCells buckets so recent
// spikes survive compression.
func downsample(vals []float64) []float64 {
	n := len(vals)
	if n <= sparkCells {
		return vals
	}
	out := make([]float64, sparkCells)
	for j := 0; j < sparkCells; j++ {
		lo, hi := j*n/sparkCells, (j+1)*n/sparkCells
		max := vals[lo]
		for _, v := range vals[lo+1 : hi] {
			if v > max {
				max = v
			}
		}
		out[j] = max
	}
	return out
}

// sparkline renders vals as block glyphs scaled to their maximum; any
// positive sample renders at least the second level, so activity is
// always distinguishable from the zero baseline.
func sparkline(vals []float64) string {
	vals = downsample(vals)
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		lvl := 0
		if max > 0 && v > 0 {
			lvl = int(v * 7 / max)
			if lvl > 7 {
				lvl = 7
			}
			if lvl < 1 {
				lvl = 1
			}
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

// Render draws one snapshot as plain text: a header line, one aligned
// row per shard (a down shard renders its state and error, never
// breaking the table), and the fleet-summed sparklines. It is a pure
// function so tests can assert on exact output.
func Render(s Snapshot) string {
	var b strings.Builder

	mode := "fleet"
	if !s.FleetMode {
		mode = "single-shard"
	}
	fmt.Fprintf(&b, "comatop — %d/%d shards up — %s — %s\n",
		s.UpShards, s.Members, s.At.UTC().Format("2006-01-02T15:04:05Z"), mode)

	idW := len("SHARD")
	for _, r := range s.Rows {
		if len(r.ID) > idW {
			idW = len(r.ID)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-5s  %8s  %6s  %8s  %8s  %8s  %8s  %8s\n",
		idW, "SHARD", "STATE", "REQ/S", "HIT%", "FILL/S", "SHED/S", "P50ms", "P99ms", "QW99ms")
	for _, r := range s.Rows {
		if !r.Up {
			fmt.Fprintf(&b, "%-*s  %-5s  %s\n", idW, r.ID, "down", r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-*s  %-5s  %8.1f  %6.1f  %8.1f  %8.1f  %8.2f  %8.2f  %8.2f\n",
			idW, r.ID, "up", r.ReqRate, r.HitPct, r.FillRate, r.ShedRate, r.P50Ms, r.P99Ms, r.QWaitP99Ms)
	}

	b.WriteByte('\n')
	fmt.Fprintf(&b, "fleet req/s   %s\n", sparkOrIdle(s.ReqSpark))
	fmt.Fprintf(&b, "fleet fill/s  %s\n", sparkOrIdle(s.FillSpark))
	return b.String()
}

func sparkOrIdle(vals []float64) string {
	if len(vals) == 0 {
		return "(no history yet)"
	}
	return sparkline(vals)
}
