package numa

import (
	"repro/internal/addrspace"
	"repro/internal/machine"
)

// NewMachine builds a full machine whose node-level memory system is this
// CC-NUMA directory instead of the COMA protocol. Every other component —
// caches, write buffers, bus, timing — is identical, so COMA-vs-NUMA
// comparisons isolate the attraction-memory effect.
func NewMachine(p machine.Params) (*machine.Machine, error) {
	return machine.NewWithMem(p, func(
		purge func(node int, l addrspace.Line, evict bool),
		downgrade func(node int, l addrspace.Line)) machine.MemSystem {
		return New(p.Nodes(), purge, downgrade)
	})
}
