package numa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
)

// Directory invariants hold under random operation sequences, including
// write-backs interleaved with reads and writes.
func TestDirectoryInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(4)
		d := New(nodes, nil, nil)
		for i := 0; i < 400; i++ {
			node := rng.Intn(nodes)
			line := addrspace.Line(rng.Intn(48))
			switch rng.Intn(3) {
			case 0:
				d.Read(node, line)
			case 1:
				d.Write(node, line)
			default:
				d.WriteBack(node, line)
			}
			if d.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
