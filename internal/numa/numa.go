package numa

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/coma"
)

// lineState is the directory's view of one line.
type lineState struct {
	home    int16
	dirty   int16 // node whose SLC holds the line dirty; -1 if clean
	sharers uint32
}

// Directory is the home-based coherence directory; it implements
// machine.MemSystem.
type Directory struct {
	nodes     int
	lines     map[addrspace.Line]*lineState
	purge     func(node int, l addrspace.Line, evict bool)
	downgrade func(node int, l addrspace.Line)
	stats     coma.Stats
	// txns is the scratch transaction buffer handed out via Effect.Txns,
	// under the same contract as the COMA protocol's: valid until the
	// next Read/Write/WriteBack call on this directory.
	txns []coma.Txn
}

// New builds an empty directory for the given node count. The purge and
// downgrade callbacks keep the machine's private caches coherent and are
// supplied by machine.NewWithMem.
func New(nodes int,
	purge func(node int, l addrspace.Line, evict bool),
	downgrade func(node int, l addrspace.Line)) *Directory {
	if purge == nil {
		purge = func(int, addrspace.Line, bool) {}
	}
	if downgrade == nil {
		downgrade = func(int, addrspace.Line) {}
	}
	return &Directory{
		nodes:     nodes,
		lines:     make(map[addrspace.Line]*lineState),
		purge:     purge,
		downgrade: downgrade,
	}
}

func (d *Directory) line(node int, l addrspace.Line) (*lineState, bool) {
	st, ok := d.lines[l]
	if !ok {
		// First touch anywhere: the page's frames are homed here.
		st = &lineState{home: int16(node), dirty: -1}
		d.lines[l] = st
		d.stats.ColdAllocs++
	}
	return st, ok
}

// Home reports the line's home node (-1 if untouched).
func (d *Directory) Home(l addrspace.Line) int {
	if st, ok := d.lines[l]; ok {
		return int(st.home)
	}
	return -1
}

// Read services an SLC read miss by the given node.
func (d *Directory) Read(node int, l addrspace.Line) coma.Effect {
	d.stats.Reads++
	st, existed := d.line(node, l)
	var eff coma.Effect
	if !existed {
		eff.Cold = true
		eff.Hit = true // local memory access; the data is homed here
		st.sharers = 1 << uint(node)
		return eff
	}
	// A dirty remote copy must supply (and implicitly clean) the data.
	if st.dirty >= 0 && int(st.dirty) != node {
		supplier := int(st.dirty)
		d.downgrade(supplier, l)
		st.dirty = -1
		st.sharers |= 1 << uint(node)
		d.stats.ReadMisses++
		eff.Txns = d.txn1(coma.Txn{Class: coma.TxnRead, Data: true, Remote: supplier})
		eff.NoLocalFill = int(st.home) != node
		d.record(eff.Txns)
		return eff
	}
	st.sharers |= 1 << uint(node)
	if int(st.home) == node {
		eff.Hit = true // local memory
		return eff
	}
	// Clean remote data: fetch from home, do not install locally.
	d.stats.ReadMisses++
	eff.Txns = d.txn1(coma.Txn{Class: coma.TxnRead, Data: true, Remote: int(st.home)})
	eff.NoLocalFill = true
	d.record(eff.Txns)
	return eff
}

// txn1 fills the scratch buffer with a single transaction; the returned
// slice is valid until the next access on the directory.
func (d *Directory) txn1(t coma.Txn) []coma.Txn {
	d.txns = append(d.txns[:0], t)
	return d.txns
}

// Write services an SLC write miss or upgrade by the given node.
func (d *Directory) Write(node int, l addrspace.Line) coma.Effect {
	d.stats.Writes++
	st, existed := d.line(node, l)
	var eff coma.Effect
	if !existed {
		eff.Cold = true
		eff.Hit = true
		eff.Writable = true
		st.dirty = int16(node)
		st.sharers = 1 << uint(node)
		return eff
	}
	// Invalidate every other copy.
	hadOthers := false
	for n := 0; n < d.nodes; n++ {
		if n == node {
			continue
		}
		if st.sharers&(1<<uint(n)) != 0 {
			d.purge(n, l, false)
			hadOthers = true
		}
	}
	supplier := int(st.home)
	if st.dirty >= 0 && int(st.dirty) != node {
		supplier = int(st.dirty)
	}
	alreadyOwned := st.dirty == int16(node)
	wasSharer := st.sharers&(1<<uint(node)) != 0
	st.dirty = int16(node)
	st.sharers = 1 << uint(node)
	eff.Writable = true // NUMA writes always gain exclusivity
	switch {
	case alreadyOwned:
		eff.Hit = true
	case wasSharer && !hadOthers && int(st.home) == node:
		// Sole local copy: upgrade completes in local memory.
		eff.Hit = true
	case wasSharer:
		// Upgrade: invalidation broadcast, no data.
		d.stats.Upgrades++
		eff.Txns = d.txn1(coma.Txn{Class: coma.TxnWrite, Data: false, Remote: -1})
		d.record(eff.Txns)
	default:
		// Fetch-exclusive from home or dirty holder.
		d.stats.WriteMisses++
		eff.Txns = d.txn1(coma.Txn{Class: coma.TxnWrite, Data: true, Remote: supplier})
		eff.NoLocalFill = int(st.home) != node
		d.record(eff.Txns)
	}
	return eff
}

// WriteBack retires a dirty SLC line to the line's home memory.
func (d *Directory) WriteBack(node int, l addrspace.Line) coma.Effect {
	st, ok := d.lines[l]
	if !ok {
		return coma.Effect{Hit: true}
	}
	if st.dirty == int16(node) {
		st.dirty = -1
	}
	if int(st.home) == node {
		return coma.Effect{Hit: true}
	}
	eff := coma.Effect{
		Txns:        d.txn1(coma.Txn{Class: coma.TxnWrite, Data: true, Remote: int(st.home)}),
		NoLocalFill: true,
	}
	d.record(eff.Txns)
	return eff
}

func (d *Directory) record(txns []coma.Txn) {
	for _, t := range txns {
		d.stats.TxnCount[t.Class]++
		if t.Data {
			d.stats.TxnData[t.Class]++
		}
	}
}

// CheckInvariants verifies directory consistency: every tracked line has
// a valid home, at most one dirty holder, and a dirty holder is also a
// sharer. Fuzz tests call it after random runs.
func (d *Directory) CheckInvariants() error {
	for l, st := range d.lines {
		if st.home < 0 || int(st.home) >= d.nodes {
			return fmt.Errorf("numa: line %#x: bad home %d", uint64(l), st.home)
		}
		if st.dirty >= 0 {
			if int(st.dirty) >= d.nodes {
				return fmt.Errorf("numa: line %#x: bad dirty holder %d", uint64(l), st.dirty)
			}
			if st.sharers&(1<<uint(st.dirty)) == 0 {
				return fmt.Errorf("numa: line %#x: dirty holder %d is not a sharer", uint64(l), st.dirty)
			}
			if st.sharers&(st.sharers-1) != 0 {
				return fmt.Errorf("numa: line %#x: dirty with multiple sharers %b", uint64(l), st.sharers)
			}
		}
	}
	return nil
}

// Stats returns the counter snapshot.
func (d *Directory) Stats() coma.Stats { return d.stats }

// ResetStats clears the counters.
func (d *Directory) ResetStats() { d.stats = coma.Stats{} }
