// Package numa implements a cache-coherent NUMA memory system as the
// comparison baseline the paper argues against (Section 2: in a UMA or
// NUMA, replacement "results in increased traffic and cache misses" but
// data has a fixed backing home; in a COMA the whole memory attracts
// data). Pages take first-touch homes; remote misses always travel to the
// home (or the current dirty holder) and nothing is installed in local
// memory, so there is no attraction, no replication beyond the SLCs, and
// no replacement traffic class.
//
// It plugs into the same machine model through machine.NewWithMem, so a
// NUMA run differs from a COMA run only in the node-level memory system —
// a clean ablation.
package numa
