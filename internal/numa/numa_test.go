package numa

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/coma"
	"repro/internal/machine"
	"repro/internal/trace"
)

func dir(nodes int) *Directory { return New(nodes, nil, nil) }

func TestFirstTouchHome(t *testing.T) {
	d := dir(4)
	eff := d.Read(2, 10)
	if !eff.Cold || !eff.Hit {
		t.Fatalf("first touch %+v", eff)
	}
	if d.Home(10) != 2 {
		t.Fatalf("home = %d", d.Home(10))
	}
	if d.Home(99) != -1 {
		t.Fatal("untouched line must have no home")
	}
}

func TestLocalReadHits(t *testing.T) {
	d := dir(4)
	d.Read(1, 5)
	eff := d.Read(1, 5)
	if !eff.Hit || len(eff.Txns) != 0 {
		t.Fatalf("home read must be local: %+v", eff)
	}
}

func TestRemoteReadNeverInstalls(t *testing.T) {
	d := dir(4)
	d.Write(0, 5)
	for i := 0; i < 3; i++ {
		eff := d.Read(2, 5)
		if eff.Hit {
			t.Fatalf("iteration %d: remote read hit locally — NUMA must not attract data", i)
		}
		if !eff.NoLocalFill {
			t.Fatal("remote read must not install locally")
		}
	}
	if d.Stats().ReadMisses != 3 {
		t.Fatalf("misses = %d, want 3", d.Stats().ReadMisses)
	}
}

func TestDirtyForwarding(t *testing.T) {
	downs := 0
	d := New(4, nil, func(n int, l addrspace.Line) { downs++ })
	d.Write(0, 5) // home and dirty at node 0
	d.Write(1, 5) // node 1 fetches exclusive
	eff := d.Read(2, 5)
	if len(eff.Txns) != 1 || eff.Txns[0].Remote != 1 {
		t.Fatalf("dirty data must come from node 1: %+v", eff.Txns)
	}
	if downs != 1 {
		t.Fatalf("downgrades = %d", downs)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	purges := map[int]int{}
	d := New(4, func(n int, l addrspace.Line, e bool) { purges[n]++ }, nil)
	d.Write(0, 5)
	d.Read(1, 5)
	d.Read(2, 5)
	eff := d.Write(3, 5)
	if purges[0]+purges[1]+purges[2] != 3 {
		t.Fatalf("purges %+v", purges)
	}
	if eff.Hit {
		t.Fatal("remote write miss cannot be a hit")
	}
}

func TestUpgradeFromSharer(t *testing.T) {
	d := dir(4)
	d.Write(0, 5)
	d.Read(1, 5) // node 1 now shares
	eff := d.Write(1, 5)
	if len(eff.Txns) != 1 || eff.Txns[0].Data {
		t.Fatalf("sharer write must be an address-only upgrade: %+v", eff.Txns)
	}
	if d.Stats().Upgrades != 1 {
		t.Fatalf("stats %+v", d.Stats())
	}
}

func TestWriteBack(t *testing.T) {
	d := dir(4)
	d.Write(0, 5) // home 0
	d.Write(1, 5) // dirty at node 1
	eff := d.WriteBack(1, 5)
	if eff.Hit || len(eff.Txns) != 1 || eff.Txns[0].Remote != 0 {
		t.Fatalf("write-back must go to home 0: %+v", eff)
	}
	if local := d.WriteBack(0, 99); !local.Hit {
		t.Fatal("write-back of untracked line is local")
	}
}

func TestResetStats(t *testing.T) {
	d := dir(2)
	d.Write(0, 1)
	d.ResetStats()
	if d.Stats() != (coma.Stats{}) {
		t.Fatal("stats not cleared")
	}
}

// End-to-end ablation: on a read-heavy migratory workload the COMA
// machine attracts data and beats the NUMA baseline.
func TestCOMABeatsNUMAOnMigratoryReads(t *testing.T) {
	const procs = 4
	b := trace.NewBuilder("migratory", procs)
	base := addrspace.Addr(0x10000)
	// Proc 0 initializes a 32 KB region.
	for i := 0; i < 512; i++ {
		b.Write(0, base+addrspace.Addr(i*64))
	}
	b.Barrier()
	b.MeasureStart()
	// Procs 1..3 then read it repeatedly: with COMA the data migrates to
	// their attraction memories after the first sweep; with NUMA every
	// SLC miss goes back to node 0.
	for round := 0; round < 4; round++ {
		for p := 1; p < procs; p++ {
			for i := 0; i < 512; i++ {
				b.Read(p, base+addrspace.Addr(i*64))
			}
		}
		b.Barrier()
	}
	tr := b.Build(1 << 20)

	params := machine.DefaultParams(procs, 1, 2048, 64*1024)
	params.L1Bytes = 512
	cm, err := machine.New(params)
	if err != nil {
		t.Fatal(err)
	}
	comaRes, err := cm.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := NewMachine(params)
	if err != nil {
		t.Fatal(err)
	}
	numaRes, err := nm.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if comaRes.ExecTime >= numaRes.ExecTime {
		t.Fatalf("COMA %v should beat NUMA %v on migratory reads",
			comaRes.ExecTime, numaRes.ExecTime)
	}
	if comaRes.ReadNodeMisses >= numaRes.ReadNodeMisses {
		t.Fatalf("COMA node misses %d should undercut NUMA's %d",
			comaRes.ReadNodeMisses, numaRes.ReadNodeMisses)
	}
}
