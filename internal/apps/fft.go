package apps

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/trace"
)

// FFT is the SPLASH-2 six-step 1-D FFT: the n = m*m complex points are
// viewed as an m-by-m matrix; the algorithm alternates all-to-all
// transposes (the communication phases that dominate FFT's bus traffic)
// with processor-local row FFTs and a twiddle scaling against a shared
// read-only roots-of-unity table. The result is verified against a direct
// DFT at generation time.
func FFT(procs, n int) *trace.Trace {
	m := int(math.Round(math.Sqrt(float64(n))))
	if m*m != n || m&(m-1) != 0 {
		panic(fmt.Sprintf("fft: n=%d is not an even power of two square", n))
	}
	g := NewGen("fft", procs)
	x := g.F64("x", 2*n)
	t := g.F64("trans", 2*n)
	roots := g.F64("roots", 2*n)

	// Initialization (traced, before the measured section): processor 0
	// writes the input signal and the roots-of-unity table, as the
	// original code's serial init does.
	orig := make([]complex128, n)
	for i := 0; i < n; i++ {
		re, im := g.rng.NormFloat64(), g.rng.NormFloat64()
		x.Write(0, 2*i, re)
		x.Write(0, 2*i+1, im)
		orig[i] = complex(re, im)
		g.Compute(0, 4)
	}
	for j := 0; j < n; j++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(j)/float64(n)))
		roots.Write(0, 2*j, real(w))
		roots.Write(0, 2*j+1, imag(w))
		g.Compute(0, 12)
	}
	g.Barrier()
	g.MeasureStart()

	fftTranspose(g, x, t, m) // t = x^T: columns become rows
	g.Barrier()
	fftRows(g, t, roots, m, n) // FFT along original row index
	g.Barrier()
	fftTwiddle(g, t, roots, m, n) // t[l2][k1] *= w^(k1*l2)
	fftTranspose(g, t, x, m)
	g.Barrier()
	fftRows(g, x, roots, m, n)
	g.Barrier()
	fftTranspose(g, x, t, m) // natural-order result in t
	g.Barrier()

	fftSelfCheck(g, t, orig, n)
	return g.Finish()
}

// fftTranspose writes dst[r][c] = src[c][r]; each processor produces a
// contiguous band of destination rows, reading a strided column of the
// source (data produced by every other processor — the all-to-all).
func fftTranspose(g *Gen, src, dst *F64, m int) {
	for p := 0; p < g.Procs(); p++ {
		lo, hi := Chunk(m, g.Procs(), p)
		for r := lo; r < hi; r++ {
			for c := 0; c < m; c++ {
				re := src.Read(p, 2*(c*m+r))
				im := src.Read(p, 2*(c*m+r)+1)
				dst.Write(p, 2*(r*m+c), re)
				dst.Write(p, 2*(r*m+c)+1, im)
				g.Compute(p, 4)
			}
		}
	}
}

// fftRows runs an in-place iterative radix-2 FFT on each processor's band
// of rows, reading twiddles from the shared roots table (index stride m).
func fftRows(g *Gen, a *F64, roots *F64, m, n int) {
	for p := 0; p < g.Procs(); p++ {
		lo, hi := Chunk(m, g.Procs(), p)
		for r := lo; r < hi; r++ {
			base := r * m
			// Bit-reversal permutation.
			for i, j := 0, 0; i < m; i++ {
				if i < j {
					ar, ai := a.Read(p, 2*(base+i)), a.Read(p, 2*(base+i)+1)
					br, bi := a.Read(p, 2*(base+j)), a.Read(p, 2*(base+j)+1)
					a.Write(p, 2*(base+i), br)
					a.Write(p, 2*(base+i)+1, bi)
					a.Write(p, 2*(base+j), ar)
					a.Write(p, 2*(base+j)+1, ai)
					g.Compute(p, 6)
				}
				for k := m >> 1; k > 0; k >>= 1 {
					j ^= k
					if j&k != 0 {
						break
					}
				}
			}
			// Butterflies.
			for span := 1; span < m; span <<= 1 {
				step := m / (2 * span) // twiddle index stride within W_m
				for k := 0; k < span; k++ {
					wr := roots.Read(p, 2*(k*step*m)%(2*n))
					wi := roots.Read(p, (2*(k*step*m)+1)%(2*n))
					for i := k; i < m; i += 2 * span {
						lo1, hi1 := base+i, base+i+span
						ar, ai := a.Read(p, 2*lo1), a.Read(p, 2*lo1+1)
						br, bi := a.Read(p, 2*hi1), a.Read(p, 2*hi1+1)
						tr := br*wr - bi*wi
						ti := br*wi + bi*wr
						a.Write(p, 2*lo1, ar+tr)
						a.Write(p, 2*lo1+1, ai+ti)
						a.Write(p, 2*hi1, ar-tr)
						a.Write(p, 2*hi1+1, ai-ti)
						g.Compute(p, 12)
					}
				}
			}
		}
	}
}

// fftTwiddle scales t[l2][k1] by w^(k1*l2) from the shared table.
func fftTwiddle(g *Gen, t *F64, roots *F64, m, n int) {
	for p := 0; p < g.Procs(); p++ {
		lo, hi := Chunk(m, g.Procs(), p)
		for l2 := lo; l2 < hi; l2++ {
			for k1 := 0; k1 < m; k1++ {
				idx := (k1 * l2) % n
				wr := roots.Read(p, 2*idx)
				wi := roots.Read(p, 2*idx+1)
				c := l2*m + k1
				ar, ai := t.Read(p, 2*c), t.Read(p, 2*c+1)
				t.Write(p, 2*c, ar*wr-ai*wi)
				t.Write(p, 2*c+1, ar*wi+ai*wr)
				g.Compute(p, 8)
			}
		}
	}
}

// fftSelfCheck compares a handful of outputs against a direct DFT
// (untraced); generation panics on numerical disagreement, making every
// simulated run a verified computation.
func fftSelfCheck(g *Gen, t *F64, orig []complex128, n int) {
	for s := 0; s < 8; s++ {
		k := g.rng.Intn(n)
		var want complex128
		for j := 0; j < n; j++ {
			want += orig[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j%n)/float64(n)))
		}
		got := complex(t.Peek(2*k), t.Peek(2*k+1))
		if cmplx.Abs(got-want) > 1e-6*(1+cmplx.Abs(want)) {
			panic(fmt.Sprintf("fft: X[%d] = %v, want %v", k, got, want))
		}
	}
}
