package apps

import "testing"

func TestScaleString(t *testing.T) {
	if ScaleSmall.String() != "small" || ScaleDefault.String() != "default" || ScaleLarge.String() != "large" {
		t.Fatal("scale names")
	}
}

// Every registered application has all three scales, the default scale
// matches the registry, and working sets order small < default < large.
func TestScaledVariants(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			small, err := GenerateScaled(a.Name, 16, ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			def, err := GenerateScaled(a.Name, 16, ScaleDefault)
			if err != nil {
				t.Fatal(err)
			}
			large, err := GenerateScaled(a.Name, 16, ScaleLarge)
			if err != nil {
				t.Fatal(err)
			}
			if def.WorkingSet != a.Generate(16).WorkingSet {
				t.Errorf("default scale diverges from the registry problem")
			}
			if !(small.WorkingSet <= def.WorkingSet && def.WorkingSet <= large.WorkingSet) {
				t.Errorf("working sets out of order: %d / %d / %d",
					small.WorkingSet, def.WorkingSet, large.WorkingSet)
			}
			if small.WorkingSet == large.WorkingSet {
				t.Errorf("small and large scales identical")
			}
		})
	}
}

func TestGenerateScaledUnknown(t *testing.T) {
	if _, err := GenerateScaled("nope", 16, ScaleDefault); err == nil {
		t.Fatal("expected error")
	}
}

// Every registry kernel generates a valid trace at the scaled machine
// sizes the Figure2Scaled study runs (64 and 128 processors). Several
// kernels partition fixed problem grids over the processors, so large
// counts hit degenerate geometries — e.g. ocean's processor grid or
// raytrace's tile quota — that the paper's 16-processor runs never see.
func TestKernelsAtScaledSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry at 64/128 processors in -short mode")
	}
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			for _, procs := range []int{64, 128} {
				tr := a.Generate(procs)
				if tr.Procs != procs || tr.WorkingSet == 0 {
					t.Errorf("%d procs: procs=%d working set=%d", procs, tr.Procs, tr.WorkingSet)
				}
			}
		})
	}
}
