package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// LU is the SPLASH-2 blocked dense LU factorization (no pivoting, on a
// diagonally dominant matrix) with blocks 2-D-scattered over processors.
// The contiguous variant stores each block contiguously ("enhanced
// locality"); the non-contiguous variant uses a plain row-major array, so
// a block's rows are strided across lines shared with neighbouring blocks
// — the false-sharing and conflict behaviour the paper's LU-non exhibits.
// The factorization is verified against the original matrix.
func LU(procs, n, bs int, contiguous bool) *trace.Trace {
	if n%bs != 0 {
		panic(fmt.Sprintf("lu: n=%d not a multiple of block size %d", n, bs))
	}
	name := "lu-n"
	if contiguous {
		name = "lu-c"
	}
	g := NewGen(name, procs)
	a := g.F64("matrix", n*n)
	nb := n / bs

	// Element index for (i,j) depends on the layout under study.
	idx := func(i, j int) int { return i*n + j } // row-major
	if contiguous {
		idx = func(i, j int) int { // block-major: each block contiguous
			bi, bj := i/bs, j/bs
			return (bi*nb+bj)*bs*bs + (i%bs)*bs + (j % bs)
		}
	}
	// 2-D scatter ownership, as in the original.
	pr := 1
	for pr*pr < procs {
		pr++
	}
	if pr*pr != procs {
		pr = procs // fall back to 1-D for non-square counts
	}
	pc := procs / pr
	owner := func(bi, bj int) int { return (bi%pr)*pc + (bj % pc) }

	// Init by processor 0: random dense matrix made diagonally dominant.
	orig := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := g.rng.Float64() - 0.5
			if i == j {
				v += float64(n)
			}
			orig[i*n+j] = v
			a.Write(0, idx(i, j), v)
			g.Compute(0, 2)
		}
	}
	g.Barrier()
	g.MeasureStart()

	for k := 0; k < nb; k++ {
		d := k * bs
		// Factor the diagonal block (its owner, serial).
		p := owner(k, k)
		for c := 0; c < bs; c++ {
			piv := a.Read(p, idx(d+c, d+c))
			for r := c + 1; r < bs; r++ {
				l := a.Read(p, idx(d+r, d+c)) / piv
				a.Write(p, idx(d+r, d+c), l)
				for cc := c + 1; cc < bs; cc++ {
					v := a.Read(p, idx(d+r, d+cc)) - l*a.Read(p, idx(d+c, d+cc))
					a.Write(p, idx(d+r, d+cc), v)
					g.Compute(p, 4)
				}
			}
		}
		g.Barrier()
		// Perimeter blocks: triangular solves against the diagonal block.
		for bj := k + 1; bj < nb; bj++ { // U row: solve L11 * U = A
			p := owner(k, bj)
			col := bj * bs
			for c := 0; c < bs; c++ {
				for r := 1; r < bs; r++ {
					var s float64
					for t := 0; t < r; t++ {
						s += a.Read(p, idx(d+r, d+t)) * a.Read(p, idx(d+t, col+c))
						g.Compute(p, 2)
					}
					v := a.Read(p, idx(d+r, col+c)) - s
					a.Write(p, idx(d+r, col+c), v)
				}
			}
		}
		for bi := k + 1; bi < nb; bi++ { // L column: solve L * U11 = A
			p := owner(bi, k)
			row := bi * bs
			for r := 0; r < bs; r++ {
				for c := 0; c < bs; c++ {
					var s float64
					for t := 0; t < c; t++ {
						s += a.Read(p, idx(row+r, d+t)) * a.Read(p, idx(d+t, d+c))
						g.Compute(p, 2)
					}
					v := (a.Read(p, idx(row+r, d+c)) - s) / a.Read(p, idx(d+c, d+c))
					a.Write(p, idx(row+r, d+c), v)
				}
			}
		}
		g.Barrier()
		// Interior updates: A[bi][bj] -= L[bi][k] * U[k][bj]; perimeter
		// blocks are read-shared by every interior owner.
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				p := owner(bi, bj)
				row, col := bi*bs, bj*bs
				for r := 0; r < bs; r++ {
					for c := 0; c < bs; c++ {
						var s float64
						for t := 0; t < bs; t++ {
							s += a.Read(p, idx(row+r, d+t)) * a.Read(p, idx(d+t, col+c))
						}
						g.Compute(p, 2*bs)
						v := a.Read(p, idx(row+r, col+c)) - s
						a.Write(p, idx(row+r, col+c), v)
					}
				}
			}
		}
		g.Barrier()
	}

	luSelfCheck(g, a, orig, n, idx)
	return g.Finish()
}

// luSelfCheck verifies (L*U)[i][j] == orig[i][j] on sampled entries.
func luSelfCheck(g *Gen, a *F64, orig []float64, n int, idx func(i, j int) int) {
	for s := 0; s < 16; s++ {
		i, j := g.rng.Intn(n), g.rng.Intn(n)
		var v float64
		for t := 0; t <= min(i, j); t++ {
			l := a.Peek(idx(i, t))
			if t == i {
				l = 1
			}
			v += l * a.Peek(idx(t, j))
		}
		if math.Abs(v-orig[i*n+j]) > 1e-6*(1+math.Abs(orig[i*n+j])) {
			panic(fmt.Sprintf("lu: (LU)[%d][%d] = %g, want %g", i, j, v, orig[i*n+j]))
		}
	}
}
