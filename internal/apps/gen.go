package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/addrspace"
	"repro/internal/engine"
	"repro/internal/trace"
)

// InstrNS converts an instruction count to busy time. The paper's
// processors issue up to 4 instructions per 4 ns cycle; dependent
// floating-point code on an in-order 4-way machine sustains well under
// that, so we charge 3 ns per instruction (effective IPC ~1.3).
func InstrNS(instrs int) engine.Time { return engine.Time(3 * instrs) }

// Gen is the environment a kernel generates its trace in: a shared address
// space, per-processor reference streams, locks and a deterministic PRNG.
type Gen struct {
	b     *trace.Builder
	space *addrspace.Space
	rng   *rand.Rand
	locks uint32
}

// NewGen creates a generation environment with a fixed seed derived from
// the workload name, so traces are fully deterministic.
func NewGen(name string, procs int) *Gen {
	var seed int64 = 0x5eed
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	return &Gen{
		b:     trace.NewBuilder(name, procs),
		space: addrspace.New(),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Procs returns the logical processor count.
func (g *Gen) Procs() int { return g.b.Procs() }

// Rng returns the deterministic PRNG for problem generation.
func (g *Gen) Rng() *rand.Rand { return g.rng }

// Compute charges instrs instructions of busy time to processor p.
func (g *Gen) Compute(p, instrs int) { g.b.Compute(p, InstrNS(instrs)) }

// Barrier emits a global barrier.
func (g *Gen) Barrier() { g.b.Barrier() }

// MeasureStart marks the start of the measured parallel section.
func (g *Gen) MeasureStart() { g.b.MeasureStart() }

// Finish validates and returns the trace; the working set is everything
// allocated in the space.
func (g *Gen) Finish() *trace.Trace {
	tr := g.b.Build(g.space.Allocated())
	if err := tr.Validate(); err != nil {
		panic(fmt.Sprintf("apps: invalid generated trace: %v", err))
	}
	return tr
}

// WorkingSet reports bytes allocated so far.
func (g *Gen) WorkingSet() uint64 { return g.space.Allocated() }

// Lock is a spin lock homed on its own cache line.
type Lock struct {
	id   uint32
	addr addrspace.Addr
}

// NewLock allocates a lock on a private line.
func (g *Gen) NewLock(name string) Lock {
	id := g.locks
	g.locks++
	return Lock{id: id, addr: g.space.Alloc("lock:"+name, addrspace.LineSize)}
}

// NewLocks allocates n locks. Locks share pages but not lines.
func (g *Gen) NewLocks(name string, n int) []Lock {
	base := g.space.Alloc("locks:"+name, uint64(n*addrspace.LineSize))
	out := make([]Lock, n)
	for i := range out {
		out[i] = Lock{id: g.locks, addr: base + addrspace.Addr(i*addrspace.LineSize)}
		g.locks++
	}
	return out
}

// Acquire records processor p taking lk.
func (g *Gen) Acquire(p int, lk Lock) { g.b.Acquire(p, lk.id, lk.addr) }

// Release records processor p releasing lk.
func (g *Gen) Release(p int, lk Lock) { g.b.Release(p, lk.id, lk.addr) }

// F64 is a shared array of float64 values with a real backing store, so
// kernels compute true results while every element access is recorded.
type F64 struct {
	g    *Gen
	base addrspace.Addr
	data []float64
}

// F64 allocates a named shared float64 array.
func (g *Gen) F64(name string, n int) *F64 {
	return &F64{g: g, base: g.space.Alloc(name, uint64(n)*8), data: make([]float64, n)}
}

// Len returns the element count.
func (a *F64) Len() int { return len(a.data) }

// Addr returns the simulated address of element i.
func (a *F64) Addr(i int) addrspace.Addr { return a.base + addrspace.Addr(i)*8 }

// Read records a load of element i by processor p and returns the value.
func (a *F64) Read(p, i int) float64 {
	a.g.b.Read(p, a.Addr(i))
	return a.data[i]
}

// Write records a store of v to element i by processor p.
func (a *F64) Write(p, i int, v float64) {
	a.g.b.Write(p, a.Addr(i))
	a.data[i] = v
}

// Peek returns the value without recording a reference (verification).
func (a *F64) Peek(i int) float64 { return a.data[i] }

// Poke sets the value without recording a reference (problem setup that
// the paper's runs would have done from files or untraced init).
func (a *F64) Poke(i int, v float64) { a.data[i] = v }

// I32 is a shared array of int32 values with a real backing store. Sixteen
// elements share a 64-byte line, so dense integer structures exhibit the
// same false sharing as in the original codes.
type I32 struct {
	g    *Gen
	base addrspace.Addr
	data []int32
}

// I32 allocates a named shared int32 array.
func (g *Gen) I32(name string, n int) *I32 {
	return &I32{g: g, base: g.space.Alloc(name, uint64(n)*4), data: make([]int32, n)}
}

// Len returns the element count.
func (a *I32) Len() int { return len(a.data) }

// Addr returns the simulated address of element i.
func (a *I32) Addr(i int) addrspace.Addr { return a.base + addrspace.Addr(i)*4 }

// Read records a load of element i by processor p and returns the value.
func (a *I32) Read(p, i int) int32 {
	a.g.b.Read(p, a.Addr(i))
	return a.data[i]
}

// Write records a store of v to element i by processor p.
func (a *I32) Write(p, i int, v int32) {
	a.g.b.Write(p, a.Addr(i))
	a.data[i] = v
}

// Peek returns the value without recording a reference.
func (a *I32) Peek(i int) int32 { return a.data[i] }

// Poke sets the value without recording a reference.
func (a *I32) Poke(i int, v int32) { a.data[i] = v }

// Chunk splits n items into procs contiguous chunks and returns the
// half-open range of chunk p — the block partitioning the SPLASH codes
// use, which gives adjacent processors adjacent data (and therefore lets
// sequential process-to-cluster assignment exploit locality, as the paper
// notes).
func Chunk(n, procs, p int) (lo, hi int) {
	per := n / procs
	rem := n % procs
	lo = p*per + min(p, rem)
	hi = lo + per
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
