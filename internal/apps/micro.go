package apps

import (
	"fmt"

	"repro/internal/trace"
)

// Micro-workloads: four canonical sharing patterns (after the access
// classifications in the clustering literature the paper builds on).
// They are not part of Table 1 but serve protocol validation, examples
// and quick experiments where an isolated pattern is clearer than a full
// application.

// MicroNames lists the micro-workload identifiers accepted by Micro.
func MicroNames() []string {
	return []string{"micro-private", "micro-readshared", "micro-migratory", "micro-producer"}
}

// Micro generates the named micro-workload.
func Micro(name string, procs, lines, rounds int) *trace.Trace {
	switch name {
	case "micro-private":
		return MicroPrivate(procs, lines, rounds)
	case "micro-readshared":
		return MicroReadShared(procs, lines, rounds)
	case "micro-migratory":
		return MicroMigratory(procs, lines, rounds)
	case "micro-producer":
		return MicroProducerConsumer(procs, lines, rounds)
	default:
		panic(fmt.Sprintf("apps: unknown micro-workload %q", name))
	}
}

// MicroPrivate: each processor works exclusively on its own data — no
// communication; clustering can only add contention.
func MicroPrivate(procs, lines, rounds int) *trace.Trace {
	g := NewGen("micro-private", procs)
	words := lines * 8
	arrs := make([]*F64, procs)
	for p := range arrs {
		arrs[p] = g.F64(fmt.Sprintf("private-%d", p), words)
	}
	for p := 0; p < procs; p++ {
		for i := 0; i < words; i++ {
			arrs[p].Write(p, i, float64(i))
		}
	}
	g.Barrier()
	g.MeasureStart()
	for r := 0; r < rounds; r++ {
		for p := 0; p < procs; p++ {
			var sum float64
			for i := 0; i < words; i++ {
				sum += arrs[p].Read(p, i)
				g.Compute(p, 3)
			}
			arrs[p].Write(p, 0, sum)
		}
		g.Barrier()
	}
	return g.Finish()
}

// MicroReadShared: one region written once, then read by everyone every
// round — maximal replication benefit, the pattern squeezed hardest by
// high memory pressure.
func MicroReadShared(procs, lines, rounds int) *trace.Trace {
	g := NewGen("micro-readshared", procs)
	words := lines * 8
	shared := g.F64("shared", words)
	for i := 0; i < words; i++ {
		shared.Write(0, i, float64(i))
	}
	g.Barrier()
	g.MeasureStart()
	for r := 0; r < rounds; r++ {
		for p := 0; p < procs; p++ {
			var sum float64
			for i := 0; i < words; i++ {
				sum += shared.Read(p, i)
				g.Compute(p, 3)
			}
			_ = sum
		}
		g.Barrier()
	}
	return g.Finish()
}

// MicroMigratory: a lock-protected record bounces between processors —
// the lock and its data migrate together; clustering keeps the bounce
// inside a node part of the time.
func MicroMigratory(procs, lines, rounds int) *trace.Trace {
	g := NewGen("micro-migratory", procs)
	words := lines * 8
	rec := g.F64("record", words)
	lk := g.NewLock("record")
	for i := 0; i < words; i++ {
		rec.Write(0, i, 0)
	}
	g.Barrier()
	g.MeasureStart()
	for r := 0; r < rounds; r++ {
		for p := 0; p < procs; p++ {
			g.Acquire(p, lk)
			for i := 0; i < words; i++ {
				rec.Write(p, i, rec.Read(p, i)+1)
				g.Compute(p, 4)
			}
			g.Release(p, lk)
		}
	}
	g.Barrier()
	return g.Finish()
}

// MicroProducerConsumer: processor 2k writes a buffer that processor 2k+1
// reads each round. With sequential cluster assignment, producer and
// consumer share a node for clustering degree >= 2 — the best case for
// shared attraction memories.
func MicroProducerConsumer(procs, lines, rounds int) *trace.Trace {
	g := NewGen("micro-producer", procs)
	words := lines * 8
	bufs := make([]*F64, procs/2)
	for i := range bufs {
		bufs[i] = g.F64(fmt.Sprintf("buffer-%d", i), words)
	}
	g.Barrier()
	g.MeasureStart()
	for r := 0; r < rounds; r++ {
		for k := 0; k < procs/2; k++ {
			prod := 2 * k
			for i := 0; i < words; i++ {
				bufs[k].Write(prod, i, float64(r*i))
				g.Compute(prod, 3)
			}
		}
		g.Barrier()
		for k := 0; k < procs/2; k++ {
			cons := 2*k + 1
			var sum float64
			for i := 0; i < words; i++ {
				sum += bufs[k].Read(cons, i)
				g.Compute(cons, 3)
			}
			_ = sum
		}
		g.Barrier()
	}
	return g.Finish()
}
