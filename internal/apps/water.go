package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Molecule state layout within the mol array (stride f64 slots per
// molecule; roughly SPLASH-2 water's MDMAIN record, which is why the
// paper's working set is ~2 KB per molecule).
const (
	molStride = 128 // 1 KB of state per molecule
	molPos    = 0   // 3 doubles: position
	molVel    = 8   // 3 doubles: velocity
	molForce  = 16  // 3 doubles: force accumulator
	molDeriv  = 24  // higher-order predictor/corrector state
)

// WaterN2 is SPLASH-2 water-nsquared: an O(n^2) molecular-dynamics code
// where every processor computes forces for its molecules against half the
// others, accumulates partial forces privately, and merges them into the
// shared per-molecule records under per-molecule locks — heavy migratory
// sharing on both data and locks. Momentum conservation is verified.
func WaterN2(procs, mols, steps int) *trace.Trace {
	g := NewGen("water-n2", procs)
	return water(g, procs, mols, steps, func(p, i int) []int {
		// Half-shell pairing: i interacts with the next mols/2 molecules
		// (wrapping), exactly once per unordered pair.
		out := make([]int, 0, mols/2)
		for d := 1; d <= mols/2; d++ {
			j := (i + d) % mols
			if d == mols/2 && i >= mols/2 {
				continue // avoid double-counting the antipodal pair
			}
			out = append(out, j)
		}
		return out
	})
}

// WaterSp is SPLASH-2 water-spatial: the same dynamics with a 3-D cell
// grid so molecules interact only with a cutoff neighbourhood. Sharing is
// limited to cell boundaries, which is why it spends almost all its time
// inside the node in the paper.
func WaterSp(procs, mols, steps int) *trace.Trace {
	g := NewGen("water-sp", procs)
	const cells = 4 // 4x4x4 boxes
	// Assign molecules to cells deterministically (by index), mirroring a
	// uniform liquid; build neighbour lists via the 13 forward cells.
	cellOf := func(i int) (int, int, int) {
		c := i % (cells * cells * cells)
		return c % cells, (c / cells) % cells, c / (cells * cells)
	}
	sameOrNeighbor := func(i, j int) bool {
		xi, yi, zi := cellOf(i)
		xj, yj, zj := cellOf(j)
		dx, dy, dz := wrapDist(xi, xj, cells), wrapDist(yi, yj, cells), wrapDist(zi, zj, cells)
		return dx <= 1 && dy <= 1 && dz <= 1
	}
	return water(g, procs, mols, steps, func(p, i int) []int {
		var out []int
		for d := 1; d <= mols/2; d++ {
			j := (i + d) % mols
			if d == mols/2 && i >= mols/2 {
				continue
			}
			if sameOrNeighbor(i, j) {
				out = append(out, j)
			}
		}
		return out
	})
}

func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// water is the shared dynamics skeleton: predictor, pairwise forces with
// private accumulation, locked merge, corrector with a locked global
// kinetic-energy reduction.
func water(g *Gen, procs, mols, steps int, pairs func(p, i int) []int) *trace.Trace {
	mol := g.F64("molecules", mols*molStride)
	locks := g.NewLocks("mol", mols)
	kinLock := g.NewLock("kinetic")
	kin := g.F64("kinetic-energy", 8)
	// Private force accumulators, one allocation per processor.
	priv := make([]*F64, procs)
	for p := range priv {
		priv[p] = g.F64(fmt.Sprintf("pforce-%d", p), mols*3)
	}

	at := func(i, f int) int { return i*molStride + f }
	// Initialization by processor 0.
	for i := 0; i < mols; i++ {
		for d := 0; d < 3; d++ {
			mol.Write(0, at(i, molPos+d), g.rng.Float64()*10)
			mol.Write(0, at(i, molVel+d), g.rng.NormFloat64()*0.1)
			mol.Write(0, at(i, molForce+d), 0)
		}
		for d := 0; d < 8; d++ {
			mol.Write(0, at(i, molDeriv+d), 0)
		}
		g.Compute(0, 20)
	}
	g.Barrier()
	g.MeasureStart()

	const dt = 1e-3
	for step := 0; step < steps; step++ {
		// Predictor: owners advance their own molecules (mostly local).
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(mols, procs, p)
			for i := lo; i < hi; i++ {
				for d := 0; d < 3; d++ {
					x := mol.Read(p, at(i, molPos+d))
					v := mol.Read(p, at(i, molVel+d))
					mol.Write(p, at(i, molPos+d), x+dt*v)
					h := mol.Read(p, at(i, molDeriv+d))
					mol.Write(p, at(i, molDeriv+d), h*0.5)
					g.Compute(p, 10)
				}
			}
		}
		g.Barrier()
		// Inter-molecular forces: read both positions, accumulate into
		// the private buffers.
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(mols, procs, p)
			for i := lo; i < hi; i++ {
				xi := [3]float64{
					mol.Read(p, at(i, molPos)),
					mol.Read(p, at(i, molPos+1)),
					mol.Read(p, at(i, molPos+2)),
				}
				for _, j := range pairs(p, i) {
					var f [3]float64
					var r2 float64
					for d := 0; d < 3; d++ {
						dx := xi[d] - mol.Read(p, at(j, molPos+d))
						f[d] = dx
						r2 += dx * dx
					}
					inv := 1 / (r2 + 1)
					for d := 0; d < 3; d++ {
						f[d] *= inv
						priv[p].Write(p, i*3+d, priv[p].Read(p, i*3+d)+f[d])
						priv[p].Write(p, j*3+d, priv[p].Read(p, j*3+d)-f[d])
					}
					g.Compute(p, 30)
				}
			}
		}
		g.Barrier()
		// Merge: add private partial forces into the shared records
		// under per-molecule locks, then clear the private buffer.
		for p := 0; p < procs; p++ {
			for i := 0; i < mols; i++ {
				var f [3]float64
				zero := true
				for d := 0; d < 3; d++ {
					f[d] = priv[p].Read(p, i*3+d)
					if f[d] != 0 {
						zero = false
					}
				}
				if zero {
					continue
				}
				g.Acquire(p, locks[i])
				for d := 0; d < 3; d++ {
					cur := mol.Read(p, at(i, molForce+d))
					mol.Write(p, at(i, molForce+d), cur+f[d])
					priv[p].Write(p, i*3+d, 0)
				}
				g.Release(p, locks[i])
				g.Compute(p, 12)
			}
		}
		g.Barrier()
		// Corrector + locked global kinetic-energy reduction.
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(mols, procs, p)
			var local float64
			for i := lo; i < hi; i++ {
				for d := 0; d < 3; d++ {
					v := mol.Read(p, at(i, molVel+d))
					fv := mol.Read(p, at(i, molForce+d))
					v += dt * fv
					mol.Write(p, at(i, molVel+d), v)
					mol.Write(p, at(i, molForce+d), 0)
					local += v * v
					g.Compute(p, 8)
				}
			}
			g.Acquire(p, kinLock)
			kin.Write(p, 0, kin.Read(p, 0)+local)
			g.Release(p, kinLock)
		}
		g.Barrier()
	}

	// Self-check (untraced): kinetic energy accumulated and is finite.
	if k := kin.Peek(0); !(k > 0) || math.IsNaN(k) {
		panic(fmt.Sprintf("water: bad kinetic energy %g", k))
	}
	return g.Finish()
}
