package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// FMM models the SPLASH-2 adaptive fast multipole kernel on a 2-D
// hierarchy of grids: particle-to-multipole, upward (M2M) passes,
// cell-cell interactions over each cell's interaction list (M2L) — the
// read-shared all-to-neighbour phase that dominates its communication —
// then downward (L2L) and local evaluation (L2P). The "two cluster"
// distribution of the paper's input concentrates bodies (and hence work
// and sharing) in two regions. Multipole mass conservation is verified.
func FMM(procs, nbody, clusters int) *trace.Trace {
	g := NewGen("fmm", procs)
	const levels = 3 // 16x16, 8x8, 4x4
	const coeffs = 16
	side := 16
	// Level c arrays: multipole and local expansions per cell.
	type level struct {
		side int
		mp   *F64
		loc  *F64
	}
	lv := make([]level, levels)
	for l := 0; l < levels; l++ {
		s := side >> uint(l)
		lv[l] = level{
			side: s,
			mp:   g.F64(fmt.Sprintf("multipole-l%d", l), s*s*coeffs),
			loc:  g.F64(fmt.Sprintf("local-l%d", l), s*s*coeffs),
		}
	}
	bodies := g.F64("bodies", nbody*8) // pos 2, charge 1, potential 1, pad

	// Two-cluster positions: bodies concentrate around cluster centers.
	centers := [][2]float64{{0.25, 0.25}, {0.72, 0.68}}
	var totalCharge float64
	for b := 0; b < nbody; b++ {
		c := centers[b%clusters]
		x := math.Mod(math.Abs(c[0]+g.rng.NormFloat64()*0.08), 1)
		y := math.Mod(math.Abs(c[1]+g.rng.NormFloat64()*0.08), 1)
		q := g.rng.Float64()
		bodies.Write(0, b*8, x)
		bodies.Write(0, b*8+1, y)
		bodies.Write(0, b*8+2, q)
		totalCharge += q
		g.Compute(0, 12)
	}
	g.Barrier()
	g.MeasureStart()

	cellOf := func(x, y float64, s int) int {
		cx, cy := int(x*float64(s)), int(y*float64(s))
		if cx >= s {
			cx = s - 1
		}
		if cy >= s {
			cy = s - 1
		}
		return cy*s + cx
	}
	for step := 0; step < 2; step++ {
		// P2M: owners of leaf cells aggregate their bodies. Body-to-cell
		// assignment is recomputed by reading positions (every processor
		// scans its body chunk, writing the shared leaf multipoles of
		// whatever cells its bodies fall in, under cell ownership by
		// index — two clusters make a few cells very hot).
		s0 := lv[0].side
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(nbody, procs, p)
			for b := lo; b < hi; b++ {
				x := bodies.Read(p, b*8)
				y := bodies.Read(p, b*8+1)
				q := bodies.Read(p, b*8+2)
				c := cellOf(x, y, s0)
				for k := 0; k < 4; k++ {
					v := lv[0].mp.Read(p, c*coeffs+k)
					lv[0].mp.Write(p, c*coeffs+k, v+q*math.Pow(x+y, float64(k))/(1+float64(k)))
					g.Compute(p, 6)
				}
			}
		}
		g.Barrier()
		// M2M upward: each coarse cell sums its four children.
		for l := 1; l < levels; l++ {
			s, sc := lv[l].side, lv[l-1].side
			for c := 0; c < s*s; c++ {
				p := c % procs
				cx, cy := c%s, c/s
				for k := 0; k < 4; k++ {
					var sum float64
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							ch := (cy*2+dy)*sc + cx*2 + dx
							sum += lv[l-1].mp.Read(p, ch*coeffs+k)
						}
					}
					lv[l].mp.Write(p, c*coeffs+k, sum)
					g.Compute(p, 8)
				}
			}
			g.Barrier()
		}
		// M2L: every cell reads the multipoles of its interaction list
		// (the well-separated cells within its parent's neighbourhood).
		for l := 0; l < levels; l++ {
			s := lv[l].side
			for c := 0; c < s*s; c++ {
				p := c % procs
				cx, cy := c%s, c/s
				for dy := -3; dy <= 3; dy++ {
					for dx := -3; dx <= 3; dx++ {
						if dx >= -1 && dx <= 1 && dy >= -1 && dy <= 1 {
							continue // near field handled at leaf level
						}
						nx, ny := cx+dx, cy+dy
						if nx < 0 || ny < 0 || nx >= s || ny >= s {
							continue
						}
						src := ny*s + nx
						var acc float64
						for k := 0; k < 4; k++ {
							acc += lv[l].mp.Read(p, src*coeffs+k) / float64(1+dx*dx+dy*dy)
						}
						v := lv[l].loc.Read(p, c*coeffs)
						lv[l].loc.Write(p, c*coeffs, v+acc)
						g.Compute(p, 14)
					}
				}
			}
			g.Barrier()
		}
		// L2L downward + L2P: bodies gather their leaf cell's local
		// expansion plus near-field neighbours.
		for l := levels - 1; l > 0; l-- {
			s, sc := lv[l].side, lv[l-1].side
			for c := 0; c < s*s; c++ {
				p := c % procs
				cx, cy := c%s, c/s
				v := lv[l].loc.Read(p, c*coeffs)
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						ch := (cy*2+dy)*sc + cx*2 + dx
						w := lv[l-1].loc.Read(p, ch*coeffs)
						lv[l-1].loc.Write(p, ch*coeffs, w+v)
						g.Compute(p, 4)
					}
				}
			}
			g.Barrier()
		}
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(nbody, procs, p)
			for b := lo; b < hi; b++ {
				x := bodies.Read(p, b*8)
				y := bodies.Read(p, b*8+1)
				c := cellOf(x, y, s0)
				pot := lv[0].loc.Read(p, c*coeffs)
				bodies.Write(p, b*8+3, pot)
				g.Compute(p, 10)
			}
		}
		g.Barrier()
		// P2P near field: direct interactions with bodies in the same
		// and adjacent leaf cells. The partner count per body is capped,
		// standing in for the adaptive refinement that keeps real FMM
		// leaves small even inside the two dense clusters.
		cellBodies := make(map[int][]int)
		for b := 0; b < nbody; b++ {
			c := cellOf(bodies.Peek(b*8), bodies.Peek(b*8+1), s0)
			cellBodies[c] = append(cellBodies[c], b)
		}
		const maxPartners = 8
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(nbody, procs, p)
			for b := lo; b < hi; b++ {
				x := bodies.Read(p, b*8)
				y := bodies.Read(p, b*8+1)
				c := cellOf(x, y, s0)
				cx, cy := c%s0, c/s0
				partners := 0
				var acc float64
				for dy := -1; dy <= 1 && partners < maxPartners; dy++ {
					for dx := -1; dx <= 1 && partners < maxPartners; dx++ {
						nx, ny := cx+dx, cy+dy
						if nx < 0 || ny < 0 || nx >= s0 || ny >= s0 {
							continue
						}
						for _, o := range cellBodies[ny*s0+nx] {
							if o == b {
								continue
							}
							ox := bodies.Read(p, o*8)
							oy := bodies.Read(p, o*8+1)
							oq := bodies.Read(p, o*8+2)
							d2 := (x-ox)*(x-ox) + (y-oy)*(y-oy)
							acc += oq / (d2 + 1e-6)
							g.Compute(p, 12)
							partners++
							if partners >= maxPartners {
								break
							}
						}
					}
				}
				pot := bodies.Read(p, b*8+3)
				bodies.Write(p, b*8+3, pot+acc)
				g.Compute(p, 4)
			}
		}
		g.Barrier()
		// Clear expansions for the next step (owners, local writes).
		for l := 0; l < levels; l++ {
			s := lv[l].side
			for c := 0; c < s*s; c++ {
				p := c % procs
				if step == 0 { // last step leaves the state for the check
					for k := 0; k < 4; k++ {
						lv[l].mp.Write(p, c*coeffs+k, 0)
						lv[l].loc.Write(p, c*coeffs+k, 0)
					}
					g.Compute(p, 4)
				}
			}
		}
		g.Barrier()
	}

	// Self-check (untraced): coefficient 0 at the top level equals total
	// charge weight (mass conservation through the upward pass).
	top := lv[levels-1]
	var rootMass float64
	for c := 0; c < top.side*top.side; c++ {
		rootMass += top.mp.Peek(c * coeffs)
	}
	if math.Abs(rootMass-totalCharge) > 1e-9*totalCharge {
		panic(fmt.Sprintf("fmm: root multipole mass %g, want %g", rootMass, totalCharge))
	}
	return g.Finish()
}
