package apps

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// TrafficGroup says which traffic figure an application belongs to in the
// paper: Figure 3 collects the eight applications where clustering reduces
// traffic consistently; Figure 4 the six that become conflict-miss bound
// at 87% memory pressure.
type TrafficGroup int

// Traffic figure groups. GroupExtra marks kernels outside the paper's
// Table 1 (the irregular and allocator families); they appear in no
// traffic figure.
const (
	GroupExtra TrafficGroup = 0
	GroupFig3  TrafficGroup = 3
	GroupFig4  TrafficGroup = 4
)

// App describes one workload kernel.
type App struct {
	// Name is the short identifier (e.g. "lu-c").
	Name string
	// Title is the Table 1 description.
	Title string
	// PaperProblem and PaperWS reproduce Table 1's problem column and
	// working-set (MB) for the original inputs.
	PaperProblem string
	PaperWS      float64
	// Problem describes our scaled input.
	Problem string
	// Group assigns the paper's traffic figure.
	Group TrafficGroup
	// Generate builds the reference trace for the given processor count.
	Generate func(procs int) *trace.Trace
}

// Registry lists the fourteen applications in Table 1 order.
var Registry = []App{
	{
		Name: "barnes", Title: "N-body (Barnes-Hut)",
		PaperProblem: "16 K particles", PaperWS: 3.5,
		Problem: "512 bodies, 2 steps", Group: GroupFig4,
		Generate: func(p int) *trace.Trace { return Barnes(p, 512, 2) },
	},
	{
		Name: "cholesky", Title: "Sparse matrix factorization",
		PaperProblem: "tk29.O", PaperWS: 40.5,
		Problem: "n=384 banded sparse", Group: GroupFig3,
		Generate: func(p int) *trace.Trace { return Cholesky(p, 384) },
	},
	{
		Name: "fft", Title: "1-dim. six-step FFT",
		PaperProblem: "1 M data points", PaperWS: 50,
		Problem: "4096 points", Group: GroupFig3,
		Generate: func(p int) *trace.Trace { return FFT(p, 4096) },
	},
	{
		Name: "fmm", Title: "N-body (fast multipole)",
		PaperProblem: "two cluster, 32 K particles", PaperWS: 29,
		Problem: "1024 bodies, two clusters", Group: GroupFig4,
		Generate: func(p int) *trace.Trace { return FMM(p, 1024, 2) },
	},
	{
		Name: "lu-c", Title: "Blocked LU, enhanced locality",
		PaperProblem: "512x512, 16x16 blocks", PaperWS: 2.1,
		Problem: "96x96, 16x16 blocks", Group: GroupFig4,
		Generate: func(p int) *trace.Trace { return LU(p, 96, 16, true) },
	},
	{
		Name: "lu-n", Title: "Blocked LU factorization",
		PaperProblem: "512x512, 16x16 blocks", PaperWS: 2.1,
		Problem: "96x96, 16x16 blocks", Group: GroupFig3,
		Generate: func(p int) *trace.Trace { return LU(p, 96, 16, false) },
	},
	{
		Name: "ocean-c", Title: "Ocean simulation, enhanced locality",
		PaperProblem: "258x258 grid", PaperWS: 14.3,
		Problem: "96x96 grid", Group: GroupFig3,
		Generate: func(p int) *trace.Trace { return Ocean(p, 96, true) },
	},
	{
		Name: "ocean-n", Title: "Ocean simulation",
		PaperProblem: "258x258 grid", PaperWS: 14.3,
		Problem: "96x96 grid", Group: GroupFig3,
		Generate: func(p int) *trace.Trace { return Ocean(p, 96, false) },
	},
	{
		Name: "radiosity", Title: "Light distribution",
		PaperProblem: "-room -batch", PaperWS: 29,
		Problem: "2048 patches", Group: GroupFig4,
		Generate: func(p int) *trace.Trace { return Radiosity(p, 2048) },
	},
	{
		Name: "radix", Title: "Integer radix sort",
		PaperProblem: "2 M keys, radix 1024", PaperWS: 16.5,
		Problem: "32 K keys, radix 256", Group: GroupFig3,
		Generate: func(p int) *trace.Trace { return Radix(p, 32768, 256) },
	},
	{
		Name: "raytrace", Title: "Hierarchical ray tracing",
		PaperProblem: "car.env -a1", PaperWS: 36,
		Problem: "1024 triangles, 80x80 image", Group: GroupFig4,
		Generate: func(p int) *trace.Trace { return Raytrace(p, 1024, 80) },
	},
	{
		Name: "volrend", Title: "3-D volume rendering",
		PaperProblem: "256x256x126 vx head", PaperWS: 22.5,
		Problem: "64^3 volume, 64x64 image", Group: GroupFig4,
		Generate: func(p int) *trace.Trace { return Volrend(p, 64, 64) },
	},
	{
		Name: "water-n2", Title: "Molecular dynamics O(n^2)",
		PaperProblem: "512 molecules", PaperWS: 1,
		Problem: "160 molecules, 2 steps", Group: GroupFig3,
		Generate: func(p int) *trace.Trace { return WaterN2(p, 160, 2) },
	},
	{
		Name: "water-sp", Title: "Molecular dynamics, spatial",
		PaperProblem: "512 molecules", PaperWS: 1.7,
		Problem: "256 molecules, 2 steps", Group: GroupFig3,
		Generate: func(p int) *trace.Trace { return WaterSp(p, 256, 2) },
	},
}

// Extras lists the kernels beyond Table 1: the irregular group
// (graph-bfs, pchase) and the allocator group (alloc-churn) — the access
// patterns a shared attraction memory should win or lose hardest on,
// which the paper never tested (see WORKLOADS.md). They are kept out of
// Registry so every paper artifact (Table 1, Figures 2–5) reproduces the
// original fourteen-application set unchanged; studies that want them
// (fig2irregular) iterate Extras explicitly, and ByName resolves them
// everywhere an application name is accepted.
var Extras = []App{
	{
		Name: "graph-bfs", Title: "Level-synchronous BFS, power-law graph",
		PaperProblem: "—", PaperWS: 0,
		Problem: "4096 vertices, degree 8", Group: GroupExtra,
		Generate: func(p int) *trace.Trace { return GraphBFS(p, 4096, 8) },
	},
	{
		Name: "pchase", Title: "Pointer chase, shuffled linked lists",
		PaperProblem: "—", PaperWS: 0,
		Problem: "2048 nodes/proc, window 16", Group: GroupExtra,
		Generate: func(p int) *trace.Trace { return PChase(p, 2048, 16) },
	},
	{
		Name: "alloc-churn", Title: "Segregated-freelist allocator churn",
		PaperProblem: "—", PaperWS: 0,
		Problem: "512 ops/proc, 256 blocks/class", Group: GroupExtra,
		Generate: func(p int) *trace.Trace { return AllocChurn(p, 512, 256) },
	},
}

// All returns the paper registry followed by the extras.
func All() []App {
	out := make([]App, 0, len(Registry)+len(Extras))
	out = append(out, Registry...)
	return append(out, Extras...)
}

// ByName finds an application in the registry or the extras.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q (known: %v)", name, AllNames())
}

// Names returns the paper registry names in order (extras excluded, so
// the paper artifacts' application set never changes).
func Names() []string {
	out := make([]string, len(Registry))
	for i, a := range Registry {
		out[i] = a.Name
	}
	return out
}

// AllNames returns registry names followed by extra names.
func AllNames() []string {
	all := All()
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name
	}
	return out
}

// ExtraNames returns the extras' names in order.
func ExtraNames() []string {
	out := make([]string, len(Extras))
	for i, a := range Extras {
		out[i] = a.Name
	}
	return out
}

// Group returns the applications of a traffic group, in registry order.
func Group(g TrafficGroup) []App {
	var out []App
	for _, a := range Registry {
		if a.Group == g {
			out = append(out, a)
		}
	}
	return out
}

// SortedNames returns names sorted alphabetically (for stable CLI output).
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
