package apps

import (
	"fmt"

	"repro/internal/trace"
)

// PChase is a pointer-chasing microkernel over shuffled linked lists —
// the serially dependent irregular reads of linked data structures,
// where every load's address comes from the previous load and no
// prefetcher or clustering trick can help. Each list node occupies one
// full cache line. The node order is a cycle built by shuffling windows
// of `window` consecutive nodes: window 1 is a sequential sweep, window
// = list length a fully random permutation, values between dial the
// locality. Each processor chases its own private list (capacity misses
// at controllable locality), then all processors chase one shared list
// together (read-shared lines, the attraction-memory replication case).
// Every chase is verified to visit each node exactly once and return to
// its start.
func PChase(procs, nodesPerProc, window int) *trace.Trace {
	if window < 1 {
		panic(fmt.Sprintf("pchase: window %d < 1", window))
	}
	g := NewGen("pchase", procs)
	const nodeInts = 16 // one 64-byte line per node
	shared := nodesPerProc
	priv := g.I32("pchase-private", procs*nodesPerProc*nodeInts)
	shr := g.I32("pchase-shared", shared*nodeInts)
	sums := g.I32("pchase-sums", procs)

	// cycleOrder returns a visit order over n nodes: windows of
	// consecutive indices, shuffled within each window.
	cycleOrder := func(n int) []int32 {
		order := make([]int32, n)
		for i := range order {
			order[i] = int32(i)
		}
		for lo := 0; lo < n; lo += window {
			hi := min(lo+window, n)
			for i := hi - 1; i > lo; i-- {
				j := lo + g.rng.Intn(i-lo+1)
				order[i], order[j] = order[j], order[i]
			}
		}
		return order
	}

	// Init (traced): every processor threads its private list; processor
	// 0 threads the shared one. Writing the next pointers is the classic
	// list-building store pattern.
	starts := make([]int32, procs)
	for p := 0; p < procs; p++ {
		order := cycleOrder(nodesPerProc)
		starts[p] = order[0]
		base := p * nodesPerProc
		for i, v := range order {
			nxt := order[(i+1)%len(order)]
			priv.Write(p, (base+int(v))*nodeInts, nxt)
		}
		g.Compute(p, 2*nodesPerProc)
	}
	sharedOrder := cycleOrder(shared)
	for i, v := range sharedOrder {
		nxt := sharedOrder[(i+1)%len(sharedOrder)]
		shr.Write(0, int(v)*nodeInts, nxt)
	}
	g.Barrier()
	g.MeasureStart()

	chase := func(p int, a *I32, base int, start int32, n int) {
		cur := start
		visited := make(map[int32]bool, n)
		var sum int64
		for i := 0; i < n; i++ {
			if visited[cur] {
				panic(fmt.Sprintf("pchase: proc %d revisits node %d after %d hops", p, cur, i))
			}
			visited[cur] = true
			sum += int64(cur)
			cur = a.Read(p, (base+int(cur))*nodeInts)
			g.Compute(p, 2)
		}
		if cur != start {
			panic(fmt.Sprintf("pchase: proc %d chase ended at %d, started at %d", p, cur, start))
		}
		if want := int64(n) * int64(n-1) / 2; sum != want {
			panic(fmt.Sprintf("pchase: proc %d visited-node checksum %d, want %d", p, sum, want))
		}
		s := sums.Read(p, p)
		sums.Write(p, p, s+int32(sum&0x7fffffff))
	}

	// Two full laps over the private list (the second lap is where the
	// locality window shows: a window-sized reuse distance), then one
	// lap over the shared list by every processor.
	for lap := 0; lap < 2; lap++ {
		for p := 0; p < procs; p++ {
			chase(p, priv, p*nodesPerProc, starts[p], nodesPerProc)
		}
		g.Barrier()
	}
	for p := 0; p < procs; p++ {
		chase(p, shr, 0, sharedOrder[0], shared)
	}
	g.Barrier()
	return g.Finish()
}
