package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Ocean is the SPLASH-2 ocean-current simulation kernel: a set of n-by-n
// grids updated by 5-point stencils and a red-black SOR solver, with the
// grid partitioned into square per-processor subgrids. The contiguous
// variant ("enhanced locality") lays each subgrid out contiguously so
// border sharing happens only at true partition boundaries; the
// non-contiguous variant uses plain row-major 2-D arrays, whose strided
// subgrid rows share lines across partitions. Residual reduction is
// verified at generation time.
func Ocean(procs, n int, contiguous bool) *trace.Trace {
	name := "ocean-n"
	if contiguous {
		name = "ocean-c"
	}
	g := NewGen(name, procs)

	// Square processor grid (falls back to 1-D strips if procs is not a
	// perfect square, and from there to the most-square factorization
	// whose rows and columns both divide the grid — e.g. 8x16 for 128
	// processors on a 96x96 grid, where neither a square nor strips fit).
	ps := 1
	for ps*ps < procs {
		ps++
	}
	if ps*ps != procs {
		ps = 1
	}
	pcols := procs / ps
	if n%ps != 0 || n%pcols != 0 {
		ps = 0
		for r := 1; r*r <= procs; r++ {
			if procs%r == 0 && n%r == 0 && n%(procs/r) == 0 {
				ps = r
			}
		}
		if ps == 0 {
			panic(fmt.Sprintf("ocean: no %d-processor grid divides n=%d", procs, n))
		}
		pcols = procs / ps
	}
	th, tw := n/ps, n/pcols // tile height/width

	idx := func(i, j int) int { return i*n + j }
	if contiguous {
		idx = func(i, j int) int {
			ti, tj := i/th, j/tw
			return (ti*pcols+tj)*(th*tw) + (i%th)*tw + (j % tw)
		}
	}
	ownerOf := func(i, j int) int { return (i/th)*pcols + j/tw }
	_ = ownerOf

	psi := g.F64("psi", n*n)
	rhs := g.F64("rhs", n*n)
	vort := g.F64("vort", n*n)
	tmp := g.F64("tmp", n*n)
	q := g.F64("q", n*n)
	hz := g.F64("hz", n*n)
	// Multigrid scratch: residual on the fine grid and the coarse-grid
	// correction (the original Ocean's solver is a full multigrid; we
	// run a two-grid V-cycle between the SOR sweeps).
	nc := n / 2
	resid := g.F64("residual", n*n)
	coarse := g.F64("coarse", nc*nc)
	redLock := g.NewLock("global-err")
	errSum := g.F64("err-sum", 8) // one shared accumulator line

	// Initialization: processor 0 fills the fields.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			psi.Write(0, idx(i, j), math.Sin(float64(i))*math.Cos(float64(j)))
			rhs.Write(0, idx(i, j), 0)
			q.Write(0, idx(i, j), g.rng.Float64())
			hz.Write(0, idx(i, j), 1+0.1*g.rng.Float64())
			g.Compute(0, 6)
		}
	}
	g.Barrier()
	g.MeasureStart()

	// Per-processor tile bounds (interior only).
	tile := func(p int) (ilo, ihi, jlo, jhi int) {
		ti, tj := p/pcols, p%pcols
		ilo, ihi = ti*th, (ti+1)*th
		jlo, jhi = tj*tw, (tj+1)*tw
		if ilo == 0 {
			ilo = 1
		}
		if jlo == 0 {
			jlo = 1
		}
		if ihi == n {
			ihi = n - 1
		}
		if jhi == n {
			jhi = n - 1
		}
		return
	}
	stencil := func(p int, a *F64, i, j int) float64 {
		return a.Read(p, idx(i-1, j)) + a.Read(p, idx(i+1, j)) +
			a.Read(p, idx(i, j-1)) + a.Read(p, idx(i, j+1))
	}
	residual := func() float64 { // untraced verification helper
		var r float64
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				lap := psi.Peek(idx(i-1, j)) + psi.Peek(idx(i+1, j)) +
					psi.Peek(idx(i, j-1)) + psi.Peek(idx(i, j+1)) - 4*psi.Peek(idx(i, j))
				d := lap - rhs.Peek(idx(i, j))
				r += d * d
			}
		}
		return r
	}

	const steps, sweeps = 2, 3
	var firstResidual float64
	for step := 0; step < steps; step++ {
		// Phase 1: source term from the q and hz fields (stencil reads,
		// local writes).
		for p := 0; p < procs; p++ {
			ilo, ihi, jlo, jhi := tile(p)
			for i := ilo; i < ihi; i++ {
				for j := jlo; j < jhi; j++ {
					v := 0.05*stencil(p, q, i, j)*hz.Read(p, idx(i, j)) - 0.2*q.Read(p, idx(i, j))
					rhs.Write(p, idx(i, j), v)
					g.Compute(p, 8)
				}
			}
		}
		g.Barrier()
		if step == 0 {
			firstResidual = residual()
		}
		// Phase 2: red-black SOR on psi (borders read from neighbours).
		for s := 0; s < sweeps; s++ {
			for color := 0; color < 2; color++ {
				for p := 0; p < procs; p++ {
					ilo, ihi, jlo, jhi := tile(p)
					for i := ilo; i < ihi; i++ {
						for j := jlo; j < jhi; j++ {
							if (i+j)%2 != color {
								continue
							}
							v := 0.25 * (stencil(p, psi, i, j) - rhs.Read(p, idx(i, j)))
							psi.Write(p, idx(i, j), v)
							g.Compute(p, 7)
						}
					}
				}
				g.Barrier()
			}
		}
		// Phase 2b: two-grid V-cycle, as in the original's multigrid
		// solver — compute the fine-grid residual, restrict it, smooth
		// the error equation on the coarse grid, prolongate the
		// correction back, then one post-smoothing sweep.
		for p := 0; p < procs; p++ {
			ilo, ihi, jlo, jhi := tile(p)
			for i := ilo; i < ihi; i++ {
				for j := jlo; j < jhi; j++ {
					v := stencil(p, psi, i, j) - 4*psi.Read(p, idx(i, j)) - rhs.Read(p, idx(i, j))
					resid.Write(p, i*n+j, v)
					g.Compute(p, 8)
				}
			}
		}
		g.Barrier()
		for p := 0; p < procs; p++ { // restriction by injection
			clo, chi := Chunk(nc, procs, p)
			for ci := clo; ci < chi; ci++ {
				for cj := 0; cj < nc; cj++ {
					v := 0.0
					if ci > 0 && cj > 0 && 2*ci < n-1 && 2*cj < n-1 {
						v = resid.Read(p, (2*ci)*n+2*cj)
					}
					coarse.Write(p, ci*nc+cj, v)
					g.Compute(p, 3)
				}
			}
		}
		g.Barrier()
		// Coarse-grid smoothing of lap(e) = -r, reusing the residual
		// values stored in coarse as the source and relaxing in place
		// against a zero initial error (two Jacobi-style passes over a
		// scratch copy held in vort's unused border... kept simple: the
		// source is re-read from resid on the fine grid points).
		for it := 0; it < 3; it++ {
			for p := 0; p < procs; p++ {
				clo, chi := Chunk(nc, procs, p)
				for ci := clo; ci < chi; ci++ {
					if ci == 0 || ci >= nc-1 {
						continue
					}
					for cj := 1; cj < nc-1; cj++ {
						var r float64
						if 2*ci < n-1 && 2*cj < n-1 {
							r = resid.Read(p, (2*ci)*n+2*cj)
						}
						e := 0.25 * (coarse.Read(p, (ci-1)*nc+cj) +
							coarse.Read(p, (ci+1)*nc+cj) +
							coarse.Read(p, ci*nc+cj-1) +
							coarse.Read(p, ci*nc+cj+1) + r)
						coarse.Write(p, ci*nc+cj, e)
						g.Compute(p, 9)
					}
				}
			}
			g.Barrier()
		}
		// Prolongation (piecewise constant) + post-smoothing sweep.
		for p := 0; p < procs; p++ {
			ilo, ihi, jlo, jhi := tile(p)
			for i := ilo; i < ihi; i++ {
				for j := jlo; j < jhi; j++ {
					e := coarse.Read(p, (i/2)*nc+j/2)
					psi.Write(p, idx(i, j), psi.Read(p, idx(i, j))+e)
					g.Compute(p, 4)
				}
			}
		}
		g.Barrier()
		for color := 0; color < 2; color++ {
			for p := 0; p < procs; p++ {
				ilo, ihi, jlo, jhi := tile(p)
				for i := ilo; i < ihi; i++ {
					for j := jlo; j < jhi; j++ {
						if (i+j)%2 != color {
							continue
						}
						v := 0.25 * (stencil(p, psi, i, j) - rhs.Read(p, idx(i, j)))
						psi.Write(p, idx(i, j), v)
						g.Compute(p, 7)
					}
				}
			}
			g.Barrier()
		}
		// Phase 3: vorticity update + lock-protected global reduction.
		for p := 0; p < procs; p++ {
			ilo, ihi, jlo, jhi := tile(p)
			var local float64
			for i := ilo; i < ihi; i++ {
				for j := jlo; j < jhi; j++ {
					v := stencil(p, psi, i, j) - 4*psi.Read(p, idx(i, j))
					vort.Write(p, idx(i, j), v)
					tmp.Write(p, idx(i, j), v*0.5)
					local += v * v
					g.Compute(p, 9)
				}
			}
			g.Acquire(p, redLock)
			errSum.Write(p, 0, errSum.Read(p, 0)+local)
			g.Release(p, redLock)
			g.Compute(p, 4)
		}
		g.Barrier()
	}

	// Self-check (untraced): SOR reduced the residual.
	if r := residual(); !(r < firstResidual) || math.IsNaN(r) {
		panic(fmt.Sprintf("ocean: residual did not decrease (%g -> %g)", firstResidual, r))
	}
	return g.Finish()
}
