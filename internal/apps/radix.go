package apps

import (
	"fmt"

	"repro/internal/trace"
)

// Radix is the SPLASH-2 integer radix sort: per-digit passes of local
// histogramming, a prefix-sum over all processors' histograms, and a
// permutation phase that scatters keys across the whole destination array
// — the classic all-to-all write pattern that makes Radix the most
// bandwidth-hungry and node-contention-bound application in the paper.
// Sortedness is verified at generation time.
func Radix(procs, keys, radix int) *trace.Trace {
	if radix&(radix-1) != 0 {
		panic(fmt.Sprintf("radix: radix %d not a power of two", radix))
	}
	g := NewGen("radix", procs)
	src := g.I32("keys0", keys)
	dst := g.I32("keys1", keys)
	// Global histogram/rank area: procs*radix counters, processor-major,
	// densely packed (16 counters per line, as in the original, which is
	// where its false sharing comes from).
	hist := g.I32("hist", procs*radix)
	rank := g.I32("rank", procs*radix)
	total := g.I32("digit-total", radix)
	base := g.I32("digit-base", radix)

	maxKey := radix * radix // two digit passes cover the key range
	for i := 0; i < keys; i++ {
		src.Write(0, i, int32(g.rng.Intn(maxKey)))
		g.Compute(0, 3)
	}
	g.Barrier()
	g.MeasureStart()

	shift := uint(0)
	for pass := 0; pass < 2; pass++ {
		// Phase 1: local histogram of each processor's key chunk.
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(keys, procs, p)
			for i := lo; i < hi; i++ {
				d := int(src.Read(p, i)>>shift) & (radix - 1)
				c := hist.Read(p, p*radix+d)
				hist.Write(p, p*radix+d, c+1)
				g.Compute(p, 5)
			}
		}
		g.Barrier()
		// Phase 2: global prefix over (digit, proc) — each processor
		// ranks a slice of digits, reading every other processor's
		// histogram counters (all-to-all reads).
		for p := 0; p < procs; p++ {
			dlo, dhi := Chunk(radix, procs, p)
			for d := dlo; d < dhi; d++ {
				var sum int32
				for q := 0; q < procs; q++ {
					rank.Write(p, q*radix+d, sum)
					sum += hist.Read(p, q*radix+d)
					g.Compute(p, 4)
				}
				total.Write(p, d, sum)
			}
		}
		g.Barrier()
		// Phase 2b: processor 0 turns per-digit totals into global digit
		// bases (short serial section, as in the original tree root).
		var acc int32
		for d := 0; d < radix; d++ {
			base.Write(0, d, acc)
			acc += total.Read(0, d)
			g.Compute(0, 2)
		}
		g.Barrier()
		// Phase 3: permutation — every processor scatters its keys to
		// their ranked positions in the destination array, bumping its
		// rank counter in place.
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(keys, procs, p)
			for i := lo; i < hi; i++ {
				k := src.Read(p, i)
				d := int(k>>shift) & (radix - 1)
				r := rank.Read(p, p*radix+d)
				rank.Write(p, p*radix+d, r+1)
				pos := base.Read(p, d) + r
				dst.Write(p, int(pos), k)
				g.Compute(p, 6)
			}
			// Clear this processor's histogram for the next pass.
			for d := 0; d < radix; d++ {
				hist.Write(p, p*radix+d, 0)
			}
		}
		g.Barrier()
		src, dst = dst, src
		shift += uint(log2(radix))
	}

	// Self-check (untraced): the final array is sorted.
	for i := 1; i < keys; i++ {
		if src.Peek(i-1) > src.Peek(i) {
			panic(fmt.Sprintf("radix: not sorted at %d: %d > %d", i, src.Peek(i-1), src.Peek(i)))
		}
	}
	return g.Finish()
}

func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}
