package apps

import (
	"testing"
)

// TestGenerateAll generates every registered workload (each kernel
// self-checks its computation) and sanity-checks the traces.
func TestGenerateAll(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			tr := app.Generate(16)
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// Every generated trace must also satisfy the stricter sync
			// discipline the trace-ingestion decoder enforces, so any
			// kernel's output can be exported and re-uploaded.
			if err := tr.ValidateSync(); err != nil {
				t.Fatal(err)
			}
			s := tr.Summarize()
			t.Logf("%s: ws=%d KB reads=%d writes=%d acquires=%d barriers=%d distinct=%d shared=%d",
				app.Name, tr.WorkingSet/1024, s.Reads, s.Writes, s.Acquires, s.Barriers, s.DistinctLines, s.SharedLines)
			if s.Reads == 0 || s.Writes == 0 {
				t.Fatalf("%s: empty trace", app.Name)
			}
			if s.SharedLines == 0 {
				t.Fatalf("%s: no shared lines — not a parallel workload", app.Name)
			}
		})
	}
}
