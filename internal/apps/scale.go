package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Scale selects a problem-size variant: the default inputs (Table 1's
// scaled problems), a half-size variant, and a double-size variant. The
// paper's methodology sizes every cache from the working set, so scaled
// runs test whether conclusions survive problem-size changes — the
// BenchmarkAblationScale check.
type Scale int

// Problem scales.
const (
	ScaleSmall Scale = iota
	ScaleDefault
	ScaleLarge
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleDefault:
		return "default"
	case ScaleLarge:
		return "large"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// GenerateScaled builds the named application at the given problem scale.
// Dimensions scale so the working set roughly halves/doubles; structural
// parameters (block sizes, radix, supernode width) stay fixed, as they
// would in the original codes.
func GenerateScaled(name string, procs int, s Scale) (*trace.Trace, error) {
	type sizes struct{ small, def, large func(int) *trace.Trace }
	table := map[string]sizes{
		"barnes": {
			small: func(p int) *trace.Trace { return Barnes(p, 256, 2) },
			def:   func(p int) *trace.Trace { return Barnes(p, 512, 2) },
			large: func(p int) *trace.Trace { return Barnes(p, 1024, 2) },
		},
		"cholesky": {
			small: func(p int) *trace.Trace { return Cholesky(p, 192) },
			def:   func(p int) *trace.Trace { return Cholesky(p, 384) },
			large: func(p int) *trace.Trace { return Cholesky(p, 768) },
		},
		"fft": {
			small: func(p int) *trace.Trace { return FFT(p, 1024) },
			def:   func(p int) *trace.Trace { return FFT(p, 4096) },
			large: func(p int) *trace.Trace { return FFT(p, 16384) },
		},
		"fmm": {
			small: func(p int) *trace.Trace { return FMM(p, 512, 2) },
			def:   func(p int) *trace.Trace { return FMM(p, 1024, 2) },
			large: func(p int) *trace.Trace { return FMM(p, 2048, 2) },
		},
		"lu-c": {
			small: func(p int) *trace.Trace { return LU(p, 64, 16, true) },
			def:   func(p int) *trace.Trace { return LU(p, 96, 16, true) },
			large: func(p int) *trace.Trace { return LU(p, 128, 16, true) },
		},
		"lu-n": {
			small: func(p int) *trace.Trace { return LU(p, 64, 16, false) },
			def:   func(p int) *trace.Trace { return LU(p, 96, 16, false) },
			large: func(p int) *trace.Trace { return LU(p, 128, 16, false) },
		},
		"ocean-c": {
			small: func(p int) *trace.Trace { return Ocean(p, 64, true) },
			def:   func(p int) *trace.Trace { return Ocean(p, 96, true) },
			large: func(p int) *trace.Trace { return Ocean(p, 128, true) },
		},
		"ocean-n": {
			small: func(p int) *trace.Trace { return Ocean(p, 64, false) },
			def:   func(p int) *trace.Trace { return Ocean(p, 96, false) },
			large: func(p int) *trace.Trace { return Ocean(p, 128, false) },
		},
		"radiosity": {
			small: func(p int) *trace.Trace { return Radiosity(p, 1024) },
			def:   func(p int) *trace.Trace { return Radiosity(p, 2048) },
			large: func(p int) *trace.Trace { return Radiosity(p, 4096) },
		},
		"radix": {
			small: func(p int) *trace.Trace { return Radix(p, 16384, 256) },
			def:   func(p int) *trace.Trace { return Radix(p, 32768, 256) },
			large: func(p int) *trace.Trace { return Radix(p, 65536, 256) },
		},
		"raytrace": {
			small: func(p int) *trace.Trace { return Raytrace(p, 512, 64) },
			def:   func(p int) *trace.Trace { return Raytrace(p, 1024, 80) },
			large: func(p int) *trace.Trace { return Raytrace(p, 2048, 112) },
		},
		"volrend": {
			small: func(p int) *trace.Trace { return Volrend(p, 32, 48) },
			def:   func(p int) *trace.Trace { return Volrend(p, 64, 64) },
			large: func(p int) *trace.Trace { return Volrend(p, 64, 96) },
		},
		"water-n2": {
			small: func(p int) *trace.Trace { return WaterN2(p, 96, 2) },
			def:   func(p int) *trace.Trace { return WaterN2(p, 160, 2) },
			large: func(p int) *trace.Trace { return WaterN2(p, 256, 2) },
		},
		"water-sp": {
			small: func(p int) *trace.Trace { return WaterSp(p, 128, 2) },
			def:   func(p int) *trace.Trace { return WaterSp(p, 256, 2) },
			large: func(p int) *trace.Trace { return WaterSp(p, 512, 2) },
		},
		"graph-bfs": {
			small: func(p int) *trace.Trace { return GraphBFS(p, 2048, 8) },
			def:   func(p int) *trace.Trace { return GraphBFS(p, 4096, 8) },
			large: func(p int) *trace.Trace { return GraphBFS(p, 8192, 8) },
		},
		"pchase": {
			small: func(p int) *trace.Trace { return PChase(p, 1024, 16) },
			def:   func(p int) *trace.Trace { return PChase(p, 2048, 16) },
			large: func(p int) *trace.Trace { return PChase(p, 4096, 16) },
		},
		"alloc-churn": {
			small: func(p int) *trace.Trace { return AllocChurn(p, 256, 128) },
			def:   func(p int) *trace.Trace { return AllocChurn(p, 512, 256) },
			large: func(p int) *trace.Trace { return AllocChurn(p, 1024, 512) },
		},
	}
	entry, ok := table[name]
	if !ok {
		return nil, fmt.Errorf("apps: no scale table for %q", name)
	}
	switch s {
	case ScaleSmall:
		return entry.small(procs), nil
	case ScaleDefault:
		return entry.def(procs), nil
	case ScaleLarge:
		return entry.large(procs), nil
	default:
		return nil, fmt.Errorf("apps: unknown scale %v", s)
	}
}

// ScaleRatio reports large/small working-set ratio for a generated pair —
// a sanity helper for tests.
func ScaleRatio(name string, procs int) (float64, error) {
	small, err := GenerateScaled(name, procs, ScaleSmall)
	if err != nil {
		return 0, err
	}
	large, err := GenerateScaled(name, procs, ScaleLarge)
	if err != nil {
		return 0, err
	}
	return float64(large.WorkingSet) / math.Max(1, float64(small.WorkingSet)), nil
}
