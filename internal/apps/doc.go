// Package apps implements the fourteen SPLASH-2-style workload kernels
// that drive the simulator, standing in for the SPARC SPLASH-2 binaries
// the paper executes under SimICS. Each kernel runs its algorithm for real
// over a simulated shared address space (sorts really sort, factorizations
// really factor — the test suite verifies results) while recording every
// data reference, lock and barrier per logical processor.
package apps
