package apps

import (
	"fmt"

	"repro/internal/trace"
)

// Volrend models the SPLASH-2 volume renderer: a large read-shared voxel
// volume with a min-max octree for empty-space skipping, an image
// partitioned into tiles handed out from a lock-protected counter, and per
// ray a front-to-back compositing walk with early termination. Like
// Raytrace, the read-mostly volume wants replication, making Volrend
// conflict-sensitive at very high memory pressure. Image coverage and
// opacity bounds are verified.
func Volrend(procs, volSide, imgSide int) *trace.Trace {
	g := NewGen("volrend", procs)
	n := volSide
	vol := g.I32("volume", n*n*n)
	// Min-max octree level: one cell per 4x4x4 brick storing max opacity.
	bs := n / 4
	oct := g.I32("octree", bs*bs*bs)
	img := g.I32("image", imgSide*imgSide)
	counter := g.I32("tile-counter", 16)
	qlock := g.NewLock("tile-queue")

	vat := func(x, y, z int) int { return (z*n+y)*n + x }
	oat := func(x, y, z int) int { return (z*bs+y)*bs + x }

	// Init by processor 0: a "head"-like blob — dense ellipsoid in the
	// middle, empty space around it — then the octree summary.
	c := float64(n) / 2
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dx, dy, dz := float64(x)-c, float64(y)-c, float64(z)-c
				r2 := dx*dx + 1.3*dy*dy + 0.8*dz*dz
				v := int32(0)
				if r2 < c*c*0.6 {
					v = int32(40 + g.rng.Intn(60))
				}
				vol.Write(0, vat(x, y, z), v)
				g.Compute(0, 3)
			}
		}
	}
	for z := 0; z < bs; z++ {
		for y := 0; y < bs; y++ {
			for x := 0; x < bs; x++ {
				var mx int32
				for dz := 0; dz < 4; dz++ {
					for dy := 0; dy < 4; dy++ {
						for dx := 0; dx < 4; dx++ {
							v := vol.Read(0, vat(x*4+dx, y*4+dy, z*4+dz))
							if v > mx {
								mx = v
							}
						}
					}
				}
				oct.Write(0, oat(x, y, z), mx)
				g.Compute(0, 70)
			}
		}
	}
	g.Barrier()
	g.MeasureStart()

	const tile = 8
	tiles := (imgSide / tile) * (imgSide / tile)
	for view := 0; view < 2; view++ {
		// Reset the tile counter (processor 0).
		counter.Write(0, 0, 0)
		g.Barrier()
		for {
			progress := false
			for p := 0; p < procs; p++ {
				g.Acquire(p, qlock)
				t := int(counter.Read(p, 0))
				if t < tiles {
					counter.Write(p, 0, int32(t+1))
				}
				g.Release(p, qlock)
				if t >= tiles {
					continue
				}
				progress = true
				volrendTile(g, p, t, view, n, bs, imgSide, tile, vol, oct, img, vat, oat)
			}
			if !progress {
				break
			}
		}
		g.Barrier()
	}

	// Self-check (untraced): the blob produced opaque pixels and all
	// opacities are within range.
	opaque := 0
	for i := 0; i < imgSide*imgSide; i++ {
		v := img.Peek(i)
		if v < 0 || v > 255 {
			panic(fmt.Sprintf("volrend: pixel %d out of range: %d", i, v))
		}
		if v > 0 {
			opaque++
		}
	}
	if opaque < imgSide*imgSide/8 {
		panic(fmt.Sprintf("volrend: only %d opaque pixels", opaque))
	}
	return g.Finish()
}

// volrendTile casts the rays of one tile front to back with octree
// skipping and early ray termination.
func volrendTile(g *Gen, p, t, view, n, bs, imgSide, tile int,
	vol, oct, img *I32, vat func(x, y, z int) int, oat func(x, y, z int) int) {

	tilesX := imgSide / tile
	tx, ty := (t%tilesX)*tile, (t/tilesX)*tile
	scale := n / imgSide
	if scale == 0 {
		scale = 1
	}
	for y := ty; y < ty+tile; y++ {
		for x := tx; x < tx+tile; x++ {
			vx, vy := (x*scale)%n, (y*scale)%n
			acc := int32(0)
			for z := 0; z < n && acc < 250; z += 4 {
				// Octree probe: skip the whole brick when empty.
				var mx int32
				if view == 0 {
					mx = oct.Read(p, oat(vx/4, vy/4, z/4))
				} else {
					mx = oct.Read(p, oat(z/4, vy/4, vx/4))
				}
				g.Compute(p, 6)
				if mx == 0 {
					continue
				}
				for dz := 0; dz < 4 && acc < 250; dz++ {
					var v int32
					if view == 0 {
						v = vol.Read(p, vat(vx, vy, z+dz))
					} else {
						v = vol.Read(p, vat(z+dz, vy, vx))
					}
					acc += v / 8
					g.Compute(p, 8)
				}
			}
			if acc > 255 {
				acc = 255
			}
			img.Write(p, y*imgSide+x, acc)
			g.Compute(p, 4)
		}
	}
}
