package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Cholesky models the SPLASH-2 sparse Cholesky factorization on a banded
// symmetric positive-definite matrix, factored by supernodes (panels of
// adjacent columns) with 2-D ownership: after a supernode's owner factors
// it, the owners of the supernodes inside its band update their panels
// against it (read-shared panel broadcasts, like the sparse supernodal
// right-looking algorithm). The factor is verified against the original
// matrix on sampled entries.
func Cholesky(procs, n int) *trace.Trace {
	const band = 32 // semi-bandwidth
	const snode = 8 // supernode width
	if n%snode != 0 || band%snode != 0 {
		panic(fmt.Sprintf("cholesky: n=%d/band=%d not multiples of supernode %d", n, band, snode))
	}
	g := NewGen("cholesky", procs)
	// Packed band storage: column j holds rows j..j+band at
	// a[j*(band+1) + (i-j)].
	a := g.F64("band-matrix", n*(band+1))
	at := func(i, j int) int { return j*(band+1) + (i - j) }
	inBand := func(i, j int) bool { return i >= j && i-j <= band && i < n }

	// Init by processor 0: random band, strongly diagonally dominant so
	// the matrix is SPD.
	orig := make([]float64, n*(band+1))
	for j := 0; j < n; j++ {
		for i := j; i <= j+band && i < n; i++ {
			v := g.rng.Float64() * 0.5
			if i == j {
				v += float64(band) * 2
			}
			orig[at(i, j)] = v
			a.Write(0, at(i, j), v)
			g.Compute(0, 2)
		}
	}
	g.Barrier()
	g.MeasureStart()

	ns := n / snode
	owner := func(s int) int { return s % procs }
	// Panel-ready synchronization is lock-based, as in the original's
	// task-queue execution: the owner factors supernode k under lk[k];
	// updaters touch lk[k] before reading the panel. A barrier every
	// few supernodes bounds the pipeline skew.
	panelLock := g.NewLocks("panel", ns)
	for k := 0; k < ns; k++ {
		// Factor supernode k: dense Cholesky of the panel's columns.
		p := owner(k)
		g.Acquire(p, panelLock[k])
		for jj := 0; jj < snode; jj++ {
			j := k*snode + jj
			// Internal updates from earlier columns of the supernode.
			for t := k * snode; t < j; t++ {
				if !inBand(j, t) {
					continue
				}
				ljt := a.Read(p, at(j, t))
				for i := j; i <= j+band && i < n && inBand(i, t); i++ {
					v := a.Read(p, at(i, j)) - a.Read(p, at(i, t))*ljt
					a.Write(p, at(i, j), v)
					g.Compute(p, 4)
				}
			}
			d := math.Sqrt(a.Read(p, at(j, j)))
			a.Write(p, at(j, j), d)
			for i := j + 1; i <= j+band && i < n; i++ {
				a.Write(p, at(i, j), a.Read(p, at(i, j))/d)
				g.Compute(p, 3)
			}
		}
		g.Release(p, panelLock[k])
		// Update the supernodes reached by k's band: their owners pass
		// through panel k's lock (task-ready check) and then read the
		// panel (broadcast) to update their own columns.
		for s := k + 1; s <= k+band/snode && s < ns; s++ {
			p := owner(s)
			g.Acquire(p, panelLock[k])
			g.Release(p, panelLock[k])
			for jj := 0; jj < snode; jj++ {
				j := s*snode + jj
				for t := k * snode; t < (k+1)*snode; t++ {
					if !inBand(j, t) {
						continue
					}
					ljt := a.Read(p, at(j, t))
					for i := j; i <= j+band && i < n && inBand(i, t); i++ {
						v := a.Read(p, at(i, j)) - a.Read(p, at(i, t))*ljt
						a.Write(p, at(i, j), v)
						g.Compute(p, 4)
					}
				}
			}
		}
		if k%8 == 7 || k == ns-1 {
			g.Barrier()
		}
	}

	// Self-check (untraced): (L L^T)[i][j] == orig[i][j] on samples.
	for s := 0; s < 16; s++ {
		j := g.rng.Intn(n)
		i := j + g.rng.Intn(band+1)
		if i >= n {
			i = n - 1
		}
		var v float64
		for t := 0; t <= j; t++ {
			if inBand(i, t) && inBand(j, t) {
				v += a.Peek(at(i, t)) * a.Peek(at(j, t))
			}
		}
		if math.Abs(v-orig[at(i, j)]) > 1e-6*(1+math.Abs(orig[at(i, j)])) {
			panic(fmt.Sprintf("cholesky: (LL^T)[%d][%d] = %g, want %g", i, j, v, orig[at(i, j)]))
		}
	}
	return g.Finish()
}
