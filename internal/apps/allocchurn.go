package apps

import (
	"fmt"

	"repro/internal/trace"
)

// AllocChurn replays a seeded malloc/free lifetime trace against a
// segregated-freelist heap model — the allocator-dominated traffic of
// Risco-Martín et al.'s memory-allocator studies. Four size classes (1,
// 2, 4 and 8 lines) each keep a central free list: a shared head cell, a
// next-pointer array and a block pool, guarded by one lock per class.
// Every processor runs an allocate/use/free loop with geometrically
// distributed object sizes and random lifetimes: an allocation pops the
// class's free list under its lock and stamps every line of the block; a
// free reads the stamp back (use-after-free detection for real) and
// pushes the block under the lock. The shared list heads migrate from
// processor to processor — the lock-protected migratory sharing pattern
// — while block payloads are mostly private. Heap consistency (no double
// free, no lost blocks, intact free lists) is verified at the end.
func AllocChurn(procs, opsPerProc, blocksPerClass int) *trace.Trace {
	g := NewGen("alloc-churn", procs)
	classLines := []int{1, 2, 4, 8}
	nclass := len(classLines)
	const lineInts = 16

	heads := g.I32("alloc-heads", nclass) // dense: heads share a line
	locks := g.NewLocks("alloc-class", nclass)
	nexts := make([]*I32, nclass)
	pools := make([]*I32, nclass)
	for c, lines := range classLines {
		nexts[c] = g.I32(fmt.Sprintf("alloc-freelist-%d", c), blocksPerClass)
		pools[c] = g.I32(fmt.Sprintf("alloc-pool-%d", c), blocksPerClass*lines*lineInts)
	}

	// Init (traced): processor p threads its chunk of every class's free
	// list; processor 0 links the chunks and publishes the heads.
	for p := 0; p < procs; p++ {
		for c := 0; c < nclass; c++ {
			lo, hi := Chunk(blocksPerClass, procs, p)
			for b := lo; b < hi-1; b++ {
				nexts[c].Write(p, b, int32(b+1))
			}
			g.Compute(p, hi-lo)
		}
	}
	for c := 0; c < nclass; c++ {
		for p := 0; p < procs-1; p++ {
			_, hi := Chunk(blocksPerClass, procs, p)
			nexts[c].Write(0, hi-1, int32(hi))
		}
		nexts[c].Write(0, blocksPerClass-1, -1)
		heads.Write(0, c, 0)
	}
	g.Barrier()
	g.MeasureStart()

	// Shadow state for verification: which blocks are live, and the
	// stamp written into each.
	type object struct {
		class, block int
		deadline     int
		stamp        int32
	}
	live := make([]map[int]int32, nclass) // class -> block -> stamp
	for c := range live {
		live[c] = make(map[int]int32)
	}
	frees, allocs := 0, 0

	pop := func(p, c int) int32 {
		g.Acquire(p, locks[c])
		h := heads.Read(p, c)
		if h >= 0 {
			nxt := nexts[c].Read(p, int(h))
			heads.Write(p, c, nxt)
		}
		g.Compute(p, 4)
		g.Release(p, locks[c])
		return h
	}
	push := func(p, c, b int) {
		g.Acquire(p, locks[c])
		h := heads.Read(p, c)
		nexts[c].Write(p, b, h)
		heads.Write(p, c, int32(b))
		g.Compute(p, 4)
		g.Release(p, locks[c])
	}
	freeObj := func(p int, o object) {
		// Read the stamp back from every line before releasing the
		// block: catches any aliasing bug in the model itself.
		for l := 0; l < classLines[o.class]; l++ {
			got := pools[o.class].Read(p, (o.block*classLines[o.class]+l)*lineInts)
			if got != o.stamp {
				panic(fmt.Sprintf("alloc-churn: class %d block %d line %d stamped %d, read %d",
					o.class, o.block, l, o.stamp, got))
			}
			g.Compute(p, 2)
		}
		if _, ok := live[o.class][o.block]; !ok {
			panic(fmt.Sprintf("alloc-churn: double free of class %d block %d", o.class, o.block))
		}
		delete(live[o.class], o.block)
		push(p, o.class, o.block)
		frees++
	}

	for p := 0; p < procs; p++ {
		var mine []object // this processor's live objects, oldest first
		for i := 0; i < opsPerProc; i++ {
			// Free everything whose lifetime expired.
			for len(mine) > 0 && mine[0].deadline <= i {
				freeObj(p, mine[0])
				mine = mine[1:]
			}
			// Geometric size classes: half the allocations are small.
			c := 0
			for c < nclass-1 && g.rng.Intn(2) == 0 {
				c++
			}
			b := pop(p, c)
			for b < 0 {
				// Class exhausted: free this processor's oldest object
				// (the forced-eviction path of a bounded heap) and retry.
				if len(mine) == 0 {
					panic(fmt.Sprintf("alloc-churn: class %d exhausted with no live objects on proc %d", c, p))
				}
				freeObj(p, mine[0])
				mine = mine[1:]
				b = pop(p, c)
			}
			if _, ok := live[c][int(b)]; ok {
				panic(fmt.Sprintf("alloc-churn: class %d block %d allocated twice", c, b))
			}
			stamp := int32(p<<16 | i)
			live[c][int(b)] = stamp
			for l := 0; l < classLines[c]; l++ {
				pools[c].Write(p, (int(b)*classLines[c]+l)*lineInts, stamp)
				g.Compute(p, 2)
			}
			mine = append(mine, object{class: c, block: int(b), deadline: i + 1 + g.rng.Intn(32), stamp: stamp})
			allocs++
		}
		// Drain at the end of the processor's run.
		for _, o := range mine {
			freeObj(p, o)
		}
	}
	g.Barrier()

	// Heap consistency (untraced): every free list is acyclic and, with
	// the live sets drained, holds exactly blocksPerClass blocks.
	if allocs != frees {
		panic(fmt.Sprintf("alloc-churn: %d allocations, %d frees", allocs, frees))
	}
	for c := 0; c < nclass; c++ {
		if n := len(live[c]); n != 0 {
			panic(fmt.Sprintf("alloc-churn: class %d ends with %d live blocks", c, n))
		}
		seen := make(map[int32]bool)
		for h := heads.Peek(c); h >= 0; h = nexts[c].Peek(int(h)) {
			if seen[h] {
				panic(fmt.Sprintf("alloc-churn: class %d free list cycles at block %d", c, h))
			}
			seen[h] = true
		}
		if len(seen) != blocksPerClass {
			panic(fmt.Sprintf("alloc-churn: class %d free list holds %d of %d blocks", c, len(seen), blocksPerClass))
		}
	}
	return g.Finish()
}
