package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Radiosity models the SPLASH-2 hierarchical radiosity kernel: patches
// with geometry and radiosity records, processed from per-processor task
// queues with stealing; each task gathers light from a set of interacting
// patches (visibility/form-factor reads scattered across the shared patch
// array), updates its patch, and may spawn refinement tasks. The pattern —
// irregular pointer-driven reads plus lock-protected queues — puts
// radiosity in the paper's conflict-sensitive group. Energy growth is
// verified.
func Radiosity(procs, patches int) *trace.Trace {
	const stride = 32 // 256 B per patch: geometry + radiosity record
	g := NewGen("radiosity", procs)
	pat := g.F64("patches", patches*stride)
	// Per-processor task queues: a shared ring of task ids plus head/tail
	// counters, each protected by a lock (stealing reads others' queues).
	qcap := patches
	queue := g.I32("task-queue", procs*qcap)
	qhead := g.I32("queue-head", procs*16) // one counter per line
	qtail := g.I32("queue-tail", procs*16)
	qlocks := g.NewLocks("queue", procs)

	// Interaction lists (generator-side; the original builds them during
	// the untimed BF-refinement setup): each patch interacts with a
	// local cluster plus a few far patches.
	inter := make([][]int, patches)
	for i := range inter {
		m := 8 + g.rng.Intn(8)
		inter[i] = make([]int, m)
		for k := range inter[i] {
			if k%3 == 0 {
				inter[i][k] = g.rng.Intn(patches) // far interaction
			} else {
				inter[i][k] = (i + 1 + g.rng.Intn(32)) % patches // nearby
			}
		}
	}
	// Init: processor 0 writes patch geometry and seeds emitters.
	for i := 0; i < patches; i++ {
		for f := 0; f < 12; f++ {
			pat.Write(0, i*stride+f, g.rng.Float64())
		}
		e := 0.0
		if i%64 == 0 {
			e = 10 // light sources
		}
		pat.Write(0, i*stride+12, e) // radiosity
		pat.Write(0, i*stride+13, e) // unshot energy
		g.Compute(0, 16)
	}
	// Seed the queues: patches dealt round-robin.
	for i := 0; i < patches; i++ {
		p := i % procs
		t := int(qtail.Peek(p * 16))
		queue.Write(0, p*qcap+t, int32(i))
		qtail.Write(0, p*16, int32(t+1))
	}
	g.Barrier()
	g.MeasureStart()

	// Two gathering iterations over every patch, task-queue driven with
	// round-robin stealing. The generator interleaves processors task by
	// task so queue contention is realistic.
	for round := 0; round < 2; round++ {
		active := procs
		idle := make([]bool, procs)
		for active > 0 {
			for p := 0; p < procs; p++ {
				if idle[p] {
					continue
				}
				task := radiosityPop(g, p, p, queue, qhead, qtail, qlocks, qcap)
				if task < 0 {
					// Steal from the next non-empty victim.
					stolen := -1
					for d := 1; d < procs; d++ {
						v := (p + d) % procs
						stolen = radiosityPop(g, p, v, queue, qhead, qtail, qlocks, qcap)
						if stolen >= 0 {
							break
						}
					}
					if stolen < 0 {
						idle[p] = true
						active--
						continue
					}
					task = stolen
				}
				radiosityGather(g, p, task, pat, inter, stride)
			}
		}
		// Refill for the next round and reset counters.
		g.Barrier()
		if round == 0 {
			for i := 0; i < patches; i++ {
				p := i % procs
				t := int(qtail.Read(p, p*16))
				queue.Write(p, p*qcap+(t%qcap), int32(i))
				qtail.Write(p, p*16, int32(t+1))
			}
		}
		g.Barrier()
	}

	// Self-check (untraced): gathering distributed energy beyond the
	// emitters.
	var total float64
	lit := 0
	for i := 0; i < patches; i++ {
		r := pat.Peek(i*stride + 12)
		if math.IsNaN(r) {
			panic("radiosity: NaN radiosity")
		}
		total += r
		if r > 0 {
			lit++
		}
	}
	if lit < patches/2 {
		panic(fmt.Sprintf("radiosity: only %d/%d patches lit", lit, patches))
	}
	return g.Finish()
}

// radiosityPop pops a task from victim v's queue on behalf of processor p;
// returns -1 when empty.
func radiosityPop(g *Gen, p, v int, queue, qhead, qtail *I32, qlocks []Lock, qcap int) int {
	g.Acquire(p, qlocks[v])
	h := qhead.Read(p, v*16)
	t := qtail.Read(p, v*16)
	if h >= t {
		g.Release(p, qlocks[v])
		return -1
	}
	task := queue.Read(p, v*qcap+int(h)%qcap)
	qhead.Write(p, v*16, h+1)
	g.Release(p, qlocks[v])
	g.Compute(p, 6)
	return int(task)
}

// radiosityGather performs one gathering task: read the interacting
// patches' records, compute form factors, update this patch.
func radiosityGather(g *Gen, p, i int, pat *F64, inter [][]int, stride int) {
	// Own geometry.
	var area float64
	for f := 0; f < 6; f++ {
		area += pat.Read(p, i*stride+f)
	}
	var gathered float64
	for _, j := range inter[i] {
		// Form factor: read the other patch's geometry and unshot energy.
		var ff float64
		for f := 0; f < 4; f++ {
			ff += pat.Read(p, j*stride+f)
		}
		ff = 1 / (1 + ff*ff)
		e := pat.Read(p, j*stride+13)
		gathered += ff * e * 0.1
		g.Compute(p, 25)
	}
	r := pat.Read(p, i*stride+12)
	pat.Write(p, i*stride+12, r+gathered)
	pat.Write(p, i*stride+13, gathered)
	g.Compute(p, 10)
}
