package apps

import (
	"testing"

	"repro/internal/trace"
)

// Every generator's compact stream must materialize to the exact record
// sequence a plain []Ref representation would hold, and re-packing that
// sequence must reproduce the stream — the compact encoding is lossless
// over the full production workload set, including the denormal records
// that spill to the side table (locks, wide payloads).
func TestCompactStreamsRoundTripAllApps(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			tr := a.Generate(8)
			refs := make([][]trace.Ref, len(tr.Streams))
			for p := range tr.Streams {
				refs[p] = tr.Streams[p].Refs()
				if len(refs[p]) != tr.Streams[p].Len() {
					t.Fatalf("proc %d: Refs() returned %d records, Len() says %d",
						p, len(refs[p]), tr.Streams[p].Len())
				}
			}
			back := trace.FromRefs(tr.Name, tr.WorkingSet, refs)
			if back.Procs != tr.Procs || back.WorkingSet != tr.WorkingSet {
				t.Fatalf("header drifted: %+v vs %+v", back, tr)
			}
			for p := range tr.Streams {
				orig, re := &tr.Streams[p], &back.Streams[p]
				if re.Len() != orig.Len() {
					t.Fatalf("proc %d: repacked %d records, want %d", p, re.Len(), orig.Len())
				}
				for i := 0; i < orig.Len(); i++ {
					if orig.At(i) != re.At(i) || orig.At(i) != refs[p][i] {
						t.Fatalf("proc %d record %d: orig %+v, repacked %+v, refs %+v",
							p, i, orig.At(i), re.At(i), refs[p][i])
					}
					if orig.Kind(i) != refs[p][i].Kind {
						t.Fatalf("proc %d record %d: Kind() %v, want %v",
							p, i, orig.Kind(i), refs[p][i].Kind)
					}
				}
			}
			// Summaries see the identical record sequence.
			if tr.Summarize() != back.Summarize() {
				t.Fatalf("summaries diverge: %+v vs %+v", tr.Summarize(), back.Summarize())
			}
		})
	}
}

// The compact form earns its keep: across the whole registry it must use
// well under half the memory of the boxed 32-byte []Ref representation
// (reads/writes/computes pack into 8 bytes; only denormal records spill).
func TestCompactStreamsActuallyCompact(t *testing.T) {
	var compact, boxed uint64
	for _, a := range All() {
		tr := a.Generate(8)
		compact += uint64(tr.MemBytes())
		for p := range tr.Streams {
			boxed += 32 * uint64(tr.Streams[p].Len())
		}
	}
	if compact*2 >= boxed {
		t.Fatalf("compact streams use %d bytes vs %d boxed — under 2x saving", compact, boxed)
	}
	t.Logf("registry traces: %d KiB compact vs %d KiB boxed (%.1fx)",
		compact/1024, boxed/1024, float64(boxed)/float64(compact))
}
