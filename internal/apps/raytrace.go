package apps

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Raytrace models the SPLASH-2 hierarchical ray tracer: a read-only scene
// (triangles plus a bounding-volume hierarchy) shared by everyone, image
// tiles dispatched from lock-protected work queues with stealing, and per
// ray an irregular pointer-chasing walk of the BVH. The big read-mostly
// scene replicates freely at low memory pressure and thrashes when
// replication space runs out — the paper's Figure 4 behaviour. The
// rendered image is verified to contain hits.
func Raytrace(procs, tris, imgSide int) *trace.Trace {
	const triStride = 10 // 9 vertex doubles + shade
	const nodeStride = 8 // bbox (6) + meta
	g := NewGen("raytrace", procs)
	tri := g.F64("triangles", tris*triStride)
	// BVH as implicit arrays: node bounding boxes, child indices and
	// leaf triangle ranges.
	maxNodes := 2 * tris
	nbox := g.F64("bvh-boxes", maxNodes*nodeStride)
	nmeta := g.I32("bvh-meta", maxNodes*4) // left, right, triLo, triHi
	img := g.I32("image", imgSide*imgSide)
	qcounter := g.I32("tile-counter", procs*16)
	qlocks := g.NewLocks("tile-queue", procs)

	// Build the scene (generator side), then write it via processor 0.
	type tcent struct {
		idx int
		c   [3]float64
	}
	cent := make([]tcent, tris)
	verts := make([][9]float64, tris)
	for i := 0; i < tris; i++ {
		var c [3]float64
		for d := 0; d < 3; d++ {
			c[d] = g.rng.Float64() * 10
		}
		for v := 0; v < 3; v++ {
			for d := 0; d < 3; d++ {
				verts[i][v*3+d] = c[d] + g.rng.NormFloat64()*0.15
			}
		}
		cent[i] = tcent{idx: i, c: c}
	}
	// Median-split BVH over centroids (built untraced, as scene loading
	// is untimed in the original; the *reads* during tracing are what
	// matter).
	type bnode struct {
		lo, hi      int // triangle range in the sorted order
		left, right int
		box         [6]float64
	}
	var nodes []bnode
	order := make([]int, tris)
	var build func(lo, hi, axis int) int
	build = func(lo, hi, axis int) int {
		id := len(nodes)
		nodes = append(nodes, bnode{lo: lo, hi: hi, left: -1, right: -1})
		sort.Slice(cent[lo:hi], func(a, b int) bool {
			return cent[lo+a].c[axis] < cent[lo+b].c[axis]
		})
		box := [6]float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1), math.Inf(-1)}
		for _, t := range cent[lo:hi] {
			for d := 0; d < 3; d++ {
				box[d] = math.Min(box[d], t.c[d]-0.3)
				box[3+d] = math.Max(box[3+d], t.c[d]+0.3)
			}
		}
		nodes[id].box = box
		if hi-lo > 4 {
			// Alternate x/y splits only: rays travel along z, so z
			// splits would never separate a ray from either child.
			mid := (lo + hi) / 2
			l := build(lo, mid, (axis+1)%2)
			r := build(mid, hi, (axis+1)%2)
			nodes[id].left, nodes[id].right = l, r
		}
		return id
	}
	build(0, tris, 0)
	for i, t := range cent {
		order[i] = t.idx
	}
	// Processor 0 writes the scene into shared memory (traced init).
	for i := 0; i < tris; i++ {
		src := order[i]
		for f := 0; f < 9; f++ {
			tri.Write(0, i*triStride+f, verts[src][f])
		}
		tri.Write(0, i*triStride+9, g.rng.Float64())
		g.Compute(0, 10)
	}
	for id, nd := range nodes {
		for f := 0; f < 6; f++ {
			nbox.Write(0, id*nodeStride+f, nd.box[f])
		}
		nmeta.Write(0, id*4+0, int32(nd.left))
		nmeta.Write(0, id*4+1, int32(nd.right))
		nmeta.Write(0, id*4+2, int32(nd.lo))
		nmeta.Write(0, id*4+3, int32(nd.hi))
		g.Compute(0, 8)
	}
	g.Barrier()
	g.MeasureStart()

	// Tile the image; per-processor counters dole out tiles, stealing
	// when a processor's share is exhausted.
	const tile = 8
	tilesPer := (imgSide / tile) * (imgSide / tile) / procs
	if tilesPer == 0 {
		// More processors than tiles: one tile per owner; owners past
		// the tile grid dole out off-image tiles that trace no rays.
		tilesPer = 1
	}
	for p := 0; p < procs; p++ {
		qcounter.Write(p, p*16, 0)
	}
	g.Barrier()

	hits := 0
	tileAt := func(owner, k int) int { return owner*tilesPer + k }
	for { // round-robin the processors over tile grabs
		progress := false
		for p := 0; p < procs; p++ {
			// Grab the next tile: own counter first, then steal.
			t := -1
			for d := 0; d < procs; d++ {
				v := (p + d) % procs
				g.Acquire(p, qlocks[v])
				k := int(qcounter.Read(p, v*16))
				if k < tilesPer {
					qcounter.Write(p, v*16, int32(k+1))
					t = tileAt(v, k)
				}
				g.Release(p, qlocks[v])
				if t >= 0 {
					break
				}
			}
			if t < 0 {
				continue
			}
			progress = true
			hits += raytraceTile(g, p, t, imgSide, tile, tri, nbox, nmeta, img, triStride, nodeStride)
		}
		if !progress {
			break
		}
	}
	g.Barrier()

	if hits == 0 {
		panic("raytrace: no ray hit the scene")
	}
	// Self-check (untraced): every pixel was written.
	for i := 0; i < imgSide*imgSide; i++ {
		if img.Peek(i) < 0 {
			panic(fmt.Sprintf("raytrace: pixel %d unwritten", i))
		}
	}
	return g.Finish()
}

// raytraceTile traces one tile's rays through the BVH and writes pixels;
// returns the number of leaf hits.
func raytraceTile(g *Gen, p, t, imgSide, tile int, tri, nbox *F64, nmeta, img *I32, triStride, nodeStride int) int {
	tilesX := imgSide / tile
	tx, ty := (t%tilesX)*tile, (t/tilesX)*tile
	hits := 0
	for y := ty; y < ty+tile && y < imgSide; y++ {
		for x := tx; x < tx+tile; x++ {
			// Orthographic ray through (x, y) along +z.
			ox := float64(x) / float64(imgSide) * 10
			oy := float64(y) / float64(imgSide) * 10
			shade := 0
			stack := []int{0}
			for len(stack) > 0 {
				nd := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				// Slab test on x/y bounds (read 4 of the 6 extents).
				x0 := nbox.Read(p, nd*nodeStride+0)
				y0 := nbox.Read(p, nd*nodeStride+1)
				x1 := nbox.Read(p, nd*nodeStride+3)
				y1 := nbox.Read(p, nd*nodeStride+4)
				g.Compute(p, 10)
				if ox < x0 || ox > x1 || oy < y0 || oy > y1 {
					continue
				}
				l := int(nmeta.Read(p, nd*4+0))
				r := int(nmeta.Read(p, nd*4+1))
				if l >= 0 {
					stack = append(stack, l, r)
					continue
				}
				lo := int(nmeta.Read(p, nd*4+2))
				hi := int(nmeta.Read(p, nd*4+3))
				for ti := lo; ti < hi; ti++ {
					// Cheap point-in-triangle-projection test.
					ax := tri.Read(p, ti*triStride+0)
					ay := tri.Read(p, ti*triStride+1)
					bx := tri.Read(p, ti*triStride+3)
					by := tri.Read(p, ti*triStride+4)
					g.Compute(p, 16)
					if math.Abs(ox-(ax+bx)/2) < 0.3 && math.Abs(oy-(ay+by)/2) < 0.3 {
						s := tri.Read(p, ti*triStride+9)
						shade += int(s*255) + 1
						hits++
					}
				}
			}
			img.Write(p, y*imgSide+x, int32(shade))
			g.Compute(p, 8)
		}
	}
	return hits
}
