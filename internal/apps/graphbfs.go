package apps

import (
	"fmt"

	"repro/internal/trace"
)

// GraphBFS is a level-synchronous breadth-first search over a seeded
// power-law graph — the irregular random-access pattern of graph
// analytics that the paper's regular SPLASH-2 set never exercises (Chen &
// Bader's Cell BE study shows exactly this access shape defeating
// software-managed locality). The graph is built by preferential
// attachment (so a few hub vertices concentrate most edges) and stored in
// compressed sparse row form; the search keeps the current and next
// frontiers as shared bitmaps. Each round, every processor scans its
// vertex chunk's frontier words, expands the set vertices' adjacency
// lists — reads that scatter across the whole CSR structure and the level
// array, with no spatial locality to exploit — and marks discovered
// vertices in the next bitmap. Levels are computed for real and verified
// against an untraced sequential BFS.
func GraphBFS(procs, vertices, degree int) *trace.Trace {
	g := NewGen("graph-bfs", procs)
	n := vertices

	// Build the graph untraced (the paper's runs would read it from a
	// file): preferential attachment with `degree` edges per new vertex.
	// Every new vertex links to an existing one, so the graph is
	// connected and BFS from the root reaches every vertex.
	adjSets := make([][]int32, n)
	endpoints := make([]int32, 0, 2*n*degree)
	endpoints = append(endpoints, 0)
	addEdge := func(a, b int32) {
		adjSets[a] = append(adjSets[a], b)
		adjSets[b] = append(adjSets[b], a)
		endpoints = append(endpoints, a, b)
	}
	for v := 1; v < n; v++ {
		for e := 0; e < degree; e++ {
			var t int32
			if e == 0 || g.rng.Intn(2) == 0 {
				t = endpoints[g.rng.Intn(len(endpoints))] // preferential
			} else {
				t = int32(g.rng.Intn(v)) // uniform
			}
			if int(t) == v {
				t = int32(v - 1)
			}
			addEdge(int32(v), t)
		}
	}

	// CSR arrays plus BFS state in the shared space.
	m := 0
	for _, a := range adjSets {
		m += len(a)
	}
	off := g.I32("bfs-offsets", n+1)
	adj := g.I32("bfs-edges", m)
	level := g.I32("bfs-levels", n)
	words := (n + 31) / 32
	cur := g.I32("bfs-frontier", words)
	next := g.I32("bfs-frontier-next", words)
	found := g.I32("bfs-found", procs)

	pos := 0
	for v := 0; v < n; v++ {
		off.Poke(v, int32(pos))
		for _, u := range adjSets[v] {
			adj.Poke(pos, u)
			pos++
		}
	}
	off.Poke(n, int32(pos))

	// Parallel init (traced): every processor clears its chunk of the
	// level array and both bitmaps; processor 0 seeds the root.
	for p := 0; p < procs; p++ {
		lo, hi := Chunk(n, procs, p)
		for v := lo; v < hi; v++ {
			level.Write(p, v, -1)
		}
		wlo, whi := Chunk(words, procs, p)
		for w := wlo; w < whi; w++ {
			cur.Write(p, w, 0)
			next.Write(p, w, 0)
		}
		g.Compute(p, 2*(hi-lo))
	}
	level.Write(0, 0, 0)
	cur.Write(0, 0, 1) // root vertex 0
	g.Barrier()
	g.MeasureStart()

	for lvl := 0; ; lvl++ {
		// Expand: scan this chunk's frontier words, relax set vertices.
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(n, procs, p)
			var cnt int32
			var w int32
			for v := lo; v < hi; v++ {
				if v == lo || v&31 == 0 {
					w = cur.Read(p, v>>5)
					g.Compute(p, 2)
				}
				if w&(1<<uint(v&31)) == 0 {
					continue
				}
				elo := int(off.Read(p, v))
				ehi := int(off.Read(p, v+1))
				for e := elo; e < ehi; e++ {
					u := int(adj.Read(p, e))
					g.Compute(p, 4)
					if level.Read(p, u) != -1 {
						continue
					}
					level.Write(p, u, int32(lvl+1))
					nw := next.Read(p, u>>5)
					next.Write(p, u>>5, nw|1<<uint(u&31))
					cnt++
				}
			}
			found.Write(p, p, cnt)
			g.Compute(p, 3)
		}
		g.Barrier()
		// Advance: clear the old frontier, swap bitmaps, and stop when
		// the new frontier is empty (every processor reads the counts —
		// the small all-to-all reduction of level-synchronous BFS).
		var total int32
		for p := 0; p < procs; p++ {
			for q := 0; q < procs; q++ {
				total += found.Read(p, q)
				g.Compute(p, 1)
			}
			wlo, whi := Chunk(words, procs, p)
			for w := wlo; w < whi; w++ {
				cur.Write(p, w, 0)
			}
		}
		total /= int32(procs) // every proc summed the same counts
		g.Barrier()
		if total == 0 {
			break
		}
		cur, next = next, cur
	}
	g.Barrier()

	// Self-check (untraced): levels match a sequential BFS over the same
	// adjacency structure.
	want := make([]int32, n)
	for v := range want {
		want[v] = -1
	}
	want[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adjSets[v] {
			if want[u] == -1 {
				want[u] = want[v] + 1
				queue = append(queue, u)
			}
		}
	}
	for v := 0; v < n; v++ {
		if got := level.Peek(v); got != want[v] {
			panic(fmt.Sprintf("graph-bfs: vertex %d level %d, sequential BFS says %d", v, got, want[v]))
		}
		if want[v] == -1 {
			panic(fmt.Sprintf("graph-bfs: vertex %d unreachable in a connected graph", v))
		}
	}
	return g.Finish()
}
