package apps

import (
	"reflect"
	"testing"

	"repro/internal/addrspace"
)

func TestChunk(t *testing.T) {
	// Chunks partition [0,n) contiguously.
	for _, n := range []int{0, 1, 15, 16, 17, 100} {
		prev := 0
		total := 0
		for p := 0; p < 16; p++ {
			lo, hi := Chunk(n, 16, p)
			if lo != prev {
				t.Fatalf("n=%d p=%d: lo=%d, want %d", n, p, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d p=%d: hi<lo", n, p)
			}
			total += hi - lo
			prev = hi
		}
		if total != n || prev != n {
			t.Fatalf("n=%d: chunks cover %d", n, total)
		}
	}
}

// Traces are fully deterministic: generating twice yields identical
// streams.
func TestDeterministicGeneration(t *testing.T) {
	for _, name := range []string{"fft", "radix", "water-sp", "graph-bfs", "pchase", "alloc-churn"} {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := app.Generate(16)
		b := app.Generate(16)
		if a.WorkingSet != b.WorkingSet {
			t.Fatalf("%s: working sets differ", name)
		}
		for p := range a.Streams {
			if !reflect.DeepEqual(a.Streams[p], b.Streams[p]) {
				t.Fatalf("%s: proc %d streams differ", name, p)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("radix"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Registry) != 14 {
		t.Fatalf("Table 1 has 14 applications, registry has %d", len(Registry))
	}
	fig3 := Group(GroupFig3)
	fig4 := Group(GroupFig4)
	if len(fig3) != 8 || len(fig4) != 6 {
		t.Fatalf("paper groups are 8+6, got %d+%d", len(fig3), len(fig4))
	}
	names := map[string]bool{}
	for _, a := range Registry {
		if names[a.Name] {
			t.Fatalf("duplicate name %s", a.Name)
		}
		names[a.Name] = true
		if a.Title == "" || a.Problem == "" || a.PaperProblem == "" || a.Generate == nil {
			t.Fatalf("%s: incomplete registry entry", a.Name)
		}
	}
	if len(SortedNames()) != 14 {
		t.Fatal("SortedNames wrong")
	}
}

// Kernel-level checks at reduced sizes — every kernel self-verifies its
// computation at generation time, so Generate not panicking is the
// assertion; these also exercise non-default parameters.
func TestKernelsAtSmallSizes(t *testing.T) {
	t.Run("fft-small", func(t *testing.T) { FFT(4, 256) })
	t.Run("fft-tiny", func(t *testing.T) { FFT(2, 16) })
	t.Run("radix-small", func(t *testing.T) { Radix(4, 1024, 16) })
	t.Run("lu-small", func(t *testing.T) { LU(4, 32, 8, false) })
	t.Run("lu-contig-small", func(t *testing.T) { LU(4, 32, 8, true) })
	t.Run("ocean-small", func(t *testing.T) { Ocean(4, 32, false) })
	t.Run("ocean-contig-small", func(t *testing.T) { Ocean(4, 32, true) })
	t.Run("water-n2-small", func(t *testing.T) { WaterN2(4, 32, 1) })
	t.Run("water-sp-small", func(t *testing.T) { WaterSp(4, 64, 1) })
	t.Run("cholesky-small", func(t *testing.T) { Cholesky(4, 64) })
	t.Run("barnes-small", func(t *testing.T) { Barnes(4, 64, 1) })
	t.Run("fmm-small", func(t *testing.T) { FMM(4, 128, 2) })
	t.Run("radiosity-small", func(t *testing.T) { Radiosity(4, 256) })
	t.Run("raytrace-small", func(t *testing.T) { Raytrace(4, 128, 32) })
	t.Run("volrend-small", func(t *testing.T) { Volrend(4, 16, 16) })
	t.Run("graph-bfs-small", func(t *testing.T) { GraphBFS(4, 256, 4) })
	t.Run("pchase-sequential", func(t *testing.T) { PChase(4, 128, 1) })
	t.Run("pchase-random", func(t *testing.T) { PChase(4, 128, 128) })
	t.Run("alloc-churn-small", func(t *testing.T) { AllocChurn(4, 64, 32) })
}

func TestKernelBadParamsPanic(t *testing.T) {
	cases := map[string]func(){
		"fft-not-square":  func() { FFT(4, 24) },
		"radix-not-pow2":  func() { Radix(4, 100, 10) },
		"lu-bad-blocks":   func() { LU(4, 30, 8, false) },
		"cholesky-bad-sn": func() { Cholesky(4, 30) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// The generator framework: arrays record references at the right
// addresses and back real data.
func TestGenArrays(t *testing.T) {
	g := NewGen("x", 2)
	f := g.F64("f", 10)
	i := g.I32("i", 20)
	f.Write(0, 3, 2.5)
	if got := f.Read(1, 3); got != 2.5 {
		t.Fatalf("F64 read %v", got)
	}
	i.Write(0, 7, -9)
	if got := i.Read(1, 7); got != -9 {
		t.Fatalf("I32 read %v", got)
	}
	if f.Addr(1)-f.Addr(0) != 8 || i.Addr(1)-i.Addr(0) != 4 {
		t.Fatal("element strides wrong")
	}
	if f.Len() != 10 || i.Len() != 20 {
		t.Fatal("lengths wrong")
	}
	f.Poke(4, 1.5)
	if f.Peek(4) != 1.5 {
		t.Fatal("Poke/Peek broken")
	}
	g.MeasureStart()
	tr := g.Finish()
	s := tr.Summarize()
	if s.Reads != 2 || s.Writes != 2 {
		t.Fatalf("summary %+v", s)
	}
	// Arrays live on separate pages.
	if f.Addr(0)/addrspace.PageSize == i.Addr(0)/addrspace.PageSize {
		t.Fatal("distinct arrays must not share pages")
	}
}

func TestGenLocks(t *testing.T) {
	g := NewGen("x", 2)
	lk := g.NewLock("a")
	lks := g.NewLocks("b", 3)
	ids := map[uint32]bool{lk.id: true}
	for _, l := range lks {
		if ids[l.id] {
			t.Fatal("duplicate lock id")
		}
		ids[l.id] = true
	}
	// Locks sit on distinct lines.
	if addrspace.LineOf(lks[0].addr) == addrspace.LineOf(lks[1].addr) {
		t.Fatal("locks share a line")
	}
	g.Acquire(0, lk)
	g.Release(0, lk)
	g.MeasureStart()
	tr := g.Finish()
	if tr.Summarize().Acquires != 1 {
		t.Fatal("acquire not recorded")
	}
}

func TestInstrNS(t *testing.T) {
	if InstrNS(4) <= 0 {
		t.Fatal("InstrNS must be positive")
	}
}
