package apps

import (
	"testing"

	"repro/internal/trace"
)

func TestMicroDispatch(t *testing.T) {
	for _, name := range MicroNames() {
		tr := Micro(name, 8, 16, 2)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := tr.Summarize()
		if s.Reads == 0 && s.Writes == 0 {
			t.Fatalf("%s: empty trace", name)
		}
	}
}

func TestMicroUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Micro("micro-nope", 8, 16, 2)
}

// The private workload has no cross-processor sharing in its measured
// section; read-shared has everything shared.
func TestMicroSharingExtremes(t *testing.T) {
	priv := MicroPrivate(8, 16, 2).Summarize()
	if priv.SharedLines != 0 {
		t.Fatalf("private workload shares %d lines", priv.SharedLines)
	}
	shared := MicroReadShared(8, 16, 2).Summarize()
	if shared.SharedLines < 16 {
		t.Fatalf("read-shared workload shares only %d lines", shared.SharedLines)
	}
}

// Migratory: every round the record's writer changes, so each processor
// both reads and writes every record line.
func TestMicroMigratoryBouncing(t *testing.T) {
	tr := MicroMigratory(4, 8, 1)
	for p := 0; p < 4; p++ {
		reads, writes := 0, 0
		seen := false
		for _, r := range tr.Streams[p].Refs() {
			if r.Kind == trace.MeasureStart {
				seen = true
			}
			if !seen {
				continue
			}
			switch r.Kind {
			case trace.Read:
				reads++
			case trace.Write:
				writes++
			}
		}
		if reads < 8*8 || writes < 8*8 {
			t.Fatalf("proc %d: %d reads / %d writes, want full record sweeps", p, reads, writes)
		}
	}
}
