package apps

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/trace"
)

// measured returns only the references inside the measured section of one
// processor's stream.
func measured(st []trace.Ref) []trace.Ref {
	for i, r := range st {
		if r.Kind == trace.MeasureStart {
			return st[i+1:]
		}
	}
	return nil
}

// writersByLine maps each line to the bitmask of processors that write it
// in the measured section.
func writersByLine(tr *trace.Trace) map[addrspace.Line]uint32 {
	w := make(map[addrspace.Line]uint32)
	for p := range tr.Streams {
		for _, r := range measured(tr.Streams[p].Refs()) {
			if r.Kind == trace.Write {
				w[addrspace.LineOf(r.Addr)] |= 1 << uint(p)
			}
		}
	}
	return w
}

// readersOfOthersWrites counts, per processor, how many distinct lines it
// reads that some *other* processor wrote — the communication degree.
func readersOfOthersWrites(tr *trace.Trace) []int {
	writers := writersByLine(tr)
	out := make([]int, tr.Procs)
	for p := range tr.Streams {
		seen := map[addrspace.Line]bool{}
		for _, r := range measured(tr.Streams[p].Refs()) {
			if r.Kind != trace.Read {
				continue
			}
			l := addrspace.LineOf(r.Addr)
			if seen[l] {
				continue
			}
			if w := writers[l]; w&^(1<<uint(p)) != 0 {
				seen[l] = true
			}
		}
		out[p] = len(seen)
	}
	return out
}

// FFT's transposes are all-to-all: every processor reads lines written by
// many other processors.
func TestFFTAllToAll(t *testing.T) {
	tr := FFT(16, 1024)
	comm := readersOfOthersWrites(tr)
	for p, n := range comm {
		if n < 16 {
			t.Fatalf("proc %d communicates over only %d lines — no all-to-all", p, n)
		}
	}
}

// Radix's permutation scatters every processor's writes across most of
// the destination array: writes from one processor span many pages.
func TestRadixScatteredWrites(t *testing.T) {
	tr := Radix(16, 4096, 64)
	for p := 0; p < tr.Procs; p++ {
		pages := map[uint64]bool{}
		for _, r := range measured(tr.Streams[p].Refs()) {
			if r.Kind == trace.Write {
				pages[addrspace.LineOf(r.Addr).Page()] = true
			}
		}
		if len(pages) < 4 {
			t.Fatalf("proc %d writes only %d pages — permutation not scattered", p, len(pages))
		}
	}
}

// Every stream's lock operations are balanced and properly paired: each
// release matches the processor's most recent unreleased acquire.
func TestLockPairingAllApps(t *testing.T) {
	for _, app := range []string{"water-n2", "water-sp", "radiosity", "barnes", "volrend", "raytrace", "ocean-c", "cholesky"} {
		a, err := ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		tr := a.Generate(16)
		for p := 0; p < tr.Procs; p++ {
			var stack []uint32
			for i, r := range tr.Streams[p].Refs() {
				switch r.Kind {
				case trace.Acquire:
					stack = append(stack, r.ID)
				case trace.Release:
					if len(stack) == 0 {
						t.Fatalf("%s proc %d ref %d: release without acquire", app, p, i)
					}
					if stack[len(stack)-1] != r.ID {
						t.Fatalf("%s proc %d ref %d: release %d, holds %d (not LIFO)",
							app, p, i, r.ID, stack[len(stack)-1])
					}
					stack = stack[:len(stack)-1]
				}
			}
			if len(stack) != 0 {
				t.Fatalf("%s proc %d: %d unreleased locks", app, p, len(stack))
			}
		}
	}
}

// The contiguous and non-contiguous variants differ only in layout: same
// operation counts, (largely) different addresses.
func TestLayoutVariantsSameWork(t *testing.T) {
	for _, pair := range [][2]*trace.Trace{
		{LU(16, 64, 16, true), LU(16, 64, 16, false)},
		{Ocean(16, 64, true), Ocean(16, 64, false)},
	} {
		c, n := pair[0].Summarize(), pair[1].Summarize()
		if c.Reads != n.Reads || c.Writes != n.Writes || c.Barriers != n.Barriers {
			t.Fatalf("layout variants diverge in work: %+v vs %+v", c, n)
		}
	}
}

// Water-spatial has bounded communication (cutoff): each processor reads
// from strictly fewer other-processor lines than in the all-pairs code at
// the same molecule count.
func TestWaterSpatialLocality(t *testing.T) {
	n2 := WaterN2(16, 128, 1)
	sp := WaterSp(16, 128, 1)
	cn2 := readersOfOthersWrites(n2)
	csp := readersOfOthersWrites(sp)
	var sumN2, sumSp int
	for p := range cn2 {
		sumN2 += cn2[p]
		sumSp += csp[p]
	}
	if sumSp >= sumN2 {
		t.Fatalf("spatial water communicates more than n^2 (%d vs %d)", sumSp, sumN2)
	}
}

// Barnes' tree is read-shared: during the force phase, tree cell lines
// are read by many processors.
func TestBarnesReadSharedTree(t *testing.T) {
	tr := Barnes(16, 256, 1)
	readers := map[addrspace.Line]uint32{}
	for p := range tr.Streams {
		for _, r := range measured(tr.Streams[p].Refs()) {
			if r.Kind == trace.Read {
				readers[addrspace.LineOf(r.Addr)] |= 1 << uint(p)
			}
		}
	}
	wide := 0
	for _, mask := range readers {
		n := 0
		for m := mask; m != 0; m &= m - 1 {
			n++
		}
		if n >= 12 {
			wide++
		}
	}
	if wide < 16 {
		t.Fatalf("only %d lines are read by 12+ processors — tree not read-shared", wide)
	}
}

// Private per-processor buffers really are private: water's force
// accumulators are touched by exactly one processor.
func TestWaterPrivateAccumulators(t *testing.T) {
	tr := WaterN2(8, 64, 1)
	touched := map[uint64]uint32{} // page -> proc mask
	for p := range tr.Streams {
		for _, r := range tr.Streams[p].Refs() {
			if r.Kind == trace.Read || r.Kind == trace.Write {
				touched[addrspace.LineOf(r.Addr).Page()] |= 1 << uint(p)
			}
		}
	}
	private := 0
	for _, mask := range touched {
		if mask&(mask-1) == 0 {
			private++
		}
	}
	if private < 8 {
		t.Fatalf("only %d private pages — per-processor accumulators are not private", private)
	}
}
