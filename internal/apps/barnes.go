package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Body and cell record layout (16 f64 = 128 B each, two cache lines).
const (
	bodyStride = 16
	bodyPos    = 0 // 3 doubles
	bodyVel    = 3 // 3 doubles
	bodyAcc    = 6 // 3 doubles
	bodyMass   = 9

	cellStride = 16
	cellCenter = 0 // 3 doubles: geometric center
	cellHalf   = 3 // half-width
	cellCOM    = 4 // 3 doubles: center of mass
	cellMass   = 7
)

// Barnes is the SPLASH-2 Barnes-Hut N-body kernel: per step the octree is
// rebuilt in parallel under per-cell locks, centers of mass are computed
// level by level, and every processor computes forces for its bodies by
// traversing the shared tree with the opening criterion — the irregular,
// pointer-chasing, read-shared pattern that puts Barnes in the paper's
// conflict-sensitive group. Mass conservation at the root is verified.
func Barnes(procs, nbody, steps int) *trace.Trace {
	g := NewGen("barnes", procs)
	maxCells := 4 * nbody
	bodies := g.F64("bodies", nbody*bodyStride)
	cells := g.F64("cells", maxCells*cellStride)
	// children[c*8+o]: 0 empty, k>0 cell k-1, k<0 body -k-1.
	children := g.I32("children", maxCells*8)
	cellLocks := g.NewLocks("cell", 512) // locks hash over cells
	allocLock := g.NewLock("cell-alloc")
	nextCell := g.I32("next-cell", 16)

	lockOf := func(c int) Lock { return cellLocks[c%len(cellLocks)] }
	bAt := func(b, f int) int { return b*bodyStride + f }
	cAt := func(c, f int) int { return c*cellStride + f }

	// Plummer-ish clustered initial conditions, written by processor 0.
	var totalMass float64
	for b := 0; b < nbody; b++ {
		r := 1.0 / (math.Sqrt(math.Pow(g.rng.Float64()*0.9+1e-3, -2.0/3.0)-1) + 0.5)
		for d := 0; d < 3; d++ {
			bodies.Write(0, bAt(b, bodyPos+d), g.rng.NormFloat64()*r)
			bodies.Write(0, bAt(b, bodyVel+d), g.rng.NormFloat64()*0.05)
		}
		m := 1.0 / float64(nbody)
		bodies.Write(0, bAt(b, bodyMass), m)
		totalMass += m
		g.Compute(0, 30)
	}
	g.Barrier()
	g.MeasureStart()

	const theta = 0.9
	const dt = 0.05
	for step := 0; step < steps; step++ {
		// --- Tree build (parallel, per-cell locks) ---
		// Processor 0 resets the root; a real run reuses free lists.
		for c := 0; c < 8; c++ {
			children.Write(0, c, 0)
		}
		rootHalf := 16.0
		cells.Write(0, cAt(0, cellHalf), rootHalf)
		for d := 0; d < 3; d++ {
			cells.Write(0, cAt(0, cellCenter+d), 0)
		}
		nextCell.Write(0, 0, 1)
		g.Barrier()

		cellDepth := []int{0} // generator-side depth bookkeeping
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(nbody, procs, p)
			for b := lo; b < hi; b++ {
				barnesInsert(g, p, b, bodies, cells, children, nextCell,
					lockOf, allocLock, &cellDepth, maxCells)
			}
		}
		g.Barrier()

		// --- Centers of mass, deepest level first ---
		nc := int(nextCell.Peek(0))
		maxDepth := 0
		for _, d := range cellDepth {
			if d > maxDepth {
				maxDepth = d
			}
		}
		for depth := maxDepth; depth >= 0; depth-- {
			for c := 0; c < nc; c++ {
				if cellDepth[c] != depth {
					continue
				}
				p := c % procs
				var com [3]float64
				var mass float64
				for o := 0; o < 8; o++ {
					ch := children.Read(p, c*8+o)
					switch {
					case ch == 0:
					case ch > 0:
						sub := int(ch) - 1
						m := cells.Read(p, cAt(sub, cellMass))
						for d := 0; d < 3; d++ {
							com[d] += m * cells.Read(p, cAt(sub, cellCOM+d))
						}
						mass += m
					default:
						bd := int(-ch) - 1
						m := bodies.Read(p, bAt(bd, bodyMass))
						for d := 0; d < 3; d++ {
							com[d] += m * bodies.Read(p, bAt(bd, bodyPos+d))
						}
						mass += m
					}
					g.Compute(p, 8)
				}
				if mass > 0 {
					for d := 0; d < 3; d++ {
						cells.Write(p, cAt(c, cellCOM+d), com[d]/mass)
					}
				}
				cells.Write(p, cAt(c, cellMass), mass)
			}
			g.Barrier()
		}

		// --- Force computation: tree walk per body ---
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(nbody, procs, p)
			for b := lo; b < hi; b++ {
				var pos [3]float64
				for d := 0; d < 3; d++ {
					pos[d] = bodies.Read(p, bAt(b, bodyPos+d))
				}
				var acc [3]float64
				stack := []int{0}
				for len(stack) > 0 {
					c := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					half := cells.Read(p, cAt(c, cellHalf))
					m := cells.Read(p, cAt(c, cellMass))
					var dv [3]float64
					var r2 float64
					for d := 0; d < 3; d++ {
						dv[d] = cells.Read(p, cAt(c, cellCOM+d)) - pos[d]
						r2 += dv[d] * dv[d]
					}
					g.Compute(p, 12)
					if m == 0 {
						continue
					}
					if (2*half)*(2*half) < theta*theta*r2 {
						inv := m / math.Pow(r2+0.01, 1.5)
						for d := 0; d < 3; d++ {
							acc[d] += dv[d] * inv
						}
						g.Compute(p, 15)
						continue
					}
					for o := 0; o < 8; o++ {
						ch := children.Read(p, c*8+o)
						if ch > 0 {
							stack = append(stack, int(ch)-1)
						} else if ch < 0 {
							bd := int(-ch) - 1
							if bd == b {
								continue
							}
							var r2b float64
							var db [3]float64
							for d := 0; d < 3; d++ {
								db[d] = bodies.Read(p, bAt(bd, bodyPos+d)) - pos[d]
								r2b += db[d] * db[d]
							}
							mb := bodies.Read(p, bAt(bd, bodyMass))
							inv := mb / math.Pow(r2b+0.01, 1.5)
							for d := 0; d < 3; d++ {
								acc[d] += db[d] * inv
							}
							g.Compute(p, 20)
						}
					}
				}
				for d := 0; d < 3; d++ {
					bodies.Write(p, bAt(b, bodyAcc+d), acc[d])
				}
			}
		}
		g.Barrier()

		// --- Advance (local) ---
		for p := 0; p < procs; p++ {
			lo, hi := Chunk(nbody, procs, p)
			for b := lo; b < hi; b++ {
				for d := 0; d < 3; d++ {
					v := bodies.Read(p, bAt(b, bodyVel+d)) + dt*bodies.Read(p, bAt(b, bodyAcc+d))
					bodies.Write(p, bAt(b, bodyVel+d), v)
					x := bodies.Read(p, bAt(b, bodyPos+d)) + dt*v
					// Keep bodies inside the root box.
					if x > 15 {
						x = 15
					} else if x < -15 {
						x = -15
					}
					bodies.Write(p, bAt(b, bodyPos+d), x)
					g.Compute(p, 8)
				}
			}
		}
		g.Barrier()

		// Self-check (untraced): root mass equals total body mass.
		if rm := cells.Peek(cAt(0, cellMass)); math.Abs(rm-totalMass) > 1e-9*totalMass+1e-12 {
			panic(fmt.Sprintf("barnes: root mass %g, want %g", rm, totalMass))
		}
	}
	return g.Finish()
}

// barnesInsert inserts body b into the octree under per-cell locks,
// splitting leaves as needed (the standard Barnes-Hut loading phase).
func barnesInsert(g *Gen, p, b int, bodies, cells *F64, children *I32,
	nextCell *I32, lockOf func(int) Lock, allocLock Lock,
	cellDepth *[]int, maxCells int) {

	var pos [3]float64
	for d := 0; d < 3; d++ {
		pos[d] = bodies.Read(p, b*bodyStride+bodyPos+d)
	}
	cur := 0
	for {
		lk := lockOf(cur)
		g.Acquire(p, lk)
		oct, center, half := barnesOctant(g, p, cur, pos, cells)
		ch := children.Read(p, cur*8+oct)
		switch {
		case ch == 0:
			children.Write(p, cur*8+oct, int32(-(b + 1)))
			g.Release(p, lk)
			return
		case ch > 0:
			g.Release(p, lk)
			cur = int(ch) - 1
		default:
			// Leaf collision: split into a subcell holding the old body,
			// then retry from the subcell.
			old := int(-ch) - 1
			g.Acquire(p, allocLock)
			nc := int(nextCell.Read(p, 0))
			if nc >= maxCells {
				panic("barnes: cell arena exhausted")
			}
			nextCell.Write(p, 0, int32(nc+1))
			g.Release(p, allocLock)
			for len(*cellDepth) <= nc {
				*cellDepth = append(*cellDepth, 0)
			}
			(*cellDepth)[nc] = (*cellDepth)[cur] + 1
			if (*cellDepth)[nc] > 64 {
				panic("barnes: coincident bodies (tree too deep)")
			}
			// New subcell geometry: center derived from the parent octant.
			h2 := half / 2
			cells.Write(p, nc*cellStride+cellHalf, h2)
			for d := 0; d < 3; d++ {
				off := -h2
				if oct&(1<<uint(d)) != 0 {
					off = h2
				}
				cells.Write(p, nc*cellStride+cellCenter+d, center[d]+off)
			}
			for o := 0; o < 8; o++ {
				children.Write(p, nc*8+o, 0)
			}
			// Move the old body into the subcell.
			var oldPos [3]float64
			for d := 0; d < 3; d++ {
				oldPos[d] = bodies.Read(p, old*bodyStride+bodyPos+d)
			}
			oldOct := 0
			for d := 0; d < 3; d++ {
				if oldPos[d] > cells.Peek(nc*cellStride+cellCenter+d) {
					oldOct |= 1 << uint(d)
				}
			}
			children.Write(p, nc*8+oldOct, int32(-(old + 1)))
			children.Write(p, cur*8+oct, int32(nc+1))
			g.Release(p, lk)
			cur = nc
		}
		g.Compute(p, 10)
	}
}

// barnesOctant reads the cell geometry and picks the octant for pos.
func barnesOctant(g *Gen, p, c int, pos [3]float64, cells *F64) (int, [3]float64, float64) {
	var center [3]float64
	oct := 0
	for d := 0; d < 3; d++ {
		center[d] = cells.Read(p, c*cellStride+cellCenter+d)
		if pos[d] > center[d] {
			oct |= 1 << uint(d)
		}
	}
	half := cells.Read(p, c*cellStride+cellHalf)
	g.Compute(p, 8)
	return oct, center, half
}
