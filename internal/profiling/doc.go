// Package profiling wires the standard pprof CPU and heap profilers to
// command-line flags. It is shared by the cmd/ binaries so every tool
// accepts the same -cpuprofile/-memprofile pair.
package profiling
