package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (if non-empty). The stop function is safe to call exactly once,
// typically via defer; profile-write failures are reported to stderr
// because deferred calls cannot return errors.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling: memprofile:", err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: memprofile:", err)
			}
		}
	}, nil
}
