package addrspace

import (
	"math/rand"
	"testing"
)

// TestDivMatchesModulo holds fastmod against the hardware `%` across the
// divisors the caches actually use (odd set counts), powers of two,
// boundary dividends and random 32-bit operands, plus the >= 2^32
// fallback path.
func TestDivMatchesModulo(t *testing.T) {
	divisors := []int{1, 2, 3, 7, 13, 16, 61, 64, 127, 509, 1021, 4093, 65536, 1 << 20, (1 << 31) - 1}
	dividends := []uint64{0, 1, 2, 61, 1 << 16, 1<<32 - 1, 1 << 32, 1<<40 + 12345, ^uint64(0)}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 64; i++ {
		dividends = append(dividends, uint64(rng.Uint32()))
	}
	for _, d := range divisors {
		dv := NewDiv(d)
		for _, n := range dividends {
			if got, want := dv.Mod(n), int(n%uint64(d)); got != want {
				t.Fatalf("Mod(%d) with d=%d: got %d, want %d", n, d, got, want)
			}
		}
	}
}

func TestDivRejectsNonPositive(t *testing.T) {
	for _, d := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDiv(%d) must panic", d)
				}
			}()
			NewDiv(d)
		}()
	}
}

// SetIndexDiv must agree with SetIndex for every line/set-count pair.
func TestSetIndexDivMatchesSetIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sets := range []int{1, 7, 61, 127, 1021} {
		dv := NewDiv(sets)
		for i := 0; i < 200; i++ {
			l := Line(rng.Uint32())
			if got, want := l.SetIndexDiv(dv), l.SetIndex(sets); got != want {
				t.Fatalf("line %#x sets %d: SetIndexDiv %d, SetIndex %d", uint64(l), sets, got, want)
			}
		}
	}
}
