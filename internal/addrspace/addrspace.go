package addrspace

import "fmt"

// Geometry constants shared by the whole machine model (paper Section 3).
const (
	// LineSize is the cache line size in bytes.
	LineSize = 64
	// PageSize is the data page size in bytes.
	PageSize = 4096
	// LinesPerPage is the number of cache lines per page.
	LinesPerPage = PageSize / LineSize
)

// Addr is a simulated physical byte address.
type Addr uint64

// Line is a cache-line identifier (Addr / LineSize).
type Line uint64

// LineOf returns the line containing a.
func LineOf(a Addr) Line { return Line(a / LineSize) }

// Base returns the first byte address of the line.
func (l Line) Base() Addr { return Addr(l) * LineSize }

// Page returns the page number containing the line.
func (l Line) Page() uint64 { return uint64(l) / LinesPerPage }

// SetIndex maps the line onto one of nsets cache sets. The attraction
// memories in the paper have "odd" (non-power-of-two) sizes because they
// are derived from the application working set and the memory pressure,
// so indexing is plain modulo rather than bit selection.
func (l Line) SetIndex(nsets int) int {
	if nsets <= 0 {
		panic("addrspace: non-positive set count")
	}
	return int(uint64(l) % uint64(nsets))
}

// Segment describes one named allocation in the space.
type Segment struct {
	Name string
	Base Addr
	Size uint64
}

// End returns the first address past the segment.
func (s Segment) End() Addr { return s.Base + Addr(s.Size) }

// Space is a simple bump allocator over the simulated physical space.
// Allocations are page-aligned so distinct data structures never share a
// page, mirroring separate OS allocations; elements within a structure
// share lines exactly as the element layout dictates, which is what
// produces (or avoids) false sharing in the workloads.
type Space struct {
	next     Addr
	segments []Segment
}

// New returns an empty address space. The space deliberately skips page 0
// so that address 0 is never a valid data address.
func New() *Space {
	return &Space{next: PageSize}
}

// Alloc reserves size bytes under the given diagnostic name and returns
// the base address. The allocation is rounded up to whole pages.
func (s *Space) Alloc(name string, size uint64) Addr {
	if size == 0 {
		panic(fmt.Sprintf("addrspace: zero-size allocation %q", name))
	}
	base := s.next
	pages := (size + PageSize - 1) / PageSize
	s.next += Addr(pages * PageSize)
	s.segments = append(s.segments, Segment{Name: name, Base: base, Size: size})
	return base
}

// Segments returns the allocations made so far, in allocation order.
func (s *Space) Segments() []Segment { return s.segments }

// Allocated returns the total bytes reserved, rounded to pages. This is
// the application working-set figure the memory pressure is derived from.
func (s *Space) Allocated() uint64 { return uint64(s.next - PageSize) }

// SegmentOf returns the segment containing a, or false if a was never
// allocated. Intended for diagnostics and tests, not hot paths.
func (s *Space) SegmentOf(a Addr) (Segment, bool) {
	for _, seg := range s.segments {
		if a >= seg.Base && a < seg.Base+Addr((seg.Size+PageSize-1)/PageSize*PageSize) {
			return seg, true
		}
	}
	return Segment{}, false
}
