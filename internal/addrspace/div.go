package addrspace

import "math/bits"

// Div is a precomputed divisor for the set-index modulo on the cache hot
// path. The attraction memories have "odd" (non-power-of-two) set counts,
// so indexing cannot be a bit mask; Div replaces the hardware-divide `%`
// with Lemire's fastmod (one 64-bit multiply pair), exact for any
// dividend and divisor below 2^32 — far beyond any simulated line number
// or set count. Larger operands (possible only in fuzz inputs) fall back
// to plain `%`.
type Div struct {
	d    uint64
	c    uint64 // ceil(2^64 / d)
	fast bool   // d in [2, 2^32): fastmod is exact for 32-bit dividends
}

// NewDiv precomputes the reciprocal for divisor d (> 0).
func NewDiv(d int) Div {
	if d <= 0 {
		panic("addrspace: non-positive divisor")
	}
	dv := Div{d: uint64(d)}
	if dv.d > 1 {
		dv.c = ^uint64(0)/dv.d + 1
		dv.fast = dv.d < 1<<32
	}
	return dv
}

// Mod returns n % d.
func (dv Div) Mod(n uint64) int {
	if dv.fast && n < 1<<32 {
		hi, _ := bits.Mul64(dv.c*n, dv.d)
		return int(hi)
	}
	if dv.d == 1 {
		return 0
	}
	return int(n % dv.d)
}

// SetIndexDiv maps the line onto a set using the precomputed divisor;
// identical to SetIndex(d) for the divisor dv was built with.
func (l Line) SetIndexDiv(dv Div) int { return dv.Mod(uint64(l)) }
