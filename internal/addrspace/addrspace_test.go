package addrspace

import (
	"testing"
	"testing/quick"
)

func TestLineMath(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 {
		t.Fatal("LineOf broken at line boundaries")
	}
	l := LineOf(Addr(3 * LineSize))
	if l.Base() != Addr(3*LineSize) {
		t.Fatalf("Base = %v", l.Base())
	}
	if Line(LinesPerPage).Page() != 1 || Line(LinesPerPage-1).Page() != 0 {
		t.Fatal("Page boundary wrong")
	}
}

func TestSetIndexRange(t *testing.T) {
	prop := func(l uint64, nsets uint16) bool {
		n := int(nsets%1024) + 1
		idx := Line(l).SetIndex(n)
		return idx >= 0 && idx < n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetIndexPanicsOnZeroSets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Line(1).SetIndex(0)
}

func TestAllocPageAligned(t *testing.T) {
	s := New()
	a := s.Alloc("a", 100)
	b := s.Alloc("b", PageSize+1)
	c := s.Alloc("c", 1)
	if a%PageSize != 0 || b%PageSize != 0 || c%PageSize != 0 {
		t.Fatal("allocations must be page aligned")
	}
	if a == 0 {
		t.Fatal("address zero must never be allocated")
	}
	if b != a+PageSize {
		t.Fatalf("consecutive allocation: b = %#x, want %#x", b, a+PageSize)
	}
	if c != b+2*PageSize {
		t.Fatalf("rounding: c = %#x, want %#x", c, b+2*PageSize)
	}
	if got := s.Allocated(); got != 4*PageSize {
		t.Fatalf("Allocated = %d, want %d", got, 4*PageSize)
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Alloc("zero", 0)
}

func TestSegments(t *testing.T) {
	s := New()
	s.Alloc("x", 10)
	s.Alloc("y", 20)
	segs := s.Segments()
	if len(segs) != 2 || segs[0].Name != "x" || segs[1].Name != "y" {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].End() != segs[0].Base+10 {
		t.Fatal("End wrong")
	}
	seg, ok := s.SegmentOf(segs[1].Base + 5)
	if !ok || seg.Name != "y" {
		t.Fatalf("SegmentOf = %+v, %v", seg, ok)
	}
	if _, ok := s.SegmentOf(0); ok {
		t.Fatal("address 0 must not resolve")
	}
}

// Property: distinct allocations never overlap.
func TestAllocNoOverlap(t *testing.T) {
	prop := func(sizes []uint16) bool {
		s := New()
		type rng struct{ lo, hi Addr }
		var rs []rng
		for i, sz := range sizes {
			if i >= 20 {
				break
			}
			size := uint64(sz%5000) + 1
			base := s.Alloc("seg", size)
			pages := (size + PageSize - 1) / PageSize
			rs = append(rs, rng{base, base + Addr(pages*PageSize)})
		}
		for i := range rs {
			for j := i + 1; j < len(rs); j++ {
				if rs[i].lo < rs[j].hi && rs[j].lo < rs[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
