// Package addrspace models the simulated shared physical address space of
// the machine: a demand-paged, consecutively allocated space (as in the
// paper: "Data pages are allocated consecutively on demand"), plus the
// line/set arithmetic the caches and attraction memories index with.
package addrspace
