package machine

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestLatencyHistBuckets(t *testing.T) {
	var h LatencyHist
	h.add(0)
	h.add(32)
	h.add(33)
	h.add(148)
	h.add(332)
	h.add(1_000_000)
	if h.Total() != 6 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 2 || h.Counts[3] != 1 {
		t.Fatalf("counts %+v", h.Counts)
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatal("overflow bucket missed")
	}
	if len(h.Buckets()) == 0 || h.Buckets()[0] != 0 {
		t.Fatal("bucket bounds wrong")
	}
}

func TestLatencyQuantile(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 90; i++ {
		h.add(0)
	}
	for i := 0; i < 10; i++ {
		h.add(300)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("median %d, want 0", q)
	}
	if q := h.Quantile(0.95); q != 332 {
		t.Fatalf("p95 %d, want 332-bucket", q)
	}
	var empty LatencyHist
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if empty.String() != "no reads" {
		t.Fatal("empty string")
	}
}

func TestLatencyRecordedInResult(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.Write(0, lineA)
		b.Barrier()
		b.MeasureStart()
		b.Read(1, lineA) // remote: 332 ns
		b.Read(1, lineA) // L1 hit: 0 ns
	})
	h := &res.ReadLatency
	if h.Total() != 2 {
		t.Fatalf("recorded %d reads, want 2", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("counts %+v: want one 0 ns and one 332 ns read", h.Counts)
	}
	if !strings.Contains(h.String(), "<=0ns") {
		t.Fatalf("string %q", h.String())
	}
}
