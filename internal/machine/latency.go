package machine

import (
	"fmt"
	"strings"

	"repro/internal/engine"
)

// latBounds are the upper bounds (inclusive, ns) of the read-latency
// histogram buckets, aligned with the hierarchy's contention-free levels:
// L1 (0), SLC (32), AM (148), remote (332), then doublings for queueing.
var latBounds = [...]engine.Time{0, 32, 148, 332, 664, 1328, 2656, 5312, 10624, 21248}

// LatencyHist is a histogram of per-read completion latencies over the
// measured section (including L1 hits at 0 ns). The last bucket counts
// reads slower than the largest bound.
type LatencyHist struct {
	Counts [len(latBounds) + 1]int64
}

// Buckets returns the bucket upper bounds in nanoseconds (the final
// overflow bucket is unbounded).
func (h *LatencyHist) Buckets() []int64 {
	out := make([]int64, len(latBounds))
	for i, b := range latBounds {
		out[i] = int64(b)
	}
	return out
}

func (h *LatencyHist) add(lat engine.Time) {
	for i, b := range latBounds {
		if lat <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(latBounds)]++
}

// Total returns the number of recorded reads.
func (h *LatencyHist) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile read (q in [0,1]); -1 marks the unbounded overflow bucket.
func (h *LatencyHist) Quantile(q float64) int64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen > target {
			if i < len(latBounds) {
				return int64(latBounds[i])
			}
			return -1
		}
	}
	return -1
}

// String renders the histogram compactly.
func (h *LatencyHist) String() string {
	var sb strings.Builder
	total := h.Total()
	if total == 0 {
		return "no reads"
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		label := "inf"
		if i < len(latBounds) {
			label = fmt.Sprintf("%d", int64(latBounds[i]))
		}
		fmt.Fprintf(&sb, "<=%sns:%.1f%% ", label, 100*float64(c)/float64(total))
	}
	return strings.TrimSpace(sb.String())
}
