package machine

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/coma"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ringFabric is the hierarchical interconnect: the machine's nodes are
// grouped into equal contiguous clusters, each cluster keeps its own
// snooping bus (the paper's cluster model scaled out), and the clusters
// are joined by a unidirectional point-to-point ring. Inter-cluster
// traffic traverses the ring hop-by-hop — every hop claims that link's
// occupancy and adds the configured per-link latency — instead of a
// single global broadcast.
//
// Routing follows the two-level directory (coma.Hierarchy): a request
// that leaves its cluster first travels to the line's root cluster
// (address-interleaved: line mod clusters), pays a directory lookup
// there, then continues around the ring to the holder's cluster. Data
// replies and injections travel src -> dst directly (the reply already
// knows its destination; no directory hop). Broadcasts ride the ring
// only as far as the furthest holder cluster, claiming each holder
// cluster's bus on the way past — the Txn.Mask the protocol records is
// what makes the holder set known without snooping the whole machine.
//
// Phase conventions mirror the flat bus exactly so a 1-cluster ring with
// zero link latency is timing-identical to busFabric (the cross-topology
// equivalence test in internal/experiments leans on this): one cluster-bus
// phase for addresses and request/response halves, two for combined
// address+data transfers. Link occupancy follows the message payload: one
// link phase for address-only messages, two for data-carrying ones.
type ringFabric struct {
	m        *Machine
	clusters int
	perClust int
	linkLat  engine.Time // extra per-hop traversal latency
	occBus   engine.Time // one cluster-bus phase (bandwidth-scaled)
	occLink  engine.Time // one link phase (bandwidth-scaled)
	occDir   engine.Time // one directory lookup (bandwidth-scaled)

	cbus  []*engine.Resource // per-cluster snooping bus
	links []*engine.Resource // links[c]: cluster c -> (c+1) mod clusters
	dirs  []*engine.Resource // per-cluster root-directory slice controller

	// nodeBits[c] is the node bitmask of cluster c, for mapping the
	// protocol's holder masks onto holder clusters.
	nodeBits []uint64
	res      []*engine.Resource
}

func newRingFabric(m *Machine, p Params) *ringFabric {
	t := p.Topology
	nodes := p.Nodes()
	r := &ringFabric{
		m:        m,
		clusters: t.Clusters,
		perClust: nodes / t.Clusters,
		linkLat:  t.LinkLatency,
		occBus:   m.occBus,
		occLink:  occupancy(DefaultLinkPhase, defaultBW(t.LinkBandwidth)),
		occDir:   occupancy(DefaultDirTime, p.NCBandwidth),
	}
	r.cbus = make([]*engine.Resource, r.clusters)
	r.links = make([]*engine.Resource, r.clusters)
	r.dirs = make([]*engine.Resource, r.clusters)
	r.nodeBits = make([]uint64, r.clusters)
	for c := 0; c < r.clusters; c++ {
		r.cbus[c] = engine.NewResource(fmt.Sprintf("cbus%d", c))
		r.links[c] = engine.NewResource(fmt.Sprintf("link%d", c))
		r.dirs[c] = engine.NewResource(fmt.Sprintf("dir%d", c))
		bits := ^uint64(0)
		if r.perClust < 64 {
			bits = 1<<uint(r.perClust) - 1
		}
		r.nodeBits[c] = bits << uint(c*r.perClust)
	}
	r.res = make([]*engine.Resource, 0, 3*r.clusters)
	r.res = append(r.res, r.cbus...)
	r.res = append(r.res, r.links...)
	r.res = append(r.res, r.dirs...)
	return r
}

func defaultBW(bw float64) float64 {
	if bw == 0 {
		return 1
	}
	return bw
}

func (r *ringFabric) Kind() string { return TopologyRing }

func (r *ringFabric) cluster(node int) int { return node / r.perClust }

// rootOf address-interleaves the root directory across the clusters.
func (r *ringFabric) rootOf(l addrspace.Line) int {
	return int(uint64(l) % uint64(r.clusters))
}

// dist is the (unidirectional) hop count from cluster a to cluster b.
func (r *ringFabric) dist(a, b int) int {
	return (b - a + r.clusters) % r.clusters
}

// busPhase arbitrates cluster c's bus for `phases` phases on behalf of
// the initiating node, returning the completion time.
func (r *ringFabric) busPhase(c, node int, phases, at engine.Time, class coma.TxnClass) engine.Time {
	m := r.m
	occ := phases * r.occBus
	start := m.claimRes(r.cbus[c], at, occ)
	m.traffic(class, occ)
	if m.rec.Enabled() {
		m.rec.Emit(obs.Event{
			Kind:  obs.KindBusGrant,
			At:    int64(start),
			Node:  int32(node),
			Peer:  int32(c),
			Class: uint8(class),
			Dur:   int64(occ),
		})
	}
	return start + phases*DefaultBusPhase
}

// hop claims the link out of cluster c and returns when the message is
// available at cluster (c+1) mod clusters.
func (r *ringFabric) hop(c, node int, phases, at engine.Time, class coma.TxnClass) engine.Time {
	m := r.m
	occ := phases * r.occLink
	start := m.claimRes(r.links[c], at, occ)
	m.traffic(class, occ)
	if m.rec.Enabled() {
		m.rec.Emit(obs.Event{
			Kind:  obs.KindLinkGrant,
			At:    int64(start),
			Node:  int32(node),
			Peer:  int32(c),
			Class: uint8(class),
			Dur:   int64(occ),
		})
	}
	return start + phases*DefaultLinkPhase + r.linkLat
}

// travel rides the ring from cluster a to cluster b hop-by-hop.
func (r *ringFabric) travel(a, b, node int, phases, at engine.Time, class coma.TxnClass) engine.Time {
	t := at
	for c := a; c != b; c = (c + 1) % r.clusters {
		t = r.hop(c, node, phases, t, class)
	}
	return t
}

// dirLookup pays cluster c's root-directory slice access.
func (r *ringFabric) dirLookup(c int, at engine.Time) engine.Time {
	start := r.m.claimRes(r.dirs[c], at, r.occDir)
	return start + DefaultDirTime
}

func (r *ringFabric) Request(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	cs, cd := r.cluster(src), r.cluster(dst)
	t := r.busPhase(cs, src, 1, at, class)
	if cs == cd {
		return t
	}
	root := r.rootOf(l)
	t = r.travel(cs, root, src, 1, t, class)
	t = r.dirLookup(root, t)
	t = r.travel(root, cd, src, 1, t, class)
	return r.busPhase(cd, src, 1, t, class)
}

func (r *ringFabric) Response(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	cs, cd := r.cluster(src), r.cluster(dst)
	if cs == cd {
		return r.busPhase(cd, dst, 1, at, class)
	}
	t := r.busPhase(cs, dst, 1, at, class)
	t = r.travel(cs, cd, dst, 2, t, class)
	return r.busPhase(cd, dst, 1, t, class)
}

// ringBroadcast is the shared walk of Broadcast and DataBroadcast: claim
// the source cluster's bus, then ride the ring to the furthest holder
// cluster, claiming each holder cluster's bus on the way past.
func (r *ringFabric) ringBroadcast(src int, mask uint64, phases, at engine.Time, class coma.TxnClass) engine.Time {
	cs := r.cluster(src)
	t := r.busPhase(cs, src, phases, at, class)
	var cmask uint64
	for c := 0; c < r.clusters; c++ {
		if mask&r.nodeBits[c] != 0 {
			cmask |= 1 << uint(c)
		}
	}
	cmask &^= 1 << uint(cs)
	if cmask == 0 {
		return t
	}
	maxd := 0
	for c := 0; c < r.clusters; c++ {
		if cmask&(1<<uint(c)) != 0 {
			if d := r.dist(cs, c); d > maxd {
				maxd = d
			}
		}
	}
	c := cs
	for i := 0; i < maxd; i++ {
		t = r.hop(c, src, phases, t, class)
		c = (c + 1) % r.clusters
		if cmask&(1<<uint(c)) != 0 {
			t = r.busPhase(c, src, phases, t, class)
		}
	}
	return t
}

func (r *ringFabric) Broadcast(src int, mask uint64, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	return r.ringBroadcast(src, mask, 1, at, class)
}

func (r *ringFabric) DataBroadcast(src int, mask uint64, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	return r.ringBroadcast(src, mask, 2, at, class)
}

func (r *ringFabric) Inject(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	cs, cd := r.cluster(src), r.cluster(dst)
	t := r.busPhase(cs, src, 2, at, class)
	if cs == cd {
		return t
	}
	t = r.travel(cs, cd, src, 2, t, class)
	return r.busPhase(cd, src, 2, t, class)
}

func (r *ringFabric) Resources() []*engine.Resource { return r.res }

func (r *ringFabric) Utilization(dur float64) float64 {
	var busy float64
	for _, res := range r.res {
		busy += float64(res.BusyTotal())
	}
	return busy / (dur * float64(len(r.res)))
}

func (r *ringFabric) Reset() {
	for _, res := range r.res {
		res.Reset()
	}
}
