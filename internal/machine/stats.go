package machine

import (
	"repro/internal/coma"
	"repro/internal/engine"
	"repro/internal/obs"
)

// StallClass attributes processor stall time to the level of the memory
// hierarchy that satisfied the access, matching the paper's Figure 5
// breakdown (Busy, SLC stall, AM stall, Remote stall) plus an explicit
// synchronization-wait category the paper folds away.
type StallClass uint8

// Stall classes.
const (
	StallSLC StallClass = iota
	StallAM
	StallRemote
	stallClasses
)

// ProcStats is one processor's measured-section breakdown.
type ProcStats struct {
	// Busy is compute time (instructions and L1 hits).
	Busy engine.Time
	// Stall[c] is read/atomic stall time attributed to level c,
	// including write-buffer-full back-pressure attributed to the level
	// servicing the blocking write.
	Stall [stallClasses]engine.Time
	// Sync is time blocked at barriers, waiting for held locks, and
	// draining the write buffer at releases.
	Sync engine.Time
	// Reads and Writes count data references issued (including L1 hits).
	Reads, Writes int64
	// Finish is the processor's completion time relative to the start of
	// the measured section.
	Finish engine.Time
}

// Total returns the accounted time (Busy + stalls + sync).
func (p ProcStats) Total() engine.Time {
	t := p.Busy + p.Sync
	for _, s := range p.Stall {
		t += s
	}
	return t
}

// Result is everything a single simulation run produces.
type Result struct {
	// ExecTime is the wall-clock duration of the measured parallel
	// section (max processor finish).
	ExecTime engine.Time
	// Procs holds per-processor breakdowns.
	Procs []ProcStats
	// Reads is total processor loads in the measured section; and
	// ReadNodeMisses is how many of them missed the local attraction
	// memory and needed a global transaction — their ratio is the
	// paper's read node miss rate (RNMr).
	Reads          int64
	ReadNodeMisses int64
	// BusOccupancy[class] is total bus-occupied time per transaction
	// class (read / write / replace) — the paper's traffic metric.
	BusOccupancy [3]engine.Time
	// SLCMisses counts data references (loads and stores) that missed
	// the second-level cache and went to the memory system; the ratio
	// against Reads+Writes (MissRatio) is the hierarchy-level miss
	// ratio the clustering results trade against.
	SLCMisses int64
	// WriteBacks counts dirty SLC lines written back to the AM, and
	// DirtyPurges counts dirty lines flushed because their AM line left
	// the node.
	WriteBacks  int64
	DirtyPurges int64
	// BusUtilization is the fraction of the measured section the global
	// bus was occupied; NodeUtilization the same per node controller and
	// AM DRAM — the saturation signals behind the paper's bandwidth
	// requirements for clustering.
	BusUtilization  float64
	NodeUtilization []NodeUtil
	// ReadLatency is the distribution of per-read completion latencies
	// (L1 hits land in the 0 ns bucket).
	ReadLatency LatencyHist
	// Resources is the measured-section usage of every timing resource,
	// in a fixed order: bus, then each node's controller and AM DRAM,
	// then each processor's SLC port.
	Resources []ResUse
	// Protocol is the protocol-level counter snapshot.
	Protocol coma.Stats
	// Timeline is the windowed counter timeline of the whole run (not
	// just the measured section); nil unless sampling was enabled with
	// Machine.EnableSampling.
	Timeline *obs.Timeline
	// Fidelity describes how a sampled-fidelity run measured and
	// extrapolated its metrics (window count, coverage, calibrated
	// contention factor, per-metric confidence); nil on exact runs.
	Fidelity *FidelityReport
}

// ResUse is one resource's measured-section usage: occupancy, demand and
// the queueing delay its claimants suffered.
type ResUse struct {
	Name   string
	BusyNs int64
	Claims int64
	WaitNs int64
	Waits  engine.WaitHist
}

// Utilization returns busy time as a fraction of dur (0 when dur is 0).
func (u ResUse) Utilization(dur engine.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(u.BusyNs) / float64(dur)
}

// MeanWaitNs returns the average queueing delay per claim.
func (u ResUse) MeanWaitNs() float64 {
	if u.Claims == 0 {
		return 0
	}
	return float64(u.WaitNs) / float64(u.Claims)
}

// NodeUtil is one node's resource utilization over the measured section.
type NodeUtil struct {
	NC, DRAM float64
}

// MaxDRAMUtilization returns the busiest attraction-memory DRAM's
// utilization.
func (r *Result) MaxDRAMUtilization() float64 {
	var max float64
	for _, n := range r.NodeUtilization {
		if n.DRAM > max {
			max = n.DRAM
		}
	}
	return max
}

// RNMr returns the read node miss rate (0 when no reads occurred).
func (r *Result) RNMr() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ReadNodeMisses) / float64(r.Reads)
}

// Writes returns total stores across processors.
func (r *Result) Writes() int64 {
	var w int64
	for i := range r.Procs {
		w += r.Procs[i].Writes
	}
	return w
}

// MissRatio returns the SLC miss ratio over all data references (0 when
// none occurred).
func (r *Result) MissRatio() float64 {
	refs := r.Reads + r.Writes()
	if refs == 0 {
		return 0
	}
	return float64(r.SLCMisses) / float64(refs)
}

// BusTotal returns total bus occupancy across classes.
func (r *Result) BusTotal() engine.Time {
	return r.BusOccupancy[0] + r.BusOccupancy[1] + r.BusOccupancy[2]
}

// Imbalance returns the ratio of the slowest processor's finish time to
// the mean finish time (1.0 = perfectly balanced). Load imbalance shows
// up in the paper's sync-wait category; this isolates it.
func (r *Result) Imbalance() float64 {
	if len(r.Procs) == 0 {
		return 1
	}
	var sum, max float64
	for _, p := range r.Procs {
		f := float64(p.Finish)
		sum += f
		if f > max {
			max = f
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(r.Procs)))
}

// MeanBreakdown averages the per-processor breakdown, the form Figure 5
// plots.
type MeanBreakdown struct {
	Busy, SLC, AM, Remote, Sync float64 // nanoseconds
}

// Breakdown computes the mean per-processor time split.
func (r *Result) Breakdown() MeanBreakdown {
	var b MeanBreakdown
	if len(r.Procs) == 0 {
		return b
	}
	for _, p := range r.Procs {
		b.Busy += float64(p.Busy)
		b.SLC += float64(p.Stall[StallSLC])
		b.AM += float64(p.Stall[StallAM])
		b.Remote += float64(p.Stall[StallRemote])
		b.Sync += float64(p.Sync)
	}
	n := float64(len(r.Procs))
	b.Busy /= n
	b.SLC /= n
	b.AM /= n
	b.Remote /= n
	b.Sync /= n
	return b
}

// Total returns the sum of the mean breakdown components.
func (b MeanBreakdown) Total() float64 {
	return b.Busy + b.SLC + b.AM + b.Remote + b.Sync
}
