package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coma"
)

// CheckState verifies cross-layer invariants after (or during) a run;
// tests call it to validate random-workload executions.
//
// Checked: the COMA protocol's global invariants (single owner, index/tag
// agreement); on ring topologies the two-level directory's exactness
// against the tag arrays (coma.Hierarchy.Check); and — on an inclusive
// hierarchy — that every line resident in a private L1 or SLC is also
// resident in its node's attraction memory, with dirty SLC lines backed
// by an Exclusive AM line.
func (m *Machine) CheckState() error {
	if m.prot == nil {
		return nil // non-COMA memory systems carry their own checks
	}
	if err := m.prot.CheckInvariants(); err != nil {
		return err
	}
	if m.hier != nil {
		if err := m.hier.Check(m.prot); err != nil {
			return err
		}
	}
	if !m.params.Inclusive {
		return nil
	}
	for _, p := range m.procs {
		am := m.prot.AM(p.node)
		var err error
		p.l1.ForEach(func(e cache.Entry) {
			if err != nil {
				return
			}
			if _, ok := am.Lookup(e.Line); !ok {
				err = fmt.Errorf("machine: proc %d L1 line %#x not in node %d AM (inclusion)",
					p.id, uint64(e.Line), p.node)
			}
		})
		if err != nil {
			return err
		}
		p.slc.ForEach(func(e cache.Entry) {
			if err != nil {
				return
			}
			st, ok := am.Lookup(e.Line)
			if !ok {
				err = fmt.Errorf("machine: proc %d SLC line %#x not in node %d AM (inclusion)",
					p.id, uint64(e.Line), p.node)
				return
			}
			if e.State == cacheDirty && st != coma.Exclusive {
				err = fmt.Errorf("machine: proc %d SLC line %#x dirty but AM state is %d",
					p.id, uint64(e.Line), st)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
