package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/engine"
)

// ringParams builds a ring-of-clusters machine over the fuzz trace's
// address range. amPerProc is in bytes, as in DefaultParams.
func ringParams(procs, ppn, clusters, amPerProc int, linkLat engine.Time) Params {
	p := DefaultParams(procs, ppn, 2048, amPerProc)
	p.L1Bytes = 512
	p.Topology = Topology{Kind: TopologyRing, Clusters: clusters, LinkLatency: linkLat}
	return p
}

// amBytesForPressure sizes the per-processor attraction memory so one
// copy of the working set fills the given fraction of the machine's
// total AM capacity (>1 means the AMs cannot hold even one copy).
func amBytesForPressure(workingSet uint64, procs int, frac float64) int {
	b := int(float64(workingSet) / (frac * float64(procs)))
	b -= b % addrspace.LineSize
	if min := 8 * addrspace.LineSize; b < min {
		b = min // at least two 4-way sets
	}
	return b
}

// checkRingCoherence runs the per-line hierarchy checker (which wraps
// the protocol's own per-line invariants) over every resident line.
func checkRingCoherence(t *testing.T, m *Machine) bool {
	t.Helper()
	p := m.Protocol()
	h := m.Hierarchy()
	seen := make(map[addrspace.Line]bool)
	for n := 0; n < p.Nodes(); n++ {
		p.AM(n).ForEach(func(e cache.Entry) { seen[e.Line] = true })
	}
	for l := range seen {
		if err := h.CheckLine(p, l); err != nil {
			t.Logf("ring coherence: %v", err)
			return false
		}
	}
	return true
}

// Fuzz over randomized ring geometries — 2 to 16 clusters, 1 to 3 nodes
// per cluster — at the paper's hardest operating point (one working-set
// copy fills 87% of the AMs) and beyond it (150%: the machine cannot
// hold even one copy, so the replacement machinery runs continuously).
// Every run must terminate, preserve the full machine invariants
// (CheckState includes the two-level directory's exactness against the
// tag arrays), and pass the per-line hierarchy checks.
func TestRingGeometryFuzz(t *testing.T) {
	prop := func(seed int64, cSel, pcSel, latSel uint8, tight bool) bool {
		rng := rand.New(rand.NewSource(seed))
		clusters := 2 + int(cSel)%15 // 2..16
		perClust := 1 + int(pcSel)%3 // 1..3
		nodes := clusters * perClust
		ppn := 1 + rng.Intn(2)
		procs := nodes * ppn
		tr := randomTrace(rng, procs)
		frac := 0.87
		if tight {
			frac = 1.5
		}
		am := amBytesForPressure(tr.WorkingSet, procs, frac)
		lat := engine.Time(int(latSel)%3) * 20 // 0, 20 or 40ns per hop
		m, err := New(ringParams(procs, ppn, clusters, am, lat))
		if err != nil {
			t.Logf("new (c=%d pc=%d ppn=%d): %v", clusters, perClust, ppn, err)
			return false
		}
		res, err := m.Run(tr)
		if err != nil {
			t.Logf("run (c=%d pc=%d): %v", clusters, perClust, err)
			return false
		}
		if err := m.CheckState(); err != nil {
			t.Logf("state (c=%d pc=%d): %v", clusters, perClust, err)
			return false
		}
		if !checkRingCoherence(t, m) {
			return false
		}
		for i, ps := range res.Procs {
			if ps.Total() > ps.Finish {
				t.Logf("proc %d: attributed %v > finish %v", i, ps.Total(), ps.Finish)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// A 1-cluster ring is a single snooping bus with an unused ring: the
// fabric mirrors busFabric's phase counts and attributions exactly, so
// the two topologies must agree not just on counts but on every timing
// observable. This is the unit-level anchor of the cross-topology
// equivalence harness in internal/experiments.
func TestRingOneClusterMatchesBus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomTrace(rng, 8)
	am := amBytesForPressure(tr.WorkingSet, 8, 0.5)

	busParams := DefaultParams(8, 2, 2048, am)
	busParams.L1Bytes = 512
	bus, err := New(busParams)
	if err != nil {
		t.Fatal(err)
	}
	busRes, err := bus.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	ring, err := New(ringParams(8, 2, 1, am, 0))
	if err != nil {
		t.Fatal(err)
	}
	ringRes, err := ring.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	if busRes.ExecTime != ringRes.ExecTime {
		t.Errorf("exec: bus %v, 1-cluster ring %v", busRes.ExecTime, ringRes.ExecTime)
	}
	if busRes.Protocol != ringRes.Protocol {
		t.Errorf("protocol stats diverge:\nbus:  %+v\nring: %+v", busRes.Protocol, ringRes.Protocol)
	}
	if busRes.BusOccupancy != ringRes.BusOccupancy {
		t.Errorf("occupancy: bus %v, ring %v", busRes.BusOccupancy, ringRes.BusOccupancy)
	}
	if busRes.RNMr() != ringRes.RNMr() {
		t.Errorf("RNMr: bus %v, ring %v", busRes.RNMr(), ringRes.RNMr())
	}
}

// Link latency is purely additive on the ring traversal path: the same
// workload on the same geometry cannot get faster when every hop slows
// down, and with cross-cluster sharing present it must get strictly
// slower.
func TestRingLinkLatencyMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, 16)
	am := amBytesForPressure(tr.WorkingSet, 16, 0.5)
	exec := func(lat engine.Time) engine.Time {
		m, err := New(ringParams(16, 2, 4, am, lat))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	fast, slow := exec(0), exec(200)
	if slow <= fast {
		t.Errorf("exec at 200ns/hop (%v) not slower than at 0ns/hop (%v)", slow, fast)
	}
}

// Splitting one cluster into several cannot speed the machine up under a
// sharing workload: cross-cluster misses pay ring hops the single bus
// never pays.
func TestRingMoreClustersNotFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTrace(rng, 16)
	am := amBytesForPressure(tr.WorkingSet, 16, 0.5)
	exec := func(clusters int) engine.Time {
		m, err := New(ringParams(16, 2, clusters, am, DefaultLinkLatency))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	one, four := exec(1), exec(4)
	if four < one {
		t.Errorf("4-cluster ring (%v) faster than single cluster (%v)", four, one)
	}
}

// The ring hot path — cluster-bus arbitration, hop traversal, directory
// maintenance through the transition hook — must stay allocation-free in
// the steady state, like the flat bus path (TestSteadyStateZeroAlloc).
// CI runs this under -race.
func TestRingSteadyStateZeroAlloc(t *testing.T) {
	p := DefaultParams(8, 2, 32*1024, 256*1024)
	p.Topology = Topology{Kind: TopologyRing, Clusters: 2, LinkLatency: DefaultLinkLatency}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := steadyStateAllocs(m); got != 0 {
		t.Fatalf("ring steady-state references allocate %.2f times per ref, want 0", got)
	}
}
