package machine

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/engine"
	"repro/internal/trace"
)

// tinyParams builds a small machine: per-proc AM of 32 KB, SLC 2 KB,
// L1 512 B.
func tinyParams(procs, ppn int) Params {
	p := DefaultParams(procs, ppn, 2048, 32*1024)
	p.L1Bytes = 512
	return p
}

// runTrace assembles a trace via a builder callback and simulates it.
func runTrace(t *testing.T, params Params, build func(b *trace.Builder)) *Result {
	t.Helper()
	b := trace.NewBuilder("t", params.Procs)
	build(b)
	tr := b.Build(1 << 20)
	m, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const lineA addrspace.Addr = 0x10000 // arbitrary line-aligned addresses
const lineB addrspace.Addr = 0x20000

// Contention-free latency checks against the paper's numbers.
func TestLatencyAMHit(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.MeasureStart()
		// First read cold-allocates locally (148 ns: an AM access);
		// the second hits the L1 (0 ns).
		b.Read(0, lineA)
		b.Read(0, lineA)
	})
	p := res.Procs[0]
	if got := p.Stall[StallAM]; got != 148 {
		t.Fatalf("AM access stall = %v, want 148", got)
	}
	if res.Reads != 2 {
		t.Fatalf("reads = %d", res.Reads)
	}
}

func TestLatencySLCHit(t *testing.T) {
	// Evict the line from the L1 (512 B direct-mapped, odd-rounded to 9
	// sets: lines 9*64 bytes apart collide) while it stays in the SLC.
	const l1Conflict = 9 * 64
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.MeasureStart()
		b.Read(0, lineA)
		b.Read(0, lineA+l1Conflict) // evicts lineA from the L1
		b.Read(0, lineA)            // SLC hit: 32 ns
	})
	p := res.Procs[0]
	if got := p.Stall[StallSLC]; got != 32 {
		t.Fatalf("SLC hit stall = %v, want exactly 32", got)
	}
	if h := &res.ReadLatency; h.Counts[1] != 1 {
		t.Fatalf("latency histogram missing the 32 ns read: %+v", h.Counts)
	}
}

func TestLatencyRemote(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.Write(0, lineA) // allocated E at node 0 (pre-measure)
		b.Barrier()
		b.MeasureStart()
		b.Read(1, lineA) // remote: 332 ns contention-free
	})
	p := res.Procs[1]
	if got := p.Stall[StallRemote]; got != 332 {
		t.Fatalf("remote stall = %v, want 332", got)
	}
	if res.ReadNodeMisses != 1 {
		t.Fatalf("node misses = %d, want 1", res.ReadNodeMisses)
	}
}

func TestClusteredNodeReadIsLocal(t *testing.T) {
	// With 2 procs per node, proc 1 reads what proc 0 fetched: AM hit,
	// not a remote access — the clustering effect under study.
	res := runTrace(t, tinyParams(4, 2), func(b *trace.Builder) {
		b.Write(0, lineA)
		b.Barrier()
		b.MeasureStart()
		b.Read(1, lineA) // same node as proc 0
		b.Read(2, lineA) // different node: remote
	})
	if res.ReadNodeMisses != 1 {
		t.Fatalf("node misses = %d, want 1 (only proc 2)", res.ReadNodeMisses)
	}
	if got := res.Procs[1].Stall[StallRemote]; got != 0 {
		t.Fatalf("same-node read went remote (stall %v)", got)
	}
	if got := res.Procs[2].Stall[StallRemote]; got == 0 {
		t.Fatal("cross-node read must be remote")
	}
}

func TestWriteBufferHidesStores(t *testing.T) {
	// A handful of writes should cost the processor (almost) nothing:
	// release consistency with a 10-entry write buffer.
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.MeasureStart()
		for i := 0; i < 5; i++ {
			b.Write(0, lineA+addrspace.Addr(i*64))
		}
		b.Compute(0, 10)
	})
	p := res.Procs[0]
	var stalls engine.Time
	for _, s := range p.Stall {
		stalls += s
	}
	if stalls != 0 {
		t.Fatalf("5 buffered writes stalled %v", stalls)
	}
	if p.Busy != 10 {
		t.Fatalf("busy = %v", p.Busy)
	}
}

func TestWriteBufferFullStalls(t *testing.T) {
	params := tinyParams(2, 1)
	params.WriteBufferDepth = 2
	res := runTrace(t, params, func(b *trace.Builder) {
		b.MeasureStart()
		for i := 0; i < 8; i++ {
			b.Write(0, lineA+addrspace.Addr(i*64)) // distinct lines: each drains via AM
		}
	})
	p := res.Procs[0]
	var stalls engine.Time
	for _, s := range p.Stall {
		stalls += s
	}
	if stalls == 0 {
		t.Fatal("overflowing a 2-entry write buffer must stall")
	}
}

func TestRepeatStoresHitDirtySLC(t *testing.T) {
	// Stores to the same line after the first are SLC-dirty hits; the AM
	// must see exactly one write access.
	params := tinyParams(2, 1)
	res := runTrace(t, params, func(b *trace.Builder) {
		b.MeasureStart()
		for i := 0; i < 50; i++ {
			b.Write(0, lineA)
		}
	})
	if got := res.Protocol.Writes; got != 1 {
		t.Fatalf("AM write accesses = %d, want 1", got)
	}
}

func TestReleaseConsistencyDrain(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.Write(0, 0x30000) // lock home allocated at proc 0 (pre-measure)
		b.Barrier()
		b.MeasureStart()
		b.Acquire(0, 1, 0x30000)
		b.Write(0, lineA)
		b.Release(0, 1, 0x30000)
	})
	if res.Procs[0].Sync == 0 {
		t.Fatal("release must wait for the write buffer (sync time)")
	}
}

func TestLockMutualExclusionSerializes(t *testing.T) {
	// Both procs acquire the same lock and spend 1000 ns inside: the
	// critical sections must not overlap, so the later proc's finish is
	// at least 2000 ns of critical section time apart.
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.Write(0, 0x30000)
		b.Barrier()
		b.MeasureStart()
		for p := 0; p < 2; p++ {
			b.Acquire(p, 1, 0x30000)
			b.Compute(p, 1000)
			b.Release(p, 1, 0x30000)
		}
	})
	second := res.Procs[1]
	if second.Sync == 0 {
		t.Fatal("second acquirer must wait for the lock")
	}
	if res.ExecTime < 2000 {
		t.Fatalf("critical sections overlapped: exec %v", res.ExecTime)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.MeasureStart()
		b.Compute(0, 5000) // proc 0 is slow
		b.Barrier()
		b.Compute(1, 1) // proc 1's post-barrier work starts after proc 0
	})
	if res.Procs[1].Sync < 5000-DefaultBarrierTime {
		t.Fatalf("proc 1 barrier wait = %v, want ~5000", res.Procs[1].Sync)
	}
	if res.ExecTime < 5000 {
		t.Fatalf("exec = %v", res.ExecTime)
	}
}

func TestStatsResetAtMeasureStart(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		// Heavy pre-measure traffic must not leak into the results.
		for i := 0; i < 100; i++ {
			b.Read(0, lineA+addrspace.Addr(i*64))
			b.Write(1, lineB+addrspace.Addr(i*64))
		}
		b.MeasureStart()
		b.Read(0, lineB) // exactly one measured read
	})
	if res.Reads != 1 {
		t.Fatalf("measured reads = %d, want 1", res.Reads)
	}
	if res.Procs[1].Writes != 0 {
		t.Fatal("pre-measure writes leaked")
	}
}

func TestTrafficClasses(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.Write(0, lineA)
		b.Barrier()
		b.MeasureStart()
		b.Read(1, lineA)  // read transaction
		b.Write(1, lineA) // upgrade: write transaction
	})
	if res.BusOccupancy[0] == 0 {
		t.Fatal("read traffic missing")
	}
	if res.BusOccupancy[1] == 0 {
		t.Fatal("write traffic missing")
	}
	if res.BusOccupancy[2] != 0 {
		t.Fatal("no replacement traffic expected")
	}
}

func TestDeadlockDetection(t *testing.T) {
	b := trace.NewBuilder("dead", 2)
	b.MeasureStart()
	// Proc 0 acquires and never releases; proc 1 blocks forever.
	b.Acquire(0, 1, 0x30000)
	b.Acquire(1, 1, 0x30000)
	tr := b.Build(1 << 20)
	m, err := New(tinyParams(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tr); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestMissingMeasureStartFails(t *testing.T) {
	// Bypass the builder (which enforces MeasureStart) to check the
	// machine's own guard.
	tr := trace.FromRefs("x", 1<<20, [][]trace.Ref{
		{{Kind: trace.Read, Addr: lineA}},
		{{Kind: trace.Read, Addr: lineB}},
	})
	m, err := New(tinyParams(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tr); err == nil {
		t.Fatal("expected error for missing MeasureStart")
	}
}

func TestParamsValidate(t *testing.T) {
	good := tinyParams(4, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Procs = 0 },
		func(p *Params) { p.Procs = 3; p.ProcsPerNode = 2 },
		func(p *Params) { p.Procs = 130 }, // 65 nodes at ppn 2: over the bitmask limit
		func(p *Params) { p.Topology = Topology{Kind: "mesh"} },
		func(p *Params) { p.Topology = Topology{Kind: TopologyRing, Clusters: 3} }, // 2 nodes
		func(p *Params) { p.Topology = Topology{Kind: TopologyRing, Clusters: 2, LinkLatency: -1} },
		func(p *Params) { p.Topology = Topology{Kind: TopologyBus, Clusters: 4} },
		func(p *Params) { p.L1Bytes = 1 },
		func(p *Params) { p.SLCBytes = 1 },
		func(p *Params) { p.AMWays = 0 },
		func(p *Params) { p.AMBytesPerProc = 1 },
		func(p *Params) { p.DRAMBandwidth = 0 },
		func(p *Params) { p.WriteBufferDepth = 0 },
	}
	for i, mut := range cases {
		p := tinyParams(4, 2)
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestProcsMismatch(t *testing.T) {
	b := trace.NewBuilder("x", 4)
	b.MeasureStart()
	tr := b.Build(1 << 20)
	m, err := New(tinyParams(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tr); err == nil {
		t.Fatal("expected proc-count mismatch error")
	}
}

func TestOddSets(t *testing.T) {
	if oddSets(64*64, 1) != 65 { // 64 sets -> rounded up to 65
		t.Fatalf("oddSets = %d", oddSets(64*64, 1))
	}
	if oddSets(64*63, 1) != 63 {
		t.Fatalf("oddSets = %d", oddSets(64*63, 1))
	}
	if oddSets(0, 4) != 1 {
		t.Fatalf("oddSets(0) = %d", oddSets(0, 4))
	}
}

func TestBreakdownAndRNMr(t *testing.T) {
	res := &Result{
		Reads:          100,
		ReadNodeMisses: 25,
		Procs: []ProcStats{
			{Busy: 10, Stall: [stallClasses]engine.Time{2, 4, 6}, Sync: 8},
			{Busy: 30, Stall: [stallClasses]engine.Time{0, 0, 0}, Sync: 0},
		},
	}
	if res.RNMr() != 0.25 {
		t.Fatalf("RNMr = %v", res.RNMr())
	}
	b := res.Breakdown()
	if b.Busy != 20 || b.SLC != 1 || b.AM != 2 || b.Remote != 3 || b.Sync != 4 {
		t.Fatalf("breakdown %+v", b)
	}
	if b.Total() != 30 {
		t.Fatalf("total %v", b.Total())
	}
	empty := &Result{}
	if empty.RNMr() != 0 || empty.Breakdown().Total() != 0 {
		t.Fatal("empty result math")
	}
}

// In the non-inclusive hierarchy, an AM replacement eviction leaves the
// SLC copy intact, so the processor keeps hitting its private cache after
// its AM line migrated away — the benefit of "breaking the inclusion".
func TestNonInclusiveKeepsSLCAfterEviction(t *testing.T) {
	run := func(inclusive bool) *Result {
		params := DefaultParams(2, 1, 8192, 2*addrspace.LineSize*4)
		params.L1Bytes = 512
		params.Inclusive = inclusive
		// AM: 2 lines per proc quota -> tiny; SLC: 8 KB -> large.
		return runTrace(t, params, func(b *trace.Builder) {
			b.MeasureStart()
			// Proc 0 streams enough lines to overflow its AM repeatedly,
			// then re-reads the first ones (still in its big SLC).
			for i := 0; i < 32; i++ {
				b.Read(0, lineA+addrspace.Addr(i*64*9)) // spread over sets
			}
			for rep := 0; rep < 3; rep++ {
				for i := 0; i < 32; i++ {
					b.Read(0, lineA+addrspace.Addr(i*64*9))
				}
			}
		})
	}
	incl := run(true)
	nonIncl := run(false)
	if nonIncl.ReadNodeMisses >= incl.ReadNodeMisses {
		t.Fatalf("non-inclusive should hit the SLC after AM eviction: %d vs %d misses",
			nonIncl.ReadNodeMisses, incl.ReadNodeMisses)
	}
}

// Ownership downgrades: after supplying a remote reader, the writer's SLC
// loses write permission, so the next local store must upgrade (one more
// AM write access).
func TestDowngradeForcesReUpgrade(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.MeasureStart()
		b.Write(0, lineA) // cold: E, SLC dirty
		b.Barrier()
		b.Read(1, lineA) // node 0 E -> O, downgrade
		b.Barrier()
		b.Write(0, lineA) // must upgrade again
		b.Barrier()
		b.Write(0, lineA) // dirty hit, free
	})
	p := res.Protocol
	if p.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want exactly 1 (the post-downgrade store)", p.Upgrades)
	}
	if p.Writes != 2 {
		t.Fatalf("AM write accesses = %d, want 2 (cold + upgrade)", p.Writes)
	}
}

// Sibling stores invalidate same-node private copies: a read after a
// sibling's write must go back to the AM (and see the new ownership).
func TestSiblingInvalidation(t *testing.T) {
	res := runTrace(t, tinyParams(2, 2), func(b *trace.Builder) {
		b.MeasureStart()
		b.Read(0, lineA) // proc 0 caches the line
		b.Barrier()
		b.Write(1, lineA) // sibling writes
		b.Barrier()
		b.Read(0, lineA) // must miss L1/SLC, hit the shared AM
	})
	// Proc 0: two reads; both should have stalled (no free L1 hit on the
	// second), and neither is a node miss (same node).
	if res.ReadNodeMisses != 0 {
		t.Fatalf("node misses = %d, want 0 (all intra-node)", res.ReadNodeMisses)
	}
	p0 := res.Procs[0]
	if p0.Stall[StallAM] < 2*148 {
		t.Fatalf("proc 0 AM stall = %v, want two full AM accesses", p0.Stall[StallAM])
	}
}

// Update policy, machine level: after the producer's store broadcasts the
// new data, the consumer's private copy stays valid — the consumer reads
// for free while under invalidation it re-misses every round.
func TestUpdatePolicyKeepsConsumersWarm(t *testing.T) {
	build := func(b *trace.Builder) {
		b.Write(0, lineA)
		b.Barrier()
		b.MeasureStart()
		b.Read(1, lineA) // consumer caches the line
		b.Barrier()
		for round := 0; round < 5; round++ {
			b.Write(0, lineA) // producer updates
			b.Barrier()
			b.Read(1, lineA) // consumer re-reads
			b.Barrier()
		}
	}
	inval := runTrace(t, tinyParams(2, 1), build)
	params := tinyParams(2, 1)
	params.Policy.WriteUpdate = true
	upd := runTrace(t, params, build)
	if upd.ReadNodeMisses >= inval.ReadNodeMisses {
		t.Fatalf("update policy should kill the consumer's re-misses: %d vs %d",
			upd.ReadNodeMisses, inval.ReadNodeMisses)
	}
	// The cost shifts to write traffic.
	if upd.BusOccupancy[1] <= inval.BusOccupancy[1] {
		t.Fatalf("update policy should raise write traffic: %v vs %v",
			upd.BusOccupancy[1], inval.BusOccupancy[1])
	}
	if upd.BusOccupancy[0] >= inval.BusOccupancy[0] {
		t.Fatalf("update policy should cut read traffic: %v vs %v",
			upd.BusOccupancy[0], inval.BusOccupancy[0])
	}
}

// Spin locks generate extra coherence traffic on contended locks compared
// to the ideal queue lock, without changing the serialization order.
func TestSpinLockTraffic(t *testing.T) {
	build := func(b *trace.Builder) {
		b.Write(0, 0x30000)
		b.Barrier()
		b.MeasureStart()
		for p := 0; p < 4; p++ {
			b.Acquire(p, 1, 0x30000)
			b.Compute(p, 500)
			b.Release(p, 1, 0x30000)
		}
	}
	quiet := runTrace(t, tinyParams(4, 1), build)
	params := tinyParams(4, 1)
	params.SpinLocks = true
	spin := runTrace(t, params, build)
	if spin.BusTotal() <= quiet.BusTotal() {
		t.Fatalf("spinning must add bus traffic: %v vs %v", spin.BusTotal(), quiet.BusTotal())
	}
	if spin.ExecTime < quiet.ExecTime {
		t.Fatalf("spinning should not be faster: %v vs %v", spin.ExecTime, quiet.ExecTime)
	}
}

// Queueing sanity: as more same-node processors stream through one AM
// DRAM, the mean AM stall per access grows monotonically — the node
// contention effect at the heart of the paper's bandwidth requirement.
func TestDRAMQueueingMonotone(t *testing.T) {
	meanStall := func(ppn int) float64 {
		params := DefaultParams(4, ppn, 2048, 64*1024)
		params.L1Bytes = 512
		res := runTrace(t, params, func(b *trace.Builder) {
			// Every proc touches its own lines once (cold allocate,
			// pre-measure), then re-streams them: pure local AM reads.
			priv := func(p, i int) addrspace.Addr {
				return lineA + addrspace.Addr((p*512+i)*64)
			}
			for p := 0; p < 4; p++ {
				for i := 0; i < 64; i++ {
					b.Write(p, priv(p, i))
				}
			}
			b.Barrier()
			b.MeasureStart()
			for p := 0; p < 4; p++ {
				for rep := 0; rep < 4; rep++ {
					for i := 0; i < 64; i++ {
						b.Read(p, priv(p, i))
					}
				}
			}
		})
		var total float64
		for _, p := range res.Procs {
			total += float64(p.Stall[StallAM])
		}
		return total
	}
	s1 := meanStall(1)
	s2 := meanStall(2)
	s4 := meanStall(4)
	if !(s1 <= s2 && s2 <= s4) {
		t.Fatalf("AM stall must grow with sharers per DRAM: %v / %v / %v", s1, s2, s4)
	}
	if s4 <= s1 {
		t.Fatalf("4 procs on one DRAM should queue visibly: %v vs %v", s4, s1)
	}
}

func TestImbalance(t *testing.T) {
	res := &Result{Procs: []ProcStats{{Finish: 100}, {Finish: 300}}}
	if got := res.Imbalance(); got != 1.5 {
		t.Fatalf("imbalance %v, want 1.5", got)
	}
	if (&Result{}).Imbalance() != 1 {
		t.Fatal("empty imbalance")
	}
	balanced := &Result{Procs: []ProcStats{{Finish: 100}, {Finish: 100}}}
	if balanced.Imbalance() != 1 {
		t.Fatal("balanced imbalance")
	}
}

func TestUtilizationReported(t *testing.T) {
	res := runTrace(t, tinyParams(2, 1), func(b *trace.Builder) {
		b.Write(0, lineA)
		b.Barrier()
		b.MeasureStart()
		for i := 0; i < 20; i++ {
			b.Read(1, lineA+addrspace.Addr(i*64)) // remote stream
		}
	})
	if res.BusUtilization <= 0 || res.BusUtilization > 1 {
		t.Fatalf("bus utilization %v out of range", res.BusUtilization)
	}
	if len(res.NodeUtilization) != 2 {
		t.Fatalf("node utilization entries %d", len(res.NodeUtilization))
	}
	if res.MaxDRAMUtilization() <= 0 {
		t.Fatal("DRAM utilization missing")
	}
	for _, n := range res.NodeUtilization {
		if n.DRAM < 0 || n.DRAM > 1 || n.NC < 0 || n.NC > 1 {
			t.Fatalf("utilization out of range: %+v", n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func(b *trace.Builder) {
		for p := 0; p < 4; p++ {
			b.Write(p, addrspace.Addr(0x10000+p*4096))
		}
		b.Barrier()
		b.MeasureStart()
		for p := 0; p < 4; p++ {
			for i := 0; i < 50; i++ {
				b.Read(p, addrspace.Addr(0x10000+((p+1)%4)*4096+i*64))
				b.Write(p, addrspace.Addr(0x10000+p*4096+i*64))
			}
		}
		b.Barrier()
	}
	r1 := runTrace(t, tinyParams(4, 2), build)
	r2 := runTrace(t, tinyParams(4, 2), build)
	if r1.ExecTime != r2.ExecTime || r1.BusTotal() != r2.BusTotal() || r1.ReadNodeMisses != r2.ReadNodeMisses {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", r1.ExecTime, r1.BusTotal(), r2.ExecTime, r2.BusTotal())
	}
}
