package machine

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/coma"
	"repro/internal/engine"
)

// Default timing parameters from paper Section 3.2. The processors are
// 4-way superscalar at 250 MHz (4 ns cycles); contention-free read
// latencies are L1 0 ns, SLC 32 ns, AM 148 ns (24 ns node controller +
// 100 ns DRAM, after a 24 ns SLC miss detection), remote 332 ns with the
// bus occupied 2x20 ns.
const (
	DefaultSLCHit        engine.Time = 32
	DefaultSLCMissDetect engine.Time = 24
	// DefaultSLCWrite is the SLC write-port occupancy of a store that
	// hits a writable line (no processor stall under release
	// consistency).
	DefaultSLCWrite engine.Time = 8
	DefaultNCTime   engine.Time = 24
	DefaultDRAMTime engine.Time = 100
	DefaultBusPhase engine.Time = 20
	// DefaultRemotePad tops the staged remote walk (24+24+20+24+100+20+
	// 100 = 312 ns) up to the paper's 332 ns contention-free latency.
	DefaultRemotePad engine.Time = 20
	// DefaultBarrierTime is the hardware barrier release overhead.
	DefaultBarrierTime engine.Time = 40
	// DefaultWriteBufferDepth is the release-consistency write buffer
	// depth (paper: "a 10 entry write buffer").
	DefaultWriteBufferDepth = 10

	// Ring-topology timing (DESIGN.md §9). A ring hop costs the link's
	// occupancy (DefaultLinkPhase per phase, like a bus phase) plus
	// DefaultLinkLatency of pure traversal latency; a root-directory
	// lookup costs one node-controller-class access.
	DefaultLinkLatency engine.Time = 40
	DefaultLinkPhase   engine.Time = 20
	DefaultDirTime     engine.Time = 24
)

// Fidelity modes (see the Fidelity type).
const (
	// FidelityExact is full-detail simulation: every reference walks the
	// complete timing model with resource arbitration. "" means exact.
	FidelityExact = "exact"
	// FidelitySampled interleaves functional fast-forward with detailed
	// measurement windows, SMARTS-style (DESIGN.md §10).
	FidelitySampled = "sampled"
)

// Default sampled-fidelity geometry (simulated nanoseconds). One period
// is warmup + window of detailed simulation followed by fast-forward for
// the remainder; runs in this repository simulate 1.5–10 M ns of
// parallel section, so these defaults yield ~7–40 windows per run at
// ~12% detailed coverage. The warmup is deliberately long (one full
// window): fast-forward leaves every queue idle, so after re-entry the
// detailed simulation must both refill steady-state backlogs and let
// the re-arrival burst (all processors reach the idle resources nearly
// at once) decay before the measurement window opens — with short
// warmups the windows measure that artifact instead of the steady
// state, and the calibrated waits land 20–50% off (measured across the
// SPLASH-2-shaped kernel suite; see DESIGN.md §10).
const (
	DefaultFFWarmup engine.Time = 16000
	DefaultFFWindow engine.Time = 16000
	DefaultFFPeriod engine.Time = 256000
)

// Fidelity selects the execution fidelity of a run. The zero value (or
// Mode "exact") is full detail. Mode "sampled" alternates two regimes
// over simulated time, aligned across processors:
//
//   - Detailed phases (Warmup ns of warmup then Window ns of
//     measurement window, at the start of every Period ns): the full
//     timing model runs, exactly as in exact mode.
//   - Fast-forward (the rest of each period): every reference is still
//     simulated functionally — caches, attraction memories, the
//     directory and the protocol see the complete reference stream, so
//     count metrics (reads, node misses, SLC misses, write-backs, bus
//     occupancy) remain exactly counted — but nothing arbitrates for
//     resources. Clocks advance by contention-free latency scaled by a
//     contention factor calibrated in the measurement windows.
//
// Synchronization (locks, barriers, write-buffer drains) is simulated in
// every phase, so load imbalance survives fast-forward. See DESIGN.md
// §10 for the error model. In exact mode the geometry fields are ignored
// entirely: an exact machine with geometry set behaves bit-identically
// to one with a zero Fidelity.
type Fidelity struct {
	// Mode is "", FidelityExact or FidelitySampled.
	Mode string
	// Warmup is the detailed warm-up span preceding each measurement
	// window, excluded from contention calibration (simulated ns).
	Warmup engine.Time
	// Window is the measurement-window span (simulated ns).
	Window engine.Time
	// Period is the sampling period; Period - Warmup - Window ns of every
	// period run in fast-forward.
	Period engine.Time
}

// Sampled reports whether the spec selects sampled fidelity.
func (f Fidelity) Sampled() bool { return f.Mode == FidelitySampled }

// DefaultFidelity returns the sampled mode with the default geometry.
func DefaultFidelity() Fidelity {
	return Fidelity{
		Mode:   FidelitySampled,
		Warmup: DefaultFFWarmup,
		Window: DefaultFFWindow,
		Period: DefaultFFPeriod,
	}
}

// Validate checks the spec (geometry is only constrained in sampled
// mode). Params validation calls it; the comasrv request layer calls it
// directly so a bad geometry rejects at admission instead of at run.
func (f Fidelity) Validate() error {
	switch f.Mode {
	case "", FidelityExact:
		return nil
	case FidelitySampled:
		if f.Window <= 0 {
			return fmt.Errorf("machine: sampled fidelity Window = %d", f.Window)
		}
		if f.Warmup < 0 {
			return fmt.Errorf("machine: sampled fidelity Warmup = %d", f.Warmup)
		}
		if f.Period < f.Warmup+f.Window {
			return fmt.Errorf("machine: sampled fidelity Period %d shorter than Warmup+Window %d",
				f.Period, f.Warmup+f.Window)
		}
		return nil
	default:
		return fmt.Errorf("machine: unknown fidelity mode %q", f.Mode)
	}
}

// Topology selects and parameterizes the machine's interconnect. The
// zero value is the paper's single snooping bus.
type Topology struct {
	// Kind is TopologyBus ("" or "bus") or TopologyRing ("ring").
	Kind string
	// Clusters is the number of clusters on the ring; the machine's
	// nodes are split into equal contiguous blocks, each keeping its own
	// intra-cluster bus and shared attraction memories.
	Clusters int
	// LinkLatency is the per-hop traversal latency in nanoseconds added
	// on top of link occupancy. Zero is honored (the cross-topology
	// equivalence configuration); the config layer supplies
	// DefaultLinkLatency when unspecified.
	LinkLatency engine.Time
	// LinkBandwidth divides link occupancy (1.0 = one DefaultLinkPhase
	// per address phase); 0 means 1.0.
	LinkBandwidth float64
}

// Params configures one machine instance.
type Params struct {
	// Procs is the total processor count (the paper always uses 16).
	Procs int
	// ProcsPerNode is the clustering degree: 1, 2 or 4 in the paper.
	// Processes are assigned to clusters in sequential order.
	ProcsPerNode int

	// L1Bytes is the per-processor first-level cache size (4 KB,
	// direct-mapped in the paper).
	L1Bytes int
	// SLCBytes is the per-processor second-level cache size (working
	// set / 128 in the paper). 4-way set-associative.
	SLCBytes int
	// AMBytesPerProc is the attraction-memory quota per processor; a
	// node's AM is AMBytesPerProc * ProcsPerNode.
	AMBytesPerProc int
	// AMWays is the attraction-memory associativity (4 default, 8 for
	// the Figure 4 variant).
	AMWays int

	// Bandwidth multipliers divide the occupancy (not the latency) of
	// the corresponding resource; the paper studies 2x and 4x DRAM
	// bandwidth, 2x node-controller bandwidth and 0.5x bus bandwidth.
	DRAMBandwidth float64
	NCBandwidth   float64
	BusBandwidth  float64

	// WriteBufferDepth is entries per processor (10 in the paper).
	WriteBufferDepth int

	// Inclusive selects the inclusive hierarchy (paper default). When
	// false, AM replacement evictions do not purge the node's private
	// caches — the "break the inclusion" extension of paper §4.2.
	Inclusive bool

	// Policy selects the protocol's replacement design choices
	// (DefaultPolicy = the paper's protocol; see coma.Policy for the
	// ablation switches).
	Policy coma.Policy

	// SpinLocks models test&test&set contention: when a lock frees, all
	// waiters re-read the lock line (a burst of accesses) before one
	// wins the read-modify-write. The default (false) models an ideal
	// queue lock: waiters sleep and exactly one RMW happens per
	// acquisition — the extension benchmark BenchmarkAblationLocks
	// measures the difference.
	SpinLocks bool

	// Topology selects the interconnect joining the nodes; the zero
	// value is the paper's snooping bus.
	Topology Topology

	// Fidelity selects the execution fidelity; the zero value is exact
	// full-detail simulation.
	Fidelity Fidelity
}

// DefaultParams returns the paper's baseline machine for the given
// clustering degree and memory sizing.
func DefaultParams(procs, procsPerNode, slcBytes, amBytesPerProc int) Params {
	return Params{
		Procs:            procs,
		ProcsPerNode:     procsPerNode,
		L1Bytes:          4096,
		SLCBytes:         slcBytes,
		AMBytesPerProc:   amBytesPerProc,
		AMWays:           4,
		DRAMBandwidth:    1,
		NCBandwidth:      1,
		BusBandwidth:     1,
		WriteBufferDepth: DefaultWriteBufferDepth,
		Inclusive:        true,
		Policy:           coma.DefaultPolicy(),
	}
}

// Validate checks structural consistency.
func (p Params) Validate() error {
	if p.Procs <= 0 {
		return fmt.Errorf("machine: Procs = %d", p.Procs)
	}
	if p.ProcsPerNode <= 0 || p.Procs%p.ProcsPerNode != 0 {
		return fmt.Errorf("machine: %d procs not divisible into nodes of %d", p.Procs, p.ProcsPerNode)
	}
	if p.Nodes() > 64 {
		return fmt.Errorf("machine: %d nodes exceeds the 64-node bitmask limit", p.Nodes())
	}
	switch p.Topology.Kind {
	case "", TopologyBus:
		if p.Topology.Clusters > 1 {
			return fmt.Errorf("machine: bus topology with %d clusters", p.Topology.Clusters)
		}
	case TopologyRing:
		c := p.Topology.Clusters
		if c < 1 || p.Nodes()%c != 0 {
			return fmt.Errorf("machine: %d nodes not divisible into %d ring clusters", p.Nodes(), c)
		}
		if p.Topology.LinkLatency < 0 {
			return fmt.Errorf("machine: negative link latency %d", p.Topology.LinkLatency)
		}
		if p.Topology.LinkBandwidth < 0 {
			return fmt.Errorf("machine: negative link bandwidth %g", p.Topology.LinkBandwidth)
		}
	default:
		return fmt.Errorf("machine: unknown topology %q", p.Topology.Kind)
	}
	if p.L1Bytes < addrspace.LineSize {
		return fmt.Errorf("machine: L1Bytes = %d", p.L1Bytes)
	}
	if p.SLCBytes < addrspace.LineSize*4 {
		return fmt.Errorf("machine: SLCBytes = %d too small", p.SLCBytes)
	}
	if p.AMWays <= 0 {
		return fmt.Errorf("machine: AMWays = %d", p.AMWays)
	}
	if p.AMBytesPerProc < addrspace.LineSize*p.AMWays {
		return fmt.Errorf("machine: AMBytesPerProc = %d smaller than one set", p.AMBytesPerProc)
	}
	if p.DRAMBandwidth <= 0 || p.NCBandwidth <= 0 || p.BusBandwidth <= 0 {
		return fmt.Errorf("machine: non-positive bandwidth multiplier")
	}
	if p.WriteBufferDepth <= 0 {
		return fmt.Errorf("machine: WriteBufferDepth = %d", p.WriteBufferDepth)
	}
	return p.Fidelity.Validate()
}

// Nodes returns the node count implied by the clustering degree.
func (p Params) Nodes() int { return p.Procs / p.ProcsPerNode }

// occupancy applies a bandwidth multiplier to a base occupancy, keeping it
// at least one nanosecond.
func occupancy(base engine.Time, bw float64) engine.Time {
	occ := engine.Time(float64(base) / bw)
	if occ < 1 {
		occ = 1
	}
	return occ
}

// oddSets converts a capacity in bytes into a set count for the given
// associativity, rounded up to the next odd number. The paper's sizing
// methodology ("this results in odd cache sizes") has the same effect:
// set counts with no common factor with the power-of-two strides of array
// codes, which would otherwise alias whole columns into a few sets.
func oddSets(bytes, ways int) int {
	sets := (bytes + addrspace.LineSize*ways - 1) / (addrspace.LineSize * ways)
	if sets%2 == 0 {
		sets++
	}
	if sets < 1 {
		sets = 1
	}
	return sets
}
