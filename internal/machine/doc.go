// Package machine is the whole-machine timing simulator: it interleaves
// the per-processor reference streams through the cache hierarchy and the
// COMA protocol, modelling contention for second-level caches, node
// controllers, attraction-memory DRAMs and the global shared bus, plus the
// release-consistent write buffers and the synchronization primitives.
package machine
