package machine

import (
	"repro/internal/addrspace"
	"repro/internal/coma"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Interconnect abstracts the global medium that joins the machine's nodes
// below their attraction memories: arbitration, routing and occupancy
// accounting. The timing model (charge and friends) is topology-blind; it
// describes *what* must travel — a request to a known supplier, a data
// reply, an address broadcast to the holders — and the interconnect
// decides what that costs on its medium.
//
// Two implementations exist: busFabric, the paper's single snooping bus
// (the reference — its transaction costs are bit-for-bit those of the
// pre-abstraction machine), and ringFabric (ring.go), a unidirectional
// ring of clusters with a two-level directory.
//
// Contract shared by all methods:
//   - `at` is when the message is ready to leave its source; the return
//     value is when it is available at its destination (for broadcasts:
//     at the furthest holder).
//   - Every method claims its occupancy on the fabric's engine.Resources
//     (through Machine.claimRes, so fast-forward phases of a sampled run
//     pass through without arbitration), accounts traffic by class into
//     the machine's occupancy counters and emits grant events
//     (obs.KindBusGrant / obs.KindLinkGrant) when a sink is installed, so
//     tracing sees every transaction on every topology.
//   - `l` is the line the transaction concerns; address-interleaved
//     directories route by it, the bus ignores it.
type Interconnect interface {
	// Kind names the topology ("bus", "ring").
	Kind() string
	// Request ships a coherence request from src to the known holder dst
	// on the critical path (read fetch, read-exclusive fetch, ownership
	// promotion). The returned time is the request's arrival at dst.
	Request(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time
	// Response ships the data reply of a request from supplier src back
	// to requester dst. Occupancy is attributed to dst, the node whose
	// access is being served, matching the bus machine's accounting.
	Response(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time
	// Broadcast ships an address-only notification (invalidation) from
	// src to the holder set in mask (node bitmask, excluding src).
	Broadcast(src int, mask uint64, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time
	// DataBroadcast ships a data-carrying broadcast (update-policy write)
	// from src to the holder set in mask.
	DataBroadcast(src int, mask uint64, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time
	// Inject ships a relocated data line from src to dst off the critical
	// path (replacement injection, write-back); returns arrival at dst.
	Inject(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time
	// Resources lists the fabric's timing resources in reporting order.
	Resources() []*engine.Resource
	// Utilization is the fabric's mean resource utilization over dur ns.
	Utilization(dur float64) float64
	// Reset clears resource statistics (measured-section boundary).
	Reset()
}

// Interconnect kind names, as used by Params.Topology and the config and
// server layers.
const (
	TopologyBus  = "bus"
	TopologyRing = "ring"
)

// busFabric is the paper's single snooping bus. Every transaction claims
// the one global bus resource: one phase (DefaultBusPhase) for addresses
// and request/response halves, two phases for combined address+data
// transfers (injections, update broadcasts). Broadcasts reach every
// snooper in the same phase, so mask and line are ignored.
type busFabric struct {
	m   *Machine
	bus *engine.Resource
}

func newBusFabric(m *Machine) *busFabric {
	return &busFabric{m: m, bus: engine.NewResource("bus")}
}

// claim is the single gateway to the bus: it claims occupancy, accounts
// traffic by class and emits a bus-grant event when a sink is installed.
func (b *busFabric) claim(node int, at, occ engine.Time, class coma.TxnClass) engine.Time {
	m := b.m
	start := m.claimRes(b.bus, at, occ)
	m.traffic(class, occ)
	if m.rec.Enabled() {
		m.rec.Emit(obs.Event{
			Kind:  obs.KindBusGrant,
			At:    int64(start),
			Node:  int32(node),
			Peer:  -1,
			Class: uint8(class),
			Dur:   int64(occ),
		})
	}
	return start
}

func (b *busFabric) Kind() string { return TopologyBus }

func (b *busFabric) Request(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	return b.claim(src, at, b.m.occBus, class) + DefaultBusPhase
}

func (b *busFabric) Response(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	return b.claim(dst, at, b.m.occBus, class) + DefaultBusPhase
}

func (b *busFabric) Broadcast(src int, mask uint64, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	return b.claim(src, at, b.m.occBus, class) + DefaultBusPhase
}

func (b *busFabric) DataBroadcast(src int, mask uint64, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	return b.claim(src, at, 2*b.m.occBus, class) + 2*DefaultBusPhase
}

func (b *busFabric) Inject(src, dst int, l addrspace.Line, at engine.Time, class coma.TxnClass) engine.Time {
	return b.claim(src, at, 2*b.m.occBus, class) + 2*DefaultBusPhase
}

func (b *busFabric) Resources() []*engine.Resource { return []*engine.Resource{b.bus} }

func (b *busFabric) Utilization(dur float64) float64 {
	return float64(b.bus.BusyTotal()) / dur
}

func (b *busFabric) Reset() { b.bus.Reset() }
