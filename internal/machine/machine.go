package machine

import (
	"context"
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/coma"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Private-cache states. The L1 is write-through into the SLC and carries
// only a valid bit; the SLC is write-back with write-allocate: a store
// that owns its line (SLC dirty, AM Exclusive) completes locally, so
// repeated stores to a line cost one AM access, not one per store.
const (
	cacheValid cache.State = 1 // clean: readable, a store must upgrade
	cacheDirty cache.State = 2 // writable: AM state is Exclusive
)

// nodeRes bundles the shared per-node resources: the node controller
// (state & tag pipeline) and the attraction-memory DRAM.
type nodeRes struct {
	nc   *engine.Resource
	dram *engine.Resource
}

// wbEntry is an in-flight write drain.
type wbEntry struct {
	done  engine.Time
	class StallClass
}

// proc is one simulated processor.
type proc struct {
	id, node int
	t        engine.Time
	refs     *trace.Stream
	pc       int

	l1, slc *cache.Cache
	slcRes  *engine.Resource

	// Write buffer (release consistency): fixed-capacity ring of in-flight
	// drains (head wbHead, length wbLen), so steady-state retirement never
	// reslices or reallocates.
	wb       []wbEntry
	wbHead   int
	wbLen    int
	wbLast   engine.Time // completion of the most recently issued drain
	blocked  bool
	blockAt  engine.Time
	done     bool
	start    engine.Time // measured-section start
	finished engine.Time

	// ffRem carries the fixed-point remainder of λ-scaled fast-forward
	// clock advances (sampled fidelity only), keeping schedules integral
	// and deterministic.
	ffRem int64

	// Fast-forward line memo (sampled fidelity only; see ffRead/ffWrite):
	// a 64-entry direct-mapped table of lines known L1-resident (ffValid)
	// or SLC-dirty with siblings already invalidated (ffWritable). Valid
	// bits persist across bursts — every path that can remove a line from
	// this processor's L1 (own eviction, sibling store, AM purge) drops
	// the memo entry — while writable bits are re-proved each burst.
	ffLines    [64]addrspace.Line
	ffValid    uint64
	ffWritable uint64

	st ProcStats
}

// lockState serializes a spin lock.
type lockState struct {
	held    bool
	holder  int
	freeAt  engine.Time
	waiters []int
}

// barrierState tracks the single in-flight global barrier (streams are
// SPMD: every processor executes the same barrier sequence).
type barrierState struct {
	id       uint32
	active   bool
	arrived  []int
	arriveAt []engine.Time
	measure  bool
}

// MemSystem abstracts the node-level memory system below the second-level
// caches. The default implementation is the bus-based COMA protocol; the
// CC-NUMA baseline in internal/numa provides a home-based alternative for
// ablation studies.
type MemSystem interface {
	// Read and Write perform an SLC-missing access by a node and report
	// its effects (hit/cold/bus transactions).
	Read(node int, l addrspace.Line) coma.Effect
	Write(node int, l addrspace.Line) coma.Effect
	// WriteBack retires a dirty SLC line to the memory system.
	WriteBack(node int, l addrspace.Line) coma.Effect
	// Stats and ResetStats expose protocol-level counters.
	Stats() coma.Stats
	ResetStats()
}

// comaMem adapts the COMA protocol to MemSystem.
type comaMem struct{ p *coma.Protocol }

func (c comaMem) Read(node int, l addrspace.Line) coma.Effect  { return c.p.Read(node, l) }
func (c comaMem) Write(node int, l addrspace.Line) coma.Effect { return c.p.Write(node, l) }
func (c comaMem) WriteBack(node int, l addrspace.Line) coma.Effect {
	// The attraction memory holds the line (inclusion): a local DRAM
	// write, no global transaction.
	return coma.Effect{Hit: true}
}
func (c comaMem) Stats() coma.Stats { return c.p.Stats() }
func (c comaMem) ResetStats()       { c.p.ResetStats() }

// Machine simulates one configuration.
type Machine struct {
	params Params
	prot   *coma.Protocol
	mem    MemSystem
	ic     Interconnect
	hier   *coma.Hierarchy
	nodes  []*nodeRes
	procs  []*proc
	ready  procHeap
	locks  map[uint32]*lockState
	bar    barrierState

	occDRAM, occNC, occBus engine.Time

	// rec forwards instrumentation events to an optional sink; now tracks
	// the clock of the processor currently stepping, so protocol-level
	// events (which have no clock of their own) can be timestamped.
	// userSink and sampler are the two instrumentation consumers rec fans
	// out to (rewire composes them).
	rec      obs.Recorder
	userSink obs.Sink
	sampler  *obs.Sampler
	now      engine.Time

	measuring      bool
	reads          int64
	readNodeMisses int64
	slcMisses      int64
	busOcc         [3]engine.Time
	writeBacks     int64
	dirtyPurges    int64
	latency        LatencyHist

	// Adaptive fidelity (fidelity.go). ff is nil in exact mode, so the
	// exact path pays nothing beyond always-false branch checks:
	// counting gates the window-calibration sites (true only inside a
	// sampled measurement window), freeflow makes resource claims pass
	// through during fast-forward, waitAcc accumulates queueing delay
	// for the λ calibration. The fast-forward line memo lives on each
	// proc.
	ff       *ffState
	counting bool
	freeflow bool
	waitAcc  engine.Time
}

// New builds a machine with the paper's bus-based COMA memory system.
func New(p Params) (*Machine, error) { return NewWithMem(p, nil) }

// NewWithMem builds a machine with a custom memory system; buildMem
// receives the machine's purge and downgrade callbacks so the alternative
// system can keep the private caches coherent. A nil buildMem selects the
// COMA protocol.
func NewWithMem(p Params, buildMem func(purge func(node int, l addrspace.Line, evict bool), downgrade func(node int, l addrspace.Line)) MemSystem) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		params:  p,
		locks:   make(map[uint32]*lockState),
		occDRAM: occupancy(DefaultDRAMTime, p.DRAMBandwidth),
		occNC:   occupancy(DefaultNCTime, p.NCBandwidth),
		occBus:  occupancy(DefaultBusPhase, p.BusBandwidth),
	}
	if p.Fidelity.Sampled() {
		m.ff = newFFState(p.Fidelity)
	}
	nodes := p.Nodes()
	amSets := oddSets(p.AMBytesPerProc*p.ProcsPerNode, p.AMWays)
	ring := p.Topology.Kind == TopologyRing
	if ring && buildMem != nil {
		return nil, fmt.Errorf("machine: ring topology requires the COMA memory system (its Txn holder masks drive ring routing)")
	}
	if buildMem == nil {
		var transition func(node int, l addrspace.Line, from, to cache.State)
		if ring {
			perCluster := nodes / p.Topology.Clusters
			m.hier = coma.NewHierarchy(nodes, p.Topology.Clusters, perCluster*amSets*p.AMWays)
			transition = m.hier.OnTransition
		}
		m.prot = coma.NewProtocol(coma.Config{
			Nodes:      nodes,
			SetsPerAM:  amSets,
			Ways:       p.AMWays,
			Policy:     p.Policy,
			PolicySet:  true,
			Purge:      m.onPurge,
			Downgrade:  m.onDowngrade,
			Transition: transition,
		})
		m.mem = comaMem{p: m.prot}
	} else {
		m.mem = buildMem(m.onPurge, m.onDowngrade)
	}
	if ring {
		m.ic = newRingFabric(m, p)
	} else {
		m.ic = newBusFabric(m)
	}
	m.nodes = make([]*nodeRes, nodes)
	for n := range m.nodes {
		m.nodes[n] = &nodeRes{
			nc:   engine.NewResource(fmt.Sprintf("nc%d", n)),
			dram: engine.NewResource(fmt.Sprintf("dram%d", n)),
		}
	}
	l1Sets := oddSets(p.L1Bytes, 1)
	slcSets := oddSets(p.SLCBytes, 4)
	m.procs = make([]*proc, p.Procs)
	for i := range m.procs {
		m.procs[i] = &proc{
			id:     i,
			node:   i / p.ProcsPerNode,
			l1:     cache.New(cache.Config{Name: fmt.Sprintf("l1-%d", i), Sets: l1Sets, Ways: 1}),
			slc:    cache.New(cache.Config{Name: fmt.Sprintf("slc-%d", i), Sets: slcSets, Ways: 4}),
			slcRes: engine.NewResource(fmt.Sprintf("slcres-%d", i)),
			wb:     make([]wbEntry, p.WriteBufferDepth),
		}
	}
	m.ready.init(m.procs)
	m.bar.arrived = make([]int, 0, p.Procs)
	m.bar.arriveAt = make([]engine.Time, 0, p.Procs)
	return m, nil
}

// Release returns the machine's pooled state (cache entry arrays) for
// reuse by later machines. The machine must not be used afterwards.
// Optional: an unreleased machine is simply collected by the GC.
func (m *Machine) Release() {
	for _, p := range m.procs {
		p.l1.Release()
		p.slc.Release()
	}
	if m.prot != nil {
		m.prot.Release()
	}
}

// Protocol exposes the protocol for tests and tools.
func (m *Machine) Protocol() *coma.Protocol { return m.prot }

// Interconnect exposes the fabric joining the nodes.
func (m *Machine) Interconnect() Interconnect { return m.ic }

// Hierarchy exposes the two-level directory, or nil on non-hierarchical
// topologies.
func (m *Machine) Hierarchy() *coma.Hierarchy { return m.hier }

// SetSink installs an observability sink receiving machine-level events
// (bus grants, write-buffer stalls, sync arrivals) and, when the COMA
// protocol is in use, protocol-level events (state transitions,
// replacements). A nil sink disables instrumentation; the disabled path
// costs nothing. Install before Run.
func (m *Machine) SetSink(s obs.Sink) {
	m.userSink = s
	m.rewire()
}

// EnableSampling attaches a windowed sampler: the run's counter deltas
// are binned into windows of the given simulated width and surfaced as
// Result.Timeline. Sampling is a pure observer (the timing model is
// untouched) and composes with SetSink in either order. Enable before
// Run; the default (no sampler) costs one predictable branch per
// reference.
func (m *Machine) EnableSampling(window engine.Time) {
	m.sampler = obs.NewSampler(int64(window))
	m.rewire()
}

// rewire recomputes the effective event sink from the installed user
// sink and sampler, and points the protocol's emission path at it.
func (m *Machine) rewire() {
	var s obs.Sink
	switch {
	case m.sampler != nil && m.userSink != nil:
		s = obs.Tee{m.sampler, m.userSink}
	case m.sampler != nil:
		s = m.sampler
	default:
		s = m.userSink
	}
	m.rec = obs.NewRecorder(s)
	if m.prot != nil {
		m.prot.SetSink(s)
		m.prot.SetClock(func() int64 { return int64(m.now) })
	}
}

// onPurge keeps private caches included in the AM: any AM line loss purges
// the node's L1s and SLCs, except replacement evictions in the
// non-inclusive variant. A purged dirty SLC line is flushed with the
// departing AM line (counted; its data rides the replacement transaction).
func (m *Machine) onPurge(node int, l addrspace.Line, evict bool) {
	if evict && !m.params.Inclusive {
		return
	}
	first := node * m.params.ProcsPerNode
	for i := first; i < first+m.params.ProcsPerNode; i++ {
		m.procs[i].l1.Invalidate(l)
		if st, ok := m.procs[i].slc.Lookup(l); ok && st == cacheDirty {
			m.dirtyPurges++
		}
		m.procs[i].slc.Invalidate(l)
		if m.ff != nil {
			m.procs[i].ffDrop(l)
		}
	}
}

// onDowngrade revokes write permission in the supplying node's private
// caches when its Exclusive AM line becomes Owner.
func (m *Machine) onDowngrade(node int, l addrspace.Line) {
	first := node * m.params.ProcsPerNode
	for i := first; i < first+m.params.ProcsPerNode; i++ {
		if st, ok := m.procs[i].slc.Lookup(l); ok && st == cacheDirty {
			m.procs[i].slc.SetState(l, cacheValid)
		}
		if m.ff != nil {
			m.procs[i].ffDrop(l)
		}
	}
}

// Run simulates the trace to completion and returns the measured-section
// result. The machine is single-use: Run may only be called once.
func (m *Machine) Run(tr *trace.Trace) (*Result, error) {
	return m.RunContext(context.Background(), tr)
}

// cancelCheckInterval is how many scheduler iterations pass between
// context-cancellation checks in RunContext. A channel poll costs a few
// nanoseconds; amortized over this many steps it is invisible next to the
// ~80 ns/ref simulation cost, while still bounding cancellation latency
// to well under a millisecond of wall clock.
const cancelCheckInterval = 4096

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// (deadline, timeout, client disconnect) the simulation stops between
// scheduler steps and returns ctx's error. A context that can never be
// cancelled (context.Background) costs nothing extra.
func (m *Machine) RunContext(ctx context.Context, tr *trace.Trace) (*Result, error) {
	if tr.Procs != m.params.Procs {
		return nil, fmt.Errorf("machine: trace has %d procs, machine %d", tr.Procs, m.params.Procs)
	}
	for i, p := range m.procs {
		p.refs = &tr.Streams[i]
		m.ready.touch(int32(i))
	}
	done := ctx.Done() // nil when ctx can never be cancelled
	steps := 0
	// Step the (clock, id)-minimum processor in place. The order is a
	// strict total order, so while a step leaves p's clock unchanged —
	// L1-hit loads, stores absorbed by the write buffer — p is still the
	// unique minimum and can keep stepping with no heap work at all:
	// every path that wakes another processor (release, barrier exit)
	// also advances p's clock, so no other key can have moved meanwhile.
	for {
		if done != nil {
			if steps++; steps >= cancelCheckInterval {
				steps = 0
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
		}
		id, ok := m.ready.peek()
		if !ok {
			break
		}
		p := m.procs[id]
		if m.ff != nil && m.ff.fastAt(p.t) {
			m.ffBurst(p)
		} else {
			for {
				t0 := p.t
				m.step(p)
				if p.done || p.blocked || p.t != t0 {
					break
				}
			}
		}
		if p.done || p.blocked {
			m.ready.remove(id)
		} else {
			m.ready.fix(id)
		}
	}
	for _, p := range m.procs {
		if !p.done {
			return nil, fmt.Errorf("machine: deadlock — proc %d blocked at pc %d (%s)",
				p.id, p.pc, refAt(p))
		}
	}
	if !m.measuring {
		return nil, fmt.Errorf("machine: trace never reached MeasureStart")
	}
	return m.result(), nil
}

func refAt(p *proc) string {
	if p.refs != nil && p.pc < p.refs.Len() {
		return p.refs.Kind(p.pc).String()
	}
	return "end"
}

// step executes one trace record for p.
func (m *Machine) step(p *proc) {
	m.now = p.t
	if m.sampler != nil {
		// Scheduler time is non-decreasing (the heap steps the global
		// (clock, id) minimum), so this closes every window the clock
		// passed.
		m.sampler.Advance(int64(p.t))
	}
	if m.ff != nil {
		m.ffSync(p.t)
	}
	if p.pc >= p.refs.Len() {
		// Released from a final barrier with nothing left to run.
		m.finish(p)
		return
	}
	r := p.refs.At(p.pc)
	switch r.Kind {
	case trace.Compute:
		if m.measuring {
			p.st.Busy += r.Dur
		}
		p.t += r.Dur
		p.pc++
	case trace.Read:
		m.doRead(p, r.Addr)
		p.pc++
	case trace.Write:
		m.doWrite(p, r.Addr)
		p.pc++
	case trace.Acquire:
		if !m.doAcquire(p, r) {
			return // blocked; retry the same record when woken
		}
		p.pc++
	case trace.Release:
		m.doRelease(p, r)
		p.pc++
	case trace.Barrier, trace.MeasureStart:
		p.pc++
		m.doBarrier(p, r)
	default:
		panic(fmt.Sprintf("machine: unknown ref kind %d", r.Kind))
	}
	if !p.blocked && p.pc >= p.refs.Len() {
		m.finish(p)
	}
}

// finish marks a processor complete, folding outstanding write-buffer
// drains into its finish time.
func (m *Machine) finish(p *proc) {
	p.done = true
	p.finished = engine.Max(p.t, p.wbLast)
	if m.measuring {
		p.st.Finish = p.finished - p.start
	}
}

// doRead services a blocking load.
func (m *Machine) doRead(p *proc, a addrspace.Addr) {
	if m.measuring {
		p.st.Reads++
		m.reads++
	}
	if m.sampler != nil {
		m.sampler.NoteAccess(false)
	}
	l := addrspace.LineOf(a)
	if _, ok := p.l1.Touch(l); ok {
		if m.measuring {
			m.latency.add(0) // L1 hit: 0 ns (paper)
		}
		return
	}
	t0 := p.t
	if _, ok := p.slc.Touch(l); ok {
		start := p.slcRes.Claim(p.t, DefaultSLCHit)
		p.t = start + DefaultSLCHit
		m.l1Insert(p, l)
		m.stall(p, StallSLC, p.t-t0)
		if m.measuring {
			m.latency.add(p.t - t0)
		}
		if m.counting {
			m.ff.noteRead(p.id, StallSLC, p.t-t0, DefaultSLCHit)
		}
		return
	}
	var w0 engine.Time
	if m.counting {
		w0 = m.waitAcc
	}
	eff := m.mem.Read(p.node, l)
	if m.sampler != nil {
		m.sampler.NoteMiss(!eff.Hit && !eff.Cold)
	}
	done, class := m.charge(p.node, p.slcRes, p.t, eff)
	if m.counting {
		// Calibration: the read's measured service time against its
		// contention-free component (service minus queueing delay).
		m.ff.noteRead(p.id, class, done-t0, (done-t0)-(m.waitAcc-w0))
	}
	p.t = done
	m.l1Insert(p, l)
	m.slcInsert(p, l, cacheValid)
	if m.measuring {
		m.slcMisses++
		if !eff.Hit && !eff.Cold {
			m.readNodeMisses++
		}
		m.latency.add(p.t - t0)
	}
	m.stall(p, class, p.t-t0)
}

// l1Insert fills p's L1 and, in sampled mode, records the line in p's
// fast-forward memo (the eviction drop keeps the memo's L1-residency
// claims exact).
func (m *Machine) l1Insert(p *proc, l addrspace.Line) {
	victim, evicted := p.l1.Insert(l, cacheValid)
	if m.ff == nil {
		return
	}
	if evicted {
		p.ffDrop(victim.Line)
	}
	i := uint64(l) & 63
	bit := uint64(1) << i
	p.ffLines[i] = l
	p.ffValid |= bit
	p.ffWritable &^= bit
}

// ffDrop evicts a line from p's fast-forward memo (its residency claim no
// longer holds).
func (p *proc) ffDrop(l addrspace.Line) {
	i := uint64(l) & 63
	if p.ffLines[i] == l {
		bit := uint64(1) << i
		p.ffValid &^= bit
		p.ffWritable &^= bit
	}
}

// slcInsert fills the SLC, writing back a displaced dirty victim to the
// attraction memory (off the critical path) and keeping the L1 included.
func (m *Machine) slcInsert(p *proc, l addrspace.Line, st cache.State) {
	victim, evicted := p.slc.Insert(l, st)
	if !evicted {
		return
	}
	p.l1.Invalidate(victim.Line)
	if m.ff != nil {
		p.ffDrop(victim.Line)
	}
	if victim.State == cacheDirty {
		m.writeBacks++
		eff := m.mem.WriteBack(p.node, victim.Line)
		m.chargeAsync(p.node, eff, p.t)
	}
}

// chargeAsync accounts an off-critical-path memory-system action (e.g. a
// dirty write-back) starting around time at: resources are occupied but no
// processor waits.
func (m *Machine) chargeAsync(node int, eff coma.Effect, at engine.Time) {
	w := m.waitAcc // off the critical path: keep its queueing out of λ calibration
	if len(eff.Txns) == 0 {
		// Node-local: controller plus DRAM.
		nr := m.nodes[node]
		start := m.claimRes(nr.nc, at, m.occNC)
		m.claimRes(nr.dram, start+DefaultNCTime, m.occDRAM)
		m.waitAcc = w
		return
	}
	for _, txn := range eff.Txns {
		var arr engine.Time
		switch {
		case txn.Data && txn.Remote >= 0:
			arr = m.ic.Inject(node, txn.Remote, txn.Line, at, txn.Class)
		case txn.Data:
			arr = m.ic.DataBroadcast(node, txn.Mask, txn.Line, at, txn.Class)
		case txn.Remote >= 0:
			arr = m.ic.Request(node, txn.Remote, txn.Line, at, txn.Class)
		default:
			arr = m.ic.Broadcast(node, txn.Mask, txn.Line, at, txn.Class)
		}
		if txn.Remote >= 0 {
			rn := m.nodes[txn.Remote]
			s2 := m.claimRes(rn.nc, arr, m.occNC)
			m.claimRes(rn.dram, s2+DefaultNCTime, m.occDRAM)
		}
	}
	m.waitAcc = w
}

func (m *Machine) stall(p *proc, c StallClass, d engine.Time) {
	if m.measuring && d > 0 {
		p.st.Stall[c] += d
	}
}

// doWrite retires a store. A store whose line is already writable (SLC
// dirty, AM Exclusive) completes in the SLC; otherwise it needs an
// AM-level action (allocate/upgrade/fetch-exclusive) which drains through
// the write buffer — the processor stalls only when the buffer is full
// (release consistency).
func (m *Machine) doWrite(p *proc, a addrspace.Addr) {
	if m.measuring {
		p.st.Writes++
	}
	if m.sampler != nil {
		m.sampler.NoteAccess(true)
	}
	l := addrspace.LineOf(a)
	p.l1.Touch(l) // L1 is write-through into the SLC
	if st, ok := p.slc.Touch(l); ok && st == cacheDirty {
		p.slcRes.Claim(p.t, DefaultSLCWrite) // write-port pressure only
		if !m.params.Policy.WriteUpdate {
			m.invalidateSiblings(p, l)
		}
		return
	}
	// Retire completed drains, then stall if still full.
	p.retireDrains()
	if p.wbLen >= m.params.WriteBufferDepth {
		head := p.wb[p.wbHead]
		if m.rec.Enabled() {
			m.rec.Emit(obs.Event{
				Kind:  obs.KindWBStall,
				At:    int64(p.t),
				Node:  int32(p.id),
				Peer:  -1,
				Class: uint8(head.class),
				Dur:   int64(head.done - p.t),
			})
		}
		m.stall(p, head.class, head.done-p.t)
		p.t = head.done
		p.retireDrains()
	}
	// Compute this drain's service eagerly (drains are FIFO).
	start := engine.Max(p.t, p.wbLast)
	eff := m.mem.Write(p.node, l)
	if m.sampler != nil {
		m.sampler.NoteMiss(!eff.Hit && !eff.Cold)
	}
	if m.measuring {
		m.slcMisses++
	}
	var w0 engine.Time
	if m.counting {
		w0 = m.waitAcc
	}
	done, class := m.charge(p.node, p.slcRes, start, eff)
	if m.counting {
		// Drain calibration, measured from the drain's scheduled start
		// (not the store's issue time) so write-buffer backlog isn't
		// double-counted as contention.
		m.ff.noteDrain(p.id, done-start, (done-start)-(m.waitAcc-w0))
	}
	p.wbLast = done
	slot := p.wbHead + p.wbLen
	if slot >= len(p.wb) {
		slot -= len(p.wb)
	}
	p.wb[slot] = wbEntry{done: done, class: class}
	p.wbLen++
	// Write-allocate; the SLC copy is writable only when the memory
	// system granted exclusivity (always under invalidation; only for
	// sole copies under the update policy).
	st := cacheValid
	if eff.Writable {
		st = cacheDirty
	}
	m.slcInsert(p, l, st)
	m.l1Insert(p, l)
	if !m.params.Policy.WriteUpdate {
		// Update-policy stores refresh sibling copies in place; the
		// invalidation protocol kills them.
		m.invalidateSiblings(p, l)
	}
}

// invalidateSiblings models the free intra-node snoop: a store invalidates
// the line in the other same-node processors' private caches.
func (m *Machine) invalidateSiblings(p *proc, l addrspace.Line) {
	first := p.node * m.params.ProcsPerNode
	for i := first; i < first+m.params.ProcsPerNode; i++ {
		if i == p.id {
			continue
		}
		m.procs[i].l1.Invalidate(l)
		m.procs[i].slc.Invalidate(l)
		if m.ff != nil {
			m.procs[i].ffDrop(l)
		}
	}
}

func (p *proc) retireDrains() {
	for p.wbLen > 0 && p.wb[p.wbHead].done <= p.t {
		p.wbHead++
		if p.wbHead == len(p.wb) {
			p.wbHead = 0
		}
		p.wbLen--
	}
}

// drainAll blocks p until its write buffer is empty (release semantics),
// charging the wait to Sync.
func (m *Machine) drainAll(p *proc) {
	if p.wbLast > p.t {
		if m.measuring {
			p.st.Sync += p.wbLast - p.t
		}
		p.t = p.wbLast
	}
	p.wbHead = 0
	p.wbLen = 0
}

// charge walks an attraction-memory access through the timing model,
// claiming resource occupancy, and returns the completion time plus the
// stall class (AM for node-local service, Remote when the bus supplied
// data on the critical path).
//
// Contention-free latencies reproduce the paper's: AM hit 24+24+100 =
// 148 ns; remote 24+24+20+24+100+20+100+20 = 332 ns with the bus occupied
// 2x20 ns.
func (m *Machine) charge(node int, slcRes *engine.Resource, at engine.Time, eff coma.Effect) (engine.Time, StallClass) {
	nr := m.nodes[node]
	// SLC miss detection / update.
	start := m.claimRes(slcRes, at, DefaultSLCMissDetect)
	t := start + DefaultSLCMissDetect
	// Local node controller: state & tag check.
	start = m.claimRes(nr.nc, t, m.occNC)
	t = start + DefaultNCTime

	remote := false
	for _, txn := range eff.Txns {
		switch {
		case txn.Class == coma.TxnReplace:
			// Replacements ride buffers off the critical path; they
			// occupy the interconnect and the receiver's resources.
			m.chargeReplace(node, txn, t)
		case txn.Data && txn.Remote < 0:
			// Data broadcast (update-policy write): one transfer,
			// absorbed by the holders.
			remote = true
			t = m.ic.DataBroadcast(node, txn.Mask, txn.Line, t, txn.Class)
		case txn.Data:
			// Request/response data transfer on the critical path.
			remote = true
			t = m.ic.Request(node, txn.Remote, txn.Line, t, txn.Class)
			rn := m.nodes[txn.Remote]
			start = m.claimRes(rn.nc, t, m.occNC)
			t = start + DefaultNCTime
			start = m.claimRes(rn.dram, t, m.occDRAM)
			t = start + DefaultDRAMTime
			t = m.ic.Response(txn.Remote, node, txn.Line, t, txn.Class)
		default:
			// Address-only invalidation broadcast on the critical path.
			t = m.ic.Broadcast(node, txn.Mask, txn.Line, t, txn.Class)
		}
	}
	// Local DRAM: data read on a hit, line insertion on a fill, data
	// store on a write. A memory system without local installation
	// (CC-NUMA remote fetches) skips this stage.
	if !eff.NoLocalFill {
		start = m.claimRes(nr.dram, t, m.occDRAM)
		t = start + DefaultDRAMTime
	}
	if remote {
		t += DefaultRemotePad
		return t, StallRemote
	}
	return t, StallAM
}

// chargeReplace accounts a replacement transaction starting around time t:
// injections move a data line (an address+data transfer, receiver NC +
// DRAM); ownership promotions are a single address-only request to the
// heir.
func (m *Machine) chargeReplace(node int, txn coma.Txn, t engine.Time) {
	w := m.waitAcc // off the critical path: keep its queueing out of λ calibration
	if !txn.Data {
		m.ic.Request(node, txn.Remote, txn.Line, t, coma.TxnReplace)
		m.waitAcc = w
		return
	}
	arr := m.ic.Inject(node, txn.Remote, txn.Line, t, coma.TxnReplace)
	rn := m.nodes[txn.Remote]
	start := m.claimRes(rn.nc, arr, m.occNC)
	m.claimRes(rn.dram, start+DefaultNCTime, m.occDRAM)
	m.waitAcc = w
}

// claimRes arbitrates a timing resource. Detailed execution claims for
// real; in fast-forward (freeflow) the claim passes through at its
// request time without occupying anything — contention re-enters through
// the calibrated λ factor instead, and busy time is extrapolated from
// the windows (ffFinalize). Inside a measurement window the queueing
// delay feeds the λ calibration via waitAcc. In exact mode both flags
// are permanently false and this is exactly Resource.Claim.
func (m *Machine) claimRes(r *engine.Resource, at, occ engine.Time) engine.Time {
	if m.freeflow {
		return at
	}
	start := r.Claim(at, occ)
	if m.counting {
		m.waitAcc += start - at
	}
	return start
}

func (m *Machine) traffic(c coma.TxnClass, occ engine.Time) {
	if m.measuring {
		m.busOcc[c] += occ
	}
}

func (m *Machine) lock(id uint32) *lockState {
	lk, ok := m.locks[id]
	if !ok {
		lk = &lockState{holder: -1}
		m.locks[id] = lk
	}
	return lk
}

// doAcquire attempts to take the lock; returns false if p blocked.
func (m *Machine) doAcquire(p *proc, r trace.Ref) bool {
	lk := m.lock(r.ID)
	if lk.held {
		if m.rec.Enabled() {
			m.rec.Emit(obs.Event{
				Kind:  obs.KindSyncArrive,
				At:    int64(p.t),
				Node:  int32(p.id),
				Peer:  int32(lk.holder),
				Class: obs.SyncLockWait,
				Line:  uint64(r.ID),
			})
		}
		lk.waiters = append(lk.waiters, p.id)
		p.blocked = true
		p.blockAt = p.t
		if m.params.SpinLocks {
			// The spinner's test load misses once when the holder's
			// acquisition invalidated its copy, then spins locally;
			// charge that one coherence read now.
			eff := m.mem.Read(p.node, addrspace.LineOf(r.Addr))
			m.charge(p.node, p.slcRes, p.t, eff)
		}
		return false
	}
	if lk.freeAt > p.t {
		if m.measuring {
			p.st.Sync += lk.freeAt - p.t
		}
		p.t = lk.freeAt
	}
	// The test&set is a read-modify-write that must reach the coherence
	// point: a blocking write-access on the lock's line. Lock lines
	// migrate between attraction memories, so a lock last held within
	// the node is cheap — one of the sharing effects under study.
	t0 := p.t
	l := addrspace.LineOf(r.Addr)
	eff := m.mem.Write(p.node, l)
	done, class := m.charge(p.node, p.slcRes, p.t, eff)
	p.t = done
	m.stall(p, class, p.t-t0)
	lk.held = true
	lk.holder = p.id
	return true
}

// doRelease drains the write buffer, frees the lock and wakes the first
// waiter (FIFO handoff).
func (m *Machine) doRelease(p *proc, r trace.Ref) {
	m.drainAll(p)
	l := addrspace.LineOf(r.Addr)
	eff := m.mem.Write(p.node, l)
	done, class := m.charge(p.node, p.slcRes, p.t, eff)
	m.stall(p, class, done-p.t)
	p.t = done
	lk := m.lock(r.ID)
	if !lk.held || lk.holder != p.id {
		panic(fmt.Sprintf("machine: proc %d releases lock %d it does not hold", p.id, r.ID))
	}
	lk.held = false
	lk.holder = -1
	lk.freeAt = p.t
	if len(lk.waiters) == 0 {
		return
	}
	if m.params.SpinLocks {
		// Test&test&set: the release invalidates every spinner's cached
		// copy; they all re-read the line in a burst before one wins.
		for _, id := range lk.waiters {
			w := m.procs[id]
			eff := m.mem.Read(w.node, l)
			m.charge(w.node, w.slcRes, p.t, eff)
		}
	}
	w := m.procs[lk.waiters[0]]
	lk.waiters = lk.waiters[1:]
	if m.measuring && p.t > w.t {
		w.st.Sync += p.t - w.t
	}
	w.t = engine.Max(w.t, p.t)
	w.blocked = false
	m.ready.touch(int32(w.id))
}

// doBarrier implements global barriers and the measured-section marker.
func (m *Machine) doBarrier(p *proc, r trace.Ref) {
	m.drainAll(p)
	b := &m.bar
	if !b.active {
		b.active = true
		b.id = r.ID
		b.measure = r.Kind == trace.MeasureStart
		b.arrived = b.arrived[:0]
		b.arriveAt = b.arriveAt[:0]
	} else if b.id != r.ID || b.measure != (r.Kind == trace.MeasureStart) {
		panic(fmt.Sprintf("machine: proc %d at barrier %d while barrier %d in flight", p.id, r.ID, b.id))
	}
	if m.rec.Enabled() {
		m.rec.Emit(obs.Event{
			Kind:  obs.KindSyncArrive,
			At:    int64(p.t),
			Node:  int32(p.id),
			Peer:  -1,
			Class: obs.SyncBarrier,
			Line:  uint64(r.ID),
		})
	}
	b.arrived = append(b.arrived, p.id)
	b.arriveAt = append(b.arriveAt, p.t)
	p.blocked = true
	p.blockAt = p.t
	if len(b.arrived) < m.params.Procs {
		return
	}
	// Last arrival: release everyone.
	var tmax engine.Time
	for _, at := range b.arriveAt {
		tmax = engine.Max(tmax, at)
	}
	tmax += DefaultBarrierTime
	for i, id := range b.arrived {
		q := m.procs[id]
		q.blocked = false
		if m.measuring {
			q.st.Sync += tmax - b.arriveAt[i]
		}
		q.t = tmax
		m.ready.touch(int32(q.id))
	}
	b.active = false
	if b.measure {
		m.beginMeasure(tmax)
	}
}

// beginMeasure resets all statistics at the start of the measured section.
func (m *Machine) beginMeasure(at engine.Time) {
	m.measuring = true
	m.reads = 0
	m.readNodeMisses = 0
	m.slcMisses = 0
	m.busOcc = [3]engine.Time{}
	m.writeBacks = 0
	m.dirtyPurges = 0
	m.latency = LatencyHist{}
	m.mem.ResetStats()
	m.ic.Reset()
	for _, n := range m.nodes {
		n.nc.Reset()
		n.dram.Reset()
	}
	for _, p := range m.procs {
		p.st = ProcStats{}
		p.start = at
		p.slcRes.Reset()
	}
	if m.ff != nil {
		m.ffBegin(at)
	}
}

func (m *Machine) result() *Result {
	res := &Result{
		Procs:          make([]ProcStats, len(m.procs)),
		Reads:          m.reads,
		ReadNodeMisses: m.readNodeMisses,
		SLCMisses:      m.slcMisses,
		WriteBacks:     m.writeBacks,
		DirtyPurges:    m.dirtyPurges,
		ReadLatency:    m.latency,
		Protocol:       m.mem.Stats(),
	}
	if m.sampler != nil {
		res.Timeline = m.sampler.Timeline()
	}
	for _, r := range m.ic.Resources() {
		res.Resources = append(res.Resources, resUse(r))
	}
	for _, nr := range m.nodes {
		res.Resources = append(res.Resources, resUse(nr.nc), resUse(nr.dram))
	}
	for _, p := range m.procs {
		res.Resources = append(res.Resources, resUse(p.slcRes))
	}
	for c := range m.busOcc {
		res.BusOccupancy[c] = m.busOcc[c]
	}
	for i, p := range m.procs {
		res.Procs[i] = p.st
		res.ExecTime = engine.Max(res.ExecTime, p.st.Finish)
	}
	if res.ExecTime > 0 {
		dur := float64(res.ExecTime)
		res.BusUtilization = m.ic.Utilization(dur)
		res.NodeUtilization = make([]NodeUtil, len(m.nodes))
		for n, nr := range m.nodes {
			res.NodeUtilization[n] = NodeUtil{
				NC:   float64(nr.nc.BusyTotal()) / dur,
				DRAM: float64(nr.dram.BusyTotal()) / dur,
			}
		}
	}
	if m.ff != nil {
		m.ffFinalize(res)
	}
	return res
}

func resUse(r *engine.Resource) ResUse {
	return ResUse{
		Name:   r.Name(),
		BusyNs: int64(r.BusyTotal()),
		Claims: r.Claims(),
		WaitNs: int64(r.WaitTotal()),
		Waits:  r.Waits(),
	}
}
