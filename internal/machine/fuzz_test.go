package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// checkCoherence runs the per-line coherence checker over every line
// resident in any attraction memory. After a completed run nothing is
// mid-relocation, so even ErrDisplaced would be a bug here.
func checkCoherence(t *testing.T, m *Machine) bool {
	p := m.Protocol()
	seen := make(map[addrspace.Line]bool)
	for n := 0; n < p.Nodes(); n++ {
		p.AM(n).ForEach(func(e cache.Entry) { seen[e.Line] = true })
	}
	for l := range seen {
		if err := p.CheckLine(l); err != nil {
			t.Logf("coherence: %v", err)
			return false
		}
	}
	return true
}

// randomTrace builds a structurally valid random workload: mixed reads,
// writes, computes, lock pairs and barriers over a bounded address range.
func randomTrace(rng *rand.Rand, procs int) *trace.Trace {
	b := trace.NewBuilder("fuzz", procs)
	lines := 64 + rng.Intn(192)
	addr := func() addrspace.Addr {
		return addrspace.Addr(0x10000 + rng.Intn(lines)*addrspace.LineSize +
			rng.Intn(addrspace.LineSize/4)*4)
	}
	lockAddr := func(id uint32) addrspace.Addr {
		return addrspace.Addr(0x800000 + int(id)*addrspace.LineSize)
	}
	// Untimed init by processor 0.
	for i := 0; i < lines; i++ {
		b.Write(0, addrspace.Addr(0x10000+i*addrspace.LineSize))
	}
	b.Barrier()
	b.MeasureStart()
	phases := 1 + rng.Intn(4)
	for ph := 0; ph < phases; ph++ {
		for p := 0; p < procs; p++ {
			n := rng.Intn(200)
			for i := 0; i < n; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4:
					b.Read(p, addr())
				case 5, 6, 7:
					b.Write(p, addr())
				case 8:
					b.Compute(p, engine.Time(rng.Intn(100)))
				case 9:
					id := uint32(rng.Intn(4))
					b.Acquire(p, id, lockAddr(id))
					b.Read(p, addr())
					b.Write(p, addr())
					b.Release(p, id, lockAddr(id))
				}
			}
		}
		b.Barrier()
	}
	return b.Build(uint64(lines * addrspace.LineSize * 4))
}

// Fuzz: random workloads complete without deadlock, preserve all machine
// and protocol invariants, and satisfy the accounting identity
// (attributed time never exceeds the processor's finish time).
func TestMachineFuzz(t *testing.T) {
	prop := func(seed int64, ppnSel uint8, inclusive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := 8
		ppn := []int{1, 2, 4}[int(ppnSel)%3]
		tr := randomTrace(rng, procs)
		params := DefaultParams(procs, ppn, 2048, 8*1024)
		params.L1Bytes = 512
		params.Inclusive = inclusive
		m, err := New(params)
		if err != nil {
			t.Logf("new: %v", err)
			return false
		}
		var sink obs.Counting
		m.SetSink(&sink)
		res, err := m.Run(tr)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if err := m.CheckState(); err != nil {
			t.Logf("state: %v", err)
			return false
		}
		if !checkCoherence(t, m) {
			return false
		}
		// The event stream covers the whole run, the Result only the
		// measured section: stream counts bound the Result's.
		if sink.TransitionTotal() < res.Protocol.TransitionTotal() {
			t.Logf("event transitions %d < stats transitions %d",
				sink.TransitionTotal(), res.Protocol.TransitionTotal())
			return false
		}
		for i, ps := range res.Procs {
			if ps.Total() > ps.Finish {
				t.Logf("proc %d: attributed %v > finish %v", i, ps.Total(), ps.Finish)
				return false
			}
		}
		if res.Protocol.ForcedDrops != 0 {
			// Capacity is ample (8 KB AM per proc vs <16 KB footprint
			// over 8 procs); forced drops would signal a protocol bug.
			t.Logf("forced drops: %d", res.Protocol.ForcedDrops)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The same fuzzing against the machine's non-default policies.
func TestMachinePolicyFuzz(t *testing.T) {
	prop := func(seed int64, pbits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 8)
		params := DefaultParams(8, 4, 2048, 4*1024)
		params.L1Bytes = 512
		params.Policy.VictimSharedFirst = pbits&1 != 0
		params.Policy.PromoteOwnership = pbits&2 != 0
		params.Policy.AcceptPriority = pbits&4 != 0
		params.Policy.WriteUpdate = pbits&8 != 0
		m, err := New(params)
		if err != nil {
			return false
		}
		if _, err := m.Run(tr); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return m.CheckState() == nil && checkCoherence(t, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
