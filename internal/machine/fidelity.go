package machine

// Adaptive fidelity (DESIGN.md §10): the sampled execution mode
// interleaves functional fast-forward with detailed measurement windows,
// SMARTS-style. Fast-forward keeps the full memory-system state machine
// running — every reference walks the real L1/SLC/protocol paths, so
// every *count* metric (reads, node misses, SLC misses, write-backs,
// purges, bus occupancy, protocol counters) stays exactly counted — but
// resources stop arbitrating (claims pass through, see Machine.claimRes)
// and clocks advance by contention-free latency plus a calibrated mean
// queueing delay per access, measured inside the detailed windows per
// stall class (SLC / AM / remote) and separately for write drains. Only
// timing is estimated; the estimate's spread across windows is reported
// as per-metric confidence in Result.Fidelity.

import (
	"math"

	"repro/internal/addrspace"
	"repro/internal/engine"
	"repro/internal/trace"
)

// Calibrated waits are kept in fixed point so fast-forward clock
// advances stay integral and deterministic.
const (
	lambdaShift = 8
	lambdaOne   = 1 << lambdaShift
)

// ffSlice bounds how much simulated time one fast-forward burst may
// cover before the scheduler re-picks its minimum processor. Unbounded
// bursts would let one processor run an entire fast span (tens of µs)
// alone, coarsening the functional interleaving enough to perturb
// sharing-sensitive miss counts; slicing keeps processors within a few
// µs of each other at a per-burst overhead amortized over hundreds of
// references.
const ffSlice engine.Time = 4000

// ffSample is one closed measurement window's counter deltas, the raw
// material for both the wait calibration and the confidence estimates.
type ffSample struct {
	span       engine.Time // detailed time the window actually covered
	reads      int64
	writes     int64
	nodeMisses int64
	slcMisses  int64
	busNs      engine.Time // interconnect occupancy, all classes
	actual     engine.Time // measured read service time in the window
	cf         engine.Time // its contention-free component
}

// ffState drives the sampled mode for one run. Phases are a pure
// function of a processor's clock: within each Period after the measured
// section starts, [0, Warmup) and [Warmup, Warmup+Window) run detailed
// (the window calibrates), the rest fast-forwards. Before MeasureStart
// everything fast-forwards (statistics are reset at the measure barrier,
// and the barrier realigns all clocks). Window open/close tracking rides
// the scheduler clock, which is non-decreasing because the heap always
// steps the global (clock, id) minimum — so each window opens and closes
// exactly once, in order.
type ffState struct {
	spec      Fidelity
	measuring bool        // past the MeasureStart barrier
	start     engine.Time // phase origin (the measure barrier's release)

	inWindow  bool
	epoch     int64 // period index of the open window
	winOpenAt engine.Time
	winEnd    engine.Time // the open window's scheduled end

	// Calibration accumulators. Contention inflation is strongly
	// class-dependent (a remote read queues on the global medium, an AM
	// hit mostly on its local DRAM, an SLC hit only on the SLC port),
	// so reads calibrate one λ per stall class. Write drains calibrate
	// their own factor, measured from each drain's scheduled start so
	// that write-buffer backlog — which fast-forward models explicitly —
	// is not double-counted as contention (that coupling is a positive
	// feedback loop: λ-inflated drains grow the backlog that the next
	// window then measures as more contention).
	winActual [stallClasses]engine.Time
	winCf     [stallClasses]engine.Time
	winN      [stallClasses]int64
	winWA     engine.Time
	winWCf    engine.Time
	winWN     int64

	// Cumulative over all closed windows. The model is additive — each
	// fast-forward access advances by its contention-free latency plus
	// the class's mean measured queueing delay per access — because
	// queueing delay is a property of the queue, not of the access's own
	// service time (a multiplicative factor would charge a five-hop read
	// five times the queue wait of a one-hop read, and under saturation
	// couples into a positive feedback through the write-buffer backlog).
	calActual [stallClasses]engine.Time
	calCf     [stallClasses]engine.Time
	calN      [stallClasses]int64
	calWA     engine.Time
	calWCf    engine.Time
	calWN     int64
	waitFP    [stallClasses]int64 // calibrated wait per access, fixed point
	waitWFP   int64               // calibrated wait per write drain, fixed point

	// Counter snapshots at window open.
	snapReads      int64
	snapWrites     int64
	snapNodeMisses int64
	snapSLC        int64
	snapBus        engine.Time

	// Resource busy-time accounting, in Result.Resources order: busyDet
	// accumulates each resource's busy time inside windows, the basis for
	// utilization extrapolation.
	resList  []*engine.Resource
	snapBusy []engine.Time
	busyDet  []engine.Time

	samples  []ffSample
	fastRefs int64
}

func newFFState(spec Fidelity) *ffState {
	return &ffState{spec: spec, samples: make([]ffSample, 0, 256)}
}

// fastAt reports whether a processor whose clock is t runs fast-forward.
func (f *ffState) fastAt(t engine.Time) bool {
	if !f.measuring {
		return true
	}
	return (t-f.start)%f.spec.Period >= f.spec.Warmup+f.spec.Window
}

// nextDetailed returns the next detailed-phase boundary at or after t —
// the burst limit.
func (f *ffState) nextDetailed(t engine.Time) engine.Time {
	if !f.measuring {
		return math.MaxInt64 / 2
	}
	off := (t - f.start) % f.spec.Period
	if off < f.spec.Warmup+f.spec.Window {
		return t
	}
	return t - off + f.spec.Period
}

// scale adds the class's calibrated mean queueing delay to a
// contention-free read latency, carrying the fixed-point remainder per
// processor so schedules stay integral and deterministic.
func (f *ffState) scale(p *proc, cf engine.Time, class StallClass) engine.Time {
	v := f.waitFP[class] + p.ffRem
	p.ffRem = v & (lambdaOne - 1)
	return cf + engine.Time(v>>lambdaShift)
}

// scaleW adds the calibrated mean drain queueing delay to a
// contention-free write-drain duration.
func (f *ffState) scaleW(p *proc, cf engine.Time) engine.Time {
	v := f.waitWFP + p.ffRem
	p.ffRem = v & (lambdaOne - 1)
	return cf + engine.Time(v>>lambdaShift)
}

// ffBegin arms the phase machine at the measured section's start.
func (m *Machine) ffBegin(at engine.Time) {
	f := m.ff
	f.measuring = true
	f.start = at
	f.inWindow = false
	m.counting = false
	f.resList = f.resList[:0]
	f.resList = append(f.resList, m.ic.Resources()...)
	for _, n := range m.nodes {
		f.resList = append(f.resList, n.nc, n.dram)
	}
	for _, p := range m.procs {
		f.resList = append(f.resList, p.slcRes)
	}
	f.snapBusy = make([]engine.Time, len(f.resList))
	f.busyDet = make([]engine.Time, len(f.resList))
	f.samples = f.samples[:0]
	for c := range f.waitFP {
		f.calActual[c], f.calCf[c], f.calN[c] = 0, 0, 0
		f.waitFP[c] = 0
	}
	f.calWA, f.calWCf, f.calWN = 0, 0, 0
	f.waitWFP = 0
	f.fastRefs = 0
}

// ffSync advances the window phase machine to scheduler clock t, closing
// and opening measurement windows as boundaries pass.
func (m *Machine) ffSync(t engine.Time) {
	f := m.ff
	if !f.measuring {
		return
	}
	off := (t - f.start) % f.spec.Period
	ep := int64((t - f.start) / f.spec.Period)
	in := off >= f.spec.Warmup && off < f.spec.Warmup+f.spec.Window
	if f.inWindow && (!in || ep != f.epoch) {
		m.ffClose(t)
	}
	if in && !f.inWindow {
		m.ffOpen(t, ep)
	}
}

// ffOpen snapshots the global counters at window entry.
func (m *Machine) ffOpen(t engine.Time, ep int64) {
	f := m.ff
	f.inWindow = true
	m.counting = true
	f.epoch = ep
	f.winOpenAt = t
	f.winEnd = f.start + engine.Time(ep)*f.spec.Period + f.spec.Warmup + f.spec.Window
	for c := range f.winActual {
		f.winActual[c], f.winCf[c], f.winN[c] = 0, 0, 0
	}
	f.winWA, f.winWCf, f.winWN = 0, 0, 0
	f.snapReads = m.reads
	f.snapNodeMisses = m.readNodeMisses
	f.snapSLC = m.slcMisses
	f.snapBus = m.busOcc[0] + m.busOcc[1] + m.busOcc[2]
	var w int64
	for _, p := range m.procs {
		w += p.st.Writes
	}
	f.snapWrites = w
	for i, r := range f.resList {
		f.snapBusy[i] = r.BusyTotal()
	}
}

// ffClose records the window's deltas and folds them into the wait
// calibration.
func (m *Machine) ffClose(t engine.Time) {
	f := m.ff
	f.inWindow = false
	m.counting = false
	end := t
	if end > f.winEnd {
		end = f.winEnd
	}
	span := end - f.winOpenAt
	if span <= 0 {
		return
	}
	var w int64
	for _, p := range m.procs {
		w += p.st.Writes
	}
	var act, cf engine.Time
	for c := range f.winActual {
		act += f.winActual[c]
		cf += f.winCf[c]
	}
	f.samples = append(f.samples, ffSample{
		span:       span,
		reads:      m.reads - f.snapReads,
		writes:     w - f.snapWrites,
		nodeMisses: m.readNodeMisses - f.snapNodeMisses,
		slcMisses:  m.slcMisses - f.snapSLC,
		busNs:      m.busOcc[0] + m.busOcc[1] + m.busOcc[2] - f.snapBus,
		actual:     act,
		cf:         cf,
	})
	for i, r := range f.resList {
		f.busyDet[i] += r.BusyTotal() - f.snapBusy[i]
	}
	for c := range f.winActual {
		f.calActual[c] += f.winActual[c]
		f.calCf[c] += f.winCf[c]
		f.calN[c] += f.winN[c]
		f.waitFP[c] = waitOf(f.calActual[c]-f.calCf[c], f.calN[c])
	}
	f.calWA += f.winWA
	f.calWCf += f.winWCf
	f.calWN += f.winWN
	f.waitWFP = waitOf(f.calWA-f.calWCf, f.calWN)
}

// noteRead folds one detailed-window read into the calibration: its
// measured service time and the contention-free component (service
// minus queueing delay).
func (f *ffState) noteRead(id int, c StallClass, actual, cf engine.Time) {
	f.winActual[c] += actual
	f.winCf[c] += cf
	f.winN[c]++
}

// noteDrain folds one detailed-window write drain into the calibration.
func (f *ffState) noteDrain(id int, actual, cf engine.Time) {
	f.winWA += actual
	f.winWCf += cf
	f.winWN++
}

// waitOf turns cumulative queueing delay over n accesses into the
// fixed-point mean wait per access, clamped to non-negative.
func waitOf(wait engine.Time, n int64) int64 {
	if n <= 0 || wait <= 0 {
		return 0
	}
	return (int64(wait)<<lambdaShift + n/2) / n
}

// ffBurst fast-forwards p until the next detailed-phase boundary, a
// synchronization record, or the end of its stream. Within a burst no
// other processor runs, which is what makes the line memo exact: an
// 8-entry direct-mapped memo of lines known L1-resident (reads) or
// SLC-dirty with siblings already invalidated (writes) turns repeat hits
// into near-free operations without touching the caches at all.
func (m *Machine) ffBurst(p *proc) {
	f := m.ff
	m.now = p.t
	if m.sampler != nil {
		m.sampler.Advance(int64(p.t))
	}
	m.ffSync(p.t)
	limit := f.nextDetailed(p.t)
	if cap := p.t + ffSlice; cap < limit {
		limit = cap
	}
	m.freeflow = true
	// Valid (L1-residency) memo bits persist across bursts — the drop
	// hooks keep them exact — but writable claims must be re-proved:
	// another processor may have become a sharer since the last burst.
	p.ffWritable = 0
	refs := p.refs
	n := refs.Len()
burst:
	for p.pc < n && p.t < limit {
		r := refs.At(p.pc)
		switch r.Kind {
		case trace.Read:
			p.pc++
			f.fastRefs++
			m.ffRead(p, r.Addr)
		case trace.Write:
			p.pc++
			f.fastRefs++
			m.ffWrite(p, r.Addr)
		case trace.Compute:
			p.pc++
			if m.measuring {
				p.st.Busy += r.Dur
			}
			p.t += r.Dur
		case trace.Acquire:
			// Synchronization delegates to the exact handlers (under
			// freeflow, so their charges are contention-free) and ends
			// the burst: lock handoffs and barrier releases move other
			// processors' clocks, so the scheduler must re-pick its
			// minimum.
			if m.doAcquire(p, r) {
				p.pc++
			}
			break burst
		case trace.Release:
			p.pc++
			m.doRelease(p, r)
			break burst
		case trace.Barrier, trace.MeasureStart:
			p.pc++
			m.doBarrier(p, r)
			break burst
		default:
			panic("machine: unknown ref kind in fast-forward")
		}
	}
	m.freeflow = false
	if !p.blocked && !p.done && p.pc >= n {
		m.finish(p)
	}
}

// ffRead is doRead's fast-forward twin: identical cache and protocol
// walk (counts stay exact), freeflow charge for the contention-free
// latency, λ-scaled clock advance. A memo hit is exact because the L1 is
// direct-mapped and no other processor interleaves within the burst.
func (m *Machine) ffRead(p *proc, a addrspace.Addr) {
	if m.measuring {
		p.st.Reads++
		m.reads++
	}
	l := addrspace.LineOf(a)
	i := uint64(l) & 63
	bit := uint64(1) << i
	if p.ffValid&bit != 0 && p.ffLines[i] == l {
		if m.measuring {
			m.latency.add(0)
		}
		return
	}
	if _, ok := p.l1.Touch(l); ok {
		p.ffLines[i] = l
		p.ffValid |= bit
		p.ffWritable &^= bit
		if m.measuring {
			m.latency.add(0)
		}
		return
	}
	if _, ok := p.slc.Touch(l); ok {
		d := m.ff.scale(p, DefaultSLCHit, StallSLC)
		p.t += d
		m.l1Insert(p, l)
		m.stall(p, StallSLC, d)
		if m.measuring {
			m.latency.add(d)
		}
		return
	}
	t0 := p.t
	eff := m.mem.Read(p.node, l)
	done, class := m.charge(p.node, p.slcRes, t0, eff)
	d := m.ff.scale(p, done-t0, class)
	p.t = t0 + d
	m.l1Insert(p, l)
	m.slcInsert(p, l, cacheValid)
	if m.measuring {
		m.slcMisses++
		if !eff.Hit && !eff.Cold {
			m.readNodeMisses++
		}
		m.latency.add(d)
	}
	m.stall(p, class, d)
}

// ffWrite is doWrite's fast-forward twin. A memo-writable hit skips the
// L1 touch, the state compare and the (idempotent within a burst)
// sibling invalidations, but still refreshes the SLC recency stream so
// later replacement decisions match detailed execution exactly.
func (m *Machine) ffWrite(p *proc, a addrspace.Addr) {
	if m.measuring {
		p.st.Writes++
	}
	l := addrspace.LineOf(a)
	i := uint64(l) & 63
	bit := uint64(1) << i
	if p.ffWritable&bit != 0 && p.ffLines[i] == l {
		p.slc.Touch(l)
		return
	}
	inL1 := false
	if _, ok := p.l1.Touch(l); ok {
		inL1 = true
	}
	if st, ok := p.slc.Touch(l); ok && st == cacheDirty {
		if !m.params.Policy.WriteUpdate {
			m.invalidateSiblings(p, l)
		}
		p.ffLines[i] = l
		p.ffWritable |= bit
		if inL1 {
			p.ffValid |= bit
		} else {
			p.ffValid &^= bit
		}
		return
	}
	p.retireDrains()
	if p.wbLen >= m.params.WriteBufferDepth {
		head := p.wb[p.wbHead]
		m.stall(p, head.class, head.done-p.t)
		p.t = head.done
		p.retireDrains()
	}
	start := engine.Max(p.t, p.wbLast)
	eff := m.mem.Write(p.node, l)
	done, class := m.charge(p.node, p.slcRes, start, eff)
	done = start + m.ff.scaleW(p, done-start)
	p.wbLast = done
	slot := p.wbHead + p.wbLen
	if slot >= len(p.wb) {
		slot -= len(p.wb)
	}
	p.wb[slot] = wbEntry{done: done, class: class}
	p.wbLen++
	st := cacheValid
	if eff.Writable {
		st = cacheDirty
	}
	m.slcInsert(p, l, st)
	m.l1Insert(p, l)
	if !m.params.Policy.WriteUpdate {
		m.invalidateSiblings(p, l)
	}
	if eff.Writable {
		p.ffWritable |= bit
	}
	if m.measuring {
		m.slcMisses++
	}
}

// FidelityReport is the sampled-mode metadata attached to a Result:
// what geometry ran, how much of the run was measured in detail, the
// calibrated contention factor, and per-metric confidence.
type FidelityReport struct {
	// Mode is FidelitySampled (exact runs carry a nil report).
	Mode string
	// Geometry actually used (simulated ns).
	WarmupNs, WindowNs, PeriodNs int64
	// Windows is the number of closed measurement windows.
	Windows int
	// DetailedNs is the summed simulated time the windows covered;
	// Coverage is DetailedNs / ExecTime.
	DetailedNs int64
	Coverage   float64
	// FastRefs counts data references executed in fast-forward;
	// TotalRefs counts all measured-section data references.
	FastRefs  int64
	TotalRefs int64
	// Lambda is the final calibrated contention factor (>= 1): measured
	// read service time over its contention-free component, pooled over
	// classes. LambdaClass breaks it down by stall class (SLC, AM,
	// Remote) and LambdaDrain is the write-drain factor.
	Lambda      float64
	LambdaClass [3]float64
	LambdaDrain float64
	// Confidence estimates each extrapolated metric's relative standard
	// error from its spread across windows.
	Confidence FidelityConfidence
}

// FidelityConfidence holds per-metric relative standard errors computed
// across measurement windows (standard error of the window mean divided
// by the mean). 1.0 means "fewer than two windows: no estimate".
type FidelityConfidence struct {
	// ExecTime is the RSE of the per-window contention factor — the only
	// model parameter the execution-time estimate depends on.
	ExecTime float64
	// RNMr is the RSE of the per-window read node miss rate.
	RNMr float64
	// BusOccupancy is the RSE of the per-window occupancy rate.
	BusOccupancy float64
	// MissRatio is the RSE of the per-window SLC miss ratio.
	MissRatio float64
}

// ffFinalize closes any open window, extrapolates the window-sampled
// resource metrics over the whole measured section and attaches the
// fidelity report.
func (m *Machine) ffFinalize(res *Result) {
	f := m.ff
	if f.inWindow {
		m.ffClose(m.now)
	}
	var detSpan engine.Time
	for _, s := range f.samples {
		detSpan += s.span
	}
	var act, cf engine.Time
	for c := range f.calActual {
		act += f.calActual[c]
		cf += f.calCf[c]
	}
	rep := &FidelityReport{
		Mode:       FidelitySampled,
		WarmupNs:   int64(f.spec.Warmup),
		WindowNs:   int64(f.spec.Window),
		PeriodNs:   int64(f.spec.Period),
		Windows:    len(f.samples),
		DetailedNs: int64(detSpan),
		FastRefs:   f.fastRefs,
		Lambda:     impliedLambda(act, cf),
	}
	for c := range f.calActual {
		rep.LambdaClass[c] = impliedLambda(f.calActual[c], f.calCf[c])
	}
	rep.LambdaDrain = impliedLambda(f.calWA, f.calWCf)
	rep.TotalRefs = res.Reads
	for i := range res.Procs {
		rep.TotalRefs += res.Procs[i].Writes
	}
	if res.ExecTime > 0 {
		rep.Coverage = float64(detSpan) / float64(res.ExecTime)
		if rep.Coverage > 1 {
			rep.Coverage = 1
		}
	}
	if detSpan > 0 && res.ExecTime > 0 && len(res.Resources) == len(f.busyDet) {
		// Counts are exact in every phase; busy time only accrues in
		// detailed phases (freeflow claims pass through), so resource
		// occupancy and utilization extrapolate from the windows.
		scale := float64(res.ExecTime) / float64(detSpan)
		for i := range res.Resources {
			res.Resources[i].BusyNs = int64(float64(f.busyDet[i])*scale + 0.5)
		}
		nIC := len(m.ic.Resources())
		var icBusy float64
		for i := 0; i < nIC; i++ {
			icBusy += float64(f.busyDet[i])
		}
		res.BusUtilization = icBusy / (float64(detSpan) * float64(nIC))
		for n := range res.NodeUtilization {
			res.NodeUtilization[n] = NodeUtil{
				NC:   float64(f.busyDet[nIC+2*n]) / float64(detSpan),
				DRAM: float64(f.busyDet[nIC+2*n+1]) / float64(detSpan),
			}
		}
	}
	rep.Confidence = f.confidence()
	res.Fidelity = rep
}

// confidence derives per-metric relative standard errors from the
// window samples.
func (f *ffState) confidence() FidelityConfidence {
	var lam, rnm, bus, miss []float64
	for _, s := range f.samples {
		if s.cf > 0 {
			lam = append(lam, float64(s.actual)/float64(s.cf))
		}
		if s.reads > 0 {
			rnm = append(rnm, float64(s.nodeMisses)/float64(s.reads))
		}
		if s.span > 0 {
			bus = append(bus, float64(s.busNs)/float64(s.span))
		}
		if s.reads+s.writes > 0 {
			miss = append(miss, float64(s.slcMisses)/float64(s.reads+s.writes))
		}
	}
	return FidelityConfidence{
		ExecTime:     rse(lam),
		RNMr:         rse(rnm),
		BusOccupancy: rse(bus),
		MissRatio:    rse(miss),
	}
}

// impliedLambda is the measured-over-contention-free service time ratio,
// for reporting (1 when nothing was measured).
func impliedLambda(actual, cf engine.Time) float64 {
	if cf <= 0 {
		return 1
	}
	return float64(actual) / float64(cf)
}

// rse is the relative standard error of the mean of v.
func rse(v []float64) float64 {
	if len(v) < 2 {
		return 1
	}
	n := float64(len(v))
	var sum float64
	for _, x := range v {
		sum += x
	}
	mean := sum / n
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/(n-1)) / (mean * math.Sqrt(n))
}
