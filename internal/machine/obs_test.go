package machine

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// obsTrace is a small deterministic workload with enough variety to emit
// every event kind: reads, writes past the write-buffer depth, lock
// contention and barriers.
func obsTrace(procs int) *trace.Trace {
	rng := rand.New(rand.NewSource(7))
	return randomTrace(rng, procs)
}

// Instrumentation must be a pure observer: a machine with a sink installed
// produces a bit-identical Result to one without. The same zero-perturbation
// contract covers the fidelity knob: exact mode with sampling geometry
// parameters present must not change a single bit either — the sampled
// machinery may only exist when Mode is sampled.
func TestInstrumentationDoesNotPerturb(t *testing.T) {
	tr := obsTrace(8)
	run := func(sink obs.Sink, fid Fidelity) *Result {
		p := tinyParams(8, 2)
		p.Fidelity = fid
		m, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		if sink != nil {
			m.SetSink(sink)
		}
		res, err := m.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil, Fidelity{})
	traced := run(&obs.Counting{}, Fidelity{})
	if !reflect.DeepEqual(plain, traced) {
		t.Fatal("installing a sink changed the simulation result")
	}
	spec := DefaultFidelity()
	spec.Mode = FidelityExact
	exact := run(nil, spec)
	if !reflect.DeepEqual(plain, exact) {
		t.Fatal("exact fidelity with sampling geometry present changed the simulation result")
	}
}

// The event stream must be consistent with the aggregate statistics: the
// sink sees the whole run, the Result only the measured section, so every
// Result counter is bounded by its event-stream counterpart.
func TestEventStreamConsistency(t *testing.T) {
	tr := obsTrace(8)
	// Small attraction memories force replacement traffic so the
	// replacement event kind is exercised too.
	params := DefaultParams(8, 2, 2048, 4*1024)
	params.L1Bytes = 512
	m, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	var count obs.Counting
	ring := obs.NewRing(1 << 16)
	var sb strings.Builder
	jsonl := obs.NewJSONL(&sb)
	m.SetSink(obs.Tee{&count, ring, jsonl})
	res, err := m.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if jsonl.Err() != nil {
		t.Fatal(jsonl.Err())
	}
	if count.Total() == 0 {
		t.Fatal("no events emitted")
	}
	for k := obs.KindBusGrant; int(k) < obs.NumKinds; k++ {
		if k == obs.KindLinkGrant {
			continue // a bus machine has no ring links
		}
		if count.Kinds[k] == 0 {
			t.Errorf("no %s events from a workload with reads, writes, locks and barriers", k)
		}
	}
	if got, want := count.TransitionTotal(), res.Protocol.TransitionTotal(); got < want {
		t.Errorf("event-stream transitions %d < measured-section transitions %d", got, want)
	}
	var busEvents int64
	for _, ns := range count.BusOccNs {
		busEvents += ns
	}
	if busEvents < int64(res.BusTotal()) {
		t.Errorf("event-stream bus occupancy %d < measured bus occupancy %d", busEvents, res.BusTotal())
	}
	if ring.Total() != count.Total() {
		t.Errorf("tee skew: ring saw %d events, counter %d", ring.Total(), count.Total())
	}
	if got := int64(strings.Count(sb.String(), "\n")); got != count.Total() {
		t.Errorf("JSONL lines %d != events %d", got, count.Total())
	}
	// The single global bus serves claims in order: bus-grant timestamps
	// are non-decreasing over the whole stream.
	prev := int64(-1)
	for _, e := range ring.Events() {
		if e.Kind != obs.KindBusGrant {
			continue
		}
		if e.At < prev {
			t.Fatalf("bus-grant timestamps regressed: %d after %d", e.At, prev)
		}
		prev = e.At
	}
}

// Result.Resources reports the measured-section usage of every resource in
// a fixed order, consistent with the utilization summaries.
func TestResultResources(t *testing.T) {
	tr := obsTrace(8)
	params := tinyParams(8, 2)
	m, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	nodes := params.Nodes()
	if want := 1 + 2*nodes + params.Procs; len(res.Resources) != want {
		t.Fatalf("Resources len = %d, want %d", len(res.Resources), want)
	}
	bus := res.Resources[0]
	if bus.Name != "bus" {
		t.Fatalf("Resources[0] = %q, want bus", bus.Name)
	}
	if got, want := bus.Utilization(res.ExecTime), res.BusUtilization; got != want {
		t.Fatalf("bus utilization %v != Result.BusUtilization %v", got, want)
	}
	for i, u := range res.Resources {
		if u.Claims == 0 {
			continue
		}
		if u.Waits.Total() != u.Claims {
			t.Errorf("resource %d (%s): histogram total %d != claims %d", i, u.Name, u.Waits.Total(), u.Claims)
		}
		if u.MeanWaitNs() < 0 {
			t.Errorf("resource %d (%s): negative mean wait", i, u.Name)
		}
	}
	// The per-node views agree.
	for n := 0; n < nodes; n++ {
		nc, dram := res.Resources[1+2*n], res.Resources[2+2*n]
		if nc.Utilization(res.ExecTime) != res.NodeUtilization[n].NC ||
			dram.Utilization(res.ExecTime) != res.NodeUtilization[n].DRAM {
			t.Fatalf("node %d resource rows disagree with NodeUtilization", n)
		}
	}
}
