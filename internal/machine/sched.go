package machine

import "repro/internal/engine"

// procHeap is an index min-heap over runnable processors ordered by
// (local clock, processor id). It replaces the O(P) linear scan that
// previously picked the next processor to step.
//
// Determinism: the old scan kept the first processor with the strictly
// smallest clock, i.e. the lowest-id processor among those tied at the
// minimum. The heap's ordering is the lexicographic (clock, id) pair — a
// strict total order, since ids are unique — so peek() returns exactly
// the processor the scan would have picked and the simulation schedule,
// and therefore every output, is byte-identical.
//
// The main loop steps the minimum in place (peek, step, fix) rather than
// popping and reinserting: a step usually moves the clock a little, so
// one sift-down from the current position beats a full delete-min plus
// insert. Steps that leave the clock unchanged (L1-hit loads, buffered
// stores) need no heap work at all — see Machine.Run.
//
// ids is the heap array of processor ids, ts the parallel array of their
// cached clocks (the sort key, refreshed by touch/fix so comparisons
// never chase proc pointers); pos[id] is id's index in ids, or -1 when
// the processor is not enqueued (blocked or done). All arrays are
// preallocated at machine construction; no heap operation allocates.
type procHeap struct {
	procs []*proc
	ids   []int32
	ts    []engine.Time
	pos   []int32
}

func (h *procHeap) init(procs []*proc) {
	h.procs = procs
	h.ids = make([]int32, 0, len(procs))
	h.ts = make([]engine.Time, 0, len(procs))
	h.pos = make([]int32, len(procs))
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func (h *procHeap) less(i, j int) bool {
	if h.ts[i] != h.ts[j] {
		return h.ts[i] < h.ts[j]
	}
	return h.ids[i] < h.ids[j]
}

func (h *procHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.ts[i], h.ts[j] = h.ts[j], h.ts[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *procHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *procHeap) down(i int) {
	n := len(h.ids)
	for {
		kid := 2*i + 1
		if kid >= n {
			return
		}
		if r := kid + 1; r < n && h.less(r, kid) {
			kid = r
		}
		if !h.less(kid, i) {
			return
		}
		h.swap(i, kid)
		i = kid
	}
}

// touch enqueues processor id, or refreshes its key and repositions it if
// already enqueued (its clock may have advanced). Safe to call from any
// wake site; a wake that already enqueued the stepping processor (barrier
// self-release) composes with the main loop's fix because both are
// idempotent.
func (h *procHeap) touch(id int32) {
	if i := h.pos[id]; i >= 0 {
		h.fix(id)
		return
	}
	h.ids = append(h.ids, id)
	h.ts = append(h.ts, h.procs[id].t)
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// peek returns the runnable processor with the smallest (clock, id)
// without removing it; ok is false when no processor is runnable.
func (h *procHeap) peek() (int32, bool) {
	if len(h.ids) == 0 {
		return 0, false
	}
	return h.ids[0], true
}

// fix refreshes id's key from its processor clock and restores heap order
// around it. Clocks only move forward, so the sift-down almost always
// suffices; the sift-up covers repositioning after an unrelated removal.
func (h *procHeap) fix(id int32) {
	i := int(h.pos[id])
	h.ts[i] = h.procs[id].t
	h.down(i)
	h.up(int(h.pos[id]))
}

// remove dequeues processor id (it blocked or finished).
func (h *procHeap) remove(id int32) {
	i := int(h.pos[id])
	last := len(h.ids) - 1
	if i != last {
		h.swap(i, last)
	}
	h.ids = h.ids[:last]
	h.ts = h.ts[:last]
	h.pos[id] = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}
