package machine

import (
	"math/rand"
	"testing"

	"repro/internal/addrspace"
)

// TestSteadyStateZeroAlloc pins the per-reference simulation path —
// private-cache lookups, the COMA protocol with its open-addressed
// directory, the write-buffer ring and resource claims — at zero heap
// allocations per reference once the machine is warm. The observability
// sink is disabled, as in every measured run; the working set fits the
// attraction memories, so the directory never grows mid-measurement.
//
// The companion CI run executes this under -race (like
// TestDisabledSinkZeroAlloc), which both checks the claim survives the
// race detector's instrumentation accounting and keeps it from silently
// rotting.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p := DefaultParams(8, 2, 32*1024, 256*1024)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := steadyStateAllocs(m); got != 0 {
		t.Fatalf("steady-state references allocate %.2f times per ref, want 0", got)
	}
}

// TestSamplingOffZeroAlloc pins the sampling feature's disabled path: a
// machine that never called EnableSampling takes only the nil-sampler
// branch checks in doRead/doWrite/step, which must not allocate — the
// windowed-sampler companion to TestDisabledSinkZeroAlloc (sinks).
func TestSamplingOffZeroAlloc(t *testing.T) {
	p := DefaultParams(8, 2, 32*1024, 256*1024)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Force the sink/sampler rewiring path with everything disabled, the
	// configuration every measured run uses.
	m.SetSink(nil)
	if m.sampler != nil {
		t.Fatal("sampler unexpectedly enabled")
	}
	if got := steadyStateAllocs(m); got != 0 {
		t.Fatalf("sampling-off references allocate %.2f times per ref, want 0", got)
	}
}

// TestFastForwardZeroAlloc pins the fast-forward reference path — the
// line memo, the functional cache/protocol walk and the calibrated clock
// advance — at zero heap allocations per reference. Fast-forward exists
// to be cheap; an allocation per reference would cost more than the
// detailed arbitration it skips. Window bookkeeping (ffSync open/close)
// is excluded: it runs O(resources) work twice per sampling period, not
// per reference, and its sample append is amortized by the slice cap.
func TestFastForwardZeroAlloc(t *testing.T) {
	p := DefaultParams(8, 2, 32*1024, 256*1024)
	p.Fidelity = DefaultFidelity()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := ffSteadyStateAllocs(m); got != 0 {
		t.Fatalf("fast-forward references allocate %.2f times per ref, want 0", got)
	}
}

// ffSteadyStateAllocs is steadyStateAllocs' fast-forward twin: same
// warm-then-measure shape, but references run through ffRead/ffWrite
// under freeflow, the way ffBurst drives them.
func ffSteadyStateAllocs(m *Machine) float64 {
	m.beginMeasure(0)
	m.freeflow = true
	defer func() { m.freeflow = false }()

	const lines = 512
	rng := rand.New(rand.NewSource(3))
	addr := func() addrspace.Addr {
		return addrspace.Addr((rng.Intn(lines) + 16) * addrspace.LineSize)
	}
	for i := 0; i < 8*lines; i++ {
		q := m.procs[rng.Intn(len(m.procs))]
		if i%3 == 0 {
			m.ffWrite(q, addr())
		} else {
			m.ffRead(q, addr())
		}
	}
	type ref struct {
		proc  int
		addr  addrspace.Addr
		write bool
	}
	seq := make([]ref, 1024)
	for i := range seq {
		seq[i] = ref{proc: rng.Intn(len(m.procs)), addr: addr(), write: rng.Intn(3) == 0}
	}
	i := 0
	return testing.AllocsPerRun(5000, func() {
		r := seq[i%len(seq)]
		i++
		q := m.procs[r.proc]
		if r.write {
			m.ffWrite(q, r.addr)
		} else {
			m.ffRead(q, r.addr)
		}
	})
}

// steadyStateAllocs warms the machine's caches, directory and attraction
// memories, then measures heap allocations per reference over a
// precomputed sequence (the generator itself must not count against the
// machine).
func steadyStateAllocs(m *Machine) float64 {
	// Measure from the start (internal switch; no trace is involved).
	m.beginMeasure(0)

	// A fixed region well under AM capacity: 4 nodes x 256KiB/proc x 2
	// procs holds thousands of lines; 512 lines leave generous headroom,
	// while overflowing the 32KiB SLCs so the protocol path stays hot.
	const lines = 512
	rng := rand.New(rand.NewSource(3))
	addr := func() addrspace.Addr {
		return addrspace.Addr((rng.Intn(lines) + 16) * addrspace.LineSize)
	}
	// Warm: populate caches, directory and attraction memories.
	for i := 0; i < 8*lines; i++ {
		q := m.procs[rng.Intn(len(m.procs))]
		if i%3 == 0 {
			m.doWrite(q, addr())
		} else {
			m.doRead(q, addr())
		}
	}
	// Steady state: a precomputed reference sequence.
	type ref struct {
		proc  int
		addr  addrspace.Addr
		write bool
	}
	seq := make([]ref, 1024)
	for i := range seq {
		seq[i] = ref{proc: rng.Intn(len(m.procs)), addr: addr(), write: rng.Intn(3) == 0}
	}
	i := 0
	return testing.AllocsPerRun(5000, func() {
		r := seq[i%len(seq)]
		i++
		q := m.procs[r.proc]
		if r.write {
			m.doWrite(q, r.addr)
		} else {
			m.doRead(q, r.addr)
		}
	})
}
