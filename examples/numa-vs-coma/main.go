// COMA vs. CC-NUMA: the architectural argument of the paper's Section 2,
// as an experiment. The same workload runs on two machines that differ
// only in the node-level memory system — attraction memories that migrate
// and replicate data, versus fixed first-touch homes — and the attraction
// effect shows up directly in node miss rates and execution time.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	fmt.Println("COMA vs CC-NUMA baseline (identical caches, bus and timing)")
	fmt.Println()
	fmt.Printf("%-10s %-6s %-14s %-14s %-10s\n", "workload", "cfg", "COMA exec(ns)", "NUMA exec(ns)", "COMA/NUMA")
	for _, name := range []string{"raytrace", "water-n2", "ocean-c", "radix"} {
		tr := core.MustWorkload(name, 16)
		for _, ppn := range []int{1, 4} {
			cfg := core.Baseline(ppn, core.MP50)
			comaRes, err := core.Run(tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			numaRes, err := core.RunNUMA(tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-6s %-14d %-14d %8.1f%%\n",
				name, fmt.Sprintf("%dp", ppn),
				comaRes.ExecTime, numaRes.ExecTime,
				100*float64(comaRes.ExecTime)/float64(numaRes.ExecTime))
		}
	}
	fmt.Println()
	fmt.Println("the attraction memories turn repeated remote misses into node hits;")
	fmt.Println("NUMA pays the home-node round trip on every SLC miss")
}
