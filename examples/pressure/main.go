// Memory-pressure sweep: traffic and performance of one workload across
// the paper's five memory pressures, for single-processor and 4-processor
// nodes — the experiment behind Figures 3 and 4, for a single application.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	app := flag.String("app", "fft", "workload to sweep")
	flag.Parse()

	tr := core.MustWorkload(*app, 16)
	fmt.Printf("%s (WS %d KB): bus traffic by class across memory pressure\n\n", *app, tr.WorkingSet/1024)
	fmt.Printf("%-6s %-4s %-12s %-12s %-12s %-12s\n", "cfg", "MP", "read(ns)", "write(ns)", "replace(ns)", "exec(ns)")

	for _, ppn := range []int{1, 4} {
		for _, mp := range core.Pressures {
			res, err := core.Run(tr, core.Baseline(ppn, mp))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6s %-4s %-12d %-12d %-12d %-12d\n",
				fmt.Sprintf("%dp", ppn), mp.Label,
				res.BusOccupancy[0], res.BusOccupancy[1], res.BusOccupancy[2],
				res.ExecTime)
		}
		fmt.Println()
	}
}
