// Custom workload: build your own reference trace with the apps generator
// API — shared arrays, locks, barriers — and run it through the machine.
// This example implements a tiny producer/consumer pipeline where each
// processor writes a block that its right-hand neighbour then reads, a
// pattern that benefits maximally from clustering (writer and reader often
// share an attraction memory).
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
)

func buildPipeline(procs int) *core.Trace {
	g := apps.NewGen("pipeline", procs)
	const blockWords = 512
	buf := g.F64("ring-buffer", procs*blockWords)

	// Processor 0 initializes the ring (untimed init section).
	for i := 0; i < buf.Len(); i++ {
		buf.Write(0, i, float64(i))
	}
	g.Barrier()
	g.MeasureStart()

	for round := 0; round < 8; round++ {
		// Each processor writes its own block...
		for p := 0; p < procs; p++ {
			for i := 0; i < blockWords; i++ {
				buf.Write(p, p*blockWords+i, float64(round*i))
				g.Compute(p, 4)
			}
		}
		g.Barrier()
		// ...then reads its left neighbour's block. With sequential
		// process-to-cluster assignment, most neighbours share a node.
		for p := 0; p < procs; p++ {
			src := (p + procs - 1) % procs
			var sum float64
			for i := 0; i < blockWords; i++ {
				sum += buf.Read(p, src*blockWords+i)
				g.Compute(p, 3)
			}
			_ = sum
		}
		g.Barrier()
	}
	return g.Finish()
}

func main() {
	tr := buildPipeline(16)
	fmt.Printf("custom pipeline workload: WS %d KB\n\n", tr.WorkingSet/1024)
	for _, ppn := range []int{1, 2, 4} {
		res, err := core.Run(tr, core.Baseline(ppn, core.MP50))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d procs/node: exec %-10v RNMr %.4f  bus %v\n",
			ppn, res.ExecTime, res.RNMr(), res.BusTotal())
	}
	fmt.Println("\nneighbour communication turns remote misses into node hits as clusters grow")
}
