// Quickstart: simulate one SPLASH-2-style workload on a clustered COMA
// machine and print what the paper measures — execution-time breakdown,
// read node miss rate and bus traffic by class.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Generate the workload's reference trace for 16 processors.
	tr := core.MustWorkload("ocean-c", 16)
	fmt.Printf("workload ocean-c: working set %d KB\n", tr.WorkingSet/1024)

	// A machine with 4 processors per node at 81% memory pressure —
	// the configuration where the paper shows clustering shines.
	cfg := core.Baseline(4, core.MP81)
	cfg.DRAMBandwidth = 2 // as in the paper's Figure 5

	res, err := core.Run(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("execution time: %v\n", res.ExecTime)
	b := res.Breakdown()
	fmt.Printf("mean breakdown: busy %.0f ns, SLC %.0f ns, AM %.0f ns, remote %.0f ns, sync %.0f ns\n",
		b.Busy, b.SLC, b.AM, b.Remote, b.Sync)
	fmt.Printf("read node miss rate: %.4f (%d of %d reads)\n",
		res.RNMr(), res.ReadNodeMisses, res.Reads)
	fmt.Printf("bus occupancy: read %v, write %v, replace %v\n",
		res.BusOccupancy[0], res.BusOccupancy[1], res.BusOccupancy[2])
}
