// Clustering sweep: how the attraction-memory efficiency and execution
// time of one workload change with 1, 2 and 4 processors per node — the
// experiment behind the paper's Figure 2 and Section 4.3, for a single
// application.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	app := flag.String("app", "barnes", "workload to sweep")
	flag.Parse()

	tr := core.MustWorkload(*app, 16)
	fmt.Printf("%s (WS %d KB), 16 processors, 81%% memory pressure, 2x DRAM bandwidth\n\n",
		*app, tr.WorkingSet/1024)
	fmt.Printf("%-12s %-8s %-12s %-10s %-10s\n", "procs/node", "nodes", "exec(ns)", "RNMr", "bus(ns)")

	var base float64
	for _, ppn := range []int{1, 2, 4} {
		cfg := core.Baseline(ppn, core.MP81)
		cfg.DRAMBandwidth = 2
		res, err := core.Run(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if ppn == 1 {
			base = float64(res.ExecTime)
		}
		fmt.Printf("%-12d %-8d %-12d %-10.4f %-10d  (%.0f%% of 1p)\n",
			ppn, 16/ppn, res.ExecTime, res.RNMr(), res.BusTotal(),
			100*float64(res.ExecTime)/base)
	}
}
