// Package repro is a reproduction of "A Study of the Efficiency of Shared
// Attraction Memories in Cluster-Based COMA Multiprocessors" (Landin &
// Karlgren, IPPS 1997): a program-driven simulator for 16-processor
// bus-based COMA machines with 1, 2 or 4 processors per node sharing an
// attraction memory, driven by fourteen SPLASH-2-style workload kernels.
//
// The public entry point is repro/internal/core; the benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured results).
package repro
