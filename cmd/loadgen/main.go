// Command loadgen drives one comasrv daemon or a whole fleet with a
// seeded, reproducible request stream and reports throughput, latency
// percentiles and the local/peer/compute source split. It is the
// measurement harness behind the fleet's scaling claim: run it against a
// single shard and against a fleet with the same seed, and compare the
// cache-served throughput.
//
// Usage:
//
//	go run ./cmd/loadgen -targets http://127.0.0.1:8080
//	go run ./cmd/loadgen -targets http://127.0.0.1:8080,http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -dist zipfian -theta 0.99 -duration 10s -out BENCH_results.json -label fleet-3
//	go run ./cmd/loadgen -targets ... -quick      # CI-sized: 16 keys, 2s
//
// With -out, the run is merged into the results file's "fleet" list,
// keyed by label (rerunning a label replaces it in place), alongside the
// simulator matrix entries cmd/bench maintains.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/config/flags"
	"repro/internal/loadgen"
)

// fleetEntry is one tracked load-generation point in BENCH_results.json.
type fleetEntry struct {
	Label       string  `json:"label"`
	Date        string  `json:"date"`
	Mode        string  `json:"mode"` // "single" or "fleet"
	Dist        string  `json:"dist"`
	Theta       float64 `json:"theta,omitempty"`
	Keys        int     `json:"keys"`
	Seed        int64   `json:"seed"`
	Route       string  `json:"route"`
	Concurrency int     `json:"concurrency"`
	Note        string  `json:"note,omitempty"`
	loadgen.Result
}

// benchFile is the slice of BENCH_results.json this command owns: the
// fleet list. The simulator matrix entries are carried through verbatim
// so loadgen and cmd/bench can share the file without knowing each
// other's schemas.
type benchFile struct {
	Schema  int               `json:"schema"`
	Matrix  string            `json:"matrix"`
	Entries json.RawMessage   `json:"entries,omitempty"`
	Fleet   []json.RawMessage `json:"fleet,omitempty"`
}

// merge loads the results file (if any), replaces the fleet entry with
// the same label or appends, and writes it back.
func merge(path string, e fleetEntry) error {
	file := benchFile{Schema: 1, Matrix: "figure2-mp6"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	replaced := false
	for i, old := range file.Fleet {
		var v struct {
			Label string `json:"label"`
		}
		if json.Unmarshal(old, &v) == nil && v.Label == e.Label {
			file.Fleet[i] = raw
			replaced = true
			break
		}
	}
	if !replaced {
		file.Fleet = append(file.Fleet, raw)
	}
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	flags.SetUsage("loadgen", "drive a comasrv daemon or fleet with a seeded request stream and measure how it is served")
	targets := flag.String("targets", "", `comma-separated daemon base URLs (required), e.g. "http://127.0.0.1:8080,http://127.0.0.1:8081"`)
	dist := flag.String("dist", "zipfian", "key popularity: zipfian, uniform or hotset")
	theta := flag.Float64("theta", 0.99, "zipfian exponent, in (0,1)")
	keys := flag.Int("keys", 64, "key-universe size (distinct simulation requests)")
	seed := flag.Int64("seed", 1, "distribution seed (same seed = same request sequence)")
	route := flag.String("route", "rr", `target per request: "rr" (round-robin, exercises peer fill) or "ring" (owner-routed, sums the fleet's cache capacities)`)
	conc := flag.Int("c", 4, "concurrent workers")
	duration := flag.Duration("duration", 5*time.Second, "timed-phase length")
	requests := flag.Int64("requests", 0, "additionally stop after this many issued requests (0 = duration only)")
	warm := flag.Bool("warm", true, "issue every key once before timing, routed to its owner shard in fleet mode")
	app := flag.String("app", "fft", "workload behind every key")
	procs := flag.Int("procs", 8, "machine size behind every key")
	mp := flag.String("mp", "6%", "memory pressure behind every key")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	quick := flag.Bool("quick", false, "CI-sized run: 16 keys, 2s (explicit -keys/-duration/-c still win)")
	out := flag.String("out", "", "merge the run into this results file's fleet list (empty = report only)")
	label := flag.String("label", "fleet", "entry label for -out (same label replaces in place)")
	note := flag.String("note", "", "free-form note stored with the -out entry")
	asJSON := flag.Bool("json", false, "print the full result as JSON")
	flag.Parse()

	if *targets == "" {
		flags.Check("loadgen", fmt.Errorf("missing required -targets"))
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *quick {
		if !explicit["keys"] {
			*keys = 16
		}
		if !explicit["duration"] {
			*duration = 2 * time.Second
		}
		if !explicit["c"] {
			*conc = 4
		}
	}

	cfg := loadgen.Config{
		Targets:     strings.Split(*targets, ","),
		Dist:        *dist,
		Theta:       *theta,
		Keys:        *keys,
		Seed:        *seed,
		Route:       *route,
		Concurrency: *conc,
		Duration:    *duration,
		MaxRequests: *requests,
		Warm:        *warm,
		App:         *app,
		Procs:       *procs,
		MP:          *mp,
		Timeout:     *timeout,
	}
	for i := range cfg.Targets {
		cfg.Targets[i] = strings.TrimRight(strings.TrimSpace(cfg.Targets[i]), "/")
	}

	res, err := cfg.Run(context.Background())
	flags.Check("loadgen", err)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		flags.Check("loadgen", enc.Encode(res))
	} else {
		fmt.Printf("%d shard(s), %s over %d keys (seed %d): %d requests in %.2fs\n",
			res.Shards, *dist, *keys, *seed, res.Requests, res.DurationS)
		fmt.Printf("  throughput      %9.1f req/s (cache-served %.1f/s)\n", res.Throughput, res.CacheServedPerSec)
		fmt.Printf("  sources         local %d, peer %d, compute %d (peer-fill ratio %.2f)\n",
			res.Source["local"], res.Source["peer"], res.Source["compute"], res.PeerFillRatio)
		fmt.Printf("  latency ms      p50 %.2f, p90 %.2f, p99 %.2f\n",
			res.LatencyMsP50, res.LatencyMsP90, res.LatencyMsP99)
		fmt.Printf("  shed %d, errors %d, warmed %d\n", res.Shed, res.Errors, res.WarmedKeys)
	}

	if *out != "" {
		e := fleetEntry{
			Label: *label, Date: time.Now().UTC().Format("2006-01-02T15:04:05Z"),
			Mode: "single", Dist: *dist, Keys: *keys, Seed: *seed,
			Route: *route, Concurrency: *conc, Note: *note, Result: res,
		}
		if res.Shards > 1 {
			e.Mode = "fleet"
		}
		if *dist == "zipfian" {
			e.Theta = *theta
		}
		flags.Check("loadgen", merge(*out, e))
		fmt.Printf("merged %s fleet entry %q\n", *out, *label)
	}

	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request(s) failed\n", res.Errors)
		os.Exit(1)
	}
}
