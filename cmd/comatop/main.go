// Command comatop is a terminal dashboard over a comasrv fleet: one row
// per shard with throughput, cache-hit, peer-fill and shed rates plus
// latency quantiles, and fleet-summed sparklines from the daemons'
// metric history. It speaks only the public observability API (see
// API.md) and renders plain ANSI — no terminal library.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/comatop"
	"repro/internal/config/flags"
)

func main() {
	flags.SetUsage("comatop", "terminal dashboard over a comasrv fleet")
	targets := flag.String("targets", "http://127.0.0.1:8080", "comma-separated comasrv base URLs (any one fleet member is enough in fleet mode)")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	window := flag.Duration("window", time.Hour, "sparkline history window")
	gap := flag.Duration("gap", 700*time.Millisecond, "-once: delay between the two samples that derive rates")
	once := flag.Bool("once", false, "render one snapshot to stdout and exit (CI probe mode)")
	flag.Parse()

	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(strings.TrimSuffix(t, "/")); t != "" {
			urls = append(urls, t)
		}
	}
	if len(urls) == 0 {
		flags.Check("comatop", fmt.Errorf("-targets is empty"))
	}
	col := &comatop.Collector{Targets: urls, Window: *window}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		// Two samples a short gap apart so the rate columns are real
		// deltas, not zeros.
		if _, err := col.Collect(ctx); err != nil {
			flags.Check("comatop", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(*gap):
		}
		snap, err := col.Collect(ctx)
		flags.Check("comatop", err)
		fmt.Print(comatop.Render(snap))
		return
	}

	for {
		snap, err := col.Collect(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatop: %v\n", err)
		} else {
			// Home the cursor and clear before each frame.
			fmt.Print("\x1b[H\x1b[2J" + comatop.Render(snap))
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-time.After(*interval):
		}
	}
}
