// Command inspect dumps the simulator's observability data for a matrix of
// (application, configuration) runs: per-resource utilization and queueing
// tables, protocol state-transition count matrices and protocol counters,
// as aligned text or flat CSV. Output is byte-identical for any -jobs
// value.
//
//	go run ./cmd/inspect -apps fft,radix -ppn 1,4 -mp 50%,87% -what util
//	go run ./cmd/inspect -what transitions -format csv
//	go run ./cmd/inspect -apps fft -events fft.jsonl   # raw event trace
//	go run ./cmd/inspect -timeline -window 100000      # windowed sparklines
//	go run ./cmd/inspect -timeline -format csv         # raw per-window CSV
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/config/flags"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/obs"
)

func main() {
	flags.SetUsage("inspect", "dump per-resource utilization, protocol-transition and protocol-counter tables for a run matrix")
	procs := flags.Procs(16)
	appsFlag := flag.String("apps", "", "comma-separated applications (default: all)")
	ppnFlag := flag.String("ppn", "1,4", "comma-separated clustering degrees")
	mpFlag := flag.String("mp", "50%", "comma-separated memory pressures (6%,50%,75%,81%,87%)")
	ways := flag.Int("ways", 4, "attraction-memory associativity")
	dram := flag.Float64("dram", 1, "DRAM bandwidth multiplier")
	nc := flag.Float64("nc", 1, "node-controller bandwidth multiplier")
	bus := flag.Float64("bus", 1, "bus bandwidth multiplier")
	topology := flag.String("topology", "", "interconnect topology: bus (default) or ring")
	clusters := flag.Int("clusters", 0, "ring cluster count (0 = one cluster per node)")
	linkLat := flag.Int("linklat", 0, "ring link latency in ns (0 = default, -1 = explicitly zero)")
	what := flag.String("what", "all", "what to dump: util, transitions, protocol or all")
	format := flag.String("format", "text", "output format: text or csv")
	timeline := flag.Bool("timeline", false, "sample windowed counters and dump the per-run timeline (sparklines, or raw windows with -format csv)")
	window := flag.Int64("window", 100000, "sampling window width in simulated ns (with -timeline)")
	events := flag.String("events", "", "write a JSONL event trace of the first run to this file")
	outPath := flags.Output("")
	jobs := flags.Jobs()
	verbose := flags.Verbose()
	flag.Parse()

	appNames := experiments.Apps()
	if *appsFlag != "" {
		appNames = strings.Split(*appsFlag, ",")
	}
	cfgs, err := buildConfigs(*ppnFlag, *mpFlag, *ways, *dram, *nc, *bus, *topology, *clusters, *linkLat)
	check(err)

	r := experiments.NewRunner()
	r.Procs = *procs
	r.Jobs = *jobs
	if *verbose {
		r.Progress = os.Stderr
	}
	if *timeline {
		if *window < 1 {
			check(fmt.Errorf("-window must be positive, got %d", *window))
		}
		r.SampleWindow = engine.Time(*window)
	}

	rows, err := r.Inspect(appNames, cfgs)
	check(err)

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		check(err)
		defer f.Close()
		out = f
	}
	w := *what
	if *timeline {
		w = "timeline"
	}
	check(dump(out, rows, w, *format))

	if *events != "" {
		check(dumpEvents(r, appNames[0], cfgs[0], *events))
		fmt.Fprintf(os.Stderr, "wrote event trace %s\n", *events)
	}
}

// buildConfigs expands the flag cross product into configurations in
// ppn-major, pressure-minor order.
func buildConfigs(ppnFlag, mpFlag string, ways int, dram, nc, bus float64, topology string, clusters, linkLat int) ([]config.Machine, error) {
	var cfgs []config.Machine
	for _, ppnStr := range strings.Split(ppnFlag, ",") {
		ppn, err := strconv.Atoi(strings.TrimSpace(ppnStr))
		if err != nil {
			return nil, fmt.Errorf("bad -ppn element %q: %v", ppnStr, err)
		}
		for _, mpStr := range strings.Split(mpFlag, ",") {
			mp, err := config.PressureByLabel(strings.TrimSpace(mpStr))
			if err != nil {
				return nil, err
			}
			c := config.Baseline(ppn, mp)
			c.AMWays = ways
			c.DRAMBandwidth = dram
			c.NCBandwidth = nc
			c.BusBandwidth = bus
			c.Topology = topology
			c.Clusters = clusters
			c.LinkLatencyNs = linkLat
			cfgs = append(cfgs, c)
		}
	}
	return cfgs, nil
}

func dump(w io.Writer, rows []experiments.InspectRow, what, format string) error {
	csv := format == "csv"
	if !csv && format != "text" {
		return fmt.Errorf("unknown -format %q (text or csv)", format)
	}
	sections := map[string][2]func(io.Writer, []experiments.InspectRow) error{
		"util":        {experiments.WriteUtilization, experiments.WriteUtilizationCSV},
		"transitions": {experiments.WriteTransitions, experiments.WriteTransitionsCSV},
		"protocol":    {experiments.WriteProtocol, experiments.WriteProtocolCSV},
		"timeline":    {experiments.WriteTimeline, experiments.WriteTimelineCSV},
	}
	order := []string{"util", "transitions", "protocol"}
	if what != "all" {
		if _, ok := sections[what]; !ok {
			return fmt.Errorf("unknown -what %q (util, transitions, protocol or all)", what)
		}
		order = []string{what}
	}
	for _, name := range order {
		fns := sections[name]
		fn := fns[0]
		if csv {
			fn = fns[1]
		}
		if err := fn(w, rows); err != nil {
			return err
		}
	}
	return nil
}

// dumpEvents re-runs one configuration outside the runner's memoized cache
// with a JSONL sink attached, streaming every instrumentation event.
func dumpEvents(r *experiments.Runner, app string, cfg config.Machine, path string) error {
	tr, err := r.Trace(app)
	if err != nil {
		return err
	}
	if cfg.Procs == 0 {
		cfg.Procs = r.Procs
	}
	m, err := machine.New(cfg.Params(tr.WorkingSet))
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sink := obs.NewJSONL(f)
	m.SetSink(sink)
	if _, err := m.Run(tr); err != nil {
		f.Close()
		return err
	}
	if sink.Err() != nil {
		f.Close()
		return sink.Err()
	}
	return f.Close()
}

func check(err error) {
	flags.Check("inspect", err)
}
