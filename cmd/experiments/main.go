// Command experiments regenerates every table and figure of the paper's
// evaluation section. With -only it runs a single artifact:
//
//	table1, fig2, fig3, fig4, fig5, sens-dram, sens-node, sens-bus, sens-mp
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/stats"
)

func main() {
	only := flag.String("only", "", "run a single artifact (table1, fig2..fig5, sens-*, thresholds)")
	chart := flag.Bool("chart", false, "render figures 3-5 as stacked bar charts")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations (output is identical for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	check(err)
	defer stopProf()

	r := experiments.NewRunner()
	r.Jobs = *jobs
	if *verbose {
		r.Progress = os.Stderr
	}
	want := func(name string) bool { return *only == "" || *only == name }
	out := os.Stdout

	if want("table1") {
		rows, err := r.Table1()
		check(err)
		fmt.Fprintln(out, "Table 1: applications and working sets")
		check(experiments.WriteTable1(out, rows))
		fmt.Fprintln(out)
	}
	if want("fig2") {
		f, err := r.Figure2()
		check(err)
		check(f.Write(out))
		fmt.Fprintln(out)
	}
	if want("fig3") {
		f, err := r.Figure3()
		check(err)
		if *chart {
			check(f.Chart(out))
		} else {
			check(f.Write(out))
		}
		fmt.Fprintln(out)
	}
	if want("fig4") {
		f, err := r.Figure4()
		check(err)
		if *chart {
			check(f.Chart(out))
		} else {
			check(f.Write(out))
		}
		fmt.Fprintln(out)
	}
	if want("fig5") {
		f, err := r.Figure5()
		check(err)
		if *chart {
			check(f.Chart(out))
		} else {
			check(f.Write(out))
		}
		fmt.Fprintln(out)
	}
	if want("thresholds") {
		fmt.Fprintln(out, "Replication thresholds (paper Section 4.2 analytical model)")
		t := stats.NewTable("procs/node", "AM ways", "threshold", "exact")
		for _, row := range analysis.PaperTable() {
			t.Row(row.Machine.ProcsPerNode, row.Machine.AMWays,
				stats.Pct(row.Threshold), fmt.Sprintf("%d/%d", row.Num, row.Den))
		}
		check(t.Write(out))
		fmt.Fprintln(out)
	}
	if want("sens-dram") {
		ss, err := r.SensitivityDRAM()
		check(err)
		for _, s := range ss {
			check(s.Write(out))
			fmt.Fprintln(out)
		}
	}
	if want("sens-node") {
		s, err := r.SensitivityNode()
		check(err)
		check(s.Write(out))
		fmt.Fprintln(out)
	}
	if want("sens-bus") {
		ss, err := r.SensitivityBus()
		check(err)
		for _, s := range ss {
			check(s.Write(out))
			fmt.Fprintln(out)
		}
	}
	if want("latency") {
		rows, err := r.Latency()
		check(err)
		check(experiments.WriteLatency(out, rows))
		fmt.Fprintln(out)
	}
	if want("sens-mp") {
		rows, err := r.SensitivityPressure()
		check(err)
		check(experiments.WritePressure(out, rows))
		fmt.Fprintln(out)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
