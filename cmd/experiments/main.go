// Command experiments regenerates every table and figure of the paper's
// evaluation section. With -only it runs a single artifact:
//
//	table1, fig2, fig3, fig4, fig5, thresholds, sens-dram, sens-node,
//	sens-bus, latency, sens-mp
//
// plus the on-demand extras (not part of the default set):
//
//	fig2scaled — clustering and memory-pressure sweeps at 64 and 128
//	processors on the ring-of-clusters topology
package main

import (
	"flag"
	"os"

	"repro/internal/config/flags"
	"repro/internal/experiments"
	"repro/internal/profiling"
)

func main() {
	flags.SetUsage("experiments", "regenerate the paper's tables and figures (all, or one artifact with -only)")
	only := flag.String("only", "", "run a single artifact (table1, fig2..fig5, sens-*, thresholds, fig2scaled)")
	chart := flag.Bool("chart", false, "render figures 3-5 as stacked bar charts")
	procs := flags.Procs(16)
	fidelity := flags.Fidelity()
	verbose := flags.Verbose()
	jobs := flags.Jobs()
	cpuprofile, memprofile := flags.Profiles()
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	check(err)
	defer stopProf()

	r := experiments.NewRunner()
	r.Procs = *procs
	r.Jobs = *jobs
	r.Fidelity = fidelity()
	if *verbose {
		r.Progress = os.Stderr
	}
	names := experiments.Artifacts()
	if *only != "" {
		// A single -only run resolves any renderable artifact, including
		// the extras excluded from the default set (fig2scaled).
		names = []string{*only}
	}
	for _, name := range names {
		check(experiments.RenderArtifact(os.Stdout, r, name, *chart))
	}
}

func check(err error) {
	flags.Check("experiments", err)
}
