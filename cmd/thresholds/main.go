// Command thresholds prints the paper's Section 4.2 analytical
// replication-space model: the memory pressure above which a cache line
// can no longer be replicated in every node, for a range of clusterings
// and associativities.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/config/flags"
	"repro/internal/stats"
)

func main() {
	flags.SetUsage("thresholds", "print the paper's §4.2 analytical replication-threshold table")
	procs := flags.Procs(16)
	flag.Parse()

	fmt.Println("Replication thresholds (paper Section 4.2): MP above which a line")
	fmt.Println("can no longer be replicated in every node of the machine")
	fmt.Println()
	t := stats.NewTable("procs/node", "nodes", "AM ways", "threshold", "exact")
	for _, ppn := range []int{1, 2, 4, 8} {
		if *procs%ppn != 0 {
			continue
		}
		for _, ways := range []int{2, 4, 8, 16} {
			m := analysis.Machine{Procs: *procs, ProcsPerNode: ppn, AMWays: ways}
			num, den, frac := m.ReplicationThreshold()
			t.Row(ppn, m.Nodes(), ways, stats.Pct(frac), fmt.Sprintf("%d/%d", num, den))
		}
	}
	flags.Check("thresholds", t.Write(os.Stdout))
	fmt.Println()
	fmt.Println("The paper's quoted points: 49/64 = 76.5% (1p, 4-way), 113/128 = 88.2%")
	fmt.Println("(1p, 8-way), 13/16 = 81.25% (4p, 4-way), 29/32 = 90.6% (4p, 8-way).")
}
