// Command comasrv serves the simulation and experiment engine as a JSON
// HTTP API with a persistent content-addressed result store. See API.md
// for the endpoint reference and OPERATIONS guidance.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config/flags"
	"repro/internal/server"
)

func main() {
	flags.SetUsage("comasrv", "serve the simulation engine as a JSON HTTP API")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	jobs := flags.Jobs()
	storeDir := flag.String("store", "comasrv-store", "result store directory (empty = memory-only)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory result cache budget in bytes (0 = 64 MiB)")
	timeout := flag.Duration("timeout", 0, "per-request simulation timeout (0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
	flag.Parse()

	srv, err := server.New(server.Config{
		Jobs:          *jobs,
		StoreDir:      *storeDir,
		StoreMemBytes: *cacheBytes,
		Timeout:       *timeout,
	})
	flags.Check("comasrv", err)
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("comasrv: listening on %s (jobs=%d store=%q)", *addr, *jobs, *storeDir)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		flags.Check("comasrv", err)
	case <-ctx.Done():
		log.Printf("comasrv: shutting down (draining for up to %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("comasrv: drain incomplete: %v", err)
		}
		srv.Close() // cancel any still-running jobs
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			flags.Check("comasrv", err)
		}
	}
}
