// Command comasrv serves the simulation and experiment engine as a JSON
// HTTP API with a persistent content-addressed result store. See API.md
// for the endpoint reference and OPERATIONS guidance.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config/flags"
	"repro/internal/fleet"
	"repro/internal/server"
)

// newLogger builds the daemon's structured logger from the -log flag.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (text or json)", format)
	}
}

func main() {
	flags.SetUsage("comasrv", "serve the simulation engine as a JSON HTTP API")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	jobs := flags.Jobs()
	storeDir := flag.String("store", "comasrv-store", "result store directory (empty = memory-only)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory result cache budget in bytes (0 = 64 MiB)")
	timeout := flag.Duration("timeout", 0, "per-request simulation timeout (0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
	logFormat := flag.String("log", "text", "log handler: text or json (structured, one line per request)")
	maxQueue := flag.Int("max-queue", 0, "admission control: shed computations with 429 when this many are already queued (0 = unbounded)")
	jobTTL := flag.Duration("job-ttl", 0, "evict finished async jobs after this long (0 = 15m)")
	maxTraceBytes := flag.Int64("max-trace-bytes", 0, "reject trace uploads larger than this (0 = 8 MiB)")
	maxTraces := flag.Int("max-traces", 0, "bound the uploaded-trace index (0 = 256)")
	scrapeInterval := flag.Duration("scrape-interval", 0, "self-scrape period feeding /v1/metrics/history and the SSE stream (0 = 10s, negative disables)")
	slowThreshold := flag.Duration("slow-threshold", 0, "log requests slower than this at Warn level (0 disables)")
	slowKeep := flag.Int("slow-keep", 0, "slow-request exemplars retained for /v1/debug/slow (0 = 32)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate listener (empty disables; never exposed on -addr)")
	shardID := flag.String("shard-id", "", "fleet mode: this shard's member ID (requires -peers)")
	peers := flag.String("peers", "", `fleet mode: full membership as "id=url,id=url,..." including this shard`)
	replicas := flag.Int("replicas", 0, "fleet mode: total copies for hot entries, owner included (0 = 2, 1 disables)")
	replicateAfter := flag.Int("replicate-after", 0, "fleet mode: hit count that promotes an entry to its replica set (0 = 3, negative disables)")
	peerTimeout := flag.Duration("peer-timeout", 0, "fleet mode: per peer-fill/replication request timeout (0 = 2s)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	flags.Check("comasrv", err)

	cfg := server.Config{
		Jobs:           *jobs,
		StoreDir:       *storeDir,
		StoreMemBytes:  *cacheBytes,
		Timeout:        *timeout,
		Logger:         logger,
		MaxQueue:       *maxQueue,
		JobTTL:         *jobTTL,
		MaxTraceBytes:  *maxTraceBytes,
		MaxTraces:      *maxTraces,
		ScrapeInterval: *scrapeInterval,
		SlowThreshold:  *slowThreshold,
		SlowKeep:       *slowKeep,
	}
	if (*shardID == "") != (*peers == "") {
		flags.Check("comasrv", fmt.Errorf("-shard-id and -peers must be set together"))
	}
	if *shardID != "" {
		members, err := fleet.ParseMembers(*peers)
		flags.Check("comasrv", err)
		cfg.Fleet = &server.FleetConfig{
			ShardID:        *shardID,
			Members:        members,
			Replicas:       *replicas,
			ReplicateAfter: *replicateAfter,
			PeerTimeout:    *peerTimeout,
		}
	}
	srv, err := server.New(cfg)
	flags.Check("comasrv", err)
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// The pprof surface lives on its own listener so profiling access is
	// controlled by where -debug-addr binds, never by the public API mux
	// (the default net/http/pprof registration on DefaultServeMux is
	// irrelevant: neither listener serves DefaultServeMux).
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: debugMux}
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if *shardID != "" {
			logger.Info("listening", "addr", *addr, "jobs", *jobs, "store", *storeDir, "shard", *shardID)
		} else {
			logger.Info("listening", "addr", *addr, "jobs", *jobs, "store", *storeDir)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		flags.Check("comasrv", err)
	case <-ctx.Done():
		logger.Info("shutting down", "drain", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("drain incomplete", "err", err)
		}
		if debugSrv != nil {
			debugSrv.Shutdown(shutdownCtx)
		}
		srv.Close() // cancel any still-running jobs
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			flags.Check("comasrv", err)
		}
	}
}
