// Command comasrv serves the simulation and experiment engine as a JSON
// HTTP API with a persistent content-addressed result store. See API.md
// for the endpoint reference and OPERATIONS guidance.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config/flags"
	"repro/internal/server"
)

// newLogger builds the daemon's structured logger from the -log flag.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (text or json)", format)
	}
}

func main() {
	flags.SetUsage("comasrv", "serve the simulation engine as a JSON HTTP API")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	jobs := flags.Jobs()
	storeDir := flag.String("store", "comasrv-store", "result store directory (empty = memory-only)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory result cache budget in bytes (0 = 64 MiB)")
	timeout := flag.Duration("timeout", 0, "per-request simulation timeout (0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
	logFormat := flag.String("log", "text", "log handler: text or json (structured, one line per request)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	flags.Check("comasrv", err)

	srv, err := server.New(server.Config{
		Jobs:          *jobs,
		StoreDir:      *storeDir,
		StoreMemBytes: *cacheBytes,
		Timeout:       *timeout,
		Logger:        logger,
	})
	flags.Check("comasrv", err)
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "jobs", *jobs, "store", *storeDir)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		flags.Check("comasrv", err)
	case <-ctx.Done():
		logger.Info("shutting down", "drain", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("drain incomplete", "err", err)
		}
		srv.Close() // cancel any still-running jobs
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			flags.Check("comasrv", err)
		}
	}
}
