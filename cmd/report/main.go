// Command report regenerates the paper's evaluation and writes a single
// self-contained HTML page with every table and figure as inline SVG.
//
//	go run ./cmd/report -o report.html
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config/flags"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/report"
)

func main() {
	flags.SetUsage("report", "regenerate the paper's evaluation as a single self-contained HTML page")
	out := flags.Output("report.html")
	verbose := flags.Verbose()
	jobs := flags.Jobs()
	cpuprofile, memprofile := flags.Profiles()
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	r := experiments.NewRunner()
	r.Jobs = *jobs
	if *verbose {
		r.Progress = os.Stderr
	}
	data, err := report.Collect(r)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := report.Render(f, data); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	flags.Check("report", err)
}
